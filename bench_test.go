// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Each benchmark reports the headline quantities of its
// artifact as custom metrics, and the first -v run prints the full rendered
// table, so
//
//	go test -bench=. -benchmem
//
// is the one-command reproduction of the paper.
package repro_test

import (
	"strconv"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
)

// printOnce renders each artifact a single time regardless of b.N.
var printOnce sync.Map

func logArtifact(b *testing.B, key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + text)
	}
}

// BenchmarkTable1 regenerates the chess movement-time comparison
// (difficulty 7-11, smartphone vs desktop).
func BenchmarkTable1(b *testing.B) {
	var gap string
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(11)
		gap = t.Rows[len(t.Rows)-1][3]
		logArtifact(b, "table1", t.String())
	}
	v, err := strconv.ParseFloat(gap, 64)
	if err != nil {
		b.Fatalf("parse gap %q: %v", gap, err)
	}
	b.ReportMetric(v, "gap_x")
}

// BenchmarkTable2 renders the Android native-code study.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logArtifact(b, "table2", experiments.Table2().String())
	}
}

// BenchmarkTable3 regenerates the chess profiling/estimation example.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		logArtifact(b, "table3", t.String())
	}
}

// BenchmarkTable4 regenerates the per-program offload statistics.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		logArtifact(b, "table4", t.String())
	}
}

// BenchmarkTable5 renders the related-work comparison.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logArtifact(b, "table5", experiments.Table5().String())
	}
}

// BenchmarkFig6a regenerates the normalized execution times and reports the
// geomean speedup on the fast network (the paper's 6.42x headline).
func BenchmarkFig6a(b *testing.B) {
	var fasts []float64
	for i := 0; i < b.N; i++ {
		t, rows, err := experiments.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		fasts = fasts[:0]
		for _, r := range rows {
			fasts = append(fasts, r.Fast)
		}
		logArtifact(b, "fig6a", t.String())
	}
	g := report.Geomean(fasts)
	b.ReportMetric(g, "geomean_norm_time")
	if g > 0 {
		b.ReportMetric(1/g, "geomean_speedup_x")
	}
}

// BenchmarkFig6b regenerates the normalized battery consumption.
func BenchmarkFig6b(b *testing.B) {
	var fasts, slows []float64
	for i := 0; i < b.N; i++ {
		t, rows, err := experiments.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		fasts, slows = fasts[:0], slows[:0]
		for _, r := range rows {
			fasts = append(fasts, r.Fast)
			slows = append(slows, r.Slow)
		}
		logArtifact(b, "fig6b", t.String())
	}
	b.ReportMetric(100*(1-report.Geomean(fasts)), "battery_saving_fast_pct")
	b.ReportMetric(100*(1-report.Geomean(slows)), "battery_saving_slow_pct")
}

// BenchmarkFig7 regenerates the overhead breakdown.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		logArtifact(b, "fig7", t.String())
	}
}

// BenchmarkFig8 regenerates the power-over-time traces.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text, traces, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if len(traces) != 3 {
			b.Fatalf("want 3 traces, got %d", len(traces))
		}
		logArtifact(b, "fig8", text)
	}
}

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, rs, err := experiments.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range rs {
			if a.Name == "remote I/O optimization off (gobmk)" && a.Baseline > 0 {
				b.ReportMetric(a.Ablated/a.Baseline, "remoteIO_slowdown_x")
			}
		}
		logArtifact(b, "ablation", t.String())
	}
}

// BenchmarkCrossArch regenerates the big-endian-server extension table.
func BenchmarkCrossArch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, rows, err := experiments.CrossArch()
		if err != nil {
			b.Fatal(err)
		}
		var overhead float64
		for _, r := range rows {
			overhead += r.BE32Sec/r.X8664Sec - 1
		}
		b.ReportMetric(100*overhead/float64(len(rows)), "endian_overhead_pct")
		logArtifact(b, "crossarch", t.String())
	}
}
