package arch

import "testing"

func TestSpecsBasics(t *testing.T) {
	tests := []struct {
		spec    *Spec
		ptr     int
		endian  Endianness
		f64Algn int
	}{
		{ARM32(), 4, Little, 8},
		{X8664(), 8, Little, 8},
		{IA32(), 4, Little, 4},
		{POWER32BE(), 4, Big, 8},
	}
	for _, tt := range tests {
		if got := tt.spec.PointerBytes; got != tt.ptr {
			t.Errorf("%s: PointerBytes = %d, want %d", tt.spec.Name, got, tt.ptr)
		}
		if got := tt.spec.Endian; got != tt.endian {
			t.Errorf("%s: Endian = %v, want %v", tt.spec.Name, got, tt.endian)
		}
		if got := tt.spec.Align(ClassFloat64); got != tt.f64Algn {
			t.Errorf("%s: Align(f64) = %d, want %d", tt.spec.Name, got, tt.f64Algn)
		}
		if got := tt.spec.Size(ClassPtr); got != tt.ptr {
			t.Errorf("%s: Size(ptr) = %d, want %d", tt.spec.Name, got, tt.ptr)
		}
	}
}

func TestPerformanceRatioInTable1Band(t *testing.T) {
	// Table 1 reports the smartphone 5.36x-5.89x slower than the desktop.
	r := PerformanceRatio(ARM32(), X8664())
	if r < 5.3 || r > 5.9 {
		t.Errorf("PerformanceRatio(arm32, x86-64) = %.2f, want within Table 1 band [5.36, 5.89]", r)
	}
}

func TestCycleTime(t *testing.T) {
	s := X8664()
	if got := s.CycleTime(1000); got != 1000*s.CyclePS {
		t.Errorf("CycleTime(1000) = %d, want %d", got, 1000*s.CyclePS)
	}
}

func TestCostTableSetAndGet(t *testing.T) {
	tab := DefaultCosts()
	if tab.Cycles(OpIntDiv) <= tab.Cycles(OpIntALU) {
		t.Error("integer divide should cost more than simple ALU")
	}
	tab.Set(OpLoad, 99)
	if got := tab.Cycles(OpLoad); got != 99 {
		t.Errorf("after Set, Cycles(OpLoad) = %d, want 99", got)
	}
}

func TestEndiannessString(t *testing.T) {
	if Little.String() != "little" || Big.String() != "big" {
		t.Error("Endianness.String mismatch")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassInt8: "i8", ClassInt64: "i64", ClassFloat64: "f64", ClassPtr: "ptr",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestSpecString(t *testing.T) {
	got := POWER32BE().String()
	want := "power32be(32-bit, big-endian)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
