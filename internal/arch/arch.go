// Package arch describes the simulated processor architectures that the
// Native Offloader reproduction compiles for and executes on.
//
// A Spec captures exactly the architectural properties the paper's memory
// unification has to bridge (Section 2 of the paper): pointer size, byte
// order, and structure alignment rules, plus a cost model that stands in for
// the relative performance of the mobile device and the server (Table 1).
package arch

import "fmt"

// Endianness is the byte order a machine uses for multi-byte values.
type Endianness int

const (
	// Little stores the least significant byte at the lowest address.
	Little Endianness = iota
	// Big stores the most significant byte at the lowest address.
	Big
)

func (e Endianness) String() string {
	if e == Big {
		return "big"
	}
	return "little"
}

// Class partitions primitive values for alignment and cost lookup.
type Class int

const (
	ClassInt8 Class = iota
	ClassInt16
	ClassInt32
	ClassInt64
	ClassFloat32
	ClassFloat64
	ClassPtr
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassInt8:
		return "i8"
	case ClassInt16:
		return "i16"
	case ClassInt32:
		return "i32"
	case ClassInt64:
		return "i64"
	case ClassFloat32:
		return "f32"
	case ClassFloat64:
		return "f64"
	case ClassPtr:
		return "ptr"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Spec describes one simulated machine architecture. It plays the role of
// the back-end compiler's target description in the paper's Figure 1: the
// Native Offloader compiler queries it for layout information, and the
// interpreter uses it to execute "native" code for that machine.
type Spec struct {
	// Name identifies the architecture in reports, e.g. "arm32".
	Name string

	// PointerBytes is the size of a pointer: 4 on 32-bit, 8 on 64-bit
	// machines. The paper's address size conversion (Section 3.2) bridges
	// mobile/server pairs that disagree.
	PointerBytes int

	// Endian is the machine's byte order. The paper's endianness
	// translation (Section 3.2) bridges pairs that disagree.
	Endian Endianness

	// align[c] is the alignment requirement in bytes for class c. Distinct
	// ABIs align the same struct differently (the paper's Figure 4 shows
	// IA32 packing a double at offset 4 where ARM pads to offset 8), which
	// is why layout realignment exists.
	align [numClasses]int

	// size[c] is the storage size in bytes for class c.
	size [numClasses]int

	// CyclePS is the duration of one cost-model cycle in picoseconds.
	// The mobile/server ratio of CyclePS values is the paper's performance
	// ratio R (about 5.4-5.9x in Table 1).
	CyclePS int64

	// Cost is the per-operation cycle cost table.
	Cost CostTable
}

// Align reports the alignment in bytes this architecture requires for the
// given primitive class.
func (s *Spec) Align(c Class) int { return s.align[c] }

// Size reports the storage size in bytes of the given primitive class.
// Only ClassPtr varies between the architectures modelled here.
func (s *Spec) Size(c Class) int { return s.size[c] }

// CycleTime returns the duration of n cycles in picoseconds.
func (s *Spec) CycleTime(n int64) int64 { return n * s.CyclePS }

func (s *Spec) String() string {
	return fmt.Sprintf("%s(%d-bit, %s-endian)", s.Name, s.PointerBytes*8, s.Endian)
}

// Fingerprint returns a string covering every property compiled code can
// depend on: identity, pointer size, byte order, cycle time, layout tables
// and the full cost table. Two specs with equal fingerprints produce
// bit-identical compiled programs, which is what lets a compilation cache
// key on the fingerprint rather than on spec pointer identity.
func (s *Spec) Fingerprint() string {
	out := fmt.Sprintf("%s/%d/%s/%d", s.Name, s.PointerBytes, s.Endian, s.CyclePS)
	for c := Class(0); c < numClasses; c++ {
		out += fmt.Sprintf("/%d:%d", s.align[c], s.size[c])
	}
	for op := Op(0); op < numOps; op++ {
		out += fmt.Sprintf("/%d", s.Cost.Cycles(op))
	}
	return out
}

func baseSizes() [numClasses]int {
	var sz [numClasses]int
	sz[ClassInt8] = 1
	sz[ClassInt16] = 2
	sz[ClassInt32] = 4
	sz[ClassInt64] = 8
	sz[ClassFloat32] = 4
	sz[ClassFloat64] = 8
	sz[ClassPtr] = 0 // filled per arch
	return sz
}

// ARM32 models the paper's mobile device: a 32-bit little-endian ARM core
// (Samsung Galaxy S5, Krait 400 at 2.5 GHz). Doubles and 64-bit integers
// align to 8 bytes, pointers are 4 bytes.
//
// The cost table deviates from the scalar default where mobile cores of
// that era genuinely lag desktops by more than the clock ratio: small
// caches (loads/stores), a weaker FPU, and costlier indirect branches.
// The cycle time is calibrated so the *chess* workload reproduces Table 1's
// 5.4-5.9x gap; memory- and float-bound SPEC programs then see a larger
// effective gap, as the paper's near-ideal bars in Figure 6(a) imply.
func ARM32() *Spec {
	s := &Spec{
		Name:         "arm32",
		PointerBytes: 4,
		Endian:       Little,
		CyclePS:      1700,
		Cost:         DefaultCosts(),
	}
	s.Cost.Set(OpLoad, 6)
	s.Cost.Set(OpStore, 6)
	s.Cost.Set(OpFloatALU, 5)
	s.Cost.Set(OpFloatMul, 8)
	s.Cost.Set(OpFloatDiv, 24)
	s.Cost.Set(OpIntDiv, 26)
	s.Cost.Set(OpCallInd, 20)
	s.Cost.Set(OpFptrMap, 52)
	s.Cost.Set(OpIOByte, 40)
	s.size = baseSizes()
	s.size[ClassPtr] = 4
	s.align = [numClasses]int{1, 2, 4, 8, 4, 8, 4}
	return s
}

// X8664 models the paper's server: a 64-bit little-endian x86 desktop
// (Dell XPS 8700, i7-4790 at 3.6 GHz). Pointers are 8 bytes; everything
// aligns naturally.
func X8664() *Spec {
	s := &Spec{
		Name:         "x86-64",
		PointerBytes: 8,
		Endian:       Little,
		CyclePS:      400,
		Cost:         DefaultCosts(),
	}
	s.size = baseSizes()
	s.size[ClassPtr] = 8
	s.align = [numClasses]int{1, 2, 4, 8, 4, 8, 8}
	return s
}

// IA32 models a 32-bit x86 machine whose ABI aligns doubles to only 4 bytes.
// It is the layout counter-example in the paper's Figure 4: the same struct
// {char, char, double} occupies different offsets on IA32 and ARM.
func IA32() *Spec {
	s := &Spec{
		Name:         "ia32",
		PointerBytes: 4,
		Endian:       Little,
		CyclePS:      500,
		Cost:         DefaultCosts(),
	}
	s.size = baseSizes()
	s.size[ClassPtr] = 4
	s.align = [numClasses]int{1, 2, 4, 4, 4, 4, 4}
	return s
}

// POWER32BE models a 32-bit big-endian server. The paper's evaluation pair
// is all little-endian so endianness translation is never charged there;
// this spec exists so the translation path is actually exercised.
func POWER32BE() *Spec {
	s := &Spec{
		Name:         "power32be",
		PointerBytes: 4,
		Endian:       Big,
		CyclePS:      420,
		Cost:         DefaultCosts(),
	}
	s.size = baseSizes()
	s.size[ClassPtr] = 4
	s.align = [numClasses]int{1, 2, 4, 8, 4, 8, 4}
	return s
}

// PerformanceRatio returns how many times faster fast executes a
// representative instruction mix than slow — the paper's R in Equation 1,
// which it measures with the chess application (Table 1: 5.36-5.89x).
// The mix weights approximate an integer/memory/float blend.
func PerformanceRatio(slow, fast *Spec) float64 {
	mix := []struct {
		op Op
		w  float64
	}{
		{OpIntALU, 0.30}, {OpLoad, 0.25}, {OpStore, 0.10}, {OpBranch, 0.10},
		{OpFloatALU, 0.08}, {OpFloatMul, 0.05}, {OpCall, 0.05},
		{OpCallInd, 0.04}, {OpIntMul, 0.03},
	}
	cost := func(s *Spec) float64 {
		var c float64
		for _, m := range mix {
			c += m.w * float64(s.Cost.Cycles(m.op))
		}
		return c * float64(s.CyclePS)
	}
	return cost(slow) / cost(fast)
}
