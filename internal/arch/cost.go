package arch

// Op classifies IR operations for the cost model. The interpreter charges
// Cost.Cycles(op) cycles per executed operation; multiplied by the machine's
// CyclePS this yields simulated execution time, the quantity the paper's
// profiler (Section 3.1) and performance estimator (Equation 1) consume.
type Op int

const (
	OpIntALU     Op = iota // add/sub/logic/compare on integers
	OpIntMul               // integer multiply
	OpIntDiv               // integer divide / remainder
	OpFloatALU             // float add/sub/compare
	OpFloatMul             // float multiply
	OpFloatDiv             // float divide
	OpLoad                 // memory load
	OpStore                // memory store
	OpBranch               // taken or fall-through branch
	OpCall                 // direct call (frame setup)
	OpCallInd              // indirect call through a function pointer
	OpAlloca               // stack allocation
	OpConvert              // width/kind conversion
	OpEndianSwap           // inserted endianness translation (Section 3.2)
	OpPtrConvert           // inserted address size conversion (Section 3.2)
	OpFptrMap              // function pointer map lookup (Section 3.4)
	OpIOByte               // one byte of local I/O
	numOps
)

// CostTable maps operation classes to their cycle cost.
type CostTable struct {
	cycles [numOps]int64
}

// Cycles reports the cycle cost of op.
func (t *CostTable) Cycles(op Op) int64 { return t.cycles[op] }

// Set overrides the cycle cost of op; used by calibration tests.
func (t *CostTable) Set(op Op, cycles int64) { t.cycles[op] = cycles }

// DefaultCosts returns a cost table with latencies in the usual relative
// proportions of a scalar in-order pipeline. Absolute program durations are
// additionally shaped by each workload's cost scale (see internal/workloads),
// so only the relative magnitudes matter here.
func DefaultCosts() CostTable {
	var t CostTable
	t.cycles[OpIntALU] = 1
	t.cycles[OpIntMul] = 3
	t.cycles[OpIntDiv] = 20
	t.cycles[OpFloatALU] = 3
	t.cycles[OpFloatMul] = 5
	t.cycles[OpFloatDiv] = 15
	t.cycles[OpLoad] = 4
	t.cycles[OpStore] = 4
	t.cycles[OpBranch] = 2
	t.cycles[OpCall] = 10
	t.cycles[OpCallInd] = 14
	t.cycles[OpAlloca] = 2
	t.cycles[OpConvert] = 1
	t.cycles[OpEndianSwap] = 1
	t.cycles[OpPtrConvert] = 1
	t.cycles[OpFptrMap] = 40 // hash lookup + indirection; visible in Fig. 7
	t.cycles[OpIOByte] = 30
	return t
}
