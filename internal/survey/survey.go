// Package survey embeds the paper's two non-experimental tables: the
// Android application study of Table 2 (how much native C/C++ code real
// apps carry and execute) and the related-work comparison of Table 5.
// These motivate the system rather than measure it, so reproduction means
// reporting the recorded data faithfully.
package survey

// AndroidApp is one row of Table 2.
type AndroidApp struct {
	Name        string
	Version     string
	Description string
	NativeLoC   int
	TotalLoC    int
	Runtime     string  // described runtime behaviour
	ExecPct     float64 // fraction of execution time in native code
}

// NativeRatio returns the C/C++ share of the code base in percent.
func (a AndroidApp) NativeRatio() float64 {
	if a.TotalLoC == 0 {
		return 0
	}
	return 100 * float64(a.NativeLoC) / float64(a.TotalLoC)
}

// Table2 returns the paper's study of the top 20 open source Android
// applications. VLC appears twice in the runtime columns of the paper (with
// and without the hardware decoder); we record the software-decoder row.
func Table2() []AndroidApp {
	return []AndroidApp{
		{"AdAway", "3.0.2", "AD blocker", 132882, 310321, "Read articles with ads", 21.54},
		{"Orbot", "14.1.4-noPIE", "Tor client", 675851, 969243, "Web browsing with Tor", 61.98},
		{"Firefox", "40.0", "Web browser", 8094678, 15509820, "Web browsing 4 websites", 88.27},
		{"VLC Player", "1.5.1.1", "Media player", 3584526, 6433726, "Play a movie w/o HW decoder", 92.34},
		{"Open Camera", "1.2", "Camera", 0, 10336, "N/A", 0},
		{"osmAnd", "2.1.1", "Map/Navigation", 53695, 450573, "Search nearby places", 23.86},
		{"Syncthing", "0.5.0-beta5", "File synchronizer", 0, 59461, "N/A", 0},
		{"AFWall+", "1.3.4.1", "Network traffic controller", 1514, 59741, "Web browsing 4 websites", 0.30},
		{"2048", "1.95", "Puzzle game", 0, 2232, "N/A", 0},
		{"K-9 Mail", "4.804", "Email client", 0, 96588, "N/A", 0},
		{"PDF Reader", "0.4.0", "PDF viewer", 334489, 594434, "Read a book with zoom", 28.30},
		{"ownCloud", "1.5.8", "File synchronizer", 0, 77141, "N/A", 0},
		{"DAVdroid", "0.6.2", "Private data synchronizer", 0, 7435, "N/A", 0},
		{"Barcode Scanner", "4.7.0", "2D/QR code scanner", 0, 50201, "N/A", 0},
		{"SatStat", "2", "Sensor status monitor", 0, 7480, "N/A", 0},
		{"Cool Reader", "3.1.2-72", "Ebook reader", 491556, 681001, "Read a book", 97.73},
		{"OS Monitor", "3.4.1.0", "OS monitor", 5902, 74513, "Read network and process info.", 4.38},
		{"Orweb", "0.6.1", "Web browser", 0, 14124, "N/A", 0},
		{"PPSSPP", "1.0.1.0", "PSP emulator", 1304973, 1438322, "Play a game for 1 minute", 97.68},
		{"Adblock Plus", "1.1.3", "AD blocker", 2102, 63779, "Read articles with ads", 22.83},
	}
}

// Table2Claim verifies the paper's framing sentence: "around one third of
// the 20 applications include native codes more than 50% and spend more
// than 20% of the total execution time to execute them". It returns the
// count of apps meeting either bar.
func Table2Claim() (nativeHeavy, timeHeavy int) {
	for _, a := range Table2() {
		if a.NativeRatio() > 50 {
			nativeHeavy++
		}
		if a.ExecPct > 20 {
			timeHeavy++
		}
	}
	return
}

// OffloadSystem is one row of Table 5, the related-work comparison.
type OffloadSystem struct {
	Name           string
	FullyAutomatic bool
	Manual         string // "Manual", "Annotation" or "" when automatic
	Decision       string // "Static" or "Dynamic"
	RequiresVM     bool
	Language       string
	Complexity     string // "Simple" or "Complex"
}

// Table5 returns the comparison of computation offload systems; the last
// row is this paper's system.
func Table5() []OffloadSystem {
	return []OffloadSystem{
		{"Cuckoo", false, "Manual", "Static", true, "Java", "Complex"},
		{"Li et al.", false, "Manual", "Static", false, "C", "Simple"},
		{"Roam", false, "Manual", "Dynamic", true, "Java", "Complex"},
		{"MAUI", false, "Annotation", "Dynamic", true, "C#", "Complex"},
		{"ThinkAir", false, "Annotation", "Dynamic", true, "Java", "Complex"},
		{"Wang and Li", false, "Annotation", "Dynamic", false, "C", "Simple"},
		{"DiET", true, "", "Static", true, "Java", "Simple"},
		{"Chen et al.", true, "", "Dynamic", true, "Java", "Simple"},
		{"HELVM", true, "", "Dynamic", true, "Java", "Simple"},
		{"OLIE", true, "", "Dynamic", true, "Java", "Complex"},
		{"CloneCloud", true, "", "Dynamic", true, "Java", "Complex"},
		{"COMET", true, "", "Dynamic", true, "Java", "Complex"},
		{"CMcloud", true, "", "Dynamic", true, "Java", "Complex"},
		{"Native Offloader", true, "", "Dynamic", false, "C", "Complex"},
	}
}
