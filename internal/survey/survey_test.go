package survey

import "testing"

func TestTable2Integrity(t *testing.T) {
	apps := Table2()
	if len(apps) != 20 {
		t.Fatalf("Table 2 has %d apps, want 20", len(apps))
	}
	for _, a := range apps {
		if a.NativeLoC > a.TotalLoC {
			t.Errorf("%s: native LoC exceeds total", a.Name)
		}
		if a.NativeLoC == 0 && a.ExecPct != 0 {
			t.Errorf("%s: no native code but nonzero native time", a.Name)
		}
		if r := a.NativeRatio(); r < 0 || r > 100 {
			t.Errorf("%s: ratio %.2f out of range", a.Name, r)
		}
	}
	// Spot-check two rows against the paper.
	if apps[2].Name != "Firefox" || apps[2].NativeLoC != 8094678 {
		t.Errorf("Firefox row drifted: %+v", apps[2])
	}
	if apps[18].Name != "PPSSPP" || apps[18].ExecPct != 97.68 {
		t.Errorf("PPSSPP row drifted: %+v", apps[18])
	}
}

func TestTable2ClaimCounts(t *testing.T) {
	nh, th := Table2Claim()
	if nh != 6 || th != 9 {
		t.Errorf("claim counts = %d, %d; want 6, 9", nh, th)
	}
}

func TestTable5Integrity(t *testing.T) {
	rows := Table5()
	if len(rows) != 14 {
		t.Fatalf("Table 5 has %d systems, want 14", len(rows))
	}
	// The paper's differentiation: Native Offloader is the only
	// fully-automatic + dynamic + VM-free + complex-C system.
	unique := 0
	for _, s := range rows {
		if s.FullyAutomatic && s.Decision == "Dynamic" && !s.RequiresVM &&
			s.Language == "C" && s.Complexity == "Complex" {
			unique++
			if s.Name != "Native Offloader" {
				t.Errorf("unexpected system matches the claim: %s", s.Name)
			}
		}
		if !s.FullyAutomatic && s.Manual == "" {
			t.Errorf("%s: manual systems must say how", s.Name)
		}
	}
	if unique != 1 {
		t.Errorf("%d systems match the uniqueness claim, want exactly 1", unique)
	}
}
