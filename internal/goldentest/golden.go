// Package goldentest centralizes golden-file comparison for the repo's
// snapshot tests. Every golden test calls Check, and one shared -update
// flag (wired to `make golden`) regenerates the files, replacing the old
// per-package regeneration instructions.
package goldentest

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// Updating reports whether the test run was invoked with -update.
func Updating() bool { return *update }

// Check compares got against the golden file testdata/<name> relative to
// the calling test's package directory. With -update it (re)writes the
// file instead; without it, a missing or drifted file fails the test with
// the regeneration command.
func Check(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `make golden`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; diff the output or run `make golden`\ngot:\n%s", name, got)
	}
}
