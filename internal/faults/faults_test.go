package faults

import (
	"testing"

	"repro/internal/simtime"
)

func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, DropRate: 0.2, CorruptRate: 0.1, DelayRate: 0.1, MaxDelay: simtime.Millisecond}
	a := MustInjector(plan)
	b := MustInjector(plan)
	for i := 0; i < 10_000; i++ {
		at := simtime.PS(i) * simtime.Microsecond
		fa, fb := a.Decide(at), b.Decide(at)
		if fa != fb {
			t.Fatalf("transfer %d: injectors diverged: %+v vs %+v", i, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("no faults injected over 10k transfers at 40% combined rate")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := MustInjector(Plan{Seed: 1, DropRate: 0.5})
	b := MustInjector(Plan{Seed: 2, DropRate: 0.5})
	same := true
	for i := 0; i < 256; i++ {
		if a.Decide(0).Kind != b.Decide(0).Kind {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 256-transfer schedules")
	}
}

func TestRatesApproximatelyHonored(t *testing.T) {
	in := MustInjector(Plan{Seed: 7, DropRate: 0.25})
	const n = 50_000
	for i := 0; i < n; i++ {
		in.Decide(0)
	}
	got := float64(in.Stats().Drops) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("drop rate 0.25 realized as %.4f over %d transfers", got, n)
	}
}

func TestOutageWindows(t *testing.T) {
	in := MustInjector(Plan{Outages: []Window{
		{Start: 10 * simtime.Millisecond, End: 20 * simtime.Millisecond},
	}})
	if f := in.Decide(5 * simtime.Millisecond); f.Kind != None {
		t.Fatalf("before window: got %v", f.Kind)
	}
	if f := in.Decide(10 * simtime.Millisecond); f.Kind != Outage {
		t.Fatalf("at window start: got %v", f.Kind)
	}
	if f := in.Decide(19 * simtime.Millisecond); f.Kind != Outage {
		t.Fatalf("inside window: got %v", f.Kind)
	}
	if f := in.Decide(20 * simtime.Millisecond); f.Kind != None {
		t.Fatalf("at window end (exclusive): got %v", f.Kind)
	}
	if in.Stats().OutageHits != 2 {
		t.Fatalf("OutageHits = %d, want 2", in.Stats().OutageHits)
	}
}

func TestDelayBounded(t *testing.T) {
	max := 2 * simtime.Millisecond
	in := MustInjector(Plan{Seed: 3, DelayRate: 1, MaxDelay: max})
	for i := 0; i < 1000; i++ {
		f := in.Decide(0)
		if f.Kind != Delay {
			t.Fatalf("rate 1 did not inject a delay")
		}
		if f.Delay <= 0 || f.Delay > max {
			t.Fatalf("delay %v outside (0, %v]", f.Delay, max)
		}
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if f := in.Decide(0); f != (Fate{}) {
		t.Fatalf("nil injector injected %+v", f)
	}
	if in.Stats().Total() != 0 {
		t.Fatal("nil injector has stats")
	}
}

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("drop=0.05,corrupt=0.01,delay=0.02,spike=5ms,outage=100ms-250ms,outage=1s-1.5s,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed:        42,
		DropRate:    0.05,
		CorruptRate: 0.01,
		DelayRate:   0.02,
		MaxDelay:    5 * simtime.Millisecond,
		Outages: []Window{
			{Start: 100 * simtime.Millisecond, End: 250 * simtime.Millisecond},
			{Start: simtime.Second, End: 1500 * simtime.Millisecond},
		},
	}
	if p.Seed != want.Seed || p.DropRate != want.DropRate || p.CorruptRate != want.CorruptRate ||
		p.DelayRate != want.DelayRate || p.MaxDelay != want.MaxDelay || len(p.Outages) != 2 ||
		p.Outages[0] != want.Outages[0] || p.Outages[1] != want.Outages[1] {
		t.Fatalf("Parse = %+v, want %+v", p, want)
	}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back.String() != p.String() {
		t.Fatalf("round trip changed plan: %q vs %q", back.String(), p.String())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"",
		"drop",
		"drop=nope",
		"drop=1.5",
		"wat=1",
		"outage=5ms",
		"outage=30ms-10ms",
		"spike=-4ms",
		"seed=-1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}
