package faults

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestParseServerRoundTrip(t *testing.T) {
	p, err := ParseServer("crash=1@300ms,drain=0@1s,slow=2@100ms-2sx3,stall=3@50ms-80ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 || p.Seed != 7 {
		t.Fatalf("ParseServer = %+v", p)
	}
	// Events are sorted by start time.
	wantKinds := []ServerKind{Stall, Slowdown, Crash, Drain}
	for i, k := range wantKinds {
		if p.Events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v (events %+v)", i, p.Events[i].Kind, k, p.Events)
		}
	}
	back, err := ParseServer(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back.String() != p.String() {
		t.Fatalf("round trip changed plan: %q vs %q", back.String(), p.String())
	}
}

func TestParseServerRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"",
		"crash",
		"crash=1",
		"crash=x@5ms",
		"crash=-1@5ms",
		"wat=1@5ms",
		"slow=0@100ms-200ms",               // missing factor
		"slow=0@100ms-200msx1",             // factor must be > 1
		"slow=0@200ms-100msx2",             // empty window
		"stall=0@5ms",                      // missing window
		"crash=0@1s,crash=0@2s",            // two terminal events on one server
		"crash=0@1s,drain=0@2s",            // crash + drain on one server
		"slow=0@1s-2sx2,stall=0@1500ms-3s", // overlapping windows
	} {
		if _, err := ParseServer(spec); err == nil {
			t.Errorf("ParseServer(%q) accepted", spec)
		}
	}
}

func TestServerPlanQueries(t *testing.T) {
	p, err := ParseServer("crash=1@300ms,slow=0@100ms-200msx3,stall=2@50ms-80ms,drain=3@1s")
	if err != nil {
		t.Fatal(err)
	}
	ms := simtime.Millisecond
	if p.CrashAt(1, 299*ms) || !p.CrashAt(1, 300*ms) || p.CrashAt(0, simtime.Second) {
		t.Fatal("CrashAt wrong")
	}
	if at, ok := p.CrashTime(1); !ok || at != 300*ms {
		t.Fatalf("CrashTime = %v, %v", at, ok)
	}
	if p.DrainAt(3, 999*ms) || !p.DrainAt(3, simtime.Second) {
		t.Fatal("DrainAt wrong")
	}
	if f := p.SlowFactor(0, 150*ms); f != 3 {
		t.Fatalf("SlowFactor inside window = %v, want 3", f)
	}
	if f := p.SlowFactor(0, 250*ms); f != 1 {
		t.Fatalf("SlowFactor outside window = %v, want 1", f)
	}
	if until, ok := p.StallUntil(2, 60*ms); !ok || until != 80*ms {
		t.Fatalf("StallUntil = %v, %v", until, ok)
	}
	if _, ok := p.StallUntil(2, 90*ms); ok {
		t.Fatal("StallUntil past window")
	}
}

func TestSlowExtra(t *testing.T) {
	p := &ServerPlan{Events: []ServerEvent{
		{Kind: Slowdown, Server: 0, Start: 100, End: 200, Factor: 3},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		from, to, want simtime.PS
	}{
		{0, 100, 0},     // entirely before
		{200, 300, 0},   // entirely after
		{100, 200, 200}, // full window: 100ps x (3-1)
		{150, 250, 100}, // half overlap: 50ps x 2
		{0, 1000, 200},  // burst spans the window
		{120, 130, 20},  // burst inside the window
	} {
		if got := p.SlowExtra(0, tc.from, tc.to); got != tc.want {
			t.Errorf("SlowExtra(0, %d, %d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
	if got := p.SlowExtra(1, 100, 200); got != 0 {
		t.Errorf("SlowExtra on unaffected server = %d, want 0", got)
	}
	if got := (*ServerPlan)(nil).SlowExtra(0, 100, 200); got != 0 {
		t.Errorf("nil plan SlowExtra = %d", got)
	}
}

func TestOutageOverlapRejected(t *testing.T) {
	ms := simtime.Millisecond
	p := &Plan{Outages: []Window{
		{Start: 10 * ms, End: 30 * ms},
		{Start: 20 * ms, End: 40 * ms},
	}}
	err := p.Validate()
	if err == nil {
		t.Fatal("overlapping outage windows accepted")
	}
	if !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("error does not name the overlap: %v", err)
	}
	// The error must identify the offending window.
	if !strings.Contains(err.Error(), "20.000ms") {
		t.Fatalf("error does not report the offending window: %v", err)
	}
	if _, perr := Parse("outage=10ms-30ms,outage=20ms-40ms"); perr == nil {
		t.Fatal("Parse accepted overlapping outages")
	}
	// Unsorted but disjoint literal plans stay valid.
	ok := &Plan{Outages: []Window{
		{Start: 50 * ms, End: 60 * ms},
		{Start: 10 * ms, End: 30 * ms},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("disjoint unsorted windows rejected: %v", err)
	}
}
