// Package faults is a deterministic, seeded link-fault injector. The
// paper's runtime assumes the 802.11n/ac link stays up for the entire
// offload; real mobile links drop frames, spike in latency, corrupt
// payloads and disappear entirely for windows of time. A Plan describes
// such a failure pattern and an Injector replays it — in simulated time,
// fully reproducible from the seed — so the recovery machinery in
// internal/offrt can be exercised and regression-tested bit-for-bit.
//
// The injector is consulted by netsim.LinkStats on every wire transfer;
// everything else (deadlines, retries, fallback) lives in the runtime.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/simtime"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// None means the transfer proceeds untouched.
	None Kind = iota
	// Drop loses the message entirely; the sender only learns via deadline.
	Drop
	// Corrupt delivers the message but its checksum fails at the receiver.
	Corrupt
	// Delay delivers the message after an added latency spike.
	Delay
	// Outage means the transfer departed inside a scheduled link-outage
	// window; like Drop, but deterministic in time rather than random.
	Outage
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	case Outage:
		return "outage"
	}
	return "unknown"
}

// Window is one scheduled link outage, active for instants in [Start, End).
type Window struct {
	Start, End simtime.PS
}

// Plan is a complete, seed-reproducible fault schedule for one run.
// Rates are per-message probabilities in [0, 1]; windows are absolute
// simulated instants.
type Plan struct {
	// Seed drives the pseudo-random drop/corrupt/delay decisions. Two runs
	// with the same plan and the same transfer sequence inject identical
	// faults.
	Seed uint64
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// CorruptRate is the probability a delivered message fails its CRC.
	CorruptRate float64
	// DelayRate is the probability of a latency spike; the spike length is
	// drawn uniformly from (0, MaxDelay].
	DelayRate float64
	// MaxDelay bounds the latency spike (default 5ms when DelayRate > 0).
	MaxDelay simtime.PS
	// Outages are timed windows during which every transfer is lost.
	Outages []Window
}

// DefaultMaxDelay is used when a plan enables latency spikes without
// bounding them.
const DefaultMaxDelay = 5 * simtime.Millisecond

// Validate checks rates and outage windows.
func (p *Plan) Validate() error {
	for _, r := range [...]struct {
		name string
		v    float64
	}{{"drop", p.DropRate}, {"corrupt", p.CorruptRate}, {"delay", p.DelayRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faults: negative max delay %v", p.MaxDelay)
	}
	for i, w := range p.Outages {
		if w.Start < 0 || w.End <= w.Start {
			return fmt.Errorf("faults: outage window %d [%v, %v) is empty or negative", i, w.Start, w.End)
		}
	}
	// Overlapping windows are almost always a spec typo; taking "the union"
	// silently would hide it, so name the offending pair instead. Check over
	// a sorted copy: Validate accepts plans built as literals in any order.
	if len(p.Outages) > 1 {
		sorted := append([]Window(nil), p.Outages...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		for i := 1; i < len(sorted); i++ {
			prev, cur := sorted[i-1], sorted[i]
			if cur.Start < prev.End {
				return fmt.Errorf("faults: outage window [%v, %v) overlaps [%v, %v)", cur.Start, cur.End, prev.Start, prev.End)
			}
		}
	}
	return nil
}

// Active reports whether the plan can inject anything at all.
func (p *Plan) Active() bool {
	return p != nil && (p.DropRate > 0 || p.CorruptRate > 0 || p.DelayRate > 0 || len(p.Outages) > 0)
}

// String renders the plan in the -faults=<spec> syntax accepted by Parse.
func (p *Plan) String() string {
	var parts []string
	if p.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.DropRate))
	}
	if p.CorruptRate > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", p.CorruptRate))
	}
	if p.DelayRate > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g", p.DelayRate))
		if p.MaxDelay > 0 {
			parts = append(parts, fmt.Sprintf("spike=%v", p.MaxDelay))
		}
	}
	for _, w := range p.Outages {
		parts = append(parts, fmt.Sprintf("outage=%v-%v", w.Start, w.End))
	}
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	return strings.Join(parts, ",")
}

// Parse builds a Plan from a compact spec string, the syntax of the
// cmd/offloadrun -faults flag:
//
//	drop=0.05,corrupt=0.01,delay=0.02,spike=5ms,outage=100ms-250ms,seed=42
//
// Keys may appear in any order; outage may repeat. Durations use Go
// duration syntax (ms, s, ...).
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faults: empty spec")
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: malformed field %q (want key=value)", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			p.Seed = n
		case "drop", "corrupt", "delay":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s rate %q: %v", key, val, err)
			}
			switch key {
			case "drop":
				p.DropRate = r
			case "corrupt":
				p.CorruptRate = r
			case "delay":
				p.DelayRate = r
			}
		case "spike":
			d, err := parseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("faults: bad spike %q: %v", val, err)
			}
			p.MaxDelay = d
		case "outage":
			from, to, ok := strings.Cut(val, "-")
			if !ok {
				return nil, fmt.Errorf("faults: malformed outage %q (want start-end)", val)
			}
			start, err := parseDuration(from)
			if err != nil {
				return nil, fmt.Errorf("faults: bad outage start %q: %v", from, err)
			}
			end, err := parseDuration(to)
			if err != nil {
				return nil, fmt.Errorf("faults: bad outage end %q: %v", to, err)
			}
			p.Outages = append(p.Outages, Window{Start: start, End: end})
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	sort.Slice(p.Outages, func(i, j int) bool { return p.Outages[i].Start < p.Outages[j].Start })
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseDuration(s string) (simtime.PS, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return simtime.PS(d.Nanoseconds()) * simtime.Nanosecond, nil
}

// Stats counts injected faults by kind.
type Stats struct {
	Drops, Corrupts, Delays, OutageHits int64
}

// Total is the number of injected faults of any kind.
func (s Stats) Total() int64 { return s.Drops + s.Corrupts + s.Delays + s.OutageHits }

// Fate is the injector's verdict for one transfer.
type Fate struct {
	Kind Kind
	// Delay is the added latency when Kind == Delay.
	Delay simtime.PS
}

// Injector replays a Plan. It is not safe for concurrent use, matching
// netsim.LinkStats: the simulation strictly alternates mobile and server,
// so at most one side touches the link at a time.
type Injector struct {
	plan  Plan
	rng   uint64
	stats Stats
}

// NewInjector validates the plan and seeds the PRNG.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.DelayRate > 0 && p.MaxDelay == 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	return &Injector{plan: p, rng: p.Seed}, nil
}

// MustInjector is NewInjector for plans known valid (tests, literals).
func MustInjector(p Plan) *Injector {
	in, err := NewInjector(p)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns a copy of the injector's (normalized) plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns the per-kind injected-fault counts so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Decide returns the fate of one transfer departing at the given instant.
// A nil injector injects nothing.
func (in *Injector) Decide(at simtime.PS) Fate {
	if in == nil {
		return Fate{}
	}
	for _, w := range in.plan.Outages {
		if at >= w.Start && at < w.End {
			in.stats.OutageHits++
			return Fate{Kind: Outage}
		}
	}
	if in.roll(in.plan.DropRate) {
		in.stats.Drops++
		return Fate{Kind: Drop}
	}
	if in.roll(in.plan.CorruptRate) {
		in.stats.Corrupts++
		return Fate{Kind: Corrupt}
	}
	if in.roll(in.plan.DelayRate) {
		in.stats.Delays++
		// Uniform in (0, MaxDelay]: never zero, so a "delay" fault always
		// perturbs timing and the run still completes deterministically.
		d := simtime.PS(in.next()%uint64(in.plan.MaxDelay)) + 1
		return Fate{Kind: Delay, Delay: d}
	}
	return Fate{}
}

// roll consumes one PRNG draw iff the rate is enabled, keeping disabled
// fault classes free of PRNG state so plans compose predictably.
func (in *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return in.randFloat() < rate
}

// next is splitmix64: tiny, fast, and good enough for fault scheduling;
// crucially it needs no dependencies and is trivially reproducible.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (in *Injector) randFloat() float64 {
	return float64(in.next()>>11) / (1 << 53)
}
