package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simtime"
)

// ServerKind classifies one injected server fault.
type ServerKind uint8

const (
	// ServerNone means the server is healthy at the queried instant.
	ServerNone ServerKind = iota
	// Slowdown multiplies the server's compute time by Factor inside the
	// window; output is unchanged, only timing shifts.
	Slowdown
	// Stall freezes the server completely for the window: no progress, no
	// replies, then normal service resumes at the window end.
	Stall
	// Crash kills the server at Start; all in-flight state is lost and the
	// server never comes back.
	Crash
	// Drain is a scheduled maintenance shutdown starting at Start: the
	// server announces it is going away, giving the runtime a chance to
	// migrate in-flight work off it before service stops.
	Drain
)

func (k ServerKind) String() string {
	switch k {
	case ServerNone:
		return "none"
	case Slowdown:
		return "slow"
	case Stall:
		return "stall"
	case Crash:
		return "crash"
	case Drain:
		return "drain"
	}
	return "unknown"
}

// ServerEvent is one scheduled fault on one server. Slowdown and Stall are
// windowed [Start, End); Crash and Drain are open-ended from Start on.
type ServerEvent struct {
	Kind   ServerKind
	Server int
	Start  simtime.PS
	// End closes a Slowdown/Stall window (exclusive); ignored for
	// Crash/Drain, which never end.
	End simtime.PS
	// Factor is the compute-time multiplier for Slowdown (must be > 1).
	Factor float64
}

// ServerPlan is a complete, deterministic server-fault schedule for one
// run. Unlike the link Plan there is no randomness: server faults are
// timed events, so a seed only tags the plan for reporting.
type ServerPlan struct {
	Seed   uint64
	Events []ServerEvent
}

// Active reports whether the plan schedules any fault at all.
func (p *ServerPlan) Active() bool { return p != nil && len(p.Events) > 0 }

// Validate checks every event for shape and rejects conflicting schedules
// on the same server (two crashes, overlapping windows, ...). A nil plan
// is valid: it schedules nothing.
func (p *ServerPlan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.Server < 0 {
			return fmt.Errorf("faults: server event %d has negative server %d", i, e.Server)
		}
		if e.Start < 0 {
			return fmt.Errorf("faults: server event %d starts at negative time %v", i, e.Start)
		}
		switch e.Kind {
		case Slowdown:
			if e.End <= e.Start {
				return fmt.Errorf("faults: slowdown window %d [%v, %v) is empty", i, e.Start, e.End)
			}
			if e.Factor <= 1 {
				return fmt.Errorf("faults: slowdown %d factor %v must be > 1", i, e.Factor)
			}
		case Stall:
			if e.End <= e.Start {
				return fmt.Errorf("faults: stall window %d [%v, %v) is empty", i, e.Start, e.End)
			}
		case Crash, Drain:
			// Open-ended; End is ignored.
		default:
			return fmt.Errorf("faults: server event %d has invalid kind %d", i, e.Kind)
		}
	}
	// At most one terminal event (crash or drain) per server, and windowed
	// events on one server must not overlap each other.
	perServer := map[int][]ServerEvent{}
	for _, e := range p.Events {
		perServer[e.Server] = append(perServer[e.Server], e)
	}
	for srv, evs := range perServer {
		terminal := 0
		var windows []ServerEvent
		for _, e := range evs {
			if e.Kind == Crash || e.Kind == Drain {
				terminal++
			} else {
				windows = append(windows, e)
			}
		}
		if terminal > 1 {
			return fmt.Errorf("faults: server %d has %d terminal (crash/drain) events, want at most 1", srv, terminal)
		}
		sort.Slice(windows, func(i, j int) bool { return windows[i].Start < windows[j].Start })
		for i := 1; i < len(windows); i++ {
			prev, cur := windows[i-1], windows[i]
			if cur.Start < prev.End {
				return fmt.Errorf("faults: server %d %s window [%v, %v) overlaps %s window [%v, %v)",
					srv, cur.Kind, cur.Start, cur.End, prev.Kind, prev.Start, prev.End)
			}
		}
	}
	return nil
}

// String renders the plan in the -server-faults=<spec> syntax accepted by
// ParseServer.
func (p *ServerPlan) String() string {
	var parts []string
	for _, e := range p.Events {
		switch e.Kind {
		case Slowdown:
			parts = append(parts, fmt.Sprintf("slow=%d@%v-%vx%g", e.Server, e.Start, e.End, e.Factor))
		case Stall:
			parts = append(parts, fmt.Sprintf("stall=%d@%v-%v", e.Server, e.Start, e.End))
		case Crash:
			parts = append(parts, fmt.Sprintf("crash=%d@%v", e.Server, e.Start))
		case Drain:
			parts = append(parts, fmt.Sprintf("drain=%d@%v", e.Server, e.Start))
		}
	}
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	return strings.Join(parts, ",")
}

// ParseServer builds a ServerPlan from a compact spec string, the syntax
// of the -server-faults flag:
//
//	crash=1@300ms,drain=0@1s,slow=2@100ms-2sx3,stall=3@50ms-80ms,seed=7
//
// Each field is kind=<server>@<schedule>; slow/stall take a start-end
// window (slow with a trailing x<factor>), crash/drain a single instant.
// Durations use Go duration syntax (ms, s, ...).
func ParseServer(spec string) (*ServerPlan, error) {
	p := &ServerPlan{}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faults: empty server spec")
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: malformed server field %q (want key=value)", field)
		}
		if key == "seed" {
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			p.Seed = n
			continue
		}
		var kind ServerKind
		switch key {
		case "slow":
			kind = Slowdown
		case "stall":
			kind = Stall
		case "crash":
			kind = Crash
		case "drain":
			kind = Drain
		default:
			return nil, fmt.Errorf("faults: unknown server fault key %q", key)
		}
		srvStr, sched, ok := strings.Cut(val, "@")
		if !ok {
			return nil, fmt.Errorf("faults: malformed %s %q (want <server>@<schedule>)", key, val)
		}
		srv, err := strconv.Atoi(srvStr)
		if err != nil || srv < 0 {
			return nil, fmt.Errorf("faults: bad server index %q in %q", srvStr, field)
		}
		e := ServerEvent{Kind: kind, Server: srv}
		switch kind {
		case Crash, Drain:
			at, err := parseDuration(sched)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s time %q: %v", key, sched, err)
			}
			e.Start = at
		case Slowdown, Stall:
			if kind == Slowdown {
				window, factor, ok := strings.Cut(sched, "x")
				if !ok {
					return nil, fmt.Errorf("faults: malformed slow %q (want start-endxfactor)", sched)
				}
				f, err := strconv.ParseFloat(factor, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: bad slowdown factor %q: %v", factor, err)
				}
				e.Factor = f
				sched = window
			}
			from, to, ok := strings.Cut(sched, "-")
			if !ok {
				return nil, fmt.Errorf("faults: malformed %s window %q (want start-end)", key, sched)
			}
			start, err := parseDuration(from)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s start %q: %v", key, from, err)
			}
			end, err := parseDuration(to)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s end %q: %v", key, to, err)
			}
			e.Start, e.End = start, end
		}
		p.Events = append(p.Events, e)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Start < p.Events[j].Start })
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// CrashAt reports whether the server has crashed at or before the instant.
func (p *ServerPlan) CrashAt(server int, at simtime.PS) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == Crash && e.Server == server && at >= e.Start {
			return true
		}
	}
	return false
}

// DrainAt reports whether the server is draining at the instant.
func (p *ServerPlan) DrainAt(server int, at simtime.PS) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == Drain && e.Server == server && at >= e.Start {
			return true
		}
	}
	return false
}

// CrashTime returns the server's crash instant, if it has one scheduled.
func (p *ServerPlan) CrashTime(server int) (simtime.PS, bool) {
	if p == nil {
		return 0, false
	}
	for _, e := range p.Events {
		if e.Kind == Crash && e.Server == server {
			return e.Start, true
		}
	}
	return 0, false
}

// DrainTime returns the server's drain instant, if it has one scheduled.
func (p *ServerPlan) DrainTime(server int) (simtime.PS, bool) {
	if p == nil {
		return 0, false
	}
	for _, e := range p.Events {
		if e.Kind == Drain && e.Server == server {
			return e.Start, true
		}
	}
	return 0, false
}

// StallUntil returns the end of the stall window covering the instant, if
// the server is stalled at it.
func (p *ServerPlan) StallUntil(server int, at simtime.PS) (simtime.PS, bool) {
	if p == nil {
		return 0, false
	}
	for _, e := range p.Events {
		if e.Kind == Stall && e.Server == server && at >= e.Start && at < e.End {
			return e.End, true
		}
	}
	return 0, false
}

// SlowFactor returns the compute-time multiplier in effect on the server
// at the instant (1 when healthy).
func (p *ServerPlan) SlowFactor(server int, at simtime.PS) float64 {
	if p == nil {
		return 1
	}
	for _, e := range p.Events {
		if e.Kind == Slowdown && e.Server == server && at >= e.Start && at < e.End {
			return e.Factor
		}
	}
	return 1
}

// SlowExtra returns the extra wall time a compute burst occupying
// [from, to) on a healthy server would take under the plan's slowdown
// windows: the overlap with each window is stretched by (factor - 1).
// This lets the runtime charge slowdowns retroactively at its next
// heartbeat boundary without simulating the server cycle by cycle.
func (p *ServerPlan) SlowExtra(server int, from, to simtime.PS) simtime.PS {
	if p == nil || to <= from {
		return 0
	}
	var extra simtime.PS
	for _, e := range p.Events {
		if e.Kind != Slowdown || e.Server != server {
			continue
		}
		lo, hi := max(from, e.Start), min(to, e.End)
		if hi > lo {
			extra += simtime.PS(float64(hi-lo) * (e.Factor - 1))
		}
	}
	return extra
}
