package compiler

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/ir/analysis"
	"repro/internal/profile"
	"repro/internal/workloads"
)

func chessProfileAndModule(t *testing.T) (*ir.Module, *profile.Report) {
	t.Helper()
	mod := workloads.BuildChess(workloads.DefaultChessConfig())
	prof := profileModule(t, mod, workloads.ChessInput(5, 2))
	return mod, prof
}

func profileModule(t *testing.T, mod *ir.Module, io *interp.StdIO) *profile.Report {
	t.Helper()
	work := mod.Clone("prof")
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	m, err := interp.NewMachine(interp.Config{
		Name: "prof", Spec: spec, Mod: work, IO: io,
		CostScale: workloads.ChessCostScale, InitUVAGlobals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func compileChess(t *testing.T) (*ir.Module, *Result) {
	t.Helper()
	mod, prof := chessProfileAndModule(t)
	res, err := Compile(mod, prof, Default(650_000_000))
	if err != nil {
		t.Fatal(err)
	}
	return mod, res
}

func TestChessTargetSelection(t *testing.T) {
	_, res := compileChess(t)
	if len(res.Targets) == 0 {
		t.Fatal("no targets")
	}
	// getAITurn is the paper's selected target; runGame and main are
	// filtered (scanf), for_j-style inner candidates lose to nesting.
	if res.Targets[0].Name != "getAITurn" {
		t.Errorf("primary target = %s, want getAITurn", res.Targets[0].Name)
	}
	// The candidate report shows the machine-specific filtering.
	var sawRunGame, sawPlayer bool
	for _, c := range res.Candidates {
		switch c.Name {
		case "runGame":
			sawRunGame = true
			if !c.Machine {
				t.Error("runGame should be machine-specific (calls getPlayerTurn)")
			}
		case "getPlayerTurn":
			sawPlayer = true
			if !c.Machine || !strings.Contains(c.Reason, "scanf") {
				t.Errorf("getPlayerTurn reason = %q, want scanf taint", c.Reason)
			}
		}
	}
	if !sawRunGame || !sawPlayer {
		t.Error("candidate report incomplete")
	}
}

func TestChessPartitionShapes(t *testing.T) {
	_, res := compileChess(t)

	// Mobile binary: gate + offload around the getAITurn call site.
	mobileText := res.Mobile.String()
	for _, want := range []string{"no.gate", "no.offload", "getAITurn"} {
		if !strings.Contains(mobileText, want) {
			t.Errorf("mobile binary missing %q", want)
		}
	}
	// Server binary: listen loop, dispatch, remote printf, no
	// getPlayerTurn (unused function removal).
	serverText := res.Server.String()
	for _, want := range []string{"listenClient", "no.accept", "no.sendreturn", "r_printf"} {
		if !strings.Contains(serverText, want) {
			t.Errorf("server binary missing %q", want)
		}
	}
	if res.Server.Func("getPlayerTurn") != nil {
		t.Error("getPlayerTurn should be removed from the server binary")
	}
	removed := strings.Join(res.RemovedFuncs, " ")
	if !strings.Contains(removed, "getPlayerTurn") {
		t.Errorf("removed list %v should include getPlayerTurn", res.RemovedFuncs)
	}
	// Stack reallocation.
	if res.Server.StackBase == res.Mobile.StackBase {
		t.Error("server stack not reallocated away from the mobile stack")
	}
	// printf must NOT survive un-rewritten in server code reachable from
	// the target.
	if strings.Contains(serverText, "call @printf") {
		t.Error("server binary still calls local printf")
	}
}

func TestChessUnificationStatistics(t *testing.T) {
	_, res := compileChess(t)
	if res.ReferencedGVs == 0 {
		t.Error("chess references maxDepth/board/evals; ReferencedGVs should be > 0")
	}
	if res.ReferencedGVs > res.TotalGVs {
		t.Error("referenced globals exceed total")
	}
	if res.FptrUses == 0 {
		t.Error("chess uses the evals table; fptr uses should be counted")
	}
	if res.OptimizerReport.MappedFptrSites == 0 {
		t.Error("server indirect calls should be mapped")
	}
	if res.OptimizerReport.RemoteIOSites == 0 {
		t.Error("server printf sites should be rewritten to r_printf")
	}
	// All mallocs became u_malloc in both partitions.
	for _, m := range []*ir.Module{res.Mobile, res.Server} {
		text := m.String()
		if strings.Contains(text, "call @malloc") {
			t.Errorf("%s still calls plain malloc", m.Name)
		}
	}
	// Referenced globals have UVA homes.
	for _, name := range []string{"maxDepth", "board", "evals"} {
		g := res.Mobile.Global(name)
		if g == nil || g.Home != ir.HomeUVA {
			t.Errorf("global %s not reallocated to the UVA space", name)
		}
		sg := res.Server.Global(name)
		if sg == nil || sg.UVAAddr != g.UVAAddr {
			t.Errorf("global %s UVA homes disagree across binaries", name)
		}
	}
}

func TestCompileRejectsUnprofitable(t *testing.T) {
	// A trivially cheap program yields no profitable target.
	mod := ir.NewModule("tiny")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("leaf", ir.I32)
	b.Ret(ir.Int(1))
	b.NewFunc("main", ir.I32)
	b.Ret(b.Call(f))
	b.Finish()

	work := mod.Clone("p")
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	m, _ := interp.NewMachine(interp.Config{Name: "p", Spec: spec, Mod: work})
	prof, err := profile.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(mod, prof, Default(650_000_000)); err == nil {
		t.Error("expected 'no profitable target' error")
	}
}

func TestCompileSummary(t *testing.T) {
	_, res := compileChess(t)
	s := res.Summary()
	for _, want := range []string{"getAITurn", "offloaded", "referenced"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestLoopTargetOutlined(t *testing.T) {
	// A program whose only hot region is a loop in main: the selector
	// must outline it (paper targets like main_for.cond in Table 4).
	mod := ir.NewModule("looper")
	b := ir.NewBuilder(mod)
	data := b.GlobalVar("data", ir.Ptr(ir.F64))
	b.NewFunc("main", ir.I32)
	raw := b.CallExtern(ir.ExternMalloc, ir.Int(8*2048))
	arr := b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.F64))
	b.Store(data, arr)
	b.For("for", ir.Int(0), ir.Int(400), ir.Int(1), func(i ir.Value) {
		b.For("inner", ir.Int(0), ir.Int(2048), ir.Int(1), func(j ir.Value) {
			p := b.Index(b.Load(data), j)
			v := b.Load(p)
			b.Store(p, b.Add(b.Mul(v, ir.Float(1.0001)), ir.Float(0.5)))
		})
	})
	b.CallExtern(ir.ExternPrintf, b.Str("done %f\n"), b.Load(b.Index(b.Load(data), ir.Int(7))))
	b.Ret(ir.Int(0))
	b.Finish()

	work := mod.Clone("p")
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	m, _ := interp.NewMachine(interp.Config{Name: "p", Spec: spec, Mod: work, CostScale: 4000})
	prof, err := profile.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	opt := Default(650_000_000)
	res, err := Compile(mod, prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) == 0 || !res.Targets[0].IsLoop {
		t.Fatalf("expected a loop target, got %+v", res.Targets)
	}
	if !strings.HasPrefix(res.Targets[0].Name, "main_for") {
		t.Errorf("loop target name = %s, want main_for*", res.Targets[0].Name)
	}
	// The outlined function must exist in both partitions.
	if res.Mobile.Func(res.Targets[0].Name) == nil || res.Server.Func(res.Targets[0].Name) == nil {
		t.Error("outlined loop function missing from a partition")
	}
}

func TestPartitionedBinariesRoundTripThroughParser(t *testing.T) {
	// The compiler's output (gates, dispatch loop, remote I/O, mapped
	// fptr calls, UVA globals, task attributes) must survive a full
	// print -> parse cycle: this is what lets offloadc dumps be inspected
	// and re-executed.
	_, res := compileChess(t)
	opt := Default(650_000_000)
	specs := map[*ir.Module]*arch.Spec{res.Mobile: opt.Mobile, res.Server: opt.Server}
	for _, m := range []*ir.Module{res.Mobile, res.Server} {
		text := m.String()
		parsed, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", m.Name, err)
		}
		// The parser yields unlowered IR; re-lowering against the same
		// targets must reconstruct the identical binary.
		parsed.Name = m.Name
		ir.Lower(parsed, specs[m], opt.Mobile)
		if got := parsed.String(); got != text {
			t.Errorf("%s: roundtrip drift:\n--- printed ---\n%.600s\n--- reparsed ---\n%.600s", m.Name, text, got)
		}
		if parsed.StackBase != m.StackBase || parsed.Unified != m.Unified {
			t.Errorf("%s: module attributes lost", m.Name)
		}
	}
	// Task IDs survive.
	if res.Server.Func("getAITurn").TaskID == 0 {
		t.Fatal("precondition: server target has no task id")
	}
	parsed, err := ir.Parse(res.Server.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Func("getAITurn").TaskID != res.Server.Func("getAITurn").TaskID {
		t.Error("task id lost through parser")
	}
}

func TestPartitionedBinariesSatisfySSA(t *testing.T) {
	// Diamonds, outlining, and dispatch loops must keep the
	// def-dominates-use discipline the interpreter relies on.
	_, res := compileChess(t)
	for _, m := range []*ir.Module{res.Mobile, res.Server} {
		if err := analysis.VerifyModuleSSA(m); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}
