// Package compiler is the Native Offloader compiler driver (Figure 2): it
// chains target selection (Section 3.1), memory unification (Section 3.2),
// partitioning (Section 3.3) and server-specific optimization (Section 3.4)
// over one front-end module, producing an offloading-enabled binary pair.
package compiler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/estimate"
	"repro/internal/filter"
	"repro/internal/ir"
	"repro/internal/ir/analysis"
	"repro/internal/ir/transform"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/simtime"
	"repro/internal/unify"
)

// Options configures a compilation.
type Options struct {
	// Mobile and Server are the two target architectures; Mobile's data
	// layout is the unification standard.
	Mobile *arch.Spec
	Server *arch.Spec
	// Est parameterizes the static performance estimator (Equation 1).
	Est estimate.Params
	// RemoteIO enables the Section 3.4 remote I/O manager (on by default
	// in Default()).
	RemoteIO bool
	// MaxTargets bounds how many tasks are selected; 0 means no bound.
	MaxTargets int
	// MinGain drops candidates whose predicted gain is below this
	// threshold: offloading a sub-millisecond task is never worth the
	// code-size and bookkeeping cost, even when Equation 1 is positive.
	MinGain simtime.PS
}

// Default returns the evaluation configuration: ARM32 mobile, x86-64
// server, remote I/O on, estimator with the observed performance ratio.
func Default(bandwidthBps int64) Options {
	mob, srv := arch.ARM32(), arch.X8664()
	return Options{
		Mobile:   mob,
		Server:   srv,
		Est:      estimate.Params{R: arch.PerformanceRatio(mob, srv), BandwidthBps: bandwidthBps},
		RemoteIO: true,
		MinGain:  50 * simtime.Millisecond,
	}
}

// TargetInfo describes one selected offload task, carrying what the
// runtime's dynamic estimator needs.
type TargetInfo struct {
	TaskID  int
	Name    string // function name in the partitioned modules
	Display string // paper-style name, e.g. "main_for.cond"
	IsLoop  bool
	// Profile-derived inputs to Equation 1.
	TimePerInvocation simtime.PS
	MemBytes          int64
	Invocations       int
	// Static estimation result.
	Est estimate.Estimate
}

// Candidate records one examined candidate and the selection outcome, for
// Table 3-style reporting.
type Candidate struct {
	Name        string
	Time        simtime.PS
	Invocations int
	MemBytes    int64
	Machine     bool   // filtered out as machine-specific
	Reason      string // why, when Machine
	Est         estimate.Estimate
	Selected    bool
}

// Result is the compiler's output.
type Result struct {
	Mobile *ir.Module
	Server *ir.Module

	Targets    []TargetInfo
	Candidates []Candidate

	// Table 4 statistics.
	OffloadedFuncs  int // functions reachable from targets (server side)
	TotalFuncs      int
	ReferencedGVs   int
	TotalGVs        int
	FptrUses        int
	RemovedFuncs    []string
	OptimizerReport *optimize.Report

	// FuncNames lists functions present in both binaries, for the
	// runtime's m2s/s2m function maps.
	FuncNames []string
}

// Compile runs the full pipeline over the front-end module m using the
// profiling report prof. m is not modified; the returned modules are
// independent clones.
func Compile(m *ir.Module, prof *profile.Report, opt Options) (*Result, error) {
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("compiler: input module: %w", err)
	}
	work := m.Clone("unified:" + m.Name)
	transform.Run(work) // standard cleanup before analysis

	res := &Result{}

	// ---- Target selection (Section 3.1) ----
	cg := analysis.BuildCallGraph(work)
	fres := filter.Classify(work, cg, filter.Options{RemoteIO: opt.RemoteIO})
	selected, err := selectTargets(work, cg, fres, prof, opt, res)
	if err != nil {
		return nil, err
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("compiler: no profitable offloading target in %s", m.Name)
	}

	// Outline loop targets into functions so both partitions can call them.
	var targetFuncs []*ir.Func
	var targets []partition.Target
	for i, sel := range selected {
		fn := sel.fn
		if sel.loop != nil {
			out, err := partition.OutlineLoop(work, sel.fn, sel.loop, sel.cfg)
			if err != nil && partition.DemoteEscapingValues(sel.fn, sel.loop) > 0 {
				// Values escaping the loop were demoted to stack slots
				// (reg2mem); they now travel through the UVA space like
				// any other local, so try again.
				out, err = partition.OutlineLoop(work, sel.fn, sel.loop, sel.cfg)
			}
			if err != nil {
				return nil, fmt.Errorf("compiler: outlining %s: %w", sel.info.Display, err)
			}
			fn = out
		}
		fn.TaskID = i + 1
		sel.info.TaskID = i + 1
		sel.info.Name = fn.Nam
		res.Targets = append(res.Targets, sel.info)
		targetFuncs = append(targetFuncs, fn)
		targets = append(targets, partition.Target{TaskID: i + 1, Fn: fn})
	}
	if err := ir.Verify(work); err != nil {
		return nil, fmt.Errorf("compiler: after outlining: %w", err)
	}

	// ---- Memory unification (Section 3.2) ----
	cg = analysis.BuildCallGraph(work) // outlining changed the graph
	gs := unify.Unify(work, cg, targetFuncs, opt.Mobile)
	res.ReferencedGVs = len(gs)
	res.TotalGVs = len(work.Globals)
	res.FptrUses = optimize.CountFptrUses(work)

	// ---- Partition (Section 3.3) ----
	mobile := work.Clone(m.Name + ":mobile")
	server := work.Clone(m.Name + ":server")

	mobileTargets := make([]partition.Target, len(targets))
	serverTargets := make([]partition.Target, len(targets))
	for i, t := range targets {
		mobileTargets[i] = partition.Target{TaskID: t.TaskID, Fn: mobile.Func(t.Fn.Nam)}
		serverTargets[i] = partition.Target{TaskID: t.TaskID, Fn: server.Func(t.Fn.Nam)}
	}
	partition.PartitionMobile(mobile, mobileTargets)
	removed, err := partition.PartitionServer(server, serverTargets)
	if err != nil {
		return nil, err
	}
	res.RemovedFuncs = removed

	// ---- Server-specific optimization (Section 3.4) ----
	res.OptimizerReport = optimize.Optimize(server)

	// Cleanup after partitioning: the gate diamonds and dispatch chains
	// leave trivially foldable code behind.
	transform.Run(mobile)
	transform.Run(server)

	// ---- Back-end lowering: the mobile layout is the standard ----
	ir.Lower(mobile, opt.Mobile, opt.Mobile)
	ir.Lower(server, opt.Server, opt.Mobile)

	if err := ir.Verify(mobile); err != nil {
		return nil, fmt.Errorf("compiler: mobile partition: %w", err)
	}
	if err := ir.Verify(server); err != nil {
		return nil, fmt.Errorf("compiler: server partition: %w", err)
	}

	res.Mobile = mobile
	res.Server = server

	// Table 4 statistics and the shared function-name list.
	defined := 0
	for _, f := range work.Funcs {
		if !f.IsExtern() {
			defined++
		}
	}
	res.TotalFuncs = defined
	serverCG := analysis.BuildCallGraph(server)
	var roots []*ir.Func
	for _, t := range serverTargets {
		if f := server.Func(t.Fn.Nam); f != nil {
			roots = append(roots, f)
		}
	}
	offloaded := 0
	for f := range serverCG.Reachable(roots...) {
		if !f.IsExtern() {
			offloaded++
		}
	}
	res.OffloadedFuncs = offloaded
	for _, f := range server.Funcs {
		if !f.IsExtern() && mobile.Func(f.Nam) != nil {
			res.FuncNames = append(res.FuncNames, f.Nam)
		}
	}
	sort.Strings(res.FuncNames)
	return res, nil
}

// selection bookkeeping.
type selection struct {
	fn   *ir.Func
	loop *analysis.Loop
	cfg  *analysis.CFG
	info TargetInfo
}

// selectTargets enumerates function and loop candidates, filters the
// machine-specific ones, estimates gains, and greedily picks profitable
// non-nested targets in decreasing gain order.
func selectTargets(m *ir.Module, cg *analysis.CallGraph, fres *filter.Result, prof *profile.Report, opt Options, res *Result) ([]*selection, error) {
	type cand struct {
		sel  selection
		gain simtime.PS
	}
	var cands []cand

	consider := func(name string, fn *ir.Func, loop *analysis.Loop, cfg *analysis.CFG, display string) {
		st := prof.Get(name)
		if st == nil || st.Invocations == 0 {
			return
		}
		c := Candidate{
			Name:        display,
			Time:        st.Time,
			Invocations: st.Invocations,
			MemBytes:    st.MemBytes,
		}
		var ms bool
		var why string
		if loop == nil {
			ms, why = fres.FuncMachineSpecific(fn)
		} else {
			ms, why = fres.LoopMachineSpecific(loop, filter.Options{RemoteIO: opt.RemoteIO})
		}
		if ms {
			c.Machine, c.Reason = true, why
			res.Candidates = append(res.Candidates, c)
			return
		}
		c.Est = opt.Est.Evaluate(st.Time, st.MemBytes, st.Invocations)
		res.Candidates = append(res.Candidates, c)
		if c.Est.Tg <= 0 || c.Est.Tg < opt.MinGain {
			return
		}
		inv := st.Invocations
		cands = append(cands, cand{
			sel: selection{
				fn:   fn,
				loop: loop,
				cfg:  cfg,
				info: TargetInfo{
					Display:           display,
					IsLoop:            loop != nil,
					TimePerInvocation: st.Time / simtime.PS(inv),
					MemBytes:          st.MemBytes,
					Invocations:       inv,
					Est:               c.Est,
				},
			},
			gain: c.Est.Tg,
		})
	}

	for _, f := range m.Funcs {
		if f.IsExtern() || f.Nam == "main" {
			continue
		}
		consider(f.Nam, f, nil, nil, f.Nam)
	}
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		cfg, err := analysis.BuildCFG(f)
		if err != nil {
			return nil, err
		}
		forest := analysis.FindLoops(cfg, analysis.Dominators(cfg))
		for _, l := range forest.Loops {
			consider(f.Nam+"/"+l.Name(), f, l, cfg, f.Nam+"_"+l.Header.Nam)
		}
	}

	sort.SliceStable(cands, func(i, j int) bool {
		gi, gj := cands[i].gain, cands[j].gain
		// Within 2% the gains are estimation noise; prefer the whole
		// function over an inner loop (cleaner interface, same benefit) —
		// the paper offloads getAITurn rather than for_i for the same
		// reason.
		hi := gi
		if gj > hi {
			hi = gj
		}
		if diff := gi - gj; diff < hi/50 && diff > -hi/50 {
			li, lj := cands[i].sel.loop != nil, cands[j].sel.loop != nil
			if li != lj {
				return !li
			}
			return cands[i].sel.info.Display < cands[j].sel.info.Display
		}
		return gi > gj
	})

	var picked []*selection
	covered := make(map[*ir.Func]bool) // functions already inside a picked target
	for i := range cands {
		c := &cands[i]
		if opt.MaxTargets > 0 && len(picked) >= opt.MaxTargets {
			break
		}
		if covered[c.sel.fn] {
			continue // nested in (or equal to) an already-picked target
		}
		if c.sel.loop == nil {
			// A picked function must not contain a previously picked
			// target; the greedy order (higher gain first) makes the
			// outer/earlier one win, like getAITurn over for_i.
			reach := cg.Reachable(c.sel.fn)
			conflict := false
			for _, p := range picked {
				if reach[p.fn] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for f := range reach {
				covered[f] = true
			}
		} else {
			// Loop targets conflict with other loops of the same function
			// when nested; mark callees reached from the loop.
			nested := false
			for _, p := range picked {
				if p.fn == c.sel.fn && p.loop != nil && loopsOverlap(p.loop, c.sel.loop) {
					nested = true
					break
				}
			}
			if nested {
				continue
			}
			for f := range loopCallees(cg, c.sel.loop) {
				covered[f] = true
			}
		}
		// Mark the selected candidate in the report.
		for j := range res.Candidates {
			if res.Candidates[j].Name == c.sel.info.Display {
				res.Candidates[j].Selected = true
			}
		}
		picked = append(picked, &c.sel)
	}
	return picked, nil
}

func loopsOverlap(a, b *analysis.Loop) bool {
	for blk := range a.Blocks {
		if b.Blocks[blk] {
			return true
		}
	}
	return false
}

func loopCallees(cg *analysis.CallGraph, l *analysis.Loop) map[*ir.Func]bool {
	out := make(map[*ir.Func]bool)
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if call, ok := in.(*ir.Call); ok && !call.Callee.IsExtern() {
				for f := range cg.Reachable(call.Callee) {
					out[f] = true
				}
			}
		}
	}
	return out
}

// Summary renders a human-readable compile report.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "targets (%d):\n", len(r.Targets))
	for _, t := range r.Targets {
		fmt.Fprintf(&sb, "  task %d: %-24s gain %v (Tc %v)\n", t.TaskID, t.Display, t.Est.Tg, t.Est.Tc)
	}
	fmt.Fprintf(&sb, "functions: %d/%d offloaded; globals: %d/%d referenced; fptr uses: %d\n",
		r.OffloadedFuncs, r.TotalFuncs, r.ReferencedGVs, r.TotalGVs, r.FptrUses)
	fmt.Fprintf(&sb, "server: %d remote I/O sites (%d inputs), %d mapped fptr sites, %d unused funcs removed\n",
		r.OptimizerReport.RemoteIOSites, r.OptimizerReport.RemoteInputSites,
		r.OptimizerReport.MappedFptrSites, len(r.RemovedFuncs))
	return sb.String()
}
