package partition

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/ir/analysis"
	"repro/internal/mem"
)

// buildCaller creates: target(x) = x*2; caller() { a = target(21); return a+1 }
func buildCaller(t *testing.T) (*ir.Module, *ir.Func) {
	t.Helper()
	mod := ir.NewModule("p")
	b := ir.NewBuilder(mod)
	target := b.NewFunc("hot", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.Mul(b.F.Params[0], ir.Int(2)))
	b.NewFunc("main", ir.I32)
	a := b.Call(target, ir.Int(21))
	b.Ret(b.Add(a, ir.Int(1)))
	b.Finish()
	return mod, target
}

func TestPartitionMobileInsertsGate(t *testing.T) {
	mod, target := buildCaller(t)
	n := PartitionMobile(mod, []Target{{TaskID: 1, Fn: target}})
	if n != 1 {
		t.Fatalf("rewrote %d sites, want 1", n)
	}
	if err := ir.Verify(mod); err != nil {
		t.Fatalf("partitioned module invalid: %v", err)
	}
	text := mod.String()
	for _, want := range []string{"no.gate", "no.offload", "call @hot", ".join"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// The gated binary still computes the same value locally.
	spec := arch.ARM32()
	ir.Lower(mod, spec, spec)
	m, _ := interp.NewMachine(interp.Config{Name: "m", Spec: spec, Mod: mod})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 43 {
		t.Errorf("gated local run = %d, want 43", code)
	}
}

func TestPartitionMobileMultipleSites(t *testing.T) {
	mod := ir.NewModule("p2")
	b := ir.NewBuilder(mod)
	target := b.NewFunc("hot", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.Add(b.F.Params[0], ir.Int(1)))
	b.NewFunc("main", ir.I32)
	a := b.Call(target, ir.Int(1))
	c := b.Call(target, a)
	b.Ret(c)
	b.Finish()
	n := PartitionMobile(mod, []Target{{TaskID: 1, Fn: target}})
	if n != 2 {
		t.Fatalf("rewrote %d sites, want 2", n)
	}
	if err := ir.Verify(mod); err != nil {
		t.Fatal(err)
	}
	spec := arch.ARM32()
	ir.Lower(mod, spec, spec)
	m, _ := interp.NewMachine(interp.Config{Name: "m", Spec: spec, Mod: mod})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Errorf("double-gated run = %d, want 3", code)
	}
}

func TestPartitionServerStructure(t *testing.T) {
	mod, target := buildCaller(t)
	removed, err := PartitionServer(mod, []Target{{TaskID: 7, Fn: target}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(mod); err != nil {
		t.Fatalf("server module invalid: %v", err)
	}
	if mod.StackBase != mem.ServerStackTop {
		t.Error("server stack not relocated")
	}
	if mod.Func("listenClient") == nil {
		t.Fatal("no listenClient")
	}
	text := mod.String()
	for _, want := range []string{"no.accept", "no.arg", "no.sendreturn", "cmp eq"} {
		if !strings.Contains(text, want) {
			t.Errorf("server text missing %q", want)
		}
	}
	_ = removed
}

func TestPartitionServerRemovesUnused(t *testing.T) {
	mod := ir.NewModule("p3")
	b := ir.NewBuilder(mod)
	target := b.NewFunc("hot", ir.I32, ir.P("x", ir.I32))
	helper := b.NewFunc("helper", ir.I32, ir.P("x", ir.I32))
	// target calls helper; orphan is only called from main.
	b.SetBlock(target.Entry())
	b.F = target
	b.Ret(b.Call(helper, b.Mul(target.Params[0], ir.Int(3))))
	b.F = helper
	b.SetBlock(helper.Entry())
	b.Ret(b.Add(helper.Params[0], ir.Int(1)))
	orphan := b.NewFunc("orphan", ir.I32)
	b.Ret(ir.Int(9))
	b.NewFunc("main", ir.I32)
	b.Call(orphan)
	b.Ret(b.Call(target, ir.Int(5)))
	b.Finish()

	removed, err := PartitionServer(mod, []Target{{TaskID: 1, Fn: target}})
	if err != nil {
		t.Fatal(err)
	}
	if mod.Func("orphan") != nil {
		t.Error("orphan should be removed from the server binary")
	}
	if mod.Func("helper") == nil {
		t.Error("helper is reachable from the target and must survive")
	}
	found := false
	for _, r := range removed {
		if r == "orphan" {
			found = true
		}
	}
	if !found {
		t.Errorf("removed = %v, want to include orphan", removed)
	}
}

func TestOutlineLoopExecutesEquivalently(t *testing.T) {
	build := func() *ir.Module {
		mod := ir.NewModule("o")
		b := ir.NewBuilder(mod)
		b.NewFunc("main", ir.I32)
		acc := b.Alloca(ir.I32)
		b.Store(acc, ir.Int(0))
		b.For("work", ir.Int(0), ir.Int(50), ir.Int(1), func(i ir.Value) {
			b.Store(acc, b.Add(b.Load(acc), b.Mul(i, i)))
		})
		b.Ret(b.Load(acc))
		b.Finish()
		return mod
	}
	run := func(mod *ir.Module) int32 {
		spec := arch.ARM32()
		ir.Lower(mod, spec, spec)
		m, _ := interp.NewMachine(interp.Config{Name: "m", Spec: spec, Mod: mod})
		code, err := m.RunMain()
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
	want := run(build())

	mod := build()
	f := mod.Func("main")
	g, _ := analysis.BuildCFG(f)
	forest := analysis.FindLoops(g, analysis.Dominators(g))
	if len(forest.Loops) != 1 {
		t.Fatal("expected one loop")
	}
	out, err := OutlineLoop(mod, f, forest.Loops[0], g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(mod); err != nil {
		t.Fatalf("outlined module invalid: %v", err)
	}
	if out.Nam != "main_work.cond" {
		t.Errorf("outlined name = %s", out.Nam)
	}
	if got := run(mod); got != want {
		t.Errorf("outlined run = %d, want %d", got, want)
	}
	// The loop body left main.
	for _, blk := range f.Blocks {
		if strings.HasPrefix(blk.Nam, "work.body") {
			t.Error("loop body block still in main")
		}
	}
}

func TestOutlineRejectsReturnInLoop(t *testing.T) {
	mod := ir.NewModule("r")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("f", ir.I32, ir.P("n", ir.I32))
	b.For("l", ir.Int(0), f.Params[0], ir.Int(1), func(i ir.Value) {
		b.If(b.Cmp(ir.GT, i, ir.Int(3)), func() { b.Ret(i) }, nil)
	})
	b.Ret(ir.Int(0))
	b.Finish()
	g, _ := analysis.BuildCFG(f)
	forest := analysis.FindLoops(g, analysis.Dominators(g))
	if _, err := OutlineLoop(mod, f, forest.Loops[0], g); err == nil {
		t.Error("expected rejection of loop containing a return")
	}
}

func TestOutlineRejectsValueEscapingLoop(t *testing.T) {
	mod := ir.NewModule("e")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("f", ir.I32, ir.P("n", ir.I32))
	var leak ir.Value
	b.For("l", ir.Int(0), f.Params[0], ir.Int(1), func(i ir.Value) {
		leak = b.Add(i, ir.Int(1)) // defined inside, used after the loop
	})
	b.Ret(leak)
	b.Finish()
	g, _ := analysis.BuildCFG(f)
	forest := analysis.FindLoops(g, analysis.Dominators(g))
	if _, err := OutlineLoop(mod, f, forest.Loops[0], g); err == nil {
		t.Error("expected rejection of loop whose value escapes")
	}
}

func TestDemotionMakesEscapingLoopOutlinable(t *testing.T) {
	build := func() *ir.Module {
		mod := ir.NewModule("esc")
		b := ir.NewBuilder(mod)
		f := b.NewFunc("main", ir.I32)
		var last ir.Value
		b.For("scan", ir.Int(0), ir.Int(37), ir.Int(1), func(i ir.Value) {
			last = b.Add(b.Mul(i, i), ir.Int(1)) // escapes the loop
		})
		b.Ret(b.Add(last, ir.Int(4)))
		_ = f
		b.Finish()
		return mod
	}
	run := func(mod *ir.Module) int32 {
		spec := arch.ARM32()
		ir.Lower(mod, spec, spec)
		m, _ := interp.NewMachine(interp.Config{Name: "m", Spec: spec, Mod: mod})
		code, err := m.RunMain()
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
	want := run(build()) // 36*36+1+4 = 1301

	mod := build()
	f := mod.Func("main")
	g, _ := analysis.BuildCFG(f)
	forest := analysis.FindLoops(g, analysis.Dominators(g))
	loop := forest.Loops[0]

	// Without demotion the outline is rejected.
	if _, err := OutlineLoop(mod, f, loop, g); err == nil {
		t.Fatal("precondition: escaping loop should be rejected before demotion")
	}
	// Demote and retry.
	if n := DemoteEscapingValues(f, loop); n != 1 {
		t.Fatalf("demoted %d values, want 1", n)
	}
	out, err := OutlineLoop(mod, f, loop, g)
	if err != nil {
		t.Fatalf("outline after demotion: %v", err)
	}
	if err := ir.Verify(mod); err != nil {
		t.Fatal(err)
	}
	if err := analysis.VerifyModuleSSA(mod); err != nil {
		t.Fatal(err)
	}
	if got := run(mod); got != want {
		t.Errorf("demoted+outlined run = %d, want %d", got, want)
	}
	if out.Sig.Ret != ir.Void {
		t.Error("outlined loop should be void (value flows through the stack slot)")
	}
}
