package partition

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/ir/analysis"
)

// OutlineLoop extracts a natural loop of f (a function of mod) into its own
// function so it can be an offload target (the paper's loop candidates,
// e.g. main_for.cond in Table 4). Live-in values become parameters; all
// other data flows through memory, which both machines share via the UVA
// space.
//
// Feasibility: the loop must not define values used outside it, must not
// contain a return, and all exit edges must lead to a single outside block.
// Infeasible loops return an error and are simply skipped as candidates.
func OutlineLoop(mod *ir.Module, f *ir.Func, l *analysis.Loop, g *analysis.CFG) (*ir.Func, error) {
	// Feasibility: single exit target, no returns inside.
	exits := l.ExitEdges(g)
	if len(exits) == 0 {
		return nil, fmt.Errorf("partition: loop %s has no exit", l.Name())
	}
	exitTo := exits[0][1]
	for _, e := range exits {
		if e[1] != exitTo {
			return nil, fmt.Errorf("partition: loop %s has multiple exit targets", l.Name())
		}
	}
	defined := make(map[ir.Value]bool)
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Ret); ok {
				return nil, fmt.Errorf("partition: loop %s contains a return", l.Name())
			}
			defined[in] = true
		}
	}
	for _, b := range f.Blocks {
		if l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			for _, op := range in.Operands() {
				if opIn, ok := op.(ir.Instr); ok && defined[opIn] {
					return nil, fmt.Errorf("partition: loop %s defines %s used outside", l.Name(), opIn.Ident())
				}
			}
		}
	}

	// Live-ins: operands used inside the loop but defined outside it.
	var liveIns []ir.Value
	seen := make(map[ir.Value]bool)
	for _, b := range f.Blocks { // function order for determinism
		if !l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			for _, op := range in.Operands() {
				switch v := op.(type) {
				case *ir.Param:
				case ir.Instr:
					if defined[v] {
						continue
					}
				default:
					continue // constants, globals, function refs travel as-is
				}
				if !seen[op] {
					seen[op] = true
					liveIns = append(liveIns, op)
				}
			}
		}
	}

	// Build the outlined function: entry -> header, exits -> done/ret.
	params := make([]*ir.Param, len(liveIns))
	sigParams := make([]ir.Type, len(liveIns))
	for i, v := range liveIns {
		params[i] = &ir.Param{Nam: fmt.Sprintf("in%d", i), Typ: v.Type(), Index: i}
		sigParams[i] = v.Type()
	}
	nf := &ir.Func{
		Nam:    f.Nam + "_" + l.Header.Nam,
		Sig:    &ir.FuncType{Params: sigParams, Ret: ir.Void},
		Params: params,
	}
	mod.AddFunc(nf)

	entry := nf.NewBlock("entry")
	entry.Append(&ir.Br{Dst: l.Header})

	var moved, kept []*ir.Block
	for _, b := range f.Blocks {
		if l.Blocks[b] {
			b.Parent = nf
			moved = append(moved, b)
		} else {
			kept = append(kept, b)
		}
	}
	nf.Blocks = append(nf.Blocks, moved...)
	done := nf.NewBlock("outline.done")
	done.Append(&ir.Ret{})

	for _, b := range moved {
		switch t := b.Terminator().(type) {
		case *ir.Br:
			if t.Dst == exitTo {
				t.Dst = done
			}
		case *ir.CondBr:
			if t.Then == exitTo {
				t.Then = done
			}
			if t.Else == exitTo {
				t.Else = done
			}
		}
		for _, in := range b.Instrs {
			for i, v := range liveIns {
				in.ReplaceOperand(v, params[i])
			}
		}
	}

	// In f, a stub block calls the outlined loop and continues at the exit.
	stub := &ir.Block{Nam: l.Header.Nam + ".outlined", Parent: f}
	stub.Append(&ir.Call{Callee: nf, Args: liveIns})
	stub.Append(&ir.Br{Dst: exitTo})
	f.Blocks = append(kept, stub)

	for _, b := range f.Blocks {
		switch t := b.Terminator().(type) {
		case *ir.Br:
			if t.Dst == l.Header {
				t.Dst = stub
			}
		case *ir.CondBr:
			if t.Then == l.Header {
				t.Then = stub
			}
			if t.Else == l.Header {
				t.Else = stub
			}
		}
	}

	f.Renumber()
	nf.Renumber()
	return nf, nil
}

// DemoteEscapingValues makes a loop outlinable when it defines register
// values used outside it: each escaping definition is demoted to a stack
// slot (the classic reg2mem transformation) — stored right after its
// definition and reloaded immediately before every outside use. After
// demotion the value flows through the UVA-shared stack like every other
// local, so OutlineLoop's no-escape precondition holds.
func DemoteEscapingValues(f *ir.Func, l *analysis.Loop) int {
	// Collect escaping definitions.
	type escape struct {
		def  ir.Instr
		uses []ir.Instr
	}
	var escapes []escape
	defined := make(map[ir.Instr]bool)
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if _, isVoid := in.Type().(*ir.VoidType); !isVoid {
				defined[in.(ir.Instr)] = true
			}
		}
	}
	for _, b := range f.Blocks {
		if l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			for _, op := range in.Operands() {
				if def, ok := op.(ir.Instr); ok && defined[def] {
					found := false
					for i := range escapes {
						if escapes[i].def == def {
							escapes[i].uses = append(escapes[i].uses, in)
							found = true
							break
						}
					}
					if !found {
						escapes = append(escapes, escape{def: def, uses: []ir.Instr{in}})
					}
				}
			}
		}
	}

	for _, e := range escapes {
		slot := &ir.Alloca{Elem: e.def.Type()}
		f.Entry().Prepend(slot)

		// Store right after the definition.
		db := e.def.Parent()
		for i, in := range db.Instrs {
			if in == e.def {
				st := &ir.Store{Ptr: slot, Val: e.def}
				db.Insert(i+1, st)
				break
			}
		}
		// Reload before each outside use.
		for _, use := range e.uses {
			ub := use.Parent()
			for i, in := range ub.Instrs {
				if in == use {
					ld := &ir.Load{Ptr: slot, Elem: e.def.Type()}
					ub.Insert(i, ld)
					use.ReplaceOperand(e.def, ld)
					break
				}
			}
		}
	}
	if len(escapes) > 0 {
		f.Renumber()
	}
	return len(escapes)
}
