// Package partition implements Section 3.3: it turns one unified module
// into two offloading-enabled modules, one per machine.
//
// Mobile side: every call site of an offload target is wrapped in a dynamic
// decision —
//
//	if (isProfitable(task)) { r = no.offload(task, args...) }
//	else                    { r = target(args...) }
//
// exactly like lines 33-41 of the paper's Figure 3(b); the data exchange
// (sendData/receiveData) happens inside the runtime's implementation of
// no.offload.
//
// Server side: a generated main/listenClient loop accepts offload requests
// and dispatches them in a switch over task IDs (Figure 3(c) lines 26-41),
// unused functions are removed with the call graph, and the stack is
// relocated away from the mobile stack (executeAtNewStack).
package partition

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/ir/analysis"
	"repro/internal/mem"
)

// Target is one selected offload task.
type Target struct {
	TaskID int
	Fn     *ir.Func
}

// PartitionMobile rewrites m (the mobile clone) in place: every direct call
// to a target becomes a gated offload/local pair. It returns the number of
// rewritten call sites.
func PartitionMobile(m *ir.Module, targets []Target) int {
	byFunc := make(map[*ir.Func]int, len(targets))
	for _, t := range targets {
		byFunc[t.Fn] = t.TaskID
		t.Fn.TaskID = t.TaskID
	}
	gate := m.Extern(ir.ExternGate)
	off := m.Extern(ir.ExternOffload)

	n := 0
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		// Collect the call sites first; rewriting restructures blocks.
		var sites []*ir.Call
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if call, ok := in.(*ir.Call); ok {
					if _, isTarget := byFunc[call.Callee]; isTarget && f != call.Callee {
						sites = append(sites, call)
					}
				}
			}
		}
		for _, call := range sites {
			b, idx := locate(f, call)
			if b == nil {
				continue
			}
			rewriteCallSite(f, b, idx, call, byFunc[call.Callee], gate, off)
			n++
		}
		f.Renumber()
	}
	return n
}

// locate finds the block and index currently holding in.
func locate(f *ir.Func, in ir.Instr) (*ir.Block, int) {
	for _, b := range f.Blocks {
		for i, x := range b.Instrs {
			if x == in {
				return b, i
			}
		}
	}
	return nil, 0
}

// rewriteCallSite splits block b at the call and inserts the dynamic
// decision diamond.
func rewriteCallSite(f *ir.Func, b *ir.Block, idx int, call *ir.Call, taskID int, gate, off *ir.Func) {
	retType := call.Callee.Sig.Ret
	_, isVoid := retType.(*ir.VoidType)

	offB := &ir.Block{Nam: b.Nam + ".offload", Parent: f}
	locB := &ir.Block{Nam: b.Nam + ".local", Parent: f}
	joinB := &ir.Block{Nam: b.Nam + ".join", Parent: f}
	// Insert the new blocks right after b so definition order still
	// precedes every later use (Clone and readers rely on it).
	for i, blk := range f.Blocks {
		if blk == b {
			tail := append([]*ir.Block{offB, locB, joinB}, f.Blocks[i+1:]...)
			f.Blocks = append(f.Blocks[:i+1:i+1], tail...)
			break
		}
	}

	rest := append([]ir.Instr(nil), b.Instrs[idx+1:]...)
	b.Instrs = b.Instrs[:idx]

	// Result slot lives on the stack so both arms can produce it without
	// phi nodes (allocas are how the front end models locals anyway).
	var slot *ir.Alloca
	if !isVoid {
		slot = &ir.Alloca{Elem: retType}
		f.Entry().Prepend(slot)
	}

	g := &ir.Call{Callee: gate, Args: []ir.Value{ir.Int(int64(taskID))}}
	b.Append(g)
	b.Append(&ir.CondBr{Cond: g, Then: offB, Else: locB})

	// Offload arm: r = no.offload(id, args...); store r' to slot.
	offArgs := append([]ir.Value{ir.Int(int64(taskID))}, call.Args...)
	oc := &ir.Call{Callee: off, Args: offArgs}
	offB.Append(oc)
	if !isVoid {
		conv := &ir.Convert{Kind: ir.ConvBitcast, Val: oc, To: retType}
		offB.Append(conv)
		offB.Append(&ir.Store{Ptr: slot, Val: conv})
	}
	offB.Append(&ir.Br{Dst: joinB})

	// Local arm: the original call.
	locB.Append(call)
	if !isVoid {
		locB.Append(&ir.Store{Ptr: slot, Val: call})
	}
	locB.Append(&ir.Br{Dst: joinB})

	// Join: reload the result and continue with the rest of the block.
	var result ir.Value
	if !isVoid {
		ld := &ir.Load{Ptr: slot, Elem: retType}
		joinB.Append(ld)
		result = ld
	}
	for _, in := range rest {
		joinB.Append(in)
		if result != nil {
			in.ReplaceOperand(call, result)
		}
	}
	// Uses of the call in other blocks also switch to the reloaded value.
	if result != nil {
		for _, blk := range f.Blocks {
			if blk == joinB || blk == locB {
				continue
			}
			for _, in := range blk.Instrs {
				in.ReplaceOperand(call, result)
			}
		}
	}
}

// PartitionServer rewrites s (the server clone) in place: it replaces main
// with the accept/dispatch loop, relocates the stack, and removes functions
// unreachable from the dispatch loop. It returns the names of removed
// functions.
func PartitionServer(s *ir.Module, targets []Target) ([]string, error) {
	for _, t := range targets {
		tf := s.Func(t.Fn.Nam)
		if tf == nil {
			return nil, fmt.Errorf("partition: server module lacks target %s", t.Fn.Nam)
		}
		tf.TaskID = t.TaskID
	}

	// Remove the original main (the mobile device runs the program); the
	// server binary's entry is the listen loop.
	s.RemoveFunc("main")
	buildListenLoop(s, targets)

	// Stack reallocation (Section 3.3): keep the server's frames away from
	// the mobile stack on the shared UVA space.
	s.StackBase = mem.ServerStackTop

	// Unused function removal with the call graph (Figure 3(c) line 66).
	cg := analysis.BuildCallGraph(s)
	roots := []*ir.Func{s.Func("main")}
	reach := cg.Reachable(roots...)
	var removed []string
	for _, f := range append([]*ir.Func(nil), s.Funcs...) {
		if f.IsExtern() || reach[f] {
			continue
		}
		removed = append(removed, f.Nam)
		s.RemoveFunc(f.Nam)
	}
	return removed, nil
}

// buildListenLoop generates:
//
//	func main() { listenClient(); return 0 }
//	func listenClient() {
//	  for { id := no.accept(); if id == 0 { return }
//	        switch id { case k: r := T(no.arg(0), ...); no.sendreturn(r) } }
//	}
func buildListenLoop(s *ir.Module, targets []Target) {
	b := ir.NewBuilder(s)

	listen := b.NewFunc("listenClient", ir.Void)
	loop := b.Block("listen.loop")
	exit := b.Block("listen.exit")
	b.Br(loop)

	b.SetBlock(loop)
	id := b.CallExtern(ir.ExternAccept)
	dispatch := b.Block("dispatch")
	b.CondBr(b.Cmp(ir.EQ, id, ir.Int(0)), exit, dispatch)

	b.SetBlock(dispatch)
	cur := dispatch
	for _, t := range targets {
		tf := s.Func(t.Fn.Nam)
		match := b.Block(fmt.Sprintf("task%d", t.TaskID))
		next := b.Block("next")
		b.SetBlock(cur)
		b.CondBr(b.Cmp(ir.EQ, id, ir.Int(int64(t.TaskID))), match, next)

		b.SetBlock(match)
		args := make([]ir.Value, len(tf.Params))
		for i, p := range tf.Params {
			raw := b.CallExtern(ir.ExternArg, ir.Int(int64(i)))
			args[i] = coerceFromBits(b, raw, p.Typ)
		}
		ret := b.Call(tf, args...)
		if _, isVoid := tf.Sig.Ret.(*ir.VoidType); isVoid {
			b.CallExtern(ir.ExternSendReturn, ir.Int64(0))
		} else {
			b.CallExtern(ir.ExternSendReturn, coerceToBits(b, ret))
		}
		b.Br(loop)

		cur = next
	}
	// Unknown task id: ignore and keep listening.
	b.SetBlock(cur)
	b.Br(loop)

	b.SetBlock(exit)
	b.RetVoid()

	b.NewFunc("main", ir.I32)
	b.Call(listen)
	b.Ret(ir.Int(0))

	listen.Renumber()
	s.Func("main").Renumber()
}

// coerceFromBits converts a raw i64 argument to the parameter type.
func coerceFromBits(b *ir.Builder, raw ir.Value, t ir.Type) ir.Value {
	switch tt := t.(type) {
	case *ir.IntType:
		if tt.Bits == 64 {
			return raw
		}
		return b.Convert(ir.ConvTrunc, raw, tt)
	default:
		return b.Convert(ir.ConvBitcast, raw, t)
	}
}

// coerceToBits converts a return value to raw i64 bits.
func coerceToBits(b *ir.Builder, v ir.Value) ir.Value {
	switch tt := v.Type().(type) {
	case *ir.IntType:
		if tt.Bits == 64 {
			return v
		}
		return b.Convert(ir.ConvSExt, v, ir.I64)
	default:
		return b.Convert(ir.ConvBitcast, v, ir.I64)
	}
}
