package mem

import (
	"bytes"
	"testing"
)

// buildSourceMemory lays out a small "program image": one page of nonzero
// init data, two identical nonzero pages (dedup candidates), and two
// all-zero pages (canonical zero-page candidates).
func buildSourceMemory(t *testing.T) *Memory {
	t.Helper()
	m := New()
	if err := m.WriteBytes(PageAddr(10), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	same := bytes.Repeat([]byte{0xCD}, PageSize)
	if err := m.WriteBytes(PageAddr(11), same); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(PageAddr(12), same); err != nil {
		t.Fatal(err)
	}
	// Touch two pages without writing nonzero bytes: present but all-zero.
	if _, err := m.Page(13); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Page(14); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSnapshotDedup(t *testing.T) {
	src := buildSourceMemory(t)
	img := Snapshot(src)

	if got, want := img.NumPages(), 5; got != want {
		t.Fatalf("NumPages = %d, want %d", got, want)
	}
	if got, want := img.Bytes(), 5*PageSize; got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
	// Unique backing: init page + one copy of the repeated page + the
	// canonical zero page = 3 pages.
	if got, want := img.UniqueBytes(), 3*PageSize; got != want {
		t.Errorf("UniqueBytes = %d, want %d", got, want)
	}
	p11, _ := img.page(11)
	p12, _ := img.page(12)
	if p11 != p12 {
		t.Error("identical pages should share one backing array")
	}
	p13, _ := img.page(13)
	p14, _ := img.page(14)
	if p13 != &zeroPage || p14 != &zeroPage {
		t.Error("all-zero pages should alias the canonical zero page")
	}

	// The image is a copy: mutating the source must not leak through.
	if err := src.WriteUint(PageAddr(10), 1, 0xFF); err != nil {
		t.Fatal(err)
	}
	p10, _ := img.page(10)
	if p10[0] != 1 {
		t.Error("image pages must be copies, not aliases of the source")
	}
}

func TestOverlayReadThrough(t *testing.T) {
	img := Snapshot(buildSourceMemory(t))
	ov := NewOverlay(img)

	b, err := ov.ReadBytes(PageAddr(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{1, 2, 3, 4}) {
		t.Errorf("read through overlay = %v, want image bytes", b)
	}
	if ov.ResidentPrivateBytes() != 0 {
		t.Errorf("reads of image pages must not materialize private copies; resident = %d",
			ov.ResidentPrivateBytes())
	}
	// Page on an image page returns the shared array itself.
	pg, err := ov.Page(11)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := img.page(11); pg != want {
		t.Error("Page on an untouched image page should return the shared array")
	}
	if ov.ResidentPrivateBytes() != 0 {
		t.Error("Page on an image page must not copy it")
	}
}

func TestOverlayCopyOnWrite(t *testing.T) {
	img := Snapshot(buildSourceMemory(t))
	ov := NewOverlay(img)

	g0 := ov.Gen()
	if err := ov.WriteUint(PageAddr(11)+5, 1, 0x7E); err != nil {
		t.Fatal(err)
	}
	if ov.Gen() == g0 {
		t.Error("copy-on-write must bump Gen: readers may cache the shared array")
	}
	if ov.ResidentPrivateBytes() != PageSize {
		t.Errorf("one written page should cost one private page, got %d bytes",
			ov.ResidentPrivateBytes())
	}
	// Private copy carries the image content plus the write.
	v, err := ov.ReadUint(PageAddr(11)+5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x7E {
		t.Errorf("read-back = 0x%x, want 0x7E", v)
	}
	v, err = ov.ReadUint(PageAddr(11)+6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xCD {
		t.Errorf("private copy lost image content: byte 6 = 0x%x, want 0xCD", v)
	}
	// The shared image (and a sibling overlay) is untouched.
	src, _ := img.page(11)
	if src[5] != 0xCD {
		t.Error("write leaked into the shared image")
	}
	sib := NewOverlay(img)
	v, err = sib.ReadUint(PageAddr(11)+5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xCD {
		t.Error("write visible in a sibling overlay")
	}
	// Faults counter: CoW is not a copy-on-demand fault.
	if ov.Faults != 0 {
		t.Errorf("CoW counted as fault: Faults = %d", ov.Faults)
	}
}

func TestOverlayPresentAndDigest(t *testing.T) {
	src := buildSourceMemory(t)
	img := Snapshot(src)
	ov := NewOverlay(img)

	// Fresh overlay: present set and digest match the source bit for bit,
	// and digesting must not materialize private pages (the zero-page fast
	// path recognizes the canonical zero page by pointer).
	wantPresent := src.PresentPages()
	gotPresent := ov.PresentPages()
	if len(gotPresent) != len(wantPresent) {
		t.Fatalf("PresentPages = %v, want %v", gotPresent, wantPresent)
	}
	for i := range wantPresent {
		if gotPresent[i] != wantPresent[i] {
			t.Fatalf("PresentPages = %v, want %v", gotPresent, wantPresent)
		}
	}
	if got, want := ov.Digest(), src.Digest(); got != want {
		t.Errorf("overlay digest 0x%x != source digest 0x%x", got, want)
	}
	if ov.ResidentPrivateBytes() != 0 {
		t.Errorf("Digest faulted %d private bytes on a fresh overlay",
			ov.ResidentPrivateBytes())
	}

	// A CoW'd-but-unchanged page keeps the digest identical.
	pg, err := ov.DirtyPage(10)
	if err != nil {
		t.Fatal(err)
	}
	_ = pg
	if got, want := ov.Digest(), src.Digest(); got != want {
		t.Errorf("digest changed after content-preserving CoW: 0x%x != 0x%x", got, want)
	}
}

func TestOverlayDropMasksBase(t *testing.T) {
	img := Snapshot(buildSourceMemory(t))
	ov := NewOverlay(img)

	ov.Drop(10)
	if ov.HasPage(10) {
		t.Error("dropped image page still reported present")
	}
	for _, pn := range ov.PresentPages() {
		if pn == 10 {
			t.Error("dropped image page still in PresentPages")
		}
	}
	if got := ov.PageData(10); !bytes.Equal(got, make([]byte, PageSize)) {
		t.Error("PageData of a dropped image page should read as zeroes")
	}
	// Next touch zero-fills (no fault handler), exactly like a plain
	// memory that dropped the page.
	v, err := ov.ReadUint(PageAddr(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("re-touched dropped page = 0x%x, want zero-fill", v)
	}
	// Dropping a CoW'd page also re-masks the base.
	if err := ov.WriteUint(PageAddr(11), 1, 9); err != nil {
		t.Fatal(err)
	}
	ov.Drop(11)
	v, err = ov.ReadUint(PageAddr(11), 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("dropped CoW page re-read = 0x%x, want zero-fill (not image content)", v)
	}
}

func TestOverlayFaultHandlerScope(t *testing.T) {
	img := Snapshot(buildSourceMemory(t))
	ov := NewOverlay(img)
	fetched := []uint32{}
	ov.Fault = func(pn uint32) ([]byte, error) {
		fetched = append(fetched, pn)
		return []byte{0xAA}, nil
	}

	// Image pages never consult the fault handler.
	if _, err := ov.ReadBytes(PageAddr(10), 1); err != nil {
		t.Fatal(err)
	}
	if err := ov.WriteUint(PageAddr(11), 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 0 {
		t.Fatalf("image-backed pages faulted: %v", fetched)
	}
	// Absent and dropped pages do.
	if _, err := ov.ReadBytes(PageAddr(99), 1); err != nil {
		t.Fatal(err)
	}
	ov.Drop(10)
	if _, err := ov.ReadBytes(PageAddr(10), 1); err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 2 || fetched[0] != 99 || fetched[1] != 10 {
		t.Fatalf("fault set = %v, want [99 10]", fetched)
	}
	if ov.Faults != 2 {
		t.Errorf("Faults = %d, want 2", ov.Faults)
	}
}

func TestOverlayDirtyTracking(t *testing.T) {
	img := Snapshot(buildSourceMemory(t))
	ov := NewOverlay(img)
	ov.TrackDirty = true

	if err := ov.WriteUint(PageAddr(11), 1, 7); err != nil {
		t.Fatal(err)
	}
	if d := ov.DirtyPages(); len(d) != 1 || d[0] != 11 {
		t.Errorf("DirtyPages = %v, want [11]", d)
	}
	ov.ClearDirty()
	if d := ov.DirtyPages(); len(d) != 0 {
		t.Errorf("DirtyPages after ClearDirty = %v", d)
	}
}

func TestOverlayReset(t *testing.T) {
	img := Snapshot(buildSourceMemory(t))
	ov := NewOverlay(img)
	if err := ov.WriteUint(PageAddr(11), 1, 7); err != nil {
		t.Fatal(err)
	}
	ov.Reset()
	if ov.Image() != nil {
		t.Error("Reset should detach the base image")
	}
	if len(ov.PresentPages()) != 0 {
		t.Errorf("Reset left pages present: %v", ov.PresentPages())
	}
}
