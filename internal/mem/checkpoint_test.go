package mem

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomImage builds an image with a mix of zero, duplicate, and distinct
// pages.
func randomImage(rng *rand.Rand, npages int) *Image {
	src := New()
	for i := 0; i < npages; i++ {
		pn := uint32(0x1000 + i)
		switch rng.Intn(3) {
		case 0:
			// zero page: install empty
			src.InstallPage(pn, nil)
		case 1:
			src.InstallPage(pn, []byte{0xAB, byte(i % 4)})
		default:
			data := make([]byte, PageSize)
			rng.Read(data)
			src.InstallPage(pn, data)
		}
	}
	return Snapshot(src)
}

// mutate applies a random sequence of operations to an overlay, exercising
// copy-on-write, faults, installs, drops, and dirty tracking.
func mutate(t *testing.T, rng *rand.Rand, m *Memory, img *Image) {
	t.Helper()
	imgPages := img.Pages()
	for op := 0; op < 200; op++ {
		switch rng.Intn(6) {
		case 0, 1: // write into an image page (CoW) or fresh page
			var pn uint32
			if len(imgPages) > 0 && rng.Intn(2) == 0 {
				pn = imgPages[rng.Intn(len(imgPages))]
			} else {
				pn = uint32(0x9000 + rng.Intn(32))
			}
			b := make([]byte, 1+rng.Intn(64))
			rng.Read(b)
			off := uint32(rng.Intn(PageSize - len(b)))
			if err := m.WriteBytes(pn*PageSize+off, b); err != nil {
				t.Fatal(err)
			}
		case 2: // read (may fault a fresh page in)
			pn := uint32(0x9000 + rng.Intn(32))
			if _, err := m.ReadBytes(pn*PageSize, 16); err != nil {
				t.Fatal(err)
			}
		case 3: // install
			pn := uint32(0xA000 + rng.Intn(16))
			data := make([]byte, PageSize)
			rng.Read(data)
			m.InstallPage(pn, data)
		case 4: // drop (masks image pages)
			if len(imgPages) > 0 {
				m.Drop(imgPages[rng.Intn(len(imgPages))])
			}
		case 5: // toggle dirty bookkeeping the way the runtime does
			if rng.Intn(4) == 0 {
				m.ClearDirty()
			}
		}
	}
}

// TestCheckpointRoundTripProperty is the overlay checkpoint property test:
// snapshot a randomized instance's private state and restore it onto a
// fresh bind of the same image; Digest, Gen, fault counts, dirty sets, and
// present sets must all match the original.
func TestCheckpointRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			img := randomImage(rng, 8+rng.Intn(24))

			orig := NewOverlay(img)
			orig.TrackDirty = true
			mutate(t, rng, orig, img)

			ckpt := orig.Checkpoint()

			fresh := NewOverlay(img)
			fresh.TrackDirty = true
			fresh.Restore(ckpt)

			if g, w := fresh.Digest(), orig.Digest(); g != w {
				t.Fatalf("Digest after restore = %#x, want %#x", g, w)
			}
			if g, w := fresh.Gen(), orig.Gen(); g != w {
				t.Fatalf("Gen after restore = %d, want %d", g, w)
			}
			if g, w := fresh.Faults, orig.Faults; g != w {
				t.Fatalf("Faults after restore = %d, want %d", g, w)
			}
			if g, w := fmt.Sprint(fresh.DirtyPages()), fmt.Sprint(orig.DirtyPages()); g != w {
				t.Fatalf("DirtyPages after restore = %v, want %v", g, w)
			}
			if g, w := fmt.Sprint(fresh.PresentPages()), fmt.Sprint(orig.PresentPages()); g != w {
				t.Fatalf("PresentPages after restore = %v, want %v", g, w)
			}
			if g, w := fresh.ResidentPrivateBytes(), orig.ResidentPrivateBytes(); g != w {
				t.Fatalf("ResidentPrivateBytes after restore = %d, want %d", g, w)
			}

			// The checkpoint owns its copies: writing to the original after
			// the snapshot must not leak into the restored memory.
			before := fresh.Digest()
			if err := orig.WriteBytes(0x1000*PageSize, []byte{0xFF, 0xEE}); err != nil {
				t.Fatal(err)
			}
			if fresh.Digest() != before {
				t.Fatal("restored memory aliases the original's pages")
			}
		})
	}
}

// TestCheckpointFreshInstanceNearZero pins the cost model: a freshly-bound
// overlay has no private state, so its checkpoint ships no pages.
func TestCheckpointFreshInstanceNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := randomImage(rng, 64)
	m := NewOverlay(img)
	c := m.Checkpoint()
	if c.NumPages() != 0 || c.Bytes() != 0 {
		t.Fatalf("fresh overlay checkpoint carries %d pages (%d bytes), want 0", c.NumPages(), c.Bytes())
	}
	// And the footprint-independence claim: the image is 64 pages but the
	// checkpoint cost tracks private pages only.
	if err := m.WriteBytes(img.Pages()[0]*PageSize, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if c := m.Checkpoint(); c.NumPages() != 1 {
		t.Fatalf("one CoW write should checkpoint exactly 1 page, got %d", c.NumPages())
	}
}
