package mem

import "slices"

// Checkpoint is a self-contained snapshot of an overlay's private state:
// everything that distinguishes this Memory from a fresh bind of the same
// base Image. Clean image pages are deliberately absent — the migration
// target re-binds them from its own copy of the shared Program image for
// free — so a checkpoint's size is proportional to mutated state, not to
// the program's memory footprint.
type Checkpoint struct {
	// Pages are the private (faulted, copy-on-written, or installed) pages
	// in ascending page-number order, with their dirty bits.
	Pages []CheckpointPage
	// Masked are the base-image pages this memory has dropped, sorted.
	Masked []uint32
	// Faults is the copy-on-demand fault count at snapshot time.
	Faults int
	// Gen is the invalidation generation at snapshot time. Restoring it
	// keeps digests and generation-keyed caches comparable across the
	// migration, but any cache keyed on (page pointer, gen) must still be
	// flushed explicitly: the restored pages are fresh arrays.
	Gen uint64
}

// CheckpointPage is one private page in a Checkpoint.
type CheckpointPage struct {
	PN    uint32
	Dirty bool
	Data  []byte // PageSize bytes, owned by the checkpoint
}

// NumPages is the number of private pages the checkpoint carries.
func (c *Checkpoint) NumPages() int { return len(c.Pages) }

// Bytes is the page payload size of the checkpoint — the dominant term of
// what a migration must ship.
func (c *Checkpoint) Bytes() int { return len(c.Pages) * PageSize }

// Checkpoint captures the memory's private state. The snapshot owns its
// page copies: later writes to the memory do not alter it.
func (m *Memory) Checkpoint() *Checkpoint {
	c := &Checkpoint{Faults: m.Faults, Gen: m.gen}
	pns := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	slices.Sort(pns)
	for _, pn := range pns {
		p := m.pages[pn]
		data := make([]byte, PageSize)
		copy(data, p.data[:])
		c.Pages = append(c.Pages, CheckpointPage{PN: pn, Dirty: p.dirty, Data: data})
	}
	for pn := range m.masked {
		c.Masked = append(c.Masked, pn)
	}
	slices.Sort(c.Masked)
	return c
}

// Restore replaces the memory's private state with the checkpoint's:
// private pages (with their dirty bits), masked set, fault count, and
// generation. The base image, fault handler, and tracking flags are left
// untouched — the caller binds a fresh overlay of the *same* Image on the
// target and restores into it, after which Digest, DirtyPages, and
// PresentPages match the source exactly.
func (m *Memory) Restore(c *Checkpoint) {
	m.pages = make(map[uint32]*page, len(c.Pages))
	for _, cp := range c.Pages {
		p := &page{dirty: cp.Dirty}
		copy(p.data[:], cp.Data)
		m.pages[cp.PN] = p
	}
	m.masked = nil
	if len(c.Masked) > 0 {
		m.masked = make(map[uint32]struct{}, len(c.Masked))
		for _, pn := range c.Masked {
			m.masked[pn] = struct{}{}
		}
	}
	m.Faults = c.Faults
	m.gen = c.Gen
}
