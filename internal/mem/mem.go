// Package mem implements the paged virtual memory substrate underneath the
// unified virtual address (UVA) space of Section 3.2 / Section 4.
//
// Each simulated machine owns one Memory: a sparse set of 4 KiB pages keyed
// by UVA page number. The server's Memory is created empty with a fault
// handler that fetches pages from the mobile device over the network —
// the paper's copy-on-demand. Writes set per-page dirty bits so
// finalization can send back only modified pages.
package mem

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Page geometry. 4 KiB pages match the paper's mobile/server platforms.
const (
	PageSize  = 4096
	PageShift = 12
)

// UVA region bases. Both binaries agree on these because the Native
// Offloader compiler assigns them; the mobile and server stacks are kept
// apart by the stack reallocation of Section 3.3.
const (
	// GlobalsBase hosts referenced globals reallocated onto the UVA space.
	GlobalsBase uint32 = 0x1000_0000
	// HeapBase hosts u_malloc allocations.
	HeapBase uint32 = 0x2000_0000
	// HeapLimit bounds the UVA heap.
	HeapLimit uint32 = 0x4000_0000
	// LocalBase hosts machine-private globals; each machine's loader
	// places them independently, so the same global may sit at different
	// local addresses on the two machines (the bug that referenced-global
	// reallocation fixes).
	LocalBase uint32 = 0x0400_0000
	// MobileStackTop is the default stack top (ir.DefaultStackBase).
	MobileStackTop uint32 = 0x7FFF_F000
	// ServerStackTop is where the partitioner relocates the server stack.
	ServerStackTop uint32 = 0x5FFF_F000
	// FuncBaseMobile/FuncBaseServer are the per-machine function address
	// ranges; the same function gets a different address on each machine,
	// which is why function pointers must be mapped (Section 3.4).
	FuncBaseMobile uint32 = 0x0800_0000
	FuncBaseServer uint32 = 0x0C00_0000
)

// PageNum returns the page number containing addr.
func PageNum(addr uint32) uint32 { return addr >> PageShift }

// PageAddr returns the first address of page pn.
func PageAddr(pn uint32) uint32 { return pn << PageShift }

// FaultHandler supplies the content of an absent page. Returning nil data
// means "zero-fill" (fresh allocation); an error aborts execution.
type FaultHandler func(pn uint32) ([]byte, error)

// Memory is one machine's view of the UVA space.
//
// A Memory may be a plain page set (New) or a copy-on-write overlay over a
// shared read-only Image (NewOverlay). Overlay reads fall through to the
// image's pages without copying; the first write to a shared page copies it
// into the private page set, so many sessions instantiated from one program
// image pay resident bytes only for what they actually mutate.
type Memory struct {
	pages map[uint32]*page

	// base, when set, is the shared read-only image this memory overlays.
	// A page absent from the private set is served from base (unless
	// masked); base pages are never written in place.
	base *Image

	// masked records base pages this memory has dropped: a masked page
	// reads as absent (fault/zero-fill on next touch), exactly as if the
	// memory were a plain page set that dropped it.
	masked map[uint32]struct{}

	// Fault, when set, is consulted on first touch of an absent page
	// (copy-on-demand). When nil, absent pages zero-fill. A page served
	// from the base image is present, not absent: it never faults, and
	// copying it on first write is not a fault either.
	Fault FaultHandler

	// TrackDirty enables dirty-bit maintenance on writes.
	TrackDirty bool

	// Touch, when set, observes every page access; the profiler uses it to
	// measure candidate memory footprints (Table 3 "Mem. Size").
	Touch func(pn uint32)

	// Faults counts copy-on-demand faults served via Fault.
	Faults int

	// gen counts structural changes that can invalidate cached page
	// pointers: page replacement (InstallPage), removal (Drop, Reset),
	// dirty-bit clearing (ClearDirty), and copy-on-write materialization
	// (the private copy supersedes the shared array a reader may have
	// cached). Faulting an absent page in does not bump it — existing page
	// arrays never move.
	gen uint64
}

type page struct {
	data  [PageSize]byte
	dirty bool
}

// New returns an empty memory with zero-fill fault behaviour.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

// NewOverlay returns a memory whose initial content is the shared image:
// reads are served from the image's pages directly, and the first write to
// an image page copies it into this memory (copy-on-write). The image is
// never modified.
func NewOverlay(img *Image) *Memory {
	return &Memory{pages: make(map[uint32]*page), base: img}
}

// Image returns the shared base image this memory overlays, or nil for a
// plain memory.
func (m *Memory) Image() *Image { return m.base }

// ResidentPrivateBytes returns the bytes of private (per-memory) page
// storage: pages faulted, written (copy-on-write), or installed here.
// Shared image pages read through the overlay cost nothing.
func (m *Memory) ResidentPrivateBytes() int { return len(m.pages) * PageSize }

// basePage returns the shared image's array for pn, if this memory is an
// overlay and the page is neither masked nor shadowed by a private page.
// Callers must check the private set first.
func (m *Memory) basePage(pn uint32) (*[PageSize]byte, bool) {
	if m.base == nil {
		return nil, false
	}
	if _, masked := m.masked[pn]; masked {
		return nil, false
	}
	return m.base.page(pn)
}

// getPage returns the private page for pn with write intent: a shared base
// page is copied into the private set first (copy-on-write, bumping gen —
// readers may have cached the shared array), and a truly absent page goes
// through the legacy fault/zero-fill path.
func (m *Memory) getPage(pn uint32) (*page, error) {
	if p, ok := m.pages[pn]; ok {
		if m.Touch != nil {
			m.Touch(pn)
		}
		return p, nil
	}
	if src, ok := m.basePage(pn); ok {
		p := &page{data: *src}
		m.pages[pn] = p
		m.gen++
		if m.Touch != nil {
			m.Touch(pn)
		}
		return p, nil
	}
	p := &page{}
	if m.Fault != nil {
		data, err := m.Fault(pn)
		if err != nil {
			return nil, fmt.Errorf("mem: page fault at 0x%x: %w", PageAddr(pn), err)
		}
		m.Faults++
		if data != nil {
			copy(p.data[:], data)
		}
	}
	m.pages[pn] = p
	delete(m.masked, pn)
	if m.Touch != nil {
		m.Touch(pn)
	}
	return p, nil
}

// readPage returns pn's resident array for reading: the private page if one
// exists, the shared image's array otherwise (no copy, no gen bump). A page
// absent from both materializes through the legacy fault/zero-fill path, so
// a plain memory and an overlay observe identical present-page sets.
func (m *Memory) readPage(pn uint32) (*[PageSize]byte, error) {
	if p, ok := m.pages[pn]; ok {
		if m.Touch != nil {
			m.Touch(pn)
		}
		return &p.data, nil
	}
	if src, ok := m.basePage(pn); ok {
		if m.Touch != nil {
			m.Touch(pn)
		}
		return src, nil
	}
	p, err := m.getPage(pn)
	if err != nil {
		return nil, err
	}
	return &p.data, nil
}

// Gen returns the invalidation generation. A cached page pointer obtained
// from Page or DirtyPage stays valid (and, for DirtyPage, stays marked
// dirty) as long as Gen is unchanged, Touch is nil, and — for write caches —
// TrackDirty has not been toggled.
func (m *Memory) Gen() uint64 { return m.gen }

// Page returns the resident data array of page pn, faulting it in as
// needed. The pointer aliases live memory: it observes later writes and is
// invalidated when Gen changes. On an overlay the array may be the shared
// image's page — callers must treat it as read-only and write through
// DirtyPage/WriteBytes, which copy-on-write first.
func (m *Memory) Page(pn uint32) (*[PageSize]byte, error) {
	return m.readPage(pn)
}

// DirtyPage is Page plus dirty marking: when TrackDirty is on, the page is
// marked dirty up front, so the caller may keep writing through the
// returned array without further bookkeeping (until Gen changes or
// TrackDirty is toggled).
func (m *Memory) DirtyPage(pn uint32) (*[PageSize]byte, error) {
	p, err := m.getPage(pn)
	if err != nil {
		return nil, err
	}
	if m.TrackDirty {
		p.dirty = true
	}
	return &p.data, nil
}

// HasPage reports whether pn is present without faulting it in. Unmasked
// base image pages count as present.
func (m *Memory) HasPage(pn uint32) bool {
	if _, ok := m.pages[pn]; ok {
		return true
	}
	_, ok := m.basePage(pn)
	return ok
}

// PageData returns a copy of page pn's content, zeroes if absent. It does
// not fault, touch, or dirty anything — it is the transfer-side read used
// when serving another machine's copy-on-demand request.
func (m *Memory) PageData(pn uint32) []byte {
	out := make([]byte, PageSize)
	if p, ok := m.pages[pn]; ok {
		copy(out, p.data[:])
	} else if src, ok := m.basePage(pn); ok {
		copy(out, src[:])
	}
	return out
}

// InstallPage overwrites page pn with data (length <= PageSize), marking it
// clean. Used for prefetch and dirty write-back application.
func (m *Memory) InstallPage(pn uint32, data []byte) {
	p := &page{}
	copy(p.data[:], data)
	m.pages[pn] = p
	delete(m.masked, pn)
	m.gen++
}

// ReadBytes copies size bytes at addr into a fresh slice, faulting pages in
// as needed.
func (m *Memory) ReadBytes(addr uint32, size int) ([]byte, error) {
	out := make([]byte, size)
	off := 0
	for off < size {
		pn := PageNum(addr + uint32(off))
		p, err := m.readPage(pn)
		if err != nil {
			return nil, err
		}
		po := int(addr+uint32(off)) & (PageSize - 1)
		n := copy(out[off:], p[po:])
		off += n
	}
	return out, nil
}

// WriteBytes stores data at addr, faulting pages in and dirtying them.
func (m *Memory) WriteBytes(addr uint32, data []byte) error {
	off := 0
	for off < len(data) {
		pn := PageNum(addr + uint32(off))
		p, err := m.getPage(pn)
		if err != nil {
			return err
		}
		po := int(addr+uint32(off)) & (PageSize - 1)
		n := copy(p.data[po:], data[off:])
		if m.TrackDirty {
			p.dirty = true
		}
		off += n
	}
	return nil
}

// ReadUint reads a size-byte little-endian unsigned integer at addr.
// Byte-order translation for big-endian machines happens in the interpreter
// (it is compiler-inserted code in the paper), so Memory itself is
// order-neutral and always uses the standard (little-endian) order.
func (m *Memory) ReadUint(addr uint32, size int) (uint64, error) {
	b, err := m.ReadBytes(addr, size)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteUint stores a size-byte little-endian unsigned integer at addr.
func (m *Memory) WriteUint(addr uint32, size int, v uint64) error {
	b := make([]byte, size)
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.WriteBytes(addr, b)
}

// DirtyPages returns the sorted page numbers written since the last
// ClearDirty.
func (m *Memory) DirtyPages() []uint32 {
	var out []uint32
	for pn, p := range m.pages {
		if p.dirty {
			out = append(out, pn)
		}
	}
	slices.Sort(out)
	return out
}

// ClearDirty resets all dirty bits.
func (m *Memory) ClearDirty() {
	for _, p := range m.pages {
		p.dirty = false
	}
	m.gen++
}

// PresentPages returns the sorted page numbers currently resident: the
// private pages plus any unmasked base image pages.
func (m *Memory) PresentPages() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn)
	}
	if m.base != nil {
		for _, pn := range m.base.Pages() {
			if _, priv := m.pages[pn]; priv {
				continue
			}
			if _, masked := m.masked[pn]; masked {
				continue
			}
			out = append(out, pn)
		}
	}
	slices.Sort(out)
	return out
}

// Drop discards page pn (used when a server process terminates without
// keeping offloading data, Section 4 finalization). On an overlay a base
// image page is masked rather than removed from the shared image, so the
// next touch faults or zero-fills exactly as on a plain memory.
func (m *Memory) Drop(pn uint32) {
	delete(m.pages, pn)
	if m.base != nil && m.base.Has(pn) {
		if m.masked == nil {
			m.masked = make(map[uint32]struct{})
		}
		m.masked[pn] = struct{}{}
	}
	m.gen++
}

// Reset discards all pages and counters. An overlay also detaches from its
// base image: after Reset the memory is a plain empty page set.
func (m *Memory) Reset() {
	m.pages = make(map[uint32]*page)
	m.base = nil
	m.masked = nil
	m.Faults = 0
	m.gen++
}

// Range is a half-open byte-address interval [Lo, Hi), used to exclude
// regions from Digest.
type Range struct{ Lo, Hi uint32 }

// StackBytes is the depth of each machine's run-time stack region.
const StackBytes = 8 << 20

// StackRanges covers both machines' stack regions. After a program
// returns, everything below the stack tops is dead residue whose bytes
// depend on where each frame ran (mobile vs server stack addresses), so
// semantic memory comparisons exclude it.
func StackRanges() []Range {
	return []Range{
		{MobileStackTop - StackBytes, MobileStackTop},
		{ServerStackTop - StackBytes, ServerStackTop},
	}
}

// Digest returns an FNV-1a hash of the memory image, iterating present
// pages in sorted order and skipping all-zero pages — an absent page and
// a zero-filled one hash identically, matching the copy-on-demand
// zero-fill semantics. Two runs that end in the same logical memory state
// digest equal even if they faulted different page sets in. Pages
// overlapping any skip range are left out of the hash.
//
// On an overlay, untouched base image pages are hashed through the shared
// array directly — digesting never copies them into the private set — and
// the zero-page fast path recognizes the canonical shared zero page by
// pointer, without scanning it.
func (m *Memory) Digest(skip ...Range) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
pages:
	for _, pn := range m.PresentPages() {
		lo := pn * PageSize
		for _, r := range skip {
			if lo < r.Hi && lo+PageSize > r.Lo {
				continue pages
			}
		}
		var data *[PageSize]byte
		if p, ok := m.pages[pn]; ok {
			// Private pages are mutable; scan for the all-zero skip.
			data = &p.data
			zero := true
			for i := 0; i < PageSize; i += 8 {
				if binary.LittleEndian.Uint64(data[i:]) != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue
			}
		} else {
			src, ok := m.basePage(pn)
			if !ok {
				continue
			}
			// Image pages are immutable and content-deduped: all-zero
			// pages alias the canonical zero page, so a pointer test
			// replaces the scan.
			if src == &zeroPage {
				continue
			}
			data = src
		}
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(pn >> (8 * i)))
			h *= prime64
		}
		for _, b := range data {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}
