// Package mem implements the paged virtual memory substrate underneath the
// unified virtual address (UVA) space of Section 3.2 / Section 4.
//
// Each simulated machine owns one Memory: a sparse set of 4 KiB pages keyed
// by UVA page number. The server's Memory is created empty with a fault
// handler that fetches pages from the mobile device over the network —
// the paper's copy-on-demand. Writes set per-page dirty bits so
// finalization can send back only modified pages.
package mem

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Page geometry. 4 KiB pages match the paper's mobile/server platforms.
const (
	PageSize  = 4096
	PageShift = 12
)

// UVA region bases. Both binaries agree on these because the Native
// Offloader compiler assigns them; the mobile and server stacks are kept
// apart by the stack reallocation of Section 3.3.
const (
	// GlobalsBase hosts referenced globals reallocated onto the UVA space.
	GlobalsBase uint32 = 0x1000_0000
	// HeapBase hosts u_malloc allocations.
	HeapBase uint32 = 0x2000_0000
	// HeapLimit bounds the UVA heap.
	HeapLimit uint32 = 0x4000_0000
	// LocalBase hosts machine-private globals; each machine's loader
	// places them independently, so the same global may sit at different
	// local addresses on the two machines (the bug that referenced-global
	// reallocation fixes).
	LocalBase uint32 = 0x0400_0000
	// MobileStackTop is the default stack top (ir.DefaultStackBase).
	MobileStackTop uint32 = 0x7FFF_F000
	// ServerStackTop is where the partitioner relocates the server stack.
	ServerStackTop uint32 = 0x5FFF_F000
	// FuncBaseMobile/FuncBaseServer are the per-machine function address
	// ranges; the same function gets a different address on each machine,
	// which is why function pointers must be mapped (Section 3.4).
	FuncBaseMobile uint32 = 0x0800_0000
	FuncBaseServer uint32 = 0x0C00_0000
)

// PageNum returns the page number containing addr.
func PageNum(addr uint32) uint32 { return addr >> PageShift }

// PageAddr returns the first address of page pn.
func PageAddr(pn uint32) uint32 { return pn << PageShift }

// FaultHandler supplies the content of an absent page. Returning nil data
// means "zero-fill" (fresh allocation); an error aborts execution.
type FaultHandler func(pn uint32) ([]byte, error)

// Memory is one machine's view of the UVA space.
type Memory struct {
	pages map[uint32]*page

	// Fault, when set, is consulted on first touch of an absent page
	// (copy-on-demand). When nil, absent pages zero-fill.
	Fault FaultHandler

	// TrackDirty enables dirty-bit maintenance on writes.
	TrackDirty bool

	// Touch, when set, observes every page access; the profiler uses it to
	// measure candidate memory footprints (Table 3 "Mem. Size").
	Touch func(pn uint32)

	// Faults counts copy-on-demand faults served via Fault.
	Faults int

	// gen counts structural changes that can invalidate cached page
	// pointers: page replacement (InstallPage), removal (Drop, Reset) and
	// dirty-bit clearing (ClearDirty). Faulting a page in does not bump it
	// — existing page arrays never move.
	gen uint64
}

type page struct {
	data  [PageSize]byte
	dirty bool
}

// New returns an empty memory with zero-fill fault behaviour.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

func (m *Memory) getPage(pn uint32) (*page, error) {
	if p, ok := m.pages[pn]; ok {
		if m.Touch != nil {
			m.Touch(pn)
		}
		return p, nil
	}
	p := &page{}
	if m.Fault != nil {
		data, err := m.Fault(pn)
		if err != nil {
			return nil, fmt.Errorf("mem: page fault at 0x%x: %w", PageAddr(pn), err)
		}
		m.Faults++
		if data != nil {
			copy(p.data[:], data)
		}
	}
	m.pages[pn] = p
	if m.Touch != nil {
		m.Touch(pn)
	}
	return p, nil
}

// Gen returns the invalidation generation. A cached page pointer obtained
// from Page or DirtyPage stays valid (and, for DirtyPage, stays marked
// dirty) as long as Gen is unchanged, Touch is nil, and — for write caches —
// TrackDirty has not been toggled.
func (m *Memory) Gen() uint64 { return m.gen }

// Page returns the resident data array of page pn, faulting it in as
// needed. The pointer aliases live memory: it observes later writes and is
// invalidated when Gen changes.
func (m *Memory) Page(pn uint32) (*[PageSize]byte, error) {
	p, err := m.getPage(pn)
	if err != nil {
		return nil, err
	}
	return &p.data, nil
}

// DirtyPage is Page plus dirty marking: when TrackDirty is on, the page is
// marked dirty up front, so the caller may keep writing through the
// returned array without further bookkeeping (until Gen changes or
// TrackDirty is toggled).
func (m *Memory) DirtyPage(pn uint32) (*[PageSize]byte, error) {
	p, err := m.getPage(pn)
	if err != nil {
		return nil, err
	}
	if m.TrackDirty {
		p.dirty = true
	}
	return &p.data, nil
}

// HasPage reports whether pn is present without faulting it in.
func (m *Memory) HasPage(pn uint32) bool {
	_, ok := m.pages[pn]
	return ok
}

// PageData returns a copy of page pn's content, zeroes if absent. It does
// not fault, touch, or dirty anything — it is the transfer-side read used
// when serving another machine's copy-on-demand request.
func (m *Memory) PageData(pn uint32) []byte {
	out := make([]byte, PageSize)
	if p, ok := m.pages[pn]; ok {
		copy(out, p.data[:])
	}
	return out
}

// InstallPage overwrites page pn with data (length <= PageSize), marking it
// clean. Used for prefetch and dirty write-back application.
func (m *Memory) InstallPage(pn uint32, data []byte) {
	p := &page{}
	copy(p.data[:], data)
	m.pages[pn] = p
	m.gen++
}

// ReadBytes copies size bytes at addr into a fresh slice, faulting pages in
// as needed.
func (m *Memory) ReadBytes(addr uint32, size int) ([]byte, error) {
	out := make([]byte, size)
	off := 0
	for off < size {
		pn := PageNum(addr + uint32(off))
		p, err := m.getPage(pn)
		if err != nil {
			return nil, err
		}
		po := int(addr+uint32(off)) & (PageSize - 1)
		n := copy(out[off:], p.data[po:])
		off += n
	}
	return out, nil
}

// WriteBytes stores data at addr, faulting pages in and dirtying them.
func (m *Memory) WriteBytes(addr uint32, data []byte) error {
	off := 0
	for off < len(data) {
		pn := PageNum(addr + uint32(off))
		p, err := m.getPage(pn)
		if err != nil {
			return err
		}
		po := int(addr+uint32(off)) & (PageSize - 1)
		n := copy(p.data[po:], data[off:])
		if m.TrackDirty {
			p.dirty = true
		}
		off += n
	}
	return nil
}

// ReadUint reads a size-byte little-endian unsigned integer at addr.
// Byte-order translation for big-endian machines happens in the interpreter
// (it is compiler-inserted code in the paper), so Memory itself is
// order-neutral and always uses the standard (little-endian) order.
func (m *Memory) ReadUint(addr uint32, size int) (uint64, error) {
	b, err := m.ReadBytes(addr, size)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteUint stores a size-byte little-endian unsigned integer at addr.
func (m *Memory) WriteUint(addr uint32, size int, v uint64) error {
	b := make([]byte, size)
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.WriteBytes(addr, b)
}

// DirtyPages returns the sorted page numbers written since the last
// ClearDirty.
func (m *Memory) DirtyPages() []uint32 {
	var out []uint32
	for pn, p := range m.pages {
		if p.dirty {
			out = append(out, pn)
		}
	}
	slices.Sort(out)
	return out
}

// ClearDirty resets all dirty bits.
func (m *Memory) ClearDirty() {
	for _, p := range m.pages {
		p.dirty = false
	}
	m.gen++
}

// PresentPages returns the sorted page numbers currently resident.
func (m *Memory) PresentPages() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn)
	}
	slices.Sort(out)
	return out
}

// Drop discards page pn (used when a server process terminates without
// keeping offloading data, Section 4 finalization).
func (m *Memory) Drop(pn uint32) { delete(m.pages, pn); m.gen++ }

// Reset discards all pages and counters.
func (m *Memory) Reset() {
	m.pages = make(map[uint32]*page)
	m.Faults = 0
	m.gen++
}

// Range is a half-open byte-address interval [Lo, Hi), used to exclude
// regions from Digest.
type Range struct{ Lo, Hi uint32 }

// StackBytes is the depth of each machine's run-time stack region.
const StackBytes = 8 << 20

// StackRanges covers both machines' stack regions. After a program
// returns, everything below the stack tops is dead residue whose bytes
// depend on where each frame ran (mobile vs server stack addresses), so
// semantic memory comparisons exclude it.
func StackRanges() []Range {
	return []Range{
		{MobileStackTop - StackBytes, MobileStackTop},
		{ServerStackTop - StackBytes, ServerStackTop},
	}
}

// Digest returns an FNV-1a hash of the memory image, iterating present
// pages in sorted order and skipping all-zero pages — an absent page and
// a zero-filled one hash identically, matching the copy-on-demand
// zero-fill semantics. Two runs that end in the same logical memory state
// digest equal even if they faulted different page sets in. Pages
// overlapping any skip range are left out of the hash.
func (m *Memory) Digest(skip ...Range) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
pages:
	for _, pn := range m.PresentPages() {
		lo := pn * PageSize
		for _, r := range skip {
			if lo < r.Hi && lo+PageSize > r.Lo {
				continue pages
			}
		}
		p := m.pages[pn]
		zero := true
		for i := 0; i < PageSize; i += 8 {
			if binary.LittleEndian.Uint64(p.data[i:]) != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(pn >> (8 * i)))
			h *= prime64
		}
		for _, b := range p.data {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}
