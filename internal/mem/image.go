// Shared program images: the immutable memory substrate under the
// compile-once / instantiate-many split. An Image captures the initial
// memory of a bound program (code-adjacent data, rodata, initialized
// globals) as a read-only, content-deduplicated page set. Many Memory
// overlays (one per session) read through a single Image; the first write
// to a shared page copies it into the session's private overlay
// (copy-on-write), so per-session resident bytes shrink to just the pages
// the session actually mutates.
package mem

import (
	"bytes"
	"slices"
)

// zeroPage is the canonical all-zero page every Image shares: identical
// zero pages deduplicate across images and sessions to this one array.
// It is handed out read-only and must never be written.
var zeroPage [PageSize]byte

// Image is an immutable snapshot of a memory's pages. It is safe for
// concurrent readers; nothing mutates it after Snapshot returns.
// Identical pages (by content) within the image share one backing array,
// and all-zero pages share the package-wide canonical zero page.
type Image struct {
	pages map[uint32]*[PageSize]byte
	pns   []uint32 // sorted page numbers (internal; treated read-only)
	// uniqueBytes is the deduplicated backing size: one PageSize per
	// distinct content (the canonical zero page counts once, at most).
	uniqueBytes int
}

// Snapshot freezes m's current resident pages into an Image. The source
// memory must be a plain (non-overlay) memory; its pages are copied, so
// later writes to m do not affect the image.
func Snapshot(m *Memory) *Image {
	img := &Image{pages: make(map[uint32]*[PageSize]byte, len(m.pages))}
	// byContent dedups page arrays: hash -> candidate arrays.
	byContent := make(map[uint64][]*[PageSize]byte)
	zeroSeen := false
	for pn, p := range m.pages {
		if pageIsZero(&p.data) {
			img.pages[pn] = &zeroPage
			zeroSeen = true
			continue
		}
		h := pageHash(&p.data)
		var arr *[PageSize]byte
		for _, cand := range byContent[h] {
			if bytes.Equal(cand[:], p.data[:]) {
				arr = cand
				break
			}
		}
		if arr == nil {
			arr = new([PageSize]byte)
			*arr = p.data
			byContent[h] = append(byContent[h], arr)
			img.uniqueBytes += PageSize
		}
		img.pages[pn] = arr
	}
	if zeroSeen {
		img.uniqueBytes += PageSize
	}
	img.pns = make([]uint32, 0, len(img.pages))
	for pn := range img.pages {
		img.pns = append(img.pns, pn)
	}
	slices.Sort(img.pns)
	return img
}

// page returns the read-only backing array of pn, if the image has it.
func (im *Image) page(pn uint32) (*[PageSize]byte, bool) {
	p, ok := im.pages[pn]
	return p, ok
}

// Has reports whether the image contains page pn.
func (im *Image) Has(pn uint32) bool {
	_, ok := im.pages[pn]
	return ok
}

// Pages returns the image's page numbers in ascending order. The returned
// slice is shared; callers must not modify it.
func (im *Image) Pages() []uint32 { return im.pns }

// NumPages returns the number of pages the image maps.
func (im *Image) NumPages() int { return len(im.pages) }

// Bytes returns the logical size of the image (mapped pages x PageSize).
func (im *Image) Bytes() int { return len(im.pages) * PageSize }

// UniqueBytes returns the deduplicated backing size: identical pages are
// stored once, and all-zero pages cost one canonical page in total.
func (im *Image) UniqueBytes() int { return im.uniqueBytes }

// pageIsZero scans a page word-wise for any set bit.
func pageIsZero(p *[PageSize]byte) bool {
	for i := 0; i < PageSize; i += 8 {
		if p[i]|p[i+1]|p[i+2]|p[i+3]|p[i+4]|p[i+5]|p[i+6]|p[i+7] != 0 {
			return false
		}
	}
	return true
}

// pageHash is FNV-1a over the page content, used only to bucket dedup
// candidates (full content comparison confirms).
func pageHash(p *[PageSize]byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
