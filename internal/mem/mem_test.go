package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	if err := m.WriteUint(0x2000_0000, 4, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadUint(0x2000_0000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Errorf("read back 0x%x, want 0xDEADBEEF", v)
	}
}

func TestLittleEndianStorage(t *testing.T) {
	m := New()
	if err := m.WriteUint(0x1000, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	b, _ := m.ReadBytes(0x1000, 4)
	want := []byte{0x44, 0x33, 0x22, 0x11}
	if !bytes.Equal(b, want) {
		t.Errorf("bytes = %x, want %x (standard order is little-endian)", b, want)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint32(PageSize - 2) // straddles pages 0 and 1
	if err := m.WriteUint(addr, 8, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadUint(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x0102030405060708 {
		t.Errorf("cross-page read = 0x%x", v)
	}
	if !m.HasPage(0) || !m.HasPage(1) {
		t.Error("both straddled pages should be present")
	}
}

func TestDirtyTracking(t *testing.T) {
	m := New()
	m.TrackDirty = true
	m.WriteUint(PageAddr(5)+8, 4, 1)
	m.WriteUint(PageAddr(9), 4, 1)
	m.ReadUint(PageAddr(7), 4) // read-only touch must not dirty
	d := m.DirtyPages()
	if len(d) != 2 || d[0] != 5 || d[1] != 9 {
		t.Errorf("DirtyPages = %v, want [5 9]", d)
	}
	m.ClearDirty()
	if len(m.DirtyPages()) != 0 {
		t.Error("ClearDirty left dirty pages")
	}
}

func TestCopyOnDemandFault(t *testing.T) {
	// Simulate the mobile side owning data the server faults in.
	mobile := New()
	mobile.WriteUint(PageAddr(3)+16, 4, 777)

	server := New()
	server.Fault = func(pn uint32) ([]byte, error) {
		return mobile.PageData(pn), nil
	}
	v, err := server.ReadUint(PageAddr(3)+16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Errorf("copy-on-demand read = %d, want 777", v)
	}
	if server.Faults != 1 {
		t.Errorf("Faults = %d, want 1", server.Faults)
	}
	// Second access: no new fault.
	server.ReadUint(PageAddr(3)+20, 4)
	if server.Faults != 1 {
		t.Errorf("Faults after second access = %d, want 1 (page cached)", server.Faults)
	}
}

func TestTouchHookObservesFootprint(t *testing.T) {
	m := New()
	touched := map[uint32]bool{}
	m.Touch = func(pn uint32) { touched[pn] = true }
	m.WriteUint(PageAddr(1), 4, 1)
	m.WriteUint(PageAddr(1)+64, 4, 1)
	m.ReadUint(PageAddr(4), 4)
	if len(touched) != 2 || !touched[1] || !touched[4] {
		t.Errorf("touched = %v, want pages 1 and 4", touched)
	}
}

func TestInstallAndDropPage(t *testing.T) {
	m := New()
	data := make([]byte, PageSize)
	data[100] = 0xAB
	m.InstallPage(42, data)
	v, _ := m.ReadUint(PageAddr(42)+100, 1)
	if v != 0xAB {
		t.Errorf("installed page content = 0x%x, want 0xAB", v)
	}
	m.Drop(42)
	if m.HasPage(42) {
		t.Error("Drop left page present")
	}
}

func TestAllocatorBasic(t *testing.T) {
	m := New()
	a := UVAHeap(m)
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("allocator returned the same block twice")
	}
	if p1%allocAlgn != 0 || p2%allocAlgn != 0 {
		t.Errorf("misaligned blocks: 0x%x 0x%x", p1, p2)
	}
	if p1 < HeapBase || p2 >= HeapLimit {
		t.Errorf("blocks outside heap region: 0x%x 0x%x", p1, p2)
	}
}

func TestAllocatorFreeAndReuse(t *testing.T) {
	m := New()
	a := UVAHeap(m)
	p1, _ := a.Alloc(64)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := a.Alloc(48) // fits in the freed 64-byte block
	if p2 != p1 {
		t.Errorf("freed block not reused: got 0x%x, want 0x%x", p2, p1)
	}
	if err := a.Free(0); err != nil {
		t.Errorf("Free(0) should be a no-op, got %v", err)
	}
	if err := a.Free(0x100); err == nil {
		t.Error("Free of out-of-heap address should fail")
	}
}

func TestAllocatorStateMigratesWithPages(t *testing.T) {
	// Allocate on "mobile", copy the heap pages to a fresh "server"
	// memory, and continue allocating there: the server must not hand out
	// overlapping blocks, because the allocator state lives in the pages.
	mobile := New()
	am := UVAHeap(mobile)
	var mobileBlocks []uint32
	for i := 0; i < 10; i++ {
		p, err := am.Alloc(200)
		if err != nil {
			t.Fatal(err)
		}
		mobileBlocks = append(mobileBlocks, p)
	}

	server := New()
	server.Fault = func(pn uint32) ([]byte, error) { return mobile.PageData(pn), nil }
	as := UVAHeap(server)
	p, err := as.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, mb := range mobileBlocks {
		if p < mb+200 && mb < p+200 {
			t.Errorf("server block 0x%x overlaps mobile block 0x%x", p, mb)
		}
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	m := New()
	a := NewAllocator(m, HeapBase, HeapBase+4096)
	if _, err := a.Alloc(8192); err == nil {
		t.Error("expected heap exhaustion error")
	}
}

func TestAllocatorPropertyNoOverlap(t *testing.T) {
	// Property: any interleaving of allocs (and frees of previous allocs)
	// yields live blocks that never overlap.
	check := func(ops []uint16) bool {
		m := New()
		a := UVAHeap(m)
		type blk struct{ addr, size uint32 }
		var live []blk
		for i, op := range ops {
			if i >= 64 {
				break
			}
			size := uint32(op%500) + 1
			if op%7 == 0 && len(live) > 0 {
				victim := int(op) % len(live)
				if a.Free(live[victim].addr) != nil {
					return false
				}
				live = append(live[:victim], live[victim+1:]...)
				continue
			}
			p, err := a.Alloc(size)
			if err != nil {
				return false
			}
			for _, l := range live {
				if p < l.addr+l.size && l.addr < p+size {
					return false
				}
			}
			live = append(live, blk{p, size})
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPageNumAddrInverse(t *testing.T) {
	for _, addr := range []uint32{0, 1, PageSize - 1, PageSize, 0x7FFF_FFFF} {
		pn := PageNum(addr)
		if PageAddr(pn) > addr || addr-PageAddr(pn) >= PageSize {
			t.Errorf("PageNum/PageAddr inconsistent for 0x%x", addr)
		}
	}
}

// TestGenerationCounter pins down the invalidation contract the interpreter's
// page caches rely on: structural mutations (install, drop, reset, dirty-bit
// clearing) bump the generation; faulting a page in does not, because the
// resident array a cached pointer refers to never moves.
func TestGenerationCounter(t *testing.T) {
	m := New()
	g0 := m.Gen()
	if _, err := m.Page(3); err != nil { // fault-in: no bump
		t.Fatal(err)
	}
	if m.Gen() != g0 {
		t.Errorf("fault-in bumped gen %d -> %d; cached page pointers are still valid", g0, m.Gen())
	}
	m.InstallPage(3, []byte{1, 2, 3})
	if m.Gen() == g0 {
		t.Error("InstallPage must bump gen: it replaces the page array")
	}
	g1 := m.Gen()
	m.Drop(3)
	if m.Gen() == g1 {
		t.Error("Drop must bump gen")
	}
	g2 := m.Gen()
	m.ClearDirty()
	if m.Gen() == g2 {
		t.Error("ClearDirty must bump gen: write caches pin the dirty bit")
	}
	g3 := m.Gen()
	m.Reset()
	if m.Gen() == g3 {
		t.Error("Reset must bump gen")
	}
}

// TestPageAndDirtyPage exercises the fast-path accessors: Page faults the
// page in and returns the resident array; DirtyPage additionally marks it
// dirty under TrackDirty, and writes through the returned array land in the
// page image.
func TestPageAndDirtyPage(t *testing.T) {
	m := New()
	m.TrackDirty = true
	pg, err := m.DirtyPage(7)
	if err != nil {
		t.Fatal(err)
	}
	pg[12] = 0xAB
	if d := m.DirtyPages(); len(d) != 1 || d[0] != 7 {
		t.Errorf("DirtyPages = %v, want [7]", d)
	}
	v, err := m.ReadUint(PageAddr(7)+12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xAB {
		t.Errorf("write through DirtyPage array invisible: read 0x%x", v)
	}

	rp, err := m.Page(9)
	if err != nil {
		t.Fatal(err)
	}
	if rp[0] != 0 {
		t.Error("fresh page should be zero-filled")
	}
	for _, d := range m.DirtyPages() {
		if d == 9 {
			t.Error("Page (read accessor) must not dirty the page")
		}
	}
	if !m.HasPage(9) {
		t.Error("Page should have faulted page 9 in")
	}
}

// TestDigestZeroPageEquivalence: a page that was written and then zeroed
// again must digest identically to a never-present page — the word-wise
// zero scan must not be fooled by nonzero bytes anywhere in the page.
func TestDigestZeroPageEquivalence(t *testing.T) {
	empty := New().Digest()
	m := New()
	for _, off := range []uint32{0, 7, PageSize - 1} {
		if err := m.WriteUint(PageAddr(4)+off, 1, 0xFF); err != nil {
			t.Fatal(err)
		}
		if m.Digest() == empty {
			t.Errorf("nonzero byte at offset %d not reflected in digest", off)
		}
		if err := m.WriteUint(PageAddr(4)+off, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if m.Digest() != empty {
		t.Error("all-zero resident page must digest like an absent page")
	}
}

// TestSortedPageLists: DirtyPages and PresentPages return ascending page
// numbers regardless of map iteration order.
func TestSortedPageLists(t *testing.T) {
	m := New()
	m.TrackDirty = true
	for _, pn := range []uint32{90, 3, 511, 42, 7} {
		if err := m.WriteUint(PageAddr(pn), 4, uint64(pn)); err != nil {
			t.Fatal(err)
		}
	}
	for name, got := range map[string][]uint32{"dirty": m.DirtyPages(), "present": m.PresentPages()} {
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Errorf("%s pages not ascending: %v", name, got)
			}
		}
	}
}
