package mem

import "fmt"

// Allocator is the u_malloc/u_free heap manager of Section 3.2. Its entire
// state — the bump pointer, the free list head, and every block header —
// lives *inside* the UVA heap it manages. That is the property that makes
// cross-machine allocation work without an explicit protocol: when an
// offloaded task allocates on the server, the allocator metadata pages it
// dirties travel back to the mobile device with the ordinary dirty-page
// write-back, and the mobile allocator continues seamlessly.
//
// Layout: the first 16 bytes of the heap region are the admin block
// {brk u32, freeHead u32}. Each allocation is preceded by an 8-byte header
// {size u32, next u32}; next is only meaningful while the block is free.
type Allocator struct {
	M     *Memory
	Base  uint32
	Limit uint32
}

const (
	adminBrk  = 0 // offset of bump pointer in admin block
	adminFree = 4 // offset of free list head
	adminSize = 16
	hdrSize   = 8
	allocAlgn = 16
)

// NewAllocator prepares an allocator over [base, limit) of m. No memory is
// touched until the first Alloc: a server-side allocator must fault the
// admin page in from the mobile device rather than initialize its own.
func NewAllocator(m *Memory, base, limit uint32) *Allocator {
	return &Allocator{M: m, Base: base, Limit: limit}
}

// UVAHeap returns the standard u_malloc allocator for m.
func UVAHeap(m *Memory) *Allocator {
	return NewAllocator(m, HeapBase, HeapLimit)
}

func roundUp(n, a uint32) uint32 { return (n + a - 1) / a * a }

// Alloc reserves size bytes and returns their address.
// First fit on the free list, falling back to bumping brk.
func (a *Allocator) Alloc(size uint32) (uint32, error) {
	if size == 0 {
		size = 1
	}
	need := roundUp(size, allocAlgn)

	// First fit.
	prevPtr := a.Base + adminFree
	cur, err := a.M.ReadUint(prevPtr, 4)
	if err != nil {
		return 0, err
	}
	for cur != 0 {
		blk := uint32(cur)
		bsz, err := a.M.ReadUint(blk, 4)
		if err != nil {
			return 0, err
		}
		nxt, err := a.M.ReadUint(blk+4, 4)
		if err != nil {
			return 0, err
		}
		if uint32(bsz) >= need {
			// Unlink and hand out.
			if err := a.M.WriteUint(prevPtr, 4, nxt); err != nil {
				return 0, err
			}
			return blk + hdrSize, nil
		}
		prevPtr = blk + 4
		cur = nxt
	}

	// Bump allocation.
	brkv, err := a.M.ReadUint(a.Base+adminBrk, 4)
	if err != nil {
		return 0, err
	}
	brk := uint32(brkv)
	if brk == 0 { // first use of this heap anywhere
		brk = a.Base + adminSize
	}
	blk := roundUp(brk+hdrSize, allocAlgn) - hdrSize
	end := blk + hdrSize + need
	if end > a.Limit {
		return 0, fmt.Errorf("mem: UVA heap exhausted: need %d bytes at 0x%x (limit 0x%x)", need, blk, a.Limit)
	}
	if err := a.M.WriteUint(a.Base+adminBrk, 4, uint64(end)); err != nil {
		return 0, err
	}
	if err := a.M.WriteUint(blk, 4, uint64(need)); err != nil {
		return 0, err
	}
	return blk + hdrSize, nil
}

// Free returns the block at addr to the free list. Freeing address 0 is a
// no-op, matching free(NULL).
func (a *Allocator) Free(addr uint32) error {
	if addr == 0 {
		return nil
	}
	if addr < a.Base+adminSize+hdrSize || addr >= a.Limit {
		return fmt.Errorf("mem: u_free of address 0x%x outside heap [0x%x,0x%x)", addr, a.Base, a.Limit)
	}
	blk := addr - hdrSize
	head, err := a.M.ReadUint(a.Base+adminFree, 4)
	if err != nil {
		return err
	}
	if err := a.M.WriteUint(blk+4, 4, head); err != nil {
		return err
	}
	return a.M.WriteUint(a.Base+adminFree, 4, uint64(blk))
}

// Brk reports the current bump pointer, i.e. the high-water mark of the
// heap; the profiler uses it to size prefetch sets.
func (a *Allocator) Brk() (uint32, error) {
	v, err := a.M.ReadUint(a.Base+adminBrk, 4)
	return uint32(v), err
}
