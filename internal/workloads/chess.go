package workloads

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// ChessConfig sizes the chess game of the paper's running example.
type ChessConfig struct {
	// LeafEvals is how many board positions each minimax leaf evaluates
	// through the evals function-pointer table.
	LeafEvals int64
	// Branch is the minimax branching factor; movement computation costs
	// ~Branch^depth, reproducing Table 1's growth across difficulty
	// levels.
	Branch int64
}

// DefaultChessConfig matches the Figure 3 example closely enough for the
// Table 1 / Table 3 experiments.
func DefaultChessConfig() ChessConfig {
	return ChessConfig{LeafEvals: 8, Branch: 3}
}

// BuildChess constructs the chess program of Figure 3(a):
//
//	main: scanf maxDepth, board = malloc(64*Piece), runGame()
//	runGame: per turn { mv = getPlayerTurn(); updateBoard(mv);
//	                    score = getAITurn(); ... }
//	getAITurn: minimax search; leaves evaluate pieces through the
//	           evals[] function-pointer table; prints per-level scores
//	getPlayerTurn: scanf("%d,%d")
//
// Expected stdin: maxDepth, turns, then (from, to) per turn.
func BuildChess(cfg ChessConfig) *ir.Module {
	mod := ir.NewModule("chess")
	b := ir.NewBuilder(mod)

	piece := ir.Struct("Piece",
		ir.StructField{Name: "loc", Type: ir.I8},
		ir.StructField{Name: "owner", Type: ir.I8},
		ir.StructField{Name: "type", Type: ir.I8},
	)
	evalSig := ir.Signature(ir.F64, ir.Ptr(piece))

	// Globals: referenced by the offloaded task, so the unifier will move
	// them to the UVA space.
	maxDepth := b.GlobalVar("maxDepth", ir.I32)
	board := b.GlobalVar("board", ir.Ptr(piece))

	// Seven eval routines (Pawn..King), each with distinct arithmetic so
	// wrong function-pointer translation is observable in the score.
	var evalFuncs []ir.Value
	weights := []float64{1, 3, 3.25, 5, 9, 200, 0.5}
	names := []string{"evalPawn", "evalKnight", "evalBishop", "evalRook", "evalQueen", "evalKing", "evalNone"}
	for i, name := range names {
		f := b.NewFunc(name, ir.F64, ir.P("p", ir.Ptr(piece)))
		loc := b.Convert(ir.ConvIntToFP, b.Convert(ir.ConvZExt, b.Load(b.Field(f.Params[0], 0)), ir.I32), ir.F64)
		owner := b.Convert(ir.ConvIntToFP, b.Convert(ir.ConvZExt, b.Load(b.Field(f.Params[0], 1)), ir.I32), ir.F64)
		v := b.Add(b.Mul(loc, ir.Float(weights[i])), owner)
		b.Ret(v)
		evalFuncs = append(evalFuncs, f)
	}
	evals := b.GlobalVar("evals", ir.Array(ir.Ptr(evalSig), 7), evalFuncs...)

	// minimax(depth) -> f64: interior nodes branch; leaves evaluate
	// LeafEvals pieces through the function-pointer table.
	minimax := b.NewFunc("minimax", ir.F64, ir.P("depth", ir.I32))
	{
		best := b.Alloca(ir.F64)
		b.Store(best, ir.Float(0))
		b.If(b.Cmp(ir.LE, b.F.Params[0], ir.Int(0)),
			func() {
				bd := b.Load(board)
				b.For("leaf", ir.Int(0), ir.Int(cfg.LeafEvals), ir.Int(1), func(j ir.Value) {
					idx := b.Rem(b.Mul(j, ir.Int(11)), ir.Int(64))
					pc := b.Index(bd, idx)
					pt := b.Convert(ir.ConvZExt, b.Load(b.Field(pc, 2)), ir.I32)
					slot := b.Index(evals, b.Rem(pt, ir.Int(7)))
					fp := b.Load(slot)
					b.Store(best, b.Add(b.Load(best), b.CallPtr(fp, evalSig, pc)))
				})
			},
			func() {
				b.For("branch", ir.Int(0), ir.Int(cfg.Branch), ir.Int(1), func(k ir.Value) {
					sub := b.Call(minimax, b.Sub(b.F.Params[0], ir.Int(1)))
					b.Store(best, b.Add(b.Load(best), b.Mul(sub, ir.Float(0.99))))
				})
			})
		b.Ret(b.Load(best))
	}

	// getAITurn: for i < maxDepth { score += minimax(i); printf } — the
	// offload target (printf is remotable output, Figure 3(c) line 61).
	ai := b.NewFunc("getAITurn", ir.F64)
	{
		score := b.Alloca(ir.F64)
		b.Store(score, ir.Float(0))
		depth := b.Load(maxDepth)
		b.For("for_i", ir.Int(0), depth, ir.Int(1), func(i ir.Value) {
			b.Store(score, b.Add(b.Load(score), b.Call(minimax, i)))
			b.CallExtern(ir.ExternPrintf, b.Str("%f\n"), b.Load(score))
		})
		b.Ret(b.Load(score))
	}

	// getPlayerTurn: interactive input -> machine specific.
	player := b.NewFunc("getPlayerTurn", ir.I32)
	{
		from := b.Alloca(ir.I32)
		to := b.Alloca(ir.I32)
		b.CallExtern(ir.ExternScanf, b.Str("%d,%d"), from, to)
		b.Ret(b.Or(b.Shl(b.Load(from), ir.Int(8)), b.Load(to)))
	}

	// updateBoard(mv): move a piece.
	update := b.NewFunc("updateBoard", ir.Void, ir.P("mv", ir.I32))
	{
		bd := b.Load(board)
		from := b.Rem(b.Shr(b.F.Params[0], ir.Int(8)), ir.Int(64))
		to := b.Rem(b.And(b.F.Params[0], ir.Int(255)), ir.Int(64))
		src := b.Index(bd, from)
		dst := b.Index(bd, to)
		b.Store(b.Field(dst, 2), b.Load(b.Field(src, 2)))
		b.Store(b.Field(dst, 1), b.Load(b.Field(src, 1)))
		b.Store(b.Field(src, 2), ir.Int8(0))
		b.RetVoid()
	}

	// runGame: the turn loop.
	run := b.NewFunc("runGame", ir.Void)
	{
		turns := b.Alloca(ir.I32)
		b.CallExtern(ir.ExternScanf, b.Str("%d"), turns)
		b.For("turns", ir.Int(0), b.Load(turns), ir.Int(1), func(i ir.Value) {
			mv := b.Call(player)
			b.Call(update, mv)
			sc := b.Call(ai)
			b.CallExtern(ir.ExternPrintf, b.Str("turn score %f\n"), sc)
		})
		b.RetVoid()
	}

	// main.
	b.NewFunc("main", ir.I32)
	{
		b.CallExtern(ir.ExternScanf, b.Str("%d"), maxDepth)
		raw := b.CallExtern(ir.ExternMalloc, ir.Int(sizeOf(piece)*64))
		bd := b.Convert(ir.ConvBitcast, raw, ir.Ptr(piece))
		b.Store(board, bd)
		b.For("init", ir.Int(0), ir.Int(64), ir.Int(1), func(i ir.Value) {
			pc := b.Index(bd, i)
			b.Store(b.Field(pc, 0), b.Convert(ir.ConvTrunc, i, ir.I8))
			b.Store(b.Field(pc, 1), b.Convert(ir.ConvTrunc, b.Rem(i, ir.Int(2)), ir.I8))
			b.Store(b.Field(pc, 2), b.Convert(ir.ConvTrunc, b.Rem(i, ir.Int(7)), ir.I8))
		})
		b.Call(run)
		b.Ret(ir.Int(0))
	}
	b.Finish()
	return mod
}

// ChessInput builds the stdin token stream: depth, turns, and (from, to)
// pairs.
func ChessInput(depth, turns int64) *interp.StdIO {
	io := interp.NewStdIO(nil)
	io.MaxBuffered = 1 << 20
	io.AddInput(depth, turns)
	for i := int64(0); i < turns; i++ {
		io.AddInput((i*7+3)%64, (i*13+5)%64)
	}
	return io
}

// ChessCostScale amplifies interpreter cost so that the depth-11 movement
// computation lands near Table 1's 66 s on the mobile device.
const ChessCostScale = 140
