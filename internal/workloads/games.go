package workloads

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// 445.gobmk — the Go game engine. The offloaded gtp_main_loop dispatches
// GTP commands through a function-pointer table (Table 4: 77 fptr uses) and
// reads previous play-record files *during* the offloaded execution —
// remote input operations whose round trips dominate its Figure 7 overhead
// and keep the radio busy throughout (Figure 8(b)/(c)).
func init() {
	const (
		boardElems = 16 * kb // i64 board/cache
		recordSize = 256 * kb
		chunk      = 1024
	)
	build := func() *ir.Module {
		mod := ir.NewModule("445.gobmk")
		b := ir.NewBuilder(mod)
		board := b.GlobalVar("board", ir.Ptr(ir.I64))
		commands, cmdSig := funcTable(b, "gtp_cmd", 16)

		gtp := b.NewFunc("gtp_main_loop", ir.I64, ir.P("cmds", ir.I32))
		{
			f := b.F
			score := b.Alloca(ir.I64)
			b.Store(score, ir.Int64(0))
			bd := b.Load(board)
			buf := b.CallExtern(ir.ExternUMalloc, ir.Int(chunk))
			fd := b.CallExtern(ir.ExternFileOpen, b.Str("games.sgf"))
			b.For("cmdloop", ir.Int(0), f.Params[0], ir.Int(1), func(c ir.Value) {
				// Each command pulls a couple of play-record moves — small
				// remote-input round trips spread across the whole run,
				// which is what keeps gobmk's radio continuously powered
				// in Figure 8(b).
				nTotal := b.Alloca(ir.I32)
				b.Store(nTotal, ir.Int(0))
				b.For("parse", ir.Int(0), ir.Int(2), ir.Int(1), func(k ir.Value) {
					dst := b.Index(b.Convert(ir.ConvBitcast, buf, ir.Ptr(ir.I8)), b.Mul(k, ir.Int(64)))
					nk := b.CallExtern(ir.ExternFileRead, fd, dst, ir.Int(64))
					b.Store(nTotal, b.Add(b.Load(nTotal), nk))
				})
				n := b.Load(nTotal)
				first := b.Convert(ir.ConvZExt,
					b.Load(b.Convert(ir.ConvBitcast, buf, ir.Ptr(ir.I8))), ir.I64)
				// Dispatch the command.
				fp := b.Load(b.Index(commands, b.Rem(b.Convert(ir.ConvTrunc, first, ir.I32), ir.Int(16))))
				r := b.CallPtr(fp, cmdSig, b.Add(first, b.Convert(ir.ConvSExt, n, ir.I64)))
				// Evaluate resulting positions over the board cache.
				b.For("read", ir.Int(0), ir.Int(boardElems/40), ir.Int(1), func(i ir.Value) {
					idx := b.Rem(b.Add(b.Mul(i, ir.Int(40)), b.Mul(c, ir.Int(7))), ir.Int(boardElems))
					v := b.Load(b.Index(bd, idx))
					// Pattern matchers are dispatched through the command
					// table frequently (gobmk's 77 fptr uses, Fig. 7).
					pv := dispatchEvery(b, i, 7, commands, cmdSig,
						b.Convert(ir.ConvTrunc, b.And(v, ir.Int64(15)), ir.I32), v)
					b.Store(b.Index(bd, idx), b.Add(b.Mul(pv, ir.Int64(6364136223846793005)), r))
					b.Store(score, b.Xor(b.Load(score), v))
				})
			})
			b.CallExtern(ir.ExternFileClose, fd)
			b.CallExtern(ir.ExternPrintf, b.Str("gtp score %d\n"), b.Load(score))
			b.Ret(b.Load(score))
		}

		b.NewFunc("main", ir.I32)
		cmds := scanRounds(b)
		raw := b.CallExtern(ir.ExternMalloc, ir.Int(boardElems*8))
		b.CallExtern(ir.ExternMemset, raw, ir.Int(3), ir.Int(boardElems*8))
		b.Store(board, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		s := b.Call(gtp, cmds)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), s)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(cmds int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{cmds})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("games.sgf", recordSize, 0x445)
		return io
	}
	register(&Workload{
		Name:      "445.gobmk",
		Desc:      "Go Game",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(1100) },
		EvalIO:    func() *interp.StdIO { return mkIO(1200) },
		CostScale: 3500,
		Paper: PaperStats{
			ExecTimeSec: 361.8, CoveragePct: 99.96, Invocations: 1,
			TrafficMB: 25.7, FptrUses: 77, TargetName: "gtp_main_loop",
			RemoteInput: true,
		},
	})
}

// 458.sjeng — the chess engine: think() runs once per game move (three
// invocations in Table 4) against a large transposition table, so each
// offload re-ships megabytes (240.2 MB per invocation in the paper) —
// yet even on the slow network the search is heavy enough to win, the
// paper's showcase of a user-interactive program offloading profitably.
func init() {
	const ttElems = 400 * kb // i64 transposition table (~3.2 MB)
	build := func() *ir.Module {
		mod := ir.NewModule("458.sjeng")
		b := ir.NewBuilder(mod)
		tt := b.GlobalVar("ttable", ir.Ptr(ir.I64))
		evalRoutines, evalSig := funcTable(b, "sjeng_eval", 8)

		think := b.NewFunc("think", ir.I64, ir.P("mv", ir.I32), ir.P("nodes", ir.I32))
		{
			f := b.F
			best := b.Alloca(ir.I64)
			b.Store(best, b.Convert(ir.ConvSExt, f.Params[0], ir.I64))
			t := b.Load(tt)
			b.For("search", ir.Int(0), f.Params[1], ir.Int(1), func(n ir.Value) {
				// Probe and update the transposition table (dirties the
				// whole table across the search).
				h := b.Rem(b.Mul(n, ir.Int(2654435761)), ir.Int(ttElems))
				e := b.Load(b.Index(t, h))
				sc := dispatchEvery(b, n, 1, evalRoutines, evalSig,
					b.Convert(ir.ConvTrunc, b.And(e, ir.Int64(7)), ir.I32), b.Add(e, b.Load(best)))
				b.Store(b.Index(t, h), sc)
				b.Store(best, b.Xor(b.Load(best), b.Shr(sc, ir.Int64(3))))
			})
			b.CallExtern(ir.ExternPrintf, b.Str("move score %d\n"), b.Load(best))
			b.Ret(b.Load(best))
		}

		b.NewFunc("main", ir.I32)
		nodes := scanRounds(b)
		raw := b.CallExtern(ir.ExternMalloc, ir.Int(ttElems*8))
		b.CallExtern(ir.ExternMemset, raw, ir.Int(1), ir.Int(ttElems*8))
		b.Store(tt, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		total := b.Alloca(ir.I64)
		b.Store(total, ir.Int64(0))
		// Three game moves, each preceded by interactive player input.
		b.For("game", ir.Int(0), ir.Int(3), ir.Int(1), func(g ir.Value) {
			mv := b.Alloca(ir.I32)
			b.CallExtern(ir.ExternScanf, b.Str("%d"), mv)
			b.Store(total, b.Add(b.Load(total), b.Call(think, b.Load(mv), nodes)))
		})
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), b.Load(total))
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(nodes int64, moves ...int64) *interp.StdIO {
		io := interp.NewStdIO(append([]int64{nodes}, moves...))
		io.MaxBuffered = 1 << 20
		return io
	}
	register(&Workload{
		Name:      "458.sjeng",
		Desc:      "Chess Game",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(40000, 21, 43, 65) },
		EvalIO:    func() *interp.StdIO { return mkIO(40000, 12, 34, 56) },
		CostScale: 34200,
		Paper: PaperStats{
			ExecTimeSec: 950.8, CoveragePct: 99.95, Invocations: 3,
			TrafficMB: 240.2, FptrUses: 1, TargetName: "think",
		},
	})
}
