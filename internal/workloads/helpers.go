package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// kb/mb express scaled footprints tersely.
const (
	kb = 1024
	mb = 1024 * 1024
)

// emitReadFile emits fopen/fread/fclose filling a fresh heap buffer of the
// given size from the named (synthetic) input file, the way SPEC programs
// slurp their reference inputs. It returns the raw *i8 buffer value.
func emitReadFile(b *ir.Builder, name string, size int64) ir.Value {
	buf := b.CallExtern(ir.ExternMalloc, ir.Int(size))
	fd := b.CallExtern(ir.ExternFileOpen, b.Str(name))
	b.CallExtern(ir.ExternFileRead, fd, buf, ir.Int(size))
	b.CallExtern(ir.ExternFileClose, fd)
	return buf
}

// funcTable declares n functions named prefix0..prefixN-1, each computing a
// distinct affine transform of an i64 argument, and returns the global
// function-pointer table plus its shared signature. These model SPEC's
// dispatch tables (mesa's rasterization stages, h264ref's SAD variants,
// gobmk's command table, sjeng's evalRoutines).
func funcTable(b *ir.Builder, prefix string, n int) (*ir.Global, *ir.FuncType) {
	sig := ir.Signature(ir.I64, ir.I64)
	funcs := make([]ir.Value, n)
	for i := 0; i < n; i++ {
		f := b.NewFunc(fmt.Sprintf("%s%d", prefix, i), ir.I64, ir.P("x", ir.I64))
		v := b.Mul(f.Params[0], ir.Int64(int64(2*i+3)))
		b.Ret(b.Add(v, ir.Int64(int64(i*7+1))))
		funcs[i] = f
	}
	tbl := b.GlobalVar(prefix+"_tbl", ir.Array(ir.Ptr(sig), n), funcs...)
	return tbl, sig
}

// floatTable is funcTable for f64 kernels (ammp's potential functions).
func floatTable(b *ir.Builder, prefix string, n int) (*ir.Global, *ir.FuncType) {
	sig := ir.Signature(ir.F64, ir.F64)
	funcs := make([]ir.Value, n)
	for i := 0; i < n; i++ {
		f := b.NewFunc(fmt.Sprintf("%s%d", prefix, i), ir.F64, ir.P("x", ir.F64))
		v := b.Mul(f.Params[0], ir.Float(1.0+float64(i)*0.125))
		b.Ret(b.Add(v, ir.Float(float64(i)*0.5)))
		funcs[i] = f
	}
	tbl := b.GlobalVar(prefix+"_tbl", ir.Array(ir.Ptr(sig), n), funcs...)
	return tbl, sig
}

// scanRounds emits the "scanf rounds" prologue every workload main uses so
// the profiling input and the evaluation input can differ (the paper uses
// different inputs for profiling and evaluation).
func scanRounds(b *ir.Builder) ir.Value {
	r := b.Alloca(ir.I32)
	b.CallExtern(ir.ExternScanf, b.Str("%d"), r)
	return b.Load(r)
}

// touchPages emits a strided write over buf (an *i64 view) so that the
// whole working set is resident and dirtied without iterating every
// element: one write per stride elements.
func touchPages(b *ir.Builder, buf ir.Value, elems, stride int64, v ir.Value) {
	b.For("touch", ir.Int(0), ir.Int(elems/stride), ir.Int(1), func(i ir.Value) {
		b.Store(b.Index(buf, b.Mul(i, ir.Int(stride))), v)
	})
}

// dispatchEvery models realistic function-pointer usage: the table is
// consulted when (i & mask) == 0 and a common-case inline path runs
// otherwise. Table 4's fptr-heavy programs (gobmk, sjeng, h264ref) use
// small masks — they really do dereference per node/macroblock — while the
// others dispatch rarely, which is why only those three show visible
// translation overhead in Figure 7.
func dispatchEvery(b *ir.Builder, i ir.Value, mask int64, tbl *ir.Global, sig *ir.FuncType, idx ir.Value, x ir.Value) ir.Value {
	r := b.Alloca(sig.Ret)
	b.If(b.Cmp(ir.EQ, b.And(i, ir.Int(mask)), ir.Int(0)), func() {
		fp := b.Load(b.Index(tbl, idx))
		b.Store(r, b.CallPtr(fp, sig, x))
	}, func() {
		if _, isF := sig.Ret.(*ir.FloatType); isF {
			b.Store(r, b.Add(b.Mul(x, ir.Float(1.25)), ir.Float(0.5)))
		} else {
			b.Store(r, b.Add(b.Mul(x, ir.Int64(3)), ir.Int64(1)))
		}
	})
	return b.Load(r)
}
