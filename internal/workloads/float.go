package workloads

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// 179.art — image recognition: an adaptive-resonance neural network scans
// an image against learned weights. The target scan_recognize is compute
// dense with a modest working set (Table 4: 16.4 MB traffic, 85.44%
// coverage — the lowest of the suite, because setup/learning stays local).
func init() {
	const (
		imgElems = 24 * kb // f64 image
		wElems   = 8 * kb  // f64 weights
	)
	build := func() *ir.Module {
		mod := ir.NewModule("179.art")
		b := ir.NewBuilder(mod)
		img := b.GlobalVar("image", ir.Ptr(ir.F64))
		wts := b.GlobalVar("weights", ir.Ptr(ir.F64))

		scan := b.NewFunc("scan_recognize", ir.F64, ir.P("rounds", ir.I32))
		{
			f := b.F
			best := b.Alloca(ir.F64)
			b.Store(best, ir.Float(0))
			im := b.Load(img)
			w := b.Load(wts)
			b.For("pass", ir.Int(0), f.Params[0], ir.Int(1), func(p ir.Value) {
				b.For("f1", ir.Int(0), ir.Int(imgElems/8), ir.Int(1), func(i ir.Value) {
					x := b.Load(b.Index(im, b.Mul(i, ir.Int(8))))
					wi := b.Load(b.Index(w, b.Rem(i, ir.Int(wElems))))
					y := b.Add(b.Mul(x, wi), b.Mul(x, x))
					b.Store(best, b.Add(b.Mul(b.Load(best), ir.Float(0.9999)), y))
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("match %f\n"), b.Load(best))
			b.Ret(b.Load(best))
		}

		b.NewFunc("main", ir.I32)
		rounds := scanRounds(b)
		imraw := emitReadFile(b, "image.dat", imgElems*8)
		b.Store(img, b.Convert(ir.ConvBitcast, imraw, ir.Ptr(ir.F64)))
		wraw := emitReadFile(b, "weights.dat", wElems*8)
		b.Store(wts, b.Convert(ir.ConvBitcast, wraw, ir.Ptr(ir.F64)))
		// The F1-layer learning pass stays on the device: it polls the
		// camera sensor (a system call), so the filter pins it — this is
		// why art has the suite's lowest coverage (85.44% in Table 4).
		wp := b.Load(wts)
		b.For("learn", ir.Int(0), b.Mul(rounds, ir.Int(300)), ir.Int(1), func(i ir.Value) {
			b.CallExtern(ir.ExternSyscall)
			idx := b.Rem(i, ir.Int(wElems))
			wv := b.Load(b.Index(wp, idx))
			b.Store(b.Index(wp, idx), b.Add(b.Mul(wv, ir.Float(0.98)), ir.Float(0.01)))
		})
		r := b.Call(scan, rounds)
		b.CallExtern(ir.ExternPrintf, b.Str("final %f\n"), r)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(rounds int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{rounds})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("image.dat", imgElems*8, 0x179)
		io.SyntheticFile("weights.dat", wElems*8, 0x17A)
		return io
	}
	register(&Workload{
		Name:      "179.art",
		Desc:      "Image Recognition",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(2) },
		EvalIO:    func() *interp.StdIO { return mkIO(20) },
		CostScale: 23200,
		Paper: PaperStats{
			ExecTimeSec: 325.5, CoveragePct: 85.44, Invocations: 1,
			TrafficMB: 16.4, TargetName: "scan_recognize",
		},
	})
}

// 183.equake — seismic wave propagation: a time-stepping loop in main over
// sparse matrix-vector products. The offload target is the outlined main
// loop (Table 4: main_for.cond548).
func init() {
	const elems = 10 * kb // f64 state vectors
	build := func() *ir.Module {
		mod := ir.NewModule("183.equake")
		b := ir.NewBuilder(mod)
		disp := b.GlobalVar("disp", ir.Ptr(ir.F64))
		stiff := b.GlobalVar("stiff", ir.Ptr(ir.F64))

		b.NewFunc("main", ir.I32)
		steps := scanRounds(b)
		draw := emitReadFile(b, "quake.in", elems*8)
		b.Store(disp, b.Convert(ir.ConvBitcast, draw, ir.Ptr(ir.F64)))
		sraw := emitReadFile(b, "stiff.in", elems*8)
		b.Store(stiff, b.Convert(ir.ConvBitcast, sraw, ir.Ptr(ir.F64)))
		d := b.Load(disp)
		k := b.Load(stiff)
		b.For("for", ir.Int(0), steps, ir.Int(1), func(t ir.Value) {
			b.For("smvp", ir.Int(0), ir.Int(elems/8), ir.Int(1), func(i ir.Value) {
				idx := b.Mul(i, ir.Int(8))
				x := b.Load(b.Index(d, idx))
				kk := b.Load(b.Index(k, idx))
				nb := b.Load(b.Index(d, b.Rem(b.Mul(i, ir.Int(13)), ir.Int(elems))))
				b.Store(b.Index(d, idx), b.Add(b.Mul(x, ir.Float(0.995)), b.Mul(kk, nb)))
			})
		})
		b.CallExtern(ir.ExternPrintf, b.Str("final %f\n"), b.Load(b.Index(d, ir.Int(64))))
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(steps int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{steps})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("quake.in", elems*8, 0x183)
		io.SyntheticFile("stiff.in", elems*8, 0x184)
		return io
	}
	register(&Workload{
		Name:      "183.equake",
		Desc:      "Seismic Wave Propagation",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(2) },
		EvalIO:    func() *interp.StdIO { return mkIO(16) },
		CostScale: 84000,
		Paper: PaperStats{
			ExecTimeSec: 334.0, CoveragePct: 99.44, Invocations: 1,
			TrafficMB: 16.5, TargetName: "main_for.cond",
		},
	})
}

// 433.milc — lattice quantum chromodynamics: the update sweep over the
// gauge field runs twice (Table 4: 2 invocations).
func init() {
	const elems = 13 * kb // f64 lattice links
	build := func() *ir.Module {
		mod := ir.NewModule("433.milc")
		b := ir.NewBuilder(mod)
		lattice := b.GlobalVar("lattice", ir.Ptr(ir.F64))
		staples, stapleSig := floatTable(b, "milc_dir", 3) // 6 fptr uses in Table 4

		update := b.NewFunc("update", ir.F64, ir.P("sweeps", ir.I32))
		{
			f := b.F
			act := b.Alloca(ir.F64)
			b.Store(act, ir.Float(0))
			lat := b.Load(lattice)
			b.For("sweep", ir.Int(0), f.Params[0], ir.Int(1), func(s ir.Value) {
				b.For("site", ir.Int(0), ir.Int(elems/8), ir.Int(1), func(i ir.Value) {
					idx := b.Mul(i, ir.Int(8))
					u := b.Load(b.Index(lat, idx))
					st := dispatchEvery(b, i, 15, staples, stapleSig,
						b.Convert(ir.ConvTrunc, b.Rem(idx, ir.Int(3)), ir.I32), u)
					nu := b.Add(b.Mul(u, ir.Float(0.98)), b.Mul(st, ir.Float(0.02)))
					b.Store(b.Index(lat, idx), nu)
					b.Store(act, b.Add(b.Load(act), nu))
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("action %f\n"), b.Load(act))
			b.Ret(b.Load(act))
		}

		b.NewFunc("main", ir.I32)
		sweeps := scanRounds(b)
		raw := emitReadFile(b, "lattice.in", elems*8)
		b.Store(lattice, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.F64)))
		total := b.Alloca(ir.F64)
		b.Store(total, ir.Float(0))
		// Two trajectory halves -> two update invocations, with an
		// interactive checkpoint prompt between them.
		b.For("traj", ir.Int(0), ir.Int(2), ir.Int(1), func(tr ir.Value) {
			ack := b.Alloca(ir.I32)
			b.CallExtern(ir.ExternScanf, b.Str("%d"), ack)
			b.Store(total, b.Add(b.Load(total), b.Call(update, sweeps)))
		})
		b.CallExtern(ir.ExternPrintf, b.Str("final %f\n"), b.Load(total))
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(sweeps int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{sweeps, 1, 1})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("lattice.in", elems*8, 0x433)
		return io
	}
	register(&Workload{
		Name:      "433.milc",
		Desc:      "Quantum Chromodynamics",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(2) },
		EvalIO:    func() *interp.StdIO { return mkIO(14) },
		CostScale: 31400,
		Paper: PaperStats{
			ExecTimeSec: 365.8, CoveragePct: 96.21, Invocations: 2,
			TrafficMB: 13.4, FptrUses: 6, TargetName: "update",
		},
	})
}

// 470.lbm — fluid dynamics (lattice Boltzmann): the heaviest program of the
// suite (1444.9 s) with by far the largest traffic (643.6 MB): the whole
// grid crosses the network. The target is the outlined main time loop.
func init() {
	const gridBytes = int64(9728 * kb) // 643.6 MB / Scale split across both directions
	build := func() *ir.Module {
		mod := ir.NewModule("470.lbm")
		b := ir.NewBuilder(mod)
		grid := b.GlobalVar("grid", ir.Ptr(ir.I64))

		b.NewFunc("main", ir.I32)
		steps := scanRounds(b)
		raw := b.CallExtern(ir.ExternMalloc, ir.Int(gridBytes))
		// Initialize the full grid (makes every page resident and the
		// working set real).
		b.CallExtern(ir.ExternMemset, raw, ir.Int(17), ir.Int(gridBytes))
		g := b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64))
		b.Store(grid, g)
		elems := gridBytes / 8
		b.For("for", ir.Int(0), steps, ir.Int(1), func(t ir.Value) {
			// Stream/collide pass: strided so each step touches (and
			// dirties) every page of the grid without per-cell cost.
			b.For("collide", ir.Int(0), ir.Int(elems/256), ir.Int(1), func(i ir.Value) {
				idx := b.Mul(i, ir.Int(256))
				c := b.Load(b.Index(g, idx))
				n := b.Load(b.Index(g, b.Rem(b.Add(idx, ir.Int(257)), ir.Int(elems))))
				b.Store(b.Index(g, idx), b.Add(b.Mul(c, ir.Int64(3)), b.Shr(n, ir.Int64(1))))
			})
		})
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), b.Load(b.Index(g, ir.Int(512))))
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(steps int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{steps})
		io.MaxBuffered = 1 << 20
		return io
	}
	register(&Workload{
		Name:      "470.lbm",
		Desc:      "Fluid Dynamics",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(2) },
		EvalIO:    func() *interp.StdIO { return mkIO(20) },
		CostScale: 89500,
		Paper: PaperStats{
			ExecTimeSec: 1444.9, CoveragePct: 99.70, Invocations: 1,
			TrafficMB: 643.6, TargetName: "main_for.cond",
		},
	})
}

// 188.ammp — computational chemistry with two offload targets (Table 4):
// tpac (the force/integration pass, 85.60% coverage, one invocation) and
// AMMPmonitor (an analysis pass, 13.53% coverage, two invocations). The
// potential functions dispatch through a table (66 fptr uses).
func init() {
	const atoms = 24 * kb // f64 coordinates
	build := func() *ir.Module {
		mod := ir.NewModule("188.ammp")
		b := ir.NewBuilder(mod)
		pos := b.GlobalVar("pos", ir.Ptr(ir.F64))
		potentials, potSig := floatTable(b, "ammp_pot", 16)

		// AMMPmonitor: statistics sweep.
		monitor := b.NewFunc("AMMPmonitor", ir.F64, ir.P("rounds", ir.I32))
		{
			f := b.F
			e := b.Alloca(ir.F64)
			b.Store(e, ir.Float(0))
			p := b.Load(pos)
			b.For("mon", ir.Int(0), f.Params[0], ir.Int(1), func(r ir.Value) {
				b.For("atoms", ir.Int(0), ir.Int(atoms/8), ir.Int(1), func(i ir.Value) {
					x := b.Load(b.Index(p, b.Mul(i, ir.Int(8))))
					pe := dispatchEvery(b, i, 15, potentials, potSig,
						b.Convert(ir.ConvTrunc, b.Rem(b.Mul(i, ir.Int(5)), ir.Int(16)), ir.I32), x)
					b.Store(e, b.Add(b.Load(e), pe))
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("monitor %f\n"), b.Load(e))
			b.Ret(b.Load(e))
		}

		// tpac: the heavy force/integration pass.
		tpac := b.NewFunc("tpac", ir.F64, ir.P("rounds", ir.I32))
		{
			f := b.F
			e := b.Alloca(ir.F64)
			b.Store(e, ir.Float(0))
			p := b.Load(pos)
			b.For("force", ir.Int(0), f.Params[0], ir.Int(1), func(r ir.Value) {
				b.For("pairs", ir.Int(0), ir.Int(atoms/4), ir.Int(1), func(i ir.Value) {
					a := b.Load(b.Index(p, b.Mul(i, ir.Int(4))))
					c := b.Load(b.Index(p, b.Rem(b.Mul(i, ir.Int(29)), ir.Int(atoms))))
					dr := b.Sub(a, c)
					pe := dispatchEvery(b, i, 15, potentials, potSig,
						b.Convert(ir.ConvTrunc, b.Rem(b.Mul(i, ir.Int(3)), ir.Int(16)), ir.I32), b.Mul(dr, dr))
					b.Store(e, b.Add(b.Load(e), pe))
					b.Store(b.Index(p, b.Mul(i, ir.Int(4))), b.Add(a, b.Mul(dr, ir.Float(0.001))))
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("tpac %f\n"), b.Load(e))
			b.Ret(b.Load(e))
		}

		b.NewFunc("main", ir.I32)
		rounds := scanRounds(b)
		raw := emitReadFile(b, "ammp.in", atoms*8)
		b.Store(pos, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.F64)))
		m1 := b.Call(monitor, b.Div(rounds, ir.Int(3)))
		tp := b.Call(tpac, b.Mul(rounds, ir.Int(3)))
		m2 := b.Call(monitor, b.Div(rounds, ir.Int(3)))
		b.CallExtern(ir.ExternPrintf, b.Str("final %f\n"), b.Add(b.Add(m1, m2), tp))
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(rounds int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{rounds})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("ammp.in", atoms*8, 0x188)
		return io
	}
	register(&Workload{
		Name:      "188.ammp",
		Desc:      "Computational Chemistry",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(3) },
		EvalIO:    func() *interp.StdIO { return mkIO(12) },
		CostScale: 11260,
		Paper: PaperStats{
			ExecTimeSec: 878.0, CoveragePct: 85.60, Invocations: 1,
			TrafficMB: 17.6, FptrUses: 66, TargetName: "tpac",
		},
	})
}
