package workloads

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/offrt"
)

func TestSeventeenRegistered(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registered %d workloads, want 17 (Table 4)", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.Build == nil || w.ProfileIO == nil || w.EvalIO == nil {
			t.Errorf("%s: incomplete definition", w.Name)
		}
		if w.Paper.TargetName == "" || w.Paper.ExecTimeSec == 0 {
			t.Errorf("%s: missing paper calibration data", w.Name)
		}
	}
	if ByName("458.sjeng") == nil || ByName("no.such") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestAllModulesVerify(t *testing.T) {
	for _, w := range All() {
		mod := w.Build()
		if err := ir.Verify(mod); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if mod.Func("main") == nil {
			t.Errorf("%s: no main", w.Name)
		}
	}
}

// TestWorkloadPipelines pushes every workload through profile -> compile ->
// local run -> offloaded run (profile-sized input to stay quick) and checks
// semantics plus the Table 4 target identity.
func TestWorkloadPipelines(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			fw := core.NewFramework(core.FastNetwork).WithScale(Scale, w.CostScale)
			mod := w.Build()
			prof, err := fw.Profile(mod, w.ProfileIO())
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			cres, err := fw.Compile(mod, prof)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Target identity: the paper's Table 4 target must be among
			// the selected tasks.
			found := false
			var names []string
			for _, tg := range cres.Targets {
				names = append(names, tg.Display)
				if tg.Display == w.Paper.TargetName || tg.Name == w.Paper.TargetName ||
					strings.HasPrefix(tg.Display, w.Paper.TargetName) {
					found = true
				}
			}
			if !found {
				t.Errorf("targets %v do not include paper target %s", names, w.Paper.TargetName)
			}

			local, err := fw.RunLocal(mod, w.ProfileIO())
			if err != nil {
				t.Fatalf("local: %v", err)
			}
			off, err := fw.RunOffloaded(cres, w.ProfileIO(), offrt.Policy{ForceOffload: true})
			if err != nil {
				t.Fatalf("offload: %v", err)
			}
			if local.Output != off.Output {
				t.Errorf("output mismatch:\nlocal: %.300s\noffload: %.300s", local.Output, off.Output)
			}
			if !off.Offloaded() {
				t.Error("nothing offloaded")
			}
			if w.Paper.RemoteInput && off.Comp[3] == 0 {
				// Comp[3] is CompComm; remote input must at least move data.
				t.Error("remote-input workload moved no data")
			}
		})
	}
}

// TestEvalInvocationCounts checks the Table 4 invocation column on the full
// evaluation input.
func TestEvalInvocationCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation inputs")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			fw := core.NewFramework(core.FastNetwork).WithScale(Scale, w.CostScale)
			mod := w.Build()
			prof, err := fw.Profile(mod, w.ProfileIO())
			if err != nil {
				t.Fatal(err)
			}
			cres, err := fw.Compile(mod, prof)
			if err != nil {
				t.Fatal(err)
			}
			off, err := fw.RunOffloaded(cres, w.EvalIO(), offrt.Policy{ForceOffload: true})
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, st := range off.PerTask {
				total += st.Offloads
			}
			// 188.ammp runs two targets (1 + 2 invocations).
			want := w.Paper.Invocations
			if w.Name == "188.ammp" {
				want = 3
			}
			if total != want {
				t.Errorf("offload invocations = %d, want %d", total, want)
			}
		})
	}
}
