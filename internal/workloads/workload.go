// Package workloads contains the benchmark programs of the evaluation:
// the chess game of the paper's running example (Table 1, Table 3,
// Figure 3) and seventeen programs standing in for the SPEC CPU2000/2006
// C benchmarks of Table 4. SPEC sources cannot be redistributed, so each
// stand-in implements a kernel of the same computational character,
// calibrated to the paper's reported per-program behaviour: offload-target
// shape (function vs. outlined loop), invocation count, communication
// traffic, coverage, function-pointer usage, and remote I/O pattern.
//
// All memory footprints are divided by Scale (the framework divides network
// bandwidth by the same factor), and CostScale amplifies per-instruction
// cost so that simulated times land in the paper's seconds range while the
// interpreter only executes millions of operations.
package workloads

import (
	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
)

// mobileABI is the ABI the front end computes sizeof against (the mobile
// device's, which is also the unification standard).
var mobileABI = arch.ARM32()

// sizeOf is sizeof(t) under the mobile ABI, as a front end would emit it.
func sizeOf(t ir.Type) int64 { return int64(ir.SizeOf(t, mobileABI)) }

// Scale is the common footprint divisor (bandwidth shrinks to match).
const Scale = 64

// PaperStats records what the paper's Table 4 / Figure 6 report for one
// program, for side-by-side comparison in EXPERIMENTS.md.
type PaperStats struct {
	ExecTimeSec float64 // Table 4 smartphone execution time
	CoveragePct float64 // Table 4 offload coverage
	Invocations int     // Table 4 invocation count
	TrafficMB   float64 // Table 4 per-invocation communication traffic
	FptrUses    int     // Table 4 function-pointer uses
	TargetName  string  // Table 4 target function
	RemoteInput bool    // reads files during offload (twolf/gobmk/h264ref)
	StarredSlow bool    // not offloaded on the slow network (gzip)
}

// Workload is one runnable benchmark program.
type Workload struct {
	Name  string
	Desc  string
	Build func() *ir.Module
	// ProfileIO and EvalIO provide the two inputs; the paper uses
	// different inputs for profiling and evaluation, and so do we.
	ProfileIO func() *interp.StdIO
	EvalIO    func() *interp.StdIO
	// CostScale amplifies interpreter cost for this workload.
	CostScale int64
	Paper     PaperStats
}

var registry []*Workload

func register(w *Workload) *Workload {
	registry = append(registry, w)
	return w
}

// All returns every registered SPEC-like workload in Table 4 order.
func All() []*Workload {
	out := make([]*Workload, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for _, w := range registry {
		if w.Name == name {
			return w
		}
	}
	return nil
}
