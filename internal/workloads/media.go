package workloads

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// 177.mesa — software 3-D rendering: Render walks vertex arrays through a
// large table of pipeline-stage functions (Table 4: 1169 fptr uses, the
// most in the suite) and rasterizes into a framebuffer.
func init() {
	const (
		fbElems   = 32 * kb // i64 framebuffer (256 KB)
		vertElems = 6 * kb  // f64 vertices
	)
	build := func() *ir.Module {
		mod := ir.NewModule("177.mesa")
		b := ir.NewBuilder(mod)
		fb := b.GlobalVar("framebuffer", ir.Ptr(ir.I64))
		verts := b.GlobalVar("vertices", ir.Ptr(ir.F64))
		stages, stageSig := funcTable(b, "mesa_stage", 32)

		render := b.NewFunc("Render", ir.I64, ir.P("frames", ir.I32))
		{
			f := b.F
			pix := b.Alloca(ir.I64)
			b.Store(pix, ir.Int64(0))
			fbp := b.Load(fb)
			vp := b.Load(verts)
			b.For("frame", ir.Int(0), f.Params[0], ir.Int(1), func(fr ir.Value) {
				b.For("vert", ir.Int(0), ir.Int(vertElems), ir.Int(4), func(v ir.Value) {
					x := b.Load(b.Index(vp, v))
					xi := b.Convert(ir.ConvFPToInt, b.Mul(x, ir.Float(1e6)), ir.I64)
					// Pipeline stage dispatch (inline fast path most of the
					// time: the hot shaders are specialized).
					t1 := dispatchEvery(b, v, 31, stages, stageSig,
						b.Convert(ir.ConvTrunc, b.And(xi, ir.Int64(31)), ir.I32), xi)
					t2 := b.Add(b.Mul(t1, ir.Int64(5)), b.Shr(t1, ir.Int64(7)))
					dst := b.Convert(ir.ConvTrunc, b.And(t2, ir.Int64(fbElems-1)), ir.I32)
					b.Store(b.Index(fbp, dst), t2)
					b.Store(pix, b.Add(b.Load(pix), ir.Int64(1)))
				})
				b.CallExtern(ir.ExternPrintf, b.Str("frame %d done\n"), fr)
			})
			b.Ret(b.Load(pix))
		}

		b.NewFunc("main", ir.I32)
		frames := scanRounds(b)
		raw := b.CallExtern(ir.ExternMalloc, ir.Int(fbElems*8))
		b.CallExtern(ir.ExternMemset, raw, ir.Int(0), ir.Int(fbElems*8))
		b.Store(fb, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		vraw := emitReadFile(b, "scene.dat", vertElems*8)
		b.Store(verts, b.Convert(ir.ConvBitcast, vraw, ir.Ptr(ir.F64)))
		n := b.Call(render, frames)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), n)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(frames int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{frames})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("scene.dat", vertElems*8, 0x177)
		return io
	}
	register(&Workload{
		Name:      "177.mesa",
		Desc:      "3-D Graphics",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(1) },
		EvalIO:    func() *interp.StdIO { return mkIO(12) },
		CostScale: 36700,
		Paper: PaperStats{
			ExecTimeSec: 120.2, CoveragePct: 99.02, Invocations: 1,
			TrafficMB: 20.3, FptrUses: 1169, TargetName: "Render",
		},
	})
}

// 464.h264ref — video encoding: encode_sequence reads the raw video file
// frame by frame *during* the offloaded run (remote input) and computes
// SAD metrics through a table of specialized routines (457 fptr uses).
func init() {
	const (
		refElems  = 10 * kb // i64 reference frame (80 KB)
		videoFile = 256 * kb
		frameRead = 8 * kb
	)
	build := func() *ir.Module {
		mod := ir.NewModule("464.h264ref")
		b := ir.NewBuilder(mod)
		ref := b.GlobalVar("refframe", ir.Ptr(ir.I64))
		sads, sadSig := funcTable(b, "sad", 16)

		encode := b.NewFunc("encode_sequence", ir.I64, ir.P("frames", ir.I32))
		{
			f := b.F
			bits := b.Alloca(ir.I64)
			b.Store(bits, ir.Int64(0))
			rp := b.Load(ref)
			buf := b.CallExtern(ir.ExternUMalloc, ir.Int(frameRead))
			fd := b.CallExtern(ir.ExternFileOpen, b.Str("video.yuv"))
			b.For("seq", ir.Int(0), f.Params[0], ir.Int(1), func(fr ir.Value) {
				// The raw frame arrives slice by slice (remote input).
				b.For("slice", ir.Int(0), ir.Int(16), ir.Int(1), func(sl ir.Value) {
					dst := b.Index(b.Convert(ir.ConvBitcast, buf, ir.Ptr(ir.I8)),
						b.Mul(sl, ir.Int(frameRead/16)))
					b.CallExtern(ir.ExternFileRead, fd, dst, ir.Int(frameRead/16))
				})
				cur := b.Convert(ir.ConvBitcast, buf, ir.Ptr(ir.I8))
				b.For("mb", ir.Int(0), ir.Int(frameRead/64), ir.Int(1), func(m ir.Value) {
					px := b.Convert(ir.ConvZExt, b.Load(b.Index(cur, b.Mul(m, ir.Int(64)))), ir.I64)
					s := dispatchEvery(b, m, 1, sads, sadSig,
						b.Convert(ir.ConvTrunc, b.And(px, ir.Int64(15)), ir.I32), px)
					slot := b.Convert(ir.ConvTrunc, b.And(s, ir.Int64(refElems-1)), ir.I32)
					old := b.Load(b.Index(rp, slot))
					b.Store(b.Index(rp, slot), b.Add(old, s))
					b.Store(bits, b.Add(b.Load(bits), b.And(s, ir.Int64(255))))
				})
			})
			b.CallExtern(ir.ExternFileClose, fd)
			b.CallExtern(ir.ExternPrintf, b.Str("encoded %d bits\n"), b.Load(bits))
			b.Ret(b.Load(bits))
		}

		b.NewFunc("main", ir.I32)
		frames := scanRounds(b)
		raw := b.CallExtern(ir.ExternMalloc, ir.Int(refElems*8))
		b.CallExtern(ir.ExternMemset, raw, ir.Int(0), ir.Int(refElems*8))
		b.Store(ref, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		n := b.Call(encode, frames)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), n)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(frames int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{frames})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("video.yuv", videoFile, 0x464)
		return io
	}
	register(&Workload{
		Name:      "464.h264ref",
		Desc:      "Video Encoder",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(2) },
		EvalIO:    func() *interp.StdIO { return mkIO(16) },
		CostScale: 163000,
		Paper: PaperStats{
			ExecTimeSec: 78.2, CoveragePct: 99.79, Invocations: 1,
			TrafficMB: 17.1, FptrUses: 457, TargetName: "encode_sequence",
			RemoteInput: true,
		},
	})
}

// 482.sphinx3 — speech recognition: the outlined main loop evaluates HMM
// senones per frame and logs hypotheses continuously (many remote output
// operations; Table 4: 34 MB traffic, 98.39% coverage).
func init() {
	const modelElems = 64 * kb // f64 acoustic model (512 KB)
	build := func() *ir.Module {
		mod := ir.NewModule("482.sphinx3")
		b := ir.NewBuilder(mod)
		model := b.GlobalVar("model", ir.Ptr(ir.F64))
		gauFns, gauSig := floatTable(b, "sphinx_gau", 7) // 14 fptr uses

		b.NewFunc("main", ir.I32)
		frames := scanRounds(b)
		raw := emitReadFile(b, "hmm.model", modelElems*8)
		m := b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.F64))
		b.Store(model, m)
		score := b.Alloca(ir.F64)
		b.Store(score, ir.Float(0))
		b.For("for", ir.Int(0), frames, ir.Int(1), func(fr ir.Value) {
			b.For("senone", ir.Int(0), ir.Int(modelElems/32), ir.Int(1), func(s ir.Value) {
				x := b.Load(b.Index(m, b.Mul(s, ir.Int(32))))
				g := dispatchEvery(b, s, 15, gauFns, gauSig, b.Rem(s, ir.Int(7)), x)
				b.Store(score, b.Add(b.Mul(b.Load(score), ir.Float(0.999)), g))
			})
			b.CallExtern(ir.ExternPrintf, b.Str("frame %d best %f\n"), fr, b.Load(score))
		})
		b.CallExtern(ir.ExternPrintf, b.Str("final %f\n"), b.Load(score))
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(frames int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{frames})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("hmm.model", modelElems*8, 0x482)
		return io
	}
	register(&Workload{
		Name:      "482.sphinx3",
		Desc:      "Speech Recognition",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(3) },
		EvalIO:    func() *interp.StdIO { return mkIO(36) },
		CostScale: 23500,
		Paper: PaperStats{
			ExecTimeSec: 375.2, CoveragePct: 98.39, Invocations: 1,
			TrafficMB: 34.0, FptrUses: 14, TargetName: "main_for.cond",
		},
	})
}
