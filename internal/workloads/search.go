package workloads

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// 175.vpr — FPGA place & route. The offload target is the annealing loop
// inside try_place (Table 4: try_place_while.cond): the function itself
// stays mobile because it ends with an interactive checkpoint prompt, so
// the compiler outlines the loop. Traffic is tiny (0.8 MB) — near-ideal.
func init() {
	const cells = 1 * kb // i64 placement grid (~8 KB)
	build := func() *ir.Module {
		mod := ir.NewModule("175.vpr")
		b := ir.NewBuilder(mod)
		grid := b.GlobalVar("grid", ir.Ptr(ir.I64))
		costFns, costSig := funcTable(b, "vpr_cost", 2) // 3 fptr uses in Table 4

		tryPlace := b.NewFunc("try_place", ir.I64, ir.P("iters", ir.I32))
		{
			f := b.F
			cost := b.Alloca(ir.I64)
			b.Store(cost, ir.Int64(1<<20))
			g := b.Load(grid)
			it := b.Alloca(ir.I32)
			b.Store(it, ir.Int(0))
			b.While("while", func() ir.Value {
				return b.Cmp(ir.LT, b.Load(it), f.Params[0])
			}, func() {
				i := b.Load(it)
				a := b.Rem(b.Mul(i, ir.Int(7919)), ir.Int(cells))
				c := b.Rem(b.Mul(i, ir.Int(104729)), ir.Int(cells))
				va := b.Load(b.Index(g, a))
				vc := b.Load(b.Index(g, c))
				// Swap and evaluate the move through the cost model.
				b.Store(b.Index(g, a), vc)
				b.Store(b.Index(g, c), va)
				delta := dispatchEvery(b, i, 15, costFns, costSig,
					b.Rem(i, ir.Int(2)), b.Sub(va, vc))
				b.Store(cost, b.Add(b.Load(cost), b.Shr(delta, ir.Int64(9))))
				b.Store(it, b.Add(i, ir.Int(1)))
			})
			// Interactive checkpoint keeps try_place itself on the phone.
			ack := b.Alloca(ir.I32)
			b.CallExtern(ir.ExternScanf, b.Str("%d"), ack)
			b.CallExtern(ir.ExternPrintf, b.Str("placement cost %d\n"), b.Load(cost))
			b.Ret(b.Load(cost))
		}

		b.NewFunc("main", ir.I32)
		iters := scanRounds(b)
		raw := emitReadFile(b, "arch.in", cells*8)
		b.Store(grid, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		c := b.Call(tryPlace, iters)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), c)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(iters int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{iters, 1})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("arch.in", cells*8, 0x175)
		return io
	}
	register(&Workload{
		Name:      "175.vpr",
		Desc:      "FPGA Simulation",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(3000) },
		EvalIO:    func() *interp.StdIO { return mkIO(40000) },
		CostScale: 2170,
		Paper: PaperStats{
			ExecTimeSec: 26.9, CoveragePct: 99.07, Invocations: 1,
			TrafficMB: 0.8, FptrUses: 3, TargetName: "try_place_while.cond",
		},
	})
}

// 300.twolf — standard-cell place/route. The offloaded utemp pass reads
// the cell-information file *while offloaded* (remote input, Section 5.1),
// giving it a visible remote I/O overhead despite tiny page traffic
// (3.3 MB).
func init() {
	const (
		cells    = 2 * kb // i64 cell array
		netFile  = 128 * kb
		netChunk = 512
	)
	build := func() *ir.Module {
		mod := ir.NewModule("300.twolf")
		b := ir.NewBuilder(mod)
		place := b.GlobalVar("place", ir.Ptr(ir.I64))

		utemp := b.NewFunc("utemp", ir.I64, ir.P("passes", ir.I32))
		{
			f := b.F
			cost := b.Alloca(ir.I64)
			b.Store(cost, ir.Int64(0))
			g := b.Load(place)
			buf := b.CallExtern(ir.ExternUMalloc, ir.Int(netChunk))
			fd := b.CallExtern(ir.ExternFileOpen, b.Str("cells.net"))
			b.For("pass", ir.Int(0), f.Params[0], ir.Int(1), func(p ir.Value) {
				// Pull the next slice of cell connectivity in small pieces
				// (remote input round trips when offloaded).
				b.For("pull", ir.Int(0), ir.Int(netChunk/64), ir.Int(1), func(k ir.Value) {
					dst := b.Index(b.Convert(ir.ConvBitcast, buf, ir.Ptr(ir.I8)), b.Mul(k, ir.Int(64)))
					b.CallExtern(ir.ExternFileRead, fd, dst, ir.Int(64))
				})
				seed := b.Convert(ir.ConvZExt,
					b.Load(b.Convert(ir.ConvBitcast, buf, ir.Ptr(ir.I8))), ir.I64)
				b.For("anneal", ir.Int(0), ir.Int(cells/2), ir.Int(1), func(i ir.Value) {
					a := b.Rem(b.Mul(i, ir.Int(131)), ir.Int(cells))
					v := b.Load(b.Index(g, a))
					nv := b.Add(b.Mul(v, ir.Int64(25214903917)), seed)
					b.Store(b.Index(g, a), nv)
					b.Store(cost, b.Xor(b.Load(cost), b.Shr(nv, ir.Int64(17))))
				})
			})
			b.CallExtern(ir.ExternFileClose, fd)
			b.CallExtern(ir.ExternPrintf, b.Str("utemp cost %d\n"), b.Load(cost))
			b.Ret(b.Load(cost))
		}

		b.NewFunc("main", ir.I32)
		passes := scanRounds(b)
		raw := b.CallExtern(ir.ExternMalloc, ir.Int(cells*8))
		b.CallExtern(ir.ExternMemset, raw, ir.Int(9), ir.Int(cells*8))
		b.Store(place, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		c := b.Call(utemp, passes)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), c)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(passes int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{passes})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("cells.net", netFile, 0x300)
		return io
	}
	register(&Workload{
		Name:      "300.twolf",
		Desc:      "Place/Route Simulator",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(4) },
		EvalIO:    func() *interp.StdIO { return mkIO(50) },
		CostScale: 19300,
		Paper: PaperStats{
			ExecTimeSec: 157.8, CoveragePct: 99.84, Invocations: 1,
			TrafficMB: 3.3, TargetName: "utemp", RemoteInput: true,
		},
	})
}

// 429.mcf — vehicle scheduling via network simplex: pointer-chasing
// relaxation sweeps over a node array; substantial traffic (47.9 MB).
func init() {
	const nodes = 44 * kb // i64 node array (~352 KB)
	build := func() *ir.Module {
		mod := ir.NewModule("429.mcf")
		b := ir.NewBuilder(mod)
		net := b.GlobalVar("network", ir.Ptr(ir.I64))

		opt := b.NewFunc("global_opt", ir.I64, ir.P("sweeps", ir.I32))
		{
			f := b.F
			flow := b.Alloca(ir.I64)
			b.Store(flow, ir.Int64(0))
			g := b.Load(net)
			b.For("simplex", ir.Int(0), f.Params[0], ir.Int(1), func(s ir.Value) {
				b.For("arc", ir.Int(0), ir.Int(nodes/16), ir.Int(1), func(i ir.Value) {
					idx := b.Mul(i, ir.Int(16))
					v := b.Load(b.Index(g, idx))
					// Follow the stored "arc" to another node.
					nxt := b.Convert(ir.ConvTrunc, b.And(v, ir.Int64(nodes-1)), ir.I32)
					w := b.Load(b.Index(g, nxt))
					nv := b.Add(b.Mul(v, ir.Int64(3)), b.Shr(w, ir.Int64(2)))
					b.Store(b.Index(g, idx), nv)
					b.Store(flow, b.Add(b.Load(flow), b.And(nv, ir.Int64(1023))))
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("flow %d\n"), b.Load(flow))
			b.Ret(b.Load(flow))
		}

		b.NewFunc("main", ir.I32)
		sweeps := scanRounds(b)
		raw := emitReadFile(b, "routes.in", nodes*8)
		b.Store(net, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		r := b.Call(opt, sweeps)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), r)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(sweeps int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{sweeps})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("routes.in", nodes*8, 0x429)
		return io
	}
	register(&Workload{
		Name:      "429.mcf",
		Desc:      "Vehicle Scheduling",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(2) },
		EvalIO:    func() *interp.StdIO { return mkIO(16) },
		CostScale: 17500,
		Paper: PaperStats{
			ExecTimeSec: 104.8, CoveragePct: 99.55, Invocations: 1,
			TrafficMB: 47.9, TargetName: "global_opt",
		},
	})
}
