package workloads

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// 456.hmmer — gene sequence search: the offloaded main_loop_serial takes
// only small initialized parameters as live-ins and synthesizes its search
// work on the server, so per-invocation traffic is the suite's minimum
// (0.3 MB) and the speedup is near ideal (Section 5.1).
func init() {
	const hmmElems = 512 // i64 profile HMM parameters (4 KB)
	build := func() *ir.Module {
		mod := ir.NewModule("456.hmmer")
		b := ir.NewBuilder(mod)
		hmm := b.GlobalVar("hmm", ir.Ptr(ir.I64))
		scoreFns, scoreSig := funcTable(b, "hmmer_sc", 8) // 36 fptr uses modelled by the table

		loop := b.NewFunc("main_loop_serial", ir.I64, ir.P("seqs", ir.I32))
		{
			f := b.F
			hits := b.Alloca(ir.I64)
			b.Store(hits, ir.Int64(0))
			h := b.Load(hmm)
			// Scratch allocated inside the task: it materializes on the
			// server as zero-fill pages, costing no communication.
			scratch := b.Convert(ir.ConvBitcast,
				b.CallExtern(ir.ExternUMalloc, ir.Int(4*kb)), ir.Ptr(ir.I64))
			b.For("seq", ir.Int(0), f.Params[0], ir.Int(1), func(s ir.Value) {
				state := b.Alloca(ir.I64)
				b.Store(state, b.Convert(ir.ConvSExt, b.Add(s, ir.Int(1)), ir.I64))
				b.For("viterbi", ir.Int(0), ir.Int(1024), ir.Int(1), func(i ir.Value) {
					st := b.Load(state)
					emit := b.Load(b.Index(h, b.Convert(ir.ConvTrunc, b.And(st, ir.Int64(hmmElems-1)), ir.I32)))
					ns := dispatchEvery(b, i, 15, scoreFns, scoreSig,
						b.Convert(ir.ConvTrunc, b.And(emit, ir.Int64(7)), ir.I32), b.Add(st, emit))
					b.Store(state, ns)
					b.Store(b.Index(scratch, b.Convert(ir.ConvTrunc, b.And(ns, ir.Int64(511)), ir.I32)), ns)
				})
				b.Store(hits, b.Add(b.Load(hits), b.And(b.Load(state), ir.Int64(3))))
			})
			b.CallExtern(ir.ExternPrintf, b.Str("hits %d\n"), b.Load(hits))
			b.Ret(b.Load(hits))
		}

		b.NewFunc("main", ir.I32)
		seqs := scanRounds(b)
		raw := emitReadFile(b, "globin.hmm", hmmElems*8)
		b.Store(hmm, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
		n := b.Call(loop, seqs)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), n)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(seqs int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{seqs})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("globin.hmm", hmmElems*8, 0x456)
		return io
	}
	register(&Workload{
		Name:      "456.hmmer",
		Desc:      "Gene Sequence Search",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(3) },
		EvalIO:    func() *interp.StdIO { return mkIO(30) },
		CostScale: 6750,
		Paper: PaperStats{
			ExecTimeSec: 31.3, CoveragePct: 99.99, Invocations: 1,
			TrafficMB: 0.3, FptrUses: 36, TargetName: "main_loop_serial",
		},
	})
}

// 462.libquantum — quantum computing simulation: Shor's modular
// exponentiation applies controlled gates over a qubit register bit
// vector. Table 4 notes it as the one program with *zero* referenced
// globals: the register is task-local state.
func init() {
	const regElems = 6 * kb // i64 amplitude register (48 KB)
	build := func() *ir.Module {
		mod := ir.NewModule("462.libquantum")
		b := ir.NewBuilder(mod)

		expmod := b.NewFunc("quantum_exp_mod_n", ir.I64, ir.P("reg", ir.Ptr(ir.I64)), ir.P("gates", ir.I32))
		{
			f := b.F
			phase := b.Alloca(ir.I64)
			b.Store(phase, ir.Int64(1))
			b.For("gate", ir.Int(0), f.Params[1], ir.Int(1), func(g ir.Value) {
				b.For("amp", ir.Int(0), ir.Int(regElems/4), ir.Int(1), func(i ir.Value) {
					idx := b.Mul(i, ir.Int(4))
					a := b.Load(b.Index(f.Params[0], idx))
					// Controlled-NOT-ish toggle with a phase rotation.
					na := b.Xor(a, b.Load(phase))
					b.Store(b.Index(f.Params[0], idx), na)
					b.Store(phase, b.Add(b.Mul(b.Load(phase), ir.Int64(5)), ir.Int64(3)))
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("phase %d\n"), b.Load(phase))
			b.Ret(b.Load(phase))
		}

		b.NewFunc("main", ir.I32)
		gates := scanRounds(b)
		raw := emitReadFile(b, "qreg.in", regElems*8)
		reg := b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64))
		p := b.Call(expmod, reg, gates)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), p)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(gates int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{gates})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("qreg.in", regElems*8, 0x462)
		return io
	}
	register(&Workload{
		Name:      "462.libquantum",
		Desc:      "Quantum Computing",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(3) },
		EvalIO:    func() *interp.StdIO { return mkIO(24) },
		CostScale: 15650,
		Paper: PaperStats{
			ExecTimeSec: 71.0, CoveragePct: 92.56, Invocations: 1,
			TrafficMB: 6.3, TargetName: "quantum_exp_mod_n",
		},
	})
}
