package workloads

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// 164.gzip — compression. The offload target spec_compress processes a
// large input buffer read from a file before offloading, and emits a
// compressed stream; per-invocation traffic is enormous (Table 4:
// 151.5 MB), which is why the dynamic estimator refuses to offload it over
// 802.11n (the starred bar of Figure 6).
func init() {
	const (
		inSize  = 2048 * kb // 151.5 MB / Scale, split across in+out
		outSize = 512 * kb
	)
	build := func() *ir.Module {
		mod := ir.NewModule("164.gzip")
		b := ir.NewBuilder(mod)
		hashTbl, hashSig := funcTable(b, "gz_hash", 3)

		compress := b.NewFunc("spec_compress", ir.I64,
			ir.P("in", ir.Ptr(ir.I8)), ir.P("out", ir.Ptr(ir.I8)), ir.P("n", ir.I32), ir.P("rounds", ir.I32))
		{
			f := b.F
			digest := b.Alloca(ir.I64)
			b.Store(digest, ir.Int64(0))
			outPos := b.Alloca(ir.I32)
			b.Store(outPos, ir.Int(0))
			b.For("r", ir.Int(0), f.Params[3], ir.Int(1), func(r ir.Value) {
				b.For("scan", ir.Int(0), b.Div(f.Params[2], ir.Int(16)), ir.Int(1), func(i ir.Value) {
					byt := b.Convert(ir.ConvZExt, b.Load(b.Index(f.Params[0], b.Mul(i, ir.Int(16)))), ir.I64)
					h := dispatchEvery(b, i, 15, hashTbl, hashSig,
						b.Convert(ir.ConvTrunc, b.Rem(byt, ir.Int64(3)), ir.I32), byt)
					b.Store(digest, b.Add(b.Mul(b.Load(digest), ir.Int64(31)), h))
					// Emit a literal every third position (RLE-ish ratio).
					b.If(b.Cmp(ir.EQ, b.Rem(i, ir.Int(3)), ir.Int(0)), func() {
						op := b.Load(outPos)
						dst := b.Index(f.Params[1], b.Rem(op, ir.Int(int64(outSize))))
						b.Store(dst, b.Convert(ir.ConvTrunc, h, ir.I8))
						b.Store(outPos, b.Add(op, ir.Int(5)))
					}, nil)
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("compressed %d bytes, digest %d\n"),
				b.Load(outPos), b.Load(digest))
			b.Ret(b.Load(digest))
		}

		b.NewFunc("main", ir.I32)
		rounds := scanRounds(b)
		in := emitReadFile(b, "input.source", inSize)
		out := b.CallExtern(ir.ExternMalloc, ir.Int(outSize))
		d := b.Call(compress, b.Convert(ir.ConvBitcast, in, ir.Ptr(ir.I8)),
			b.Convert(ir.ConvBitcast, out, ir.Ptr(ir.I8)), ir.Int(inSize), rounds)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), d)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(rounds int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{rounds})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("input.source", inSize, 0x164)
		return io
	}
	register(&Workload{
		Name:      "164.gzip",
		Desc:      "Compression",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(1) },
		EvalIO:    func() *interp.StdIO { return mkIO(2) },
		CostScale: 220,
		Paper: PaperStats{
			ExecTimeSec: 15.3, CoveragePct: 98.90, Invocations: 1,
			TrafficMB: 151.5, FptrUses: 9, TargetName: "spec_compress",
			StarredSlow: true,
		},
	})
}

// 401.bzip2 — compression with a block-sorting flavour: move-to-front over
// blocks plus strategy dispatch through a function-pointer table
// (Table 4: 24 fptr uses, 134.3 MB traffic, also network-bound).
func init() {
	const (
		inSize  = 1472 * kb
		outSize = 512 * kb
		blkSize = 4096
	)
	build := func() *ir.Module {
		mod := ir.NewModule("401.bzip2")
		b := ir.NewBuilder(mod)
		strat, stratSig := funcTable(b, "bz_strategy", 8)

		compress := b.NewFunc("spec_compress", ir.I64,
			ir.P("in", ir.Ptr(ir.I8)), ir.P("out", ir.Ptr(ir.I8)), ir.P("n", ir.I32), ir.P("rounds", ir.I32))
		{
			f := b.F
			digest := b.Alloca(ir.I64)
			b.Store(digest, ir.Int64(0x9E3779B9))
			b.For("r", ir.Int(0), f.Params[3], ir.Int(1), func(r ir.Value) {
				b.For("blk", ir.Int(0), b.Div(f.Params[2], ir.Int(blkSize)), ir.Int(1), func(blk ir.Value) {
					base := b.Mul(blk, ir.Int(blkSize))
					// Sample the block at a coarse stride (models the
					// block-sort pass without per-byte interpretation).
					acc := b.Alloca(ir.I64)
					b.Store(acc, ir.Int64(0))
					b.For("mtf", ir.Int(0), ir.Int(blkSize/64), ir.Int(1), func(i ir.Value) {
						byt := b.Load(b.Index(f.Params[0], b.Add(base, b.Mul(i, ir.Int(64)))))
						b.Store(acc, b.Add(b.Shl(b.Load(acc), ir.Int64(1)),
							b.Convert(ir.ConvZExt, byt, ir.I64)))
					})
					fp := b.Load(b.Index(strat, b.Convert(ir.ConvTrunc, b.And(b.Load(acc), ir.Int64(7)), ir.I32)))
					enc := b.CallPtr(fp, stratSig, b.Load(acc))
					b.Store(digest, b.Xor(b.Mul(b.Load(digest), ir.Int64(1099511627)), enc))
					dst := b.Index(f.Params[1], b.Rem(b.Mul(blk, ir.Int(97)), ir.Int(int64(outSize))))
					b.Store(dst, b.Convert(ir.ConvTrunc, enc, ir.I8))
				})
			})
			b.CallExtern(ir.ExternPrintf, b.Str("bzip2 digest %d\n"), b.Load(digest))
			b.Ret(b.Load(digest))
		}

		b.NewFunc("main", ir.I32)
		rounds := scanRounds(b)
		in := emitReadFile(b, "input.program", inSize)
		out := b.CallExtern(ir.ExternMalloc, ir.Int(outSize))
		// bzip2 dirties its whole output region up front (workspace init).
		b.CallExtern(ir.ExternMemset, out, ir.Int(0), ir.Int(outSize))
		d := b.Call(compress, b.Convert(ir.ConvBitcast, in, ir.Ptr(ir.I8)),
			b.Convert(ir.ConvBitcast, out, ir.Ptr(ir.I8)), ir.Int(inSize), rounds)
		b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), d)
		b.Ret(ir.Int(0))
		b.Finish()
		return mod
	}
	mkIO := func(rounds int64) *interp.StdIO {
		io := interp.NewStdIO([]int64{rounds})
		io.MaxBuffered = 1 << 20
		io.SyntheticFile("input.program", inSize, 0x401)
		return io
	}
	register(&Workload{
		Name:      "401.bzip2",
		Desc:      "Compression",
		Build:     build,
		ProfileIO: func() *interp.StdIO { return mkIO(3) },
		EvalIO:    func() *interp.StdIO { return mkIO(3) },
		CostScale: 3480,
		Paper: PaperStats{
			ExecTimeSec: 27.0, CoveragePct: 98.79, Invocations: 1,
			TrafficMB: 134.3, FptrUses: 24, TargetName: "spec_compress",
		},
	})
}
