package ir

import "fmt"

// Verify performs structural sanity checks on a module: every reachable
// block must end in exactly one terminator, operands must be typed
// consistently, and calls must match their callee signatures. It returns
// the first problem found.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("module %s: %w", m.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("func %s: no blocks", f.Nam)
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("func %s: block %s is empty", f.Nam, b.Nam)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if IsTerminator(in) != isLast {
				return fmt.Errorf("func %s: block %s: terminator misplaced at instruction %d", f.Nam, b.Nam, i)
			}
			if err := verifyInstr(f, in); err != nil {
				return fmt.Errorf("func %s: block %s: %w", f.Nam, b.Nam, err)
			}
		}
	}
	return nil
}

func verifyInstr(f *Func, in Instr) error {
	switch in := in.(type) {
	case *Bin:
		if !in.X.Type().Equal(in.Y.Type()) {
			return fmt.Errorf("bin %s: operand types differ: %s vs %s", in.Op, in.X.Type(), in.Y.Type())
		}
		if !IsInt(in.X.Type()) && !IsFloat(in.X.Type()) {
			return fmt.Errorf("bin %s: non-arithmetic operand type %s", in.Op, in.X.Type())
		}
		if IsFloat(in.X.Type()) {
			switch in.Op {
			case And, Or, Xor, Shl, Shr, Rem:
				return fmt.Errorf("bin %s: bitwise op on float", in.Op)
			}
		}
	case *Cmp:
		if !in.X.Type().Equal(in.Y.Type()) {
			return fmt.Errorf("cmp %s: operand types differ: %s vs %s", in.Pred, in.X.Type(), in.Y.Type())
		}
	case *Load:
		pt, ok := in.Ptr.Type().(*PointerType)
		if !ok {
			return fmt.Errorf("load: pointer operand has type %s", in.Ptr.Type())
		}
		if !pt.Elem.Equal(in.Elem) {
			return fmt.Errorf("load: element type %s does not match pointer %s", in.Elem, pt)
		}
		if err := scalarOnly(in.Elem); err != nil {
			return fmt.Errorf("load: %w", err)
		}
	case *Store:
		pt, ok := in.Ptr.Type().(*PointerType)
		if !ok {
			return fmt.Errorf("store: pointer operand has type %s", in.Ptr.Type())
		}
		if !pt.Elem.Equal(in.Val.Type()) {
			return fmt.Errorf("store: value type %s does not match pointer %s", in.Val.Type(), pt)
		}
		if err := scalarOnly(in.Val.Type()); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	case *FieldAddr:
		pt, ok := in.Ptr.Type().(*PointerType)
		if !ok {
			return fmt.Errorf("field: operand has type %s", in.Ptr.Type())
		}
		st, ok := pt.Elem.(*StructType)
		if !ok {
			return fmt.Errorf("field: operand points to non-struct %s", pt.Elem)
		}
		if in.Field < 0 || in.Field >= len(st.Fields) {
			return fmt.Errorf("field: index %d out of range for %s", in.Field, st)
		}
	case *IndexAddr:
		if _, ok := in.Ptr.Type().(*PointerType); !ok {
			return fmt.Errorf("index: operand has type %s", in.Ptr.Type())
		}
		if !IsInt(in.Index.Type()) {
			return fmt.Errorf("index: index has non-integer type %s", in.Index.Type())
		}
	case *Call:
		if in.Callee.Variadic {
			if len(in.Args) < len(in.Callee.Sig.Params) {
				return fmt.Errorf("call @%s: %d args for at least %d params", in.Callee.Nam, len(in.Args), len(in.Callee.Sig.Params))
			}
			break
		}
		if len(in.Args) != len(in.Callee.Sig.Params) {
			return fmt.Errorf("call @%s: %d args for %d params", in.Callee.Nam, len(in.Args), len(in.Callee.Sig.Params))
		}
		for i, a := range in.Args {
			if !a.Type().Equal(in.Callee.Sig.Params[i]) {
				return fmt.Errorf("call @%s: arg %d has type %s, want %s", in.Callee.Nam, i, a.Type(), in.Callee.Sig.Params[i])
			}
		}
	case *CallInd:
		if !IsPointer(in.Fn.Type()) {
			return fmt.Errorf("callind: callee has non-pointer type %s", in.Fn.Type())
		}
		if len(in.Args) != len(in.Sig.Params) {
			return fmt.Errorf("callind: %d args for %d params", len(in.Args), len(in.Sig.Params))
		}
	case *CondBr:
		if !in.Cond.Type().Equal(I1) {
			return fmt.Errorf("condbr: condition has type %s, want i1", in.Cond.Type())
		}
		if in.Then == nil || in.Else == nil {
			return fmt.Errorf("condbr: nil successor")
		}
	case *Br:
		if in.Dst == nil {
			return fmt.Errorf("br: nil destination")
		}
	case *Ret:
		_, isVoid := f.Sig.Ret.(*VoidType)
		if isVoid && in.Val != nil {
			return fmt.Errorf("ret: value returned from void function")
		}
		if !isVoid {
			if in.Val == nil {
				return fmt.Errorf("ret: missing value for %s function", f.Sig.Ret)
			}
			if !in.Val.Type().Equal(f.Sig.Ret) {
				return fmt.Errorf("ret: value type %s, want %s", in.Val.Type(), f.Sig.Ret)
			}
		}
	}
	return nil
}

func scalarOnly(t Type) error {
	switch t.(type) {
	case *IntType, *FloatType, *PointerType:
		return nil
	}
	return fmt.Errorf("aggregate type %s must be accessed elementwise (use memcpy)", t)
}
