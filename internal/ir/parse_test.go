package ir

import (
	"strings"
	"testing"
)

// roundtrip parses the module's printed form and checks the reparse prints
// identically.
func roundtrip(t *testing.T, m *Module) *Module {
	t.Helper()
	text := m.String()
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n--- input ---\n%s", err, text)
	}
	if got.String() != text {
		t.Fatalf("roundtrip differs:\n--- original ---\n%s\n--- reparsed ---\n%s", text, got.String())
	}
	return got
}

func TestParseRoundTripSum(t *testing.T) {
	m := NewModule("sum")
	buildSumFunc(m)
	roundtrip(t, m)
}

func TestParseRoundTripStructsAndGlobals(t *testing.T) {
	m := NewModule("structs")
	move := Struct("Move",
		StructField{Name: "from", Type: I8},
		StructField{Name: "to", Type: I8},
		StructField{Name: "score", Type: F64},
	)
	b := NewBuilder(m)
	sig := Signature(F64, Ptr(move))
	ev := b.NewFunc("eval", F64, P("p", Ptr(move)))
	b.Ret(b.Load(b.Field(ev.Params[0], 2)))
	b.GlobalVar("evals", Array(Ptr(sig), 2), ev, ev)
	b.GlobalVar("depth", I32, Int(7))
	g := b.GlobalVar("uvaG", I64)
	g.Home, g.UVAAddr = HomeUVA, 0x1000_0040

	b.NewFunc("main", I32)
	mv := b.Alloca(move)
	b.Store(b.Field(mv, 2), Float(1.5))
	fp := b.Load(b.Index(m.Global("evals"), Int(1)))
	s := b.CallPtr(fp, sig, mv)
	b.CallExtern(ExternPrintf, b.Str("%f\n"), s)
	b.Ret(Int(0))
	b.Finish()

	got := roundtrip(t, m)
	st := got.Global("uvaG")
	if st.Home != HomeUVA || st.UVAAddr != 0x1000_0040 {
		t.Error("UVA home lost in roundtrip")
	}
	if len(got.NamedStructs()) != 1 || got.NamedStructs()[0].Name != "Move" {
		t.Error("struct definition lost")
	}
}

func TestParseRoundTripControlFlowAndConversions(t *testing.T) {
	m := NewModule("cf")
	b := NewBuilder(m)
	f := b.NewFunc("mix", F64, P("n", I32), P("x", F64))
	acc := b.Alloca(F64)
	b.Store(acc, f.Params[1])
	b.For("loop", Int(0), f.Params[0], Int(1), func(i Value) {
		fv := b.Convert(ConvIntToFP, i, F64)
		b.If(b.Cmp(GT, fv, Float(2)), func() {
			b.Store(acc, b.Add(b.Load(acc), fv))
		}, func() {
			b.Store(acc, b.Mul(b.Load(acc), Float(1.25)))
		})
	})
	b.Ret(b.Load(acc))
	b.NewFunc("main", I32)
	r := b.Call(f, Int(5), Float(0.5))
	b.Ret(b.Convert(ConvFPToInt, r, I32))
	b.Finish()
	roundtrip(t, m)
}

func TestParsePreservesTaskAndStack(t *testing.T) {
	m := NewModule("attrs")
	m.StackBase = 0x5FFF_F000
	m.Unified = true
	b := NewBuilder(m)
	hot := b.NewFunc("hot", I32, P("x", I32))
	hot.TaskID = 3
	b.Ret(b.F.Params[0])
	b.Finish()
	got := roundtrip(t, m)
	if got.StackBase != 0x5FFF_F000 || !got.Unified {
		t.Error("module attributes lost")
	}
	if got.Func("hot").TaskID != 3 {
		t.Error("task id lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", // no module header
		"module x (stack 0x10)\nfunc @f() i32 {\nentry:\n  ret %undefined\n}\n",
		"module x (stack 0x10)\nglobal @g %NoSuchStruct\n",
		"module x (stack 0x10)\nfunc @f() i32 {\nentry:\n  frobnicate\n}\n",
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d: expected a parse error", i)
		}
	}
}

func TestParseDeclareRestoresExternKinds(t *testing.T) {
	m := NewModule("ext")
	b := NewBuilder(m)
	b.NewFunc("main", I32)
	p := b.CallExtern(ExternUMalloc, Int(64))
	b.CallExtern(ExternMemset, p, Int(0), Int(64))
	b.Ret(Int(0))
	b.Finish()
	got := roundtrip(t, m)
	if got.Func("u_malloc").Extern != ExternUMalloc {
		t.Error("u_malloc extern kind lost")
	}
	if got.Func("memset").Extern != ExternMemset {
		t.Error("memset extern kind lost")
	}
}

func TestParsedModuleRunsIdentically(t *testing.T) {
	// The real proof: a reparsed module must compute the same value. (The
	// interp package cannot be imported here; structural equality of the
	// printed form plus Verify is the package-local check, and
	// interp/parseexec_test.go covers execution.)
	m := NewModule("exec")
	buildSumFunc(m)
	got := roundtrip(t, m)
	if err := Verify(got); err != nil {
		t.Fatal(err)
	}
	if got.Func("sum").NumSlots == 0 {
		t.Error("reparsed functions not renumbered")
	}
	if !strings.Contains(got.String(), "for_i.cond") {
		t.Error("block labels lost")
	}
}

func TestParseRejectsDanglingLabel(t *testing.T) {
	src := "module x (stack 0x10)\nfunc @f() i32 {\nentry:\n  br nowhere\n}\n"
	if _, err := Parse(src); err == nil {
		t.Error("branch to undefined label accepted")
	}
}

func TestParseRejectsDuplicateLabelsAndFuncs(t *testing.T) {
	dupBlock := "module x (stack 0x10)\nfunc @f() i32 {\nentry:\n  br entry\nentry:\n  ret i32 0\n}\n"
	if _, err := Parse(dupBlock); err == nil {
		t.Error("duplicate block label accepted")
	}
	dupFunc := "module x (stack 0x10)\nfunc @f() i32 {\nentry:\n  ret i32 0\n}\nfunc @f() i32 {\nentry:\n  ret i32 0\n}\n"
	if _, err := Parse(dupFunc); err == nil {
		t.Error("duplicate function accepted")
	}
}
