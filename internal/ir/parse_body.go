package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// bodyState parses one function body.
type bodyState struct {
	p      *parser
	fn     *Func
	cur    *Block
	blocks map[string]*Block
	vals   map[string]Value

	// pending terminator fixups: block labels resolve at finish.
	fixups []func() error
}

func (b *bodyState) block(label string) *Block {
	if blk, ok := b.blocks[label]; ok {
		return blk
	}
	blk := &Block{Nam: label, Parent: b.fn}
	b.blocks[label] = blk
	return blk
}

func (b *bodyState) enterBlock(label string) error {
	if label == "" {
		return fmt.Errorf("empty block label")
	}
	blk := b.block(label)
	for _, existing := range b.fn.Blocks {
		if existing == blk {
			return fmt.Errorf("duplicate block label %q", label)
		}
	}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	b.cur = blk
	return nil
}

func (b *bodyState) finish() error {
	for _, fx := range b.fixups {
		if err := fx(); err != nil {
			return err
		}
	}
	// Every branch target must name a block that was actually defined.
	defined := make(map[*Block]bool, len(b.fn.Blocks))
	for _, blk := range b.fn.Blocks {
		defined[blk] = true
	}
	for _, blk := range b.fn.Blocks {
		if t := blk.Terminator(); t != nil {
			for _, s := range Successors(t) {
				if !defined[s] {
					return fmt.Errorf("branch to undefined label %q in @%s", s.Nam, b.fn.Nam)
				}
			}
		}
	}
	return nil
}

// parseInstr parses one instruction line inside the current block.
func (b *bodyState) parseInstr(line string) error {
	if b.cur == nil {
		return fmt.Errorf("instruction outside a block: %q", line)
	}
	var lhs string
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, " = ")
		if eq < 0 {
			return fmt.Errorf("malformed assignment %q", line)
		}
		lhs = line[:eq]
		line = strings.TrimSpace(line[eq+3:])
	}
	sp := strings.IndexByte(line, ' ')
	op := line
	rest := ""
	if sp >= 0 {
		op = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}

	in, err := b.parseOp(op, rest)
	if err != nil {
		return fmt.Errorf("%q: %w", line, err)
	}
	if in != nil {
		b.cur.Append(in)
		if lhs != "" {
			b.vals[lhs] = in
		}
	}
	return nil
}

func (b *bodyState) parseOp(op, rest string) (Instr, error) {
	switch op {
	case "alloca":
		t, err := b.p.parseType(rest)
		if err != nil {
			return nil, err
		}
		return &Alloca{Elem: t}, nil

	case "load":
		// load T PTR [lay] — the pointer operand is always a single token
		// (%vN, %param, @global, null, uva(...)), so split at the last
		// space; the type may itself contain spaces (func types).
		rest = stripLay(rest)
		sp := strings.LastIndexByte(rest, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("malformed load")
		}
		t, err := b.p.parseType(rest[:sp])
		if err != nil {
			return nil, err
		}
		ptr, err := b.p.parseOperand(rest[sp+1:], b.vals)
		if err != nil {
			return nil, err
		}
		return &Load{Ptr: ptr, Elem: t}, nil

	case "store":
		// store VAL -> PTR [lay]
		rest = stripLay(rest)
		arrow := strings.Index(rest, " -> ")
		if arrow < 0 {
			return nil, fmt.Errorf("malformed store")
		}
		val, err := b.p.parseOperand(rest[:arrow], b.vals)
		if err != nil {
			return nil, err
		}
		ptr, err := b.p.parseOperand(rest[arrow+4:], b.vals)
		if err != nil {
			return nil, err
		}
		return &Store{Ptr: ptr, Val: val}, nil

	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr":
		xs := splitTop(rest, ',')
		if len(xs) != 2 {
			return nil, fmt.Errorf("binary op needs 2 operands")
		}
		x, err := b.p.parseOperand(xs[0], b.vals)
		if err != nil {
			return nil, err
		}
		y, err := b.p.parseOperand(xs[1], b.vals)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: binOpByName(op), X: x, Y: y}, nil

	case "cmp":
		// cmp PRED X, Y
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("malformed cmp")
		}
		pred, err := cmpPredByName(rest[:sp])
		if err != nil {
			return nil, err
		}
		xs := splitTop(rest[sp+1:], ',')
		if len(xs) != 2 {
			return nil, fmt.Errorf("cmp needs 2 operands")
		}
		x, err := b.p.parseOperand(xs[0], b.vals)
		if err != nil {
			return nil, err
		}
		y, err := b.p.parseOperand(xs[1], b.vals)
		if err != nil {
			return nil, err
		}
		return &Cmp{Pred: pred, X: x, Y: y}, nil

	case "field":
		// field PTR, N (+OFF)
		rest = stripParenSuffix(rest)
		xs := splitTop(rest, ',')
		if len(xs) != 2 {
			return nil, fmt.Errorf("malformed field")
		}
		ptr, err := b.p.parseOperand(xs[0], b.vals)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(strings.TrimSpace(xs[1]))
		if err != nil {
			return nil, err
		}
		return &FieldAddr{Ptr: ptr, Field: n}, nil

	case "index":
		// index PTR, IDX (*STRIDE)
		rest = stripParenSuffix(rest)
		xs := splitTop(rest, ',')
		if len(xs) != 2 {
			return nil, fmt.Errorf("malformed index")
		}
		ptr, err := b.p.parseOperand(xs[0], b.vals)
		if err != nil {
			return nil, err
		}
		idx, err := b.p.parseOperand(xs[1], b.vals)
		if err != nil {
			return nil, err
		}
		return &IndexAddr{Ptr: ptr, Index: idx}, nil

	case "call":
		// call @f(ARGS)
		if !strings.HasPrefix(rest, "@") {
			return nil, fmt.Errorf("malformed call")
		}
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return nil, fmt.Errorf("call missing arguments")
		}
		callee, ok := b.p.funcs[rest[1:open]]
		if !ok {
			return nil, fmt.Errorf("call to unknown function %s", rest[1:open])
		}
		args, err := b.parseArgs(rest[open:])
		if err != nil {
			return nil, err
		}
		return &Call{Callee: callee, Args: args}, nil

	case "callind":
		// callind [mapped] FN(ARGS)
		mapped := false
		if strings.HasPrefix(rest, "mapped ") {
			mapped = true
			rest = strings.TrimPrefix(rest, "mapped ")
		}
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return nil, fmt.Errorf("callind missing arguments")
		}
		fn, err := b.p.parseOperand(rest[:open], b.vals)
		if err != nil {
			return nil, err
		}
		args, err := b.parseArgs(rest[open:])
		if err != nil {
			return nil, err
		}
		pt, ok := fn.Type().(*PointerType)
		if !ok {
			return nil, fmt.Errorf("callind through non-pointer")
		}
		sig, ok := pt.Elem.(*FuncType)
		if !ok {
			// A pointer loaded as a plain value: synthesize the signature
			// from the argument types (return defaults to i64).
			sig = &FuncType{Ret: I64}
			for _, a := range args {
				sig.Params = append(sig.Params, a.Type())
			}
		}
		return &CallInd{Fn: fn, Sig: sig, Args: args, Mapped: mapped}, nil

	case "trunc", "zext", "sext", "itof", "ftoi", "fpext", "fptrunc", "bitcast":
		// KIND V to T
		to := strings.LastIndex(rest, " to ")
		if to < 0 {
			return nil, fmt.Errorf("conversion missing 'to'")
		}
		v, err := b.p.parseOperand(rest[:to], b.vals)
		if err != nil {
			return nil, err
		}
		t, err := b.p.parseType(rest[to+4:])
		if err != nil {
			return nil, err
		}
		return &Convert{Kind: convKindByName(op), Val: v, To: t}, nil

	case "funcaddr":
		if !strings.HasPrefix(rest, "@") {
			return nil, fmt.Errorf("malformed funcaddr")
		}
		callee, ok := b.p.funcs[rest[1:]]
		if !ok {
			return nil, fmt.Errorf("funcaddr of unknown function %s", rest[1:])
		}
		return &FuncAddr{Callee: callee}, nil

	case "br":
		if rest == "" {
			return nil, fmt.Errorf("br without a destination")
		}
		return &Br{Dst: b.block(rest)}, nil

	case "condbr":
		xs := splitTop(rest, ',')
		if len(xs) != 3 {
			return nil, fmt.Errorf("condbr needs cond and two labels")
		}
		c, err := b.p.parseOperand(xs[0], b.vals)
		if err != nil {
			return nil, err
		}
		then, els := strings.TrimSpace(xs[1]), strings.TrimSpace(xs[2])
		if then == "" || els == "" {
			return nil, fmt.Errorf("condbr with empty destination")
		}
		return &CondBr{
			Cond: c,
			Then: b.block(then),
			Else: b.block(els),
		}, nil

	case "ret":
		if strings.TrimSpace(rest) == "" {
			return &Ret{}, nil
		}
		v, err := b.p.parseOperand(rest, b.vals)
		if err != nil {
			return nil, err
		}
		return &Ret{Val: v}, nil
	}
	return nil, fmt.Errorf("unknown instruction %q", op)
}

func (b *bodyState) parseArgs(paren string) ([]Value, error) {
	close := matchParen(paren, 0)
	if close < 0 {
		return nil, fmt.Errorf("unbalanced argument list")
	}
	body := paren[1:close]
	if strings.TrimSpace(body) == "" {
		return nil, nil
	}
	var out []Value
	for _, a := range splitTop(body, ',') {
		v, err := b.p.parseOperand(a, b.vals)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// stripLay removes a trailing access-layout annotation like "[4b swap]".
func stripLay(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, "]") {
		if i := strings.LastIndex(s, " ["); i >= 0 {
			return strings.TrimSpace(s[:i])
		}
	}
	return s
}

// stripParenSuffix removes a trailing "(+8)" / "(*16)" lowering annotation.
func stripParenSuffix(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, ")") {
		if i := strings.LastIndex(s, " ("); i >= 0 {
			return strings.TrimSpace(s[:i])
		}
	}
	return s
}

func binOpByName(s string) BinOp {
	switch s {
	case "add":
		return Add
	case "sub":
		return Sub
	case "mul":
		return Mul
	case "div":
		return Div
	case "rem":
		return Rem
	case "and":
		return And
	case "or":
		return Or
	case "xor":
		return Xor
	case "shl":
		return Shl
	}
	return Shr
}

func cmpPredByName(s string) (CmpPred, error) {
	switch s {
	case "eq":
		return EQ, nil
	case "ne":
		return NE, nil
	case "lt":
		return LT, nil
	case "le":
		return LE, nil
	case "gt":
		return GT, nil
	case "ge":
		return GE, nil
	}
	return EQ, fmt.Errorf("unknown predicate %q", s)
}

func convKindByName(s string) ConvKind {
	switch s {
	case "trunc":
		return ConvTrunc
	case "zext":
		return ConvZExt
	case "sext":
		return ConvSExt
	case "itof":
		return ConvIntToFP
	case "ftoi":
		return ConvFPToInt
	case "fpext":
		return ConvFPExt
	case "fptrunc":
		return ConvFPTrunc
	}
	return ConvBitcast
}
