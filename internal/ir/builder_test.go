package ir

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// buildSumFunc builds: func sum(n i32) i32 { s := 0; for i := 0; i < n; i++ { s += i }; return s }
func buildSumFunc(m *Module) *Func {
	b := NewBuilder(m)
	f := b.NewFunc("sum", I32, P("n", I32))
	s := b.Alloca(I32)
	b.Store(s, Int(0))
	b.For("for_i", Int(0), f.Params[0], Int(1), func(i Value) {
		b.Store(s, b.Add(b.Load(s), i))
	})
	b.Ret(b.Load(s))
	b.Finish()
	return f
}

func TestBuilderProducesVerifiableModule(t *testing.T) {
	m := NewModule("test")
	buildSumFunc(m)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBuilderForLoopShape(t *testing.T) {
	m := NewModule("test")
	f := buildSumFunc(m)
	// entry, cond, body, latch, exit.
	if len(f.Blocks) != 5 {
		t.Fatalf("got %d blocks, want 5", len(f.Blocks))
	}
	var names []string
	for _, b := range f.Blocks {
		names = append(names, b.Nam)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"entry", "for_i.cond", "for_i.body", "for_i.latch", "for_i.exit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing block %q in %q", want, joined)
		}
	}
}

func TestBuilderIfBothArms(t *testing.T) {
	m := NewModule("test")
	b := NewBuilder(m)
	f := b.NewFunc("abs", I32, P("x", I32))
	out := b.Alloca(I32)
	b.If(b.Cmp(LT, f.Params[0], Int(0)),
		func() { b.Store(out, b.Sub(Int(0), f.Params[0])) },
		func() { b.Store(out, f.Params[0]) })
	b.Ret(b.Load(out))
	b.Finish()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBuilderStrInterned(t *testing.T) {
	m := NewModule("test")
	b := NewBuilder(m)
	b.NewFunc("main", I32)
	b.Str("hello")
	b.Str("hello")
	b.Str("world")
	b.Ret(Int(0))
	b.Finish()
	if len(m.Globals) != 2 {
		t.Errorf("got %d string globals, want 2 (interned)", len(m.Globals))
	}
}

func TestBuilderWhile(t *testing.T) {
	m := NewModule("test")
	b := NewBuilder(m)
	b.NewFunc("count", I32, P("n", I32))
	n := b.Alloca(I32)
	b.Store(n, b.F.Params[0])
	c := b.Alloca(I32)
	b.Store(c, Int(0))
	b.While("w", func() Value {
		return b.Cmp(GT, b.Load(n), Int(0))
	}, func() {
		b.Store(n, b.Sub(b.Load(n), Int(1)))
		b.Store(c, b.Add(b.Load(c), Int(1)))
	})
	b.Ret(b.Load(c))
	b.Finish()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRenumberAssignsSlots(t *testing.T) {
	m := NewModule("test")
	f := buildSumFunc(m)
	if f.NumSlots == 0 {
		t.Fatal("NumSlots not assigned")
	}
	if f.Params[0].Slot != 0 {
		t.Errorf("first param slot = %d, want 0", f.Params[0].Slot)
	}
	seen := map[int]bool{0: true}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if _, isVoid := in.Type().(*VoidType); isVoid {
				continue
			}
			slot := in.base().id
			if slot < 0 || slot >= f.NumSlots {
				t.Errorf("slot %d out of range [0,%d)", slot, f.NumSlots)
			}
			if seen[slot] {
				t.Errorf("slot %d assigned twice", slot)
			}
			seen[slot] = true
		}
	}
}

func TestLowerResolvesLayouts(t *testing.T) {
	m := NewModule("test")
	move := Struct("Move",
		StructField{Name: "from", Type: I8},
		StructField{Name: "to", Type: I8},
		StructField{Name: "score", Type: F64},
	)
	b := NewBuilder(m)
	b.NewFunc("touch", F64, P("mv", Ptr(move)))
	fp := b.Field(b.F.Params[0], 2)
	b.Ret(b.Load(fp))
	b.Finish()

	// Native lowering for IA32 bakes offset 4; realigned (standard=ARM32)
	// bakes offset 8 on the same instruction.
	Lower(m, arch.IA32(), arch.IA32())
	fa := m.Func("touch").Entry().Instrs[0].(*FieldAddr)
	if fa.Offset != 4 {
		t.Errorf("IA32-native offset = %d, want 4", fa.Offset)
	}
	Lower(m, arch.IA32(), arch.ARM32())
	if fa.Offset != 8 {
		t.Errorf("realigned offset = %d, want 8", fa.Offset)
	}
}

func TestLowerSetsSwapAndWiden(t *testing.T) {
	m := NewModule("test")
	b := NewBuilder(m)
	b.NewFunc("deref", I32, P("p", Ptr(Ptr(I32))))
	inner := b.Load(b.F.Params[0]) // loads a pointer
	b.Ret(b.Load(inner))
	b.Finish()

	// Big-endian 32-bit server against a little-endian 32-bit standard:
	// swap set, widen clear.
	Lower(m, arch.POWER32BE(), arch.ARM32())
	ld := m.Func("deref").Entry().Instrs[0].(*Load)
	if !ld.Lay.Swap || ld.Lay.Widen {
		t.Errorf("POWER32BE vs ARM32: Swap=%v Widen=%v, want true,false", ld.Lay.Swap, ld.Lay.Widen)
	}
	// 64-bit little-endian server: widen set (4-byte unified pointers),
	// swap clear.
	Lower(m, arch.X8664(), arch.ARM32())
	if ld.Lay.Swap || !ld.Lay.Widen {
		t.Errorf("X8664 vs ARM32: Swap=%v Widen=%v, want false,true", ld.Lay.Swap, ld.Lay.Widen)
	}
	if ld.Lay.Size != 4 {
		t.Errorf("unified pointer access size = %d, want 4", ld.Lay.Size)
	}
}

func TestPrinterOutput(t *testing.T) {
	m := NewModule("test")
	buildSumFunc(m)
	s := m.String()
	for _, want := range []string{"module test", "func @sum", "for_i.cond", "condbr", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed module missing %q:\n%s", want, s)
		}
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	m := NewModule("orig")
	buildSumFunc(m)
	b := NewBuilder(m)
	g := b.GlobalVar("tbl", Array(I32, 4), Int(1), Int(2), Int(3), Int(4))
	b.NewFunc("main", I32)
	p := b.Index(g, Int(2))
	b.Store(p, Int(9))
	b.Ret(b.Call(m.Func("sum"), Int(10)))
	b.Finish()

	c := m.Clone("copy")
	if err := Verify(c); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if c.Func("sum") == m.Func("sum") {
		t.Error("clone shares function objects with original")
	}
	if c.Global("tbl") == m.Global("tbl") {
		t.Error("clone shares global objects with original")
	}
	// Printed forms must match (same structure).
	orig, cl := m.String(), c.String()
	orig = strings.Replace(orig, "module orig", "module copy", 1)
	if orig != cl {
		t.Errorf("clone prints differently:\n-- original --\n%s\n-- clone --\n%s", orig, cl)
	}
	// Mutating the clone must not affect the original.
	c.Func("sum").Nam = "renamed"
	if m.Func("sum") == nil {
		t.Error("mutating clone affected original")
	}
}

func TestVerifyCatchesTypeErrors(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.NewFunc("f", I32)
	blk := b.B
	blk.Append(&Bin{Op: Add, X: Int(1), Y: Int64(2)}) // mismatched widths
	blk.Append(&Ret{Val: Int(0)})
	if err := Verify(m); err == nil {
		t.Error("Verify accepted mismatched bin operand types")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	b := NewBuilder(m)
	b.NewFunc("f", Void)
	b.Alloca(I32) // no terminator
	if err := Verify(m); err == nil {
		t.Error("Verify accepted unterminated block")
	}
}

func TestModuleExternCanonical(t *testing.T) {
	m := NewModule("test")
	p1 := m.Extern(ExternPrintf)
	p2 := m.Extern(ExternPrintf)
	if p1 != p2 {
		t.Error("Extern not canonicalized")
	}
	if !p1.IsExtern() || p1.Nam != "printf" {
		t.Errorf("extern printf malformed: %v %q", p1.IsExtern(), p1.Nam)
	}
}

func TestExternClassification(t *testing.T) {
	if !ExternAsm.IsMachineSpecific() || !ExternSyscall.IsMachineSpecific() || !ExternUnknown.IsMachineSpecific() {
		t.Error("machine-specific externs misclassified")
	}
	if ExternPrintf.IsMachineSpecific() {
		t.Error("printf should not be machine-specific (it is remotable I/O)")
	}
	if rv, ok := ExternPrintf.RemoteVariant(); !ok || rv != ExternRemotePrintf {
		t.Error("printf remote variant wrong")
	}
	if _, ok := ExternScanf.RemoteVariant(); ok {
		t.Error("scanf must have no remote variant (interactive input stays mobile)")
	}
	if !ExternRemoteFileRead.IsRemoteInput() || ExternRemotePrintf.IsRemoteInput() {
		t.Error("remote input classification wrong")
	}
}

func TestReplaceOperand(t *testing.T) {
	m := NewModule("test")
	b := NewBuilder(m)
	f := b.NewFunc("f", I32, P("x", I32))
	v := b.Add(f.Params[0], Int(1))
	b.Ret(v)
	b.Finish()
	add := f.Entry().Instrs[0].(*Bin)
	add.ReplaceOperand(f.Params[0], Int(41))
	if ci, ok := add.X.(*ConstInt); !ok || ci.V != 41 {
		t.Errorf("ReplaceOperand failed: X = %v", add.X)
	}
}
