package ir

import "fmt"

// Value is anything an instruction can use as an operand: constants,
// function parameters, globals, functions, and the results of other
// instructions.
type Value interface {
	Type() Type
	// Ident returns the printed identity of the value ("%3", "@board", "7").
	Ident() string
}

// ConstInt is an integer constant of a specific width.
type ConstInt struct {
	Typ *IntType
	V   int64
}

// ConstFloat is a floating point constant.
type ConstFloat struct {
	Typ *FloatType
	V   float64
}

// ConstNull is the null pointer of a specific pointer type.
type ConstNull struct{ Typ *PointerType }

// ConstUVA is a compile-time-known address in the unified virtual address
// space. The memory unification pass (Section 3.2) assigns referenced
// globals fixed UVA homes; their address-of uses become ConstUVA values so
// both binaries agree on where the data lives.
type ConstUVA struct {
	Typ  *PointerType
	Addr uint32
	Note string // e.g. the reallocated global's name, for printing
}

func (c *ConstInt) Type() Type   { return c.Typ }
func (c *ConstFloat) Type() Type { return c.Typ }
func (c *ConstNull) Type() Type  { return c.Typ }
func (c *ConstUVA) Type() Type   { return c.Typ }

func (c *ConstInt) Ident() string   { return fmt.Sprintf("%s %d", c.Typ, c.V) }
func (c *ConstFloat) Ident() string { return fmt.Sprintf("%s %g", c.Typ, c.V) }
func (c *ConstNull) Ident() string  { return "null" }
func (c *ConstUVA) Ident() string {
	if c.Note != "" {
		return fmt.Sprintf("uva(0x%x /*%s*/)", c.Addr, c.Note)
	}
	return fmt.Sprintf("uva(0x%x)", c.Addr)
}

// Int returns an i32 constant, the most common case.
func Int(v int64) *ConstInt { return &ConstInt{Typ: I32, V: v} }

// Int64 returns an i64 constant.
func Int64(v int64) *ConstInt { return &ConstInt{Typ: I64, V: v} }

// Int8 returns an i8 constant.
func Int8(v int64) *ConstInt { return &ConstInt{Typ: I8, V: v} }

// Bool returns an i1 constant.
func Bool(v bool) *ConstInt {
	n := int64(0)
	if v {
		n = 1
	}
	return &ConstInt{Typ: I1, V: n}
}

// Float returns an f64 constant.
func Float(v float64) *ConstFloat { return &ConstFloat{Typ: F64, V: v} }

// Null returns the null pointer of type *elem.
func Null(elem Type) *ConstNull { return &ConstNull{Typ: Ptr(elem)} }

// Param is a function parameter. Its runtime slot is assigned by
// Func.Renumber.
type Param struct {
	Nam   string
	Typ   Type
	Index int
	Slot  int
}

func (p *Param) Type() Type    { return p.Typ }
func (p *Param) Ident() string { return "%" + p.Nam }

// GlobalHome says where a global variable lives at run time.
type GlobalHome int

const (
	// HomeMachine places the global in each machine's private globals
	// segment; the two binaries may (and in this simulation, do) choose
	// different addresses for it.
	HomeMachine GlobalHome = iota
	// HomeUVA places the global at a fixed unified-virtual-address home
	// shared by both machines — the result of the paper's referenced
	// global variable reallocation (Section 3.2).
	HomeUVA
)

// Global is a module-level variable. As a Value it denotes the variable's
// address, so its type is a pointer to Elem.
type Global struct {
	Nam  string
	Elem Type
	// Init is the initial value, element by element. Empty means
	// zero-initialized. For scalar globals it has one entry; for arrays,
	// Len entries; strings use InitBytes instead.
	Init      []Value
	InitBytes []byte

	Home GlobalHome
	// UVAAddr is the assigned unified address when Home == HomeUVA.
	UVAAddr uint32
}

func (g *Global) Type() Type    { return Ptr(g.Elem) }
func (g *Global) Ident() string { return "@" + g.Nam }

// ExternKind classifies functions without IR bodies. The function filter
// (Section 3.1) uses this classification: syscalls, assembly, and unknown
// external calls make the surrounding task machine-specific; well-known I/O
// calls can be made remote-executable by the optimizer (Section 3.4).
type ExternKind int

const (
	ExternNone ExternKind = iota // has an IR body

	// Memory management (replaced by unified variants in Section 3.2).
	ExternMalloc
	ExternFree
	ExternUMalloc // u_malloc: allocate on the UVA heap
	ExternUFree   // u_free

	// I/O (candidates for remote I/O, Section 3.4).
	ExternPrintf
	ExternScanf
	ExternFileOpen
	ExternFileRead
	ExternFileClose
	ExternExit

	// Remote I/O variants (inserted by the optimizer; execute on the
	// mobile device via the runtime's remote I/O manager).
	ExternRemotePrintf
	ExternRemoteFileOpen
	ExternRemoteFileRead
	ExternRemoteFileClose

	// Machine-specific markers the function filter rejects.
	ExternAsm     // inline assembly
	ExternSyscall // raw system call
	ExternUnknown // unknown external library call

	// Misc helpers with defined semantics on both machines.
	ExternMemcpy
	ExternMemset

	// Runtime intrinsics inserted by the partitioner (Section 3.3).
	ExternGate       // isProfitable(taskID) -> i1 (dynamic estimation)
	ExternOffload    // requestOffload + data exchange; returns task result
	ExternAccept     // server: acceptOffload() -> task id (0 = shut down)
	ExternArg        // server: fetch i-th argument of the current request
	ExternSendReturn // server: sendReturn(value)
	ExternFptrToM    // s2mFcnMap/m2sFcnMap: translate a function address
)

// String returns the conventional C-level name for the extern kind.
func (k ExternKind) String() string {
	names := map[ExternKind]string{
		ExternMalloc: "malloc", ExternFree: "free",
		ExternUMalloc: "u_malloc", ExternUFree: "u_free",
		ExternPrintf: "printf", ExternScanf: "scanf",
		ExternFileOpen: "fopen", ExternFileRead: "fread", ExternFileClose: "fclose",
		ExternExit:         "exit",
		ExternRemotePrintf: "r_printf", ExternRemoteFileOpen: "r_fopen",
		ExternRemoteFileRead: "r_fread", ExternRemoteFileClose: "r_fclose",
		ExternAsm: "asm", ExternSyscall: "syscall", ExternUnknown: "extern",
		ExternMemcpy: "memcpy", ExternMemset: "memset",
		ExternGate: "no.gate", ExternOffload: "no.offload",
		ExternAccept: "no.accept", ExternArg: "no.arg",
		ExternSendReturn: "no.sendreturn", ExternFptrToM: "no.fcnmap",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("extern(%d)", int(k))
}

// IsMachineSpecific reports whether calling this extern makes the caller a
// machine-specific task in the sense of the paper's function filter.
func (k ExternKind) IsMachineSpecific() bool {
	switch k {
	case ExternAsm, ExternSyscall, ExternUnknown:
		return true
	}
	return false
}

// IsLocalIO reports whether the extern is an I/O operation that runs against
// the mobile device's local environment.
func (k ExternKind) IsLocalIO() bool {
	switch k {
	case ExternPrintf, ExternScanf, ExternFileOpen, ExternFileRead, ExternFileClose:
		return true
	}
	return false
}

// RemoteVariant returns the remote-I/O extern kind that the server-specific
// optimizer substitutes for k, and whether one exists. scanf has no remote
// variant: the paper keeps interactive input mobile-only because it would
// need round-trip communication per item.
func (k ExternKind) RemoteVariant() (ExternKind, bool) {
	switch k {
	case ExternPrintf:
		return ExternRemotePrintf, true
	case ExternFileOpen:
		return ExternRemoteFileOpen, true
	case ExternFileRead:
		return ExternRemoteFileRead, true
	case ExternFileClose:
		return ExternRemoteFileClose, true
	}
	return ExternNone, false
}

// IsRemoteInput reports whether the extern is a remote I/O operation whose
// data flows mobile->server (requires round-trip communication and, per
// Section 5.1, dominates the remote I/O overhead of twolf/gobmk/h264ref).
func (k ExternKind) IsRemoteInput() bool {
	switch k {
	case ExternRemoteFileOpen, ExternRemoteFileRead, ExternRemoteFileClose:
		return true
	}
	return false
}
