package ir

import "fmt"

// Clone returns a deep copy of m named name. The Native Offloader compiler
// partitions one front-end module into two target modules (Figure 1), so it
// clones the unified IR once per target before applying target-specific
// transformations. Constants are shared (they are immutable); functions,
// globals, blocks and instructions are duplicated.
func (m *Module) Clone(name string) *Module {
	c := &Module{
		Name:      name,
		StackBase: m.StackBase,
		Unified:   m.Unified,
		Lowered:   m.Lowered,
		Structs:   m.Structs,
	}

	funcs := make(map[*Func]*Func, len(m.Funcs))
	globals := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := &Global{
			Nam:       g.Nam,
			Elem:      g.Elem,
			InitBytes: append([]byte(nil), g.InitBytes...),
			Home:      g.Home,
			UVAAddr:   g.UVAAddr,
		}
		globals[g] = ng
		c.Globals = append(c.Globals, ng)
	}
	for _, f := range m.Funcs {
		nf := &Func{
			Nam:      f.Nam,
			Sig:      f.Sig,
			Extern:   f.Extern,
			Variadic: f.Variadic,
			TaskID:   f.TaskID,
		}
		funcs[f] = nf
		c.Funcs = append(c.Funcs, nf)
	}

	// Remap global initializers that reference functions or other globals.
	remapConst := func(v Value) Value {
		switch v := v.(type) {
		case *Func:
			return funcs[v]
		case *Global:
			return globals[v]
		default:
			return v
		}
	}
	for i, g := range m.Globals {
		for _, iv := range g.Init {
			c.Globals[i].Init = append(c.Globals[i].Init, remapConst(iv))
		}
	}

	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		cloneFuncBody(f, funcs[f], funcs, globals)
	}
	return c
}

func cloneFuncBody(f, nf *Func, funcs map[*Func]*Func, globals map[*Global]*Global) {
	params := make(map[*Param]*Param, len(f.Params))
	for _, p := range f.Params {
		np := &Param{Nam: p.Nam, Typ: p.Typ, Index: p.Index, Slot: p.Slot}
		params[p] = np
		nf.Params = append(nf.Params, np)
	}
	blocks := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		blocks[b] = nf.NewBlock(b.Nam)
	}
	instrs := make(map[Instr]Instr)

	remap := func(v Value) Value {
		switch v := v.(type) {
		case nil:
			return nil
		case *Func:
			return funcs[v]
		case *Global:
			return globals[v]
		case *Param:
			return params[v]
		case Instr:
			n, ok := instrs[v]
			if !ok {
				panic(fmt.Sprintf("ir: clone: use of instruction %s before definition in %s", v.Ident(), f.Nam))
			}
			return n
		default: // constants
			return v
		}
	}
	remapAll := func(vs []Value) []Value {
		out := make([]Value, len(vs))
		for i, v := range vs {
			out[i] = remap(v)
		}
		return out
	}

	for _, b := range f.Blocks {
		nb := blocks[b]
		for _, in := range b.Instrs {
			var nin Instr
			switch in := in.(type) {
			case *Alloca:
				nin = &Alloca{Elem: in.Elem, SizeBytes: in.SizeBytes}
			case *Load:
				nin = &Load{Ptr: remap(in.Ptr), Elem: in.Elem, Lay: in.Lay}
			case *Store:
				nin = &Store{Ptr: remap(in.Ptr), Val: remap(in.Val), Lay: in.Lay}
			case *Bin:
				nin = &Bin{Op: in.Op, X: remap(in.X), Y: remap(in.Y)}
			case *Cmp:
				nin = &Cmp{Pred: in.Pred, X: remap(in.X), Y: remap(in.Y)}
			case *FieldAddr:
				nin = &FieldAddr{Ptr: remap(in.Ptr), Field: in.Field, Offset: in.Offset}
			case *IndexAddr:
				nin = &IndexAddr{Ptr: remap(in.Ptr), Index: remap(in.Index), Stride: in.Stride}
			case *Call:
				nin = &Call{Callee: funcs[in.Callee], Args: remapAll(in.Args)}
			case *CallInd:
				nin = &CallInd{Fn: remap(in.Fn), Sig: in.Sig, Args: remapAll(in.Args), Mapped: in.Mapped}
			case *Convert:
				nin = &Convert{Kind: in.Kind, Val: remap(in.Val), To: in.To}
			case *FuncAddr:
				nin = &FuncAddr{Callee: funcs[in.Callee]}
			case *Br:
				nin = &Br{Dst: blocks[in.Dst]}
			case *CondBr:
				nin = &CondBr{Cond: remap(in.Cond), Then: blocks[in.Then], Else: blocks[in.Else]}
			case *Ret:
				r := &Ret{}
				if in.Val != nil {
					r.Val = remap(in.Val)
				}
				nin = r
			default:
				panic(fmt.Sprintf("ir: clone: unhandled instruction %T", in))
			}
			instrs[in] = nin
			nb.Append(nin)
		}
	}
	nf.Renumber()
}
