package ir

import (
	"fmt"

	"repro/internal/arch"
)

// Instr is one IR instruction. Instructions that produce a value implement
// Value with a non-void type; the others report Void.
type Instr interface {
	Value
	Parent() *Block
	// Operands returns the values this instruction uses, for analyses and
	// rewriting passes. The returned slice aliases internal storage of
	// pointers; callers may replace elements via ReplaceOperand.
	Operands() []Value
	// ReplaceOperand substitutes new for every occurrence of old.
	ReplaceOperand(old, new Value)

	base() *instrBase
}

type instrBase struct {
	id     int // value slot within the function; -1 for void results
	parent *Block
}

func (b *instrBase) Parent() *Block   { return b.parent }
func (b *instrBase) base() *instrBase { return b }
func (b *instrBase) Ident() string    { return fmt.Sprintf("%%v%d", b.id) }
func (b *instrBase) Slot() int        { return b.id }
func replace1(p *Value, old, new Value) {
	if *p == old {
		*p = new
	}
}

// MemLayout is the architecture-resolved description of one memory access,
// filled in by Lower. It encodes the three unification mechanisms of
// Section 3.2 as they apply to a single load or store:
//
//   - Size/Class follow the *standard* (mobile) layout, not the executing
//     machine's — layout realignment;
//   - Widen marks pointer-valued accesses whose in-memory width differs
//     from the executing machine's native pointer width — address size
//     conversion;
//   - Swap marks accesses where the executing machine's byte order differs
//     from the standard order — endianness translation.
type MemLayout struct {
	Size  int
	Class arch.Class
	Swap  bool
	Widen bool
}

// Alloca reserves stack storage for Count (default 1) values of type Elem
// and yields its address.
type Alloca struct {
	instrBase
	Elem Type
	// SizeBytes is the resolved total allocation size, filled by Lower.
	SizeBytes int
}

func (a *Alloca) Type() Type                    { return Ptr(a.Elem) }
func (a *Alloca) Operands() []Value             { return nil }
func (a *Alloca) ReplaceOperand(old, new Value) {}

// Load reads a scalar of type Elem from Ptr.
type Load struct {
	instrBase
	Ptr  Value
	Elem Type
	Lay  MemLayout
}

func (l *Load) Type() Type        { return l.Elem }
func (l *Load) Operands() []Value { return []Value{l.Ptr} }
func (l *Load) ReplaceOperand(old, new Value) {
	replace1(&l.Ptr, old, new)
}

// Store writes scalar Val to Ptr. It produces no value.
type Store struct {
	instrBase
	Ptr Value
	Val Value
	Lay MemLayout
}

func (s *Store) Type() Type        { return Void }
func (s *Store) Operands() []Value { return []Value{s.Ptr, s.Val} }
func (s *Store) ReplaceOperand(old, new Value) {
	replace1(&s.Ptr, old, new)
	replace1(&s.Val, old, new)
}

// BinOp enumerates two-operand arithmetic operations.
type BinOp int

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
)

func (op BinOp) String() string {
	return [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr"}[op]
}

// Bin computes X op Y. Both operands must share the instruction's type.
type Bin struct {
	instrBase
	Op   BinOp
	X, Y Value
}

func (b *Bin) Type() Type        { return b.X.Type() }
func (b *Bin) Operands() []Value { return []Value{b.X, b.Y} }
func (b *Bin) ReplaceOperand(old, new Value) {
	replace1(&b.X, old, new)
	replace1(&b.Y, old, new)
}

// CmpPred enumerates comparison predicates.
type CmpPred int

const (
	EQ CmpPred = iota
	NE
	LT
	LE
	GT
	GE
)

func (p CmpPred) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[p]
}

// Cmp compares X and Y and yields an i1.
type Cmp struct {
	instrBase
	Pred CmpPred
	X, Y Value
}

func (c *Cmp) Type() Type        { return I1 }
func (c *Cmp) Operands() []Value { return []Value{c.X, c.Y} }
func (c *Cmp) ReplaceOperand(old, new Value) {
	replace1(&c.X, old, new)
	replace1(&c.Y, old, new)
}

// FieldAddr computes the address of field Field of the struct *Ptr.
// The byte offset is resolved by Lower against the standard layout; before
// unification each target resolves it against its own layout, which is the
// Figure 4 bug this reproduction can actually exhibit.
type FieldAddr struct {
	instrBase
	Ptr    Value
	Field  int
	Offset int // resolved by Lower
}

func (f *FieldAddr) Type() Type {
	st := f.Ptr.Type().(*PointerType).Elem.(*StructType)
	return Ptr(st.Fields[f.Field].Type)
}
func (f *FieldAddr) Operands() []Value { return []Value{f.Ptr} }
func (f *FieldAddr) ReplaceOperand(old, new Value) {
	replace1(&f.Ptr, old, new)
}

// IndexAddr computes Ptr + Index*stride. Ptr has type *T (element pointer)
// or *[N]T (array pointer); the result is *T.
type IndexAddr struct {
	instrBase
	Ptr    Value
	Index  Value
	Stride int // resolved by Lower
}

func (ix *IndexAddr) Type() Type {
	switch pt := ix.Ptr.Type().(*PointerType).Elem.(type) {
	case *ArrayType:
		return Ptr(pt.Elem)
	default:
		return ix.Ptr.Type()
	}
}
func (ix *IndexAddr) elemType() Type {
	switch pt := ix.Ptr.Type().(*PointerType).Elem.(type) {
	case *ArrayType:
		return pt.Elem
	default:
		return pt
	}
}
func (ix *IndexAddr) Operands() []Value { return []Value{ix.Ptr, ix.Index} }
func (ix *IndexAddr) ReplaceOperand(old, new Value) {
	replace1(&ix.Ptr, old, new)
	replace1(&ix.Index, old, new)
}

// Call invokes Callee directly with Args.
type Call struct {
	instrBase
	Callee *Func
	Args   []Value
}

func (c *Call) Type() Type { return c.Callee.Sig.Ret }
func (c *Call) Operands() []Value {
	return c.Args
}
func (c *Call) ReplaceOperand(old, new Value) {
	for i := range c.Args {
		replace1(&c.Args[i], old, new)
	}
}

// CallInd invokes the function whose address is Fn. Function addresses are
// machine-specific: a mobile-assigned address is meaningless on the server
// until translated through the runtime's function map. The server-specific
// optimizer sets Mapped, which makes the interpreter translate (and charge
// the Fig. 7 "function pointer translation" overhead).
type CallInd struct {
	instrBase
	Fn     Value
	Sig    *FuncType
	Args   []Value
	Mapped bool
}

func (c *CallInd) Type() Type { return c.Sig.Ret }
func (c *CallInd) Operands() []Value {
	ops := make([]Value, 0, len(c.Args)+1)
	ops = append(ops, c.Fn)
	return append(ops, c.Args...)
}
func (c *CallInd) ReplaceOperand(old, new Value) {
	replace1(&c.Fn, old, new)
	for i := range c.Args {
		replace1(&c.Args[i], old, new)
	}
}

// ConvKind enumerates value conversions.
type ConvKind int

const (
	ConvTrunc   ConvKind = iota // int -> narrower int
	ConvZExt                    // int -> wider int, zero extended
	ConvSExt                    // int -> wider int, sign extended
	ConvIntToFP                 // int -> float
	ConvFPToInt                 // float -> int (truncating)
	ConvFPExt                   // f32 -> f64
	ConvFPTrunc                 // f64 -> f32
	ConvBitcast                 // pointer -> pointer reinterpretation
)

func (k ConvKind) String() string {
	return [...]string{"trunc", "zext", "sext", "itof", "ftoi", "fpext", "fptrunc", "bitcast"}[k]
}

// Convert changes the representation of Val to type To.
type Convert struct {
	instrBase
	Kind ConvKind
	Val  Value
	To   Type
}

func (c *Convert) Type() Type        { return c.To }
func (c *Convert) Operands() []Value { return []Value{c.Val} }
func (c *Convert) ReplaceOperand(old, new Value) {
	replace1(&c.Val, old, new)
}

// FuncAddr yields the executing machine's address of Callee as a function
// pointer value. Storing it to memory publishes a machine-specific address,
// which is why Section 3.4 needs the m2s/s2m maps.
type FuncAddr struct {
	instrBase
	Callee *Func
}

func (f *FuncAddr) Type() Type                    { return Ptr(f.Callee.Sig) }
func (f *FuncAddr) Operands() []Value             { return nil }
func (f *FuncAddr) ReplaceOperand(old, new Value) {}

// Br branches unconditionally to Dst.
type Br struct {
	instrBase
	Dst *Block
}

func (b *Br) Type() Type                    { return Void }
func (b *Br) Operands() []Value             { return nil }
func (b *Br) ReplaceOperand(old, new Value) {}

// CondBr branches to Then if Cond is nonzero, else to Else.
type CondBr struct {
	instrBase
	Cond Value
	Then *Block
	Else *Block
}

func (b *CondBr) Type() Type        { return Void }
func (b *CondBr) Operands() []Value { return []Value{b.Cond} }
func (b *CondBr) ReplaceOperand(old, new Value) {
	replace1(&b.Cond, old, new)
}

// Ret returns from the function, with Val for non-void functions.
type Ret struct {
	instrBase
	Val Value // nil for void returns
}

func (r *Ret) Type() Type { return Void }
func (r *Ret) Operands() []Value {
	if r.Val == nil {
		return nil
	}
	return []Value{r.Val}
}
func (r *Ret) ReplaceOperand(old, new Value) {
	if r.Val != nil {
		replace1(&r.Val, old, new)
	}
}

// IsTerminator reports whether in must end a basic block.
func IsTerminator(in Instr) bool {
	switch in.(type) {
	case *Br, *CondBr, *Ret:
		return true
	}
	return false
}

// Successors returns the control-flow successors of a terminator, nil for
// Ret.
func Successors(in Instr) []*Block {
	switch t := in.(type) {
	case *Br:
		return []*Block{t.Dst}
	case *CondBr:
		return []*Block{t.Then, t.Else}
	}
	return nil
}
