package ir

import "repro/internal/arch"

// Lower resolves every layout-dependent quantity in m for execution on
// target, computing offsets, strides and access sizes against standard's
// data layout.
//
// This is the moment the paper's architecture story becomes concrete:
//
//   - an ordinary backend lowers with standard == target, so each machine
//     bakes its own struct offsets and pointer widths into the binary;
//   - the Native Offloader compiler lowers *both* binaries against the
//     mobile layout (standard = mobile spec). Struct offsets realign
//     (Section 3.2 "memory layout realignment"), pointer-valued accesses on
//     a machine with a different pointer width get Widen set ("address size
//     conversion"), and accesses on a machine with different byte order get
//     Swap set ("endianness translation").
//
// Lower is idempotent and must run before a module is interpreted.
func Lower(m *Module, target, standard *arch.Spec) {
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				lowerInstr(in, target, standard)
			}
		}
		f.Renumber()
	}
	m.Lowered = true
}

func lowerInstr(in Instr, target, standard *arch.Spec) {
	switch in := in.(type) {
	case *Alloca:
		in.SizeBytes = SizeOf(in.Elem, standard)
	case *FieldAddr:
		st := in.Ptr.Type().(*PointerType).Elem.(*StructType)
		in.Offset = LayoutOf(st, standard).Offsets[in.Field]
	case *IndexAddr:
		in.Stride = Stride(in.elemType(), standard)
	case *Load:
		in.Lay = memLayout(in.Elem, target, standard)
	case *Store:
		in.Lay = memLayout(in.Val.Type(), target, standard)
	}
}

func memLayout(elem Type, target, standard *arch.Spec) MemLayout {
	c := ClassOf(elem)
	size := standard.Size(c)
	return MemLayout{
		Size:  size,
		Class: c,
		Swap:  size > 1 && target.Endian != standard.Endian,
		Widen: c == arch.ClassPtr && target.PointerBytes != standard.Size(arch.ClassPtr),
	}
}
