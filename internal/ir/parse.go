package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form produced by Module.String back into a
// Module, so partitioned binaries dumped by offloadc can be inspected,
// edited and re-executed. The returned module is unlowered (offsets,
// strides and access layouts must be recomputed with Lower) and renumbered.
func Parse(text string) (*Module, error) {
	p := &parser{
		structs: make(map[string]*StructType),
		funcs:   make(map[string]*Func),
		globals: make(map[string]*Global),
	}
	lines := strings.Split(text, "\n")

	// Pass 1: module header, types, globals, function headers, declares.
	inBody := false
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || inBody && line != "}":
			if line == "" {
				continue
			}
		case strings.HasPrefix(line, "module "):
			if err := p.parseModuleHeader(line); err != nil {
				return nil, lineErr(i, err)
			}
		case strings.HasPrefix(line, "type %"):
			if err := p.needModule(); err != nil {
				return nil, lineErr(i, err)
			}
			if err := p.parseTypeDef(line); err != nil {
				return nil, lineErr(i, err)
			}
		case strings.HasPrefix(line, "declare @"):
			if err := p.needModule(); err != nil {
				return nil, lineErr(i, err)
			}
			if err := p.parseDeclare(line); err != nil {
				return nil, lineErr(i, err)
			}
		case strings.HasPrefix(line, "func @"):
			if err := p.needModule(); err != nil {
				return nil, lineErr(i, err)
			}
			if err := p.parseFuncHeader(line); err != nil {
				return nil, lineErr(i, err)
			}
			inBody = true
		case line == "}":
			inBody = false
		}
	}
	if p.mod == nil {
		return nil, fmt.Errorf("ir: parse: no module header")
	}
	// Globals need function references resolved, so they parse after the
	// function headers.
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if strings.HasPrefix(line, "global @") {
			if err := p.parseGlobal(line); err != nil {
				return nil, lineErr(i, err)
			}
		}
	}

	// Pass 2: function bodies.
	var cur *bodyState
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "func @"):
			name := line[len("func @"):strings.IndexByte(line, '(')]
			cur = &bodyState{
				p:      p,
				fn:     p.funcs[name],
				blocks: make(map[string]*Block),
				vals:   make(map[string]Value),
			}
			for _, prm := range cur.fn.Params {
				cur.vals["%"+prm.Nam] = prm
			}
		case cur != nil && line == "}":
			if err := cur.finish(); err != nil {
				return nil, lineErr(i, err)
			}
			cur = nil
		case cur != nil && strings.HasSuffix(line, ":") && !strings.Contains(line, " "):
			if err := cur.enterBlock(strings.TrimSuffix(line, ":")); err != nil {
				return nil, lineErr(i, err)
			}
		case cur != nil && line != "":
			if err := cur.parseInstr(line); err != nil {
				return nil, lineErr(i, err)
			}
		}
	}
	if p.mod == nil {
		return nil, fmt.Errorf("ir: parse: no module header")
	}
	for _, f := range p.mod.Funcs {
		f.Renumber()
	}
	if err := Verify(p.mod); err != nil {
		return nil, fmt.Errorf("ir: parse: %w", err)
	}
	return p.mod, nil
}

func lineErr(i int, err error) error {
	return fmt.Errorf("ir: parse: line %d: %w", i+1, err)
}

type parser struct {
	mod     *Module
	structs map[string]*StructType
	funcs   map[string]*Func
	globals map[string]*Global
}

func (p *parser) needModule() error {
	if p.mod == nil {
		return fmt.Errorf("declaration before the module header")
	}
	return nil
}

func (p *parser) parseModuleHeader(line string) error {
	// module NAME (stack 0xNNN[, unified])
	rest := strings.TrimPrefix(line, "module ")
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return fmt.Errorf("malformed module header")
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return fmt.Errorf("module without a name")
	}
	p.mod = NewModule(name)
	attrs := strings.Trim(rest[open:], "()")
	for _, a := range strings.Split(attrs, ",") {
		a = strings.TrimSpace(a)
		switch {
		case strings.HasPrefix(a, "stack 0x"):
			v, err := strconv.ParseUint(strings.TrimPrefix(a, "stack 0x"), 16, 32)
			if err != nil {
				return err
			}
			p.mod.StackBase = uint32(v)
		case a == "unified":
			p.mod.Unified = true
		}
	}
	return nil
}

func (p *parser) parseTypeDef(line string) error {
	// type %Name {field T, field T}
	rest := strings.TrimPrefix(line, "type %")
	brace := strings.IndexByte(rest, '{')
	if brace < 0 || !strings.HasSuffix(rest, "}") {
		return fmt.Errorf("malformed type definition")
	}
	name := strings.TrimSpace(rest[:brace])
	st := &StructType{Name: name}
	p.structs[name] = st // register first: fields may self-reference via pointers
	body := strings.TrimSuffix(rest[brace+1:], "}")
	if strings.TrimSpace(body) != "" {
		for _, f := range splitTop(body, ',') {
			f = strings.TrimSpace(f)
			sp := strings.IndexByte(f, ' ')
			if sp < 0 {
				return fmt.Errorf("malformed field %q", f)
			}
			ft, err := p.parseType(strings.TrimSpace(f[sp+1:]))
			if err != nil {
				return err
			}
			st.Fields = append(st.Fields, StructField{Name: f[:sp], Type: ft})
		}
	}
	p.mod.Structs = append(p.mod.Structs, st)
	return nil
}

func (p *parser) parseDeclare(line string) error {
	// declare @name func(T, T) RET
	rest := strings.TrimPrefix(line, "declare @")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return fmt.Errorf("malformed declare")
	}
	name := rest[:sp]
	sig, err := p.parseType(strings.TrimSpace(rest[sp+1:]))
	if err != nil {
		return err
	}
	ft, ok := sig.(*FuncType)
	if !ok {
		return fmt.Errorf("declare of non-function type %s", sig)
	}
	kind, ok := externKindByName(name)
	if !ok {
		kind = ExternUnknown
	}
	f := &Func{Nam: name, Sig: ft, Extern: kind, Variadic: true}
	p.funcs[name] = f
	p.mod.Funcs = append(p.mod.Funcs, f)
	return nil
}

var externNames map[string]ExternKind

func externKindByName(name string) (ExternKind, bool) {
	if externNames == nil {
		externNames = make(map[string]ExternKind)
		for k := ExternMalloc; k <= ExternFptrToM; k++ {
			externNames[k.String()] = k
		}
	}
	k, ok := externNames[name]
	return k, ok
}

func (p *parser) parseFuncHeader(line string) error {
	// func @name(%p T, ...) RET [task(N)] {
	rest := strings.TrimPrefix(line, "func @")
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return fmt.Errorf("malformed func header")
	}
	name := rest[:open]
	if name == "" {
		return fmt.Errorf("function without a name")
	}
	if p.funcs[name] != nil {
		return fmt.Errorf("duplicate function @%s", name)
	}
	close := matchParen(rest, open)
	if close < 0 {
		return fmt.Errorf("unbalanced parameters")
	}
	if !strings.HasSuffix(strings.TrimSpace(rest), "{") {
		return fmt.Errorf("function header must end with '{'")
	}
	f := &Func{Nam: name, Sig: &FuncType{}}
	params := rest[open+1 : close]
	if strings.TrimSpace(params) != "" {
		for i, prm := range splitTop(params, ',') {
			prm = strings.TrimSpace(prm)
			if !strings.HasPrefix(prm, "%") {
				return fmt.Errorf("malformed parameter %q", prm)
			}
			sp := strings.IndexByte(prm, ' ')
			if sp < 0 {
				return fmt.Errorf("parameter %q missing type", prm)
			}
			t, err := p.parseType(strings.TrimSpace(prm[sp+1:]))
			if err != nil {
				return err
			}
			f.Params = append(f.Params, &Param{Nam: prm[1:sp], Typ: t, Index: i})
			f.Sig.Params = append(f.Sig.Params, t)
		}
	}
	tail := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest[close+1:]), "{"))
	if idx := strings.Index(tail, "task("); idx >= 0 {
		n, err := strconv.Atoi(strings.TrimSuffix(tail[idx+5:], ")"))
		if err != nil {
			return err
		}
		f.TaskID = n
		tail = strings.TrimSpace(tail[:idx])
	}
	ret, err := p.parseType(tail)
	if err != nil {
		return err
	}
	f.Sig.Ret = ret
	p.funcs[name] = f
	p.mod.Funcs = append(p.mod.Funcs, f)
	return nil
}

func (p *parser) parseGlobal(line string) error {
	// global @name TYPE [uva(0xN)] [= init]
	rest := strings.TrimPrefix(line, "global @")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return fmt.Errorf("malformed global")
	}
	g := &Global{Nam: rest[:sp]}
	rest = strings.TrimSpace(rest[sp+1:])

	var initPart string
	if eq := strings.Index(rest, " = "); eq >= 0 {
		initPart = strings.TrimSpace(rest[eq+3:])
		rest = strings.TrimSpace(rest[:eq])
	}
	if idx := strings.Index(rest, " uva(0x"); idx >= 0 {
		addr, err := strconv.ParseUint(strings.TrimSuffix(rest[idx+7:], ")"), 16, 32)
		if err != nil {
			return err
		}
		g.Home, g.UVAAddr = HomeUVA, uint32(addr)
		rest = strings.TrimSpace(rest[:idx])
	}
	t, err := p.parseType(rest)
	if err != nil {
		return err
	}
	g.Elem = t

	switch {
	case initPart == "":
	case strings.HasPrefix(initPart, `"`):
		s, err := strconv.Unquote(initPart)
		if err != nil {
			return fmt.Errorf("bad string initializer: %w", err)
		}
		g.InitBytes = []byte(s)
	case strings.HasPrefix(initPart, "["):
		body := strings.TrimSuffix(strings.TrimPrefix(initPart, "["), "]")
		for _, ent := range splitTop(body, ',') {
			v, err := p.parseOperand(strings.TrimSpace(ent), nil)
			if err != nil {
				return err
			}
			g.Init = append(g.Init, v)
		}
	default:
		return fmt.Errorf("unrecognized initializer %q", initPart)
	}
	p.globals[g.Nam] = g
	p.mod.Globals = append(p.mod.Globals, g)
	return nil
}

// parseType parses a type expression.
func (p *parser) parseType(s string) (Type, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "void":
		return Void, nil
	case s == "i1":
		return I1, nil
	case s == "i8":
		return I8, nil
	case s == "i16":
		return I16, nil
	case s == "i32":
		return I32, nil
	case s == "i64":
		return I64, nil
	case s == "f32":
		return F32, nil
	case s == "f64":
		return F64, nil
	case strings.HasPrefix(s, "*"):
		el, err := p.parseType(s[1:])
		if err != nil {
			return nil, err
		}
		return Ptr(el), nil
	case strings.HasPrefix(s, "["):
		close := strings.IndexByte(s, ']')
		if close < 0 {
			return nil, fmt.Errorf("unclosed array type %q", s)
		}
		n, err := strconv.Atoi(s[1:close])
		if err != nil {
			return nil, err
		}
		el, err := p.parseType(s[close+1:])
		if err != nil {
			return nil, err
		}
		return Array(el, n), nil
	case strings.HasPrefix(s, "%"):
		st, ok := p.structs[s[1:]]
		if !ok {
			return nil, fmt.Errorf("unknown struct type %s", s)
		}
		return st, nil
	case strings.HasPrefix(s, "func("):
		close := matchParen(s, 4)
		if close < 0 {
			return nil, fmt.Errorf("unbalanced func type %q", s)
		}
		ft := &FuncType{}
		args := s[5:close]
		if strings.TrimSpace(args) != "" {
			for _, a := range splitTop(args, ',') {
				t, err := p.parseType(a)
				if err != nil {
					return nil, err
				}
				ft.Params = append(ft.Params, t)
			}
		}
		ret, err := p.parseType(s[close+1:])
		if err != nil {
			return nil, err
		}
		ft.Ret = ret
		return ft, nil
	}
	return nil, fmt.Errorf("unknown type %q", s)
}

// parseOperand parses a value reference. vals is the function-local value
// table (nil at global scope).
func (p *parser) parseOperand(s string, vals map[string]Value) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "null":
		return Null(I8), nil
	case strings.HasPrefix(s, "uva(0x"):
		body := strings.TrimPrefix(s, "uva(0x")
		if i := strings.IndexAny(body, ") "); i >= 0 {
			body = body[:i]
		}
		addr, err := strconv.ParseUint(body, 16, 32)
		if err != nil {
			return nil, err
		}
		return &ConstUVA{Typ: Ptr(I8), Addr: uint32(addr)}, nil
	case strings.HasPrefix(s, "@"):
		if f, ok := p.funcs[s[1:]]; ok {
			return f, nil
		}
		if g, ok := p.globals[s[1:]]; ok {
			return g, nil
		}
		return nil, fmt.Errorf("unknown symbol %s", s)
	case strings.HasPrefix(s, "%"):
		if vals == nil {
			return nil, fmt.Errorf("local value %s at global scope", s)
		}
		v, ok := vals[s]
		if !ok {
			return nil, fmt.Errorf("use of undefined value %s", s)
		}
		return v, nil
	}
	// Typed constant: "i32 7" or "f64 3.5".
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("malformed operand %q", s)
	}
	t, err := p.parseType(s[:sp])
	if err != nil {
		return nil, err
	}
	lit := strings.TrimSpace(s[sp+1:])
	switch t := t.(type) {
	case *IntType:
		v, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return nil, err
		}
		return &ConstInt{Typ: t, V: v}, nil
	case *FloatType:
		v, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return nil, err
		}
		return &ConstFloat{Typ: t, V: v}, nil
	}
	return nil, fmt.Errorf("constant of unsupported type %s", t)
}

// splitTop splits s at top-level occurrences of sep (ignoring separators
// inside (), [], {}).
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		default:
			if s[i] == sep && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// matchParen returns the index of the ')' matching the '(' at open.
func matchParen(s string, open int) int {
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}
