package ir

import (
	"fmt"

	"repro/internal/arch"
)

// Layout describes how a type is stored in memory on a particular
// architecture: its total size, alignment, and (for structs) field offsets.
//
// Two architectures may lay the same struct out differently (paper Figure 4:
// {char,char,double} is 12 bytes on IA32 but 16 on ARM). The Native
// Offloader compiler resolves all address computations against the *mobile*
// layout on both machines ("memory layout realignment"), which is what makes
// the unified virtual address space read the same values everywhere.
type Layout struct {
	Size    int
	Align   int
	Offsets []int // per struct field; nil for non-structs
}

// LayoutOf computes the memory layout of t under the given architecture's
// alignment and size rules.
func LayoutOf(t Type, spec *arch.Spec) Layout {
	switch t := t.(type) {
	case *IntType, *FloatType, *PointerType:
		c := ClassOf(t)
		return Layout{Size: spec.Size(c), Align: spec.Align(c)}
	case *ArrayType:
		el := LayoutOf(t.Elem, spec)
		stride := alignUp(el.Size, el.Align)
		return Layout{Size: stride * t.Len, Align: el.Align}
	case *StructType:
		off, algn := 0, 1
		offsets := make([]int, len(t.Fields))
		for i, f := range t.Fields {
			fl := LayoutOf(f.Type, spec)
			off = alignUp(off, fl.Align)
			offsets[i] = off
			off += fl.Size
			if fl.Align > algn {
				algn = fl.Align
			}
		}
		return Layout{Size: alignUp(off, algn), Align: algn, Offsets: offsets}
	case *VoidType:
		return Layout{Size: 0, Align: 1}
	case *FuncType:
		// Function values are only manipulated through pointers.
		panic("ir: function types have no storage layout")
	}
	panic(fmt.Sprintf("ir: LayoutOf: unhandled type %T", t))
}

// SizeOf is shorthand for LayoutOf(t, spec).Size.
func SizeOf(t Type, spec *arch.Spec) int { return LayoutOf(t, spec).Size }

// Stride returns the distance in bytes between consecutive array elements of
// type t under spec.
func Stride(t Type, spec *arch.Spec) int {
	l := LayoutOf(t, spec)
	return alignUp(l.Size, l.Align)
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}
