package analysis

import (
	"sort"

	"repro/internal/ir"
)

// CallGraph records, for each defined function, the functions it may call.
// Indirect calls are resolved conservatively to every address-taken function
// with a matching signature — the same conservatism that forces the paper's
// function-pointer mapping (Section 3.4): the compiler cannot know which
// callee a function pointer names, so it must keep all of them available.
type CallGraph struct {
	Module *ir.Module
	// Callees maps a function to its possible direct and indirect callees.
	Callees map[*ir.Func][]*ir.Func
	// AddressTaken lists functions whose address escapes into data or
	// registers (and which therefore need entries in the m2s/s2m maps).
	AddressTaken []*ir.Func
}

// BuildCallGraph analyzes every defined function in m.
func BuildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{Module: m, Callees: make(map[*ir.Func][]*ir.Func)}

	taken := make(map[*ir.Func]bool)
	// Function addresses escape through FuncAddr instructions and global
	// initializers (function pointer tables like the chess example's
	// evals[7]).
	for _, g := range m.Globals {
		for _, v := range g.Init {
			if f, ok := v.(*ir.Func); ok {
				taken[f] = true
			}
		}
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if fa, ok := in.(*ir.FuncAddr); ok {
					taken[fa.Callee] = true
				}
			}
		}
	}
	for _, f := range m.Funcs {
		if taken[f] {
			cg.AddressTaken = append(cg.AddressTaken, f)
		}
	}

	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		seen := make(map[*ir.Func]bool)
		add := func(callee *ir.Func) {
			if !seen[callee] {
				seen[callee] = true
				cg.Callees[f] = append(cg.Callees[f], callee)
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *ir.Call:
					add(in.Callee)
				case *ir.CallInd:
					for _, t := range cg.AddressTaken {
						if t.Sig.Equal(in.Sig) {
							add(t)
						}
					}
				}
			}
		}
		sort.Slice(cg.Callees[f], func(i, j int) bool {
			return cg.Callees[f][i].Nam < cg.Callees[f][j].Nam
		})
	}
	return cg
}

// Reachable returns the set of functions reachable from the given roots,
// including the roots themselves and conservative indirect callees.
func (cg *CallGraph) Reachable(roots ...*ir.Func) map[*ir.Func]bool {
	out := make(map[*ir.Func]bool)
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		if f == nil || out[f] {
			return
		}
		out[f] = true
		for _, c := range cg.Callees[f] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}

// Callers inverts the callee map.
func (cg *CallGraph) Callers(target *ir.Func) []*ir.Func {
	var out []*ir.Func
	for _, f := range cg.Module.Funcs {
		for _, c := range cg.Callees[f] {
			if c == target {
				out = append(out, f)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nam < out[j].Nam })
	return out
}
