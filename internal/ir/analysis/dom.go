package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// DomTree is the dominator tree of a CFG.
type DomTree struct {
	cfg  *CFG
	idom map[*ir.Block]*ir.Block
}

// Dominators computes the dominator tree with the Cooper–Harvey–Kennedy
// iterative algorithm ("A Simple, Fast Dominance Algorithm"), which runs in
// near-linear time on the reducible CFGs our builder produces.
func Dominators(g *CFG) *DomTree {
	entry := g.Blocks[0]
	idom := make(map[*ir.Block]*ir.Block, len(g.Blocks))
	idom[entry] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for g.rpo[a] > g.rpo[b] {
				a = idom[a]
			}
			for g.rpo[b] > g.rpo[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks[1:] {
			var newIdom *ir.Block
			for _, p := range g.preds[b] {
				if !g.Reachable(p) {
					continue
				}
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{cfg: g, idom: idom}
}

// Idom returns the immediate dominator of b; the entry block is its own
// immediate dominator.
func (d *DomTree) Idom(b *ir.Block) *ir.Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// VerifySSA checks that every instruction's register operands are defined
// in blocks that dominate the use (or earlier in the same block) — the
// def-dominates-use discipline the interpreter's slot-based registers rely
// on. It complements ir.Verify's structural checks.
func VerifySSA(f *ir.Func) error {
	g, err := BuildCFG(f)
	if err != nil {
		return err
	}
	dom := Dominators(g)

	defBlock := make(map[ir.Instr]*ir.Block)
	defIndex := make(map[ir.Instr]int)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			defBlock[in] = b
			defIndex[in] = i
		}
	}
	for _, b := range f.Blocks {
		if !g.Reachable(b) {
			continue
		}
		for i, in := range b.Instrs {
			for _, op := range in.Operands() {
				def, ok := op.(ir.Instr)
				if !ok {
					continue // params, globals, constants
				}
				db, defined := defBlock[def]
				if !defined {
					return fmt.Errorf("analysis: %s.%s: use of value defined outside the function", f.Nam, b.Nam)
				}
				if db == b {
					if defIndex[def] >= i {
						return fmt.Errorf("analysis: %s.%s: %s used before its definition", f.Nam, b.Nam, def.Ident())
					}
					continue
				}
				if !dom.Dominates(db, b) {
					return fmt.Errorf("analysis: %s.%s: %s does not dominate its use", f.Nam, b.Nam, def.Ident())
				}
			}
		}
	}
	return nil
}

// VerifyModuleSSA runs VerifySSA over every defined function.
func VerifyModuleSSA(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		if err := VerifySSA(f); err != nil {
			return err
		}
	}
	return nil
}
