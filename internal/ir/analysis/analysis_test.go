package analysis

import (
	"testing"

	"repro/internal/ir"
)

// buildNested builds a function with the chess example's loop structure:
//
//	func getAITurn(depth i32) i32 {
//	  acc := 0
//	  for i := 0; i < depth; i++ {      // for_i
//	    for j := 0; j < 64; j++ {       // for_j
//	      acc += j
//	    }
//	  }
//	  return acc
//	}
func buildNested(m *ir.Module) *ir.Func {
	b := ir.NewBuilder(m)
	f := b.NewFunc("getAITurn", ir.I32, ir.P("depth", ir.I32))
	acc := b.Alloca(ir.I32)
	b.Store(acc, ir.Int(0))
	b.For("for_i", ir.Int(0), f.Params[0], ir.Int(1), func(i ir.Value) {
		b.For("for_j", ir.Int(0), ir.Int(64), ir.Int(1), func(j ir.Value) {
			b.Store(acc, b.Add(b.Load(acc), j))
		})
	})
	b.Ret(b.Load(acc))
	b.Finish()
	return f
}

func TestCFGBasics(t *testing.T) {
	m := ir.NewModule("t")
	f := buildNested(m)
	g, err := BuildCFG(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Blocks[0] != f.Entry() {
		t.Error("entry not first in RPO")
	}
	if g.RPO(f.Entry()) != 0 {
		t.Error("entry RPO != 0")
	}
	// Every reachable non-entry block has at least one predecessor.
	for _, b := range g.Blocks[1:] {
		if len(g.Preds(b)) == 0 {
			t.Errorf("block %s has no predecessors", b.Nam)
		}
	}
}

func TestDominators(t *testing.T) {
	m := ir.NewModule("t")
	f := buildNested(m)
	g, _ := BuildCFG(f)
	dom := Dominators(g)

	entry := f.Entry()
	for _, b := range g.Blocks {
		if !dom.Dominates(entry, b) {
			t.Errorf("entry should dominate %s", b.Nam)
		}
	}
	var condI, bodyI, condJ *ir.Block
	for _, b := range f.Blocks {
		switch b.Nam {
		case "for_i.cond":
			condI = b
		case "for_i.body":
			bodyI = b
		case "for_j.cond":
			condJ = b
		}
	}
	if !dom.Dominates(condI, condJ) {
		t.Error("outer loop header should dominate inner loop header")
	}
	if dom.Dominates(condJ, condI) {
		t.Error("inner loop header must not dominate outer header")
	}
	if dom.Idom(bodyI) != condI {
		t.Errorf("idom(for_i.body) = %v, want for_i.cond", dom.Idom(bodyI).Nam)
	}
}

func TestNaturalLoopsNested(t *testing.T) {
	m := ir.NewModule("t")
	f := buildNested(m)
	g, _ := BuildCFG(f)
	forest := FindLoops(g, Dominators(g))

	if len(forest.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(forest.Loops))
	}
	outer, inner := forest.Loops[0], forest.Loops[1]
	if outer.Name() != "for_i" || inner.Name() != "for_j" {
		t.Fatalf("loop names = %q, %q; want for_i, for_j", outer.Name(), inner.Name())
	}
	if inner.Parent != outer {
		t.Error("for_j should nest inside for_i")
	}
	if outer.Depth() != 1 || inner.Depth() != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", outer.Depth(), inner.Depth())
	}
	for b := range inner.Blocks {
		if !outer.Contains(b) {
			t.Errorf("outer loop missing inner block %s", b.Nam)
		}
	}
	exits := outer.ExitEdges(g)
	if len(exits) != 1 {
		t.Fatalf("outer loop has %d exit edges, want 1", len(exits))
	}
	if exits[0][1].Nam != "for_i.exit" {
		t.Errorf("outer exit goes to %s, want for_i.exit", exits[0][1].Nam)
	}
}

func TestLoopNameStripsCond(t *testing.T) {
	l := &Loop{Header: &ir.Block{Nam: "main_for.cond"}}
	// Only a trailing ".cond" is stripped.
	if got := l.Name(); got != "main_for" {
		t.Errorf("Name() = %q, want main_for", got)
	}
}

func TestCallGraphDirectAndIndirect(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)

	evalSig := ir.Signature(ir.I32, ir.I32)
	pawn := b.NewFunc("evalPawn", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.Add(b.F.Params[0], ir.Int(1)))
	king := b.NewFunc("evalKing", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.Add(b.F.Params[0], ir.Int(100)))
	other := b.NewFunc("otherSig", ir.I64, ir.P("x", ir.I64))
	b.Ret(b.F.Params[0])

	evals := b.GlobalVar("evals", ir.Array(ir.Ptr(evalSig), 2), pawn, king)

	caller := b.NewFunc("think", ir.I32, ir.P("k", ir.I32))
	slot := b.Index(evals, b.F.Params[0])
	fp := b.Load(slot)
	b.Ret(b.CallPtr(fp, evalSig, ir.Int(7)))

	mainf := b.NewFunc("main", ir.I32)
	b.Call(caller, ir.Int(0))
	b.Ret(b.Call(other, ir.Int64(0)))
	b.Finish()

	cg := BuildCallGraph(m)
	if len(cg.AddressTaken) != 2 {
		t.Fatalf("AddressTaken = %d funcs, want 2", len(cg.AddressTaken))
	}
	callees := cg.Callees[caller]
	names := map[string]bool{}
	for _, c := range callees {
		names[c.Nam] = true
	}
	if !names["evalPawn"] || !names["evalKing"] {
		t.Errorf("indirect call should conservatively reach both evals, got %v", names)
	}
	if names["otherSig"] {
		t.Error("indirect call resolved to function with mismatched signature")
	}

	reach := cg.Reachable(mainf)
	for _, want := range []string{"main", "think", "evalPawn", "evalKing", "otherSig"} {
		if !reach[m.Func(want)] {
			t.Errorf("%s should be reachable from main", want)
		}
	}
	callers := cg.Callers(pawn)
	if len(callers) != 1 || callers[0] != caller {
		t.Errorf("Callers(evalPawn) = %v, want [think]", callers)
	}
}

func TestCFGRejectsBodylessFunc(t *testing.T) {
	m := ir.NewModule("t")
	ext := m.Extern(ir.ExternPrintf)
	if _, err := BuildCFG(ext); err == nil {
		t.Error("BuildCFG should fail on extern")
	}
}

func TestWhileLoopDetected(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	f := b.NewFunc("try_place", ir.I32, ir.P("n", ir.I32))
	n := b.Alloca(ir.I32)
	b.Store(n, f.Params[0])
	b.While("try_place_while", func() ir.Value {
		return b.Cmp(ir.GT, b.Load(n), ir.Int(0))
	}, func() {
		b.Store(n, b.Sub(b.Load(n), ir.Int(1)))
	})
	b.Ret(b.Load(n))
	b.Finish()

	g, _ := BuildCFG(f)
	forest := FindLoops(g, Dominators(g))
	if len(forest.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(forest.Loops))
	}
	if got := forest.Loops[0].Name(); got != "try_place_while" {
		t.Errorf("loop name = %q, want try_place_while", got)
	}
}

func TestVerifySSAAcceptsWellFormed(t *testing.T) {
	m := ir.NewModule("t")
	buildNested(m)
	if err := VerifyModuleSSA(m); err != nil {
		t.Errorf("well-formed module rejected: %v", err)
	}
}

func TestVerifySSARejectsNonDominatingUse(t *testing.T) {
	m := ir.NewModule("bad")
	b := ir.NewBuilder(m)
	f := b.NewFunc("f", ir.I32, ir.P("c", ir.I32))
	thenB := b.Block("then")
	elseB := b.Block("else")
	join := b.Block("join")
	b.CondBr(b.Cmp(ir.GT, f.Params[0], ir.Int(0)), thenB, elseB)

	b.SetBlock(thenB)
	v := b.Add(f.Params[0], ir.Int(1)) // defined only on the then path
	b.Br(join)
	b.SetBlock(elseB)
	b.Br(join)
	b.SetBlock(join)
	b.Ret(v) // used where the definition does not dominate
	b.Finish()

	if err := VerifyModuleSSA(m); err == nil {
		t.Error("non-dominating use accepted")
	}
}

func TestVerifySSARejectsUseBeforeDef(t *testing.T) {
	m := ir.NewModule("bad2")
	b := ir.NewBuilder(m)
	b.NewFunc("f", ir.I32)
	blk := b.B
	add := &ir.Bin{Op: ir.Add, X: ir.Int(1), Y: ir.Int(2)}
	use := &ir.Bin{Op: ir.Mul, X: add, Y: ir.Int(3)}
	blk.Append(use) // use precedes def
	blk.Append(add)
	blk.Append(&ir.Ret{Val: use})
	m.Func("f").Renumber()

	if err := VerifyModuleSSA(m); err == nil {
		t.Error("use-before-def accepted")
	}
}

func TestCompiledModulesPassSSA(t *testing.T) {
	// The partitioner's rewrites (diamonds, outlining, dispatch loops)
	// must keep def-dominates-use intact; the nested chess build is the
	// richest in-package structure we can check here.
	m := ir.NewModule("chess")
	buildNested(m)
	for i := 0; i < 2; i++ {
		if err := VerifyModuleSSA(m); err != nil {
			t.Fatal(err)
		}
	}
}
