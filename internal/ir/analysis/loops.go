package analysis

import (
	"sort"
	"strings"

	"repro/internal/ir"
)

// Loop is a natural loop: the set of blocks from which the header can be
// reached without leaving the loop, discovered from a back edge. Hot loops
// are offload candidates alongside whole functions (paper Table 3 lists
// for_i and for_j next to getAITurn).
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	Parent *Loop
	Child  []*Loop
}

// Name returns the loop's report name: the header's label without the
// builder's ".cond" suffix, e.g. "for_i".
func (l *Loop) Name() string {
	return strings.TrimSuffix(l.Header.Nam, ".cond")
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// Depth returns the loop nesting depth, 1 for outermost.
func (l *Loop) Depth() int {
	d := 0
	for cur := l; cur != nil; cur = cur.Parent {
		d++
	}
	return d
}

// LoopForest holds all natural loops of a function, outermost first.
type LoopForest struct {
	Loops []*Loop // all loops, outer loops before their children
	ByHdr map[*ir.Block]*Loop
}

// FindLoops detects the natural loops of g using its dominator tree.
// Back edges t->h with h dominating t define a loop; loops sharing a header
// are merged; nesting is recovered by block containment.
func FindLoops(g *CFG, dom *DomTree) *LoopForest {
	byHeader := make(map[*ir.Block]*Loop)
	for _, b := range g.Blocks {
		for _, s := range g.Succs(b) {
			if !dom.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
			}
			// Walk predecessors backwards from the latch until the
			// header, collecting the loop body.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				for _, p := range g.Preds(n) {
					if g.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	forest := &LoopForest{ByHdr: byHeader}
	for _, l := range byHeader {
		forest.Loops = append(forest.Loops, l)
	}
	// Outer loops have more blocks; sort descending so parents precede
	// children, with RPO of the header as a deterministic tiebreak.
	sort.Slice(forest.Loops, func(i, j int) bool {
		a, b := forest.Loops[i], forest.Loops[j]
		if len(a.Blocks) != len(b.Blocks) {
			return len(a.Blocks) > len(b.Blocks)
		}
		return g.RPO(a.Header) < g.RPO(b.Header)
	})
	// Assign each loop the smallest strictly-containing loop as parent.
	// Loops are sorted large->small, so scanning backwards from i finds
	// the closest (smallest) container first.
	for i, l := range forest.Loops {
		for j := i - 1; j >= 0; j-- {
			outer := forest.Loops[j]
			if outer != l && containsAll(outer, l) {
				l.Parent = outer
				break
			}
		}
		if l.Parent != nil {
			l.Parent.Child = append(l.Parent.Child, l)
		}
	}
	return forest
}

func containsAll(outer, inner *Loop) bool {
	if len(outer.Blocks) <= len(inner.Blocks) {
		return false
	}
	for b := range inner.Blocks {
		if !outer.Blocks[b] {
			return false
		}
	}
	return true
}

// ExitEdges returns the (from, to) pairs leaving the loop.
func (l *Loop) ExitEdges(g *CFG) [][2]*ir.Block {
	var out [][2]*ir.Block
	for b := range l.Blocks {
		for _, s := range g.Succs(b) {
			if !l.Blocks[s] {
				out = append(out, [2]*ir.Block{b, s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return g.RPO(out[i][0]) < g.RPO(out[j][0])
		}
		return g.RPO(out[i][1]) < g.RPO(out[j][1])
	})
	return out
}
