// Package analysis provides the control-flow and call-graph analyses the
// Native Offloader compiler needs: CFG construction, dominator trees,
// natural-loop detection (hot-loop offload candidates, Section 3.1), and a
// call graph (machine-specific taint propagation in Section 3.1 and
// unused-function removal in Section 3.3).
package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// CFG is the control-flow graph of one function.
type CFG struct {
	Fn     *ir.Func
	Blocks []*ir.Block // reverse-postorder from entry; unreachable blocks excluded
	preds  map[*ir.Block][]*ir.Block
	succs  map[*ir.Block][]*ir.Block
	rpo    map[*ir.Block]int
}

// BuildCFG computes the control-flow graph of f. Unreachable blocks are
// dropped from Blocks but remain in the function.
func BuildCFG(f *ir.Func) (*CFG, error) {
	if f.IsExtern() || len(f.Blocks) == 0 {
		return nil, fmt.Errorf("analysis: %s has no body", f.Nam)
	}
	g := &CFG{
		Fn:    f,
		preds: make(map[*ir.Block][]*ir.Block),
		succs: make(map[*ir.Block][]*ir.Block),
		rpo:   make(map[*ir.Block]int),
	}
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(b *ir.Block) error
	dfs = func(b *ir.Block) error {
		seen[b] = true
		term := b.Terminator()
		if term == nil {
			return fmt.Errorf("analysis: %s.%s lacks a terminator", f.Nam, b.Nam)
		}
		for _, s := range ir.Successors(term) {
			g.succs[b] = append(g.succs[b], s)
			g.preds[s] = append(g.preds[s], b)
			if !seen[s] {
				if err := dfs(s); err != nil {
					return err
				}
			}
		}
		post = append(post, b)
		return nil
	}
	if err := dfs(f.Entry()); err != nil {
		return nil, err
	}
	for i := len(post) - 1; i >= 0; i-- {
		g.rpo[post[i]] = len(g.Blocks)
		g.Blocks = append(g.Blocks, post[i])
	}
	return g, nil
}

// Preds returns the predecessors of b in reverse-postorder discovery order.
func (g *CFG) Preds(b *ir.Block) []*ir.Block { return g.preds[b] }

// Succs returns the successors of b.
func (g *CFG) Succs(b *ir.Block) []*ir.Block { return g.succs[b] }

// RPO returns b's reverse-postorder number; entry is 0.
func (g *CFG) RPO(b *ir.Block) int { return g.rpo[b] }

// Reachable reports whether b was reached from the entry block.
func (g *CFG) Reachable(b *ir.Block) bool {
	_, ok := g.rpo[b]
	return ok
}
