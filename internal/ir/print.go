package ir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the module as readable IR text, for debugging and golden
// tests.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s (stack 0x%x", m.Name, m.StackBase)
	if m.Unified {
		sb.WriteString(", unified")
	}
	sb.WriteString(")\n")
	for _, st := range m.NamedStructs() {
		fmt.Fprintf(&sb, "type %%%s {", st.Name)
		for i, f := range st.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", f.Name, f.Type)
		}
		sb.WriteString("}\n")
	}
	for _, g := range m.Globals {
		sb.WriteString(g.decl())
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		sb.WriteByte('\n')
		sb.WriteString(f.String())
	}
	externs := make([]string, 0)
	for _, f := range m.Funcs {
		if f.IsExtern() {
			externs = append(externs, fmt.Sprintf("declare @%s %s", f.Nam, f.Sig))
		}
	}
	sort.Strings(externs)
	if len(externs) > 0 {
		sb.WriteByte('\n')
		sb.WriteString(strings.Join(externs, "\n"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (g *Global) decl() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "global @%s %s", g.Nam, g.Elem)
	if g.Home == HomeUVA {
		fmt.Fprintf(&sb, " uva(0x%x)", g.UVAAddr)
	}
	switch {
	case len(g.InitBytes) > 0:
		fmt.Fprintf(&sb, " = %q", string(g.InitBytes))
	case len(g.Init) > 0:
		parts := make([]string, len(g.Init))
		for i, v := range g.Init {
			parts[i] = v.Ident()
		}
		fmt.Fprintf(&sb, " = [%s]", strings.Join(parts, ", "))
	}
	return sb.String()
}

// String renders the function body.
func (f *Func) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%%%s %s", p.Nam, p.Typ)
	}
	fmt.Fprintf(&sb, "func @%s(%s) %s", f.Nam, strings.Join(params, ", "), f.Sig.Ret)
	if f.TaskID != 0 {
		fmt.Fprintf(&sb, " task(%d)", f.TaskID)
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Nam)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", instrString(in))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func instrString(in Instr) string {
	lhs := ""
	if _, isVoid := in.Type().(*VoidType); !isVoid {
		lhs = in.Ident() + " = "
	}
	switch in := in.(type) {
	case *Alloca:
		return fmt.Sprintf("%salloca %s", lhs, in.Elem)
	case *Load:
		return fmt.Sprintf("%sload %s %s%s", lhs, in.Elem, in.Ptr.Ident(), laySuffix(in.Lay))
	case *Store:
		return fmt.Sprintf("store %s -> %s%s", in.Val.Ident(), in.Ptr.Ident(), laySuffix(in.Lay))
	case *Bin:
		return fmt.Sprintf("%s%s %s, %s", lhs, in.Op, in.X.Ident(), in.Y.Ident())
	case *Cmp:
		return fmt.Sprintf("%scmp %s %s, %s", lhs, in.Pred, in.X.Ident(), in.Y.Ident())
	case *FieldAddr:
		return fmt.Sprintf("%sfield %s, %d (+%d)", lhs, in.Ptr.Ident(), in.Field, in.Offset)
	case *IndexAddr:
		return fmt.Sprintf("%sindex %s, %s (*%d)", lhs, in.Ptr.Ident(), in.Index.Ident(), in.Stride)
	case *Call:
		return fmt.Sprintf("%scall @%s(%s)", lhs, in.Callee.Nam, identList(in.Args))
	case *CallInd:
		mapped := ""
		if in.Mapped {
			mapped = " mapped"
		}
		return fmt.Sprintf("%scallind%s %s(%s)", lhs, mapped, in.Fn.Ident(), identList(in.Args))
	case *Convert:
		return fmt.Sprintf("%s%s %s to %s", lhs, in.Kind, in.Val.Ident(), in.To)
	case *FuncAddr:
		return fmt.Sprintf("%sfuncaddr @%s", lhs, in.Callee.Nam)
	case *Br:
		return fmt.Sprintf("br %s", in.Dst.Nam)
	case *CondBr:
		return fmt.Sprintf("condbr %s, %s, %s", in.Cond.Ident(), in.Then.Nam, in.Else.Nam)
	case *Ret:
		if in.Val == nil {
			return "ret"
		}
		return fmt.Sprintf("ret %s", in.Val.Ident())
	}
	return fmt.Sprintf("%s<unknown %T>", lhs, in)
}

func laySuffix(l MemLayout) string {
	if l.Size == 0 {
		return ""
	}
	s := fmt.Sprintf(" [%db", l.Size)
	if l.Swap {
		s += " swap"
	}
	if l.Widen {
		s += " widen"
	}
	return s + "]"
}

func identList(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.Ident()
	}
	return strings.Join(parts, ", ")
}
