package ir

import (
	"strings"
	"testing"
)

// FuzzParse hardens the IR parser against malformed input: it must reject
// or accept gracefully (never panic), and anything it accepts must verify
// and re-print stably.
func FuzzParse(f *testing.F) {
	// Seed with a valid module and targeted mutations of it.
	m := NewModule("seed")
	buildSumFunc(m)
	valid := m.String()
	f.Add(valid)
	f.Add(strings.Replace(valid, "module", "modul", 1))
	f.Add(strings.Replace(valid, "i32", "i33", 1))
	f.Add(strings.Replace(valid, "condbr", "condbr ,", 1))
	f.Add(strings.Replace(valid, "ret", "ret ret ret", 1))
	f.Add(valid + "\nglobal @dup i32\nglobal @dup i32\n")
	f.Add("module x (stack 0x10)\ntype %T {f *%T}\n")
	f.Add("module x (stack 0x10)\nfunc @f() i32 {\n")
	f.Add("module x (stack 0x10)\nfunc @f(%a [3]f64) void {\nentry:\n  ret\n}\n")
	f.Add("")
	f.Add("module \x00 (stack 0xZZ)")

	f.Fuzz(func(t *testing.T, text string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", trim(text), r)
			}
		}()
		mod, err := Parse(text)
		if err != nil {
			return
		}
		// Accepted input must verify and print stably.
		if verr := Verify(mod); verr != nil {
			t.Fatalf("Parse accepted a module Verify rejects: %v", verr)
		}
		printed := mod.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of accepted module failed: %v\n%s", err, printed)
		}
		if again.String() != printed {
			t.Fatalf("printing is not a fixed point")
		}
	})
}

func trim(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}
