package ir

import (
	"fmt"
	"sort"
)

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Nam    string
	Parent *Func
	Instrs []Instr
}

// Name returns the block's label.
func (b *Block) Name() string { return b.Nam }

// Terminator returns the block's final instruction, or nil if the block is
// still under construction.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !IsTerminator(last) {
		return nil
	}
	return last
}

// Append adds in to the block and claims ownership.
func (b *Block) Append(in Instr) {
	in.base().parent = b
	b.Instrs = append(b.Instrs, in)
}

// Prepend inserts in at the start of the block (used to hoist allocas into
// the entry block).
func (b *Block) Prepend(in Instr) {
	in.base().parent = b
	b.Instrs = append([]Instr{in}, b.Instrs...)
}

// Insert places in at position i of the block (0 <= i <= len(Instrs)).
func (b *Block) Insert(i int, in Instr) {
	in.base().parent = b
	rest := append([]Instr{in}, b.Instrs[i:]...)
	b.Instrs = append(b.Instrs[:i:i], rest...)
}

// Func is an IR function, or an external declaration when Extern is set.
type Func struct {
	Nam    string
	Sig    *FuncType
	Params []*Param
	Blocks []*Block
	Extern ExternKind

	// Variadic marks externs like printf that accept extra arguments.
	Variadic bool

	// NumSlots is the number of runtime value slots (params followed by
	// value-producing instructions), assigned by Renumber.
	NumSlots int

	// TaskID is the offload task identifier assigned by the partitioner to
	// functions selected as offload targets; zero otherwise.
	TaskID int
}

func (f *Func) Type() Type    { return Ptr(f.Sig) }
func (f *Func) Ident() string { return "@" + f.Nam }

// Name returns the function's symbol name.
func (f *Func) Name() string { return f.Nam }

// IsExtern reports whether f is a declaration without a body.
func (f *Func) IsExtern() bool { return f.Extern != ExternNone }

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new empty block with the given label.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Nam: name, Parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Renumber assigns value slots to parameters and value-producing
// instructions. It must be called after structural mutation and before
// interpretation.
func (f *Func) Renumber() {
	n := 0
	for _, p := range f.Params {
		p.Slot = n
		n++
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if _, isVoid := in.Type().(*VoidType); isVoid {
				in.base().id = -1
				continue
			}
			in.base().id = n
			n++
		}
	}
	f.NumSlots = n
}

// Module is a whole program: globals, functions, and named struct types.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
	Structs []*StructType

	// StackBase is the top of the run-time stack region this binary uses,
	// in UVA terms. The partitioner moves the server's stack away from the
	// mobile one (stack reallocation, Section 3.3).
	StackBase uint32

	// Unified records that the memory unification passes have run.
	Unified bool

	// Lowered records that Lower has resolved layouts, so an execution
	// engine may bake layout-dependent fields (sizes, strides, offsets)
	// into a pre-decoded form at machine bind time.
	Lowered bool
}

// DefaultStackBase is where an unmodified binary places its stack.
const DefaultStackBase = 0x7FFF_F000

// NewModule returns an empty module with the default stack placement.
func NewModule(name string) *Module {
	return &Module{Name: name, StackBase: DefaultStackBase}
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Nam == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Nam == name {
			return g
		}
	}
	return nil
}

// AddFunc appends f, enforcing unique names.
func (m *Module) AddFunc(f *Func) *Func {
	if m.Func(f.Nam) != nil {
		panic(fmt.Sprintf("ir: duplicate function %q in module %s", f.Nam, m.Name))
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// AddGlobal appends g, enforcing unique names.
func (m *Module) AddGlobal(g *Global) *Global {
	if m.Global(g.Nam) != nil {
		panic(fmt.Sprintf("ir: duplicate global %q in module %s", g.Nam, m.Name))
	}
	m.Globals = append(m.Globals, g)
	return g
}

// RemoveFunc deletes the named function (used by unused-function removal).
func (m *Module) RemoveFunc(name string) {
	for i, f := range m.Funcs {
		if f.Nam == name {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return
		}
	}
}

// Extern returns the module's declaration for the given extern kind,
// creating a canonical one if absent. Signatures for intrinsics are loose
// (variadic) because the interpreter implements them natively.
func (m *Module) Extern(kind ExternKind) *Func {
	name := kind.String()
	if f := m.Func(name); f != nil {
		return f
	}
	var sig *FuncType
	switch kind {
	case ExternMalloc, ExternUMalloc:
		sig = Signature(Ptr(I8), I32)
	case ExternFree, ExternUFree:
		sig = Signature(Void, Ptr(I8))
	case ExternPrintf, ExternRemotePrintf, ExternScanf:
		sig = Signature(I32, Ptr(I8))
	case ExternFileOpen, ExternRemoteFileOpen:
		sig = Signature(I32, Ptr(I8))
	case ExternFileRead, ExternRemoteFileRead:
		sig = Signature(I32, I32, Ptr(I8), I32)
	case ExternFileClose, ExternRemoteFileClose:
		sig = Signature(I32, I32)
	case ExternExit:
		sig = Signature(Void, I32)
	case ExternMemcpy:
		sig = Signature(Void, Ptr(I8), Ptr(I8), I32)
	case ExternMemset:
		sig = Signature(Void, Ptr(I8), I32, I32)
	case ExternAsm, ExternSyscall, ExternUnknown:
		sig = Signature(I32)
	case ExternGate:
		sig = Signature(I1, I32)
	case ExternOffload:
		sig = Signature(I64, I32)
	case ExternAccept:
		sig = Signature(I32)
	case ExternArg:
		sig = Signature(I64, I32)
	case ExternSendReturn:
		sig = Signature(Void, I64)
	case ExternFptrToM:
		sig = Signature(Ptr(Signature(Void)), Ptr(Signature(Void)))
	default:
		panic(fmt.Sprintf("ir: no canonical signature for extern %v", kind))
	}
	f := &Func{Nam: name, Sig: sig, Extern: kind, Variadic: true}
	m.Funcs = append(m.Funcs, f)
	return f
}

// SortedFuncNames returns the defined (non-extern) function names sorted,
// for deterministic reports.
func (m *Module) SortedFuncNames() []string {
	var names []string
	for _, f := range m.Funcs {
		if !f.IsExtern() {
			names = append(names, f.Nam)
		}
	}
	sort.Strings(names)
	return names
}

// NamedStructs collects every named struct type reachable from the module's
// globals and instructions, sorted by name; the printer emits their
// definitions so printed modules are self-contained for the parser.
func (m *Module) NamedStructs() []*StructType {
	seen := make(map[string]*StructType)
	var walk func(t Type)
	walk = func(t Type) {
		switch t := t.(type) {
		case *PointerType:
			walk(t.Elem)
		case *ArrayType:
			walk(t.Elem)
		case *FuncType:
			for _, p := range t.Params {
				walk(p)
			}
			walk(t.Ret)
		case *StructType:
			if t.Name != "" {
				if _, ok := seen[t.Name]; ok {
					return
				}
				seen[t.Name] = t
			}
			for _, f := range t.Fields {
				walk(f.Type)
			}
		}
	}
	for _, g := range m.Globals {
		walk(g.Elem)
	}
	for _, f := range m.Funcs {
		walk(f.Sig)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if _, isVoid := in.Type().(*VoidType); !isVoid {
					walk(in.Type())
				}
				if a, ok := in.(*Alloca); ok {
					walk(a.Elem)
				}
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*StructType, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}
