package ir

import "fmt"

// Builder provides a cursor-based construction API for IR. The workload
// programs (internal/workloads) are written against it, playing the role of
// the front-end compiler in the paper's Figure 1.
type Builder struct {
	M *Module
	F *Func
	B *Block

	strs   map[string]*Global
	nblock int
}

// NewBuilder returns a builder for module m.
func NewBuilder(m *Module) *Builder {
	return &Builder{M: m, strs: make(map[string]*Global)}
}

// NewFunc starts a new function with the given name, return type and
// parameters, creates its entry block, and points the cursor at it.
func (b *Builder) NewFunc(name string, ret Type, params ...*Param) *Func {
	sig := &FuncType{Ret: ret}
	for i, p := range params {
		p.Index = i
		sig.Params = append(sig.Params, p.Typ)
	}
	f := &Func{Nam: name, Sig: sig, Params: params}
	b.M.AddFunc(f)
	b.F = f
	b.B = f.NewBlock("entry")
	b.nblock = 0
	return f
}

// P declares a parameter for NewFunc.
func P(name string, t Type) *Param { return &Param{Nam: name, Typ: t} }

// SetBlock moves the cursor to block blk.
func (b *Builder) SetBlock(blk *Block) { b.B = blk }

// Block creates a new block in the current function without moving the
// cursor. The requested name is kept when unique; a numeric suffix is added
// only on collision, so loop headers keep their source-level names (the
// profiler reports loop candidates by these names, as in the paper's
// Table 3 "for_i" / "for_j").
func (b *Builder) Block(name string) *Block {
	unique := name
	for b.hasBlock(unique) {
		b.nblock++
		unique = fmt.Sprintf("%s.%d", name, b.nblock)
	}
	return b.F.NewBlock(unique)
}

func (b *Builder) hasBlock(name string) bool {
	for _, blk := range b.F.Blocks {
		if blk.Nam == name {
			return true
		}
	}
	return false
}

func (b *Builder) emit(in Instr) Instr {
	if b.B == nil {
		panic("ir: builder has no current block")
	}
	if b.B.Terminator() != nil {
		panic(fmt.Sprintf("ir: emitting into terminated block %s.%s", b.F.Nam, b.B.Nam))
	}
	b.B.Append(in)
	return in
}

// Alloca reserves one stack slot of type t. Like clang, the builder places
// every alloca at the start of the entry block so locals declared inside
// loops do not grow the stack per iteration.
func (b *Builder) Alloca(t Type) Value {
	a := &Alloca{Elem: t}
	entry := b.F.Entry()
	a.parent = entry
	entry.Instrs = append([]Instr{a}, entry.Instrs...)
	return a
}

// Load reads the scalar pointed to by ptr.
func (b *Builder) Load(ptr Value) Value {
	elem := ptr.Type().(*PointerType).Elem
	return b.emit(&Load{Ptr: ptr, Elem: elem}).(Value)
}

// Store writes val through ptr.
func (b *Builder) Store(ptr, val Value) {
	b.emit(&Store{Ptr: ptr, Val: val})
}

// Bin emits x op y.
func (b *Builder) Bin(op BinOp, x, y Value) Value {
	return b.emit(&Bin{Op: op, X: x, Y: y}).(Value)
}

// Add, Sub, Mul, Div and Rem are shorthands for Bin.
func (b *Builder) Add(x, y Value) Value { return b.Bin(Add, x, y) }
func (b *Builder) Sub(x, y Value) Value { return b.Bin(Sub, x, y) }
func (b *Builder) Mul(x, y Value) Value { return b.Bin(Mul, x, y) }
func (b *Builder) Div(x, y Value) Value { return b.Bin(Div, x, y) }
func (b *Builder) Rem(x, y Value) Value { return b.Bin(Rem, x, y) }
func (b *Builder) Xor(x, y Value) Value { return b.Bin(Xor, x, y) }
func (b *Builder) And(x, y Value) Value { return b.Bin(And, x, y) }
func (b *Builder) Or(x, y Value) Value  { return b.Bin(Or, x, y) }
func (b *Builder) Shl(x, y Value) Value { return b.Bin(Shl, x, y) }
func (b *Builder) Shr(x, y Value) Value { return b.Bin(Shr, x, y) }

// Cmp emits a comparison yielding i1.
func (b *Builder) Cmp(pred CmpPred, x, y Value) Value {
	return b.emit(&Cmp{Pred: pred, X: x, Y: y}).(Value)
}

// Field computes &ptr->field.
func (b *Builder) Field(ptr Value, field int) Value {
	return b.emit(&FieldAddr{Ptr: ptr, Field: field}).(Value)
}

// Index computes &ptr[idx].
func (b *Builder) Index(ptr Value, idx Value) Value {
	return b.emit(&IndexAddr{Ptr: ptr, Index: idx}).(Value)
}

// Call emits a direct call.
func (b *Builder) Call(f *Func, args ...Value) Value {
	return b.emit(&Call{Callee: f, Args: args}).(Value)
}

// CallExtern emits a call to the module's canonical extern of the given
// kind.
func (b *Builder) CallExtern(kind ExternKind, args ...Value) Value {
	return b.Call(b.M.Extern(kind), args...)
}

// CallPtr emits an indirect call through the function pointer fn.
func (b *Builder) CallPtr(fn Value, sig *FuncType, args ...Value) Value {
	return b.emit(&CallInd{Fn: fn, Sig: sig, Args: args}).(Value)
}

// Convert emits a value conversion.
func (b *Builder) Convert(kind ConvKind, v Value, to Type) Value {
	return b.emit(&Convert{Kind: kind, Val: v, To: to}).(Value)
}

// FuncAddr takes the address of callee on the executing machine.
func (b *Builder) FuncAddr(callee *Func) Value {
	return b.emit(&FuncAddr{Callee: callee}).(Value)
}

// Br emits an unconditional branch.
func (b *Builder) Br(dst *Block) { b.emit(&Br{Dst: dst}) }

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, then, els *Block) {
	b.emit(&CondBr{Cond: cond, Then: then, Else: els})
}

// Ret emits a return of v.
func (b *Builder) Ret(v Value) { b.emit(&Ret{Val: v}) }

// RetVoid emits a bare return.
func (b *Builder) RetVoid() { b.emit(&Ret{}) }

// Str interns a NUL-terminated string constant as a module global and
// returns a *i8 pointer to its first byte.
func (b *Builder) Str(s string) Value {
	g, ok := b.strs[s]
	if !ok {
		g = &Global{
			Nam:       fmt.Sprintf("str%d", len(b.strs)),
			Elem:      Array(I8, len(s)+1),
			InitBytes: append([]byte(s), 0),
		}
		b.M.AddGlobal(g)
		b.strs[s] = g
	}
	return b.Index(g, Int(0))
}

// GlobalVar declares a module global of type elem with optional element
// initializers.
func (b *Builder) GlobalVar(name string, elem Type, init ...Value) *Global {
	g := &Global{Nam: name, Elem: elem, Init: init}
	b.M.AddGlobal(g)
	return g
}

// For builds a canonical counted loop:
//
//	for i := from; i < to; i += step { body(i) }
//
// The induction variable lives in an alloca so the loop is a well-formed
// natural loop for the profiler and target selector, matching how clang
// lowers a C for loop. body receives the current value of i.
func (b *Builder) For(name string, from, to, step Value, body func(i Value)) {
	iv := b.Alloca(from.Type())
	b.Store(iv, from)
	cond := b.Block(name + ".cond")
	bodyB := b.Block(name + ".body")
	latch := b.Block(name + ".latch")
	exit := b.Block(name + ".exit")
	b.Br(cond)

	b.SetBlock(cond)
	i := b.Load(iv)
	b.CondBr(b.Cmp(LT, i, to), bodyB, exit)

	b.SetBlock(bodyB)
	body(b.Load(iv))
	if b.B.Terminator() == nil {
		b.Br(latch)
	}

	b.SetBlock(latch)
	b.Store(iv, b.Add(b.Load(iv), step))
	b.Br(cond)

	b.SetBlock(exit)
}

// While builds a loop that re-evaluates cond (built by condf) each
// iteration and runs body while it is true.
func (b *Builder) While(name string, condf func() Value, body func()) {
	cond := b.Block(name + ".cond")
	bodyB := b.Block(name + ".body")
	exit := b.Block(name + ".exit")
	b.Br(cond)

	b.SetBlock(cond)
	b.CondBr(condf(), bodyB, exit)

	b.SetBlock(bodyB)
	body()
	if b.B.Terminator() == nil {
		b.Br(cond)
	}

	b.SetBlock(exit)
}

// If builds a two-armed conditional; either arm may be nil.
func (b *Builder) If(cond Value, then func(), els func()) {
	thenB := b.Block("if.then")
	join := b.Block("if.join")
	elseB := join
	if els != nil {
		elseB = b.Block("if.else")
	}
	b.CondBr(cond, thenB, elseB)

	b.SetBlock(thenB)
	if then != nil {
		then()
	}
	if b.B.Terminator() == nil {
		b.Br(join)
	}
	if els != nil {
		b.SetBlock(elseB)
		els()
		if b.B.Terminator() == nil {
			b.Br(join)
		}
	}
	b.SetBlock(join)
}

// Finish renumbers every function in the module; call once construction is
// complete.
func (b *Builder) Finish() {
	for _, f := range b.M.Funcs {
		f.Renumber()
	}
}
