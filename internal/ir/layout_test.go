package ir

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// moveStruct is the paper's running example: struct Move { char from, to;
// double score; } from Figure 3.
func moveStruct() *StructType {
	return Struct("Move",
		StructField{Name: "from", Type: I8},
		StructField{Name: "to", Type: I8},
		StructField{Name: "score", Type: F64},
	)
}

func TestFigure4MoveLayoutDiverges(t *testing.T) {
	// Figure 4: ARM aligns the double to offset 8 (16-byte struct);
	// IA32 packs it at offset 4 (12-byte struct).
	move := moveStruct()

	armLay := LayoutOf(move, arch.ARM32())
	if armLay.Offsets[2] != 8 || armLay.Size != 16 {
		t.Errorf("ARM layout of Move: score at %d size %d, want 8 and 16", armLay.Offsets[2], armLay.Size)
	}
	ia32Lay := LayoutOf(move, arch.IA32())
	if ia32Lay.Offsets[2] != 4 || ia32Lay.Size != 12 {
		t.Errorf("IA32 layout of Move: score at %d size %d, want 4 and 12", ia32Lay.Offsets[2], ia32Lay.Size)
	}
}

func TestPointerFieldLayoutDivergesAcrossWordSize(t *testing.T) {
	// A struct with a pointer member lays out differently on 32- and
	// 64-bit machines — the address-size half of Section 3.2.
	node := Struct("Node",
		StructField{Name: "next", Type: Ptr(I8)},
		StructField{Name: "v", Type: I32},
	)
	l32 := LayoutOf(node, arch.ARM32())
	l64 := LayoutOf(node, arch.X8664())
	if l32.Offsets[1] != 4 || l64.Offsets[1] != 8 {
		t.Errorf("Node.v offsets = %d (arm) / %d (x86-64), want 4 / 8", l32.Offsets[1], l64.Offsets[1])
	}
	if l32.Size != 8 || l64.Size != 16 {
		t.Errorf("Node sizes = %d / %d, want 8 / 16", l32.Size, l64.Size)
	}
}

func TestArrayLayout(t *testing.T) {
	a := Array(moveStruct(), 4)
	lay := LayoutOf(a, arch.ARM32())
	if lay.Size != 64 {
		t.Errorf("[4]Move on ARM = %d bytes, want 64", lay.Size)
	}
	if got := Stride(moveStruct(), arch.ARM32()); got != 16 {
		t.Errorf("Stride(Move) = %d, want 16", got)
	}
}

func TestScalarLayouts(t *testing.T) {
	spec := arch.X8664()
	cases := []struct {
		t    Type
		size int
	}{
		{I1, 1}, {I8, 1}, {I16, 2}, {I32, 4}, {I64, 8},
		{F32, 4}, {F64, 8}, {Ptr(I32), 8},
	}
	for _, c := range cases {
		if got := SizeOf(c.t, spec); got != c.size {
			t.Errorf("SizeOf(%s) = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestLayoutPropertyOffsetsMonotoneAndAligned(t *testing.T) {
	// Property: under any of the modelled architectures, struct field
	// offsets are strictly increasing, each aligned to its field's
	// requirement, and the struct size covers the last field.
	specs := []*arch.Spec{arch.ARM32(), arch.X8664(), arch.IA32(), arch.POWER32BE()}
	scalars := []Type{I8, I16, I32, I64, F32, F64, Ptr(I8)}

	check := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 12 {
			picks = picks[:12]
		}
		fields := make([]StructField, len(picks))
		for i, p := range picks {
			fields[i] = StructField{Name: "f", Type: scalars[int(p)%len(scalars)]}
		}
		st := Struct("S", fields...)
		for _, spec := range specs {
			lay := LayoutOf(st, spec)
			prev := -1
			for i, f := range fields {
				fl := LayoutOf(f.Type, spec)
				off := lay.Offsets[i]
				if off <= prev && i > 0 {
					return false
				}
				if fl.Align > 0 && off%fl.Align != 0 {
					return false
				}
				if off+fl.Size > lay.Size {
					return false
				}
				prev = off
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypeEquality(t *testing.T) {
	if !Ptr(I32).Equal(Ptr(I32)) {
		t.Error("identical pointer types unequal")
	}
	if Ptr(I32).Equal(Ptr(I64)) {
		t.Error("distinct pointer types equal")
	}
	if !Array(I8, 3).Equal(Array(I8, 3)) || Array(I8, 3).Equal(Array(I8, 4)) {
		t.Error("array equality wrong")
	}
	s1 := Signature(I32, I64, F64)
	s2 := Signature(I32, I64, F64)
	if !s1.Equal(s2) {
		t.Error("identical signatures unequal")
	}
	if moveStruct().Equal(Struct("Other", moveStruct().Fields...)) {
		t.Error("structs with different names equal")
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(I1) != arch.ClassInt8 || ClassOf(Ptr(F64)) != arch.ClassPtr {
		t.Error("ClassOf mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("ClassOf(struct) should panic")
		}
	}()
	ClassOf(moveStruct())
}
