package transform

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// buildFoldable returns a function full of compile-time-known work:
//
//	func f(x i32) i32 {
//	  a := (3+4)*2            // foldable
//	  if 1 < 2 { r = x + a } else { r = 0 }  // branch decidable
//	  dead := a * 100          // unused
//	  return r
//	}
func buildFoldable() *ir.Module {
	mod := ir.NewModule("t")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("f", ir.I32, ir.P("x", ir.I32))
	a := b.Mul(b.Add(ir.Int(3), ir.Int(4)), ir.Int(2))
	r := b.Alloca(ir.I32)
	b.If(b.Cmp(ir.LT, ir.Int(1), ir.Int(2)),
		func() { b.Store(r, b.Add(f.Params[0], a)) },
		func() { b.Store(r, ir.Int(0)) })
	b.Mul(a, ir.Int(100)) // dead
	b.Ret(b.Load(r))
	b.Finish()
	return mod
}

func TestFoldAndSimplify(t *testing.T) {
	mod := buildFoldable()
	res := Run(mod)
	if res.Folded < 3 {
		t.Errorf("folded %d instructions, want >= 3 ((3+4), *2, cmp)", res.Folded)
	}
	if res.BranchesFixed != 1 {
		t.Errorf("fixed %d branches, want 1", res.BranchesFixed)
	}
	if res.BlocksRemoved == 0 {
		t.Error("the never-taken else arm should be unreachable")
	}
	if res.Removed == 0 {
		t.Error("the dead multiply should be eliminated")
	}
	if err := ir.Verify(mod); err != nil {
		t.Fatalf("transformed module invalid: %v", err)
	}
	text := mod.Func("f").String()
	if strings.Contains(text, "condbr") {
		t.Errorf("constant branch survived:\n%s", text)
	}
	// The folded sum feeds the add: x + 14.
	if !strings.Contains(text, "i32 14") {
		t.Errorf("expected folded constant 14 in:\n%s", text)
	}
}

func TestFoldPreservesDivByZeroTrap(t *testing.T) {
	mod := ir.NewModule("d")
	b := ir.NewBuilder(mod)
	b.NewFunc("f", ir.I32)
	b.Ret(b.Div(ir.Int(1), ir.Int(0)))
	b.Finish()
	Run(mod)
	if !strings.Contains(mod.Func("f").String(), "div") {
		t.Error("division by zero must not fold away (it traps at run time)")
	}
}

func TestFoldConversions(t *testing.T) {
	mod := ir.NewModule("c")
	b := ir.NewBuilder(mod)
	b.NewFunc("f", ir.I64)
	v := b.Convert(ir.ConvSExt, b.Convert(ir.ConvTrunc, ir.Int(0x1FF), ir.I8), ir.I64)
	b.Ret(v)
	b.Finish()
	Run(mod)
	text := mod.Func("f").String()
	if !strings.Contains(text, "ret i64 -1") {
		t.Errorf("trunc+sext of 0x1FF should fold to -1:\n%s", text)
	}
}

func TestDeadLoadKept(t *testing.T) {
	mod := ir.NewModule("l")
	b := ir.NewBuilder(mod)
	g := b.GlobalVar("g", ir.I32, ir.Int(5))
	b.NewFunc("f", ir.I32)
	b.Load(g) // unused load: must survive (observable under paging)
	b.Ret(ir.Int(0))
	b.Finish()
	Run(mod)
	if !strings.Contains(mod.Func("f").String(), "load") {
		t.Error("dead load was removed; loads are observable under copy-on-demand")
	}
}

func TestRunIsIdempotent(t *testing.T) {
	mod := buildFoldable()
	Run(mod)
	second := Run(mod)
	if second.Folded+second.Removed+second.BranchesFixed+second.BlocksRemoved != 0 {
		t.Errorf("second Run still changed things: %+v", second)
	}
}

func TestFloatFolding(t *testing.T) {
	mod := ir.NewModule("fl")
	b := ir.NewBuilder(mod)
	b.NewFunc("f", ir.F64)
	b.Ret(b.Mul(b.Add(ir.Float(1.5), ir.Float(2.5)), ir.Float(2)))
	b.Finish()
	Run(mod)
	if !strings.Contains(mod.Func("f").String(), "ret f64 8") {
		t.Errorf("float chain should fold to 8:\n%s", mod.Func("f").String())
	}
}
