// Package transform provides the standard cleanup passes the Native
// Offloader pipeline runs before partitioning: constant folding, dead code
// elimination, and branch simplification. They keep the generated
// offloading wrappers tight (the partitioner's gate diamonds and the
// outliner's stubs can leave behind trivially-foldable code) and give the
// profiler less noise to measure.
package transform

import (
	"math"

	"repro/internal/ir"
)

// Result summarizes what a pipeline run changed.
type Result struct {
	Folded        int // instructions replaced by constants
	Removed       int // dead instructions deleted
	BranchesFixed int // conditional branches with constant conditions
	BlocksRemoved int // unreachable blocks dropped
}

// Run applies all passes to every defined function until a fixed point.
func Run(m *ir.Module) Result {
	var total Result
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		for {
			r := foldConstants(f)
			r.BranchesFixed = simplifyBranches(f)
			r.BlocksRemoved = removeUnreachable(f)
			r.Removed = eliminateDead(f)
			total.Folded += r.Folded
			total.Removed += r.Removed
			total.BranchesFixed += r.BranchesFixed
			total.BlocksRemoved += r.BlocksRemoved
			if r.Folded+r.Removed+r.BranchesFixed+r.BlocksRemoved == 0 {
				break
			}
		}
		f.Renumber()
	}
	return total
}

// foldConstants replaces Bin/Cmp/Convert instructions whose operands are
// constants with constant values.
func foldConstants(f *ir.Func) Result {
	var r Result
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			var folded ir.Value
			switch in := in.(type) {
			case *ir.Bin:
				folded = foldBin(in)
			case *ir.Cmp:
				folded = foldCmp(in)
			case *ir.Convert:
				folded = foldConvert(in)
			}
			if folded == nil {
				continue
			}
			replaceUses(f, in.(ir.Instr), folded)
			r.Folded++
		}
	}
	return r
}

func intConst(v ir.Value) (*ir.ConstInt, bool) {
	c, ok := v.(*ir.ConstInt)
	return c, ok
}

func floatConst(v ir.Value) (*ir.ConstFloat, bool) {
	c, ok := v.(*ir.ConstFloat)
	return c, ok
}

func foldBin(in *ir.Bin) ir.Value {
	if x, ok := intConst(in.X); ok {
		if y, ok := intConst(in.Y); ok {
			var v int64
			switch in.Op {
			case ir.Add:
				v = x.V + y.V
			case ir.Sub:
				v = x.V - y.V
			case ir.Mul:
				v = x.V * y.V
			case ir.Div:
				if y.V == 0 {
					return nil // preserve the runtime trap
				}
				v = x.V / y.V
			case ir.Rem:
				if y.V == 0 {
					return nil
				}
				v = x.V % y.V
			case ir.And:
				v = x.V & y.V
			case ir.Or:
				v = x.V | y.V
			case ir.Xor:
				v = x.V ^ y.V
			case ir.Shl:
				v = x.V << (uint64(y.V) & 63)
			case ir.Shr:
				v = x.V >> (uint64(y.V) & 63)
			}
			return &ir.ConstInt{Typ: x.Typ, V: v}
		}
	}
	if x, ok := floatConst(in.X); ok {
		if y, ok := floatConst(in.Y); ok {
			var v float64
			switch in.Op {
			case ir.Add:
				v = x.V + y.V
			case ir.Sub:
				v = x.V - y.V
			case ir.Mul:
				v = x.V * y.V
			case ir.Div:
				v = x.V / y.V
			default:
				return nil
			}
			return &ir.ConstFloat{Typ: x.Typ, V: v}
		}
	}
	return nil
}

func foldCmp(in *ir.Cmp) ir.Value {
	var lt, eq, known bool
	if x, ok := intConst(in.X); ok {
		if y, ok := intConst(in.Y); ok {
			lt, eq, known = x.V < y.V, x.V == y.V, true
		}
	}
	if x, ok := floatConst(in.X); ok {
		if y, ok := floatConst(in.Y); ok {
			lt, eq, known = x.V < y.V, x.V == y.V, true
		}
	}
	if !known {
		return nil
	}
	var res bool
	switch in.Pred {
	case ir.EQ:
		res = eq
	case ir.NE:
		res = !eq
	case ir.LT:
		res = lt
	case ir.LE:
		res = lt || eq
	case ir.GT:
		res = !lt && !eq
	case ir.GE:
		res = !lt
	}
	return ir.Bool(res)
}

func foldConvert(in *ir.Convert) ir.Value {
	switch in.Kind {
	case ir.ConvTrunc, ir.ConvZExt, ir.ConvSExt:
		c, ok := intConst(in.Val)
		if !ok {
			return nil
		}
		to, ok := in.To.(*ir.IntType)
		if !ok {
			return nil
		}
		v := c.V
		switch in.Kind {
		case ir.ConvTrunc:
			shift := uint(64 - min(to.Bits, 64))
			v = int64(uint64(v)<<shift) >> shift
		case ir.ConvZExt:
			shift := uint(64 - min(c.Typ.Bits, 64))
			v = int64(uint64(v) << shift >> shift)
		}
		return &ir.ConstInt{Typ: to, V: v}
	case ir.ConvIntToFP:
		c, ok := intConst(in.Val)
		if !ok {
			return nil
		}
		to, ok := in.To.(*ir.FloatType)
		if !ok {
			return nil
		}
		return &ir.ConstFloat{Typ: to, V: float64(c.V)}
	case ir.ConvFPToInt:
		c, ok := floatConst(in.Val)
		if !ok || math.IsNaN(c.V) || math.IsInf(c.V, 0) {
			return nil
		}
		to, ok := in.To.(*ir.IntType)
		if !ok {
			return nil
		}
		return &ir.ConstInt{Typ: to, V: int64(c.V)}
	}
	return nil
}

// simplifyBranches turns condbr-on-constant into br.
func simplifyBranches(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		term, ok := b.Terminator().(*ir.CondBr)
		if !ok {
			continue
		}
		c, ok := intConst(term.Cond)
		if !ok {
			continue
		}
		dst := term.Else
		if c.V != 0 {
			dst = term.Then
		}
		b.Instrs = b.Instrs[:len(b.Instrs)-1]
		b.Append(&ir.Br{Dst: dst})
		n++
	}
	return n
}

// removeUnreachable drops blocks not reachable from the entry.
func removeUnreachable(f *ir.Func) int {
	reach := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		if t := b.Terminator(); t != nil {
			for _, s := range ir.Successors(t) {
				visit(s)
			}
		}
	}
	visit(f.Entry())
	var kept []*ir.Block
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	return removed
}

// eliminateDead removes value-producing instructions with no uses and no
// side effects. Loads are kept: under copy-on-demand paging they are
// observable (they move pages), so deleting them would change the measured
// system.
func eliminateDead(f *ir.Func) int {
	used := make(map[ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, op := range in.Operands() {
				used[op] = true
			}
		}
	}
	removed := 0
	for _, b := range f.Blocks {
		var kept []ir.Instr
		for _, in := range b.Instrs {
			if isPure(in) && !used[in] {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}

func isPure(in ir.Instr) bool {
	switch in.(type) {
	case *ir.Bin, *ir.Cmp, *ir.Convert, *ir.FieldAddr, *ir.IndexAddr, *ir.FuncAddr:
		return true
	}
	return false
}

// replaceUses substitutes new for old across the whole function.
func replaceUses(f *ir.Func, old ir.Instr, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in != old {
				in.ReplaceOperand(old, new)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
