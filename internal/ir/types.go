// Package ir defines the intermediate representation the Native Offloader
// compiler analyzes and transforms. It is deliberately LLVM-shaped (typed
// values, basic blocks, explicit allocas, address-computation instructions)
// because every pass in the paper (Figure 2) is described as an IR-level
// transformation: partitioning at IR level is what lets one source program
// target both the mobile and the server architecture.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/arch"
)

// Type is the interface implemented by all IR types.
type Type interface {
	String() string
	// Equal reports structural type equality.
	Equal(Type) bool
}

// VoidType is the type of instructions that produce no value.
type VoidType struct{}

// IntType is an integer type of the given bit width (1, 8, 16, 32 or 64).
// Width 1 is the result type of comparisons.
type IntType struct{ Bits int }

// FloatType is a floating point type of 32 or 64 bits.
type FloatType struct{ Bits int }

// PointerType points to values of type Elem. Pointers to FuncType values
// are function pointers, the subject of the paper's Section 3.4 mapping.
type PointerType struct{ Elem Type }

// ArrayType is a fixed-length sequence of Elem values.
type ArrayType struct {
	Elem Type
	Len  int
}

// StructField is one named member of a struct type.
type StructField struct {
	Name string
	Type Type
}

// StructType is a C-like struct. Field offsets are not part of the type:
// they are computed per target architecture by Layout, which is exactly the
// ambiguity the paper's memory layout realignment (Section 3.2, Figure 4)
// removes.
type StructType struct {
	Name   string
	Fields []StructField
}

// FuncType is a function signature.
type FuncType struct {
	Params []Type
	Ret    Type // VoidType for none
}

// Canonical singleton types. Types with parameters (pointer, array, struct,
// func) are built with the constructors below.
var (
	Void = &VoidType{}
	I1   = &IntType{Bits: 1}
	I8   = &IntType{Bits: 8}
	I16  = &IntType{Bits: 16}
	I32  = &IntType{Bits: 32}
	I64  = &IntType{Bits: 64}
	F32  = &FloatType{Bits: 32}
	F64  = &FloatType{Bits: 64}
)

// Ptr returns the pointer type *elem.
func Ptr(elem Type) *PointerType { return &PointerType{Elem: elem} }

// Array returns the array type [n]elem.
func Array(elem Type, n int) *ArrayType { return &ArrayType{Elem: elem, Len: n} }

// Struct returns a named struct type with the given fields.
func Struct(name string, fields ...StructField) *StructType {
	return &StructType{Name: name, Fields: fields}
}

// Signature returns a function type.
func Signature(ret Type, params ...Type) *FuncType {
	return &FuncType{Params: params, Ret: ret}
}

func (*VoidType) String() string    { return "void" }
func (t *IntType) String() string   { return fmt.Sprintf("i%d", t.Bits) }
func (t *FloatType) String() string { return fmt.Sprintf("f%d", t.Bits) }
func (t *PointerType) String() string {
	return "*" + t.Elem.String()
}
func (t *ArrayType) String() string {
	return fmt.Sprintf("[%d]%s", t.Len, t.Elem.String())
}
func (t *StructType) String() string {
	if t.Name != "" {
		return "%" + t.Name
	}
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.Type.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (t *FuncType) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("func(%s) %s", strings.Join(parts, ", "), t.Ret.String())
}

func (*VoidType) Equal(o Type) bool { _, ok := o.(*VoidType); return ok }
func (t *IntType) Equal(o Type) bool {
	u, ok := o.(*IntType)
	return ok && t.Bits == u.Bits
}
func (t *FloatType) Equal(o Type) bool {
	u, ok := o.(*FloatType)
	return ok && t.Bits == u.Bits
}
func (t *PointerType) Equal(o Type) bool {
	u, ok := o.(*PointerType)
	return ok && t.Elem.Equal(u.Elem)
}
func (t *ArrayType) Equal(o Type) bool {
	u, ok := o.(*ArrayType)
	return ok && t.Len == u.Len && t.Elem.Equal(u.Elem)
}
func (t *StructType) Equal(o Type) bool {
	u, ok := o.(*StructType)
	if !ok || len(t.Fields) != len(u.Fields) || t.Name != u.Name {
		return false
	}
	for i := range t.Fields {
		if !t.Fields[i].Type.Equal(u.Fields[i].Type) {
			return false
		}
	}
	return true
}
func (t *FuncType) Equal(o Type) bool {
	u, ok := o.(*FuncType)
	if !ok || len(t.Params) != len(u.Params) || !t.Ret.Equal(u.Ret) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].Equal(u.Params[i]) {
			return false
		}
	}
	return true
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool { _, ok := t.(*PointerType); return ok }

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool { _, ok := t.(*IntType); return ok }

// IsFloat reports whether t is a floating point type.
func IsFloat(t Type) bool { _, ok := t.(*FloatType); return ok }

// IsFuncPtr reports whether t is a pointer to a function type.
func IsFuncPtr(t Type) bool {
	p, ok := t.(*PointerType)
	if !ok {
		return false
	}
	_, ok = p.Elem.(*FuncType)
	return ok
}

// ClassOf maps a scalar IR type to its architecture primitive class.
// It panics on aggregate or void types, which have no single class.
func ClassOf(t Type) arch.Class {
	switch t := t.(type) {
	case *IntType:
		switch t.Bits {
		case 1, 8:
			return arch.ClassInt8
		case 16:
			return arch.ClassInt16
		case 32:
			return arch.ClassInt32
		case 64:
			return arch.ClassInt64
		}
	case *FloatType:
		if t.Bits == 32 {
			return arch.ClassFloat32
		}
		return arch.ClassFloat64
	case *PointerType:
		return arch.ClassPtr
	}
	panic(fmt.Sprintf("ir: no primitive class for type %s", t))
}
