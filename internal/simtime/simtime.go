// Package simtime defines the simulated clock shared by the interpreter,
// the network model and the energy model. Everything in this reproduction
// is charged in picoseconds of virtual time, which keeps the full
// 17-program evaluation deterministic and runnable in seconds of real time.
package simtime

import "fmt"

// PS is a duration or instant in simulated picoseconds.
type PS int64

// Convenient units.
const (
	Nanosecond  PS = 1000
	Microsecond PS = 1000 * Nanosecond
	Millisecond PS = 1000 * Microsecond
	Second      PS = 1000 * Millisecond
)

// Seconds converts to floating point seconds.
func (t PS) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts to floating point milliseconds.
func (t PS) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds builds a PS duration from seconds.
func FromSeconds(s float64) PS { return PS(s * float64(Second)) }

func (t PS) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dps", int64(t))
}

// Max returns the later of two instants.
func Max(a, b PS) PS {
	if a > b {
		return a
	}
	return b
}
