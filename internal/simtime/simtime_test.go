package simtime

import "testing"

func TestUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Error("unit ladder inconsistent")
	}
}

func TestConversions(t *testing.T) {
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %f", got)
	}
	if got := (3 * Second).Millis(); got != 3000 {
		t.Errorf("Millis = %f", got)
	}
	if FromSeconds(0.25) != 250*Millisecond {
		t.Error("FromSeconds inconsistent")
	}
}

func TestString(t *testing.T) {
	cases := map[PS]string{
		2 * Second:         "2.000s",
		1500 * Microsecond: "1.500ms",
		250 * Microsecond:  "250.000us",
		999:                "999ps",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestMax(t *testing.T) {
	if Max(Second, Millisecond) != Second || Max(Millisecond, Second) != Second {
		t.Error("Max wrong")
	}
}
