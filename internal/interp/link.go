package interp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
)

// linkage is the address assignment one linker produced for one module:
// per-machine function addresses and loaded global addresses. It is built
// once (NewMachine or Compile) and read-only afterwards, so a shared
// Program can hand the same linkage to every instance.
type linkage struct {
	// funcAddr assigns this linker's address to each function; inverse in
	// funcByAddr. Two machines' linkers deliberately disagree.
	funcAddr   map[*ir.Func]uint32
	funcByAddr map[uint32]*ir.Func

	globalAddr map[*ir.Global]uint32
}

// newLinkage links and places mod: function addresses from funcBase
// (name-sorted when shuffleFuncs, modelling a different linker), UVA-homed
// globals at their compiler-assigned addresses, machine-local globals laid
// out from mem.LocalBase (shuffled placement leaves a different gap and
// order). It assigns addresses only; writeGlobalInits writes the values.
func newLinkage(mod *ir.Module, std *arch.Spec, funcBase uint32, shuffleFuncs, shuffleGlobals bool) *linkage {
	lay := &linkage{
		funcAddr:   make(map[*ir.Func]uint32, len(mod.Funcs)),
		funcByAddr: make(map[uint32]*ir.Func, len(mod.Funcs)),
		globalAddr: make(map[*ir.Global]uint32, len(mod.Globals)),
	}
	funcs := make([]*ir.Func, len(mod.Funcs))
	copy(funcs, mod.Funcs)
	if shuffleFuncs {
		sort.Slice(funcs, func(i, j int) bool { return funcs[i].Nam < funcs[j].Nam })
	}
	addr := funcBase
	for _, f := range funcs {
		lay.funcAddr[f] = addr
		lay.funcByAddr[addr] = f
		addr += 16
	}

	locals := make([]*ir.Global, 0, len(mod.Globals))
	for _, g := range mod.Globals {
		if g.Home == ir.HomeMachine {
			locals = append(locals, g)
		} else {
			lay.globalAddr[g] = g.UVAAddr
		}
	}
	if shuffleGlobals {
		sort.Slice(locals, func(i, j int) bool { return locals[i].Nam < locals[j].Nam })
	}
	gaddr := mem.LocalBase
	if shuffleGlobals {
		// A different linker leaves a different gap before the data
		// segment, so even the first global lands elsewhere.
		gaddr += 0x40
	}
	for _, g := range locals {
		l := ir.LayoutOf(g.Elem, std)
		a := alignUp32(gaddr, uint32(max(l.Align, 1)))
		lay.globalAddr[g] = a
		gaddr = a + uint32(l.Size)
	}
	return lay
}

// writeGlobalInits writes global initial values into mm at the addresses
// lay assigned. UVA-homed globals are written only when initUVA (the mobile
// machine loads them; the server receives those pages via copy-on-demand).
func writeGlobalInits(mm *mem.Memory, mod *ir.Module, std *arch.Spec, lay *linkage, initUVA bool) error {
	for _, g := range mod.Globals {
		if g.Home == ir.HomeUVA && !initUVA {
			continue
		}
		if err := writeGlobalInit(mm, std, lay, g); err != nil {
			return err
		}
	}
	return nil
}

func writeGlobalInit(mm *mem.Memory, std *arch.Spec, lay *linkage, g *ir.Global) error {
	base := lay.globalAddr[g]
	if len(g.InitBytes) > 0 {
		return mm.WriteBytes(base, g.InitBytes)
	}
	if len(g.Init) == 0 {
		return nil // zero-initialized; pages fault in as zeroes
	}
	elem := g.Elem
	stride := 0
	if at, ok := g.Elem.(*ir.ArrayType); ok {
		elem = at.Elem
		stride = ir.Stride(elem, std)
	}
	for i, v := range g.Init {
		addr := base + uint32(i*stride)
		if err := writeScalarRaw(mm, std, addr, elem, lay.constBits(v)); err != nil {
			return err
		}
	}
	return nil
}

// writeScalarRaw is the loader-time scalar store: standard layout, no
// access-layout charges (loading is not simulated execution).
func writeScalarRaw(mm *mem.Memory, std *arch.Spec, addr uint32, elem ir.Type, bits uint64) error {
	size := std.Size(ir.ClassOf(elem))
	if size == 0 {
		return fmt.Errorf("interp: global init of unsupported type %s", elem)
	}
	raw := bits
	if ft, ok := elem.(*ir.FloatType); ok && ft.Bits == 32 {
		raw = uint64(math.Float32bits(float32(math.Float64frombits(bits))))
	}
	return mm.WriteBytes(addr, disassemble(raw, size, std.Endian))
}

// constBits evaluates a loader-time constant to its register representation.
func (lay *linkage) constBits(v ir.Value) uint64 {
	switch v := v.(type) {
	case *ir.ConstInt:
		return uint64(v.V)
	case *ir.ConstFloat:
		return floatBits(v.Typ, v.V)
	case *ir.ConstNull:
		return 0
	case *ir.ConstUVA:
		return uint64(v.Addr)
	case *ir.Func:
		return uint64(lay.funcAddr[v])
	case *ir.Global:
		return uint64(lay.globalAddr[v])
	}
	panic(fmt.Sprintf("interp: non-constant global initializer %T", v))
}
