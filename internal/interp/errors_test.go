package interp

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
)

// buildAndRun lowers and runs a one-function module, returning the error.
func buildAndRun(t *testing.T, build func(b *ir.Builder)) error {
	t.Helper()
	mod := ir.NewModule("err")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	build(b)
	if b.B.Terminator() == nil {
		b.Ret(ir.Int(0))
	}
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, err := NewMachine(Config{Name: "err", Spec: arch.ARM32(), Mod: mod})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RunMain()
	return err
}

func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *ir.Builder)
		want  string
	}{
		{"printf missing argument", func(b *ir.Builder) {
			b.CallExtern(ir.ExternPrintf, b.Str("%d %d\n"), ir.Int(1))
		}, "missing argument"},
		{"printf bad verb", func(b *ir.Builder) {
			b.CallExtern(ir.ExternPrintf, b.Str("%q\n"), ir.Int(1))
		}, "unsupported"},
		{"scanf exhausted", func(b *ir.Builder) {
			dst := b.Alloca(ir.I32)
			b.CallExtern(ir.ExternScanf, b.Str("%d"), dst)
		}, "stdin exhausted"},
		{"read on unopened fd", func(b *ir.Builder) {
			buf := b.CallExtern(ir.ExternUMalloc, ir.Int(8))
			b.CallExtern(ir.ExternFileRead, ir.Int(9), buf, ir.Int(8))
		}, "closed fd"},
		{"open missing file", func(b *ir.Builder) {
			b.CallExtern(ir.ExternFileOpen, b.Str("nope.bin"))
		}, "no such file"},
		{"u_free outside heap", func(b *ir.Builder) {
			b.CallExtern(ir.ExternUFree, ir.Int(0x100))
		}, "outside heap"},
		{"indirect call to garbage address", func(b *ir.Builder) {
			sig := ir.Signature(ir.I32)
			fp := b.Convert(ir.ConvBitcast, ir.Int64(0x1234), ir.Ptr(sig))
			b.CallPtr(fp, sig)
		}, "no function at address"},
		{"remainder by zero", func(b *ir.Builder) {
			b.Rem(ir.Int(5), ir.Int(0))
		}, "remainder by zero"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := buildAndRun(t, c.build)
			if err == nil {
				t.Fatalf("expected an error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestRunMainRequiresMain(t *testing.T) {
	mod := ir.NewModule("nomain")
	b := ir.NewBuilder(mod)
	b.NewFunc("helper", ir.I32)
	b.Ret(ir.Int(1))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "n", Spec: arch.ARM32(), Mod: mod})
	if _, err := m.RunMain(); err == nil {
		t.Error("RunMain without main should fail")
	}
}

func TestCallFuncArityChecked(t *testing.T) {
	mod := ir.NewModule("arity")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("two", ir.I32, ir.P("a", ir.I32), ir.P("b", ir.I32))
	b.Ret(b.Add(f.Params[0], f.Params[1]))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "a", Spec: arch.ARM32(), Mod: mod})
	if _, err := m.CallFunc(f, 1); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestUnloweredModuleRejected(t *testing.T) {
	mod := ir.NewModule("raw")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	g := b.GlobalVar("g", ir.I32)
	b.Ret(b.Load(g))
	b.Finish()
	// Deliberately skip ir.Lower.
	m, _ := NewMachine(Config{Name: "raw", Spec: arch.ARM32(), Mod: mod})
	if _, err := m.RunMain(); err == nil || !strings.Contains(err.Error(), "unlowered") {
		t.Errorf("unlowered access should be diagnosed, got %v", err)
	}
}

func TestGateWithoutRuntimeNeverOffloads(t *testing.T) {
	mod := ir.NewModule("g")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	g := b.CallExtern(ir.ExternGate, ir.Int(1))
	b.Ret(b.Convert(ir.ConvZExt, g, ir.I32))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "g", Spec: arch.ARM32(), Mod: mod})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Error("gate without a runtime must choose local execution")
	}
}

func TestOffloadIntrinsicsRequireRuntime(t *testing.T) {
	for _, kind := range []ir.ExternKind{ir.ExternOffload, ir.ExternArg, ir.ExternSendReturn} {
		mod := ir.NewModule("x")
		b := ir.NewBuilder(mod)
		b.NewFunc("main", ir.I32)
		b.CallExtern(kind, ir.Int64(1))
		b.Ret(ir.Int(0))
		b.Finish()
		ir.Lower(mod, arch.ARM32(), arch.ARM32())
		m, _ := NewMachine(Config{Name: "x", Spec: arch.ARM32(), Mod: mod})
		if _, err := m.RunMain(); err == nil {
			t.Errorf("%v without a runtime should fail", kind)
		}
	}
}
