package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
)

func buildSum(mod *ir.Module) {
	b := ir.NewBuilder(mod)
	f := b.NewFunc("sum", ir.I32, ir.P("n", ir.I32))
	s := b.Alloca(ir.I32)
	b.Store(s, ir.Int(0))
	b.For("for_i", ir.Int(0), f.Params[0], ir.Int(1), func(i ir.Value) {
		b.Store(s, b.Add(b.Load(s), i))
	})
	b.Ret(b.Load(s))

	b.NewFunc("main", ir.I32)
	b.Ret(b.Call(f, ir.Int(100)))
	b.Finish()
}

func newMachine(t *testing.T, mod *ir.Module, spec, std *arch.Spec) *Machine {
	t.Helper()
	ir.Lower(mod, spec, std)
	m, err := NewMachine(Config{Name: "test", Spec: spec, Std: std, Mod: mod})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunSum(t *testing.T) {
	mod := ir.NewModule("sum")
	buildSum(mod)
	m := newMachine(t, mod, arch.ARM32(), arch.ARM32())
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 4950 {
		t.Errorf("sum(100) = %d, want 4950", code)
	}
	if m.Clock <= 0 || m.Steps <= 0 {
		t.Error("clock/steps not advancing")
	}
}

func TestPerformanceRatioObserved(t *testing.T) {
	// The same binary must run ~5.4-5.9x slower on the mobile machine
	// (Table 1's performance gap).
	modA := ir.NewModule("a")
	buildSum(modA)
	ma := newMachine(t, modA, arch.ARM32(), arch.ARM32())
	ma.RunMain()

	modB := ir.NewModule("b")
	buildSum(modB)
	mb := newMachine(t, modB, arch.X8664(), arch.X8664())
	mb.RunMain()

	r := float64(ma.Clock) / float64(mb.Clock)
	if r < 5.3 || r > 5.9 {
		t.Errorf("observed mobile/server time ratio %.2f, want within Table 1 band", r)
	}
}

func TestCostScaleAmplifies(t *testing.T) {
	mod := ir.NewModule("s")
	buildSum(mod)
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m1, _ := NewMachine(Config{Name: "x1", Spec: arch.ARM32(), Mod: mod})
	m1.RunMain()
	m2, _ := NewMachine(Config{Name: "x10", Spec: arch.ARM32(), Mod: mod, CostScale: 10})
	m2.RunMain()
	if m2.Clock != 10*m1.Clock {
		t.Errorf("CostScale=10 clock %v, want exactly 10x %v", m2.Clock, m1.Clock)
	}
}

// buildMoveWriter builds a program writing Move{from:1,to:2,score:3.5} into
// a u_malloc'd struct and returning its address truncated to i32.
func buildMoveProgram(mod *ir.Module) *ir.StructType {
	move := ir.Struct("Move",
		ir.StructField{Name: "from", Type: ir.I8},
		ir.StructField{Name: "to", Type: ir.I8},
		ir.StructField{Name: "score", Type: ir.F64},
	)
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	raw := b.CallExtern(ir.ExternUMalloc, ir.Int(16))
	p := b.Convert(ir.ConvBitcast, raw, ir.Ptr(move))
	b.Store(b.Field(p, 0), ir.Int8(1))
	b.Store(b.Field(p, 1), ir.Int8(2))
	b.Store(b.Field(p, 2), ir.Float(3.5))
	b.Ret(b.Convert(ir.ConvBitcast, b.Convert(ir.ConvTrunc, b.Convert(ir.ConvBitcast, p, ir.I64), ir.I32), ir.I32))
	b.Finish()
	return move
}

func TestFigure4CrossLayoutBugAndFix(t *testing.T) {
	// Mobile (ARM32) writes a Move struct into UVA memory with its own
	// layout. A server that laid the struct out per IA32 rules reads
	// score from offset 4 — garbage. With realignment (standard=ARM32 on
	// both), it reads 3.5.
	mobMod := ir.NewModule("mobile")
	move := buildMoveProgram(mobMod)
	ir.Lower(mobMod, arch.ARM32(), arch.ARM32())
	mobile, err := NewMachine(Config{Name: "mobile", Spec: arch.ARM32(), Mod: mobMod})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mobile.RunMain()
	if err != nil {
		t.Fatal(err)
	}

	readScore := func(std *arch.Spec) float64 {
		srvMod := ir.NewModule("server")
		b := ir.NewBuilder(srvMod)
		b.NewFunc("main", ir.I32, ir.P("mv", ir.Ptr(move)))
		sc := b.Load(b.Field(b.F.Params[0], 2))
		out := srvMod.AddGlobal(&ir.Global{Nam: "out", Elem: ir.F64})
		b.Store(out, sc)
		b.Ret(ir.Int(0))
		b.Finish()
		ir.Lower(srvMod, arch.IA32(), std)

		shared := mem.New()
		shared.Fault = func(pn uint32) ([]byte, error) { return mobile.Mem.PageData(pn), nil }
		srv, err := NewMachine(Config{Name: "server", Spec: arch.IA32(), Std: std, Mod: srvMod, Mem: shared, FuncBase: mem.FuncBaseServer})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.CallFunc(srvMod.Func("main"), uint64(uint32(addr))); err != nil {
			t.Fatal(err)
		}
		bits, _ := shared.ReadUint(srv.GlobalAddr(srvMod.Global("out")), 8)
		return math.Float64frombits(bits)
	}

	if got := readScore(arch.IA32()); got == 3.5 {
		t.Error("un-realigned server read the correct score; the layout bug should manifest")
	}
	if got := readScore(arch.ARM32()); got != 3.5 {
		t.Errorf("realigned server read %v, want 3.5", got)
	}
}

func TestEndiannessTranslation(t *testing.T) {
	// A big-endian server reading mobile-written (little-endian) data
	// must see the right value when lowered against the mobile standard.
	mobMod := ir.NewModule("m")
	b := ir.NewBuilder(mobMod)
	b.NewFunc("main", ir.I32)
	p := b.CallExtern(ir.ExternUMalloc, ir.Int(8))
	ip := b.Convert(ir.ConvBitcast, p, ir.Ptr(ir.I32))
	b.Store(ip, ir.Int(0x11223344))
	b.Ret(b.Convert(ir.ConvTrunc, b.Convert(ir.ConvBitcast, ip, ir.I64), ir.I32))
	b.Finish()
	ir.Lower(mobMod, arch.ARM32(), arch.ARM32())
	mobile, _ := NewMachine(Config{Name: "m", Spec: arch.ARM32(), Mod: mobMod})
	addr, err := mobile.RunMain()
	if err != nil {
		t.Fatal(err)
	}

	read := func(std *arch.Spec) int32 {
		srvMod := ir.NewModule("s")
		sb := ir.NewBuilder(srvMod)
		sb.NewFunc("main", ir.I32, ir.P("p", ir.Ptr(ir.I32)))
		sb.Ret(sb.Load(sb.F.Params[0]))
		sb.Finish()
		ir.Lower(srvMod, arch.POWER32BE(), std)
		shared := mem.New()
		shared.Fault = func(pn uint32) ([]byte, error) { return mobile.Mem.PageData(pn), nil }
		srv, _ := NewMachine(Config{Name: "s", Spec: arch.POWER32BE(), Std: std, Mod: srvMod, Mem: shared})
		v, err := srv.CallFunc(srvMod.Func("main"), uint64(uint32(addr)))
		if err != nil {
			t.Fatal(err)
		}
		return int32(v)
	}

	if got := read(arch.POWER32BE()); got == 0x11223344 {
		t.Error("big-endian server without translation read the right value; expected byte-swapped garbage")
	}
	if got := read(arch.ARM32()); got != 0x11223344 {
		t.Errorf("with endianness translation, read 0x%x, want 0x11223344", got)
	}
}

func TestMachineLocalGlobalAddressesDiverge(t *testing.T) {
	mod := ir.NewModule("g")
	b := ir.NewBuilder(mod)
	b.GlobalVar("alpha", ir.I32, ir.Int(5))
	b.GlobalVar("beta", ir.I64)
	b.NewFunc("main", ir.I32)
	b.Ret(ir.Int(0))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())

	m1, _ := NewMachine(Config{Name: "mob", Spec: arch.ARM32(), Mod: mod})
	mod2 := mod.Clone("srv")
	ir.Lower(mod2, arch.X8664(), arch.ARM32())
	m2, _ := NewMachine(Config{Name: "srv", Spec: arch.X8664(), Std: arch.ARM32(), Mod: mod2, ShuffleGlobals: true, FuncBase: mem.FuncBaseServer})

	a1 := m1.GlobalAddr(mod.Global("alpha"))
	a2 := m2.GlobalAddr(mod2.Global("alpha"))
	if a1 == a2 {
		t.Error("machine-local globals should land at different addresses on different machines")
	}
}

func TestFunctionAddressesDivergeAndResolve(t *testing.T) {
	mod := ir.NewModule("f")
	b := ir.NewBuilder(mod)
	b.NewFunc("helper", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.Add(b.F.Params[0], ir.Int(1)))
	b.NewFunc("main", ir.I32)
	fp := b.FuncAddr(mod.Func("helper"))
	b.Ret(b.CallPtr(fp, mod.Func("helper").Sig, ir.Int(41)))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())

	m1, _ := NewMachine(Config{Name: "mob", Spec: arch.ARM32(), Mod: mod})
	code, err := m1.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Errorf("indirect call = %d, want 42", code)
	}

	mod2 := mod.Clone("srv")
	ir.Lower(mod2, arch.X8664(), arch.ARM32())
	m2, _ := NewMachine(Config{Name: "srv", Spec: arch.X8664(), Std: arch.ARM32(), Mod: mod2, FuncBase: mem.FuncBaseServer, ShuffleFuncs: true})
	if m1.FuncAddr(mod.Func("helper")) == m2.FuncAddr(mod2.Func("helper")) {
		t.Error("function addresses should differ across machines")
	}
	// A mobile address is meaningless on the server without mapping.
	if _, err := m2.ResolveFptr(m1.FuncAddr(mod.Func("helper")), false); err == nil {
		t.Error("server resolved a mobile function address without the s2m map")
	}
}

func TestPrintfFormatting(t *testing.T) {
	mod := ir.NewModule("p")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	b.CallExtern(ir.ExternPrintf, b.Str("n=%d f=%.2f s=%s c=%c x=%x%%\n"),
		ir.Int(-7), ir.Float(2.5), b.Str("ok"), ir.Int('Z'), ir.Int(255))
	b.Ret(ir.Int(0))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	io := NewStdIO(nil)
	m, _ := NewMachine(Config{Name: "p", Spec: arch.ARM32(), Mod: mod, IO: io})
	if _, err := m.RunMain(); err != nil {
		t.Fatal(err)
	}
	want := "n=-7 f=2.50 s=ok c=Z x=ff%\n"
	if io.Out.String() != want {
		t.Errorf("printf output %q, want %q", io.Out.String(), want)
	}
}

func TestScanfReadsInput(t *testing.T) {
	mod := ir.NewModule("s")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	x := b.Alloca(ir.I32)
	y := b.Alloca(ir.I32)
	b.CallExtern(ir.ExternScanf, b.Str("%d,%d"), x, y)
	b.Ret(b.Add(b.Load(x), b.Load(y)))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	io := NewStdIO([]int64{30, 12})
	m, _ := NewMachine(Config{Name: "s", Spec: arch.ARM32(), Mod: mod, IO: io})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Errorf("scanf sum = %d, want 42", code)
	}
}

func TestFileIO(t *testing.T) {
	mod := ir.NewModule("f")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	fd := b.CallExtern(ir.ExternFileOpen, b.Str("data.bin"))
	buf := b.CallExtern(ir.ExternUMalloc, ir.Int(16))
	n := b.CallExtern(ir.ExternFileRead, fd, buf, ir.Int(16))
	b.CallExtern(ir.ExternFileClose, fd)
	first := b.Load(b.Convert(ir.ConvBitcast, buf, ir.Ptr(ir.I8)))
	b.Ret(b.Add(n, b.Convert(ir.ConvZExt, first, ir.I32)))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	io := NewStdIO(nil)
	io.AddFile("data.bin", []byte{9, 2, 3, 4})
	m, _ := NewMachine(Config{Name: "f", Spec: arch.ARM32(), Mod: mod, IO: io})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 4+9 {
		t.Errorf("read result = %d, want 13", code)
	}
}

func TestExitError(t *testing.T) {
	mod := ir.NewModule("e")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	b.CallExtern(ir.ExternExit, ir.Int(3))
	b.Ret(ir.Int(0))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "e", Spec: arch.ARM32(), Mod: mod})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Errorf("exit code = %d, want 3", code)
	}
}

func TestMemcpyMemset(t *testing.T) {
	mod := ir.NewModule("m")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	src := b.CallExtern(ir.ExternUMalloc, ir.Int(64))
	dst := b.CallExtern(ir.ExternUMalloc, ir.Int(64))
	b.CallExtern(ir.ExternMemset, src, ir.Int(7), ir.Int(64))
	b.CallExtern(ir.ExternMemcpy, dst, src, ir.Int(64))
	last := b.Index(b.Convert(ir.ConvBitcast, dst, ir.Ptr(ir.I8)), ir.Int(63))
	b.Ret(b.Convert(ir.ConvZExt, b.Load(last), ir.I32))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "m", Spec: arch.ARM32(), Mod: mod})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 7 {
		t.Errorf("memcpy/memset = %d, want 7", code)
	}
}

func TestGlobalFuncPtrTableInit(t *testing.T) {
	// The chess example's evals table: a global array of function
	// pointers must be initialized with this machine's addresses and be
	// callable indirectly.
	mod := ir.NewModule("t")
	b := ir.NewBuilder(mod)
	sig := ir.Signature(ir.I32, ir.I32)
	f1 := b.NewFunc("one", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.Add(b.F.Params[0], ir.Int(1)))
	f2 := b.NewFunc("two", ir.I32, ir.P("x", ir.I32))
	b.Ret(b.Add(b.F.Params[0], ir.Int(2)))
	tbl := b.GlobalVar("tbl", ir.Array(ir.Ptr(sig), 2), f1, f2)
	b.NewFunc("main", ir.I32)
	fp := b.Load(b.Index(tbl, ir.Int(1)))
	b.Ret(b.CallPtr(fp, sig, ir.Int(40)))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "t", Spec: arch.ARM32(), Mod: mod})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Errorf("fptr table call = %d, want 42", code)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	mod := ir.NewModule("o")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("rec", ir.I32, ir.P("n", ir.I32))
	big := b.Alloca(ir.Array(ir.I64, 4096))
	_ = big
	b.Ret(b.Call(f, b.Add(b.F.Params[0], ir.Int(1))))
	b.NewFunc("main", ir.I32)
	b.Ret(b.Call(f, ir.Int(0)))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "o", Spec: arch.ARM32(), Mod: mod})
	if _, err := m.RunMain(); err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("expected stack overflow, got %v", err)
	}
}

func TestComponentAccounting(t *testing.T) {
	mod := ir.NewModule("c")
	b := ir.NewBuilder(mod)
	sig := ir.Signature(ir.I32)
	f := b.NewFunc("leaf", ir.I32)
	b.Ret(ir.Int(1))
	b.NewFunc("main", ir.I32)
	fp := b.FuncAddr(f)
	call := &ir.CallInd{Fn: fp, Sig: sig, Mapped: true}
	b.B.Append(call)
	b.Ret(ir.Int(0))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "c", Spec: arch.ARM32(), Mod: mod})
	if _, err := m.RunMain(); err != nil {
		t.Fatal(err)
	}
	if m.Comp[CompFptr] <= 0 {
		t.Error("mapped indirect call should charge the fptr component")
	}
	if m.Comp[CompCompute] <= 0 {
		t.Error("compute component empty")
	}
	if m.Clock != m.Comp[CompCompute]+m.Comp[CompFptr]+m.Comp[CompRemoteIO]+m.Comp[CompComm] {
		t.Error("components do not sum to the clock")
	}
}

func TestDivisionByZero(t *testing.T) {
	mod := ir.NewModule("d")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	b.Ret(b.Div(ir.Int(1), ir.Int(0)))
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "d", Spec: arch.ARM32(), Mod: mod})
	if _, err := m.RunMain(); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestConversions(t *testing.T) {
	mod := ir.NewModule("cv")
	b := ir.NewBuilder(mod)
	b.NewFunc("main", ir.I32)
	// float -> int -> float round trip plus trunc/sext behaviour.
	f := b.Convert(ir.ConvFPToInt, ir.Float(-3.7), ir.I32)             // -3
	tr := b.Convert(ir.ConvTrunc, ir.Int(0x1FF), ir.I8)                // -1 (0xFF sign-extended)
	sum := b.Add(f, b.Convert(ir.ConvSExt, tr, ir.I32))                // -4
	fl := b.Convert(ir.ConvIntToFP, sum, ir.F64)                       // -4.0
	b.Ret(b.Convert(ir.ConvFPToInt, b.Mul(fl, ir.Float(-10)), ir.I32)) // 40
	b.Finish()
	ir.Lower(mod, arch.ARM32(), arch.ARM32())
	m, _ := NewMachine(Config{Name: "cv", Spec: arch.ARM32(), Mod: mod})
	code, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 40 {
		t.Errorf("conversion chain = %d, want 40", code)
	}
}
