package interp

import (
	"fmt"
	"strings"
)

// IOHost provides the local I/O environment of one machine: stdout, stdin
// tokens for scanf, and an in-memory file system. On the mobile device this
// is the user's real environment; offloaded code reaches it through the
// remote I/O manager (Section 3.4).
type IOHost interface {
	Write(s string)
	NextInt() (int64, bool)
	NextFloat() (float64, bool)
	Open(name string) (int32, error)
	Read(fd int32, n int) ([]byte, error)
	Close(fd int32) error
}

// SysHost is the runtime attachment point for the intrinsics the partitioner
// inserts (Section 3.3) and for remote I/O service (Section 3.4). The
// offload runtime implements it; standalone (local-only) machines leave it
// nil and the interpreter falls back to local behaviour.
type SysHost interface {
	// Gate is the dynamic performance estimation: should task taskID be
	// offloaded right now?
	Gate(m *Machine, taskID int32) bool
	// Offload runs the task remotely and returns its result bits.
	Offload(m *Machine, taskID int32, args []uint64) (uint64, error)
	// Accept blocks until an offload request arrives; 0 means shut down.
	Accept(m *Machine) int32
	// Arg fetches argument i of the current request.
	Arg(m *Machine, i int32) uint64
	// SendReturn delivers the task result to the mobile device.
	SendReturn(m *Machine, v uint64) error
	// RemoteWrite services r_printf output on the mobile device.
	RemoteWrite(m *Machine, s string) error
	// RemoteOpen/RemoteRead/RemoteClose service remote file I/O.
	RemoteOpen(m *Machine, name string) (int32, error)
	RemoteRead(m *Machine, fd int32, n int) ([]byte, error)
	RemoteClose(m *Machine, fd int32) error
}

// IOSnapshotter is implemented by IO hosts that can checkpoint and roll
// back their consumable state (scanf tokens, open file cursors). The
// offload runtime snapshots before handing a task to the server, so that
// an aborted remote execution can be re-executed locally without
// double-consuming input. Output is not part of the snapshot: the runtime
// journals remote output and only commits it at successful finalization.
type IOSnapshotter interface {
	SnapshotIO() interface{}
	RestoreIO(interface{})
}

// StdIO is the default IOHost: an output buffer, a token queue for scanf,
// and a deterministic in-memory file system.
type StdIO struct {
	Out    strings.Builder
	OutLen int64
	// MaxBuffered bounds the retained output (the byte count keeps
	// accumulating); 0 keeps everything.
	MaxBuffered int

	ints   []int64
	floats []float64

	files map[string][]byte
	fds   map[int32]*fileCursor
	next  int32
}

type fileCursor struct {
	data []byte
	pos  int
}

// NewStdIO builds a host with the given scanf integer inputs.
func NewStdIO(ints []int64) *StdIO {
	return &StdIO{
		ints:  ints,
		files: make(map[string][]byte),
		fds:   make(map[int32]*fileCursor),
		next:  3,
	}
}

// AddInput appends scanf integer tokens.
func (h *StdIO) AddInput(vs ...int64) { h.ints = append(h.ints, vs...) }

// AddFloatInput appends scanf float tokens.
func (h *StdIO) AddFloatInput(vs ...float64) { h.floats = append(h.floats, vs...) }

// AddFile installs an in-memory file.
func (h *StdIO) AddFile(name string, data []byte) { h.files[name] = data }

// SyntheticFile installs a deterministic pseudo-random file of the given
// size, standing in for SPEC reference inputs.
func (h *StdIO) SyntheticFile(name string, size int, seed uint32) {
	data := make([]byte, size)
	s := seed | 1
	for i := range data {
		s = s*1664525 + 1013904223
		data[i] = byte(s >> 24)
	}
	h.files[name] = data
}

func (h *StdIO) Write(s string) {
	h.OutLen += int64(len(s))
	if h.MaxBuffered > 0 && h.Out.Len() > h.MaxBuffered {
		return
	}
	h.Out.WriteString(s)
}

func (h *StdIO) NextInt() (int64, bool) {
	if len(h.ints) == 0 {
		return 0, false
	}
	v := h.ints[0]
	h.ints = h.ints[1:]
	return v, true
}

func (h *StdIO) NextFloat() (float64, bool) {
	if len(h.floats) == 0 {
		return 0, false
	}
	v := h.floats[0]
	h.floats = h.floats[1:]
	return v, true
}

func (h *StdIO) Open(name string) (int32, error) {
	data, ok := h.files[name]
	if !ok {
		return 0, fmt.Errorf("io: no such file %q", name)
	}
	fd := h.next
	h.next++
	h.fds[fd] = &fileCursor{data: data}
	return fd, nil
}

func (h *StdIO) Read(fd int32, n int) ([]byte, error) {
	c, ok := h.fds[fd]
	if !ok {
		return nil, fmt.Errorf("io: read on closed fd %d", fd)
	}
	if c.pos >= len(c.data) {
		return nil, nil // EOF
	}
	end := c.pos + n
	if end > len(c.data) {
		end = len(c.data)
	}
	out := c.data[c.pos:end]
	c.pos = end
	return out, nil
}

func (h *StdIO) Close(fd int32) error {
	if _, ok := h.fds[fd]; !ok {
		return fmt.Errorf("io: close on unknown fd %d", fd)
	}
	delete(h.fds, fd)
	return nil
}

type stdIOSnapshot struct {
	ints   []int64
	floats []float64
	fds    map[int32]fileCursor
	next   int32
}

// SnapshotIO checkpoints the consumable input state. Token slices are
// captured by header only: NextInt/NextFloat re-slice without writing to
// the backing array, so the snapshot stays valid without copying.
func (h *StdIO) SnapshotIO() interface{} {
	fds := make(map[int32]fileCursor, len(h.fds))
	for fd, c := range h.fds {
		fds[fd] = *c
	}
	return &stdIOSnapshot{ints: h.ints, floats: h.floats, fds: fds, next: h.next}
}

// RestoreIO rolls the consumable input state back to a SnapshotIO result.
func (h *StdIO) RestoreIO(v interface{}) {
	sn, ok := v.(*stdIOSnapshot)
	if !ok {
		return
	}
	h.ints, h.floats, h.next = sn.ints, sn.floats, sn.next
	h.fds = make(map[int32]*fileCursor, len(sn.fds))
	for fd, c := range sn.fds {
		c := c
		h.fds[fd] = &c
	}
}

var _ IOSnapshotter = (*StdIO)(nil)
