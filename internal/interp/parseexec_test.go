package interp

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
)

// TestParsedModuleExecutesIdentically proves the IR text format is a
// faithful serialization: print -> parse -> lower -> run yields the same
// result and (up to lowering) the same cost.
func TestParsedModuleExecutesIdentically(t *testing.T) {
	mod := ir.NewModule("sum")
	buildSum(mod)

	run := func(m *ir.Module) (int32, int64) {
		work := m.Clone("run")
		ir.Lower(work, arch.ARM32(), arch.ARM32())
		mach, err := NewMachine(Config{Name: "m", Spec: arch.ARM32(), Mod: work})
		if err != nil {
			t.Fatal(err)
		}
		code, err := mach.RunMain()
		if err != nil {
			t.Fatal(err)
		}
		return code, int64(mach.Clock)
	}

	wantCode, wantClock := run(mod)

	parsed, err := ir.Parse(mod.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	gotCode, gotClock := run(parsed)
	if gotCode != wantCode {
		t.Errorf("parsed module computed %d, want %d", gotCode, wantCode)
	}
	if gotClock != wantClock {
		t.Errorf("parsed module cost %d, want %d (cost model drift)", gotClock, wantClock)
	}
}

// TestParsedProgramWithIO roundtrips a program that exercises printf,
// u_malloc, struct access and an indirect call.
func TestParsedProgramWithIO(t *testing.T) {
	mod := ir.NewModule("io")
	b := ir.NewBuilder(mod)
	sig := ir.Signature(ir.I64, ir.I64)
	dbl := b.NewFunc("dbl", ir.I64, ir.P("x", ir.I64))
	b.Ret(b.Mul(b.F.Params[0], ir.Int64(2)))
	tbl := b.GlobalVar("tbl", ir.Array(ir.Ptr(sig), 1), dbl)
	b.NewFunc("main", ir.I32)
	p := b.CallExtern(ir.ExternUMalloc, ir.Int(16))
	ip := b.Convert(ir.ConvBitcast, p, ir.Ptr(ir.I64))
	b.Store(ip, ir.Int64(21))
	fp := b.Load(b.Index(tbl, ir.Int(0)))
	v := b.CallPtr(fp, sig, b.Load(ip))
	b.CallExtern(ir.ExternPrintf, b.Str("result %d\n"), v)
	b.Ret(b.Convert(ir.ConvTrunc, v, ir.I32))
	b.Finish()

	parsed, err := ir.Parse(mod.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ir.Lower(parsed, arch.ARM32(), arch.ARM32())
	io := NewStdIO(nil)
	mach, err := NewMachine(Config{Name: "p", Spec: arch.ARM32(), Mod: parsed, IO: io})
	if err != nil {
		t.Fatal(err)
	}
	code, err := mach.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 || io.Out.String() != "result 42\n" {
		t.Errorf("parsed program: code %d, output %q", code, io.Out.String())
	}
}
