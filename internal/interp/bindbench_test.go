package interp

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/arch"
	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/mem"
)

// bindBenchModule models a session binary with a data segment worth sharing:
// a 256 KiB initialized lookup table the kernel only reads, plus a small
// scratch array it writes. Under copy-on-write binding a session's resident
// set is the scratch pages and its stack; under private-copy binding every
// session pays for the whole table.
func bindBenchModule() *ir.Module {
	mod := ir.NewModule("bindbench")
	b := ir.NewBuilder(mod)
	const tableLen = 32768 // 256 KiB of i64 init data
	init := make([]ir.Value, tableLen)
	for i := range init {
		init[i] = ir.Int64(int64(i)*2654435761 + 97)
	}
	table := b.GlobalVar("table", ir.Array(ir.I64, tableLen), init...)
	scratch := b.GlobalVar("scratch", ir.Array(ir.I64, 512))
	b.NewFunc("kern", ir.I64)
	sum := b.Alloca(ir.I64)
	b.Store(sum, ir.Int64(0))
	b.For("i", ir.Int64(0), ir.Int64(2048), ir.Int64(1), func(i ir.Value) {
		v := b.Load(b.Index(table, b.And(b.Mul(i, ir.Int64(37)), ir.Int64(tableLen-1))))
		k := b.And(i, ir.Int64(511))
		b.Store(b.Index(scratch, k), b.Add(v, b.Load(b.Index(scratch, k))))
		b.Store(sum, b.Add(b.Load(sum), v))
	})
	b.Ret(b.Load(sum))
	b.Finish()
	return mod
}

func bindBenchLowered(tb testing.TB) (*ir.Module, CompileConfig) {
	tb.Helper()
	work := bindBenchModule().Clone("bindbench")
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	return work, CompileConfig{Name: "bench", Spec: spec, InitUVAGlobals: true}
}

// benchFirstCompile measures the cold path: link, load and freeze the
// image, pre-decode every function. This is what the first session to bind
// a module pays.
func benchFirstCompile(b *testing.B, work *ir.Module, cfg CompileConfig) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(work, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCachedBind measures the steady-state path every later session pays:
// a cache hit plus a copy-on-write instance over the shared image.
func benchCachedBind(b *testing.B, work *ir.Module, cfg CompileConfig, cache *CompilationCache) {
	if _, err := Compile(work, cfg, cache); err != nil {
		b.Fatal(err)
	}
	var sink *Machine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := Compile(work, cfg, cache)
		if err != nil {
			b.Fatal(err)
		}
		sink = prog.NewInstance()
	}
	_ = sink
}

// BenchmarkBind compares the two halves of the compile-once /
// instantiate-many split on the 256 KiB-image session binary.
func BenchmarkBind(b *testing.B) {
	work, cfg := bindBenchLowered(b)
	b.Run("first-compile", func(b *testing.B) { benchFirstCompile(b, work, cfg) })
	b.Run("cached", func(b *testing.B) { benchCachedBind(b, work, cfg, NewCompilationCache()) })
}

// TestBindBenchJSON writes BENCH_bind.json, the machine-readable record of
// the shared-image acceptance criteria: a cached bind must be at least 50x
// faster than the first compile, and a session's resident bytes under
// copy-on-write binding at least 10x below a private image copy. Skipped
// unless BENCH_BIND_JSON names the output path (run via make bench).
func TestBindBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_BIND_JSON")
	if path == "" {
		t.Skip("BENCH_BIND_JSON not set; run via make bench")
	}
	work, cfg := bindBenchLowered(t)

	first := testing.Benchmark(func(b *testing.B) { benchFirstCompile(b, work, cfg) })
	cache := NewCompilationCache()
	cached := testing.Benchmark(func(b *testing.B) { benchCachedBind(b, work, cfg, cache) })
	firstNs := float64(first.T.Nanoseconds()) / float64(first.N)
	cachedNs := float64(cached.T.Nanoseconds()) / float64(cached.N)
	speedup := 0.0
	if cachedNs > 0 {
		speedup = firstNs / cachedNs
	}

	// Resident bytes per session, measured after one kernel run so both
	// sides have paid their working set (stack, scratch writes).
	prog, err := Compile(work, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.NewInstance()
	if _, err := inst.CallFunc(work.Func("kern")); err != nil {
		t.Fatal(err)
	}
	legacy, err := NewMachine(Config{Name: "bench", Spec: cfg.Spec, Mod: work, InitUVAGlobals: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.CallFunc(work.Func("kern")); err != nil {
		t.Fatal(err)
	}
	sharedRes := inst.Mem.ResidentPrivateBytes()
	legacyRes := legacy.Mem.ResidentPrivateBytes()
	savings := 0.0
	if sharedRes > 0 {
		savings = float64(legacyRes) / float64(sharedRes)
	}
	stats := cache.Stats()

	// Fleet capacity projection: what the shared image buys a 1000-session
	// server pool versus private-copy binding.
	plan := fleet.PlanFromImage(prog.Image(), sharedRes)
	doc := struct {
		FirstCompileNs    float64 `json:"first_compile_ns"`
		CachedBindNs      float64 `json:"cached_bind_ns"`
		BindSpeedup       float64 `json:"bind_speedup_x"`
		ImageBytes        int     `json:"image_bytes"`
		ImageUniqueBytes  int     `json:"image_unique_bytes"`
		LegacyResidentB   int     `json:"private_resident_bytes_per_session"`
		SharedResidentB   int     `json:"shared_resident_bytes_per_session"`
		ResidentSavings   float64 `json:"resident_savings_x"`
		CacheHits         int64   `json:"cache_hits"`
		CacheMisses       int64   `json:"cache_misses"`
		CacheHitRate      float64 `json:"cache_hit_rate"`
		FleetShared1000B  int     `json:"fleet_shared_bytes_at_1000"`
		FleetPrivate1000B int     `json:"fleet_private_bytes_at_1000"`
		FleetSavings1000  float64 `json:"fleet_savings_at_1000_x"`
	}{
		FirstCompileNs:    firstNs,
		CachedBindNs:      cachedNs,
		BindSpeedup:       speedup,
		ImageBytes:        prog.Image().Bytes(),
		ImageUniqueBytes:  prog.Image().UniqueBytes(),
		LegacyResidentB:   legacyRes,
		SharedResidentB:   sharedRes,
		ResidentSavings:   savings,
		CacheHits:         stats.Hits,
		CacheMisses:       stats.Misses,
		CacheHitRate:      stats.HitRate(),
		FleetShared1000B:  plan.SharedBytesAt(1000),
		FleetPrivate1000B: plan.PrivateBytesAt(1000),
		FleetSavings1000:  plan.Savings(1000),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (bind speedup %.0fx, resident savings %.1fx, image %d KiB)",
		path, speedup, savings, prog.Image().Bytes()/1024)

	if speedup < 50 {
		t.Errorf("cached bind %.0f ns vs first compile %.0f ns: %.1fx, want >= 50x", cachedNs, firstNs, speedup)
	}
	if savings < 10 {
		t.Errorf("resident bytes/session: shared %d vs private %d: %.1fx, want >= 10x", sharedRes, legacyRes, savings)
	}
	if instPages, legacyPages := len(inst.Mem.PresentPages()), len(legacy.Mem.PresentPages()); instPages != legacyPages {
		t.Errorf("present pages diverged: shared %d, private %d", instPages, legacyPages)
	}
	if d1, d2 := inst.Mem.Digest(mem.StackRanges()...), legacy.Mem.Digest(mem.StackRanges()...); d1 != d2 {
		t.Errorf("post-run digest diverged: shared %#x, private %#x", d1, d2)
	}
}
