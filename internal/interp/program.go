package interp

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Program is a module compiled once for one architecture binding: the
// pre-decoded instruction streams of every function, the linker's address
// assignment, and the initial memory image (code-adjacent data, rodata,
// initialized globals) frozen as an immutable mem.Image. A Program is
// content-addressed (see CompilationCache) and safe for any number of
// concurrent NewInstance machines — instances share the compiled code
// directly and overlay the image copy-on-write, so binding a new session
// costs O(1) and its resident bytes start at zero.
type Program struct {
	cfg   CompileConfig
	mod   *ir.Module
	lay   *linkage
	cc    *compiler
	image *mem.Image
}

// CompileConfig selects the architecture binding a module is compiled
// against. It mirrors the machine-identity subset of Config: everything
// here is baked into the compiled artifact (addresses, cost aggregates,
// trap messages, the initial image), so it is part of the cache key.
type CompileConfig struct {
	// Name labels the machines instantiated from this program ("mobile",
	// "server"); trap messages bake it in.
	Name string
	Spec *arch.Spec
	Std  *arch.Spec // defaults to Spec (conventional lowering)
	// FuncBase is where this program's linker places function addresses
	// (defaults to mem.FuncBaseMobile).
	FuncBase uint32
	// ShuffleFuncs/ShuffleGlobals model a different linker: name-sorted
	// assignment order, shifted data segment.
	ShuffleFuncs   bool
	ShuffleGlobals bool
	// InitUVAGlobals writes initial values of UVA-homed globals into the
	// image. Only the mobile side does this; the server receives those
	// pages via copy-on-demand.
	InitUVAGlobals bool
}

func (cfg CompileConfig) withDefaults() CompileConfig {
	if cfg.Std == nil {
		cfg.Std = cfg.Spec
	}
	if cfg.FuncBase == 0 {
		cfg.FuncBase = mem.FuncBaseMobile
	}
	return cfg
}

// Compile builds the shared program artifact for mod under cfg: link,
// load the initial memory image, and pre-decode every function. The module
// must already be lowered (ir.Lower) against cfg.Std — shared code cannot
// compile lazily, so the layout must be final. A non-nil cache memoizes the
// result under the (module digest, architecture binding) key; concurrent
// callers of an uncached key block on one compile.
func Compile(mod *ir.Module, cfg CompileConfig, cache *CompilationCache) (*Program, error) {
	if cache != nil {
		return cache.compile(mod, cfg)
	}
	return compileProgram(mod, cfg)
}

func compileProgram(mod *ir.Module, cfg CompileConfig) (*Program, error) {
	cfg = cfg.withDefaults()
	if cfg.Spec == nil {
		return nil, fmt.Errorf("interp: Compile needs an architecture spec")
	}
	if mod == nil {
		return nil, fmt.Errorf("interp: Compile needs a module")
	}
	if !mod.Lowered {
		return nil, fmt.Errorf("interp: Compile requires a lowered module (run ir.Lower against the standard spec first)")
	}
	lay := newLinkage(mod, cfg.Std, cfg.FuncBase, cfg.ShuffleFuncs, cfg.ShuffleGlobals)

	// Load the initial image into a scratch memory and freeze it. The
	// scratch memory materializes exactly the pages a NewMachine loader
	// would, so an instance's present-page set is bit-identical to a
	// private machine's.
	scratch := mem.New()
	if err := writeGlobalInits(scratch, mod, cfg.Std, lay, cfg.InitUVAGlobals); err != nil {
		return nil, err
	}
	img := mem.Snapshot(scratch)

	cc := newCompiler(cfg.Name, cfg.Spec, cfg.Std, lay, len(mod.Funcs))
	for _, f := range mod.Funcs {
		if !f.IsExtern() {
			cc.ensureCompiled(f)
		}
	}
	cc.sealed = true
	return &Program{cfg: cfg, mod: mod, lay: lay, cc: cc, image: img}, nil
}

// Module returns the module this program was compiled from.
func (p *Program) Module() *ir.Module { return p.mod }

// Name returns the machine name baked into the program.
func (p *Program) Name() string { return p.cfg.Name }

// Image returns the shared initial memory image.
func (p *Program) Image() *mem.Image { return p.image }

// InstanceOption configures one instance of a shared program.
type InstanceOption func(*instanceConfig)

type instanceConfig struct {
	io        IOHost
	sys       SysHost
	costScale int64
	engine    Engine
}

// WithIO sets the instance's I/O host (defaults to NewStdIO(nil)).
func WithIO(io IOHost) InstanceOption { return func(c *instanceConfig) { c.io = io } }

// WithSys sets the instance's system host (the offload runtime).
func WithSys(sys SysHost) InstanceOption { return func(c *instanceConfig) { c.sys = sys } }

// WithCostScale amplifies compute charges (see Config.CostScale).
func WithCostScale(s int64) InstanceOption { return func(c *instanceConfig) { c.costScale = s } }

// WithEngine selects the execution engine. EngineRef instances interpret
// the IR tree directly (they still share the program's image and address
// layout); the default EngineFast runs the shared pre-decoded code.
func WithEngine(e Engine) InstanceOption { return func(c *instanceConfig) { c.engine = e } }

// NewInstance binds a new session machine to the shared program: fresh
// registers, clock and heap state over a copy-on-write overlay of the
// program image. The compiled code, address layout and image are shared
// with every other instance, so the bind itself allocates no pages — the
// instance pays memory only for pages it writes. Instances are not
// individually thread-safe (a Machine never was), but any number of
// instances of one Program may run concurrently.
func (p *Program) NewInstance(opts ...InstanceOption) *Machine {
	var cfg instanceConfig
	for _, o := range opts {
		o(&cfg)
	}
	m := newMachineShell(p.cfg.Name, p.cfg.Spec, p.cfg.Std, p.mod, mem.NewOverlay(p.image), p.lay, p.cc)
	m.prog = p
	m.Engine = cfg.engine
	if cfg.costScale > 0 {
		m.CostScale = cfg.costScale
	}
	if cfg.io != nil {
		m.IO = cfg.io
	}
	m.Sys = cfg.sys
	m.pools = make([][][]uint64, p.cc.nfuncs)
	return m
}
