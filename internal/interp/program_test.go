package interp

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
)

// runInstance binds one instance of prog and captures the same observation
// set the engine differential suite compares.
func runInstance(t *testing.T, prog *Program, eng Engine, costScale int64) engineRun {
	t.Helper()
	io := NewStdIO(nil)
	m := prog.NewInstance(WithIO(io), WithEngine(eng), WithCostScale(costScale))
	r := engineRun{}
	code, err := m.RunMain()
	r.code = code
	if err != nil {
		r.errStr = err.Error()
	}
	r.out = io.Out.String()
	r.steps = m.Steps
	r.clock = m.Clock
	r.comp = m.Comp
	r.digest = m.Mem.Digest(mem.StackRanges()...)
	return r
}

// runLegacy runs mod on a private NewMachine (the deprecated one-constructor
// path that copies nothing and shares nothing) as the fidelity baseline.
func runLegacy(t *testing.T, work *ir.Module, spec, std *arch.Spec, costScale int64) engineRun {
	t.Helper()
	io := NewStdIO(nil)
	m, err := NewMachine(Config{
		Name: "diff", Spec: spec, Std: std, Mod: work,
		IO: io, CostScale: costScale, InitUVAGlobals: true, Engine: EngineFast,
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	r := engineRun{}
	code, err := m.RunMain()
	r.code = code
	if err != nil {
		r.errStr = err.Error()
	}
	r.out = io.Out.String()
	r.steps = m.Steps
	r.clock = m.Clock
	r.comp = m.Comp
	r.digest = m.Mem.Digest(mem.StackRanges()...)
	return r
}

// TestSharedInstanceDifferential reruns the seeded random-program suite on
// shared-image instances: for every seed and arch binding, a fast and a ref
// instance of one cached Program must match a private-copy legacy machine
// bit for bit (output, exit code, steps, clock, component buckets, digest).
// Running two instances off the same Program back to back also pins session
// isolation — the first instance's writes must not leak into the second.
func TestSharedInstanceDifferential(t *testing.T) {
	seeds := 110
	if testing.Short() {
		seeds = 25
	}
	cache := NewCompilationCache()
	specs := diffSpecs()
	for seed := 0; seed < seeds; seed++ {
		mod := genProgram(int64(seed))
		for _, sp := range specs {
			label := fmt.Sprintf("seed=%d %s/std=%s", seed, sp.spec.Name, sp.std.Name)
			work := mod.Clone(mod.Name)
			ir.Lower(work, sp.spec, sp.std)
			legacy := runLegacy(t, work, sp.spec, sp.std, 1)
			prog, err := Compile(work, CompileConfig{
				Name: "diff", Spec: sp.spec, Std: sp.std, InitUVAGlobals: true,
			}, cache)
			if err != nil {
				t.Fatalf("%s: Compile: %v", label, err)
			}
			compareRuns(t, label+" shared-fast", runInstance(t, prog, EngineFast, 1), legacy)
			compareRuns(t, label+" shared-ref", runInstance(t, prog, EngineRef, 1), legacy)
			if t.Failed() {
				t.Fatalf("%s: shared instance diverged from private machine", label)
			}
		}
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != int64(seeds*len(specs)) {
		t.Errorf("cache stats = %+v, want %d misses and no hits", s, seeds*len(specs))
	}
}

// TestConcurrentCompileAndRun is the race-detector stress for the
// compile-once/instantiate-many contract: N goroutines bind the same module
// through one CompilationCache and run their instances in parallel. Exactly
// one compile may happen, every binder must get the same *Program and shared
// image pointer, and every run must be bit-identical to a private machine.
func TestConcurrentCompileAndRun(t *testing.T) {
	spec := arch.ARM32()
	mod := genProgram(777)
	work := mod.Clone(mod.Name)
	ir.Lower(work, spec, spec)
	legacy := runLegacy(t, work, spec, spec, 1)

	const n = 8
	cache := NewCompilationCache()
	cfg := CompileConfig{Name: "diff", Spec: spec, InitUVAGlobals: true}
	progs := make([]*Program, n)
	runs := make([]engineRun, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog, err := Compile(work, cfg, cache)
			if err != nil {
				t.Errorf("binder %d: Compile: %v", i, err)
				return
			}
			progs[i] = prog
			io := NewStdIO(nil)
			m := prog.NewInstance(WithIO(io))
			r := engineRun{}
			code, err := m.RunMain()
			r.code = code
			if err != nil {
				r.errStr = err.Error()
			}
			r.out = io.Out.String()
			r.steps = m.Steps
			r.clock = m.Clock
			r.comp = m.Comp
			r.digest = m.Mem.Digest(mem.StackRanges()...)
			runs[i] = r
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if s := cache.Stats(); s.Misses != 1 || s.Hits != n-1 || s.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 miss, %d hits, 1 entry", s, n-1)
	}
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Errorf("binder %d got a different *Program (%p vs %p)", i, progs[i], progs[0])
		}
		if progs[i].Image() != progs[0].Image() {
			t.Errorf("binder %d got a different image pointer", i)
		}
	}
	for i := 0; i < n; i++ {
		compareRuns(t, fmt.Sprintf("binder %d", i), runs[i], legacy)
	}
}

// TestBindSmoke pins the O(1)-bind contract itself: a fresh instance holds
// zero private resident bytes (binding must not copy the image), starts from
// the exact present-page set and memory digest a private machine loads, and
// a second Compile of the same module is a cache hit returning the same
// pointer. `make check` runs this as its bind smoke.
func TestBindSmoke(t *testing.T) {
	spec := arch.ARM32()
	mod := genProgram(4242)
	work := mod.Clone(mod.Name)
	ir.Lower(work, spec, spec)
	cache := NewCompilationCache()
	cfg := CompileConfig{Name: "diff", Spec: spec, InitUVAGlobals: true}

	prog, err := Compile(work, cfg, cache)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	inst := prog.NewInstance()
	if got := inst.Mem.ResidentPrivateBytes(); got != 0 {
		t.Fatalf("fresh instance holds %d private bytes; bind must not copy the image", got)
	}

	io := NewStdIO(nil)
	legacy, err := NewMachine(Config{
		Name: "diff", Spec: spec, Mod: work, IO: io, InitUVAGlobals: true,
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	lp, ip := legacy.Mem.PresentPages(), inst.Mem.PresentPages()
	if len(lp) != len(ip) {
		t.Fatalf("present pages: legacy %d, instance %d", len(lp), len(ip))
	}
	for i := range lp {
		if lp[i] != ip[i] {
			t.Fatalf("present page %d: legacy %#x, instance %#x", i, lp[i], ip[i])
		}
	}
	if ld, id := legacy.Mem.Digest(), inst.Mem.Digest(); ld != id {
		t.Fatalf("initial digest: legacy %#x, instance %#x", ld, id)
	}
	if got := inst.Mem.ResidentPrivateBytes(); got != 0 {
		t.Fatalf("digest materialized %d private bytes on a read-only instance", got)
	}

	again, err := Compile(work, cfg, cache)
	if err != nil {
		t.Fatalf("second Compile: %v", err)
	}
	if again != prog {
		t.Fatalf("second Compile returned a new *Program; want the cached one")
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", s)
	}
}
