package interp

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/ir"
	"repro/internal/mem"
)

// loadStoreKernelModule is a memory-dominated kernel: four loads and four
// stores per iteration across a two-page working set.
func loadStoreKernelModule(iters int64) *ir.Module {
	mod := ir.NewModule("lskernel")
	b := ir.NewBuilder(mod)
	arr := b.GlobalVar("arr", ir.Array(ir.I64, 1024))
	b.NewFunc("kern", ir.I64)
	sum := b.Alloca(ir.I64)
	b.Store(sum, ir.Int64(0))
	b.For("i", ir.Int64(0), ir.Int64(iters), ir.Int64(1), func(i ir.Value) {
		k := b.And(i, ir.Int64(1023))
		a := b.Load(b.Index(arr, k))
		c := b.Load(b.Index(arr, b.Xor(k, ir.Int64(512))))
		d := b.Load(b.Index(arr, b.Xor(k, ir.Int64(255))))
		e := b.Load(sum)
		v := b.Add(b.Add(a, c), b.Add(d, e))
		b.Store(b.Index(arr, k), v)
		b.Store(b.Index(arr, b.Xor(k, ir.Int64(512))), b.Add(v, ir.Int64(1)))
		b.Store(b.Index(arr, b.Xor(k, ir.Int64(255))), b.Sub(v, i))
		b.Store(sum, v)
	})
	b.Ret(b.Load(sum))
	b.Finish()
	return mod
}

// benchEngine runs the kernel under one engine, reporting steps/s.
func benchEngine(b *testing.B, mod *ir.Module, eng Engine) {
	m, kern := kernelMachine(b, mod, eng)
	if _, err := m.CallFunc(kern); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := m.Steps
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunc(kern); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(m.Steps-start)/secs, "steps/s")
	}
}

// BenchmarkInterpLoop compares the two engines on the canonical
// load/store/bin/branch loop (the acceptance-criteria benchmark).
func BenchmarkInterpLoop(b *testing.B) {
	mod := loopKernelModule(4096)
	b.Run("fast", func(b *testing.B) { benchEngine(b, mod, EngineFast) })
	b.Run("ref", func(b *testing.B) { benchEngine(b, mod, EngineRef) })
}

// BenchmarkLoadStore stresses the page-cache memory fast path.
func BenchmarkLoadStore(b *testing.B) {
	mod := loadStoreKernelModule(4096)
	b.Run("fast", func(b *testing.B) { benchEngine(b, mod, EngineFast) })
	b.Run("ref", func(b *testing.B) { benchEngine(b, mod, EngineRef) })
}

// BenchmarkCallReturn stresses frame acquisition and argument passing.
func BenchmarkCallReturn(b *testing.B) {
	mod := callKernelModule(4096)
	b.Run("fast", func(b *testing.B) { benchEngine(b, mod, EngineFast) })
	b.Run("ref", func(b *testing.B) { benchEngine(b, mod, EngineRef) })
}

// BenchmarkDigest measures the semantic-memory hash over a mixed image:
// half the pages zero (detected by the word-wise scan), half dense.
func BenchmarkDigest(b *testing.B) {
	m := mem.New()
	buf := make([]byte, mem.PageSize)
	for pn := uint32(0); pn < 256; pn++ {
		if pn%2 == 0 {
			for i := range buf {
				buf[i] = byte(pn + uint32(i))
			}
			m.InstallPage(mem.PageNum(mem.HeapBase)+pn, buf)
		} else {
			m.InstallPage(mem.PageNum(mem.HeapBase)+pn, nil)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = m.Digest()
	}
	_ = sink
}

// TestBenchJSON writes the machine-readable benchmark record consumed by
// `make bench`. Skipped unless BENCH_JSON names the output path, so plain
// test runs stay fast.
func TestBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set; run via make bench")
	}
	type row struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		StepsPerSec float64 `json:"steps_per_sec,omitempty"`
	}
	var rows []row
	add := func(name string, fn func(b *testing.B)) row {
		r := testing.Benchmark(fn)
		out := row{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			StepsPerSec: r.Extra["steps/s"],
		}
		rows = append(rows, out)
		return out
	}
	loop := loopKernelModule(4096)
	fast := add("InterpLoop/fast", func(b *testing.B) { benchEngine(b, loop, EngineFast) })
	ref := add("InterpLoop/ref", func(b *testing.B) { benchEngine(b, loop, EngineRef) })
	ls := loadStoreKernelModule(4096)
	add("LoadStore/fast", func(b *testing.B) { benchEngine(b, ls, EngineFast) })
	add("LoadStore/ref", func(b *testing.B) { benchEngine(b, ls, EngineRef) })
	call := callKernelModule(4096)
	add("CallReturn/fast", func(b *testing.B) { benchEngine(b, call, EngineFast) })
	add("CallReturn/ref", func(b *testing.B) { benchEngine(b, call, EngineRef) })
	add("Digest", BenchmarkDigest)

	speedup := 0.0
	if ref.StepsPerSec > 0 {
		speedup = fast.StepsPerSec / ref.StepsPerSec
	}
	doc := struct {
		Benchmarks        []row   `json:"benchmarks"`
		InterpLoopSpeedup float64 `json:"interp_loop_speedup_x"`
	}{rows, speedup}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (InterpLoop speedup %.1fx, fast allocs/op %d)", path, speedup, fast.AllocsPerOp)
	if speedup < 5 {
		t.Errorf("InterpLoop speedup %.2fx, want >= 5x", speedup)
	}
	if fast.AllocsPerOp != 0 {
		t.Errorf("fast engine %d allocs/op, want 0", fast.AllocsPerOp)
	}
}
