package interp

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/simtime"
)

// tlbWays sizes the direct-mapped page caches. A handful of entries keeps
// loops that alternate between a data page and an accumulator page from
// thrashing a single slot; indexing by the low page-number bits spreads
// adjacent pages across distinct entries.
const tlbWays = 4

// tlbEntry is one slot of the page cache: a page's resident data array,
// revalidated against the memory's invalidation generation on every access.
// Write entries additionally pin the TrackDirty mode under which the page
// was marked dirty.
type tlbEntry struct {
	data  *[mem.PageSize]byte
	pn    uint32
	gen   uint64
	track bool
}

// callFast is CallFunc on the pre-decoded engine.
func (m *Machine) callFast(f *ir.Func, args []uint64) (uint64, error) {
	if f.IsExtern() {
		return m.callExtern(f, args)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp(%s): call %s with %d args, want %d", m.Name, f.Nam, len(args), len(f.Params))
	}
	cf := m.cc.ensureCompiled(f)
	regs := m.acquireFrame(cf)
	for i, p := range f.Params {
		regs[p.Slot] = args[i]
	}
	if ps := m.sampler; ps != nil {
		ps.push(f.Nam, m.Clock)
	}
	v, err := m.runCompiled(cf, regs)
	if ps := m.sampler; ps != nil {
		ps.pop(m.Clock)
	}
	m.releaseFrame(cf, regs)
	return v, err
}

// callCompiled invokes a compiled callee from inside the fast loop,
// evaluating pre-decoded arguments directly into the callee's frame.
func (m *Machine) callCompiled(cf *cfunc, args []carg, caller []uint64) (uint64, error) {
	if !cf.compiled {
		m.cc.compileInto(cf)
	}
	regs := m.acquireFrame(cf)
	for i := range args {
		regs[cf.fn.Params[i].Slot] = rv(caller, args[i].slot, args[i].imm)
	}
	if ps := m.sampler; ps != nil {
		ps.push(cf.fn.Nam, m.Clock)
	}
	v, err := m.runCompiled(cf, regs)
	if ps := m.sampler; ps != nil {
		ps.pop(m.Clock)
	}
	m.releaseFrame(cf, regs)
	return v, err
}

func (m *Machine) runCompiled(cf *cfunc, regs []uint64) (uint64, error) {
	spSave := m.sp
	defer func() { m.sp = spSave }()
	return m.execCompiled(cf, regs)
}

// rv reads operand (slot, imm): a register when slot >= 0, else the
// inlined constant.
func rv(regs []uint64, slot int32, imm uint64) uint64 {
	if slot >= 0 {
		return regs[slot]
	}
	return imm
}

func cmpBits(pred int32, lt, eq bool) uint64 {
	var r bool
	switch ir.CmpPred(pred) {
	case ir.EQ:
		r = eq
	case ir.NE:
		r = !eq
	case ir.LT:
		r = lt
	case ir.LE:
		r = lt || eq
	case ir.GT:
		r = !lt && !eq
	case ir.GE:
		r = !lt
	}
	if r {
		return 1
	}
	return 0
}

// readMem is the aligned scalar read fast path: a TLB hit indexes the
// resident page array without allocating. Accesses that straddle a page,
// hit a Touch observer, or miss the TLB on a faulting page fall back to
// the allocating slow path with identical semantics.
func (m *Machine) readMem(addr uint32, size int) (uint64, error) {
	mm := m.Mem
	off := addr & (mem.PageSize - 1)
	if mm.Touch == nil && int(off)+size <= mem.PageSize {
		pn := addr >> mem.PageShift
		e := &m.rtlb[pn&(tlbWays-1)]
		if e.data == nil || e.pn != pn || e.gen != mm.Gen() {
			data, err := mm.Page(pn)
			if err != nil {
				return 0, err
			}
			e.data, e.pn, e.gen = data, pn, mm.Gen()
		}
		b := e.data[off:]
		switch size {
		case 1:
			return uint64(b[0]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(b)), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(b)), nil
		default:
			return binary.LittleEndian.Uint64(b), nil
		}
	}
	return mm.ReadUint(addr, size)
}

// writeMem is the store counterpart of readMem. The write TLB entry keeps
// the page pre-marked dirty, so steady-state stores touch only the array.
func (m *Machine) writeMem(addr uint32, size int, v uint64) error {
	mm := m.Mem
	off := addr & (mem.PageSize - 1)
	if mm.Touch == nil && int(off)+size <= mem.PageSize {
		pn := addr >> mem.PageShift
		e := &m.wtlb[pn&(tlbWays-1)]
		if e.data == nil || e.pn != pn || e.gen != mm.Gen() || e.track != mm.TrackDirty {
			data, err := mm.DirtyPage(pn)
			if err != nil {
				return err
			}
			e.data, e.pn, e.gen, e.track = data, pn, mm.Gen(), mm.TrackDirty
		}
		b := e.data[off:]
		switch size {
		case 1:
			b[0] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(b, uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(b, uint32(v))
		default:
			binary.LittleEndian.PutUint64(b, v)
		}
		return nil
	}
	return mm.WriteUint(addr, size, v)
}

// execCompiled is the fast engine's hot loop: a switch over the small
// pre-decoded opcode enum, with aggregate charging per straight-line
// segment (see cCharge).
func (m *Machine) execCompiled(cf *cfunc, regs []uint64) (uint64, error) {
	code := cf.code
	pc := int32(0)
	for {
		in := &code[pc]
		pc++
		switch in.op {
		case cCharge:
			m.Steps += int64(in.aux)
			d := simtime.PS(int64(in.imm)*m.CostScale) * simtime.PS(m.Spec.CyclePS)
			m.Clock += d
			m.Comp[CompCompute] += d
			if s := m.sampler; s != nil && m.Clock >= s.next {
				s.take(m.Clock)
			}

		case cAdd:
			regs[in.c] = rv(regs, in.a, in.imm) + rv(regs, in.b, in.imm2)
		case cSub:
			regs[in.c] = rv(regs, in.a, in.imm) - rv(regs, in.b, in.imm2)
		case cMul:
			regs[in.c] = rv(regs, in.a, in.imm) * rv(regs, in.b, in.imm2)
		case cDiv:
			y := int64(rv(regs, in.b, in.imm2))
			if y == 0 {
				return 0, cf.traps[in.aux]
			}
			regs[in.c] = uint64(int64(rv(regs, in.a, in.imm)) / y)
		case cRem:
			y := int64(rv(regs, in.b, in.imm2))
			if y == 0 {
				return 0, cf.traps[in.aux]
			}
			regs[in.c] = uint64(int64(rv(regs, in.a, in.imm)) % y)
		case cAnd:
			regs[in.c] = rv(regs, in.a, in.imm) & rv(regs, in.b, in.imm2)
		case cOr:
			regs[in.c] = rv(regs, in.a, in.imm) | rv(regs, in.b, in.imm2)
		case cXor:
			regs[in.c] = rv(regs, in.a, in.imm) ^ rv(regs, in.b, in.imm2)
		case cShl:
			regs[in.c] = rv(regs, in.a, in.imm) << (rv(regs, in.b, in.imm2) & 63)
		case cShr:
			regs[in.c] = uint64(int64(rv(regs, in.a, in.imm)) >> (rv(regs, in.b, in.imm2) & 63))

		case cFAdd:
			regs[in.c] = math.Float64bits(math.Float64frombits(rv(regs, in.a, in.imm)) + math.Float64frombits(rv(regs, in.b, in.imm2)))
		case cFSub:
			regs[in.c] = math.Float64bits(math.Float64frombits(rv(regs, in.a, in.imm)) - math.Float64frombits(rv(regs, in.b, in.imm2)))
		case cFMul:
			regs[in.c] = math.Float64bits(math.Float64frombits(rv(regs, in.a, in.imm)) * math.Float64frombits(rv(regs, in.b, in.imm2)))
		case cFDiv:
			regs[in.c] = math.Float64bits(math.Float64frombits(rv(regs, in.a, in.imm)) / math.Float64frombits(rv(regs, in.b, in.imm2)))

		case cCmpS:
			x, y := rv(regs, in.a, in.imm), rv(regs, in.b, in.imm2)
			regs[in.c] = cmpBits(in.aux, int64(x) < int64(y), x == y)
		case cCmpU:
			x, y := rv(regs, in.a, in.imm), rv(regs, in.b, in.imm2)
			regs[in.c] = cmpBits(in.aux, x < y, x == y)
		case cCmpF:
			fx := math.Float64frombits(rv(regs, in.a, in.imm))
			fy := math.Float64frombits(rv(regs, in.b, in.imm2))
			regs[in.c] = cmpBits(in.aux, fx < fy, fx == fy)

		case cIndexAddr:
			base := rv(regs, in.a, in.imm)
			idx := int64(rv(regs, in.b, in.imm2))
			regs[in.c] = uint64(int64(base) + idx*int64(in.aux))

		case cMov:
			regs[in.c] = rv(regs, in.a, in.imm)
		case cTrunc:
			regs[in.c] = signExtend(rv(regs, in.a, in.imm), int(in.aux))
		case cZExt:
			regs[in.c] = rv(regs, in.a, in.imm) & in.imm2
		case cIntToFP:
			regs[in.c] = math.Float64bits(float64(int64(rv(regs, in.a, in.imm))))
		case cFPToInt:
			f := math.Float64frombits(rv(regs, in.a, in.imm))
			regs[in.c] = signExtend(uint64(int64(f)), int(in.aux))
		case cFPTrunc:
			regs[in.c] = math.Float64bits(float64(float32(math.Float64frombits(rv(regs, in.a, in.imm)))))

		case cAlloca:
			size := uint32(in.imm)
			if m.sp < m.spFloor+size {
				return 0, cf.traps[in.aux]
			}
			m.sp -= size
			regs[in.c] = uint64(m.sp)

		case cLoadSExt:
			raw, err := m.readMem(uint32(rv(regs, in.a, in.imm)), int(in.b))
			if err != nil {
				return 0, err
			}
			regs[in.c] = signExtend(raw, int(in.aux))
		case cLoadZExt:
			raw, err := m.readMem(uint32(rv(regs, in.a, in.imm)), int(in.b))
			if err != nil {
				return 0, err
			}
			regs[in.c] = raw
		case cLoadF32:
			raw, err := m.readMem(uint32(rv(regs, in.a, in.imm)), int(in.b))
			if err != nil {
				return 0, err
			}
			regs[in.c] = math.Float64bits(float64(math.Float32frombits(uint32(raw))))
		case cLoadF64:
			raw, err := m.readMem(uint32(rv(regs, in.a, in.imm)), int(in.b))
			if err != nil {
				return 0, err
			}
			regs[in.c] = raw
		case cLoadSlow:
			ld := in.ref.(*ir.Load)
			bits, err := m.loadScalarNoCharge(uint32(rv(regs, in.a, in.imm)), ld.Elem, ld.Lay)
			if err != nil {
				return 0, err
			}
			regs[in.c] = bits

		case cStoreInt:
			if err := m.writeMem(uint32(rv(regs, in.a, in.imm)), int(in.aux), rv(regs, in.b, in.imm2)); err != nil {
				return 0, err
			}
		case cStoreF32:
			v := uint64(math.Float32bits(float32(math.Float64frombits(rv(regs, in.b, in.imm2)))))
			if err := m.writeMem(uint32(rv(regs, in.a, in.imm)), int(in.aux), v); err != nil {
				return 0, err
			}
		case cStoreSlow:
			st := in.ref.(*ir.Store)
			if err := m.storeScalarNoCharge(uint32(rv(regs, in.a, in.imm)), st.Val.Type(), st.Lay, rv(regs, in.b, in.imm2)); err != nil {
				return 0, err
			}

		case cCall:
			var v uint64
			var err error
			if in.ctarget != nil {
				v, err = m.callCompiled(in.ctarget, in.args, regs)
			} else {
				ea := make([]uint64, len(in.args))
				for i := range in.args {
					ea[i] = rv(regs, in.args[i].slot, in.args[i].imm)
				}
				v, err = m.callExtern(in.callee, ea)
			}
			if err != nil {
				return 0, err
			}
			if in.c >= 0 {
				regs[in.c] = v
			}

		case cCallInd:
			if in.aux != 0 {
				// Function pointer translation (Section 3.4); its cost is
				// the Fig. 7 "fptr" component.
				d := simtime.PS(m.Spec.Cost.Cycles(arch.OpFptrMap)*m.CostScale) * simtime.PS(m.Spec.CyclePS)
				m.Clock += d
				m.Comp[CompFptr] += d
				if s := m.sampler; s != nil && m.Clock >= s.next {
					s.take(m.Clock)
				}
			}
			addr := uint32(rv(regs, in.a, in.imm))
			callee, rerr := m.ResolveFptr(addr, in.aux != 0)
			if rerr != nil {
				return 0, rerr
			}
			var v uint64
			var err error
			if callee.IsExtern() {
				ea := make([]uint64, len(in.args))
				for i := range in.args {
					ea[i] = rv(regs, in.args[i].slot, in.args[i].imm)
				}
				v, err = m.callExtern(callee, ea)
			} else {
				if len(in.args) != len(callee.Params) {
					return 0, fmt.Errorf("interp(%s): call %s with %d args, want %d",
						m.Name, callee.Nam, len(in.args), len(callee.Params))
				}
				v, err = m.callCompiled(m.cc.ensureCompiled(callee), in.args, regs)
			}
			if err != nil {
				return 0, err
			}
			if in.c >= 0 {
				regs[in.c] = v
			}

		case cBr:
			pc = in.a
		case cCondBr:
			if rv(regs, in.a, in.imm) != 0 {
				pc = in.b
			} else {
				pc = in.c
			}
		case cRet:
			if in.aux != 0 {
				return rv(regs, in.a, in.imm), nil
			}
			return 0, nil
		case cTrap:
			return 0, cf.traps[in.aux]

		default:
			return 0, fmt.Errorf("interp(%s): invalid compiled opcode %d in %s", m.Name, in.op, cf.fn.Nam)
		}
	}
}
