package interp

import (
	"testing"

	"repro/internal/mem"
)

// TestCheckpointRestoreState exercises the migration primitive on the
// bind-bench binary: run, snapshot, restore onto a fresh bind of the same
// program, and prove the restored instance is indistinguishable — same
// digest, same stack pointer, and bit-identical further execution.
func TestCheckpointRestoreState(t *testing.T) {
	work, cfg := bindBenchLowered(t)
	prog, err := Compile(work, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	kern := work.Func("kern")

	inst1 := prog.NewInstance()

	// A freshly-bound instance has no private state: its checkpoint ships
	// nothing, regardless of the image footprint.
	st0, err := inst1.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if st0.NumPages() != 0 {
		t.Fatalf("fresh instance checkpoint ships %d pages, want 0", st0.NumPages())
	}

	ret1, err := inst1.CallFunc(kern)
	if err != nil {
		t.Fatal(err)
	}
	st, err := inst1.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPages() == 0 {
		t.Fatal("post-run checkpoint ships no pages")
	}
	// Cost scales with mutated state, not footprint: the kernel reads the
	// whole 256 KiB table but writes only scratch + stack.
	if st.Bytes() >= prog.Image().Bytes()/2 {
		t.Fatalf("checkpoint ships %d bytes of a %d-byte image; should be far smaller", st.Bytes(), prog.Image().Bytes())
	}

	inst2 := prog.NewInstance()
	if err := inst2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if g, w := inst2.Mem.Digest(), inst1.Mem.Digest(); g != w {
		t.Fatalf("digest after restore = %#x, want %#x", g, w)
	}
	if g, w := inst2.SP(), inst1.SP(); g != w {
		t.Fatalf("SP after restore = %#x, want %#x", g, w)
	}
	if g, w := inst2.Mem.ResidentPrivateBytes(), inst1.Mem.ResidentPrivateBytes(); g != w {
		t.Fatalf("resident bytes after restore = %d, want %d", g, w)
	}

	// Further execution diverges nowhere: both instances run the kernel
	// again (it accumulates into scratch) and stay bit-identical.
	r1, err := inst1.CallFunc(kern)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := inst2.CallFunc(kern)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("post-restore run returned %d, original %d", r2, r1)
	}
	if r1 != ret1 {
		// kern accumulates into scratch, so a second run still returns the
		// same sum of table reads.
		t.Logf("note: kern second run %d vs first %d", r1, ret1)
	}
	if g, w := inst2.Mem.Digest(), inst1.Mem.Digest(); g != w {
		t.Fatalf("digest after post-restore run = %#x, want %#x", g, w)
	}
}

// TestRestoreStateFlushesTLBs restores onto a machine whose page caches
// are warm from prior execution; a stale cached page array (same page
// number, coincidentally matching generation) must not survive the swap.
func TestRestoreStateFlushesTLBs(t *testing.T) {
	work, cfg := bindBenchLowered(t)
	prog, err := Compile(work, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	kern := work.Func("kern")

	// Reference: fresh instance, restore the post-run checkpoint, run.
	src := prog.NewInstance()
	if _, err := src.CallFunc(kern); err != nil {
		t.Fatal(err)
	}
	st, err := src.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	ref := prog.NewInstance()
	if err := ref.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	want, err := ref.CallFunc(kern)
	if err != nil {
		t.Fatal(err)
	}

	// Victim: TLBs warm from its own run and memory scribbled over, then
	// the same checkpoint restored in place. Execution must match ref.
	victim := prog.NewInstance()
	if _, err := victim.CallFunc(kern); err != nil {
		t.Fatal(err)
	}
	for _, pn := range victim.Mem.DirtyPages() {
		if err := victim.Mem.WriteBytes(pn*mem.PageSize, []byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
			t.Fatal(err)
		}
	}
	if err := victim.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	got, err := victim.CallFunc(kern)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restore-in-place run returned %d, want %d (stale TLB?)", got, want)
	}
	if g, w := victim.Mem.Digest(), ref.Mem.Digest(); g != w {
		t.Fatalf("digest after restore-in-place run = %#x, want %#x", g, w)
	}
}
