package interp

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
)

// loopKernelModule builds the zero-allocation steady-state kernel: a
// parameterless function running a load/store/bin/branch loop over a
// global array, with no externs and no heap traffic.
func loopKernelModule(iters int64) *ir.Module {
	mod := ir.NewModule("kernel")
	b := ir.NewBuilder(mod)
	arr := b.GlobalVar("arr", ir.Array(ir.I64, 512))
	acc := b.GlobalVar("acc", ir.I64)
	b.NewFunc("kern", ir.I64)
	b.For("i", ir.Int64(0), ir.Int64(iters), ir.Int64(1), func(i ir.Value) {
		idx := b.And(i, ir.Int64(511))
		v := b.Load(b.Index(arr, idx))
		v = b.Add(b.Mul(v, ir.Int64(3)), i)
		v = b.Xor(v, b.Shr(v, ir.Int64(7)))
		b.Store(b.Index(arr, b.And(b.Add(i, ir.Int64(1)), ir.Int64(511))), v)
		b.If(b.Cmp(ir.NE, b.And(v, ir.Int64(1)), ir.Int64(0)),
			func() { b.Store(acc, b.Add(b.Load(acc), v)) },
			func() { b.Store(acc, b.Sub(b.Load(acc), i)) })
	})
	b.Ret(b.Load(acc))
	b.Finish()
	return mod
}

// callKernelModule builds the call/return kernel: a loop invoking a small
// two-argument callee, exercising the frame free list.
func callKernelModule(iters int64) *ir.Module {
	mod := ir.NewModule("callkernel")
	b := ir.NewBuilder(mod)
	acc := b.GlobalVar("acc", ir.I64)
	leaf := b.NewFunc("leaf", ir.I64, ir.P("x", ir.I64), ir.P("y", ir.I64))
	b.Ret(b.Add(b.Mul(leaf.Params[0], ir.Int64(31)), leaf.Params[1]))
	b.NewFunc("kern", ir.I64)
	b.For("i", ir.Int64(0), ir.Int64(iters), ir.Int64(1), func(i ir.Value) {
		v := b.Call(leaf, b.Load(acc), i)
		b.Store(acc, v)
	})
	b.Ret(b.Load(acc))
	b.Finish()
	return mod
}

func kernelMachine(t testing.TB, mod *ir.Module, eng Engine) (*Machine, *ir.Func) {
	t.Helper()
	work := mod.Clone(mod.Name)
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	m, err := NewMachine(Config{Name: "bench", Spec: spec, Mod: work, InitUVAGlobals: true, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	return m, work.Func("kern")
}

// TestFastEngineZeroAllocSteadyState asserts the fast engine allocates
// nothing per instruction once warm: loads, stores, binary ops and
// branches run entirely on the pre-decoded stream, the frame free list and
// the page-cache fast path (mirrors the PR-1 obs zero-alloc tests).
func TestFastEngineZeroAllocSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  *ir.Module
	}{
		{"load-store-bin-branch", loopKernelModule(256)},
		{"call-return", callKernelModule(256)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, kern := kernelMachine(t, tc.mod, EngineFast)
			if _, err := m.CallFunc(kern); err != nil { // warm: fault pages, fill pools
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := m.CallFunc(kern); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("fast engine steady state: %.1f allocs/run, want 0", allocs)
			}
		})
	}
}
