package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/simtime"
)

// engineRun captures everything the two engines must agree on.
type engineRun struct {
	code   int32
	errStr string
	out    string
	steps  int64
	clock  simtime.PS
	comp   [NumComponents]simtime.PS
	digest uint64
}

// runEngines executes mod under both engines on the given spec/std pair
// and returns the two observations. The module is cloned per run so each
// machine lowers and links a private copy.
func runEngines(t *testing.T, mod *ir.Module, spec, std *arch.Spec, costScale int64) (fast, ref engineRun) {
	t.Helper()
	one := func(eng Engine) engineRun {
		work := mod.Clone(mod.Name + "-" + eng.String())
		ir.Lower(work, spec, std)
		io := NewStdIO(nil)
		m, err := NewMachine(Config{
			Name: "diff", Spec: spec, Std: std, Mod: work,
			IO: io, CostScale: costScale, InitUVAGlobals: true, Engine: eng,
		})
		if err != nil {
			t.Fatalf("NewMachine(%v): %v", eng, err)
		}
		r := engineRun{}
		code, err := m.RunMain()
		r.code = code
		if err != nil {
			r.errStr = err.Error()
		}
		r.out = io.Out.String()
		r.steps = m.Steps
		r.clock = m.Clock
		r.comp = m.Comp
		r.digest = m.Mem.Digest(mem.StackRanges()...)
		return r
	}
	return one(EngineFast), one(EngineRef)
}

func compareRuns(t *testing.T, label string, fast, ref engineRun) {
	t.Helper()
	if fast.errStr != ref.errStr {
		t.Errorf("%s: error mismatch: fast=%q ref=%q", label, fast.errStr, ref.errStr)
		return
	}
	if fast.code != ref.code {
		t.Errorf("%s: exit code: fast=%d ref=%d", label, fast.code, ref.code)
	}
	if fast.out != ref.out {
		t.Errorf("%s: output: fast=%q ref=%q", label, fast.out, ref.out)
	}
	if fast.steps != ref.steps {
		t.Errorf("%s: steps: fast=%d ref=%d", label, fast.steps, ref.steps)
	}
	if fast.clock != ref.clock {
		t.Errorf("%s: clock: fast=%v ref=%v (delta %v)", label, fast.clock, ref.clock, fast.clock-ref.clock)
	}
	if fast.comp != ref.comp {
		t.Errorf("%s: component buckets: fast=%v ref=%v", label, fast.comp, ref.comp)
	}
	if fast.digest != ref.digest {
		t.Errorf("%s: memory digest: fast=%#x ref=%#x", label, fast.digest, ref.digest)
	}
}

// diffSpecs is the arch matrix the differential tests sweep: conventional
// lowering on the three modelled ISAs, plus the unified (Std = mobile)
// lowering used by the offload runtime, including the big-endian slow path.
func diffSpecs() [](struct{ spec, std *arch.Spec }) {
	arm, x86, ppc := arch.ARM32(), arch.X8664(), arch.POWER32BE()
	return [](struct{ spec, std *arch.Spec }){
		{arm, arm},
		{x86, x86},
		{ppc, ppc},
		{x86, arm}, // unified server lowering: Widen set on pointer accesses
		{ppc, arm}, // big-endian machine on little-endian standard: Swap set
	}
}

// genProgram builds a seeded random program exercising every opcode
// family: narrow/wide integer and float memory traffic, all binary ops
// (division guarded non-zero), all compare predicates, struct field and
// array index addressing, conversions, direct, indirect and extern calls,
// loops and branches.
func genProgram(seed int64) *ir.Module {
	r := rand.New(rand.NewSource(seed))
	mod := ir.NewModule(fmt.Sprintf("gen%d", seed))
	b := ir.NewBuilder(mod)

	st := ir.Struct(fmt.Sprintf("pair%d", seed),
		ir.StructField{Name: "a", Type: ir.I32},
		ir.StructField{Name: "b", Type: ir.I64},
		ir.StructField{Name: "c", Type: ir.F64},
	)

	initInts := make([]ir.Value, 64)
	for i := range initInts {
		initInts[i] = ir.Int64(r.Int63() - r.Int63())
	}
	arr := b.GlobalVar("arr", ir.Array(ir.I64, 64), initInts...)
	initFloats := make([]ir.Value, 16)
	for i := range initFloats {
		initFloats[i] = ir.Float(r.NormFloat64() * 1000)
	}
	farr := b.GlobalVar("farr", ir.Array(ir.F64, 16), initFloats...)
	narrow := b.GlobalVar("narrow", ir.Array(ir.I8, 32))
	words := b.GlobalVar("words", ir.Array(ir.I32, 32))
	f32s := b.GlobalVar("f32s", ir.Array(ir.F32, 8))
	pair := b.GlobalVar("pair", st)
	fptr := b.GlobalVar("fptr", ir.Ptr(ir.I8))

	// mix: a random straight-line integer function, also used as the
	// indirect-call target.
	mix := b.NewFunc("mix", ir.I64, ir.P("x", ir.I64), ir.P("y", ir.I64))
	{
		x, y := ir.Value(mix.Params[0]), ir.Value(mix.Params[1])
		for i := 0; i < 4+r.Intn(8); i++ {
			switch r.Intn(10) {
			case 0:
				x = b.Add(x, y)
			case 1:
				x = b.Sub(x, b.Xor(y, ir.Int64(r.Int63())))
			case 2:
				x = b.Mul(x, ir.Int64(r.Int63n(1000)-500))
			case 3:
				x = b.Div(x, b.Or(y, ir.Int64(1)))
			case 4:
				x = b.Rem(x, b.Or(b.And(y, ir.Int64(1023)), ir.Int64(5)))
			case 5:
				x = b.Shl(x, b.And(y, ir.Int64(63)))
			case 6:
				x = b.Shr(x, ir.Int64(r.Int63n(64)))
			case 7:
				x = b.Convert(ir.ConvTrunc, x, []ir.Type{ir.I8, ir.I16, ir.I32}[r.Intn(3)])
				x = b.Convert(ir.ConvSExt, x, ir.I64)
			case 8:
				pred := []ir.CmpPred{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE}[r.Intn(6)]
				c := b.Cmp(pred, x, y)
				x = b.Add(x, b.Convert(ir.ConvZExt, c, ir.I64))
			default:
				x, y = b.Xor(x, y), x
			}
		}
		b.Ret(x)
	}

	// fmix: float pipeline with conversions both ways.
	fmix := b.NewFunc("fmix", ir.F64, ir.P("v", ir.F64), ir.P("k", ir.I64))
	{
		v := ir.Value(fmix.Params[0])
		k := b.Convert(ir.ConvIntToFP, fmix.Params[1], ir.F64)
		for i := 0; i < 2+r.Intn(4); i++ {
			switch r.Intn(5) {
			case 0:
				v = b.Bin(ir.Add, v, k)
			case 1:
				v = b.Bin(ir.Mul, v, ir.Float(1+r.Float64()))
			case 2:
				v = b.Bin(ir.Sub, v, ir.Float(r.NormFloat64()*10))
			case 3:
				v = b.Bin(ir.Div, v, ir.Float(1.5+r.Float64()))
			default:
				v = b.Convert(ir.ConvFPTrunc, v, ir.F32)
				v = b.Convert(ir.ConvFPExt, v, ir.F64)
			}
		}
		b.Ret(v)
	}

	main := b.NewFunc("main", ir.I32)
	_ = main
	accp := b.Alloca(ir.I64)
	b.Store(accp, ir.Int64(int64(seed)))
	faccp := b.Alloca(ir.F64)
	b.Store(faccp, ir.Float(float64(seed%97)))
	b.Store(fptr, b.Convert(ir.ConvBitcast, b.FuncAddr(mix), ir.Ptr(ir.I8)))
	b.Store(b.Field(pair, 0), ir.Int(int64(r.Int31())))
	b.Store(b.Field(pair, 1), ir.Int64(r.Int63()))
	b.Store(b.Field(pair, 2), ir.Float(r.NormFloat64()))

	iters := int64(16 + r.Intn(32))
	b.For("loop", ir.Int64(0), ir.Int64(iters), ir.Int64(1), func(i ir.Value) {
		acc := b.Load(accp)
		v := b.Load(b.Index(arr, b.And(i, ir.Int64(63))))
		v = b.Call(mix, v, i)
		b.Store(b.Index(arr, b.And(b.Add(b.Mul(i, ir.Int64(7)), ir.Int64(int64(r.Intn(64)))), ir.Int64(63))), v)

		// Narrow memory traffic: i8 and i32 arrays round-trip through
		// sign-extension on load.
		b.Store(b.Index(narrow, b.And(i, ir.Int64(31))), b.Convert(ir.ConvTrunc, v, ir.I8))
		n8 := b.Convert(ir.ConvSExt, b.Load(b.Index(narrow, b.And(acc, ir.Int64(31)))), ir.I64)
		b.Store(b.Index(words, b.And(i, ir.Int64(31))), b.Convert(ir.ConvTrunc, acc, ir.I32))
		n32 := b.Convert(ir.ConvSExt, b.Load(b.Index(words, b.And(i, ir.Int64(31)))), ir.I64)

		// Struct field traffic.
		pb := b.Load(b.Field(pair, 1))
		b.Store(b.Field(pair, 1), b.Add(pb, v))

		// Indirect call through the stored function pointer.
		fp := b.Load(fptr)
		ind := b.CallPtr(b.Convert(ir.ConvBitcast, fp, ir.Ptr(mix.Sig)), mix.Sig, acc, i)

		acc = b.Add(acc, b.Xor(b.Add(n8, n32), ind))
		b.If(b.Cmp(ir.NE, b.And(v, ir.Int64(1)), ir.Int64(0)),
			func() { b.Store(accp, b.Add(acc, v)) },
			func() { b.Store(accp, b.Sub(acc, ir.Int64(int64(r.Intn(1_000_000))))) })

		// Float path with an f32 spill.
		fv := b.Load(b.Index(farr, b.And(i, ir.Int64(15))))
		fv = b.Call(fmix, fv, i)
		b.Store(b.Index(f32s, b.And(i, ir.Int64(7))), b.Convert(ir.ConvFPTrunc, fv, ir.F32))
		back := b.Convert(ir.ConvFPExt, b.Load(b.Index(f32s, b.And(i, ir.Int64(7)))), ir.F64)
		b.Store(b.Index(farr, b.And(i, ir.Int64(15))), back)
		b.Store(faccp, b.Bin(ir.Add, b.Load(faccp), b.Convert(ir.ConvIntToFP, b.Convert(ir.ConvFPToInt, back, ir.I64), ir.F64)))
	})

	b.CallExtern(ir.ExternPrintf, b.Str("acc=%d pair=%d f=%f\n"),
		b.Load(accp), b.Load(b.Field(pair, 1)), b.Load(faccp))
	b.Ret(ir.Int(int64(seed % 7)))
	b.Finish()
	return mod
}

// TestEngineDifferentialRandomPrograms drives >=100 seeded random programs
// through the fast and reference engines across the arch matrix, asserting
// identical output, exit code, Steps, Clock, component buckets and
// stack-excluded memory digest.
func TestEngineDifferentialRandomPrograms(t *testing.T) {
	seeds := 110
	if testing.Short() {
		seeds = 25
	}
	specs := diffSpecs()
	for seed := 0; seed < seeds; seed++ {
		mod := genProgram(int64(seed))
		for _, sp := range specs {
			label := fmt.Sprintf("seed=%d %s/std=%s", seed, sp.spec.Name, sp.std.Name)
			fast, ref := runEngines(t, mod, sp.spec, sp.std, 1)
			compareRuns(t, label, fast, ref)
			if t.Failed() {
				t.Fatalf("%s: engines diverged", label)
			}
		}
	}
}

// TestEngineDifferentialErrors pins error equivalence: both engines must
// produce the same error text, step count and clock for trapping programs.
func TestEngineDifferentialErrors(t *testing.T) {
	build := func(f func(b *ir.Builder)) *ir.Module {
		mod := ir.NewModule("trap")
		b := ir.NewBuilder(mod)
		b.NewFunc("main", ir.I32)
		f(b)
		b.Finish()
		return mod
	}
	cases := map[string]*ir.Module{
		"div-zero": build(func(b *ir.Builder) {
			p := b.Alloca(ir.I64)
			b.Store(p, ir.Int64(0))
			b.Ret(b.Convert(ir.ConvTrunc, b.Div(ir.Int64(7), b.Load(p)), ir.I32))
		}),
		"rem-zero": build(func(b *ir.Builder) {
			p := b.Alloca(ir.I64)
			b.Store(p, ir.Int64(0))
			b.Ret(b.Convert(ir.ConvTrunc, b.Rem(ir.Int64(7), b.Load(p)), ir.I32))
		}),
		"exit": build(func(b *ir.Builder) {
			b.CallExtern(ir.ExternExit, ir.Int(41))
			b.Ret(ir.Int(0))
		}),
	}
	arm := arch.ARM32()
	for name, mod := range cases {
		fast, ref := runEngines(t, mod, arm, arm, 1)
		compareRuns(t, name, fast, ref)
	}
}

// TestEngineDifferentialCostScale checks the aggregate segment charge
// scales exactly like per-instruction charging under CostScale
// amplification.
func TestEngineDifferentialCostScale(t *testing.T) {
	mod := genProgram(4242)
	arm := arch.ARM32()
	for _, scale := range []int64{1, 10, 1000} {
		fast, ref := runEngines(t, mod, arm, arm, scale)
		compareRuns(t, fmt.Sprintf("scale=%d", scale), fast, ref)
	}
}
