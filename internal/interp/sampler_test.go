package interp

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

// runSampled executes the call kernel with a sampler attached and returns
// the flushed sampler plus the machine's final clock.
func runSampled(t *testing.T, eng Engine, period simtime.PS) (*Sampler, simtime.PS) {
	t.Helper()
	m, kern := kernelMachine(t, callKernelModule(512), eng)
	s := NewSampler(period)
	m.SetSampler(s)
	if _, err := m.CallFunc(kern); err != nil {
		t.Fatal(err)
	}
	s.Flush(m.Clock)
	return s, m.Clock
}

// TestSamplerTotalMatchesClock is the headline accounting invariant: after
// Flush, every simulated picosecond the machine ran is attributed to some
// stack, on both engines, regardless of period.
func TestSamplerTotalMatchesClock(t *testing.T) {
	for _, eng := range []Engine{EngineFast, EngineRef} {
		for _, period := range []simtime.PS{0, simtime.Microsecond, 100 * simtime.Microsecond} {
			s, clock := runSampled(t, eng, period)
			if s.Total() != int64(clock) {
				t.Errorf("engine %v period %v: Total = %d, Clock = %d", eng, period, s.Total(), clock)
			}
			if s.Samples() == 0 {
				t.Errorf("engine %v period %v: no samples fired", eng, period)
			}
		}
	}
}

// TestSamplerDeterminism: two identical runs fold to byte-identical
// profiles — the acceptance bar for golden-testing anything downstream.
func TestSamplerDeterminism(t *testing.T) {
	a, _ := runSampled(t, EngineFast, simtime.Microsecond)
	b, _ := runSampled(t, EngineFast, simtime.Microsecond)
	if a.Folded() != b.Folded() {
		t.Errorf("identical runs produced different profiles:\n--- a\n%s--- b\n%s", a.Folded(), b.Folded())
	}
}

// TestSamplerStacks checks the folded output has the expected shape: the
// callee attributed under the caller, and TopFuncs consistent with it.
func TestSamplerStacks(t *testing.T) {
	s, clock := runSampled(t, EngineFast, simtime.Microsecond)
	folded := s.Folded()
	if !strings.Contains(folded, "kern;leaf ") {
		t.Errorf("profile missing kern;leaf stack:\n%s", folded)
	}
	top := s.TopFuncs()
	if len(top) == 0 {
		t.Fatal("TopFuncs empty")
	}
	var kern *FuncStat
	for i := range top {
		if top[i].Name == "kern" {
			kern = &top[i]
		}
		if top[i].CumPS < top[i].SelfPS {
			t.Errorf("%s: cum %d < self %d", top[i].Name, top[i].CumPS, top[i].SelfPS)
		}
	}
	if kern == nil {
		t.Fatal("kern missing from TopFuncs")
	}
	// kern is the root: everything attributed while the kernel ran is
	// cumulative under it.
	if kern.CumPS != int64(clock) {
		t.Errorf("kern cum = %d, want whole clock %d", kern.CumPS, clock)
	}

	var sb strings.Builder
	if err := s.WriteFolded(&sb, "mobile"); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.SplitAfter(sb.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "mobile;") {
			t.Errorf("rooted folded line missing prefix: %q", line)
		}
	}
}

// TestSamplerNil pins nil-safety of the whole exported surface.
func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Flush(simtime.Second)
	if s.Total() != 0 || s.Samples() != 0 || s.Folded() != "" || s.TopFuncs() != nil || s.Period() != 0 {
		t.Error("nil sampler leaked state")
	}
	if err := s.WriteFolded(&strings.Builder{}, "x"); err != nil {
		t.Error(err)
	}
	m, kern := kernelMachine(t, loopKernelModule(16), EngineFast)
	m.SetSampler(nil) // detached machine must run unchanged
	if _, err := m.CallFunc(kern); err != nil {
		t.Fatal(err)
	}
	if m.Sampler() != nil {
		t.Error("Sampler() not nil after detach")
	}
}

// TestSamplerDisabledZeroAlloc extends the steady-state guarantee: the
// sampler guard in the hot loop costs no allocations when no sampler is
// attached (the existing TestFastEngineZeroAllocSteadyState covers the
// same paths; this one exists so a regression points at the sampler).
func TestSamplerDisabledZeroAlloc(t *testing.T) {
	m, kern := kernelMachine(t, loopKernelModule(256), EngineFast)
	if _, err := m.CallFunc(kern); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.CallFunc(kern); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("sampler-disabled steady state: %.1f allocs/run, want 0", allocs)
	}
}

// TestSamplerEnabledSteadyAlloc documents the enabled-path cost: once the
// folded map keys exist, further attribution reuses the scratch key and
// the steady state stays allocation-free too.
func TestSamplerEnabledSteadyAlloc(t *testing.T) {
	m, kern := kernelMachine(t, loopKernelModule(256), EngineFast)
	s := NewSampler(simtime.Microsecond)
	m.SetSampler(s)
	if _, err := m.CallFunc(kern); err != nil { // warm: intern the stack keys
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.CallFunc(kern); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("sampler-enabled steady state: %.1f allocs/run, want 0", allocs)
	}
}
