// Machine checkpoint/restore: the interp half of mid-flight offload
// migration. A checkpoint carries the machine-visible execution state a
// migration must ship — the stack pointer and the private pages of the
// copy-on-write memory overlay. Everything else a resumed instance needs
// (code, clean initial pages, address layout) re-binds from the shared
// Program image on the target for free, so checkpoint size is
// proportional to mutated state, not to the program's footprint.
package interp

import (
	"fmt"

	"repro/internal/mem"
)

// State is the migratable execution state of a program instance.
type State struct {
	// SP is the guest stack pointer at the checkpoint instant. The guest
	// registers of in-progress frames live in the dirty stack pages the
	// memory checkpoint already carries.
	SP uint32
	// Mem is the private-page snapshot of the copy-on-write overlay.
	Mem *mem.Checkpoint
}

// NumPages is the number of private pages the checkpoint ships.
func (s *State) NumPages() int { return s.Mem.NumPages() }

// Bytes is the page payload the checkpoint ships.
func (s *State) Bytes() int { return s.Mem.Bytes() }

// FlushTLBs invalidates the machine's direct-mapped page caches. Required
// after any wholesale replacement of the machine's Memory: a cached entry
// pairs a page array with a generation counter, and a restored memory may
// legitimately reuse both.
func (m *Machine) FlushTLBs() {
	m.rtlb = [tlbWays]tlbEntry{}
	m.wtlb = [tlbWays]tlbEntry{}
}

// CheckpointState snapshots the machine's migratable state. The machine
// must be a shared-Program instance (Program.NewInstance): only then can
// the target re-bind the clean pages the checkpoint omits.
func (m *Machine) CheckpointState() (*State, error) {
	if m.prog == nil {
		return nil, fmt.Errorf("interp(%s): checkpoint requires a shared-Program instance", m.Name)
	}
	return &State{SP: m.sp, Mem: m.Mem.Checkpoint()}, nil
}

// RestoreState restores a checkpoint into the machine's overlay in place,
// modelling resumption on a new host: the target binds the immutable
// Program image O(1) (this machine's overlay already shares it) and
// receives only the private pages. The restore replaces the overlay's
// private state without changing the Memory object's identity, so the
// swap is safe even at a remote-service boundary reached from inside a
// page-fault handler — an in-flight fault completes against the restored
// page set. The fault handler, dirty tracking, and touch hook are
// untouched; the heap allocators' administrative state lives inside guest
// memory, so it travels with the checkpointed pages. The page TLBs are
// flushed: the restored generation deliberately equals the snapshot's,
// which a stale cache entry would otherwise match.
func (m *Machine) RestoreState(s *State) error {
	if m.prog == nil {
		return fmt.Errorf("interp(%s): restore requires a shared-Program instance", m.Name)
	}
	m.Mem.Restore(s.Mem)
	m.SetSP(s.SP)
	m.FlushTLBs()
	return nil
}
