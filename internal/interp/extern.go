package interp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// callExtern dispatches a call to a body-less function.
func (m *Machine) callExtern(f *ir.Func, args []uint64) (uint64, error) {
	if ps := m.sampler; ps != nil {
		// Extern frames appear in profiles too: time spent in remote I/O or
		// the offload externs attributes to the extern, not its caller.
		ps.push(f.Nam, m.Clock)
		defer func() { ps.pop(m.Clock) }()
	}
	switch f.Extern {
	case ir.ExternMalloc:
		m.charge(arch.OpCall, CompCompute)
		p, err := m.LocalHeap.Alloc(uint32(args[0]))
		return uint64(p), err
	case ir.ExternUMalloc:
		m.charge(arch.OpCall, CompCompute)
		p, err := m.Heap.Alloc(uint32(args[0]))
		return uint64(p), err
	case ir.ExternFree:
		m.charge(arch.OpCall, CompCompute)
		return 0, m.LocalHeap.Free(uint32(args[0]))
	case ir.ExternUFree:
		m.charge(arch.OpCall, CompCompute)
		return 0, m.Heap.Free(uint32(args[0]))

	case ir.ExternPrintf:
		s, err := m.formatPrintf(args)
		if err != nil {
			return 0, err
		}
		m.chargeN(arch.OpIOByte, int64(len(s)), CompCompute)
		m.IO.Write(s)
		return uint64(len(s)), nil

	case ir.ExternRemotePrintf:
		s, err := m.formatPrintf(args)
		if err != nil {
			return 0, err
		}
		if m.Sys != nil {
			if err := m.Sys.RemoteWrite(m, s); err != nil {
				return 0, err
			}
			return uint64(len(s)), nil
		}
		// Local execution of the offloading-enabled binary: the remote
		// output function just runs locally.
		m.chargeN(arch.OpIOByte, int64(len(s)), CompCompute)
		m.IO.Write(s)
		return uint64(len(s)), nil

	case ir.ExternScanf:
		return m.runScanf(args)

	case ir.ExternFileOpen, ir.ExternRemoteFileOpen:
		name, err := m.readCString(uint32(args[0]))
		if err != nil {
			return 0, err
		}
		m.charge(arch.OpCall, CompCompute)
		if f.Extern == ir.ExternRemoteFileOpen && m.Sys != nil {
			fd, err := m.Sys.RemoteOpen(m, name)
			return uint64(fd), err
		}
		fd, err := m.IO.Open(name)
		return uint64(fd), err

	case ir.ExternFileRead, ir.ExternRemoteFileRead:
		fd := int32(args[0])
		buf := uint32(args[1])
		n := int(int32(args[2]))
		var data []byte
		var err error
		if f.Extern == ir.ExternRemoteFileRead && m.Sys != nil {
			data, err = m.Sys.RemoteRead(m, fd, n)
		} else {
			data, err = m.IO.Read(fd, n)
			// Bulk file input is DMA-like: charge per cache line, not
			// per byte (printf-style I/O keeps the per-byte cost).
			m.chargeN(arch.OpIOByte, int64(len(data)/256+1), CompCompute)
		}
		if err != nil {
			return 0, err
		}
		if len(data) > 0 {
			if werr := m.Mem.WriteBytes(buf, data); werr != nil {
				return 0, werr
			}
		}
		return uint64(len(data)), nil

	case ir.ExternFileClose, ir.ExternRemoteFileClose:
		m.charge(arch.OpCall, CompCompute)
		fd := int32(args[0])
		if f.Extern == ir.ExternRemoteFileClose && m.Sys != nil {
			return 0, m.Sys.RemoteClose(m, fd)
		}
		return 0, m.IO.Close(fd)

	case ir.ExternExit:
		return 0, &ExitError{Code: int32(args[0])}

	case ir.ExternMemcpy:
		// Bulk copies run at cacheline granularity, like real memcpy.
		dst, src, n := uint32(args[0]), uint32(args[1]), int(int32(args[2]))
		m.chargeN(arch.OpLoad, int64(n)/64+1, CompCompute)
		m.chargeN(arch.OpStore, int64(n)/64+1, CompCompute)
		data, err := m.Mem.ReadBytes(src, n)
		if err != nil {
			return 0, err
		}
		return uint64(dst), m.Mem.WriteBytes(dst, data)

	case ir.ExternMemset:
		dst, c, n := uint32(args[0]), byte(args[1]), int(int32(args[2]))
		m.chargeN(arch.OpStore, int64(n)/64+1, CompCompute)
		fill := make([]byte, n)
		for i := range fill {
			fill[i] = c
		}
		return uint64(dst), m.Mem.WriteBytes(dst, fill)

	case ir.ExternAsm, ir.ExternSyscall, ir.ExternUnknown:
		// Machine-specific work: legal on the machine it was written for.
		m.chargeN(arch.OpIntALU, 50, CompCompute)
		return 0, nil

	case ir.ExternGate:
		if m.Sys == nil {
			return 0, nil // no runtime attached: never offload
		}
		if m.Sys.Gate(m, int32(args[0])) {
			return 1, nil
		}
		return 0, nil

	case ir.ExternOffload:
		if m.Sys == nil {
			return 0, fmt.Errorf("interp(%s): no.offload without a runtime", m.Name)
		}
		return m.Sys.Offload(m, int32(args[0]), args[1:])

	case ir.ExternAccept:
		if m.Sys == nil {
			return 0, nil // shut down immediately
		}
		id := m.Sys.Accept(m)
		if id > 0 {
			// The offloaded task begins executing here (the clock was
			// synchronized to the request arrival by Accept).
			m.Tracer.Emit(obs.Event{Time: m.Clock, Kind: obs.KTaskEnter,
				Track: m.TraceTrack, A0: int64(id)})
		}
		return uint64(id), nil

	case ir.ExternArg:
		if m.Sys == nil {
			return 0, fmt.Errorf("interp(%s): no.arg without a runtime", m.Name)
		}
		return m.Sys.Arg(m, int32(args[0])), nil

	case ir.ExternSendReturn:
		if m.Sys == nil {
			return 0, fmt.Errorf("interp(%s): no.sendreturn without a runtime", m.Name)
		}
		// Task execution proper ends where finalization begins.
		m.Tracer.Emit(obs.Event{Time: m.Clock, Kind: obs.KTaskExit,
			Track: m.TraceTrack})
		return 0, m.Sys.SendReturn(m, args[0])

	case ir.ExternFptrToM:
		// Explicit function-pointer map call; the usual path is a Mapped
		// CallInd, but the extern exists for hand-written tests.
		d := simtime.PS(m.Spec.Cost.Cycles(arch.OpFptrMap)*m.CostScale) * simtime.PS(m.Spec.CyclePS)
		m.Clock += d
		m.Comp[CompFptr] += d
		if s := m.sampler; s != nil && m.Clock >= s.next {
			s.take(m.Clock)
		}
		return args[0], nil
	}
	return 0, fmt.Errorf("interp(%s): call to unimplemented extern %s", m.Name, f.Nam)
}

// formatPrintf implements the printf subset the workloads use:
// %d %u %c %x %s %f %lf %g %e %% with optional width/precision digits.
func (m *Machine) formatPrintf(args []uint64) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("interp: printf without format")
	}
	format, err := m.readCString(uint32(args[0]))
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	argi := 1
	nextArg := func() (uint64, error) {
		if argi >= len(args) {
			return 0, fmt.Errorf("interp: printf %q: missing argument %d", format, argi)
		}
		v := args[argi]
		argi++
		return v, nil
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			i++
			continue
		}
		// Collect the spec: flags/width/precision plus length modifiers.
		j := i + 1
		spec := "%"
		for j < len(format) && strings.ContainsRune("-+ 0123456789.", rune(format[j])) {
			spec += string(format[j])
			j++
		}
		for j < len(format) && (format[j] == 'l' || format[j] == 'h') {
			j++ // length modifiers are irrelevant at 64-bit register width
		}
		if j >= len(format) {
			sb.WriteString(spec)
			break
		}
		verb := format[j]
		i = j + 1
		switch verb {
		case '%':
			sb.WriteByte('%')
		case 'd', 'i':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, spec+"d", int64(v))
		case 'u':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, spec+"d", v)
		case 'x':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, spec+"x", v)
		case 'c':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			sb.WriteByte(byte(v))
		case 'f', 'g', 'e':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, spec+string(verb), math.Float64frombits(v))
		case 's':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			s, err := m.readCString(uint32(v))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, spec+"s", s)
		default:
			return "", fmt.Errorf("interp: printf verb %%%c unsupported", verb)
		}
	}
	return sb.String(), nil
}

// runScanf implements scanf for %d, %ld, %lf conversions; arguments are
// pointers to the destinations. It is always a local (mobile) operation:
// the function filter never lets scanf move to the server.
func (m *Machine) runScanf(args []uint64) (uint64, error) {
	format, err := m.readCString(uint32(args[0]))
	if err != nil {
		return 0, err
	}
	m.chargeN(arch.OpIOByte, int64(len(format))+8, CompCompute)
	argi := 1
	stored := uint64(0)
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		long := false
		j := i + 1
		for j < len(format) && format[j] == 'l' {
			long = true
			j++
		}
		if j >= len(format) {
			break
		}
		if argi >= len(args) {
			return stored, fmt.Errorf("interp: scanf %q: missing destination", format)
		}
		dst := uint32(args[argi])
		argi++
		switch format[j] {
		case 'd':
			v, ok := m.IO.NextInt()
			if !ok {
				return stored, fmt.Errorf("interp: scanf: stdin exhausted for %q", format)
			}
			t := ir.Type(ir.I32)
			if long {
				t = ir.I64
			}
			if err := m.writeScalar(dst, t, uint64(v)); err != nil {
				return stored, err
			}
		case 'f':
			v, ok := m.IO.NextFloat()
			if !ok {
				return stored, fmt.Errorf("interp: scanf: stdin exhausted for %q", format)
			}
			if err := m.writeScalar(dst, ir.F64, math.Float64bits(v)); err != nil {
				return stored, err
			}
		default:
			return stored, fmt.Errorf("interp: scanf verb %%%c unsupported", format[j])
		}
		stored++
		i = j
	}
	return stored, nil
}
