package interp

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
)

// Engine selects how a Machine executes function bodies.
type Engine int

const (
	// EngineFast pre-decodes every function into a flat instruction array
	// at bind time and interprets that (the default). A machine with a
	// Listener attached falls back to the reference engine regardless,
	// because the profiler needs per-block clock observations.
	EngineFast Engine = iota
	// EngineRef is the original tree-walking interpreter, kept as the
	// semantic reference the fast engine is differentially tested against.
	EngineRef
)

func (e Engine) String() string {
	if e == EngineRef {
		return "ref"
	}
	return "fast"
}

// ParseEngine parses the -engine CLI flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "fast":
		return EngineFast, nil
	case "ref", "reference":
		return EngineRef, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want fast or ref)", s)
}

// cop is the pre-decoded opcode. The fast engine's hot loop is a switch
// over this enum; no interface dispatch, no per-operand type switch.
type cop uint8

const (
	cInvalid cop = iota

	// cCharge applies one straight-line segment's aggregate cost: aux
	// counts the IR instructions (Steps), imm their summed cycle charge
	// (including Swap/Widen layout charges). A segment ends after every
	// instruction whose execution can observe the clock or fail (memory
	// access, call, alloca, integer divide), so the clock any such
	// instruction sees is bit-identical to the reference engine's
	// charge-per-instruction interleaving.
	cCharge
	// cTrap returns the precomputed error traps[aux].
	cTrap

	cAlloca // imm = aligned size; c = dst; aux = stack-overflow trap

	// Loads: address in (a,imm); b = byte size; c = dst.
	cLoadSExt // aux = significant bits (sign-extended integer)
	cLoadZExt // pointers: zero-extend
	cLoadF32  // promote f32 bits to f64 register form
	cLoadF64
	cLoadSlow // ref = *ir.Load; unlowered, big-endian or exotic accesses

	// Stores: address in (a,imm); value in (b,imm2); aux = byte size.
	cStoreInt
	cStoreF32
	cStoreSlow // ref = *ir.Store

	// Binary ops: x in (a,imm), y in (b,imm2), dst in c.
	cAdd
	cSub
	cMul
	cDiv // aux = divide-by-zero trap
	cRem // aux = remainder-by-zero trap
	cAnd
	cOr
	cXor
	cShl
	cShr
	cFAdd
	cFSub
	cFMul
	cFDiv

	// Compares: aux = ir.CmpPred.
	cCmpS // signed integers
	cCmpU // pointers (unsigned)
	cCmpF // floats

	cIndexAddr // base in (a,imm), index in (b,imm2), stride in aux

	// Conversions: x in (a,imm), dst in c.
	cMov   // sext/fpext/bitcast/no-op widenings, and FuncAddr constants
	cTrunc // aux = bits, sign-extends the result
	cZExt  // imm2 = value mask
	cIntToFP
	cFPToInt // aux = bits
	cFPTrunc

	cCall    // callee/ctarget/args; c = dst (-1 discards)
	cCallInd // fn addr in (a,imm); aux = 1 when Mapped; args; c = dst
	cBr      // a = target pc
	cCondBr  // cond in (a,imm); b = then pc, c = else pc
	cRet     // aux = 1: value in (a,imm)
)

// carg is one pre-decoded call argument: a caller register slot, or an
// inlined constant when slot < 0.
type carg struct {
	slot int32
	imm  uint64
}

// cinstr is one fixed-size pre-decoded instruction. Operand convention:
// X in (a,imm), Y in (b,imm2) — slot < 0 selects the inlined constant —
// destination slot in c, static extras (bits, predicate, stride, size,
// trap index, branch target) in aux/a/b/c as each opcode documents.
type cinstr struct {
	op      cop
	aux     int32
	a, b, c int32
	imm     uint64
	imm2    uint64
	args    []carg
	callee  *ir.Func
	ctarget *cfunc
	ref     ir.Instr
}

// cfunc is one function compiled against one linkage (operands inline
// linker-assigned global and function addresses). idx names the frame pool
// a Machine recycles this function's register frames through — frames are
// per-machine state, so shared compiled code carries only the index.
type cfunc struct {
	fn       *ir.Func
	idx      int32
	compiled bool
	code     []cinstr
	traps    []error
}

// compiler is the compile-time environment: everything pre-decoding a
// function body needs, independent of any executing Machine. A private
// Machine owns an unsealed compiler and may keep compiling lazily; a shared
// Program seals its compiler after eagerly compiling the whole module, at
// which point the cfuncs map is immutable and safe for concurrent readers.
type compiler struct {
	name   string
	spec   *arch.Spec
	std    *arch.Spec
	lay    *linkage
	cfuncs map[*ir.Func]*cfunc
	nfuncs int32 // frame-pool indices handed out
	sealed bool
}

func newCompiler(name string, spec, std *arch.Spec, lay *linkage, hint int) *compiler {
	return &compiler{
		name:   name,
		spec:   spec,
		std:    std,
		lay:    lay,
		cfuncs: make(map[*ir.Func]*cfunc, hint),
	}
}

// shell returns the (possibly not yet compiled) cfunc for f, creating an
// empty shell on first request so mutually recursive functions can link.
func (c *compiler) shell(f *ir.Func) *cfunc {
	cf := c.cfuncs[f]
	if cf == nil {
		if c.sealed {
			panic(fmt.Sprintf("interp(%s): compile of %s after the program was sealed (shared programs compile the whole module eagerly)", c.name, f.Nam))
		}
		cf = &cfunc{fn: f, idx: c.nfuncs}
		c.nfuncs++
		c.cfuncs[f] = cf
	}
	return cf
}

// ensureCompiled returns f's compiled form, compiling on first use (bind
// time for module functions; lazily for functions reached only through a
// translating function-pointer resolver).
func (c *compiler) ensureCompiled(f *ir.Func) *cfunc {
	cf := c.shell(f)
	if !cf.compiled {
		c.compileInto(cf)
	}
	return cf
}

// cval resolves an operand to (register slot, inlined constant); slot < 0
// means the constant. Mirrors the reference engine's operand().
func (c *compiler) cval(v ir.Value) (int32, uint64) {
	switch v := v.(type) {
	case *ir.ConstInt:
		return -1, uint64(v.V)
	case *ir.ConstFloat:
		return -1, floatBits(v.Typ, v.V)
	case *ir.ConstNull:
		return -1, 0
	case *ir.ConstUVA:
		return -1, uint64(v.Addr)
	case *ir.Param:
		return int32(v.Slot), 0
	case *ir.Global:
		return -1, uint64(c.lay.globalAddr[v])
	case *ir.Func:
		return -1, uint64(c.lay.funcAddr[v])
	case ir.Instr:
		return int32(v.(interface{ Slot() int }).Slot()), 0
	}
	panic(fmt.Sprintf("interp: unhandled operand %T", v))
}

func (c *compiler) cargs(args []ir.Value) []carg {
	if len(args) == 0 {
		return nil
	}
	out := make([]carg, len(args))
	for i, a := range args {
		out[i].slot, out[i].imm = c.cval(a)
	}
	return out
}

func cdst(in ir.Instr) int32 { return int32(in.(interface{ Slot() int }).Slot()) }

// compileInto flattens cf.fn into cf.code. Each basic block becomes one or
// more charge segments: a cCharge carrying the aggregate Steps/cycles of
// the segment's instructions, followed by their pre-decoded forms. Branch
// targets are pc indices patched after all blocks are placed.
func (c *compiler) compileInto(cf *cfunc) {
	if c.sealed {
		panic(fmt.Sprintf("interp(%s): compile of %s after the program was sealed", c.name, cf.fn.Nam))
	}
	f := cf.fn
	cost := c.spec.Cost
	start := make(map[*ir.Block]int32, len(f.Blocks))
	type fixup struct {
		pc    int
		field int // 0 = a, 1 = b, 2 = c
		dst   *ir.Block
	}
	var fixups []fixup

	var seg []cinstr
	var segCycles int64
	var segSteps int32
	flush := func() {
		if segSteps > 0 {
			cf.code = append(cf.code, cinstr{op: cCharge, aux: segSteps, imm: uint64(segCycles)})
			segCycles, segSteps = 0, 0
		}
		cf.code = append(cf.code, seg...)
		seg = seg[:0]
	}
	newTrap := func(err error) int32 {
		cf.traps = append(cf.traps, err)
		return int32(len(cf.traps) - 1)
	}
	trap := func(err error) {
		seg = append(seg, cinstr{op: cTrap, aux: newTrap(err)})
		flush()
	}

	for _, blk := range f.Blocks {
		start[blk] = int32(len(cf.code))
		terminated := false
	instrs:
		for _, in := range blk.Instrs {
			segSteps++
			switch in := in.(type) {
			case *ir.Alloca:
				segCycles += cost.Cycles(arch.OpAlloca)
				seg = append(seg, cinstr{
					op:  cAlloca,
					c:   cdst(in),
					imm: uint64(alignUp32(uint32(in.SizeBytes), 16)),
					aux: newTrap(fmt.Errorf("interp(%s): stack overflow in %s", c.name, f.Nam)),
				})
				flush()

			case *ir.Load:
				segCycles += cost.Cycles(arch.OpLoad)
				if in.Lay.Swap {
					segCycles += cost.Cycles(arch.OpEndianSwap)
				}
				if in.Lay.Widen {
					segCycles += cost.Cycles(arch.OpPtrConvert)
				}
				ci := cinstr{c: cdst(in), b: int32(in.Lay.Size)}
				ci.a, ci.imm = c.cval(in.Ptr)
				if in.Lay.Size == 0 || c.std.Endian != arch.Little {
					ci.op, ci.ref = cLoadSlow, in
				} else {
					switch t := in.Elem.(type) {
					case *ir.IntType:
						ci.op = cLoadSExt
						ci.aux = int32(min(t.Bits, in.Lay.Size*8))
					case *ir.PointerType:
						ci.op = cLoadZExt
					case *ir.FloatType:
						if t.Bits == 32 {
							ci.op = cLoadF32
						} else {
							ci.op = cLoadF64
						}
					default:
						ci.op, ci.ref = cLoadSlow, in
					}
				}
				seg = append(seg, ci)
				flush()

			case *ir.Store:
				segCycles += cost.Cycles(arch.OpStore)
				if in.Lay.Swap {
					segCycles += cost.Cycles(arch.OpEndianSwap)
				}
				if in.Lay.Widen {
					segCycles += cost.Cycles(arch.OpPtrConvert)
				}
				ci := cinstr{aux: int32(in.Lay.Size)}
				ci.a, ci.imm = c.cval(in.Ptr)
				ci.b, ci.imm2 = c.cval(in.Val)
				if in.Lay.Size == 0 || c.std.Endian != arch.Little {
					ci.op, ci.ref = cStoreSlow, in
				} else if ft, ok := in.Val.Type().(*ir.FloatType); ok && ft.Bits == 32 {
					ci.op = cStoreF32
				} else {
					ci.op = cStoreInt
				}
				seg = append(seg, ci)
				flush()

			case *ir.Bin:
				ci := cinstr{c: cdst(in)}
				ci.a, ci.imm = c.cval(in.X)
				ci.b, ci.imm2 = c.cval(in.Y)
				if ir.IsFloat(in.X.Type()) {
					switch in.Op {
					case ir.Add:
						segCycles += cost.Cycles(arch.OpFloatALU)
						ci.op = cFAdd
					case ir.Sub:
						segCycles += cost.Cycles(arch.OpFloatALU)
						ci.op = cFSub
					case ir.Mul:
						segCycles += cost.Cycles(arch.OpFloatMul)
						ci.op = cFMul
					case ir.Div:
						segCycles += cost.Cycles(arch.OpFloatDiv)
						ci.op = cFDiv
					default:
						trap(fmt.Errorf("interp: float op %s unsupported", in.Op))
						break instrs
					}
					seg = append(seg, ci)
					break
				}
				switch in.Op {
				case ir.Add:
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cAdd
				case ir.Sub:
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cSub
				case ir.Mul:
					segCycles += cost.Cycles(arch.OpIntMul)
					ci.op = cMul
				case ir.Div:
					segCycles += cost.Cycles(arch.OpIntDiv)
					ci.op = cDiv
					ci.aux = newTrap(fmt.Errorf("interp(%s): integer division by zero in %s", c.name, f.Nam))
				case ir.Rem:
					segCycles += cost.Cycles(arch.OpIntDiv)
					ci.op = cRem
					ci.aux = newTrap(fmt.Errorf("interp(%s): integer remainder by zero in %s", c.name, f.Nam))
				case ir.And:
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cAnd
				case ir.Or:
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cOr
				case ir.Xor:
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cXor
				case ir.Shl:
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cShl
				case ir.Shr:
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cShr
				default:
					trap(fmt.Errorf("interp: unknown bin op %v", in.Op))
					break instrs
				}
				seg = append(seg, ci)
				if in.Op == ir.Div || in.Op == ir.Rem {
					// Division can fail; end the segment so its trap sees
					// the same clock as the reference engine.
					flush()
				}

			case *ir.Cmp:
				ci := cinstr{c: cdst(in), aux: int32(in.Pred)}
				ci.a, ci.imm = c.cval(in.X)
				ci.b, ci.imm2 = c.cval(in.Y)
				if ir.IsFloat(in.X.Type()) {
					segCycles += cost.Cycles(arch.OpFloatALU)
					ci.op = cCmpF
				} else if ir.IsPointer(in.X.Type()) {
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cCmpU
				} else {
					segCycles += cost.Cycles(arch.OpIntALU)
					ci.op = cCmpS
				}
				seg = append(seg, ci)

			case *ir.FieldAddr:
				segCycles += cost.Cycles(arch.OpIntALU)
				ci := cinstr{op: cAdd, c: cdst(in), b: -1, imm2: uint64(in.Offset)}
				ci.a, ci.imm = c.cval(in.Ptr)
				seg = append(seg, ci)

			case *ir.IndexAddr:
				segCycles += cost.Cycles(arch.OpIntALU)
				ci := cinstr{op: cIndexAddr, c: cdst(in), aux: int32(in.Stride)}
				ci.a, ci.imm = c.cval(in.Ptr)
				ci.b, ci.imm2 = c.cval(in.Index)
				seg = append(seg, ci)

			case *ir.Convert:
				segCycles += cost.Cycles(arch.OpConvert)
				ci := cinstr{c: cdst(in)}
				ci.a, ci.imm = c.cval(in.Val)
				switch in.Kind {
				case ir.ConvTrunc:
					if bits := in.To.(*ir.IntType).Bits; bits >= 64 {
						ci.op = cMov
					} else {
						ci.op = cTrunc
						ci.aux = int32(bits)
					}
				case ir.ConvZExt:
					if bits := in.Val.Type().(*ir.IntType).Bits; bits >= 64 {
						ci.op = cMov
					} else {
						ci.op = cZExt
						ci.imm2 = 1<<uint(bits) - 1
					}
				case ir.ConvSExt, ir.ConvFPExt, ir.ConvBitcast:
					ci.op = cMov // registers already hold the extended form
				case ir.ConvIntToFP:
					ci.op = cIntToFP
				case ir.ConvFPToInt:
					ci.op = cFPToInt
					ci.aux = int32(in.To.(*ir.IntType).Bits)
				case ir.ConvFPTrunc:
					ci.op = cFPTrunc
				default:
					panic(fmt.Sprintf("interp: unknown conversion %v", in.Kind))
				}
				seg = append(seg, ci)

			case *ir.FuncAddr:
				segCycles += cost.Cycles(arch.OpIntALU)
				seg = append(seg, cinstr{op: cMov, c: cdst(in), a: -1, imm: uint64(c.lay.funcAddr[in.Callee])})

			case *ir.Call:
				segCycles += cost.Cycles(arch.OpCall)
				ci := cinstr{op: cCall, c: cdst(in), callee: in.Callee, args: c.cargs(in.Args)}
				if !in.Callee.IsExtern() {
					if len(in.Args) != len(in.Callee.Params) {
						trap(fmt.Errorf("interp(%s): call %s with %d args, want %d",
							c.name, in.Callee.Nam, len(in.Args), len(in.Callee.Params)))
						break instrs
					}
					ci.ctarget = c.shell(in.Callee)
				}
				seg = append(seg, ci)
				flush()

			case *ir.CallInd:
				segCycles += cost.Cycles(arch.OpCallInd)
				ci := cinstr{op: cCallInd, c: cdst(in), args: c.cargs(in.Args)}
				ci.a, ci.imm = c.cval(in.Fn)
				if in.Mapped {
					ci.aux = 1
				}
				seg = append(seg, ci)
				flush()

			case *ir.Br:
				segCycles += cost.Cycles(arch.OpBranch)
				flush()
				fixups = append(fixups, fixup{pc: len(cf.code), field: 0, dst: in.Dst})
				cf.code = append(cf.code, cinstr{op: cBr})
				terminated = true
				break instrs

			case *ir.CondBr:
				segCycles += cost.Cycles(arch.OpBranch)
				flush()
				ci := cinstr{op: cCondBr}
				ci.a, ci.imm = c.cval(in.Cond)
				fixups = append(fixups,
					fixup{pc: len(cf.code), field: 1, dst: in.Then},
					fixup{pc: len(cf.code), field: 2, dst: in.Else})
				cf.code = append(cf.code, ci)
				terminated = true
				break instrs

			case *ir.Ret:
				flush() // Ret itself charges nothing
				ci := cinstr{op: cRet}
				if in.Val != nil {
					ci.aux = 1
					ci.a, ci.imm = c.cval(in.Val)
				}
				cf.code = append(cf.code, ci)
				terminated = true
				break instrs

			default:
				trap(fmt.Errorf("interp(%s): unhandled instruction %T", c.name, in))
				break instrs
			}
		}
		if !terminated {
			trap(fmt.Errorf("interp(%s): block %s.%s fell through without terminator", c.name, f.Nam, blk.Nam))
		}
	}

	for _, fx := range fixups {
		switch fx.field {
		case 0:
			cf.code[fx.pc].a = start[fx.dst]
		case 1:
			cf.code[fx.pc].b = start[fx.dst]
		case 2:
			cf.code[fx.pc].c = start[fx.dst]
		}
	}
	cf.compiled = true
}
