package interp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Sampler is the guest sampling profiler: it snapshots the simulated call
// stack every sampling period of *simulated* time and attributes the
// elapsed interval to that stack, exactly like a wall-clock sampling
// profiler attributes the period preceding each tick to the stack it
// observes. Because the clock is simulated, the profile is perfectly
// deterministic — two identical runs fold to identical output — and after
// Flush the attributed total equals the machine's Clock to the picosecond.
//
// The stack is maintained at the interpreter's existing call/return points
// on both engines (callRef, callFast/callCompiled, callExtern), and ticks
// are checked with a two-load guard at every clock-advance site, so a
// machine without a sampler pays one predictable branch and the hot loop
// stays 0 allocs/op.
type Sampler struct {
	period simtime.PS
	next   simtime.PS // next sample boundary
	last   simtime.PS // clock up to which time has been attributed

	stack []string
	key   []byte // scratch for the folded key join
	// folded maps the joined stack key to its accumulated weight. The
	// pointer indirection matters: map[string(bytes)] *lookups* are
	// allocation-elided by the compiler but assignments are not, so the hot
	// path reads the pointer with the scratch key and increments through
	// it; the string is only materialized once, when a stack is first seen.
	folded  map[string]*int64
	samples int64
}

// DefaultSamplePeriod is the sampling period used when NewSampler is given
// period <= 0: one millisecond of simulated time, ~10^3 samples per
// simulated second.
const DefaultSamplePeriod = simtime.Millisecond

// NewSampler creates a sampler with the given simulated-clock period
// (DefaultSamplePeriod if period <= 0).
func NewSampler(period simtime.PS) *Sampler {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Sampler{period: period, folded: make(map[string]*int64)}
}

// Period returns the sampling period.
func (s *Sampler) Period() simtime.PS {
	if s == nil {
		return 0
	}
	return s.period
}

// align positions the sampler on a machine clock: time before clock is
// never attributed, and the first tick fires at the next period boundary.
func (s *Sampler) align(clock simtime.PS) {
	s.last = clock
	s.next = (clock/s.period + 1) * s.period
}

// push/pop maintain the simulated call stack. They are called from the
// interpreters' call/return points only when a sampler is attached. At the
// top-level boundary (empty stack becoming occupied, or the last frame
// leaving) the pending interval is attributed first, so idle time between
// top-level calls stays "(idle)" and a run's tail isn't misattributed
// after the root frame has popped.
func (s *Sampler) push(name string, clock simtime.PS) {
	if len(s.stack) == 0 {
		s.attribute(clock)
	}
	s.stack = append(s.stack, name)
}

func (s *Sampler) pop(clock simtime.PS) {
	if len(s.stack) == 1 {
		s.attribute(clock)
	}
	s.stack = s.stack[:len(s.stack)-1]
}

// take fires one sample: the interval since the last attribution is
// charged to the current stack, and the next boundary moves past clock. A
// single large clock advance (a network wait crossing many boundaries)
// attributes once — the weights are simulated picoseconds, not tick
// counts, so nothing is lost.
func (s *Sampler) take(clock simtime.PS) {
	s.attribute(clock)
	s.next = (clock/s.period + 1) * s.period
}

// attribute charges [last, clock) to the current stack.
func (s *Sampler) attribute(clock simtime.PS) {
	d := clock - s.last
	if d <= 0 {
		return
	}
	s.last = clock
	s.samples++
	s.key = s.key[:0]
	for i, f := range s.stack {
		if i > 0 {
			s.key = append(s.key, ';')
		}
		s.key = append(s.key, f...)
	}
	if len(s.stack) == 0 {
		s.key = append(s.key, "(idle)"...)
	}
	p := s.folded[string(s.key)]
	if p == nil {
		p = new(int64)
		s.folded[string(s.key)] = p
	}
	*p += int64(d)
}

// Flush attributes the tail interval up to clock, making Total() equal the
// machine's Clock exactly. Call it once after the run. Safe on nil.
func (s *Sampler) Flush(clock simtime.PS) {
	if s == nil {
		return
	}
	s.attribute(clock)
	if s.next <= clock {
		s.next = (clock/s.period + 1) * s.period
	}
}

// Samples returns how many attribution ticks fired. Safe on nil.
func (s *Sampler) Samples() int64 {
	if s == nil {
		return 0
	}
	return s.samples
}

// Total returns the attributed simulated time in picoseconds; after Flush
// it equals the machine's final Clock minus the clock at attachment. Safe
// on nil.
func (s *Sampler) Total() int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for _, w := range s.folded {
		sum += *w
	}
	return sum
}

// stacks returns the folded stack keys, sorted (deterministic iteration).
func (s *Sampler) stacks() []string {
	keys := make([]string, 0, len(s.folded))
	for k := range s.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteFolded writes the profile in folded-stack flamegraph format (one
// "frame;frame;frame weight" line per stack, weights in simulated
// picoseconds), deterministically ordered. A non-empty root is prepended
// as the first frame of every line — callers label the machine ("mobile",
// "server") so both profiles merge into one flamegraph. Safe on nil.
func (s *Sampler) WriteFolded(w io.Writer, root string) error {
	if s == nil {
		return nil
	}
	for _, k := range s.stacks() {
		var err error
		if root != "" {
			_, err = fmt.Fprintf(w, "%s;%s %d\n", root, k, *s.folded[k])
		} else {
			_, err = fmt.Fprintf(w, "%s %d\n", k, *s.folded[k])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Folded returns the folded-stack text (see WriteFolded). Safe on nil.
func (s *Sampler) Folded() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	s.WriteFolded(&sb, "")
	return sb.String()
}

// FuncStat is one function's profile line: self time (samples with the
// function on top) and cumulative time (samples with it anywhere on the
// stack, counted once per stack for recursion).
type FuncStat struct {
	Name   string
	SelfPS int64
	CumPS  int64
}

// TopFuncs aggregates the folded stacks per function, ordered by self time
// descending (ties by cumulative time, then name — fully deterministic).
// Safe on nil.
func (s *Sampler) TopFuncs() []FuncStat {
	if s == nil {
		return nil
	}
	self := make(map[string]int64)
	cum := make(map[string]int64)
	for k, w := range s.folded {
		frames := strings.Split(k, ";")
		self[frames[len(frames)-1]] += *w
		seen := make(map[string]bool, len(frames))
		for _, f := range frames {
			if !seen[f] {
				seen[f] = true
				cum[f] += *w
			}
		}
	}
	out := make([]FuncStat, 0, len(cum))
	for name, c := range cum {
		out = append(out, FuncStat{Name: name, SelfPS: self[name], CumPS: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfPS != out[j].SelfPS {
			return out[i].SelfPS > out[j].SelfPS
		}
		if out[i].CumPS != out[j].CumPS {
			return out[i].CumPS > out[j].CumPS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SetSampler attaches (or, with nil, detaches) a sampling profiler to the
// machine. Attribution starts at the machine's current Clock. Unlike a
// profiling Listener, a sampler works on both engines and keeps the fast
// engine's hot loop allocation-free.
func (m *Machine) SetSampler(s *Sampler) {
	m.sampler = s
	if s != nil {
		s.align(m.Clock)
	}
}

// Sampler returns the attached sampling profiler (nil when detached).
func (m *Machine) Sampler() *Sampler { return m.sampler }
