// Package interp executes lowered IR modules on a simulated machine. It
// stands in for the paper's back-end compilers plus native execution: a
// Machine binds a module to an architecture spec, a paged memory, a
// simulated clock, and cost accounting, and honours exactly the
// architectural properties (data layout, address size, byte order, relative
// speed) that the Native Offloader compiler must bridge.
package interp

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Component buckets simulated time for the paper's Figure 7 breakdown.
type Component int

const (
	CompCompute  Component = iota // computation (equals ideal execution time)
	CompFptr                      // function pointer translation
	CompRemoteIO                  // remote I/O operations
	CompComm                      // memory transfer (filled in by the runtime)
	NumComponents
)

func (c Component) String() string {
	return [...]string{"compute", "fptr", "remoteIO", "comm"}[c]
}

// Listener observes execution for profiling (Section 3.1). All methods are
// invoked synchronously on the interpreter's thread.
type Listener interface {
	EnterFunc(m *Machine, f *ir.Func)
	ExitFunc(m *Machine, f *ir.Func)
	EnterBlock(m *Machine, f *ir.Func, b *ir.Block)
}

// Machine is one simulated computer executing one lowered module.
type Machine struct {
	Name string
	Spec *arch.Spec
	// Std is the data-layout standard the module was lowered against: the
	// machine's own spec for conventional binaries, the mobile spec for
	// unified binaries (Section 3.2).
	Std *arch.Spec
	Mod *ir.Module
	Mem *mem.Memory

	// Heap is the UVA heap allocator (u_malloc); LocalHeap serves plain
	// malloc in non-unified binaries.
	Heap      *mem.Allocator
	LocalHeap *mem.Allocator

	// Clock is the simulated time on this machine.
	Clock simtime.PS
	// CostScale amplifies compute charges; workloads use it to model
	// paper-scale execution times with small iteration counts.
	CostScale int64

	// Comp buckets elapsed time by component for Figure 7.
	Comp [NumComponents]simtime.PS

	// Steps counts executed IR instructions.
	Steps int64

	IO  IOHost
	Sys SysHost

	// Listener, when set, observes calls and block transfers (profiler).
	Listener Listener

	// Tracer, when set, receives task enter/exit events on TraceTrack;
	// the offload runtime installs it on both machines. Nil-safe: a
	// machine without a tracer pays nothing.
	Tracer     *obs.Tracer
	TraceTrack obs.Track

	// ResolveFptr maps a stored function-pointer value to a callable
	// function. The default resolves the machine's own addresses; the
	// offload runtime installs a translating resolver on the server
	// (Section 3.4). The mapped flag says the compiler marked this call
	// site for translation.
	ResolveFptr func(addr uint32, mapped bool) (*ir.Func, error)

	// lay is the linker's address assignment (function and global
	// addresses). Owned by this machine when built via NewMachine; shared
	// read-only with the Program (and its sibling instances) when built via
	// Program.NewInstance. The two machines of a session deliberately
	// disagree on addresses either way.
	lay *linkage

	// Engine selects the execution engine. EngineFast (the default)
	// interprets pre-decoded flat instruction streams; a Listener forces
	// the reference tree-walker regardless (the profiler needs per-block
	// clock observations).
	Engine Engine

	// cc holds the compiled functions (fast engine). A NewMachine-built
	// machine owns an unsealed compiler and compiles lazily; an instance of
	// a shared Program aliases the program's sealed compiler, whose cfunc
	// map is immutable and safe for concurrent instances.
	cc *compiler

	// prog is the shared program this machine instantiates, nil for a
	// private NewMachine-built machine.
	prog *Program

	// pools recycles register frames, indexed by cfunc.idx. Frames are
	// per-machine (the compiled code is shared), so the pools live here.
	pools [][][]uint64

	// rtlb/wtlb are the direct-mapped page caches of the memory fast path.
	rtlb [tlbWays]tlbEntry
	wtlb [tlbWays]tlbEntry

	// sampler, when set via SetSampler, is the guest sampling profiler.
	// Unlike Listener it works on both engines; every clock-advance site
	// checks it with a nil-guarded boundary compare.
	sampler *Sampler

	sp      uint32
	spFloor uint32
}

// Config bundles Machine construction options.
type Config struct {
	Name string
	Spec *arch.Spec
	Std  *arch.Spec // defaults to Spec (conventional lowering)
	Mod  *ir.Module
	Mem  *mem.Memory // defaults to a fresh memory
	// FuncBase is where this machine's linker places function addresses.
	FuncBase uint32
	// ShuffleFuncs makes the linker assign addresses in name-sorted order
	// instead of declaration order, so two machines disagree on every
	// function address even with the same base.
	ShuffleFuncs bool
	// ShuffleGlobals does the same for machine-local global placement.
	ShuffleGlobals bool
	// InitUVAGlobals writes initial values of UVA-homed globals into
	// memory. Only the mobile machine does this; the server receives those
	// pages via copy-on-demand.
	InitUVAGlobals bool
	CostScale      int64
	IO             IOHost
	Sys            SysHost
	// Engine selects the execution engine (default EngineFast).
	Engine Engine
}

// NewMachine builds, links and loads a machine with a private memory and
// private compiled code. The module must already be lowered (ir.Lower)
// against cfg.Std.
//
// Deprecated: for the compile-once/instantiate-many path, use Compile to
// build a shared *Program (optionally through a CompilationCache) and
// Program.NewInstance to bind sessions to it — instances share the
// pre-decoded code and the initial memory image copy-on-write, so binding
// is O(1) and per-session resident bytes shrink to the pages actually
// written. NewMachine remains for callers that need a private memory (a
// caller-supplied cfg.Mem) or lazy compilation of not-yet-lowered modules.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Std == nil {
		cfg.Std = cfg.Spec
	}
	if cfg.Mem == nil {
		cfg.Mem = mem.New()
	}
	if cfg.FuncBase == 0 {
		cfg.FuncBase = mem.FuncBaseMobile
	}
	lay := newLinkage(cfg.Mod, cfg.Std, cfg.FuncBase, cfg.ShuffleFuncs, cfg.ShuffleGlobals)
	cc := newCompiler(cfg.Name, cfg.Spec, cfg.Std, lay, len(cfg.Mod.Funcs))
	m := newMachineShell(cfg.Name, cfg.Spec, cfg.Std, cfg.Mod, cfg.Mem, lay, cc)
	m.CostScale = cfg.CostScale
	if m.CostScale <= 0 {
		m.CostScale = 1
	}
	if cfg.IO != nil {
		m.IO = cfg.IO
	}
	m.Sys = cfg.Sys
	m.Engine = cfg.Engine

	if err := writeGlobalInits(m.Mem, cfg.Mod, cfg.Std, lay, cfg.InitUVAGlobals); err != nil {
		return nil, err
	}
	if m.Engine == EngineFast && m.Mod.Lowered {
		// Bind-time pre-decode: flatten every function body once, so the
		// run pays no per-instruction decode cost. Modules lowered only
		// after machine construction compile lazily on first call instead
		// (pre-decoding bakes in layout-resolved sizes and strides).
		for _, f := range m.Mod.Funcs {
			if !f.IsExtern() {
				cc.ensureCompiled(f)
			}
		}
	}
	m.pools = make([][][]uint64, cc.nfuncs)
	return m, nil
}

// newMachineShell builds the per-session Machine skeleton around an address
// layout and compiled code, shared by NewMachine (private) and
// Program.NewInstance (shared).
func newMachineShell(name string, spec, std *arch.Spec, mod *ir.Module, mm *mem.Memory, lay *linkage, cc *compiler) *Machine {
	m := &Machine{
		Name:      name,
		Spec:      spec,
		Std:       std,
		Mod:       mod,
		Mem:       mm,
		CostScale: 1,
		IO:        NewStdIO(nil),
		lay:       lay,
		cc:        cc,
		sp:        mod.StackBase,
		spFloor:   mod.StackBase - mem.StackBytes,
	}
	m.ResolveFptr = func(addr uint32, mapped bool) (*ir.Func, error) {
		f, ok := m.lay.funcByAddr[addr]
		if !ok {
			return nil, fmt.Errorf("interp(%s): no function at address 0x%x (unmapped cross-machine pointer?)", m.Name, addr)
		}
		return f, nil
	}
	m.Heap = mem.UVAHeap(m.Mem)
	m.LocalHeap = mem.NewAllocator(m.Mem, mem.LocalBase+0x0100_0000, mem.LocalBase+0x0200_0000)
	return m
}

// acquireFrame returns a cleared register frame for cf, recycling through
// this machine's per-function pool.
func (m *Machine) acquireFrame(cf *cfunc) []uint64 {
	if int(cf.idx) < len(m.pools) {
		if s := m.pools[cf.idx]; len(s) > 0 {
			regs := s[len(s)-1]
			m.pools[cf.idx] = s[:len(s)-1]
			clear(regs)
			return regs
		}
	}
	return make([]uint64, cf.fn.NumSlots)
}

// releaseFrame returns a frame to the pool, growing the pool table when a
// lazily compiled function appears after construction.
func (m *Machine) releaseFrame(cf *cfunc, regs []uint64) {
	if int(cf.idx) >= len(m.pools) {
		grown := make([][][]uint64, cf.idx+1)
		copy(grown, m.pools)
		m.pools = grown
	}
	m.pools[cf.idx] = append(m.pools[cf.idx], regs)
}

// FuncAddr returns this machine's address for f.
func (m *Machine) FuncAddr(f *ir.Func) uint32 { return m.lay.funcAddr[f] }

// FuncAddrByName returns this machine's address for the named function.
func (m *Machine) FuncAddrByName(name string) (uint32, bool) {
	f := m.Mod.Func(name)
	if f == nil {
		return 0, false
	}
	return m.lay.funcAddr[f], true
}

// FuncAt resolves an address assigned by this machine's linker.
func (m *Machine) FuncAt(addr uint32) (*ir.Func, bool) {
	f, ok := m.lay.funcByAddr[addr]
	return f, ok
}

// GlobalAddr returns the loaded address of g on this machine.
func (m *Machine) GlobalAddr(g *ir.Global) uint32 { return m.lay.globalAddr[g] }

// Program returns the shared program this machine instantiates, nil for a
// private NewMachine-built machine.
func (m *Machine) Program() *Program { return m.prog }

func alignUp32(n, a uint32) uint32 { return (n + a - 1) / a * a }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// charge advances the clock by the cost of op, amplified by CostScale, and
// attributes it to comp.
func (m *Machine) charge(op arch.Op, comp Component) {
	d := simtime.PS(m.Spec.Cost.Cycles(op)*m.CostScale) * simtime.PS(m.Spec.CyclePS)
	m.Clock += d
	m.Comp[comp] += d
	if s := m.sampler; s != nil && m.Clock >= s.next {
		s.take(m.Clock)
	}
}

// chargeN charges n occurrences of op.
func (m *Machine) chargeN(op arch.Op, n int64, comp Component) {
	d := simtime.PS(m.Spec.Cost.Cycles(op)*m.CostScale*n) * simtime.PS(m.Spec.CyclePS)
	m.Clock += d
	m.Comp[comp] += d
	if s := m.sampler; s != nil && m.Clock >= s.next {
		s.take(m.Clock)
	}
}

// AddTime advances the clock by an externally computed duration (network
// waits, remote service time) attributed to comp without scaling.
func (m *Machine) AddTime(d simtime.PS, comp Component) {
	m.Clock += d
	m.Comp[comp] += d
	if s := m.sampler; s != nil && m.Clock >= s.next {
		s.take(m.Clock)
	}
}

// SP returns the current stack pointer.
func (m *Machine) SP() uint32 { return m.sp }

// SetSP moves the stack pointer (used by the runtime when materializing the
// offloaded task's stack on the server).
func (m *Machine) SetSP(sp uint32) { m.sp = sp; m.spFloor = sp - mem.StackBytes }
