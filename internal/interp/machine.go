// Package interp executes lowered IR modules on a simulated machine. It
// stands in for the paper's back-end compilers plus native execution: a
// Machine binds a module to an architecture spec, a paged memory, a
// simulated clock, and cost accounting, and honours exactly the
// architectural properties (data layout, address size, byte order, relative
// speed) that the Native Offloader compiler must bridge.
package interp

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Component buckets simulated time for the paper's Figure 7 breakdown.
type Component int

const (
	CompCompute  Component = iota // computation (equals ideal execution time)
	CompFptr                      // function pointer translation
	CompRemoteIO                  // remote I/O operations
	CompComm                      // memory transfer (filled in by the runtime)
	NumComponents
)

func (c Component) String() string {
	return [...]string{"compute", "fptr", "remoteIO", "comm"}[c]
}

// Listener observes execution for profiling (Section 3.1). All methods are
// invoked synchronously on the interpreter's thread.
type Listener interface {
	EnterFunc(m *Machine, f *ir.Func)
	ExitFunc(m *Machine, f *ir.Func)
	EnterBlock(m *Machine, f *ir.Func, b *ir.Block)
}

// Machine is one simulated computer executing one lowered module.
type Machine struct {
	Name string
	Spec *arch.Spec
	// Std is the data-layout standard the module was lowered against: the
	// machine's own spec for conventional binaries, the mobile spec for
	// unified binaries (Section 3.2).
	Std *arch.Spec
	Mod *ir.Module
	Mem *mem.Memory

	// Heap is the UVA heap allocator (u_malloc); LocalHeap serves plain
	// malloc in non-unified binaries.
	Heap      *mem.Allocator
	LocalHeap *mem.Allocator

	// Clock is the simulated time on this machine.
	Clock simtime.PS
	// CostScale amplifies compute charges; workloads use it to model
	// paper-scale execution times with small iteration counts.
	CostScale int64

	// Comp buckets elapsed time by component for Figure 7.
	Comp [NumComponents]simtime.PS

	// Steps counts executed IR instructions.
	Steps int64

	IO  IOHost
	Sys SysHost

	// Listener, when set, observes calls and block transfers (profiler).
	Listener Listener

	// Tracer, when set, receives task enter/exit events on TraceTrack;
	// the offload runtime installs it on both machines. Nil-safe: a
	// machine without a tracer pays nothing.
	Tracer     *obs.Tracer
	TraceTrack obs.Track

	// ResolveFptr maps a stored function-pointer value to a callable
	// function. The default resolves the machine's own addresses; the
	// offload runtime installs a translating resolver on the server
	// (Section 3.4). The mapped flag says the compiler marked this call
	// site for translation.
	ResolveFptr func(addr uint32, mapped bool) (*ir.Func, error)

	// funcAddr assigns this machine's address to each function; inverse
	// in funcByAddr. The two machines deliberately disagree.
	funcAddr   map[*ir.Func]uint32
	funcByAddr map[uint32]*ir.Func

	globalAddr map[*ir.Global]uint32

	// Engine selects the execution engine. EngineFast (the default)
	// interprets pre-decoded flat instruction streams; a Listener forces
	// the reference tree-walker regardless (the profiler needs per-block
	// clock observations).
	Engine Engine

	// cfuncs holds this machine's compiled functions (fast engine);
	// operands inline machine-specific global and function addresses, so
	// compilation is per machine.
	cfuncs map[*ir.Func]*cfunc

	// rtlb/wtlb are the direct-mapped page caches of the memory fast path.
	rtlb [tlbWays]tlbEntry
	wtlb [tlbWays]tlbEntry

	// sampler, when set via SetSampler, is the guest sampling profiler.
	// Unlike Listener it works on both engines; every clock-advance site
	// checks it with a nil-guarded boundary compare.
	sampler *Sampler

	sp      uint32
	spFloor uint32
}

// Config bundles Machine construction options.
type Config struct {
	Name string
	Spec *arch.Spec
	Std  *arch.Spec // defaults to Spec (conventional lowering)
	Mod  *ir.Module
	Mem  *mem.Memory // defaults to a fresh memory
	// FuncBase is where this machine's linker places function addresses.
	FuncBase uint32
	// ShuffleFuncs makes the linker assign addresses in name-sorted order
	// instead of declaration order, so two machines disagree on every
	// function address even with the same base.
	ShuffleFuncs bool
	// ShuffleGlobals does the same for machine-local global placement.
	ShuffleGlobals bool
	// InitUVAGlobals writes initial values of UVA-homed globals into
	// memory. Only the mobile machine does this; the server receives those
	// pages via copy-on-demand.
	InitUVAGlobals bool
	CostScale      int64
	IO             IOHost
	Sys            SysHost
	// Engine selects the execution engine (default EngineFast).
	Engine Engine
}

// NewMachine builds, links and loads a machine. The module must already be
// lowered (ir.Lower) against cfg.Std.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Std == nil {
		cfg.Std = cfg.Spec
	}
	if cfg.Mem == nil {
		cfg.Mem = mem.New()
	}
	if cfg.CostScale <= 0 {
		cfg.CostScale = 1
	}
	if cfg.FuncBase == 0 {
		cfg.FuncBase = mem.FuncBaseMobile
	}
	if cfg.IO == nil {
		cfg.IO = NewStdIO(nil)
	}
	m := &Machine{
		Name:       cfg.Name,
		Spec:       cfg.Spec,
		Std:        cfg.Std,
		Mod:        cfg.Mod,
		Mem:        cfg.Mem,
		CostScale:  cfg.CostScale,
		IO:         cfg.IO,
		Sys:        cfg.Sys,
		funcAddr:   make(map[*ir.Func]uint32),
		funcByAddr: make(map[uint32]*ir.Func),
		globalAddr: make(map[*ir.Global]uint32),
		sp:         cfg.Mod.StackBase,
		spFloor:    cfg.Mod.StackBase - mem.StackBytes,
	}
	m.ResolveFptr = func(addr uint32, mapped bool) (*ir.Func, error) {
		f, ok := m.funcByAddr[addr]
		if !ok {
			return nil, fmt.Errorf("interp(%s): no function at address 0x%x (unmapped cross-machine pointer?)", m.Name, addr)
		}
		return f, nil
	}

	m.Heap = mem.UVAHeap(m.Mem)
	m.LocalHeap = mem.NewAllocator(m.Mem, mem.LocalBase+0x0100_0000, mem.LocalBase+0x0200_0000)

	m.link(cfg.FuncBase, cfg.ShuffleFuncs)
	if err := m.loadGlobals(cfg.ShuffleGlobals, cfg.InitUVAGlobals); err != nil {
		return nil, err
	}
	m.Engine = cfg.Engine
	m.cfuncs = make(map[*ir.Func]*cfunc, len(m.Mod.Funcs))
	if m.Engine == EngineFast && m.Mod.Lowered {
		// Bind-time pre-decode: flatten every function body once, so the
		// run pays no per-instruction decode cost. Modules lowered only
		// after machine construction compile lazily on first call instead
		// (pre-decoding bakes in layout-resolved sizes and strides).
		for _, f := range m.Mod.Funcs {
			if !f.IsExtern() {
				m.ensureCompiled(f)
			}
		}
	}
	return m, nil
}

// link assigns per-machine function addresses.
func (m *Machine) link(base uint32, shuffle bool) {
	funcs := make([]*ir.Func, len(m.Mod.Funcs))
	copy(funcs, m.Mod.Funcs)
	if shuffle {
		sort.Slice(funcs, func(i, j int) bool { return funcs[i].Nam < funcs[j].Nam })
	}
	addr := base
	for _, f := range funcs {
		m.funcAddr[f] = addr
		m.funcByAddr[addr] = f
		addr += 16
	}
}

// FuncAddr returns this machine's address for f.
func (m *Machine) FuncAddr(f *ir.Func) uint32 { return m.funcAddr[f] }

// FuncAddrByName returns this machine's address for the named function.
func (m *Machine) FuncAddrByName(name string) (uint32, bool) {
	f := m.Mod.Func(name)
	if f == nil {
		return 0, false
	}
	return m.funcAddr[f], true
}

// FuncAt resolves an address assigned by this machine's linker.
func (m *Machine) FuncAt(addr uint32) (*ir.Func, bool) {
	f, ok := m.funcByAddr[addr]
	return f, ok
}

// GlobalAddr returns the loaded address of g on this machine.
func (m *Machine) GlobalAddr(g *ir.Global) uint32 { return m.globalAddr[g] }

// loadGlobals places globals and writes initial values.
func (m *Machine) loadGlobals(shuffle, initUVA bool) error {
	locals := make([]*ir.Global, 0, len(m.Mod.Globals))
	for _, g := range m.Mod.Globals {
		if g.Home == ir.HomeMachine {
			locals = append(locals, g)
		} else {
			m.globalAddr[g] = g.UVAAddr
		}
	}
	if shuffle {
		sort.Slice(locals, func(i, j int) bool { return locals[i].Nam < locals[j].Nam })
	}
	addr := mem.LocalBase
	if shuffle {
		// A different linker leaves a different gap before the data
		// segment, so even the first global lands elsewhere.
		addr += 0x40
	}
	for _, g := range locals {
		lay := ir.LayoutOf(g.Elem, m.Std)
		a := alignUp32(addr, uint32(max(lay.Align, 1)))
		m.globalAddr[g] = a
		addr = a + uint32(lay.Size)
	}
	for _, g := range m.Mod.Globals {
		if g.Home == ir.HomeUVA && !initUVA {
			continue
		}
		if err := m.writeGlobalInit(g); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) writeGlobalInit(g *ir.Global) error {
	base := m.globalAddr[g]
	if len(g.InitBytes) > 0 {
		return m.Mem.WriteBytes(base, g.InitBytes)
	}
	if len(g.Init) == 0 {
		return nil // zero-initialized; pages fault in as zeroes
	}
	elem := g.Elem
	stride := 0
	if at, ok := g.Elem.(*ir.ArrayType); ok {
		elem = at.Elem
		stride = ir.Stride(elem, m.Std)
	}
	for i, v := range g.Init {
		addr := base + uint32(i*stride)
		if err := m.writeScalar(addr, elem, m.constBits(v)); err != nil {
			return err
		}
	}
	return nil
}

// constBits evaluates a loader-time constant to its register representation.
func (m *Machine) constBits(v ir.Value) uint64 {
	switch v := v.(type) {
	case *ir.ConstInt:
		return uint64(v.V)
	case *ir.ConstFloat:
		return floatBits(v.Typ, v.V)
	case *ir.ConstNull:
		return 0
	case *ir.ConstUVA:
		return uint64(v.Addr)
	case *ir.Func:
		return uint64(m.funcAddr[v])
	case *ir.Global:
		return uint64(m.globalAddr[v])
	}
	panic(fmt.Sprintf("interp: non-constant global initializer %T", v))
}

func alignUp32(n, a uint32) uint32 { return (n + a - 1) / a * a }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// charge advances the clock by the cost of op, amplified by CostScale, and
// attributes it to comp.
func (m *Machine) charge(op arch.Op, comp Component) {
	d := simtime.PS(m.Spec.Cost.Cycles(op)*m.CostScale) * simtime.PS(m.Spec.CyclePS)
	m.Clock += d
	m.Comp[comp] += d
	if s := m.sampler; s != nil && m.Clock >= s.next {
		s.take(m.Clock)
	}
}

// chargeN charges n occurrences of op.
func (m *Machine) chargeN(op arch.Op, n int64, comp Component) {
	d := simtime.PS(m.Spec.Cost.Cycles(op)*m.CostScale*n) * simtime.PS(m.Spec.CyclePS)
	m.Clock += d
	m.Comp[comp] += d
	if s := m.sampler; s != nil && m.Clock >= s.next {
		s.take(m.Clock)
	}
}

// AddTime advances the clock by an externally computed duration (network
// waits, remote service time) attributed to comp without scaling.
func (m *Machine) AddTime(d simtime.PS, comp Component) {
	m.Clock += d
	m.Comp[comp] += d
	if s := m.sampler; s != nil && m.Clock >= s.next {
		s.take(m.Clock)
	}
}

// SP returns the current stack pointer.
func (m *Machine) SP() uint32 { return m.sp }

// SetSP moves the stack pointer (used by the runtime when materializing the
// offloaded task's stack on the server).
func (m *Machine) SetSP(sp uint32) { m.sp = sp; m.spFloor = sp - mem.StackBytes }
