package interp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/simtime"
)

// ExitError is returned when the program calls exit(code).
type ExitError struct{ Code int32 }

func (e *ExitError) Error() string { return fmt.Sprintf("program exited with code %d", e.Code) }

// frame is one function activation. Register values are 64-bit containers:
// integers are sign-extended two's complement, floats are IEEE-754 bits
// (f32 values promoted to f64 in registers, as C promotes), and pointers
// are zero-extended UVA addresses.
type frame struct {
	fn   *ir.Func
	regs []uint64
}

// RunMain executes the module's main() and returns its exit code.
func (m *Machine) RunMain() (int32, error) {
	mainf := m.Mod.Func("main")
	if mainf == nil {
		return 0, fmt.Errorf("interp(%s): module %s has no main", m.Name, m.Mod.Name)
	}
	ret, err := m.CallFunc(mainf)
	var xe *ExitError
	if errors.As(err, &xe) {
		return xe.Code, nil
	}
	if err != nil {
		return 0, err
	}
	return int32(ret), nil
}

// CallFunc invokes f with the given argument bits. It dispatches to the
// pre-decoded fast engine unless the machine selected the reference
// tree-walker or has a profiling Listener attached (which needs the
// per-block hooks and clock observations only the reference engine makes).
func (m *Machine) CallFunc(f *ir.Func, args ...uint64) (uint64, error) {
	if m.Engine == EngineFast && m.Listener == nil {
		return m.callFast(f, args)
	}
	return m.callRef(f, args)
}

// callRef is the reference tree-walking engine: it executes the ir.Func
// structure directly, charging and counting per instruction. The fast
// engine is differentially tested against it (engine_test.go).
func (m *Machine) callRef(f *ir.Func, args []uint64) (uint64, error) {
	if f.IsExtern() {
		return m.callExtern(f, args)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp(%s): call %s with %d args, want %d", m.Name, f.Nam, len(args), len(f.Params))
	}
	fr := &frame{fn: f, regs: make([]uint64, f.NumSlots)}
	for i, p := range f.Params {
		fr.regs[p.Slot] = args[i]
	}
	spSave := m.sp
	defer func() { m.sp = spSave }()

	if m.Listener != nil {
		m.Listener.EnterFunc(m, f)
		defer m.Listener.ExitFunc(m, f)
	}
	if ps := m.sampler; ps != nil {
		ps.push(f.Nam, m.Clock)
		defer func() { ps.pop(m.Clock) }()
	}

	blk := f.Entry()
	for {
		if m.Listener != nil {
			m.Listener.EnterBlock(m, f, blk)
		}
		next, ret, done, err := m.execBlock(fr, blk)
		if err != nil {
			return 0, err
		}
		if done {
			return ret, nil
		}
		blk = next
	}
}

// execBlock runs one basic block; it returns the successor, or the return
// value with done=true.
func (m *Machine) execBlock(fr *frame, blk *ir.Block) (next *ir.Block, ret uint64, done bool, err error) {
	for _, in := range blk.Instrs {
		m.Steps++
		switch in := in.(type) {
		case *ir.Alloca:
			m.charge(arch.OpAlloca, CompCompute)
			size := alignUp32(uint32(in.SizeBytes), 16)
			if m.sp < m.spFloor+size {
				return nil, 0, false, fmt.Errorf("interp(%s): stack overflow in %s", m.Name, fr.fn.Nam)
			}
			m.sp -= size
			fr.set(in, uint64(m.sp))

		case *ir.Load:
			m.charge(arch.OpLoad, CompCompute)
			addr := uint32(m.operand(fr, in.Ptr))
			bits, lerr := m.loadScalar(addr, in.Elem, in.Lay)
			if lerr != nil {
				return nil, 0, false, lerr
			}
			fr.set(in, bits)

		case *ir.Store:
			m.charge(arch.OpStore, CompCompute)
			addr := uint32(m.operand(fr, in.Ptr))
			if serr := m.storeScalar(addr, in.Val.Type(), in.Lay, m.operand(fr, in.Val)); serr != nil {
				return nil, 0, false, serr
			}

		case *ir.Bin:
			v, berr := m.evalBin(fr, in)
			if berr != nil {
				return nil, 0, false, berr
			}
			fr.set(in, v)

		case *ir.Cmp:
			fr.set(in, m.evalCmp(fr, in))

		case *ir.FieldAddr:
			m.charge(arch.OpIntALU, CompCompute)
			fr.set(in, m.operand(fr, in.Ptr)+uint64(in.Offset))

		case *ir.IndexAddr:
			m.charge(arch.OpIntALU, CompCompute)
			base := m.operand(fr, in.Ptr)
			idx := int64(m.operand(fr, in.Index))
			fr.set(in, uint64(int64(base)+idx*int64(in.Stride)))

		case *ir.Convert:
			m.charge(arch.OpConvert, CompCompute)
			fr.set(in, convert(in.Kind, in.Val.Type(), in.To, m.operand(fr, in.Val)))

		case *ir.FuncAddr:
			m.charge(arch.OpIntALU, CompCompute)
			fr.set(in, uint64(m.lay.funcAddr[in.Callee]))

		case *ir.Call:
			m.charge(arch.OpCall, CompCompute)
			args := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				args[i] = m.operand(fr, a)
			}
			v, cerr := m.CallFunc(in.Callee, args...)
			if cerr != nil {
				return nil, 0, false, cerr
			}
			fr.set(in, v)

		case *ir.CallInd:
			m.charge(arch.OpCallInd, CompCompute)
			if in.Mapped {
				// Function pointer translation (Section 3.4); its cost is
				// the Fig. 7 "fptr" component.
				d := simtime.PS(m.Spec.Cost.Cycles(arch.OpFptrMap)*m.CostScale) * simtime.PS(m.Spec.CyclePS)
				m.Clock += d
				m.Comp[CompFptr] += d
				if s := m.sampler; s != nil && m.Clock >= s.next {
					s.take(m.Clock)
				}
			}
			addr := uint32(m.operand(fr, in.Fn))
			callee, rerr := m.ResolveFptr(addr, in.Mapped)
			if rerr != nil {
				return nil, 0, false, rerr
			}
			args := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				args[i] = m.operand(fr, a)
			}
			v, cerr := m.CallFunc(callee, args...)
			if cerr != nil {
				return nil, 0, false, cerr
			}
			fr.set(in, v)

		case *ir.Br:
			m.charge(arch.OpBranch, CompCompute)
			return in.Dst, 0, false, nil

		case *ir.CondBr:
			m.charge(arch.OpBranch, CompCompute)
			if m.operand(fr, in.Cond) != 0 {
				return in.Then, 0, false, nil
			}
			return in.Else, 0, false, nil

		case *ir.Ret:
			if in.Val != nil {
				return nil, m.operand(fr, in.Val), true, nil
			}
			return nil, 0, true, nil

		default:
			return nil, 0, false, fmt.Errorf("interp(%s): unhandled instruction %T", m.Name, in)
		}
	}
	return nil, 0, false, fmt.Errorf("interp(%s): block %s.%s fell through without terminator", m.Name, fr.fn.Nam, blk.Nam)
}

func (fr *frame) set(in ir.Instr, v uint64) {
	if slot := in.(interface{ Slot() int }).Slot(); slot >= 0 {
		fr.regs[slot] = v
	}
}

// operand evaluates a value in the context of fr.
func (m *Machine) operand(fr *frame, v ir.Value) uint64 {
	switch v := v.(type) {
	case *ir.ConstInt:
		return uint64(v.V)
	case *ir.ConstFloat:
		return floatBits(v.Typ, v.V)
	case *ir.ConstNull:
		return 0
	case *ir.ConstUVA:
		return uint64(v.Addr)
	case *ir.Param:
		return fr.regs[v.Slot]
	case *ir.Global:
		return uint64(m.lay.globalAddr[v])
	case *ir.Func:
		return uint64(m.lay.funcAddr[v])
	case ir.Instr:
		return fr.regs[v.(interface{ Slot() int }).Slot()]
	}
	panic(fmt.Sprintf("interp: unhandled operand %T", v))
}

func (m *Machine) evalBin(fr *frame, in *ir.Bin) (uint64, error) {
	x := m.operand(fr, in.X)
	y := m.operand(fr, in.Y)
	if ir.IsFloat(in.X.Type()) {
		fx, fy := math.Float64frombits(x), math.Float64frombits(y)
		var r float64
		switch in.Op {
		case ir.Add:
			m.charge(arch.OpFloatALU, CompCompute)
			r = fx + fy
		case ir.Sub:
			m.charge(arch.OpFloatALU, CompCompute)
			r = fx - fy
		case ir.Mul:
			m.charge(arch.OpFloatMul, CompCompute)
			r = fx * fy
		case ir.Div:
			m.charge(arch.OpFloatDiv, CompCompute)
			r = fx / fy
		default:
			return 0, fmt.Errorf("interp: float op %s unsupported", in.Op)
		}
		return math.Float64bits(r), nil
	}
	ix, iy := int64(x), int64(y)
	switch in.Op {
	case ir.Add:
		m.charge(arch.OpIntALU, CompCompute)
		return uint64(ix + iy), nil
	case ir.Sub:
		m.charge(arch.OpIntALU, CompCompute)
		return uint64(ix - iy), nil
	case ir.Mul:
		m.charge(arch.OpIntMul, CompCompute)
		return uint64(ix * iy), nil
	case ir.Div:
		m.charge(arch.OpIntDiv, CompCompute)
		if iy == 0 {
			return 0, fmt.Errorf("interp(%s): integer division by zero in %s", m.Name, fr.fn.Nam)
		}
		return uint64(ix / iy), nil
	case ir.Rem:
		m.charge(arch.OpIntDiv, CompCompute)
		if iy == 0 {
			return 0, fmt.Errorf("interp(%s): integer remainder by zero in %s", m.Name, fr.fn.Nam)
		}
		return uint64(ix % iy), nil
	case ir.And:
		m.charge(arch.OpIntALU, CompCompute)
		return x & y, nil
	case ir.Or:
		m.charge(arch.OpIntALU, CompCompute)
		return x | y, nil
	case ir.Xor:
		m.charge(arch.OpIntALU, CompCompute)
		return x ^ y, nil
	case ir.Shl:
		m.charge(arch.OpIntALU, CompCompute)
		return x << (y & 63), nil
	case ir.Shr:
		m.charge(arch.OpIntALU, CompCompute)
		return uint64(ix >> (y & 63)), nil
	}
	return 0, fmt.Errorf("interp: unknown bin op %v", in.Op)
}

func (m *Machine) evalCmp(fr *frame, in *ir.Cmp) uint64 {
	x := m.operand(fr, in.X)
	y := m.operand(fr, in.Y)
	var lt, eq bool
	if ir.IsFloat(in.X.Type()) {
		m.charge(arch.OpFloatALU, CompCompute)
		fx, fy := math.Float64frombits(x), math.Float64frombits(y)
		lt, eq = fx < fy, fx == fy
	} else if ir.IsPointer(in.X.Type()) {
		m.charge(arch.OpIntALU, CompCompute)
		lt, eq = x < y, x == y
	} else {
		m.charge(arch.OpIntALU, CompCompute)
		lt, eq = int64(x) < int64(y), x == y
	}
	var r bool
	switch in.Pred {
	case ir.EQ:
		r = eq
	case ir.NE:
		r = !eq
	case ir.LT:
		r = lt
	case ir.LE:
		r = lt || eq
	case ir.GT:
		r = !lt && !eq
	case ir.GE:
		r = !lt
	}
	if r {
		return 1
	}
	return 0
}

func convert(kind ir.ConvKind, from, to ir.Type, v uint64) uint64 {
	switch kind {
	case ir.ConvTrunc:
		bits := to.(*ir.IntType).Bits
		return signExtend(v, bits)
	case ir.ConvZExt:
		bits := from.(*ir.IntType).Bits
		if bits >= 64 {
			return v
		}
		return v & (1<<uint(bits) - 1)
	case ir.ConvSExt:
		return v // registers already hold sign-extended values
	case ir.ConvIntToFP:
		f := float64(int64(v))
		return floatBits(to.(*ir.FloatType), f)
	case ir.ConvFPToInt:
		f := math.Float64frombits(v)
		return signExtend(uint64(int64(f)), to.(*ir.IntType).Bits)
	case ir.ConvFPExt:
		return v // f32 already promoted in registers
	case ir.ConvFPTrunc:
		return math.Float64bits(float64(float32(math.Float64frombits(v))))
	case ir.ConvBitcast:
		return v
	}
	panic(fmt.Sprintf("interp: unknown conversion %v", kind))
}

func signExtend(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return uint64(int64(v<<shift) >> shift)
}

// floatBits returns the register representation of a float constant: f32
// values are promoted to f64 bits.
func floatBits(t *ir.FloatType, v float64) uint64 {
	return math.Float64bits(v)
}
