package interp

import (
	"strings"
	"sync"

	"repro/internal/ir"
)

// progKey content-addresses one compiled program: the module's semantic
// digest plus every architecture-binding input that Compile bakes into the
// artifact. Two Compile calls with equal keys yield bit-identical programs,
// so the cache may hand back the same *Program.
type progKey struct {
	modDigest      uint64
	stackBase      uint32
	unified        bool
	spec           string // arch.Spec.Fingerprint()
	std            string
	name           string
	funcBase       uint32
	shuffleFuncs   bool
	shuffleGlobals bool
	initUVA        bool
}

// cacheEntry singleflights one key: the first binder compiles under the
// sync.Once while concurrent binders of the same key block on it, so a
// module is compiled exactly once no matter how many sessions race to bind.
type cacheEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// CompilationCache memoizes Compile results by content address. It is safe
// for concurrent use; a process typically holds one (see core.DefaultCache)
// so every session binding the same module/architecture pair shares one
// Program — one compile, one image, O(1) binds after the first.
type CompilationCache struct {
	mu      sync.Mutex
	entries map[progKey]*cacheEntry
	// digests memoizes module content digests by pointer: modules are
	// immutable after lowering, and printing a large module is the
	// expensive part of key construction.
	digests map[*ir.Module]uint64
	hits    int64
	misses  int64
}

// NewCompilationCache returns an empty cache.
func NewCompilationCache() *CompilationCache {
	return &CompilationCache{
		entries: make(map[progKey]*cacheEntry),
		digests: make(map[*ir.Module]uint64),
	}
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits    int64 // binds served by an existing entry
	Misses  int64 // binds that created an entry (compiled)
	Entries int   // distinct programs held
}

// HitRate returns Hits / (Hits + Misses), 0 when unused.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns current counters.
func (c *CompilationCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

func (c *CompilationCache) compile(mod *ir.Module, cfg CompileConfig) (*Program, error) {
	cfg = cfg.withDefaults()
	if mod == nil || cfg.Spec == nil {
		return compileProgram(mod, cfg) // argument errors are not cacheable
	}
	key := progKey{
		modDigest:      c.moduleDigest(mod),
		stackBase:      mod.StackBase,
		unified:        mod.Unified,
		spec:           cfg.Spec.Fingerprint(),
		std:            cfg.Std.Fingerprint(),
		name:           cfg.Name,
		funcBase:       cfg.FuncBase,
		shuffleFuncs:   cfg.ShuffleFuncs,
		shuffleGlobals: cfg.ShuffleGlobals,
		initUVA:        cfg.InitUVAGlobals,
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.prog, e.err = compileProgram(mod, cfg) })
	return e.prog, e.err
}

// moduleDigest hashes the module's printed form minus its header line — the
// header carries the module's display name, which two otherwise identical
// compiles (e.g. differently labelled clones) may disagree on; the stack
// base and unified flag it also carries are keyed explicitly instead.
func (c *CompilationCache) moduleDigest(mod *ir.Module) uint64 {
	c.mu.Lock()
	if d, ok := c.digests[mod]; ok {
		c.mu.Unlock()
		return d
	}
	c.mu.Unlock()

	// Print outside the lock: large modules print slowly, and concurrent
	// first binds of different modules should not serialize here.
	s := mod.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[i+1:]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	d := uint64(offset64)
	for i := 0; i < len(s); i++ {
		d ^= uint64(s[i])
		d *= prime64
	}

	c.mu.Lock()
	c.digests[mod] = d
	c.mu.Unlock()
	return d
}
