package interp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/ir"
)

// TestRandomIntExpressionsMatchGo is a differential property test: random
// integer expression DAGs are evaluated both by the Go compiler (the
// reference semantics) and by the IR interpreter on every modelled
// architecture; results must agree bit for bit. This pins down the
// interpreter's two's-complement arithmetic, shifts, and conversions.
func TestRandomIntExpressionsMatchGo(t *testing.T) {
	specs := []*arch.Spec{arch.ARM32(), arch.X8664(), arch.POWER32BE()}
	check := func(ops []uint8, a, b int64) bool {
		want := evalGo(ops, a, b)
		mod := buildExprModule(ops)
		for _, spec := range specs {
			work := mod.Clone("run")
			ir.Lower(work, spec, spec)
			m, err := NewMachine(Config{Name: "prop", Spec: spec, Mod: work})
			if err != nil {
				return false
			}
			got, err := m.CallFunc(work.Func("expr"), uint64(a), uint64(b))
			if err != nil {
				return false
			}
			if int64(got) != want {
				t.Logf("ops=%v a=%d b=%d: %s got %d, want %d", ops, a, b, spec.Name, int64(got), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// evalGo evaluates the op program with Go semantics: a stack machine over
// two seeds, one op per byte.
func evalGo(ops []uint8, a, b int64) int64 {
	x, y := a, b
	for _, op := range ops {
		x, y = step(op, x, y)
	}
	return x
}

func step(op uint8, x, y int64) (int64, int64) {
	switch op % 8 {
	case 0:
		return x + y, x
	case 1:
		return x - y, x
	case 2:
		return x * y, x
	case 3:
		return x & y, y + 1
	case 4:
		return x | y, y - 3
	case 5:
		return x ^ y, x
	case 6:
		return x << (uint(y) & 63), y
	default:
		return x >> (uint(y) & 63), x ^ 7
	}
}

// buildExprModule compiles the same op program to IR:
// func expr(a, b i64) i64 with straight-line code.
func buildExprModule(ops []uint8) *ir.Module {
	mod := ir.NewModule("prop")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("expr", ir.I64, ir.P("a", ir.I64), ir.P("b", ir.I64))
	x := ir.Value(f.Params[0])
	y := ir.Value(f.Params[1])
	for _, op := range ops {
		var nx, ny ir.Value
		switch op % 8 {
		case 0:
			nx, ny = b.Add(x, y), x
		case 1:
			nx, ny = b.Sub(x, y), x
		case 2:
			nx, ny = b.Mul(x, y), x
		case 3:
			nx, ny = b.And(x, y), b.Add(y, ir.Int64(1))
		case 4:
			nx, ny = b.Or(x, y), b.Sub(y, ir.Int64(3))
		case 5:
			nx, ny = b.Xor(x, y), x
		case 6:
			nx, ny = b.Shl(x, b.And(y, ir.Int64(63))), y
		default:
			nx, ny = b.Shr(x, b.And(y, ir.Int64(63))), b.Xor(x, ir.Int64(7))
		}
		x, y = nx, ny
	}
	b.Ret(x)
	b.Finish()
	return mod
}

// TestRandomFloatExpressionsMatchGo does the same for float arithmetic:
// IEEE-754 semantics must match Go's exactly.
func TestRandomFloatExpressionsMatchGo(t *testing.T) {
	check := func(ops []uint8, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		// Reference evaluation.
		x, y := a, b
		for _, op := range ops {
			switch op % 3 {
			case 0:
				x, y = x+y, x
			case 1:
				x, y = x*y, x-1
			default:
				x, y = x-y, x*0.5
			}
		}
		want := x

		mod := ir.NewModule("fprop")
		bb := ir.NewBuilder(mod)
		f := bb.NewFunc("expr", ir.F64, ir.P("a", ir.F64), ir.P("b", ir.F64))
		xv, yv := ir.Value(f.Params[0]), ir.Value(f.Params[1])
		for _, op := range ops {
			var nx, ny ir.Value
			switch op % 3 {
			case 0:
				nx, ny = bb.Add(xv, yv), xv
			case 1:
				nx, ny = bb.Mul(xv, yv), bb.Sub(xv, ir.Float(1))
			default:
				nx, ny = bb.Sub(xv, yv), bb.Mul(xv, ir.Float(0.5))
			}
			xv, yv = nx, ny
		}
		bb.Ret(xv)
		bb.Finish()

		spec := arch.ARM32()
		ir.Lower(mod, spec, spec)
		m, err := NewMachine(Config{Name: "fprop", Spec: spec, Mod: mod})
		if err != nil {
			return false
		}
		got, err := m.CallFunc(mod.Func("expr"), math.Float64bits(a), math.Float64bits(b))
		if err != nil {
			return false
		}
		gf := math.Float64frombits(got)
		return gf == want || (math.IsNaN(gf) && math.IsNaN(want))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestMemoryRoundTripAllWidths stores and reloads every scalar width on
// every architecture pair (native and unified lowering) and checks
// sign/zero extension semantics.
func TestMemoryRoundTripAllWidths(t *testing.T) {
	type cse struct {
		t    ir.Type
		in   int64
		want int64
	}
	cases := []cse{
		{ir.I8, 0x17F, 0x7F}, // truncates to 8 bits
		{ir.I8, -1, -1},      // sign preserved
		{ir.I16, -32768, -32768},
		{ir.I32, 1 << 31, -(1 << 31)}, // wraps to negative
		{ir.I64, -987654321012345, -987654321012345},
	}
	pairs := [][2]*arch.Spec{
		{arch.ARM32(), arch.ARM32()},
		{arch.X8664(), arch.ARM32()},
		{arch.POWER32BE(), arch.ARM32()},
		{arch.X8664(), arch.X8664()},
	}
	for _, c := range cases {
		for _, pr := range pairs {
			mod := ir.NewModule("rt")
			b := ir.NewBuilder(mod)
			b.NewFunc("main", ir.I32)
			slot := b.Alloca(c.t)
			b.Store(slot, &ir.ConstInt{Typ: c.t.(*ir.IntType), V: c.in})
			out := b.GlobalVar("out", ir.I64)
			b.Store(out, b.Convert(ir.ConvSExt, b.Load(slot), ir.I64))
			b.Ret(ir.Int(0))
			b.Finish()
			ir.Lower(mod, pr[0], pr[1])
			m, err := NewMachine(Config{Name: "rt", Spec: pr[0], Std: pr[1], Mod: mod})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.RunMain(); err != nil {
				t.Fatalf("%s/%s %s: %v", pr[0].Name, pr[1].Name, c.t, err)
			}
			bits, _ := m.Mem.ReadUint(m.GlobalAddr(mod.Global("out")), 8)
			if int64(bits) != c.want {
				t.Errorf("%s on %s (std %s): store %d, reload %d, want %d",
					c.t, pr[0].Name, pr[1].Name, c.in, int64(bits), c.want)
			}
		}
	}
}
