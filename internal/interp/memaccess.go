package interp

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/mem"
)

// loadScalar reads one scalar at addr following the access layout resolved
// by ir.Lower. Bytes in memory are always in the standard (mobile) order;
// when the executing machine's byte order differs, the compiler inserted
// translation code, which we account for via the Swap flag. Widen marks the
// address-size conversion for pointer values stored at the unified (mobile)
// width.
func (m *Machine) loadScalar(addr uint32, elem ir.Type, lay ir.MemLayout) (uint64, error) {
	if lay.Size == 0 {
		return 0, fmt.Errorf("interp(%s): unlowered memory access (run ir.Lower)", m.Name)
	}
	if lay.Swap {
		m.charge(arch.OpEndianSwap, CompCompute)
	}
	if lay.Widen {
		m.charge(arch.OpPtrConvert, CompCompute)
	}
	return m.loadScalarNoCharge(addr, elem, lay)
}

// loadScalarNoCharge is loadScalar without the layout charges; the fast
// engine folds those into the segment aggregate at compile time.
func (m *Machine) loadScalarNoCharge(addr uint32, elem ir.Type, lay ir.MemLayout) (uint64, error) {
	if lay.Size == 0 {
		return 0, fmt.Errorf("interp(%s): unlowered memory access (run ir.Lower)", m.Name)
	}
	b, err := m.Mem.ReadBytes(addr, lay.Size)
	if err != nil {
		return 0, err
	}
	raw := assemble(b, m.Std.Endian)
	switch t := elem.(type) {
	case *ir.IntType:
		return signExtend(raw, min(t.Bits, lay.Size*8)), nil
	case *ir.PointerType:
		return raw, nil // addresses zero-extend
	case *ir.FloatType:
		if t.Bits == 32 {
			return math.Float64bits(float64(math.Float32frombits(uint32(raw)))), nil
		}
		return raw, nil
	}
	return 0, fmt.Errorf("interp(%s): load of unsupported type %s", m.Name, elem)
}

// storeScalar writes one scalar at addr following the access layout.
func (m *Machine) storeScalar(addr uint32, elem ir.Type, lay ir.MemLayout, bits uint64) error {
	if lay.Size == 0 {
		return fmt.Errorf("interp(%s): unlowered memory access (run ir.Lower)", m.Name)
	}
	if lay.Swap {
		m.charge(arch.OpEndianSwap, CompCompute)
	}
	if lay.Widen {
		m.charge(arch.OpPtrConvert, CompCompute)
	}
	return m.storeScalarNoCharge(addr, elem, lay, bits)
}

// storeScalarNoCharge is storeScalar without the layout charges (see
// loadScalarNoCharge).
func (m *Machine) storeScalarNoCharge(addr uint32, elem ir.Type, lay ir.MemLayout, bits uint64) error {
	if lay.Size == 0 {
		return fmt.Errorf("interp(%s): unlowered memory access (run ir.Lower)", m.Name)
	}
	raw := bits
	if ft, ok := elem.(*ir.FloatType); ok && ft.Bits == 32 {
		raw = uint64(math.Float32bits(float32(math.Float64frombits(bits))))
	}
	return m.Mem.WriteBytes(addr, disassemble(raw, lay.Size, m.Std.Endian))
}

// writeScalar is the standard-layout store without access-layout metadata
// (scanf destinations).
func (m *Machine) writeScalar(addr uint32, elem ir.Type, bits uint64) error {
	lay := ir.MemLayout{Size: m.Std.Size(ir.ClassOf(elem)), Class: ir.ClassOf(elem)}
	return m.storeScalar(addr, elem, lay, bits)
}

func assemble(b []byte, order arch.Endianness) uint64 {
	var v uint64
	if order == arch.Little {
		for i := len(b) - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	} else {
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
	}
	return v
}

func disassemble(v uint64, size int, order arch.Endianness) []byte {
	b := make([]byte, size)
	if order == arch.Little {
		for i := 0; i < size; i++ {
			b[i] = byte(v >> (8 * i))
		}
	} else {
		for i := 0; i < size; i++ {
			b[size-1-i] = byte(v >> (8 * i))
		}
	}
	return b
}

// readCString reads a NUL-terminated string from memory (printf formats and
// %s arguments), scanning one resident page at a time rather than paying a
// one-byte ReadBytes allocation per character.
func (m *Machine) readCString(addr uint32) (string, error) {
	var out []byte
	for {
		pg, err := m.Mem.Page(mem.PageNum(addr))
		if err != nil {
			return "", err
		}
		off := int(addr & (mem.PageSize - 1))
		chunk := pg[off:]
		if i := bytes.IndexByte(chunk, 0); i >= 0 {
			return string(append(out, chunk[:i]...)), nil
		}
		out = append(out, chunk...)
		addr += uint32(len(chunk))
		if len(out) > 1<<16 {
			return "", fmt.Errorf("interp(%s): unterminated string at 0x%x", m.Name, addr)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
