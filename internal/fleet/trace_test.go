package fleet

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/obs"
	"repro/internal/tiers"
)

// critSmokeConfig is the make critsmoke cell: the tiered benchmark
// workload at a load that fires both migration directions, with the tail
// sampler retaining 8 exemplars per category.
func critSmokeConfig(shards int) Config {
	cfg := tieredBenchConfig(96, tiers.ThreeWay)
	cfg.Exemplars = 8
	cfg.Shards = shards
	return cfg
}

// TestCritSmoke is the tracing acceptance gate: on a tiered cell with the
// tail sampler on, the slowest-K jobs are exactly the ones retained, every
// retained exemplar's critical-path segments sum bit-exactly to its
// end-to-end latency, every exemplar assembles into a complete span tree
// inside the ring, and the whole retained set — categories, segments,
// everything in the Result — is byte-identical across shard counts.
func TestCritSmoke(t *testing.T) {
	run := func(shards int) (*Result, *obs.Tracer) {
		t.Helper()
		cfg := critSmokeConfig(shards)
		// Large enough that every job's live KJob summary survives: the
		// slowest-K check below needs the full latency population.
		tr := obs.NewTracer(1 << 17)
		cfg.Tracer = tr
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res, tr
	}
	res, tr := run(0)
	k := critSmokeConfig(0).Exemplars
	if res.TraceDropped != 0 {
		t.Fatalf("test ring dropped %d events — grow it", res.TraceDropped)
	}
	if len(res.Exemplars) < k {
		t.Fatalf("only %d exemplars retained, want at least K=%d", len(res.Exemplars), k)
	}

	// Sum identity: each exemplar's segments partition its latency exactly.
	for _, ex := range res.Exemplars {
		var sum int64
		for _, s := range ex.Segments {
			sum += s.PS
		}
		if sum != ex.LatencyPS {
			t.Errorf("job %d (%s): segments sum to %d ps, latency is %d ps",
				ex.Job, ex.Outcome, sum, ex.LatencyPS)
		}
	}

	// Slowest-K: reconstruct the full population from the live KJob
	// summaries and check the "slow" category holds exactly the K jobs the
	// retention order (latency desc, id asc) puts on top.
	latOf := make(map[int64]int64)
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KJob {
			latOf[ev.Job] = int64(ev.Dur)
		}
	}
	if len(latOf) != res.Requests {
		t.Fatalf("%d KJob summaries for %d requests: the per-job stream is not total", len(latOf), res.Requests)
	}
	ids := make([]int64, 0, len(latOf))
	for id := range latOf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if latOf[ids[a]] != latOf[ids[b]] {
			return latOf[ids[a]] > latOf[ids[b]]
		}
		return ids[a] < ids[b]
	})
	wantSlow := make(map[int64]bool, k)
	for _, id := range ids[:k] {
		wantSlow[id] = true
	}
	gotSlow := make(map[int64]bool)
	cats := make(map[string]int)
	for _, ex := range res.Exemplars {
		for _, c := range ex.Categories {
			cats[c]++
			if c == "slow" {
				gotSlow[ex.Job] = true
			}
		}
	}
	if len(gotSlow) != k {
		t.Fatalf("slow category holds %d jobs, want K=%d", len(gotSlow), k)
	}
	for id := range wantSlow {
		if !gotSlow[id] {
			t.Errorf("job %d is among the %d slowest (latency %d ps) but was not retained as slow",
				id, k, latOf[id])
		}
	}
	if cats["baseline"] != k {
		t.Errorf("baseline reservoir holds %d jobs, want K=%d", cats["baseline"], k)
	}
	if cats["migrated"] == 0 {
		t.Error("no migrated exemplar retained on a cell that fires cross-tier moves — the category is vacuous")
	}

	// Every exemplar assembles into a complete span tree whose root spans
	// exactly the recorded latency.
	trees := make(map[int64]*obs.JobTrace)
	for _, jt := range obs.AssembleSpans(tr.Events()) {
		trees[jt.Job] = jt
	}
	for _, ex := range res.Exemplars {
		jt := trees[ex.Job]
		if jt == nil || !jt.Complete {
			t.Errorf("job %d: no complete span tree assembled", ex.Job)
			continue
		}
		for _, r := range jt.Roots {
			if r.Dur > 0 && int64(r.Dur) != ex.LatencyPS {
				t.Errorf("job %d: root spans %d ps, exemplar records %d ps", ex.Job, int64(r.Dur), ex.LatencyPS)
			}
		}
	}

	// Shard invariance with sampling on: the whole Result — exemplar set
	// included — must be byte-identical across shard counts.
	refJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		r2, _ := run(shards)
		got, err := json.Marshal(r2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refJSON) {
			t.Errorf("shards=%d: sampled result diverged from the sequential reference", shards)
		}
	}
}

// TestSamplerOffLeavesResultUntouched: with Exemplars 0 the Result JSON
// must not even mention the sampler fields — committed bench artifacts
// stay byte-identical.
func TestSamplerOffLeavesResultUntouched(t *testing.T) {
	res, err := Run(DefaultConfig(8, 2, EstAware))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"exemplars", "trace_dropped"} {
		if bytes.Contains(b, []byte(key)) {
			t.Errorf("sampler-off result JSON leaks %q", key)
		}
	}
}

// TestExemplarValidation: a negative exemplar count must be rejected.
func TestExemplarValidation(t *testing.T) {
	cfg := DefaultConfig(8, 2, EstAware)
	cfg.Exemplars = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative exemplar count accepted")
	}
}
