package fleet

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// faultPlan builds a one-event plan against server si.
func faultPlan(kind faults.ServerKind, si int, at simtime.PS) *faults.ServerPlan {
	return &faults.ServerPlan{Events: []faults.ServerEvent{{Kind: kind, Server: si, Start: at}}}
}

// TestCrashReleasesReservations is the slot-accounting regression: a server
// killed mid-run strands reservations of requests still in flight over their
// clients' links and jobs mid-service in its slots. Run's end-of-run
// invariant (reserved == 0 && busy == 0 on every server) must hold anyway —
// before the fix, an aborted dispatch leaked its reservation forever.
func TestCrashReleasesReservations(t *testing.T) {
	for _, pol := range Policies() {
		for _, migrate := range []bool{false, true} {
			cfg := DefaultConfig(32, 4, pol)
			cfg.Seed = 6
			cfg.ServerFaults = faultPlan(faults.Crash, 0, 800*simtime.Millisecond)
			cfg.Migrate = migrate

			res, err := Run(cfg) // Run itself enforces the invariants
			if err != nil {
				t.Fatalf("%s migrate=%v: %v", pol, migrate, err)
			}
			if got := res.Offloads + res.Declines + res.Sheds + res.Fallbacks; got != res.Requests {
				t.Errorf("%s migrate=%v: %d completions of %d requests", pol, migrate, got, res.Requests)
			}
			if migrate {
				if res.Fallbacks != 0 {
					t.Errorf("%s: migration enabled but %d requests fell back locally", pol, res.Fallbacks)
				}
			} else {
				if res.Retried != 0 || res.Migrations != 0 {
					t.Errorf("%s: recovery traffic (%d retried, %d migrations) without Migrate",
						pol, res.Retried, res.Migrations)
				}
			}
		}
	}
}

// TestCrashVictimsRetryOnSurvivors: the killed server's in-flight work is
// re-sent to survivors when migration is on. The recovery decision races
// each victim's remote estimate against local re-execution, so a loaded
// survivor may legitimately lose a victim to local fallback — but with
// three servers still up, remote must win for most of them.
func TestCrashVictimsRetryOnSurvivors(t *testing.T) {
	cfg := DefaultConfig(64, 4, EstAware)
	cfg.Seed = 3
	cfg.ServerFaults = faultPlan(faults.Crash, 1, 600*simtime.Millisecond)
	cfg.Migrate = true
	tr := obs.NewTracer(0)
	cfg.Tracer = tr

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried == 0 {
		t.Fatal("crash at 600ms into a 64-client run caught no in-flight work; test is vacuous")
	}
	if res.Fallbacks > res.Retried {
		t.Errorf("%d of %d victims fell back locally despite three surviving servers",
			res.Fallbacks, res.Fallbacks+res.Retried)
	}
	var sawFault bool
	for _, e := range tr.Events() {
		if e.Kind == obs.KServerFault && e.Name == "crash" && e.A0 == 1 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Error("no fleet-track crash event traced")
	}
}

// TestDrainMigratesRunningJobs: a scheduled drain live-migrates whatever is
// mid-service; without Migrate, running jobs finish in place but the queue
// is abandoned to local fallback. The pool is kept lightly loaded so the
// survivor's estimate wins the migrate-vs-local race — at saturation local
// re-execution can legitimately be the better recovery.
func TestDrainMigratesRunningJobs(t *testing.T) {
	base := DefaultConfig(16, 2, RoundRobin)
	base.Seed = 12
	base.ServerFaults = faultPlan(faults.Drain, 0, 700*simtime.Millisecond)

	on := base
	on.Migrate = true
	resOn, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Migrations == 0 {
		t.Fatal("drain at 700ms into a 16-client run migrated nothing; test is vacuous")
	}

	off := base
	off.Migrate = false
	resOff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if resOff.Migrations != 0 || resOff.Retried != 0 {
		t.Errorf("recovery traffic (%d, %d) without Migrate", resOff.Migrations, resOff.Retried)
	}
	// Both variants still conserve requests (checked inside Run too).
	if got := resOff.Offloads + resOff.Declines + resOff.Sheds + resOff.Fallbacks; got != resOff.Requests {
		t.Errorf("migrate-off accounting broken: %d of %d", got, resOff.Requests)
	}
}

// TestWholePoolDownFallsBack: with every server gone, clients detect the
// dead pool at dispatch time and run locally — no hangs, no lost requests.
func TestWholePoolDownFallsBack(t *testing.T) {
	cfg := DefaultConfig(8, 2, LeastLoaded)
	cfg.Seed = 5
	cfg.ServerFaults = &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Crash, Server: 0, Start: 100 * simtime.Millisecond},
		{Kind: faults.Crash, Server: 1, Start: 100 * simtime.Millisecond},
	}}
	cfg.Migrate = true

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks == 0 {
		t.Error("no fallbacks despite the whole pool crashing at 100ms")
	}
	if got := res.Offloads + res.Declines + res.Sheds + res.Fallbacks; got != res.Requests {
		t.Errorf("accounting broken: %d of %d", got, res.Requests)
	}
}

// TestSlowdownStretchesService: a slowdown window must lengthen the run
// while every request still completes exactly once. Completion *counts* may
// shift slightly — shifted timing changes which link phase each decision
// samples — so the assertions are conservation and stretched makespan, not
// count equality.
func TestSlowdownStretchesService(t *testing.T) {
	base := DefaultConfig(16, 2, RoundRobin)
	base.Seed = 9
	base.Admission = Admission{}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	slow := base
	slow.ServerFaults = &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Slowdown, Server: 0, Start: 0, End: 1000 * simtime.Second, Factor: 8},
	}}
	res, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != clean.Requests {
		t.Errorf("slowdown changed the request count: %d vs clean %d", res.Requests, clean.Requests)
	}
	if got := res.Offloads + res.Declines + res.Sheds + res.Fallbacks; got != res.Requests {
		t.Errorf("accounting broken under slowdown: %d of %d", got, res.Requests)
	}
	if res.MakespanMs <= clean.MakespanMs {
		t.Errorf("8x slowdown did not stretch the run: %v <= %v ms", res.MakespanMs, clean.MakespanMs)
	}
}

// TestFaultRunsDeterministic: fault schedules and migration must not break
// the byte-identical-results guarantee.
func TestFaultRunsDeterministic(t *testing.T) {
	cfg := DefaultConfig(32, 4, EstAware)
	cfg.Seed = 21
	cfg.ServerFaults = &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Crash, Server: 2, Start: 500 * simtime.Millisecond},
		{Kind: faults.Drain, Server: 0, Start: 900 * simtime.Millisecond},
		{Kind: faults.Slowdown, Server: 1, Start: 200 * simtime.Millisecond,
			End: 2 * simtime.Second, Factor: 3},
	}}
	cfg.Migrate = true

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted runs diverged:\n%+v\n%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("JSON not byte-identical:\n%s\n%s", ja, jb)
	}
}

// TestConfigRejectsBadFaultPlan: Validate surfaces fault-plan errors.
func TestConfigRejectsBadFaultPlan(t *testing.T) {
	cfg := DefaultConfig(4, 2, Random)
	cfg.ServerFaults = &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Slowdown, Server: 0, Start: 100, End: 50, Factor: 2},
	}}
	if _, err := Run(cfg); err == nil {
		t.Error("empty slowdown window accepted")
	}
}
