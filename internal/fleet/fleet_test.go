package fleet

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// TestRunDeterministic: same Config (including Seed) must produce an
// identical Result — down to the JSON bytes the bench artifact is built
// from. Determinism is an acceptance criterion, not a nicety.
func TestRunDeterministic(t *testing.T) {
	for _, pol := range Policies() {
		cfg := DefaultConfig(16, 4, pol)
		cfg.Seed = 42
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two runs with the same seed diverged:\n%+v\n%+v", pol, a, b)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("%s: JSON not byte-identical:\n%s\n%s", pol, ja, jb)
		}
	}
}

// TestAccountingInvariant: every issued request completes exactly once —
// remotely, via a gate decline, or via an admission shed.
func TestAccountingInvariant(t *testing.T) {
	for _, pol := range Policies() {
		for _, n := range []int{1, 8, 64} {
			cfg := DefaultConfig(n, 4, pol)
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s n=%d: %v", pol, n, err)
			}
			if res.Requests != n*cfg.RequestsPerClient {
				t.Errorf("%s n=%d: issued %d requests, want %d", pol, n, res.Requests, n*cfg.RequestsPerClient)
			}
			if got := res.Offloads + res.Declines + res.Sheds; got != res.Requests {
				t.Errorf("%s n=%d: %d completions of %d requests", pol, n, got, res.Requests)
			}
			if res.Dispatched != res.Offloads+res.Sheds {
				t.Errorf("%s n=%d: dispatched %d != offloads %d + sheds %d",
					pol, n, res.Dispatched, res.Offloads, res.Sheds)
			}
		}
	}
}

// TestEstAwareNeverWorseThanRandom is the satellite property: on the same
// seed and workload, contention-aware dispatch must not lose to random on
// geomean end-to-end latency. Probed headroom: worst ratio 0.93 over 20
// seeds at 16/32/64 clients.
func TestEstAwareNeverWorseThanRandom(t *testing.T) {
	for _, n := range []int{16, 32, 64} {
		for seed := uint64(1); seed <= 10; seed++ {
			run := func(pol Policy) *Result {
				cfg := DefaultConfig(n, 4, pol)
				cfg.Seed = seed
				r, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s n=%d seed=%d: %v", pol, n, seed, err)
				}
				return r
			}
			est, rnd := run(EstAware), run(Random)
			if est.GeomeanMs > rnd.GeomeanMs {
				t.Errorf("n=%d seed=%d: est-aware geomean %.1f ms > random %.1f ms",
					n, seed, est.GeomeanMs, rnd.GeomeanMs)
			}
		}
	}
}

// TestOverloadShedsAndTails pins the acceptance cell: at 64 clients over 4
// servers, the load-blind policies overrun the admission bounds (nonzero
// sheds) while est-aware's contention-aware gate self-throttles (declines
// instead of sheds) and wins the tail.
func TestOverloadShedsAndTails(t *testing.T) {
	run := func(pol Policy) *Result {
		res, err := Run(DefaultConfig(64, 4, pol))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		return res
	}
	est, rnd := run(EstAware), run(Random)
	if rnd.Sheds == 0 {
		t.Errorf("random under 64/4 overload shed nothing; admission control never engaged")
	}
	if rnd.MaxQueueDepth == 0 {
		t.Errorf("random under overload never queued")
	}
	if est.Sheds != 0 {
		t.Errorf("est-aware shed %d requests; its gate should decline before admission has to", est.Sheds)
	}
	if est.Declines == 0 {
		t.Errorf("est-aware under overload never declined; contention gate is dead")
	}
	if est.P99Ms >= rnd.P99Ms {
		t.Errorf("est-aware p99 %.1f ms >= random %.1f ms", est.P99Ms, rnd.P99Ms)
	}
	if est.ThroughputRPS <= rnd.ThroughputRPS {
		t.Errorf("est-aware throughput %.1f rps <= random %.1f", est.ThroughputRPS, rnd.ThroughputRPS)
	}
}

// TestSJFReducesQueueWait: shortest-job-first must not increase the
// average queueing delay relative to FIFO on the same arrival sequence.
func TestSJFReducesQueueWait(t *testing.T) {
	for seed := uint64(5); seed <= 9; seed++ {
		run := func(d Discipline) *Result {
			cfg := DefaultConfig(64, 4, Random)
			cfg.Seed = seed
			cfg.Queue = d
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v seed=%d: %v", d, seed, err)
			}
			return r
		}
		fifo, sjf := run(FIFO), run(SJF)
		if sjf.AvgQueueWaitMs > fifo.AvgQueueWaitMs {
			t.Errorf("seed=%d: SJF avg wait %.1f ms > FIFO %.1f ms", seed, sjf.AvgQueueWaitMs, fifo.AvgQueueWaitMs)
		}
	}
}

// TestTraceAndMetricsEmission: an overloaded run must leave dispatch,
// queue and shed events on the fleet track and publish the end-of-run
// gauges.
func TestTraceAndMetricsEmission(t *testing.T) {
	tr := obs.NewTracer(1 << 16)
	ms := obs.NewMetrics()
	cfg := DefaultConfig(64, 4, Random)
	cfg.Tracer = tr
	cfg.Metrics = ms
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.Kind]int{}
	for _, ev := range tr.Events() {
		if ev.Track != obs.TrackFleet {
			t.Fatalf("fleet emitted on track %v: %+v", ev.Track, ev)
		}
		counts[ev.Kind]++
	}
	if counts[obs.KDispatch] != res.Dispatched {
		t.Errorf("saw %d fleet.dispatch events, want %d", counts[obs.KDispatch], res.Dispatched)
	}
	if counts[obs.KShed] != res.Sheds {
		t.Errorf("saw %d fleet.shed events, want %d", counts[obs.KShed], res.Sheds)
	}
	if counts[obs.KShed] == 0 || counts[obs.KQueue] == 0 {
		t.Errorf("overloaded run emitted no shed/queue events: %v", counts)
	}
	if got := ms.Value("fleet.requests"); got != int64(res.Requests) {
		t.Errorf("fleet.requests gauge = %d, want %d", got, res.Requests)
	}
	if got := ms.Value("fleet.sheds"); got != int64(res.Sheds) {
		t.Errorf("fleet.sheds gauge = %d, want %d", got, res.Sheds)
	}
	if ms.Value("fleet.queue_depth.max") == 0 {
		t.Errorf("fleet.queue_depth.max gauge is zero under overload")
	}
	if ms.Value("fleet.server.0.served") == 0 {
		t.Errorf("server 0 served nothing")
	}
}

// TestServerUtilBounds: utilization is a percentage of slot-time.
func TestServerUtilBounds(t *testing.T) {
	res, err := Run(DefaultConfig(32, 4, LeastLoaded))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerUtilPct) != 4 {
		t.Fatalf("got %d utilization entries, want 4", len(res.ServerUtilPct))
	}
	for i, u := range res.ServerUtilPct {
		if u < 0 || u > 100 {
			t.Errorf("server %d utilization %.2f%% out of [0,100]", i, u)
		}
	}
}

// TestConfigValidation rejects the configurations Run cannot execute.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Clients = 0 },
		func(c *Config) { c.RequestsPerClient = 0 },
		func(c *Config) { c.Servers = nil },
		func(c *Config) { c.Servers[0].R = 0 },
		func(c *Config) { c.Servers[0].Slots = 0 },
		func(c *Config) { c.Policy = "fastest" },
		func(c *Config) { c.Workload.TmMin = 0 },
		func(c *Config) { c.Workload.MemMax = c.Workload.MemMin - 1 },
		func(c *Config) { c.LinkProfiles = []string{"carrier-pigeon"} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(4, 2, Random)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// TestParsePolicy round-trips every policy name and rejects unknowns.
func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("fastest"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("ParsePolicy accepted an unknown name: %v", err)
	}
}

// TestClientLinkCycle: clients cycle the profile list and own independent
// clones.
func TestClientLinkCycle(t *testing.T) {
	a, err := ClientLink(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClientLink(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "fast#0" || b.Name != "fast#3" {
		t.Errorf("default cycle names: %q, %q", a.Name, b.Name)
	}
	if a == b {
		t.Errorf("clients 0 and 3 share a link")
	}
	a.BandwidthBps = 1
	if b.BandwidthBps == 1 {
		t.Errorf("mutating client 0's link leaked into client 3's")
	}
	if _, err := ClientLink([]string{"nope"}, 0); err == nil {
		t.Errorf("unknown profile accepted")
	}
}

// TestPercentile pins the nearest-rank convention.
func TestPercentile(t *testing.T) {
	lat := []simtime.PS{10, 20, 30, 40}
	if got := percentile(lat, 0.50); got != 20 {
		t.Errorf("p50 = %v, want 20", got)
	}
	if got := percentile(lat, 0.99); got != 40 {
		t.Errorf("p99 = %v, want 40", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

// TestPoolLoadSignal exercises the offrt binding: an idle pool reports no
// queueing delay; a fully occupied one reports the earliest slot-free
// horizon; stacked reservations extend it.
func TestPoolLoadSignal(t *testing.T) {
	p := NewPool(ServerSpec{R: 6, Slots: 2}, ServerSpec{R: 3, Slots: 1})
	if d := p.EstQueueDelay(0, simtime.Second); d != 0 {
		t.Fatalf("idle pool delay = %v, want 0", d)
	}
	// Fill server 0's two slots until t=100ms and t=200ms; server 1 idle.
	p.Occupy(0, 100*simtime.Millisecond, 0)
	p.Occupy(0, 200*simtime.Millisecond, 0)
	if d := p.EstQueueDelay(0, simtime.Second); d != 0 {
		t.Fatalf("pool with an idle server reports delay %v", d)
	}
	// Fill the last slot: earliest horizon is now server 0's 100ms slot.
	p.Occupy(1, 300*simtime.Millisecond, 0)
	if d := p.EstQueueDelay(0, simtime.Second); d != 100*simtime.Millisecond {
		t.Fatalf("full pool delay = %v, want 100ms", d)
	}
	// Stacking onto the earliest slot pushes the horizon to the next one.
	p.Occupy(0, 50*simtime.Millisecond, 0)
	if d := p.EstQueueDelay(0, simtime.Second); d != 150*simtime.Millisecond {
		t.Fatalf("stacked pool delay = %v, want 150ms", d)
	}
	// Time passing drains the delay.
	if d := p.EstQueueDelay(150*simtime.Millisecond, simtime.Second); d != 0 {
		t.Fatalf("delay after horizon = %v, want 0", d)
	}
}
