package fleet

import (
	"reflect"
	"testing"

	"repro/internal/simtime"
)

// TestStatsMergeExact is the merge-exactness contract the sharded engine
// relies on: recording a completion population split across several Stats
// and merging must be indistinguishable from one Stats observing every
// message itself — counters, latency population, and histogram snapshot.
func TestStatsMergeExact(t *testing.T) {
	r := entityStream(7, 0)
	var msgs []doneMsg
	for i := 0; i < 2000; i++ {
		decide := simtime.PS(r.intn(1_000_000_000))
		msgs = append(msgs, doneMsg{
			ci:     int32(i),
			kind:   uint8(r.intn(4)),
			missed: r.intn(5) == 0,
			decide: decide,
			done:   decide + simtime.PS(1+r.intn(2_000_000_000)),
		})
	}

	whole := NewStats()
	parts := []*Stats{NewStats(), NewStats(), NewStats()}
	for i, msg := range msgs {
		whole.record(msg)
		parts[i%len(parts)].record(msg)
	}
	whole.Requests = len(msgs)
	parts[0].Requests = len(msgs) // counters add; park the total on one part

	merged := NewStats()
	for _, p := range parts {
		merged.Merge(p)
	}
	// The latency population may arrive in any order — every aggregate is
	// computed after a sort — so compare as multisets via sorting copies.
	sortPS := func(v []simtime.PS) []simtime.PS {
		out := append([]simtime.PS(nil), v...)
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	if !reflect.DeepEqual(sortPS(merged.Latencies), sortPS(whole.Latencies)) {
		t.Error("merged latency population differs from the whole-run population")
	}
	if !reflect.DeepEqual(merged.E2E.Snapshot(), whole.E2E.Snapshot()) {
		t.Error("merged histogram snapshot differs from the whole-run snapshot")
	}
	merged.Latencies, whole.Latencies = nil, nil
	merged.E2E, whole.E2E = nil, nil
	if !reflect.DeepEqual(merged, whole) {
		t.Errorf("merged counters %+v != whole-run counters %+v", merged, whole)
	}
}

// TestStatsMergeNil: merging nil is a no-op, never a panic — shards that
// error out hand the coordinator a nil Stats.
func TestStatsMergeNil(t *testing.T) {
	s := NewStats()
	s.record(doneMsg{kind: outOffload, done: simtime.Millisecond})
	before := s.Offloads
	s.Merge(nil)
	if s.Offloads != before {
		t.Error("merging nil changed counters")
	}
}
