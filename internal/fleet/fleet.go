// Package fleet is the server-fleet scheduler: a deterministic simulated
// offload-serving subsystem that runs N concurrent mobile clients against
// a pool of M servers on the shared simtime clock.
//
// The paper's runtime serves one mobile client from one dedicated x86
// server. This package generalizes that shape toward the production-scale
// system the ROADMAP names: every client keeps the paper's dynamic
// Equation-1 gate, but the break-even point now includes the *queueing
// delay* a shared server charges (estimate.ProfitableQueued), so a busy
// fleet flips marginal tasks back to local execution. On top sit a
// pluggable load-balancing dispatcher (random, round-robin, least-loaded,
// est-aware) and admission control that sheds requests past a queue-depth
// or wait bound down the existing local-fallback path.
//
// Everything is seeded-deterministic: the same Config (including Seed)
// produces byte-identical schedules and statistics, so policy comparisons
// and tests are exact.
package fleet

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// ServerSpec is one server's capacity: its server/mobile performance
// ratio (the cost scale of Equation 1's R) and how many offloaded tasks
// it executes concurrently.
type ServerSpec struct {
	// R is the server/mobile performance ratio; an offloaded task with
	// mobile execution time Tm runs in Tm/R here.
	R float64
	// Slots is the number of concurrent execution slots; requests beyond
	// it wait in the run queue.
	Slots int
}

// Discipline orders a server's run queue.
type Discipline uint8

const (
	// FIFO serves queued requests in arrival order.
	FIFO Discipline = iota
	// SJF serves the shortest (estimated server execution time) first,
	// breaking ties by arrival order.
	SJF
)

func (d Discipline) String() string {
	if d == SJF {
		return "sjf"
	}
	return "fifo"
}

// Admission bounds what a server accepts. A request failing either bound
// at arrival is shed: the client is notified and re-executes locally,
// exactly the runtime's local-fallback path.
type Admission struct {
	// MaxQueue sheds a request arriving at a server whose run queue
	// already holds this many waiting requests (0 = unbounded).
	MaxQueue int
	// MaxWait sheds a request whose estimated queueing delay at arrival
	// exceeds this bound (0 = unbounded): a deadline the fleet refuses to
	// knowingly miss.
	MaxWait simtime.PS
}

// WorkloadModel is the synthetic per-client request population: each
// request draws a mobile execution time Tm and a memory footprint M (the
// two inputs of Equation 1), and clients pause for a think time between
// requests. All draws are uniform over the given ranges from the client's
// seeded stream.
type WorkloadModel struct {
	TmMin, TmMax       simtime.PS
	MemMin, MemMax     int64
	ThinkMin, ThinkMax simtime.PS

	// DiurnalAmp/DiurnalPeriod overlay a sinusoidal load curve on the
	// think times: the draw is divided by 1 + Amp*sin(2πt/Period), so
	// traffic swings between (1-Amp)x and (1+Amp)x the baseline over each
	// period — the daily tide the adaptive admission controller is tuned
	// against. Amp 0 (the zero value) keeps the flat workload; Amp must
	// stay below 1.
	DiurnalAmp    float64
	DiurnalPeriod simtime.PS
}

// Config describes one fleet run.
type Config struct {
	// Seed drives every random stream (per-client workload draws, initial
	// think offsets, the random policy). Same seed, same everything.
	Seed uint64
	// Clients is the number of concurrent mobile clients.
	Clients int
	// RequestsPerClient is how many offload candidates each client issues.
	RequestsPerClient int
	// Servers is the pool; heterogeneous specs are fine.
	Servers []ServerSpec
	// Policy is the dispatcher's load-balancing policy.
	Policy Policy
	// Queue selects the servers' run-queue discipline.
	Queue Discipline
	// Admission bounds what servers accept.
	Admission Admission
	// Adaptive, when enabled, turns the Admission bounds into the
	// starting point of a per-period feedback controller (see Adaptive).
	Adaptive Adaptive
	// Workload is the synthetic request population.
	Workload WorkloadModel
	// Shards selects the engine: 0 (the zero value) runs the sequential
	// reference engine, n >= 1 runs the sharded parallel engine with n
	// worker shards. Every choice produces bit-identical Results; Shards
	// only trades wall-clock for cores.
	Shards int
	// LinkProfiles names the netsim presets cycled across clients
	// (client i gets a Clone of profile i mod len). Empty defaults to
	// {"fast", "slow", "lte"}.
	LinkProfiles []string

	// ServerFaults schedules deterministic server faults against pool
	// members by index: crashes and drains take servers out of rotation
	// mid-run, slowdowns and stalls stretch the service times of jobs
	// started inside their windows. Nil leaves the pool perfectly healthy.
	ServerFaults *faults.ServerPlan
	// Tiers, when set, arranges the pool as a hierarchical edge/cloud
	// topology: Servers must equal TieredServers(Tiers) (edge indices
	// first), dispatch becomes the est-aware 3-way placement gate
	// (estimate.Placement) and, with Migrate on, saturated-edge arrivals
	// demote to the cloud and freed edge slots promote running cloud jobs
	// back, both over the topology's WAN backhaul. Nil keeps the flat
	// single-tier fleet.
	Tiers *tiers.Topology

	// Migrate enables mid-flight recovery of the work a failed server was
	// holding: running jobs on a draining server checkpoint-and-migrate to
	// the best-placed survivor over the backhaul, jobs lost to a crash are
	// re-sent there by their clients, queued jobs forward. Off, every
	// victim degrades to the client-local fallback path.
	Migrate bool

	// Exemplars, when positive, turns on the tail sampler: every job emits
	// a cheap KJob summary, and complete span trees are retained for the
	// slowest-K jobs, the K worst of each anomaly class (shed / migrated /
	// faulted) and a K-sized seeded baseline, flushed into the Tracer ring
	// at end of run. Zero (the default) records nothing extra. Retention
	// is deterministic and shard-invariant.
	Exemplars int

	// Tracer receives fleet.dispatch / fleet.queue / fleet.shed events
	// (plus per-request gate decisions); Metrics receives the end-of-run
	// gauges. Both may be nil.
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
}

// DefaultServers builds a heterogeneous pool of n servers: fast machines
// (R=6, the paper's ~5.8 rounded up) alternating with half-speed ones
// (R=3), two slots each — the shape that makes est-aware routing matter.
func DefaultServers(n int) []ServerSpec {
	specs := make([]ServerSpec, n)
	for i := range specs {
		r := 6.0
		if i%2 == 1 {
			r = 3.0
		}
		specs[i] = ServerSpec{R: r, Slots: 2}
	}
	return specs
}

// TieredServers materializes a topology's pools as the fleet server
// slice: edge servers occupy the low indices [0, Edge.Servers), cloud
// servers follow — the index layout Topology.TierOf assumes.
func TieredServers(topo *tiers.Topology) []ServerSpec {
	specs := make([]ServerSpec, 0, topo.Total())
	for i := 0; i < topo.Edge.Servers; i++ {
		specs = append(specs, ServerSpec{R: topo.Edge.R, Slots: topo.Edge.Slots})
	}
	for i := 0; i < topo.Cloud.Servers; i++ {
		specs = append(specs, ServerSpec{R: topo.Cloud.R, Slots: topo.Cloud.Slots})
	}
	return specs
}

// TieredConfig is DefaultConfig over a hierarchical topology: every
// client reaches the edge pool over the edge-wifi access profile,
// dispatch is the 3-way placement gate (the topology's Mode selects
// 3way / edge-only / cloud-only), and cross-tier migration is enabled.
func TieredConfig(clients int, topo *tiers.Topology) Config {
	cfg := DefaultConfig(clients, 1, EstAware)
	cfg.Servers = TieredServers(topo)
	cfg.Tiers = topo
	cfg.LinkProfiles = []string{"edge-wifi"}
	cfg.Migrate = true
	return cfg
}

// DefaultConfig is the standard scaling-experiment cell: n clients over a
// DefaultServers pool of m, tasks of 0.2-2 s mobile time and 0.25-4 MB
// footprint, 50-500 ms think times, bounded admission.
func DefaultConfig(clients, servers int, pol Policy) Config {
	return Config{
		Seed:              1,
		Clients:           clients,
		RequestsPerClient: 10,
		Servers:           DefaultServers(servers),
		Policy:            pol,
		Admission:         Admission{MaxQueue: 8, MaxWait: 4 * simtime.Second},
		Workload: WorkloadModel{
			TmMin: 200 * simtime.Millisecond, TmMax: 2 * simtime.Second,
			MemMin: 256 << 10, MemMax: 4 << 20,
			ThinkMin: 50 * simtime.Millisecond, ThinkMax: 500 * simtime.Millisecond,
		},
	}
}

// Validate rejects configurations the simulation cannot run with.
func (c *Config) Validate() error {
	if c.Clients <= 0 || c.RequestsPerClient <= 0 {
		return fmt.Errorf("fleet: need at least one client and one request, got %d x %d", c.Clients, c.RequestsPerClient)
	}
	if len(c.Servers) == 0 {
		return fmt.Errorf("fleet: empty server pool")
	}
	for i, s := range c.Servers {
		if s.R <= 0 || s.Slots <= 0 {
			return fmt.Errorf("fleet: server %d has non-positive capacity (R=%g, slots=%d)", i, s.R, s.Slots)
		}
	}
	if _, err := ParsePolicy(string(c.Policy)); err != nil {
		return err
	}
	w := c.Workload
	if w.TmMin <= 0 || w.TmMax < w.TmMin || w.MemMin <= 0 || w.MemMax < w.MemMin ||
		w.ThinkMin < 0 || w.ThinkMax < w.ThinkMin {
		return fmt.Errorf("fleet: malformed workload model %+v", w)
	}
	if w.DiurnalAmp < 0 || w.DiurnalAmp >= 1 {
		return fmt.Errorf("fleet: diurnal amplitude %g out of [0, 1)", w.DiurnalAmp)
	}
	if w.DiurnalAmp > 0 && w.DiurnalPeriod <= 0 {
		return fmt.Errorf("fleet: diurnal workload needs a positive period, got %v", w.DiurnalPeriod)
	}
	if err := c.Adaptive.validate(); err != nil {
		return err
	}
	if c.Shards < 0 {
		return fmt.Errorf("fleet: negative shard count %d (0 selects the sequential engine)", c.Shards)
	}
	if c.Exemplars < 0 {
		return fmt.Errorf("fleet: negative exemplar count %d (0 disables the tail sampler)", c.Exemplars)
	}
	if c.Shards > 0 {
		if _, _, err := buildClients(c); err != nil {
			return err
		}
		if c.lookahead() < 1 {
			return fmt.Errorf("fleet: sharded engine needs lookahead >= 1ps (think floor + min(TmMin, link floor)); zero-cost links with zero think times leave the conservative window empty")
		}
	}
	if err := c.ServerFaults.Validate(); err != nil {
		return err
	}
	if c.Tiers != nil {
		if err := c.Tiers.Validate(); err != nil {
			return err
		}
		if got := c.Tiers.Total(); got != len(c.Servers) {
			return fmt.Errorf("fleet: topology describes %d servers but the pool has %d (build the pool with TieredServers)", got, len(c.Servers))
		}
		if c.Policy != EstAware {
			return fmt.Errorf("fleet: tiered placement requires the est-aware policy, got %q", c.Policy)
		}
	}
	return nil
}

// thinkFloor is the smallest pause any completion-to-next-request chain
// can exhibit: the think-time floor, deflated by the diurnal peak (and
// one ps for float truncation slack).
func (c *Config) thinkFloor() simtime.PS {
	think := c.Workload.ThinkMin
	if c.Workload.DiurnalAmp > 0 {
		think = simtime.PS(float64(think)/(1+c.Workload.DiurnalAmp)) - 1
		if think < 0 {
			think = 0
		}
	}
	return think
}

// lookahead is the sharded engine's conservative window size: a lower
// bound on the delay between any processed event and the earliest client
// ready event it can cause. Every completion path charges at least the
// think floor plus either a full local execution (declines, sheds,
// fallbacks: >= TmMin) or the reply leg of an offload (>= the cheapest
// link's fixed per-message cost). Events inside a window therefore never
// generate work before the window's end, which is what makes the
// barrier safe.
func (c *Config) lookahead() simtime.PS {
	step := c.Workload.TmMin
	profiles := c.LinkProfiles
	if len(profiles) == 0 {
		profiles = defaultLinkProfiles
	}
	for _, name := range profiles {
		l, err := netsim.Profile(name)
		if err != nil {
			continue // Validate rejects unknown profiles via buildClients
		}
		// TransferTime charges Latency + PerMessage on every leg unless
		// the active bandwidth is 0 (the ideal-link convention: transfers
		// are free). Phases vary only bandwidth, so a single zero-bandwidth
		// regime anywhere collapses the link's floor to 0.
		floor := l.Latency + l.PerMessage
		if l.BandwidthBps == 0 {
			floor = 0
		}
		for _, ph := range l.Phases {
			if ph.BandwidthBps == 0 {
				floor = 0
			}
		}
		if floor < step {
			step = floor
		}
	}
	return c.thinkFloor() + step
}

// defaultLinkProfiles is the client-link cycle used when Config leaves
// LinkProfiles empty.
var defaultLinkProfiles = []string{"fast", "slow", "lte"}

// ClientLink stamps out client i's private link from the profile cycle:
// a Clone of profiles[i mod len] named "<profile>#<i>". It is what gives
// the fleet its heterogeneous client population without repeating phase
// tables.
func ClientLink(profiles []string, i int) (*netsim.Link, error) {
	if len(profiles) == 0 {
		profiles = defaultLinkProfiles
	}
	name := profiles[i%len(profiles)]
	l, err := netsim.Profile(name)
	if err != nil {
		return nil, err
	}
	return l.Clone(fmt.Sprintf("%s#%d", name, i)), nil
}

// rng is a splitmix64 stream: tiny, seedable, and stable across Go
// versions (math/rand's shuffling internals are not part of its
// compatibility promise, and determinism here is load-bearing).
type rng struct{ s uint64 }

// dispatcherEntity is the entity id of the dispatcher's private stream
// (the random policy's coin), disjoint from every client id.
const dispatcherEntity = ^uint64(0)

// entityStream derives entity id's private stream from the run seed by
// mixing the id through two rounds of the splitmix64 finalizer. Streams
// depend only on (seed, id) — never on draw interleaving or on how many
// other entities exist — so shard count cannot change a single workload
// draw. The old derivation xor'ed the seed with id multiples of the
// golden-ratio increment, which made every client's stream a linear
// offset of its neighbors' on the same splitmix64 orbit; mixing breaks
// that correlation.
func entityStream(seed, id uint64) rng {
	return rng{s: mix64(seed ^ mix64(id^0x9E3779B97F4A7C15))}
}

// mix64 is the splitmix64 output finalizer as a pure function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangePS returns a uniform draw in [lo, hi].
func (r *rng) rangePS(lo, hi simtime.PS) simtime.PS {
	if hi <= lo {
		return lo
	}
	return lo + simtime.PS(r.float()*float64(hi-lo))
}

// rangeI64 returns a uniform draw in [lo, hi].
func (r *rng) rangeI64(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + int64(r.float()*float64(hi-lo))
}
