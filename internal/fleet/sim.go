package fleet

import (
	"container/heap"
	"fmt"

	"repro/internal/estimate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// job is one offload request in flight through the fleet.
type job struct {
	client int
	tm     simtime.PS // mobile execution time (Equation 1's Tm)
	mem    int64      // memory footprint (Equation 1's M)
	exec   simtime.PS // execution time at the chosen server
	decide simtime.PS // when the client decided to offload
	enq    simtime.PS // when the request entered the run queue
	finish simtime.PS // when the server will complete it (running jobs)
	down   simtime.PS // reply transfer time over the client's link
	seq    int64      // FIFO tie-break
}

// server is one pool member's live state.
type server struct {
	spec    ServerSpec
	busy    int    // occupied slots
	running []*job // jobs in slots (finish times feed the load estimate)
	queue   []*job // waiting jobs, ordered by the queue discipline at pop

	// reserved is dispatcher-side bookkeeping: service time of requests
	// routed here but still in flight over their clients' links. Without
	// it every concurrent est-aware decision sees the same idle server
	// and herds onto it — the classic join-shortest-queue-with-stale-info
	// pathology.
	reserved simtime.PS

	// busyPS integrates busy slots over time for the utilization gauge;
	// maxDepth tracks the deepest queue ever observed.
	busyPS   simtime.PS
	lastT    simtime.PS
	maxDepth int
	waitPS   simtime.PS // total queueing delay charged
	served   int        // jobs that entered a slot
}

// advance integrates the utilization clock to now.
func (s *server) advance(now simtime.PS) {
	if now > s.lastT {
		s.busyPS += simtime.PS(int64(s.busy) * int64(now-s.lastT))
		s.lastT = now
	}
}

// execTime is the task's service time at this server's speed.
func (s *server) execTime(tm simtime.PS) simtime.PS {
	return simtime.PS(float64(tm) / s.spec.R)
}

// estWait estimates the queueing delay a request dispatched now would
// face: all outstanding work (remaining service of running jobs, the full
// service of queued ones, and in-flight reservations) spread across the
// slots. This is the live load signal the dispatcher exposes — to its own
// policies, to the admission bound, and to the est-aware gate.
func (s *server) estWait(now simtime.PS) simtime.PS {
	left := s.reserved
	for _, j := range s.running {
		if j.finish > now {
			left += j.finish - now
		}
	}
	for _, j := range s.queue {
		left += j.exec
	}
	return left / simtime.PS(s.spec.Slots)
}

// pop removes the next queued job under the discipline: FIFO takes the
// oldest, SJF the shortest service time (ties by arrival order).
func (s *server) pop(d Discipline) *job {
	best := 0
	if d == SJF {
		for i := 1; i < len(s.queue); i++ {
			if s.queue[i].exec < s.queue[best].exec ||
				(s.queue[i].exec == s.queue[best].exec && s.queue[i].seq < s.queue[best].seq) {
				best = i
			}
		}
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return j
}

// dropRunning removes a completed job from the slot list.
func (s *server) dropRunning(j *job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

// event kinds of the discrete-event loop.
const (
	evReady  = iota // a client is ready to issue its next request
	evArrive        // an offload request reaches its server
	evFinish        // a server slot completes a job
)

// event is one scheduled occurrence; the heap orders by (time, seq) so
// simultaneous events resolve deterministically.
type event struct {
	t    simtime.PS
	seq  int64
	kind int
	ci   int // client
	si   int // server (evArrive/evFinish)
	j    *job
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// client is one simulated mobile device.
type client struct {
	id        int
	link      *netsim.Link
	rng       rng
	remaining int
}

// shedNoticeBytes is the size of the admission-reject notification the
// client waits for before falling back locally.
const shedNoticeBytes = 64

// Run executes one fleet simulation to completion and returns its
// statistics. The run is strictly deterministic in cfg (including Seed).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	servers := make([]*server, len(cfg.Servers))
	for i, spec := range cfg.Servers {
		servers[i] = &server{spec: spec}
	}
	clients := make([]*client, cfg.Clients)
	disp := &dispatcher{policy: cfg.Policy, rng: newRng(cfg.Seed ^ 0xD15847C4)}

	var evs eventHeap
	var seq int64
	push := func(t simtime.PS, kind, ci, si int, j *job) {
		seq++
		heap.Push(&evs, event{t: t, seq: seq, kind: kind, ci: ci, si: si, j: j})
	}

	for i := range clients {
		link, err := ClientLink(cfg.LinkProfiles, i)
		if err != nil {
			return nil, err
		}
		clients[i] = &client{
			id:        i,
			link:      link,
			rng:       newRng(cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(i+1))),
			remaining: cfg.RequestsPerClient,
		}
		// Stagger the fleet's first wave by one think time per client.
		push(clients[i].rng.rangePS(cfg.Workload.ThinkMin, cfg.Workload.ThinkMax), evReady, i, 0, nil)
	}

	res := &Result{
		Policy:  string(cfg.Policy),
		Queue:   cfg.Queue.String(),
		Clients: cfg.Clients,
		Servers: len(cfg.Servers),
		Seed:    cfg.Seed,
	}
	var latencies []simtime.PS
	var now simtime.PS

	// Queue-wait distribution: a private histogram feeds the Result
	// snapshot (deterministic, so the BENCH JSON stays byte-stable), and a
	// registry twin renders in Metrics.Summary. Both nil-safe/no-op paths
	// cost nothing when unused.
	hWait := obs.NewHistogram()
	mWait := cfg.Metrics.Histogram("lat.queue_wait_ps")
	recordWait := func(w simtime.PS) {
		hWait.Record(int64(w))
		mWait.Record(int64(w))
	}

	// complete records one finished request and schedules the client's
	// next think/issue cycle.
	complete := func(c *client, decide, done simtime.PS) {
		latencies = append(latencies, done-decide)
		next := done + c.rng.rangePS(cfg.Workload.ThinkMin, cfg.Workload.ThinkMax)
		push(next, evReady, c.id, 0, nil)
	}

	// startJob moves a job into a slot of server si at instant t.
	startJob := func(si int, j *job, t simtime.PS) {
		s := servers[si]
		s.busy++
		s.served++
		j.finish = t + j.exec
		s.running = append(s.running, j)
		push(j.finish, evFinish, j.client, si, j)
	}

	for evs.Len() > 0 {
		ev := heap.Pop(&evs).(event)
		now = ev.t
		switch ev.kind {
		case evReady:
			c := clients[ev.ci]
			if c.remaining == 0 {
				break
			}
			c.remaining--
			res.Requests++
			tm := c.rng.rangePS(cfg.Workload.TmMin, cfg.Workload.TmMax)
			mem := c.rng.rangeI64(cfg.Workload.MemMin, cfg.Workload.MemMax)
			link := c.link.At(now)
			up := link.TransferTime(mem)
			down := link.TransferTime(mem)
			si, wait := disp.pick(servers, now, tm, up, down)
			srv := servers[si]
			// The dynamic gate: Equation 1 against the picked server's
			// speed. Only the est-aware policy extends it with the live
			// queueing-delay signal (the contention-aware gate); the
			// naive policies keep the paper's load-blind gate, assuming
			// a dedicated server — which is exactly what overruns queues
			// and triggers admission sheds under heavy traffic.
			gateWait := simtime.PS(0)
			if cfg.Policy == EstAware {
				gateWait = wait
			}
			p := estimate.Params{
				R:            srv.spec.R,
				BandwidthBps: link.BandwidthBps,
				RTT:          2 * (link.Latency + link.PerMessage),
			}
			if !p.ProfitableQueued(tm, mem, gateWait) {
				res.Declines++
				cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KGate, Track: obs.TrackFleet,
					Name: "decline", A0: int64(tm), A1: mem, A2: link.BandwidthBps, A3: int64(wait)})
				complete(c, now, now+tm)
				break
			}
			res.Dispatched++
			cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KDispatch, Track: obs.TrackFleet,
				Name: string(cfg.Policy), A0: int64(c.id), A1: int64(si),
				A2: int64(len(srv.queue)), A3: int64(wait)})
			seq++
			j := &job{client: c.id, tm: tm, mem: mem, exec: srv.execTime(tm),
				decide: now, down: down, seq: seq}
			srv.reserved += j.exec
			push(now+up, evArrive, c.id, si, j)

		case evArrive:
			s := servers[ev.si]
			j := ev.j
			// The reservation materializes: the job is now visible in the
			// queue or a slot instead.
			s.reserved -= j.exec
			if s.reserved < 0 {
				s.reserved = 0
			}
			depth := len(s.queue)
			if depth > s.maxDepth {
				s.maxDepth = depth
			}
			// Admission control runs against the server's *actual* state
			// at arrival — decision-time estimates are already stale by
			// one transfer time, which is exactly how a thundering herd
			// overruns a queue bound.
			if (cfg.Admission.MaxQueue > 0 && depth >= cfg.Admission.MaxQueue && s.busy >= s.spec.Slots) ||
				(cfg.Admission.MaxWait > 0 && s.estWait(now) > cfg.Admission.MaxWait) {
				res.Sheds++
				cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KShed, Track: obs.TrackFleet,
					A0: int64(j.client), A1: int64(ev.si), A2: int64(depth)})
				c := clients[j.client]
				notice := c.link.At(now).TransferTime(shedNoticeBytes)
				// Local fallback: the client hears the reject, then runs
				// the task itself.
				complete(c, j.decide, now+notice+j.tm)
				break
			}
			s.advance(now)
			if s.busy < s.spec.Slots {
				recordWait(0)
				startJob(ev.si, j, now)
			} else {
				j.enq = now
				s.queue = append(s.queue, j)
				if len(s.queue) > s.maxDepth {
					s.maxDepth = len(s.queue)
				}
			}

		case evFinish:
			s := servers[ev.si]
			j := ev.j
			s.advance(now)
			s.busy--
			s.dropRunning(j)
			res.Offloads++
			complete(clients[j.client], j.decide, now+j.down)
			if len(s.queue) > 0 && s.busy < s.spec.Slots {
				next := s.pop(cfg.Queue)
				wait := now - next.enq
				s.waitPS += wait
				recordWait(wait)
				cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KQueue, Track: obs.TrackFleet,
					A0: int64(next.client), A1: int64(ev.si), A2: int64(wait)})
				startJob(ev.si, next, now)
			}
		}
	}

	for _, s := range servers {
		s.advance(now)
	}
	if got := res.Offloads + res.Declines + res.Sheds; got != res.Requests {
		return nil, fmt.Errorf("fleet: request accounting broken: %d completed of %d issued", got, res.Requests)
	}
	res.QueueWait = hWait.Snapshot()
	res.finish(latencies, servers, now)
	res.publish(cfg.Metrics, servers)
	return res, nil
}
