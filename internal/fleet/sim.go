package fleet

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// clientState is one simulated mobile device. Client-side logic (workload
// draws from the client's private stream, link pricing, completion
// bookkeeping) touches no global simulation state, which is what lets the
// sharded engine run it on worker goroutines: any interleaving of
// different clients' handlers is equivalent.
type clientState struct {
	rng       rng
	link      *netsim.Link
	remaining int
}

// buildClients materializes the client population and the per-client link
// table. Clients on the same profile share one immutable Link instance —
// the per-client Clone the old engine made existed only to stamp a
// distinct name, which at a million clients is real memory.
func buildClients(cfg *Config) ([]clientState, []*netsim.Link, error) {
	profiles := cfg.LinkProfiles
	if len(profiles) == 0 {
		profiles = defaultLinkProfiles
	}
	base := make([]*netsim.Link, len(profiles))
	for i, name := range profiles {
		l, err := netsim.Profile(name)
		if err != nil {
			return nil, nil, err
		}
		base[i] = l
	}
	clients := make([]clientState, cfg.Clients)
	links := make([]*netsim.Link, cfg.Clients)
	for i := range clients {
		links[i] = base[i%len(base)]
		clients[i] = clientState{
			rng:       entityStream(cfg.Seed, uint64(i)),
			link:      links[i],
			remaining: cfg.RequestsPerClient,
		}
	}
	return clients, links, nil
}

// nextThink draws the client's pause before its next request, issued at
// instant at. Under a diurnal workload the draw is scaled by the inverse
// of the load curve: peak hours shrink think times (more traffic), the
// trough stretches them.
func nextThink(cfg *Config, cs *clientState, at simtime.PS) simtime.PS {
	think := cs.rng.rangePS(cfg.Workload.ThinkMin, cfg.Workload.ThinkMax)
	if cfg.Workload.DiurnalAmp > 0 {
		think = simtime.PS(float64(think) / cfg.Workload.loadAt(at))
	}
	return think
}

// loadAt is the diurnal load factor at instant t: 1 + Amp*sin(2πt/Period),
// so the curve starts at the neutral crossing and peaks a quarter-period
// in.
func (w *WorkloadModel) loadAt(t simtime.PS) float64 {
	if w.DiurnalAmp <= 0 {
		return 1
	}
	return 1 + w.DiurnalAmp*math.Sin(2*math.Pi*float64(t)/float64(w.DiurnalPeriod))
}

// issueReady runs one ready event: if the client still owes requests, it
// draws the task (Tm, M), prices the transfer legs over its own link at
// this instant, and returns the decision intent for the machine.
func issueReady(cfg *Config, cs *clientState, ci int32, now simtime.PS, st *Stats) (intent, bool) {
	st.Events++
	if cs.remaining == 0 {
		return intent{}, false
	}
	cs.remaining--
	st.Requests++
	// The logical JobID: fixed here, at issue time, from (client, ordinal)
	// alone — 1-based so id 0 stays "unattributed" — and carried through
	// every continuation of the request's life. Being a pure function of
	// the client's identity, it is identical under every engine and shard
	// count.
	ord := int64(cfg.RequestsPerClient - cs.remaining)
	tm := cs.rng.rangePS(cfg.Workload.TmMin, cfg.Workload.TmMax)
	mem := cs.rng.rangeI64(cfg.Workload.MemMin, cfg.Workload.MemMax)
	link := cs.link.At(now)
	return intent{
		t:    now,
		ci:   ci,
		tm:   tm,
		mem:  mem,
		up:   link.TransferTime(mem),
		down: link.TransferTime(mem),
		bw:   link.BandwidthBps,
		rtt:  2 * (link.Latency + link.PerMessage),
		job:  int64(ci)*int64(cfg.RequestsPerClient) + ord,
	}, true
}

// applyDone records one completed request on the client and returns when
// its next ready event fires.
func applyDone(cfg *Config, cs *clientState, msg doneMsg, st *Stats) simtime.PS {
	st.Events++
	st.record(msg)
	return msg.done + nextThink(cfg, cs, msg.done)
}

// Run executes one fleet simulation to completion and returns its
// statistics. The run is strictly deterministic in cfg (including Seed
// and Shards): Shards == 0 runs the sequential reference engine, any
// Shards >= 1 runs the sharded parallel engine, and every choice produces
// bit-identical Results — per-entity RNG streams and the intrinsic
// (t, lane, seq) event order make the schedule a property of the
// configuration, not of the execution strategy.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 0 {
		return runSharded(cfg)
	}
	return runSequential(cfg)
}

// runSequential is the single-heap reference engine: one event queue over
// every lane, the machine's handlers invoked inline. It is kept as the
// differential oracle for the sharded engine — same state machine, no
// concurrency anywhere.
func runSequential(cfg Config) (*Result, error) {
	clients, links, err := buildClients(&cfg)
	if err != nil {
		return nil, err
	}
	st := NewStats()
	m := newMachine(&cfg, links, st)
	nc := int32(cfg.Clients)
	q := newSchedQueue(0, cfg.Clients+len(cfg.Servers))
	m.sched = func(t simtime.PS, kind uint8, si int32, j *job) {
		q.sched(t, kind, nc+si, si, j)
	}
	m.emit = func(msg doneMsg) {
		next := applyDone(&cfg, &clients[msg.ci], msg, st)
		q.sched(next, evReady, msg.ci, 0, nil)
	}

	// Stagger the fleet's first wave by one think time per client.
	for i := range clients {
		q.sched(nextThink(&cfg, &clients[i], 0), evReady, int32(i), 0, nil)
	}
	m.scheduleFaults()

	var now simtime.PS
	for !q.empty() {
		ev := q.pop()
		now = ev.t
		if ev.kind == evReady {
			if in, ok := issueReady(&cfg, &clients[ev.lane], ev.lane, ev.t, st); ok {
				m.handleIntent(in)
			}
			continue
		}
		m.handleServerEvent(ev)
	}
	return m.finishRun(st, now)
}
