package fleet

import (
	"container/heap"
	"fmt"

	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// job is one offload request in flight through the fleet.
type job struct {
	client int
	tm     simtime.PS // mobile execution time (Equation 1's Tm)
	mem    int64      // memory footprint (Equation 1's M)
	exec   simtime.PS // execution time at the chosen server
	decide simtime.PS // when the client decided to offload
	enq    simtime.PS // when the request entered the run queue
	finish simtime.PS // when the server will complete it (running jobs)
	down   simtime.PS // reply transfer time over the client's link
	seq    int64      // FIFO tie-break
	// deadline is the client's patience for the whole offload, fixed at
	// dispatch like offrt's offloadDeadline: slack times the predicted
	// transfer + execution + reply. Without the migration control plane
	// this expiry is the client's only way to learn its server died.
	deadline simtime.PS
	// cancelled tombstones a job whose server died mid-service: its
	// already-scheduled evFinish must fire as a no-op, because its slot and
	// accounting were released at the fault instant.
	cancelled bool
	// recovery marks a job re-placed after a server fault. Recovery
	// traffic is control-plane placement against a live reservation — it
	// already raced the local-fallback estimate at relocation time — so
	// the client-facing admission bound does not shed it a second time.
	recovery bool
}

// server is one pool member's live state.
type server struct {
	spec    ServerSpec
	busy    int    // occupied slots
	running []*job // jobs in slots (finish times feed the load estimate)
	queue   []*job // waiting jobs, ordered by the queue discipline at pop

	// reserved is dispatcher-side bookkeeping: service time of requests
	// routed here but still in flight over their clients' links. Without
	// it every concurrent est-aware decision sees the same idle server
	// and herds onto it — the classic join-shortest-queue-with-stale-info
	// pathology.
	reserved simtime.PS

	// busyPS integrates busy slots over time for the utilization gauge;
	// maxDepth tracks the deepest queue ever observed.
	busyPS   simtime.PS
	lastT    simtime.PS
	maxDepth int
	waitPS   simtime.PS // total queueing delay charged
	served   int        // jobs that entered a slot

	// down marks a crashed or draining server: the dispatcher routes
	// around it and arrivals already in flight are relocated.
	down bool
}

// advance integrates the utilization clock to now.
func (s *server) advance(now simtime.PS) {
	if now > s.lastT {
		s.busyPS += simtime.PS(int64(s.busy) * int64(now-s.lastT))
		s.lastT = now
	}
}

// execTime is the task's service time at this server's speed.
func (s *server) execTime(tm simtime.PS) simtime.PS {
	return simtime.PS(float64(tm) / s.spec.R)
}

// estWait estimates the queueing delay a request dispatched now would
// face: all outstanding work (remaining service of running jobs, the full
// service of queued ones, and in-flight reservations) spread across the
// slots. This is the live load signal the dispatcher exposes — to its own
// policies, to the admission bound, and to the est-aware gate.
func (s *server) estWait(now simtime.PS) simtime.PS {
	left := s.reserved
	for _, j := range s.running {
		if j.finish > now {
			left += j.finish - now
		}
	}
	for _, j := range s.queue {
		left += j.exec
	}
	return left / simtime.PS(s.spec.Slots)
}

// pop removes the next queued job under the discipline: FIFO takes the
// oldest, SJF the shortest service time (ties by arrival order).
func (s *server) pop(d Discipline) *job {
	best := 0
	if d == SJF {
		for i := 1; i < len(s.queue); i++ {
			if s.queue[i].exec < s.queue[best].exec ||
				(s.queue[i].exec == s.queue[best].exec && s.queue[i].seq < s.queue[best].seq) {
				best = i
			}
		}
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return j
}

// dropRunning removes a completed job from the slot list.
func (s *server) dropRunning(j *job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

// event kinds of the discrete-event loop.
const (
	evReady  = iota // a client is ready to issue its next request
	evArrive        // an offload request reaches its server
	evFinish        // a server slot completes a job
	evCrash         // a scheduled server crash: in-flight state is lost
	evDrain         // a scheduled drain: the server stops taking work
)

// detectDelay is the health monitor's failure-detection latency: the gap
// between a server dying and the control plane declaring it dead off its
// missed heartbeats. It is a property of the migration subsystem — only
// fleets running with Migrate have a component watching server liveness.
// Drains are announced and pay the same small notification delay.
const detectDelay = 5 * simtime.Millisecond

// deadlineSlack mirrors offrt's DefaultRecovery().DeadlineSlack: a client
// without the control plane waits slack times its predicted end-to-end
// offload time (upload + server execution + reply) before concluding the
// server is gone and re-executing locally. This is the fallback-only
// failure detector — deadline expiry, not heartbeats — and the reason
// fast recovery needs the monitor: a crash costs the client its remaining
// patience, not five milliseconds.
const deadlineSlack = 3

// event is one scheduled occurrence; the heap orders by (time, seq) so
// simultaneous events resolve deterministically.
type event struct {
	t    simtime.PS
	seq  int64
	kind int
	ci   int // client
	si   int // server (evArrive/evFinish)
	j    *job
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// client is one simulated mobile device.
type client struct {
	id        int
	link      *netsim.Link
	rng       rng
	remaining int
}

// shedNoticeBytes is the size of the admission-reject notification the
// client waits for before falling back locally.
const shedNoticeBytes = 64

// Run executes one fleet simulation to completion and returns its
// statistics. The run is strictly deterministic in cfg (including Seed).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	servers := make([]*server, len(cfg.Servers))
	for i, spec := range cfg.Servers {
		servers[i] = &server{spec: spec}
	}
	clients := make([]*client, cfg.Clients)
	disp := &dispatcher{policy: cfg.Policy, rng: newRng(cfg.Seed ^ 0xD15847C4)}

	var evs eventHeap
	var seq int64
	push := func(t simtime.PS, kind, ci, si int, j *job) {
		seq++
		heap.Push(&evs, event{t: t, seq: seq, kind: kind, ci: ci, si: si, j: j})
	}

	for i := range clients {
		link, err := ClientLink(cfg.LinkProfiles, i)
		if err != nil {
			return nil, err
		}
		clients[i] = &client{
			id:        i,
			link:      link,
			rng:       newRng(cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(i+1))),
			remaining: cfg.RequestsPerClient,
		}
		// Stagger the fleet's first wave by one think time per client.
		push(clients[i].rng.rangePS(cfg.Workload.ThinkMin, cfg.Workload.ThinkMax), evReady, i, 0, nil)
	}

	res := &Result{
		Policy:  string(cfg.Policy),
		Queue:   cfg.Queue.String(),
		Clients: cfg.Clients,
		Servers: len(cfg.Servers),
		Seed:    cfg.Seed,
	}
	var latencies []simtime.PS
	var now simtime.PS

	// Queue-wait distribution: a private histogram feeds the Result
	// snapshot (deterministic, so the BENCH JSON stays byte-stable), and a
	// registry twin renders in Metrics.Summary. Both nil-safe/no-op paths
	// cost nothing when unused.
	hWait := obs.NewHistogram()
	mWait := cfg.Metrics.Histogram("lat.queue_wait_ps")
	recordWait := func(w simtime.PS) {
		hWait.Record(int64(w))
		mWait.Record(int64(w))
	}

	// complete records one finished request and schedules the client's
	// next think/issue cycle.
	complete := func(c *client, decide, done simtime.PS) {
		latencies = append(latencies, done-decide)
		next := done + c.rng.rangePS(cfg.Workload.ThinkMin, cfg.Workload.ThinkMax)
		push(next, evReady, c.id, 0, nil)
	}

	// startJob moves a job into a slot of server si at instant t. A
	// scheduled stall at t pushes the start to the window's end; a
	// slowdown in effect then stretches the whole service time by its
	// factor (coarse: the factor at start governs the job, window edges
	// inside the service interval are not split).
	startJob := func(si int, j *job, t simtime.PS) {
		s := servers[si]
		s.busy++
		s.served++
		fin := t + j.exec
		if p := cfg.ServerFaults; p.Active() {
			start := t
			if until, ok := p.StallUntil(si, start); ok {
				start = until
			}
			fin = start + simtime.PS(float64(j.exec)*p.SlowFactor(si, start))
		}
		j.finish = fin
		s.running = append(s.running, j)
		push(j.finish, evFinish, j.client, si, j)
	}

	backhaul := netsim.Backhaul()

	// expire is when a client without the control plane gives up on a dead
	// server: not before its offload deadline runs out. The silent crash is
	// indistinguishable from a slow queue until then.
	expire := func(j *job, at simtime.PS) simtime.PS {
		if j.deadline > at {
			return j.deadline
		}
		return at
	}

	// bestUp is the migration target chooser: est-aware placement over the
	// surviving servers regardless of the dispatch policy, because moving a
	// victim is a runtime mechanism, not a routing preference. Returns -1
	// when no viable server remains.
	bestUp := func(at simtime.PS, remTm simtime.PS) int {
		best, bestTotal := -1, simtime.PS(0)
		for i, s := range servers {
			if s.down {
				continue
			}
			total := s.estWait(at) + s.execTime(remTm)
			if best < 0 || total < bestTotal {
				best, bestTotal = i, total
			}
		}
		return best
	}

	// relocate routes a victim job's remaining work (remTm, in mobile
	// time) to the best surviving server, arriving at instant at, or sends
	// the client down the local path when that is the better estimate. The
	// recovery decision is the migration analogue of the Equation-1 gate:
	// the victim is not forced remote — estimated completion at the best
	// survivor (arrival + queueing + execution + reply) races full local
	// re-execution starting at localAt, and the loser is dropped. With no
	// survivor at all, local wins by default. The target's reservation
	// mirrors a fresh dispatch, so slot accounting stays exact across
	// failures.
	relocate := func(j *job, remTm simtime.PS, at, localAt simtime.PS) bool {
		ti := bestUp(at, remTm)
		if ti >= 0 {
			t := servers[ti]
			remoteDone := at + t.estWait(at) + t.execTime(remTm) + j.down
			if remoteDone >= localAt+j.tm {
				ti = -1 // a loaded pool makes local re-execution the better recovery
			}
		}
		if ti < 0 {
			res.Fallbacks++
			complete(clients[j.client], j.decide, localAt+j.tm)
			return false
		}
		t := servers[ti]
		seq++
		nj := &job{client: j.client, tm: j.tm, mem: j.mem, exec: t.execTime(remTm),
			decide: j.decide, down: j.down, seq: seq, recovery: true}
		t.reserved += nj.exec
		push(at, evArrive, j.client, ti, nj)
		return true
	}

	// Schedule the server-fault timeline. Crash and drain are events;
	// slowdowns and stalls are consulted lazily when jobs start.
	if cfg.ServerFaults.Active() {
		for _, fe := range cfg.ServerFaults.Events {
			if fe.Server >= len(servers) {
				continue
			}
			switch fe.Kind {
			case faults.Crash:
				push(fe.Start, evCrash, 0, fe.Server, nil)
			case faults.Drain:
				push(fe.Start, evDrain, 0, fe.Server, nil)
			}
		}
	}

	for evs.Len() > 0 {
		ev := heap.Pop(&evs).(event)
		now = ev.t
		switch ev.kind {
		case evReady:
			c := clients[ev.ci]
			if c.remaining == 0 {
				break
			}
			c.remaining--
			res.Requests++
			tm := c.rng.rangePS(cfg.Workload.TmMin, cfg.Workload.TmMax)
			mem := c.rng.rangeI64(cfg.Workload.MemMin, cfg.Workload.MemMax)
			link := c.link.At(now)
			up := link.TransferTime(mem)
			down := link.TransferTime(mem)
			si, wait := disp.pick(servers, now, tm, up, down)
			if si < 0 {
				// The whole pool is down or draining: nothing to offload to.
				res.Fallbacks++
				cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KGate, Track: obs.TrackFleet,
					Name: "pool-down", A0: int64(tm), A1: mem})
				complete(c, now, now+tm)
				break
			}
			srv := servers[si]
			// The dynamic gate: Equation 1 against the picked server's
			// speed. Only the est-aware policy extends it with the live
			// queueing-delay signal (the contention-aware gate); the
			// naive policies keep the paper's load-blind gate, assuming
			// a dedicated server — which is exactly what overruns queues
			// and triggers admission sheds under heavy traffic.
			gateWait := simtime.PS(0)
			if cfg.Policy == EstAware {
				gateWait = wait
			}
			p := estimate.Params{
				R:            srv.spec.R,
				BandwidthBps: link.BandwidthBps,
				RTT:          2 * (link.Latency + link.PerMessage),
			}
			if !p.ProfitableQueued(tm, mem, gateWait) {
				res.Declines++
				cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KGate, Track: obs.TrackFleet,
					Name: "decline", A0: int64(tm), A1: mem, A2: link.BandwidthBps, A3: int64(wait)})
				complete(c, now, now+tm)
				break
			}
			res.Dispatched++
			cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KDispatch, Track: obs.TrackFleet,
				Name: string(cfg.Policy), A0: int64(c.id), A1: int64(si),
				A2: int64(len(srv.queue)), A3: int64(wait)})
			seq++
			j := &job{client: c.id, tm: tm, mem: mem, exec: srv.execTime(tm),
				decide: now, down: down, seq: seq,
				deadline: now + simtime.PS(deadlineSlack*float64(up+srv.execTime(tm)+down))}
			srv.reserved += j.exec
			push(now+up, evArrive, c.id, si, j)

		case evArrive:
			s := servers[ev.si]
			j := ev.j
			// The reservation materializes: the job is now visible in the
			// queue or a slot instead. This runs even when the server is
			// down — a reservation against a dead server is exactly the
			// slot-accounting leak the end-of-run invariant guards.
			s.reserved -= j.exec
			if s.reserved < 0 {
				s.reserved = 0
			}
			if s.down {
				// The request landed on a dead or draining server. With
				// migration support the fleet reroutes it to a survivor;
				// without, the client's deadline expires and it re-executes
				// locally.
				if cfg.Migrate && relocate(j, j.tm, now+detectDelay, now+detectDelay) {
					res.Retried++
					cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KRetry, Track: obs.TrackFleet,
						Name: "redispatch", A0: int64(j.client), A1: int64(ev.si)})
				} else if !cfg.Migrate {
					res.Fallbacks++
					complete(clients[j.client], j.decide, expire(j, now+detectDelay)+j.tm)
				}
				break
			}
			depth := len(s.queue)
			if depth > s.maxDepth {
				s.maxDepth = depth
			}
			// Admission control runs against the server's *actual* state
			// at arrival — decision-time estimates are already stale by
			// one transfer time, which is exactly how a thundering herd
			// overruns a queue bound.
			if !j.recovery &&
				((cfg.Admission.MaxQueue > 0 && depth >= cfg.Admission.MaxQueue && s.busy >= s.spec.Slots) ||
					(cfg.Admission.MaxWait > 0 && s.estWait(now) > cfg.Admission.MaxWait)) {
				res.Sheds++
				cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KShed, Track: obs.TrackFleet,
					A0: int64(j.client), A1: int64(ev.si), A2: int64(depth)})
				c := clients[j.client]
				notice := c.link.At(now).TransferTime(shedNoticeBytes)
				// Local fallback: the client hears the reject, then runs
				// the task itself.
				complete(c, j.decide, now+notice+j.tm)
				break
			}
			s.advance(now)
			if s.busy < s.spec.Slots {
				recordWait(0)
				startJob(ev.si, j, now)
			} else {
				j.enq = now
				s.queue = append(s.queue, j)
				if len(s.queue) > s.maxDepth {
					s.maxDepth = len(s.queue)
				}
			}

		case evFinish:
			s := servers[ev.si]
			j := ev.j
			if j.cancelled {
				// The server died mid-service; the slot and accounting were
				// released at the fault instant.
				break
			}
			s.advance(now)
			s.busy--
			s.dropRunning(j)
			res.Offloads++
			complete(clients[j.client], j.decide, now+j.down)
			if len(s.queue) > 0 && s.busy < s.spec.Slots {
				next := s.pop(cfg.Queue)
				wait := now - next.enq
				s.waitPS += wait
				recordWait(wait)
				cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KQueue, Track: obs.TrackFleet,
					A0: int64(next.client), A1: int64(ev.si), A2: int64(wait)})
				startJob(ev.si, next, now)
			}

		case evCrash:
			s := servers[ev.si]
			s.advance(now)
			s.down = true
			cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KServerFault, Track: obs.TrackFleet,
				Name: "crash", A0: int64(ev.si), A1: int64(len(s.running)), A2: int64(len(s.queue))})
			// Everything on the server is lost: running jobs mid-service and
			// queued input state alike. Slots and accounting release here;
			// the already-scheduled evFinish events fire as tombstoned no-ops.
			victims := append(append([]*job(nil), s.running...), s.queue...)
			for _, j := range s.running {
				j.cancelled = true
			}
			s.busy = 0
			s.running = nil
			s.queue = nil
			for _, j := range victims {
				// State died with the server, so recovery is a full re-send:
				// the health monitor flags the crash after detectDelay and the
				// client re-uploads its snapshot to the relocation target (or
				// falls back locally). Without the monitor the crash is silent
				// — the client burns its whole offload deadline before giving
				// up and re-executing locally.
				c := clients[j.client]
				reup := c.link.At(now + detectDelay).TransferTime(j.mem)
				if cfg.Migrate && relocate(j, j.tm, now+detectDelay+reup, now+detectDelay) {
					res.Retried++
					cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KRetry, Track: obs.TrackFleet,
						Name: "resend", A0: int64(j.client), A1: int64(ev.si)})
				} else if !cfg.Migrate {
					res.Fallbacks++
					complete(c, j.decide, expire(j, now+detectDelay)+j.tm)
				}
			}

		case evDrain:
			s := servers[ev.si]
			s.advance(now)
			s.down = true
			cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KServerFault, Track: obs.TrackFleet,
				Name: "drain", A0: int64(ev.si), A1: int64(len(s.running)), A2: int64(len(s.queue))})
			if !cfg.Migrate {
				// Running jobs finish in place (a drain announces shutdown,
				// it does not kill state), but the queue is abandoned: each
				// waiting client falls back locally.
				for _, j := range s.queue {
					res.Fallbacks++
					complete(clients[j.client], j.decide, now+detectDelay+j.tm)
				}
				s.queue = nil
				break
			}
			// Live migration: running jobs checkpoint and ship their dirty
			// state over the backhaul, resuming mid-task on the target —
			// only the *remaining* mobile-time travels. Queued jobs forward
			// whole (they had not started) without a client round trip.
			running := append([]*job(nil), s.running...)
			for _, j := range s.running {
				j.cancelled = true
			}
			s.busy = 0
			s.running = nil
			for _, j := range running {
				remTm := simtime.PS(0)
				if j.finish > now {
					remTm = simtime.PS(float64(j.finish-now) * s.spec.R)
				}
				ship := backhaul.TransferTime(j.mem) + backhaul.Latency + backhaul.PerMessage
				if relocate(j, remTm, now+ship, now+detectDelay) {
					res.Migrations++
					cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KMigrateShip, Track: obs.TrackFleet,
						A0: int64(j.client), A1: int64(ev.si), A2: j.mem, A3: int64(ship)})
				}
			}
			queued := s.queue
			s.queue = nil
			for _, j := range queued {
				ship := backhaul.TransferTime(j.mem) + backhaul.Latency + backhaul.PerMessage
				if relocate(j, j.tm, now+ship, now+detectDelay) {
					res.Retried++
					cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KRetry, Track: obs.TrackFleet,
						Name: "forward", A0: int64(j.client), A1: int64(ev.si)})
				}
			}
		}
	}

	for i, s := range servers {
		s.advance(now)
		// Slot-accounting invariants: every reservation must have
		// materialized or been released, and every occupied slot drained —
		// including on servers that died mid-service.
		if s.reserved != 0 {
			return nil, fmt.Errorf("fleet: server %d leaked %v of reservations at end of run", i, s.reserved)
		}
		if s.busy != 0 {
			return nil, fmt.Errorf("fleet: server %d ended with %d occupied slots", i, s.busy)
		}
	}
	if got := res.Offloads + res.Declines + res.Sheds + res.Fallbacks; got != res.Requests {
		return nil, fmt.Errorf("fleet: request accounting broken: %d completed of %d issued", got, res.Requests)
	}
	res.QueueWait = hWait.Snapshot()
	res.finish(latencies, servers, now)
	res.publish(cfg.Metrics, servers)
	return res, nil
}
