package fleet

import (
	"fmt"

	"repro/internal/simtime"
)

// Adaptive configures the admission-control feedback loop. When Enabled,
// the static Admission bounds become the controller's starting point and
// every Period of simulated time the controller re-tunes three knobs
// inside the configured ranges: the queue-depth bound, the estimated-wait
// bound, and the est-aware gate's queueing-signal margin. This is the
// fleet analogue of the SmartNIC simulator's per-round threshold
// adjustment: observe what the last round let through and what it cost,
// then move the threshold instead of pinning it.
type Adaptive struct {
	Enabled bool
	// Period is the controller's adjustment interval on the simulated
	// clock.
	Period simtime.PS
	// MinQueue/MaxQueue bound the adaptive queue-depth limit. MinQueue
	// must be >= 1: the controller may never cross into 0, which the
	// Admission contract reserves for "unbounded".
	MinQueue, MaxQueue int
	// MinWait/MaxWait bound the adaptive estimated-wait limit.
	MinWait, MaxWait simtime.PS
	// MinMargin/MaxMargin bound the est-aware gate margin (1 charges the
	// raw load signal; larger values distrust it).
	MinMargin, MaxMargin float64
}

// DefaultAdaptive is the standard controller tuning: quarter-second
// reaction time, bounds wide enough to span everything the static
// defaults would pin, margin free to grow eightfold under pressure but
// never below neutral.
func DefaultAdaptive() Adaptive {
	return Adaptive{
		Enabled:   true,
		Period:    250 * simtime.Millisecond,
		MinQueue:  2,
		MaxQueue:  64,
		MinWait:   250 * simtime.Millisecond,
		MaxWait:   8 * simtime.Second,
		MinMargin: 1,
		MaxMargin: 8,
	}
}

func (a *Adaptive) validate() error {
	if !a.Enabled {
		return nil
	}
	if a.Period <= 0 {
		return fmt.Errorf("fleet: adaptive admission needs a positive period, got %v", a.Period)
	}
	if a.MinQueue < 1 || a.MaxQueue < a.MinQueue {
		return fmt.Errorf("fleet: adaptive queue bounds [%d, %d] invalid (min >= 1, max >= min)", a.MinQueue, a.MaxQueue)
	}
	if a.MinWait < 1 || a.MaxWait < a.MinWait {
		return fmt.Errorf("fleet: adaptive wait bounds [%v, %v] invalid", a.MinWait, a.MaxWait)
	}
	if a.MinMargin <= 0 || a.MaxMargin < a.MinMargin {
		return fmt.Errorf("fleet: adaptive margin bounds [%g, %g] invalid", a.MinMargin, a.MaxMargin)
	}
	return nil
}

// controller runs the Adaptive feedback loop. It lives on the machine, so
// both engines step it from the same handlers in the same global event
// order: the control trajectory is part of the deterministic schedule.
type controller struct {
	cfg  Adaptive
	next simtime.PS // next period boundary

	// Live knob values, mirrored into machine.adm / machine.margin after
	// every step.
	queue  int
	wait   simtime.PS
	margin float64

	// Period counters.
	offloads int
	sheds    int
	misses   int
}

func newController(a Adaptive, seed Admission) *controller {
	c := &controller{cfg: a, next: a.Period, queue: seed.MaxQueue, wait: seed.MaxWait, margin: 1}
	if c.queue == 0 {
		c.queue = a.MaxQueue
	}
	if c.wait == 0 {
		c.wait = a.MaxWait
	}
	c.clampKnobs()
	return c
}

func (c *controller) noteShed() {
	if c != nil {
		c.sheds++
	}
}

func (c *controller) noteFinish(missed bool) {
	if c != nil {
		c.offloads++
		if missed {
			c.misses++
		}
	}
}

// step applies one control decision from the last period's counters and
// the pool's instantaneous occupancy. The shape is AIMD with a
// multiplicative margin: pressure — sheds at arrival or deadline overruns
// at completion — means admission and the gate let in more than the pool
// could serve in time, so both bounds cut by a quarter and the margin
// grows 1.5x (requests start declining up front, for free, instead of
// wasting an upload to be shed or finishing late). A clean period with
// slot headroom relaxes the bounds additively and decays the margin, so a
// trough recovers the throughput a pinned-conservative static bound would
// forfeit.
func (c *controller) step(busy, slots int) {
	pressure := c.sheds + c.misses
	switch {
	case pressure > 0:
		c.wait -= c.wait / 4
		c.queue -= (c.queue + 3) / 4
		c.margin *= 1.5
	case busy*4 < slots*3:
		c.wait += c.wait / 8
		c.queue++
		c.margin *= 0.9
	}
	c.clampKnobs()
	c.offloads, c.sheds, c.misses = 0, 0, 0
}

func (c *controller) clampKnobs() {
	if c.queue < c.cfg.MinQueue {
		c.queue = c.cfg.MinQueue
	}
	if c.queue > c.cfg.MaxQueue {
		c.queue = c.cfg.MaxQueue
	}
	if c.wait < c.cfg.MinWait {
		c.wait = c.cfg.MinWait
	}
	if c.wait > c.cfg.MaxWait {
		c.wait = c.cfg.MaxWait
	}
	if c.margin < c.cfg.MinMargin {
		c.margin = c.cfg.MinMargin
	}
	if c.margin > c.cfg.MaxMargin {
		c.margin = c.cfg.MaxMargin
	}
}
