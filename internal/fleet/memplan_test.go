package fleet

import (
	"testing"

	"repro/internal/mem"
)

func planForTest(t *testing.T) MemoryPlan {
	t.Helper()
	src := mem.New()
	// 16 pages of distinct nonzero data + 48 zero pages: a 64-page image
	// that dedups to 17 unique pages (16 + the canonical zero page).
	for pn := uint32(0); pn < 16; pn++ {
		if err := src.WriteUint(mem.PageAddr(pn), 4, uint64(pn+1)); err != nil {
			t.Fatal(err)
		}
	}
	for pn := uint32(16); pn < 64; pn++ {
		if _, err := src.Page(pn); err != nil {
			t.Fatal(err)
		}
	}
	return PlanFromImage(mem.Snapshot(src), 2*mem.PageSize)
}

func TestMemoryPlanProjections(t *testing.T) {
	p := planForTest(t)
	if p.PrivateCopyBytes != 64*mem.PageSize {
		t.Errorf("PrivateCopyBytes = %d, want %d", p.PrivateCopyBytes, 64*mem.PageSize)
	}
	if p.SharedImageBytes != 17*mem.PageSize {
		t.Errorf("SharedImageBytes = %d, want %d", p.SharedImageBytes, 17*mem.PageSize)
	}
	if got := p.SharedBytesAt(0); got != 0 {
		t.Errorf("SharedBytesAt(0) = %d, want 0", got)
	}
	if got, want := p.SharedBytesAt(100), 17*mem.PageSize+100*2*mem.PageSize; got != want {
		t.Errorf("SharedBytesAt(100) = %d, want %d", got, want)
	}
	if got, want := p.PrivateBytesAt(100), 100*64*mem.PageSize; got != want {
		t.Errorf("PrivateBytesAt(100) = %d, want %d", got, want)
	}
	// Savings grow with n toward PrivateCopy/PerSession = 32x.
	if s10, s1000 := p.Savings(10), p.Savings(1000); s1000 <= s10 || s1000 > 32 {
		t.Errorf("Savings not monotone toward 32x: n=10 %.1f, n=1000 %.1f", s10, s1000)
	}
}

func TestMemoryPlanMaxSessions(t *testing.T) {
	p := planForTest(t)
	if got := p.MaxSessions(p.SharedImageBytes - 1); got != 0 {
		t.Errorf("budget below image size should fit 0 sessions, got %d", got)
	}
	budget := p.SharedImageBytes + 10*p.PerSessionBytes
	if got := p.MaxSessions(budget); got != 10 {
		t.Errorf("MaxSessions = %d, want 10", got)
	}
	p.PerSessionBytes = 0
	if got := p.MaxSessions(budget); got != -1 {
		t.Errorf("zero per-session bytes should be unbounded (-1), got %d", got)
	}
}
