package fleet

import (
	"sync"

	"repro/internal/simtime"
)

// Pool is the live capacity view of a server fleet that real offrt
// sessions bind against (offrt.WithFleet): instead of assuming a
// dedicated peer, a session's dynamic gate asks the pool how long an
// offload dispatched now would queue. Slot reservations are explicit
// (Occupy/estimated completion instants), so tests and harnesses can
// model background fleet load without simulating the other clients.
//
// Pool is safe for concurrent use: sessions consult it from their own
// goroutines.
type Pool struct {
	mu    sync.Mutex
	specs []ServerSpec
	// freeAt[i][k] is when slot k of server i finishes its current work;
	// instants in the past mean the slot is idle.
	freeAt [][]simtime.PS
}

// NewPool builds a pool over the given server specs.
func NewPool(specs ...ServerSpec) *Pool {
	p := &Pool{specs: specs}
	for _, s := range specs {
		p.freeAt = append(p.freeAt, make([]simtime.PS, s.Slots))
	}
	return p
}

// Occupy reserves the earliest-free slot of server i until the given
// instant (background load, or a dispatched offload's estimated
// completion). Reservations on a busy server stack: the new work starts
// when the slot frees.
func (p *Pool) Occupy(i int, dur simtime.PS, now simtime.PS) {
	p.mu.Lock()
	defer p.mu.Unlock()
	slots := p.freeAt[i]
	best := 0
	for k := 1; k < len(slots); k++ {
		if slots[k] < slots[best] {
			best = k
		}
	}
	start := simtime.Max(now, slots[best])
	slots[best] = start + dur
}

// EstQueueDelay implements offrt.LoadSignal: the queueing delay an
// offload dispatched now would face on the *best* server — zero while any
// slot anywhere is idle, and the earliest slot-free horizon otherwise.
// The exec argument is accepted for interface symmetry with richer
// dispatchers (a per-server speed-aware estimate would use it).
func (p *Pool) EstQueueDelay(now simtime.PS, exec simtime.PS) simtime.PS {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := simtime.PS(-1)
	for _, slots := range p.freeAt {
		for _, free := range slots {
			wait := free - now
			if wait < 0 {
				wait = 0
			}
			if best < 0 || wait < best {
				best = wait
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
