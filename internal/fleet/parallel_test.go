package fleet

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// marshalResult canonicalizes a run for byte-level comparison.
func marshalResult(t *testing.T, cfg Config) []byte {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardCountInvariance is the engine-equivalence regression: the
// sharded engine must produce byte-identical Results to the sequential
// reference for every shard count, across policies, under faults with
// migration, and with the adaptive controller riding a diurnal curve.
// This is what licenses using Shards as a pure wall-clock knob.
func TestShardCountInvariance(t *testing.T) {
	variants := map[string]func(Config) Config{
		"plain": func(c Config) Config { return c },
		"faults": func(c Config) Config {
			c.ServerFaults = &faults.ServerPlan{Events: []faults.ServerEvent{
				{Kind: faults.Crash, Server: 0, Start: 800 * simtime.Millisecond},
				{Kind: faults.Drain, Server: 2, Start: 1200 * simtime.Millisecond},
			}}
			c.Migrate = true
			return c
		},
		"adaptive": func(c Config) Config {
			c.Adaptive = DefaultAdaptive()
			c.Workload.DiurnalAmp = 0.6
			c.Workload.DiurnalPeriod = 2 * simtime.Second
			return c
		},
	}
	for name, mutate := range variants {
		for _, pol := range Policies() {
			cfg := mutate(DefaultConfig(64, 4, pol))
			cfg.Seed = 9
			ref := marshalResult(t, cfg)
			for _, shards := range []int{1, 2, 3, 4, 8, 64} {
				c := cfg
				c.Shards = shards
				if got := marshalResult(t, c); string(got) != string(ref) {
					t.Errorf("%s/%s: shards=%d diverged from sequential", name, pol, shards)
				}
			}
		}
	}

	// Tiered topology: 3-way placement, cross-tier promotion/demotion and
	// the per-tier histograms must survive sharding bit for bit. The cell
	// is loaded enough that both migration directions actually fire, so
	// the invariance covers the new event paths rather than idling past
	// them (tiers is EstAware-only, hence outside the policy loop above).
	// Tracing and tail sampling stay on so the invariance also covers the
	// retained exemplar set — its span segments ride in the Result JSON.
	tcfg := tieredBenchConfig(96, tiers.ThreeWay)
	tcfg.Seed = 9
	tcfg.Exemplars = 8
	tcfg.Tracer = obs.NewTracer(1 << 17)
	tref, err := Run(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if tref.Promotions == 0 || tref.Demotions == 0 {
		t.Fatalf("tiered invariance cell idle (%d promotions, %d demotions): pick a hotter cell",
			tref.Promotions, tref.Demotions)
	}
	if len(tref.Exemplars) == 0 || tref.TraceDropped != 0 {
		t.Fatalf("tiered invariance cell retained %d exemplars with %d drops: sampling not exercised",
			len(tref.Exemplars), tref.TraceDropped)
	}
	refJSON, err := json.Marshal(tref)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		c := tcfg
		c.Shards = shards
		c.Tracer = obs.NewTracer(1 << 17)
		if got := marshalResult(t, c); string(got) != string(refJSON) {
			t.Errorf("tiers: shards=%d diverged from sequential", shards)
		}
	}
}

// TestShardsExceedClients: more shards than clients must clamp, not break.
func TestShardsExceedClients(t *testing.T) {
	cfg := DefaultConfig(3, 2, RoundRobin)
	ref := marshalResult(t, cfg)
	cfg.Shards = 16
	if got := marshalResult(t, cfg); string(got) != string(ref) {
		t.Error("shards > clients diverged from sequential")
	}
}

// TestScaleSmoke is the make scalesmoke gate: a 10k-client run through the
// sharded engine must match the sequential reference byte for byte. Gated
// behind FLEET_SCALESMOKE because it is ~200x the size of the unit cells.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("FLEET_SCALESMOKE") == "" {
		t.Skip("set FLEET_SCALESMOKE=1 to run the 10k-client shard-invariance smoke")
	}
	cfg := DefaultConfig(10_000, 8, EstAware)
	cfg.RequestsPerClient = 3
	ref := marshalResult(t, cfg)
	cfg.Shards = 4
	if got := marshalResult(t, cfg); string(got) != string(ref) {
		t.Error("10k-client sharded run diverged from sequential")
	}
}
