package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// Stats is the raw, mergeable tally one engine lane accumulates while a
// run is in flight: outcome counters, the latency population, and the
// end-to-end latency histogram. The sequential engine keeps a single
// Stats; the sharded engine gives each shard (and the coordinator) its
// own and merges them at the end. Merging is exact — counters add, the
// latency population concatenates (every aggregate in Result is computed
// after a sort, so order never matters), and the histogram merges
// bucket-wise — so the merged Stats is indistinguishable from one that
// observed every completion itself.
type Stats struct {
	// Client-side outcome counters.
	Requests  int
	Offloads  int
	Declines  int
	Sheds     int
	Fallbacks int
	// DeadlineMisses counts offloads whose reply landed after the
	// dispatch-time deadline (local-path completions carry no deadline).
	DeadlineMisses int

	// Per-tier completion counters (tiered runs only; a completed
	// request counts on the tier it finished on).
	EdgeOffloads  int
	CloudOffloads int

	// Server-side counters.
	Dispatched int
	Migrations int
	Retried    int
	// Cross-tier moves (tiered runs only): Promotions pulled a running
	// cloud job back to a freed edge slot, Demotions forwarded a
	// saturated-edge arrival down to the cloud.
	Promotions int
	Demotions  int

	// Events counts state-machine transitions (every processed event,
	// decision intent, and delivered completion) — the engine-invariant
	// work measure the scale benchmarks report as events/sec.
	Events int64

	// Latencies is the end-to-end latency population (decision to result
	// in hand), one entry per completed request.
	Latencies []simtime.PS
	// E2E is the same population as a mergeable histogram.
	E2E *obs.Histogram
}

// NewStats returns an empty tally.
func NewStats() *Stats {
	return &Stats{E2E: obs.NewHistogram()}
}

// Merge folds o into s. Safe when o is nil.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.Requests += o.Requests
	s.Offloads += o.Offloads
	s.Declines += o.Declines
	s.Sheds += o.Sheds
	s.Fallbacks += o.Fallbacks
	s.DeadlineMisses += o.DeadlineMisses
	s.EdgeOffloads += o.EdgeOffloads
	s.CloudOffloads += o.CloudOffloads
	s.Dispatched += o.Dispatched
	s.Migrations += o.Migrations
	s.Retried += o.Retried
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.Events += o.Events
	s.Latencies = append(s.Latencies, o.Latencies...)
	s.E2E.Merge(o.E2E)
}

// record tallies one completion message.
func (s *Stats) record(msg doneMsg) {
	lat := msg.done - msg.decide
	s.Latencies = append(s.Latencies, lat)
	s.E2E.Record(int64(lat))
	switch msg.kind {
	case outOffload:
		s.Offloads++
		switch msg.tier {
		case tierEdge:
			s.EdgeOffloads++
		case tierCloud:
			s.CloudOffloads++
		}
	case outDecline:
		s.Declines++
	case outShed:
		s.Sheds++
	default:
		s.Fallbacks++
	}
	if msg.missed {
		s.DeadlineMisses++
	}
}

// Result is the statistics of one fleet run. All fields are plain values
// derived deterministically from the Config, so two runs with the same
// seed marshal to byte-identical JSON.
type Result struct {
	Policy  string `json:"policy"`
	Queue   string `json:"queue"`
	Clients int    `json:"clients"`
	Servers int    `json:"servers"`
	Seed    uint64 `json:"seed"`

	// Requests = Offloads + Declines + Sheds + Fallbacks: every request
	// completes, remotely or down one of the local paths.
	Requests   int `json:"requests"`
	Offloads   int `json:"offloads"`   // completed remotely
	Dispatched int `json:"dispatched"` // sent toward a server (Offloads + Sheds)
	Declines   int `json:"declines"`   // contention-aware gate chose local
	Sheds      int `json:"sheds"`      // admission control forced local fallback
	Fallbacks  int `json:"fallbacks"`  // server fault with no viable recovery: ran locally

	// Fault-recovery traffic (requests here still complete remotely, so
	// they are already inside Offloads).
	Migrations int `json:"migrations"` // running jobs checkpoint-migrated off a drain
	Retried    int `json:"retried"`    // crash victims re-sent / queued jobs forwarded

	// Tiered-topology fields, populated only when Config.Tiers is set
	// (omitted from flat-fleet JSON so the committed BENCH_fleet.json
	// stays byte-identical).
	TierMode      string `json:"tier_mode,omitempty"`
	EdgeServers   int    `json:"edge_servers,omitempty"`
	CloudServers  int    `json:"cloud_servers,omitempty"`
	EdgeOffloads  int    `json:"edge_offloads,omitempty"`  // completed on the edge tier
	CloudOffloads int    `json:"cloud_offloads,omitempty"` // completed on the cloud tier
	Promotions    int    `json:"promotions,omitempty"`     // running cloud jobs pulled to a freed edge slot
	Demotions     int    `json:"demotions,omitempty"`      // saturated-edge arrivals forwarded to the cloud
	// Per-tier queue-wait distributions (ps), the tier split of QueueWait.
	QueueWaitEdge  *obs.HistSnapshot `json:"queue_wait_edge_hist,omitempty"`
	QueueWaitCloud *obs.HistSnapshot `json:"queue_wait_cloud_hist,omitempty"`

	// DeadlineMisses counts offloads whose reply landed after the
	// dispatch-time deadline — completions the client had already given
	// up on. The adaptive admission controller treats these as overruns.
	DeadlineMisses int `json:"deadline_misses"`
	// Events is the total state-machine transition count, identical
	// across engines and shard counts; events per wall-clock second is
	// the scale benchmark's throughput metric.
	Events int64 `json:"events"`

	// LocalRate is the fraction of requests that ran on the client
	// (gate declines plus admission sheds).
	LocalRate float64 `json:"local_rate"`
	// ThroughputRPS is completed requests per simulated second.
	ThroughputRPS float64 `json:"throughput_rps"`

	// End-to-end request latency (decision to result in hand), ms.
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	GeomeanMs float64 `json:"geomean_ms"`

	// MakespanMs is when the last request completed.
	MakespanMs float64 `json:"makespan_ms"`
	// ServerUtilPct is per-server slot occupancy over the makespan.
	ServerUtilPct []float64 `json:"server_util_pct"`
	// MaxQueueDepth is the deepest run queue observed anywhere.
	MaxQueueDepth int `json:"max_queue_depth"`
	// AvgQueueWaitMs averages the queueing delay over jobs that waited.
	AvgQueueWaitMs float64 `json:"avg_queue_wait_ms"`
	// QueueWait is the full queue-wait distribution (ps): every dispatched
	// job records, jobs that start immediately record 0, so the quantiles
	// reflect what an arriving request actually experiences.
	QueueWait obs.HistSnapshot `json:"queue_wait_hist"`
	// E2E is the end-to-end latency distribution (ps) over every
	// completed request, streamed through per-shard histograms.
	E2E obs.HistSnapshot `json:"e2e_hist"`

	// TraceDropped surfaces the tracer ring's overwrite count, so a bench
	// JSON produced from a truncated trace says so (omitted when the trace
	// is complete or tracing is off — flat-fleet goldens stay byte-identical).
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// Exemplars are the tail sampler's retained jobs (Config.Exemplars > 0
	// only): per-job critical-path decompositions whose segments sum exactly
	// to the job's end-to-end latency.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// percentile returns the q-quantile (0..1) of sorted latencies by nearest
// rank.
func percentile(sorted []simtime.PS, q float64) simtime.PS {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// finish derives the aggregate fields from the raw latency population and
// final server states.
func (r *Result) finish(latencies []simtime.PS, servers []*server, makespan simtime.PS) {
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	r.P50Ms = percentile(latencies, 0.50).Millis()
	r.P99Ms = percentile(latencies, 0.99).Millis()
	var sum simtime.PS
	logSum := 0.0
	for _, l := range latencies {
		sum += l
		logSum += math.Log(l.Millis())
	}
	if n := len(latencies); n > 0 {
		r.MeanMs = (sum / simtime.PS(n)).Millis()
		r.GeomeanMs = math.Exp(logSum / float64(n))
	}
	if r.Requests > 0 {
		r.LocalRate = float64(r.Declines+r.Sheds+r.Fallbacks) / float64(r.Requests)
	}
	if makespan > 0 {
		r.ThroughputRPS = float64(len(latencies)) / makespan.Seconds()
	}
	r.MakespanMs = makespan.Millis()
	var waited simtime.PS
	queued := 0
	for _, s := range servers {
		cap := simtime.PS(int64(s.spec.Slots) * int64(makespan))
		util := 0.0
		if cap > 0 {
			util = 100 * float64(s.busyPS) / float64(cap)
		}
		r.ServerUtilPct = append(r.ServerUtilPct, math.Round(util*100)/100)
		if s.maxDepth > r.MaxQueueDepth {
			r.MaxQueueDepth = s.maxDepth
		}
		waited += s.waitPS
		queued += s.served
	}
	if queued > 0 {
		r.AvgQueueWaitMs = (waited / simtime.PS(queued)).Millis()
	}
}

// publish exposes the run's gauges on a metrics registry (no-op on nil):
// shed rate, queue depth and per-server utilization, the fleet analogue of
// the session-level counters offrt publishes at Shutdown.
func (r *Result) publish(m *obs.Metrics, servers []*server) {
	if m == nil {
		return
	}
	m.Counter("fleet.requests").Set(int64(r.Requests))
	m.Counter("fleet.offloads").Set(int64(r.Offloads))
	m.Counter("fleet.dispatched").Set(int64(r.Dispatched))
	m.Counter("fleet.declines").Set(int64(r.Declines))
	m.Counter("fleet.sheds").Set(int64(r.Sheds))
	m.Counter("fleet.fallbacks").Set(int64(r.Fallbacks))
	m.Counter("fleet.migrations").Set(int64(r.Migrations))
	m.Counter("fleet.retried").Set(int64(r.Retried))
	if r.TierMode != "" {
		m.Counter("fleet.tier.edge_offloads").Set(int64(r.EdgeOffloads))
		m.Counter("fleet.tier.cloud_offloads").Set(int64(r.CloudOffloads))
		m.Counter("fleet.tier.promotions").Set(int64(r.Promotions))
		m.Counter("fleet.tier.demotions").Set(int64(r.Demotions))
	}
	m.Counter("fleet.shed_rate_milli").Set(int64(1000 * float64(r.Sheds) / float64(r.Requests)))
	m.Counter("fleet.queue_depth.max").Set(int64(r.MaxQueueDepth))
	m.Counter("fleet.queue_wait_ms.avg").Set(int64(r.AvgQueueWaitMs))
	for i, s := range servers {
		m.Counter(fmt.Sprintf("fleet.server.%d.util_milli", i)).Set(int64(10 * r.ServerUtilPct[i]))
		m.Counter(fmt.Sprintf("fleet.server.%d.served", i)).Set(int64(s.served))
	}
}
