package fleet

import (
	"testing"

	"repro/internal/simtime"
)

// TestControllerStep is the table-driven contract of one control decision:
// what the knobs do under pressure, under a clean period with headroom,
// and in the dead zone between.
func TestControllerStep(t *testing.T) {
	base := Adaptive{
		Enabled: true, Period: 250 * simtime.Millisecond,
		MinQueue: 1, MaxQueue: 100,
		MinWait: simtime.Millisecond, MaxWait: 100 * simtime.Second,
		MinMargin: 0.5, MaxMargin: 16,
	}
	cases := []struct {
		name          string
		sheds, misses int
		busy, slots   int
		queue0        int
		wait0         simtime.PS
		margin0       float64
		wantQueue     int
		wantWait      simtime.PS
		wantMargin    float64
	}{
		{name: "sheds cut bounds and grow margin",
			sheds: 3, busy: 8, slots: 8,
			queue0: 16, wait0: 4 * simtime.Second, margin0: 1,
			wantQueue: 12, wantWait: 3 * simtime.Second, wantMargin: 1.5},
		{name: "misses alone are pressure",
			misses: 1, busy: 0, slots: 8,
			queue0: 16, wait0: 4 * simtime.Second, margin0: 2,
			wantQueue: 12, wantWait: 3 * simtime.Second, wantMargin: 3},
		{name: "clean with headroom relaxes",
			busy: 2, slots: 8,
			queue0: 16, wait0: 4 * simtime.Second, margin0: 1.5,
			wantQueue: 17, wantWait: 4500 * simtime.Millisecond, wantMargin: 1.35},
		{name: "clean but saturated holds",
			busy: 8, slots: 8,
			queue0: 16, wait0: 4 * simtime.Second, margin0: 2,
			wantQueue: 16, wantWait: 4 * simtime.Second, wantMargin: 2},
		{name: "pressure clamps at the floor",
			sheds: 1, busy: 8, slots: 8,
			queue0: 1, wait0: simtime.Millisecond, margin0: 16,
			wantQueue: 1, wantWait: simtime.Millisecond, wantMargin: 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &controller{cfg: base, queue: tc.queue0, wait: tc.wait0, margin: tc.margin0}
			c.sheds, c.misses = tc.sheds, tc.misses
			c.step(tc.busy, tc.slots)
			if c.queue != tc.wantQueue {
				t.Errorf("queue: got %d, want %d", c.queue, tc.wantQueue)
			}
			if c.wait != tc.wantWait {
				t.Errorf("wait: got %v, want %v", c.wait, tc.wantWait)
			}
			if c.margin != tc.wantMargin {
				t.Errorf("margin: got %g, want %g", c.margin, tc.wantMargin)
			}
			if c.sheds != 0 || c.misses != 0 || c.offloads != 0 {
				t.Error("step did not reset the period counters")
			}
		})
	}
}

// TestControllerBoundsProperty drives the controller with random counter
// sequences and occupancy and checks the knobs never escape their
// configured ranges — in particular the queue bound never reaches 0, which
// the Admission contract reserves for "unbounded".
func TestControllerBoundsProperty(t *testing.T) {
	r := entityStream(99, 0)
	for trial := 0; trial < 200; trial++ {
		a := Adaptive{
			Enabled: true, Period: 250 * simtime.Millisecond,
			MinQueue: 1 + r.intn(4), MaxQueue: 8 + r.intn(64),
			MinWait:   simtime.PS(1 + r.intn(int(simtime.Second))),
			MaxMargin: 1 + 8*r.float(),
		}
		a.MaxWait = a.MinWait * simtime.PS(1+r.intn(20))
		a.MinMargin = a.MaxMargin * r.float()
		if a.MinMargin == 0 {
			a.MinMargin = 0.1
		}
		if err := a.validate(); err != nil {
			t.Fatalf("trial %d generated an invalid config: %v", trial, err)
		}
		c := newController(a, Admission{MaxQueue: r.intn(100), MaxWait: simtime.PS(r.intn(int(10 * simtime.Second)))})
		for step := 0; step < 50; step++ {
			c.sheds = r.intn(3)
			c.misses = r.intn(3)
			c.offloads = r.intn(10)
			slots := 1 + r.intn(32)
			c.step(r.intn(slots+1), slots)
			if c.queue < a.MinQueue || c.queue > a.MaxQueue {
				t.Fatalf("trial %d step %d: queue %d escaped [%d, %d]", trial, step, c.queue, a.MinQueue, a.MaxQueue)
			}
			if c.wait < a.MinWait || c.wait > a.MaxWait {
				t.Fatalf("trial %d step %d: wait %v escaped [%v, %v]", trial, step, c.wait, a.MinWait, a.MaxWait)
			}
			if c.margin < a.MinMargin || c.margin > a.MaxMargin {
				t.Fatalf("trial %d step %d: margin %g escaped [%g, %g]", trial, step, c.margin, a.MinMargin, a.MaxMargin)
			}
		}
	}
}

// TestAdaptiveValidate rejects malformed controller configs.
func TestAdaptiveValidate(t *testing.T) {
	ok := DefaultAdaptive()
	if err := ok.validate(); err != nil {
		t.Fatalf("default adaptive config invalid: %v", err)
	}
	bad := []Adaptive{
		{Enabled: true}, // zero period
		func(a Adaptive) Adaptive { a.MinQueue = 0; return a }(DefaultAdaptive()),  // queue bound may reach "unbounded"
		func(a Adaptive) Adaptive { a.MaxQueue = 1; return a }(DefaultAdaptive()),  // max < min
		func(a Adaptive) Adaptive { a.MinWait = 0; return a }(DefaultAdaptive()),   // zero wait floor
		func(a Adaptive) Adaptive { a.MinMargin = 0; return a }(DefaultAdaptive()), // zero margin floor
		func(a Adaptive) Adaptive { a.MaxMargin = 0.5; return a }(DefaultAdaptive()),
	}
	for i, a := range bad {
		if err := a.validate(); err == nil {
			t.Errorf("case %d: invalid config %+v passed validation", i, a)
		}
	}
	off := Adaptive{} // disabled: everything else may be zero
	if err := off.validate(); err != nil {
		t.Errorf("disabled adaptive config rejected: %v", err)
	}
}

// TestAdaptiveBeatsStaticOnDiurnal is the controller's reason to exist: on
// a workload that swings around the static bound's sweet spot, per-period
// adaptation must strictly reduce the pain metrics (admission sheds plus
// deadline misses) without giving up throughput.
func TestAdaptiveBeatsStaticOnDiurnal(t *testing.T) {
	run := func(adaptive bool, seed uint64) *Result {
		cfg := DefaultConfig(256, 4, EstAware)
		cfg.Seed = seed
		cfg.RequestsPerClient = 20
		cfg.Workload.DiurnalAmp = 0.8
		cfg.Workload.DiurnalPeriod = 4 * simtime.Second
		if adaptive {
			cfg.Adaptive = DefaultAdaptive()
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("adaptive=%v seed=%d: %v", adaptive, seed, err)
		}
		return res
	}
	for seed := uint64(1); seed <= 3; seed++ {
		st, ad := run(false, seed), run(true, seed)
		if st.Sheds+st.DeadlineMisses == 0 {
			t.Fatalf("seed=%d: static bounds felt no pressure; the cell is vacuous", seed)
		}
		if got, want := ad.Sheds+ad.DeadlineMisses, st.Sheds+st.DeadlineMisses; got >= want {
			t.Errorf("seed=%d: adaptive pain %d (sheds+misses) not below static %d", seed, got, want)
		}
		if ad.ThroughputRPS < 0.95*st.ThroughputRPS {
			t.Errorf("seed=%d: adaptive throughput %.1f rps gave up more than 5%% vs static %.1f",
				seed, ad.ThroughputRPS, st.ThroughputRPS)
		}
	}
}
