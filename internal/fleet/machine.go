package fleet

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// job is one offload request in flight through the fleet.
type job struct {
	// id is the logical JobID: fixed when the client issues the request
	// and inherited by every continuation a retry, demotion, promotion or
	// migration creates, so one id names the whole causal chain.
	id int64
	// rec is the job's span record when the tail sampler is on (nil
	// otherwise); continuations share it.
	rec *jobRec
	// pend labels the in-flight transit interval the next arrival closes
	// (uplink for a dispatch, wan.ship for a cross-tier move, ...).
	pend   uint8
	client int32
	tm     simtime.PS // mobile execution time (Equation 1's Tm)
	mem    int64      // memory footprint (Equation 1's M)
	exec   simtime.PS // execution time at the chosen server
	decide simtime.PS // when the client decided to offload
	enq    simtime.PS // when the request entered the run queue
	finish simtime.PS // when the server will complete it (running jobs)
	down   simtime.PS // reply transfer time over the client's link
	seq    int64      // FIFO tie-break (dispatch order)
	// deadline is the client's patience for the whole offload, fixed at
	// dispatch like offrt's offloadDeadline: slack times the predicted
	// transfer + execution + reply. Without the migration control plane
	// this expiry is the client's only way to learn its server died.
	deadline simtime.PS
	// cancelled tombstones a job whose server died mid-service: its
	// already-scheduled evFinish must fire as a no-op, because its slot and
	// accounting were released at the fault instant.
	cancelled bool
	// recovery marks a job re-placed after a server fault. Recovery
	// traffic is control-plane placement against a live reservation — it
	// already raced the local-fallback estimate at relocation time — so
	// the client-facing admission bound does not shed it a second time.
	recovery bool
	// tier is the tier the job is placed on (tierEdge/tierCloud; 0 in a
	// flat fleet). A cross-tier move restamps it.
	tier uint8
	// adown is the access-link-only reply time, kept alongside down so a
	// cross-tier move can recompute the reply leg: an edge job replies
	// over adown alone, a cloud job over adown plus the WAN leg.
	adown simtime.PS
}

// server is one pool member's live state.
type server struct {
	spec    ServerSpec
	busy    int    // occupied slots
	running []*job // jobs in slots (finish times feed the load estimate)
	queue   []*job // waiting jobs, ordered by the queue discipline at pop

	// reserved is dispatcher-side bookkeeping: service time of requests
	// routed here but still in flight over their clients' links. Without
	// it every concurrent est-aware decision sees the same idle server
	// and herds onto it — the classic join-shortest-queue-with-stale-info
	// pathology.
	reserved simtime.PS

	// finSum and queExec keep estWait O(1): the sum of running jobs'
	// absolute finish instants and of queued jobs' service times. The old
	// engine walked both slices per estimate — per dispatch, per server —
	// which at fleet scale was the hottest loop in the simulator.
	finSum  simtime.PS
	queExec simtime.PS

	// busyPS integrates busy slots over time for the utilization gauge;
	// maxDepth tracks the deepest queue ever observed.
	busyPS   simtime.PS
	lastT    simtime.PS
	maxDepth int
	waitPS   simtime.PS // total queueing delay charged
	served   int        // jobs that entered a slot

	// down marks a crashed or draining server: the dispatcher routes
	// around it and arrivals already in flight are relocated.
	down bool
}

// advance integrates the utilization clock to now.
func (s *server) advance(now simtime.PS) {
	if now > s.lastT {
		s.busyPS += simtime.PS(int64(s.busy) * int64(now-s.lastT))
		s.lastT = now
	}
}

// execTime is the task's service time at this server's speed.
func (s *server) execTime(tm simtime.PS) simtime.PS {
	return simtime.PS(float64(tm) / s.spec.R)
}

// estWait estimates the queueing delay a request dispatched now would
// face: all outstanding work (remaining service of running jobs, the full
// service of queued ones, and in-flight reservations) spread across the
// slots. This is the live load signal the dispatcher exposes — to its own
// policies, to the admission bound, and to the est-aware gate. Running
// jobs always have finish >= now (their evFinish has not fired), so the
// incremental form below equals the per-job walk exactly.
func (s *server) estWait(now simtime.PS) simtime.PS {
	left := s.reserved + s.queExec
	left += s.finSum - simtime.PS(len(s.running))*now
	return left / simtime.PS(s.spec.Slots)
}

// estWaitAt is the walk form of estWait for *future* instants — the fault
// recovery paths estimate load at arrival times past now, where a running
// job finishing before at must contribute zero, not negative. Recovery is
// rare, so the O(running) walk stays off the dispatch hot path.
func (s *server) estWaitAt(at simtime.PS) simtime.PS {
	left := s.reserved + s.queExec
	for _, j := range s.running {
		if j.finish > at {
			left += j.finish - at
		}
	}
	return left / simtime.PS(s.spec.Slots)
}

// enqueue appends to the run queue under the discipline's bookkeeping.
func (s *server) enqueue(j *job) {
	s.queue = append(s.queue, j)
	s.queExec += j.exec
	if len(s.queue) > s.maxDepth {
		s.maxDepth = len(s.queue)
	}
}

// pop removes the next queued job under the discipline: FIFO takes the
// oldest, SJF the shortest service time (ties by arrival order).
func (s *server) pop(d Discipline) *job {
	best := 0
	if d == SJF {
		for i := 1; i < len(s.queue); i++ {
			if s.queue[i].exec < s.queue[best].exec ||
				(s.queue[i].exec == s.queue[best].exec && s.queue[i].seq < s.queue[best].seq) {
				best = i
			}
		}
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	s.queExec -= j.exec
	return j
}

// removeQueued unlinks one specific queued job (cross-tier promotion
// pulls from the middle of the queue, not from its head).
func (s *server) removeQueued(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.queExec -= j.exec
			return
		}
	}
}

// dropRunning removes a completed job from the slot list.
func (s *server) dropRunning(j *job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			s.finSum -= j.finish
			return
		}
	}
}

// detectDelay is the health monitor's failure-detection latency: the gap
// between a server dying and the control plane declaring it dead off its
// missed heartbeats. It is a property of the migration subsystem — only
// fleets running with Migrate have a component watching server liveness.
// Drains are announced and pay the same small notification delay.
const detectDelay = 5 * simtime.Millisecond

// deadlineSlack mirrors offrt's DefaultRecovery().DeadlineSlack: a client
// without the control plane waits slack times its predicted end-to-end
// offload time (upload + server execution + reply) before concluding the
// server is gone and re-executing locally. This is the fallback-only
// failure detector — deadline expiry, not heartbeats — and the reason
// fast recovery needs the monitor: a crash costs the client its remaining
// patience, not five milliseconds.
const deadlineSlack = 3

// shedNoticeBytes is the size of the admission-reject notification the
// client waits for before falling back locally.
const shedNoticeBytes = 64

// Completion outcome kinds carried by doneMsg.
const (
	outOffload  uint8 = iota // completed remotely
	outDecline               // contention-aware gate chose local
	outShed                  // admission control forced local fallback
	outFallback              // no viable server: ran locally
)

// doneMsg tells a client its request completed. It is the only message
// that crosses from the server-side machine back to client-side state:
// the sequential engine applies it inline, the sharded engine mails it to
// the owning shard at the window boundary.
type doneMsg struct {
	ci     int32
	kind   uint8
	tier   uint8 // completion tier of an offload (0 in a flat fleet)
	missed bool  // an offload's reply landed after its dispatch deadline
	decide simtime.PS
	done   simtime.PS
}

// Tier codes carried by job.tier and doneMsg.tier: zero means the flat
// (untiered) fleet, so the codes are the tiers.Tier values shifted by
// one.
const (
	tierEdge  = uint8(tiers.Edge) + 1
	tierCloud = uint8(tiers.Cloud) + 1
)

// intent is a client's decision instant crossing into the machine: one
// ready event's draws, priced over the client's own link. Everything the
// dispatch/gate path needs travels by value so the machine never touches
// client state.
type intent struct {
	t    simtime.PS
	tm   simtime.PS
	up   simtime.PS
	down simtime.PS
	rtt  simtime.PS
	mem  int64
	bw   int64
	job  int64 // logical JobID (client id x requests-per-client + ordinal)
	ci   int32
}

// machine is the server-side state machine shared by both engines:
// dispatcher, Equation-1 gate, admission control, slots/queues and the
// fault/recovery plane. Every mutation of global state happens here, in
// strict (t, lane, seq) event order regardless of engine — the sequential
// driver feeds it from one heap, the sharded driver from a deterministic
// merge of per-shard streams — which is what makes the engines
// bit-identical.
type machine struct {
	cfg      *Config
	servers  []*server
	links    []*netsim.Link // per-client links, immutable during the run
	disp     dispatcher
	backhaul *netsim.Link

	// Tiered-topology state (nil/empty in a flat fleet). wan and wanRTT
	// cache the topology's backhaul so the dispatch hot path never
	// re-materializes the link; edgeIdx/cloudIdx are the per-tier
	// candidate sets the dispatcher picks within.
	topo      *tiers.Topology
	wan       *netsim.Link
	wanRTT    simtime.PS // both fixed round-trip costs of the WAN leg
	edgeIdx   []int
	cloudIdx  []int
	hWaitTier [2]*obs.Histogram
	mWaitTier [2]*obs.Histogram

	// Live admission bounds and gate margin: copies of cfg.Admission and
	// 1.0 under static control, steered by ctrl when adaptive.
	adm    Admission
	margin float64
	ctrl   *controller

	st    *Stats // server-side counters (client-side outcomes live in the shards)
	hWait *obs.Histogram
	mWait *obs.Histogram

	// samp is the tail sampler (nil unless Config.Exemplars > 0). It
	// lives in the machine because every completion is delivered here in
	// the serial core, whose event order is bit-identical across engines
	// — which makes the retained exemplar set shard-invariant for free.
	samp *sampler

	sched func(t simtime.PS, kind uint8, si int32, j *job)
	emit  func(msg doneMsg)

	jobSeq int64
	free   []*job
}

func newMachine(cfg *Config, links []*netsim.Link, st *Stats) *machine {
	servers := make([]*server, len(cfg.Servers))
	for i, spec := range cfg.Servers {
		servers[i] = &server{spec: spec}
	}
	m := &machine{
		cfg:      cfg,
		servers:  servers,
		links:    links,
		disp:     dispatcher{policy: cfg.Policy, rng: entityStream(cfg.Seed, dispatcherEntity)},
		backhaul: netsim.Backhaul(),
		adm:      cfg.Admission,
		margin:   1,
		st:       st,
		hWait:    obs.NewHistogram(),
		mWait:    cfg.Metrics.Histogram("lat.queue_wait_ps"),
		samp:     newSampler(cfg),
	}
	if cfg.Adaptive.Enabled {
		m.ctrl = newController(cfg.Adaptive, cfg.Admission)
		m.adm = Admission{MaxQueue: m.ctrl.queue, MaxWait: m.ctrl.wait}
		m.margin = m.ctrl.margin
	}
	if cfg.Tiers != nil {
		m.topo = cfg.Tiers
		m.wan = m.topo.WAN()
		m.wanRTT = 2 * (m.wan.Latency + m.wan.PerMessage)
		lo, hi := m.topo.Indices(tiers.Edge)
		for i := lo; i < hi; i++ {
			m.edgeIdx = append(m.edgeIdx, i)
		}
		lo, hi = m.topo.Indices(tiers.Cloud)
		for i := lo; i < hi; i++ {
			m.cloudIdx = append(m.cloudIdx, i)
		}
		m.hWaitTier = [2]*obs.Histogram{obs.NewHistogram(), obs.NewHistogram()}
		m.mWaitTier = [2]*obs.Histogram{
			cfg.Metrics.Histogram("lat.queue_wait_edge_ps"),
			cfg.Metrics.Histogram("lat.queue_wait_cloud_ps"),
		}
	}
	return m
}

// scheduleFaults seeds the server-fault timeline. Crash and drain are
// events; slowdowns and stalls are consulted lazily when jobs start.
func (m *machine) scheduleFaults() {
	if !m.cfg.ServerFaults.Active() {
		return
	}
	for _, fe := range m.cfg.ServerFaults.Events {
		if fe.Server >= len(m.servers) {
			continue
		}
		switch fe.Kind {
		case faults.Crash:
			m.sched(fe.Start, evCrash, int32(fe.Server), nil)
		case faults.Drain:
			m.sched(fe.Start, evDrain, int32(fe.Server), nil)
		}
	}
}

func (m *machine) recordWait(si int32, w simtime.PS) {
	m.hWait.Record(int64(w))
	m.mWait.Record(int64(w))
	if m.topo != nil {
		t := m.topo.TierOf(int(si))
		m.hWaitTier[t].Record(int64(w))
		m.mWaitTier[t].Record(int64(w))
	}
}

// newJob hands out a job from the free list. Jobs recycle once no event
// or server slice can still reference them, so a million-client run
// reuses a working set of a few thousand instead of allocating per
// request.
func (m *machine) newJob() *job {
	if n := len(m.free); n > 0 {
		j := m.free[n-1]
		m.free = m.free[:n-1]
		return j
	}
	return &job{}
}

func (m *machine) freeJob(j *job) {
	*j = job{}
	m.free = append(m.free, j)
}

// complete finalizes a job's span record, feeds the tail sampler, and
// delivers the completion to the owning client. Every terminal path of a
// job funnels through here, so the sampler observes each logical request
// exactly once, in the serial core's deterministic order.
func (m *machine) complete(r *jobRec, msg doneMsg) {
	if r != nil {
		r.out = msg.kind
		r.tier = msg.tier
		r.missed = msg.missed
		r.done = msg.done
		m.samp.observe(r, m.cfg.Tracer)
	}
	m.emit(msg)
}

// stepCtrl advances the adaptive controller across any period boundaries
// up to now. Both engines call it from the same handlers in the same
// global event order, so the control trajectory is deterministic.
func (m *machine) stepCtrl(now simtime.PS) {
	c := m.ctrl
	if c == nil {
		return
	}
	for now >= c.next {
		busy, slots := 0, 0
		for _, s := range m.servers {
			if s.down {
				continue
			}
			busy += s.busy
			slots += s.spec.Slots
		}
		c.step(busy, slots)
		c.next += c.cfg.Period
		m.adm = Admission{MaxQueue: c.queue, MaxWait: c.wait}
		m.margin = c.margin
	}
}

// handleIntent runs a client's decision instant: pick a server, price the
// offload with the contention-aware gate, dispatch or send the client
// down the local path.
func (m *machine) handleIntent(in intent) {
	if m.topo != nil {
		m.handleIntentTiered(in)
		return
	}
	m.stepCtrl(in.t)
	m.st.Events++
	now := in.t
	si, wait := m.disp.pick(m.servers, now, in.tm, in.up, in.down)
	if si < 0 {
		// The whole pool is down or draining: nothing to offload to.
		m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KGate, Track: obs.TrackFleet,
			Name: "pool-down", A0: int64(in.tm), A1: in.mem, Job: in.job})
		r := m.samp.rec(in.job, in)
		r.mark(now+in.tm, segLocal, -1)
		m.complete(r, doneMsg{ci: in.ci, kind: outFallback, decide: now, done: now + in.tm})
		return
	}
	srv := m.servers[si]
	// The dynamic gate: Equation 1 against the picked server's speed.
	// Only the est-aware policy extends it with the live queueing-delay
	// signal (the contention-aware gate); the naive policies keep the
	// paper's load-blind gate, assuming a dedicated server — which is
	// exactly what overruns queues and triggers admission sheds under
	// heavy traffic. The margin scales the charged delay when adaptive
	// control has learned the raw signal under-prices contention.
	gateWait := simtime.PS(0)
	if m.cfg.Policy == EstAware {
		gateWait = wait
	}
	p := estimate.Params{R: srv.spec.R, BandwidthBps: in.bw, RTT: in.rtt}
	if !p.ProfitableQueuedMargin(in.tm, in.mem, gateWait, m.margin) {
		m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KGate, Track: obs.TrackFleet,
			Name: "decline", A0: int64(in.tm), A1: in.mem, A2: in.bw, A3: int64(wait), Job: in.job})
		r := m.samp.rec(in.job, in)
		r.mark(now+in.tm, segLocal, -1)
		m.complete(r, doneMsg{ci: in.ci, kind: outDecline, decide: now, done: now + in.tm})
		return
	}
	m.st.Dispatched++
	m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KDispatch, Track: obs.TrackFleet,
		Name: string(m.cfg.Policy), A0: int64(in.ci), A1: int64(si),
		A2: int64(len(srv.queue)), A3: int64(wait), Job: in.job})
	exec := srv.execTime(in.tm)
	m.jobSeq++
	j := m.newJob()
	*j = job{id: in.job, rec: m.samp.rec(in.job, in), pend: segUplink,
		client: in.ci, tm: in.tm, mem: in.mem, exec: exec,
		decide: now, down: in.down, seq: m.jobSeq,
		deadline: now + simtime.PS(deadlineSlack*float64(in.up+exec+in.down))}
	srv.reserved += j.exec
	m.sched(now+in.up, evArrive, int32(si), j)
}

// handleIntentTiered is handleIntent over the hierarchical topology:
// one est-aware pick *within* each tier yields that tier's best server
// and live queue delay, and estimate.Placement arbitrates the 3-way
// {local, edge, cloud} race with each tier priced on its own network
// path — the access link alone for the edge, access plus WAN leg in
// series for the cloud. The topology's mode masks tiers to degenerate
// into the static edge-only / cloud-only baselines the experiments
// compare against; the local gate always stays live.
func (m *machine) handleIntentTiered(in intent) {
	m.stepCtrl(in.t)
	m.st.Events++
	now := in.t
	mode := m.topo.EffectiveMode()
	wanLeg := m.wan.TransferTime(in.mem)

	var edge, cloud estimate.TierOption
	ei, ci := -1, -1
	if mode != tiers.CloudOnly && len(m.edgeIdx) > 0 {
		var ew simtime.PS
		ei, ew = m.disp.pickAmong(m.servers, m.edgeIdx, now, in.tm, in.up, in.down)
		if ei >= 0 {
			edge = estimate.TierOption{OK: true,
				P:     estimate.Params{R: m.servers[ei].spec.R, BandwidthBps: in.bw, RTT: in.rtt},
				Queue: ew}
		}
	}
	if mode != tiers.EdgeOnly && len(m.cloudIdx) > 0 {
		var cw simtime.PS
		ci, cw = m.disp.pickAmong(m.servers, m.cloudIdx, now, in.tm, in.up+wanLeg, in.down+wanLeg)
		if ci >= 0 {
			cloud = estimate.TierOption{OK: true,
				P: estimate.Params{R: m.servers[ci].spec.R,
					BandwidthBps: tiers.CombineBps(in.bw, m.wan.BandwidthBps),
					RTT:          in.rtt + m.wanRTT},
				Queue: cw}
		}
	}
	if ei < 0 && ci < 0 {
		m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KGate, Track: obs.TrackFleet,
			Name: "pool-down", A0: int64(in.tm), A1: in.mem, Job: in.job})
		r := m.samp.rec(in.job, in)
		r.mark(now+in.tm, segLocal, -1)
		m.complete(r, doneMsg{ci: in.ci, kind: outFallback, decide: now, done: now + in.tm})
		return
	}

	choice, est := estimate.PlacementMargin(in.tm, in.mem, edge, cloud, m.margin)
	si, wait := -1, simtime.PS(0)
	tier := uint8(0)
	up, down := in.up, in.down
	switch choice {
	case estimate.PlaceEdge:
		si, wait, tier = ei, edge.Queue, tierEdge
	case estimate.PlaceCloud:
		si, wait, tier = ci, cloud.Queue, tierCloud
		up += wanLeg
		down += wanLeg
	}
	m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KTierPlace, Track: obs.TrackFleet,
		Name: choice.String(), A0: int64(in.ci), A1: int64(si), A2: int64(est), A3: int64(wait),
		Job: in.job})
	if si < 0 {
		// Local won the 3-way race: no tier's RemoteTime beats Tm.
		r := m.samp.rec(in.job, in)
		r.mark(now+in.tm, segLocal, -1)
		m.complete(r, doneMsg{ci: in.ci, kind: outDecline, decide: now, done: now + in.tm})
		return
	}
	srv := m.servers[si]
	m.st.Dispatched++
	m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KDispatch, Track: obs.TrackFleet,
		Name: string(m.cfg.Policy), A0: int64(in.ci), A1: int64(si),
		A2: int64(len(srv.queue)), A3: int64(wait), Job: in.job})
	exec := srv.execTime(in.tm)
	m.jobSeq++
	j := m.newJob()
	*j = job{id: in.job, rec: m.samp.rec(in.job, in), pend: segUplink,
		client: in.ci, tm: in.tm, mem: in.mem, exec: exec,
		decide: now, down: down, adown: in.down, tier: tier, seq: m.jobSeq,
		deadline: now + simtime.PS(deadlineSlack*float64(up+exec+down))}
	srv.reserved += j.exec
	m.sched(now+up, evArrive, int32(si), j)
}

// handleArrive lands a dispatched request on its server: release the
// reservation, reroute off a dead server, run admission control, then
// start or enqueue.
func (m *machine) handleArrive(now simtime.PS, si int32, j *job) {
	m.stepCtrl(now)
	m.st.Events++
	s := m.servers[si]
	// The reservation materializes: the job is now visible in the queue
	// or a slot instead. This runs even when the server is down — a
	// reservation against a dead server is exactly the slot-accounting
	// leak the end-of-run invariant guards.
	s.reserved -= j.exec
	if s.reserved < 0 {
		s.reserved = 0
	}
	// The transit that delivered this arrival (uplink, WAN ship, resend)
	// closes here.
	j.rec.mark(now, j.pend, -1)
	if s.down {
		// The request landed on a dead or draining server. With
		// migration support the fleet reroutes it to a survivor;
		// without, the client's deadline expires and it re-executes
		// locally.
		j.rec.fault()
		if m.cfg.Migrate && m.relocate(j, j.tm, now+detectDelay, now+detectDelay, segDetect) {
			m.st.Retried++
			m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KRetry, Track: obs.TrackFleet,
				Name: "redispatch", A0: int64(j.client), A1: int64(si), Job: j.id})
		} else if !m.cfg.Migrate {
			done := expire(j, now+detectDelay) + j.tm
			if r := j.rec; r != nil {
				r.mark(now+detectDelay, segDetect, -1)
				r.mark(done-j.tm, segDeadline, -1)
				r.mark(done, segLocal, -1)
			}
			m.complete(j.rec, doneMsg{ci: j.client, kind: outFallback, decide: j.decide,
				done: done})
		}
		m.freeJob(j)
		return
	}
	depth := len(s.queue)
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
	// Admission control runs against the server's *actual* state at
	// arrival — decision-time estimates are already stale by one transfer
	// time, which is exactly how a thundering herd overruns a queue
	// bound. The bounds are m.adm, not cfg.Admission: under adaptive
	// control they move every period.
	if !j.recovery &&
		((m.adm.MaxQueue > 0 && depth >= m.adm.MaxQueue && s.busy >= s.spec.Slots) ||
			(m.adm.MaxWait > 0 && s.estWait(now) > m.adm.MaxWait)) {
		// A saturated edge demotes the arrival to the cloud tier instead
		// of shedding it, when the WAN detour still beats the local
		// fallback the shed would force.
		if j.tier == tierEdge && m.cfg.Migrate && m.topo.EffectiveMode() == tiers.ThreeWay {
			notice := m.links[j.client].At(now).TransferTime(shedNoticeBytes)
			if m.demote(now, si, j, notice+j.tm, false) {
				m.freeJob(j)
				return
			}
		}
		m.ctrl.noteShed()
		m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KShed, Track: obs.TrackFleet,
			A0: int64(j.client), A1: int64(si), A2: int64(depth), Job: j.id})
		notice := m.links[j.client].At(now).TransferTime(shedNoticeBytes)
		// Local fallback: the client hears the reject, then runs the
		// task itself.
		if r := j.rec; r != nil {
			r.server = si
			r.mark(now+notice, segNotice, si)
			r.mark(now+notice+j.tm, segLocal, -1)
		}
		m.complete(j.rec, doneMsg{ci: j.client, kind: outShed, decide: j.decide, done: now + notice + j.tm})
		m.freeJob(j)
		return
	}
	s.advance(now)
	if s.busy < s.spec.Slots {
		m.recordWait(si, 0)
		m.startJob(si, j, now)
	} else {
		// Late-binding demotion: the edge backlog this arrival would
		// queue behind can have overshot the decision-time estimate (a
		// diurnal burst lands faster than slots free). If the cloud now
		// beats staying by more than the WAN detour costs, push the
		// request down a tier instead of queueing it.
		if j.tier == tierEdge && !j.recovery && m.cfg.Migrate &&
			m.topo.EffectiveMode() == tiers.ThreeWay &&
			m.demote(now, si, j, s.estWait(now)+s.execTime(j.tm)+j.adown, true) {
			m.freeJob(j)
			return
		}
		j.enq = now
		s.enqueue(j)
	}
}

// startJob moves a job into a slot of server si at instant t. A scheduled
// stall at t pushes the start to the window's end; a slowdown in effect
// then stretches the whole service time by its factor (coarse: the factor
// at start governs the job, window edges inside the service interval are
// not split).
func (m *machine) startJob(si int32, j *job, t simtime.PS) {
	s := m.servers[si]
	s.busy++
	s.served++
	fin := t + j.exec
	if p := m.cfg.ServerFaults; p.Active() {
		start := t
		if until, ok := p.StallUntil(int(si), start); ok {
			start = until
		}
		fin = start + simtime.PS(float64(j.exec)*p.SlowFactor(int(si), start))
	}
	j.finish = fin
	s.running = append(s.running, j)
	s.finSum += fin
	m.sched(j.finish, evFinish, si, j)
}

// handleFinish completes a job: reply to the client, free the slot, pull
// the next queued job in.
func (m *machine) handleFinish(now simtime.PS, si int32, j *job) {
	m.stepCtrl(now)
	m.st.Events++
	if j.cancelled {
		// The server died mid-service; the slot and accounting were
		// released at the fault instant.
		m.freeJob(j)
		return
	}
	s := m.servers[si]
	s.advance(now)
	s.busy--
	s.dropRunning(j)
	done := now + j.down
	missed := j.deadline > 0 && done > j.deadline
	m.ctrl.noteFinish(missed)
	fid := j.id
	if r := j.rec; r != nil {
		r.server = si
		r.mark(now, segRun, si)
		r.mark(done, segReply, -1)
	}
	m.complete(j.rec, doneMsg{ci: j.client, kind: outOffload, tier: j.tier, missed: missed, decide: j.decide, done: done})
	m.freeJob(j)
	if len(s.queue) > 0 && s.busy < s.spec.Slots {
		next := s.pop(m.cfg.Queue)
		wait := now - next.enq
		s.waitPS += wait
		m.recordWait(si, wait)
		next.rec.mark(now, segQueue, si)
		m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KQueue, Track: obs.TrackFleet,
			A0: int64(next.client), A1: int64(si), A2: int64(wait), Job: next.id})
		m.startJob(si, next, now)
	}
	// A drained edge queue is the promotion trigger: if the fleet is
	// tiered and this finish left an edge server with no backlog, scan the
	// cloud for the job that gains most from coming back over the WAN.
	// The gain test prices queueing at this server via estWaitAt, so the
	// scan is safe to run even while the slots themselves are still busy.
	if m.topo != nil && m.cfg.Migrate && m.topo.EffectiveMode() == tiers.ThreeWay &&
		!s.down && len(s.queue) == 0 && m.topo.TierOf(int(si)) == tiers.Edge {
		m.promote(now, si, fid)
	}
}

// expire is when a client without the control plane gives up on a dead
// server: not before its offload deadline runs out. The silent crash is
// indistinguishable from a slow queue until then.
func expire(j *job, at simtime.PS) simtime.PS {
	if j.deadline > at {
		return j.deadline
	}
	return at
}

// bestUp is the migration target chooser: est-aware placement over the
// surviving servers regardless of the dispatch policy, because moving a
// victim is a runtime mechanism, not a routing preference. Returns -1
// when no viable server remains.
func (m *machine) bestUp(at simtime.PS, remTm simtime.PS) int {
	best, bestTotal := -1, simtime.PS(0)
	for i, s := range m.servers {
		if s.down {
			continue
		}
		total := s.estWaitAt(at) + s.execTime(remTm)
		if best < 0 || total < bestTotal {
			best, bestTotal = i, total
		}
	}
	return best
}

// relocate routes a victim job's remaining work (remTm, in mobile time)
// to the best surviving server, arriving at instant at, or sends the
// client down the local path when that is the better estimate. The
// recovery decision is the migration analogue of the Equation-1 gate:
// the victim is not forced remote — estimated completion at the best
// survivor (arrival + queueing + execution + reply) races full local
// re-execution starting at localAt, and the loser is dropped. With no
// survivor at all, local wins by default. The target's reservation
// mirrors a fresh dispatch, so slot accounting stays exact across
// failures. transit labels the span segment the recovery transfer
// charges (detect for in-flight reroutes, resend for crash re-uploads,
// wan.ship for checkpoint migrations).
func (m *machine) relocate(j *job, remTm simtime.PS, at, localAt simtime.PS, transit uint8) bool {
	ti := m.bestUp(at, remTm)
	down, tier := j.down, j.tier
	if ti >= 0 {
		if m.topo != nil {
			// Recompute the reply leg for the target's tier: an edge
			// survivor replies over the access link alone, a cloud one
			// adds the WAN leg.
			down, tier = j.adown, tierEdge
			if m.topo.TierOf(ti) == tiers.Cloud {
				down += m.wan.TransferTime(j.mem)
				tier = tierCloud
			}
		}
		t := m.servers[ti]
		remoteDone := at + t.estWaitAt(at) + t.execTime(remTm) + down
		if remoteDone >= localAt+j.tm {
			ti = -1 // a loaded pool makes local re-execution the better recovery
		}
	}
	if ti < 0 {
		if r := j.rec; r != nil {
			r.mark(localAt, segDetect, -1)
			r.mark(localAt+j.tm, segLocal, -1)
		}
		m.complete(j.rec, doneMsg{ci: j.client, kind: outFallback, decide: j.decide, done: localAt + j.tm})
		return false
	}
	t := m.servers[ti]
	m.jobSeq++
	nj := m.newJob()
	*nj = job{id: j.id, rec: j.rec, pend: transit,
		client: j.client, tm: j.tm, mem: j.mem, exec: t.execTime(remTm),
		decide: j.decide, down: down, adown: j.adown, tier: tier, seq: m.jobSeq, recovery: true}
	t.reserved += nj.exec
	m.sched(at, evArrive, int32(ti), nj)
	return true
}

// demote forwards an edge arrival down to the cloud tier: the request's
// input state ships one WAN leg to the best cloud server instead of
// staying put. stay is the estimated time-from-now of the alternative
// the caller would otherwise take — local re-execution for an admission
// shed, queueing behind the edge backlog for a late-binding re-place.
// The demotion gate races the cloud completion (arrival + queueing +
// execution + WAN reply) against it; a voluntary move must additionally
// win by more than the ship time itself (the hysteresis that keeps
// marginal estimates from bouncing work across the WAN), while a
// shed-conversion only has to beat the fallback it replaces. Returns
// false to let the caller's normal path run.
func (m *machine) demote(now simtime.PS, si int32, j *job, stay simtime.PS, voluntary bool) bool {
	ship := m.wan.TransferTime(j.mem)
	at := now + ship
	ti, bestTotal := -1, simtime.PS(0)
	for _, ci := range m.cloudIdx {
		s := m.servers[ci]
		if s.down {
			continue
		}
		total := s.estWaitAt(at) + s.execTime(j.tm)
		if ti < 0 || total < bestTotal {
			ti, bestTotal = ci, total
		}
	}
	if ti < 0 {
		return false
	}
	down := j.adown + ship
	bar := now + stay
	if voluntary {
		bar -= ship
	}
	if at+bestTotal+down >= bar {
		return false
	}
	t := m.servers[ti]
	m.st.Demotions++
	m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KTierMigrate, Track: obs.TrackFleet,
		Name: "demote", A0: int64(j.client), A1: int64(si), A2: int64(ti), A3: int64(ship),
		Job: j.id})
	j.rec.migrate()
	m.jobSeq++
	nj := m.newJob()
	*nj = job{id: j.id, rec: j.rec, pend: segWanShip,
		client: j.client, tm: j.tm, mem: j.mem, exec: t.execTime(j.tm),
		decide: j.decide, down: down, adown: j.adown, tier: tierCloud,
		seq: m.jobSeq, recovery: true, deadline: j.deadline}
	t.reserved += nj.exec
	m.sched(at, evArrive, int32(ti), nj)
	return true
}

// promote pulls a running cloud job back to the freed edge slot on
// server ei: checkpoint on the cloud server, ship the state one WAN leg,
// resume mid-task on the edge — PR 7's drain migration machinery turned
// into a voluntary cross-tier move. The candidate maximizing the finish
// gain wins (ties by dispatch order), and the gain must exceed the ship
// time itself: the hysteresis that keeps a job from oscillating between
// tiers on marginal estimates. Promoted jobs carry recovery=true, so
// admission cannot demote them again — each offload crosses the WAN at
// most twice. trigger is the JobID whose completion freed the slot — the
// promoted job's causal parent in the span model.
func (m *machine) promote(now simtime.PS, ei int32, trigger int64) {
	e := m.servers[ei]
	var best *job
	bi, bestRunning := -1, false
	var bestGain simtime.PS
	consider := func(j *job, ci int, running bool, stay simtime.PS, remTm simtime.PS) {
		ship := m.wan.TransferTime(j.mem)
		at := now + ship
		move := at + e.estWaitAt(at) + e.execTime(remTm) + j.adown
		gain := stay - move
		if gain <= ship {
			return
		}
		if best == nil || gain > bestGain || (gain == bestGain && j.seq < best.seq) {
			best, bi, bestRunning, bestGain = j, ci, running, gain
		}
	}
	for _, ci := range m.cloudIdx {
		c := m.servers[ci]
		if c.down {
			continue
		}
		// Running jobs win only when the edge out-executes the cloud for
		// what remains (rare under cloud R > edge R); queued jobs win
		// whenever skipping the cloud backlog buys more than the WAN ship
		// — the common case the freed-slot trigger exists for.
		for _, j := range c.running {
			if j.cancelled || j.finish <= now {
				continue
			}
			remTm := simtime.PS(float64(j.finish-now) * c.spec.R)
			consider(j, ci, true, j.finish+j.down, remTm)
		}
		if c.busy >= c.spec.Slots {
			backlog := c.estWaitAt(now)
			for _, j := range c.queue {
				consider(j, ci, false, now+backlog+j.exec+j.down, j.tm)
			}
		}
	}
	if best == nil {
		return
	}
	c := m.servers[bi]
	remTm := best.tm
	if bestRunning {
		c.advance(now)
		c.busy--
		c.dropRunning(best)
		best.cancelled = true // its scheduled evFinish fires as a no-op
		remTm = simtime.PS(float64(best.finish-now) * c.spec.R)
		best.rec.mark(now, segRun, int32(bi))
	} else {
		c.removeQueued(best)
		best.rec.mark(now, segQueue, int32(bi))
	}
	if r := best.rec; r != nil {
		r.parent = trigger
		r.migrated = true
	}
	ship := m.wan.TransferTime(best.mem)
	m.st.Promotions++
	m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KTierMigrate, Track: obs.TrackFleet,
		Name: "promote", A0: int64(best.client), A1: int64(bi), A2: int64(ei), A3: int64(ship),
		Job: best.id, Parent: trigger})
	m.jobSeq++
	nj := m.newJob()
	*nj = job{id: best.id, rec: best.rec, pend: segWanShip,
		client: best.client, tm: best.tm, mem: best.mem, exec: e.execTime(remTm),
		decide: best.decide, down: best.adown, adown: best.adown, tier: tierEdge,
		seq: m.jobSeq, recovery: true, deadline: best.deadline}
	e.reserved += nj.exec
	m.sched(now+ship, evArrive, ei, nj)
	if !bestRunning {
		m.freeJob(best)
	}
}

// handleCrash loses everything the server held: running jobs mid-service
// and queued input state alike. Slots and accounting release here; the
// already-scheduled evFinish events fire as tombstoned no-ops.
func (m *machine) handleCrash(now simtime.PS, si int32) {
	m.stepCtrl(now)
	m.st.Events++
	s := m.servers[si]
	s.advance(now)
	s.down = true
	m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KServerFault, Track: obs.TrackFleet,
		Name: "crash", A0: int64(si), A1: int64(len(s.running)), A2: int64(len(s.queue))})
	victims := append(append([]*job(nil), s.running...), s.queue...)
	for _, j := range s.running {
		j.cancelled = true
	}
	s.busy = 0
	s.running = nil
	s.finSum = 0
	s.queue = nil
	s.queExec = 0
	for _, j := range victims {
		// State died with the server, so recovery is a full re-send:
		// the health monitor flags the crash after detectDelay and the
		// client re-uploads its snapshot to the relocation target (or
		// falls back locally). Without the monitor the crash is silent
		// — the client burns its whole offload deadline before giving
		// up and re-executing locally.
		if r := j.rec; r != nil {
			r.faulted = true
			// The work done (or waited) before the crash is lost time.
			if j.cancelled {
				r.mark(now, segRunLost, si)
			} else {
				r.mark(now, segQueueLost, si)
			}
		}
		reup := m.links[j.client].At(now + detectDelay).TransferTime(j.mem)
		if m.cfg.Migrate {
			j.rec.mark(now+detectDelay, segDetect, -1)
			if m.relocate(j, j.tm, now+detectDelay+reup, now+detectDelay, segResend) {
				m.st.Retried++
				m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KRetry, Track: obs.TrackFleet,
					Name: "resend", A0: int64(j.client), A1: int64(si), Job: j.id})
			}
		} else {
			done := expire(j, now+detectDelay) + j.tm
			if r := j.rec; r != nil {
				r.mark(done-j.tm, segDeadline, -1)
				r.mark(done, segLocal, -1)
			}
			m.complete(j.rec, doneMsg{ci: j.client, kind: outFallback, decide: j.decide,
				done: done})
		}
		if !j.cancelled {
			// Queued victims have no pending events; running ones recycle
			// when their tombstoned evFinish fires.
			m.freeJob(j)
		}
	}
}

// handleDrain takes the server out of rotation gracefully.
func (m *machine) handleDrain(now simtime.PS, si int32) {
	m.stepCtrl(now)
	m.st.Events++
	s := m.servers[si]
	s.advance(now)
	s.down = true
	m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KServerFault, Track: obs.TrackFleet,
		Name: "drain", A0: int64(si), A1: int64(len(s.running)), A2: int64(len(s.queue))})
	if !m.cfg.Migrate {
		// Running jobs finish in place (a drain announces shutdown, it
		// does not kill state), but the queue is abandoned: each waiting
		// client falls back locally.
		for _, j := range s.queue {
			if r := j.rec; r != nil {
				r.faulted = true
				r.mark(now, segQueueLost, si)
				r.mark(now+detectDelay, segDetect, -1)
				r.mark(now+detectDelay+j.tm, segLocal, -1)
			}
			m.complete(j.rec, doneMsg{ci: j.client, kind: outFallback, decide: j.decide,
				done: now + detectDelay + j.tm})
			m.freeJob(j)
		}
		s.queue = nil
		s.queExec = 0
		return
	}
	// Live migration: running jobs checkpoint and ship their dirty state
	// over the backhaul, resuming mid-task on the target — only the
	// *remaining* mobile-time travels. Queued jobs forward whole (they
	// had not started) without a client round trip.
	running := append([]*job(nil), s.running...)
	for _, j := range s.running {
		j.cancelled = true
	}
	s.busy = 0
	s.running = nil
	s.finSum = 0
	for _, j := range running {
		remTm := simtime.PS(0)
		if j.finish > now {
			remTm = simtime.PS(float64(j.finish-now) * s.spec.R)
		}
		if r := j.rec; r != nil {
			r.faulted = true
			r.mark(now, segRun, si) // the partial run before the checkpoint
		}
		ship := m.backhaul.TransferTime(j.mem) + m.backhaul.Latency + m.backhaul.PerMessage
		if m.relocate(j, remTm, now+ship, now+detectDelay, segWanShip) {
			m.st.Migrations++
			j.rec.migrate()
			m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KMigrateShip, Track: obs.TrackFleet,
				A0: int64(j.client), A1: int64(si), A2: j.mem, A3: int64(ship), Job: j.id})
		}
	}
	queued := s.queue
	s.queue = nil
	s.queExec = 0
	for _, j := range queued {
		if r := j.rec; r != nil {
			r.faulted = true
			r.mark(now, segQueue, si) // the wait spent behind the drained backlog
		}
		ship := m.backhaul.TransferTime(j.mem) + m.backhaul.Latency + m.backhaul.PerMessage
		if m.relocate(j, j.tm, now+ship, now+detectDelay, segWanShip) {
			m.st.Retried++
			m.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.KRetry, Track: obs.TrackFleet,
				Name: "forward", A0: int64(j.client), A1: int64(si), Job: j.id})
		}
		m.freeJob(j)
	}
}

// handleServerEvent dispatches one popped server-lane event.
func (m *machine) handleServerEvent(ev event) {
	switch ev.kind {
	case evArrive:
		m.handleArrive(ev.t, ev.si, ev.j)
	case evFinish:
		m.handleFinish(ev.t, ev.si, ev.j)
	case evCrash:
		m.handleCrash(ev.t, ev.si)
	case evDrain:
		m.handleDrain(ev.t, ev.si)
	}
}

// finishRun checks the end-of-run invariants and assembles the Result
// from the merged stats.
func (m *machine) finishRun(st *Stats, now simtime.PS) (*Result, error) {
	for i, s := range m.servers {
		s.advance(now)
		// Slot-accounting invariants: every reservation must have
		// materialized or been released, and every occupied slot drained —
		// including on servers that died mid-service.
		if s.reserved != 0 {
			return nil, fmt.Errorf("fleet: server %d leaked %v of reservations at end of run", i, s.reserved)
		}
		if s.busy != 0 {
			return nil, fmt.Errorf("fleet: server %d ended with %d occupied slots", i, s.busy)
		}
	}
	if got := st.Offloads + st.Declines + st.Sheds + st.Fallbacks; got != st.Requests {
		return nil, fmt.Errorf("fleet: request accounting broken: %d completed of %d issued", got, st.Requests)
	}
	cfg := m.cfg
	res := &Result{
		Policy:         string(cfg.Policy),
		Queue:          cfg.Queue.String(),
		Clients:        cfg.Clients,
		Servers:        len(cfg.Servers),
		Seed:           cfg.Seed,
		Requests:       st.Requests,
		Offloads:       st.Offloads,
		Dispatched:     st.Dispatched,
		Declines:       st.Declines,
		Sheds:          st.Sheds,
		Fallbacks:      st.Fallbacks,
		Migrations:     st.Migrations,
		Retried:        st.Retried,
		DeadlineMisses: st.DeadlineMisses,
		Events:         st.Events,
	}
	res.QueueWait = m.hWait.Snapshot()
	res.E2E = st.E2E.Snapshot()
	if m.topo != nil {
		res.TierMode = string(m.topo.EffectiveMode())
		res.EdgeServers = m.topo.Edge.Servers
		res.CloudServers = m.topo.Cloud.Servers
		res.EdgeOffloads = st.EdgeOffloads
		res.CloudOffloads = st.CloudOffloads
		res.Promotions = st.Promotions
		res.Demotions = st.Demotions
		eh := m.hWaitTier[tiers.Edge].Snapshot()
		ch := m.hWaitTier[tiers.Cloud].Snapshot()
		res.QueueWaitEdge, res.QueueWaitCloud = &eh, &ch
	}
	res.finish(st.Latencies, m.servers, now)
	res.publish(cfg.Metrics, m.servers)
	if m.samp != nil {
		// Flush the retained exemplars' span trees last: the ring keeps
		// newest, so the trees survive whatever the live stream dropped.
		res.Exemplars = m.samp.flush(cfg.Tracer)
	}
	res.TraceDropped = cfg.Tracer.Dropped()
	cfg.Tracer.PublishDropped(cfg.Metrics)
	return res, nil
}
