package fleet

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// Per-job span records and the deterministic tail sampler.
//
// Every logical offload request carries a JobID fixed at issue time
// (client id x RequestsPerClient + request ordinal), stable across
// retries, cross-tier moves and migrations — the same id the continuation
// jobs a relocate or promote creates inherit. While a job is in flight
// the machine stamps a compact jobRec with causal marks: each mark closes
// the interval since the previous one under a segment label (uplink,
// queue, run, reply, WAN ship, fault detection, ...), so at completion
// the marks partition [decide, done] exactly — the invariant the
// critical-path analyzer's sum identity rests on.
//
// The sampler is tail-based: every completion feeds its summary in, but
// full span trees are retained only for the slowest-K jobs, the K worst
// of each anomaly category (shed / migrated / faulted), and a K-sized
// seeded baseline population. Retention is decided by total orders on
// (latency, id) and on a per-entity hash from entityStream(seed, id) —
// both independent of observation order — and every decision runs in the
// serial machine core, so the retained set is bit-identical across shard
// counts by construction. At end of run the retained trees flush into
// the existing bounded tracer ring as KJob/KJobSeg span events; a
// million-client sweep keeps exemplar traces inside the same ring that
// already bounds the live stream.

// Segment labels a jobRec mark closes.
const (
	segUplink uint8 = iota
	segQueue
	segRun
	segReply
	segWanShip
	segResend
	segDetect
	segRunLost
	segQueueLost
	segNotice
	segDeadline
	segLocal
	numSegs
)

var segName = [numSegs]string{
	"uplink", "queue", "run", "reply", "wan.ship", "resend",
	"fault.detect", "run.lost", "queue.lost", "shed.notice",
	"deadline.wait", "local.exec",
}

// segTrack places a segment on its exporter track: device-side intervals
// on mobile, transfers on the link, served intervals on the server's tier.
func segTrack(seg uint8, si int32, topo *tiers.Topology) obs.Track {
	switch seg {
	case segQueue, segRun, segRunLost, segQueueLost:
		if topo != nil && si >= 0 {
			return topo.TierOf(int(si)).Track()
		}
		return obs.TrackServer
	case segUplink, segReply, segWanShip, segResend:
		return obs.TrackLink
	}
	return obs.TrackMobile
}

// mark closes the interval since the previous mark under seg, attributed
// to server si (-1 when no server is involved).
type mark struct {
	t   simtime.PS
	seg uint8
	si  int32
}

// jobRec is one job's compact span record — fixed fields plus the mark
// chain, a few dozen bytes per in-flight job, recycled through a pool.
type jobRec struct {
	id     int64
	parent int64 // job whose completion causally triggered a promotion
	client int32
	server int32 // final server (-1 for local completions)
	tier   uint8
	out    uint8
	missed bool

	// Anomaly category flags the machine sets as the job's life unfolds.
	faulted  bool // touched by a server fault (crash/drain/dead-server arrival)
	migrated bool // moved cross-tier or checkpoint-migrated

	tm     simtime.PS
	mem    int64
	decide simtime.PS
	done   simtime.PS
	marks  []mark

	refs  int8 // retention sets holding this rec
	final bool // completion observed
}

func (r *jobRec) mark(t simtime.PS, seg uint8, si int32) {
	if r == nil {
		return
	}
	prev := r.decide
	if n := len(r.marks); n > 0 {
		prev = r.marks[n-1].t
	}
	if t <= prev {
		return // zero-width interval: nothing to charge
	}
	r.marks = append(r.marks, mark{t: t, seg: seg, si: si})
}

// fault flags the job as touched by a server fault; nil-safe like mark.
func (r *jobRec) fault() {
	if r != nil {
		r.faulted = true
	}
}

// migrate flags the job as moved cross-tier or checkpoint-migrated.
func (r *jobRec) migrate() {
	if r != nil {
		r.migrated = true
	}
}

var outName = [...]string{"offload", "decline", "shed", "fallback"}

// rootEvent is the job's KJob summary span — emitted live at completion
// (the cheap record every job contributes) and again at flush for
// retained exemplars. Both constructions are value-identical, so the
// span assembler's duplicate collapse merges them.
func (r *jobRec) rootEvent() obs.Event {
	return obs.Event{
		Time: r.decide, Dur: r.done - r.decide,
		Kind: obs.KJob, Track: obs.TrackMobile,
		Name: outName[r.out], Job: r.id, Parent: r.parent,
		A0: int64(r.client), A1: int64(r.server), A2: int64(r.tm), A3: r.mem,
	}
}

// setEntry ranks a retained rec by the lexicographic (a, b) score; the
// lowest-scored entry is evicted first.
type setEntry struct {
	a, b int64
	rec  *jobRec
}

// keepSet retains the k highest-scored recs seen so far. Scores are
// unique (b embeds the job id), so the surviving set is a property of the
// observed population, not of observation order — the shard-invariance
// argument.
type keepSet struct {
	k  int
	es []setEntry // sorted ascending by (a, b)
}

func (s *keepSet) add(a, b int64, r *jobRec) (evicted *jobRec) {
	if s.k <= 0 {
		return nil
	}
	if len(s.es) == s.k {
		low := s.es[0]
		if a < low.a || (a == low.a && b < low.b) {
			return nil // below the bar: not retained
		}
		evicted = low.rec
		copy(s.es, s.es[1:])
		s.es = s.es[:len(s.es)-1]
	}
	i := sort.Search(len(s.es), func(i int) bool {
		return s.es[i].a > a || (s.es[i].a == a && s.es[i].b > b)
	})
	s.es = append(s.es, setEntry{})
	copy(s.es[i+1:], s.es[i:])
	s.es[i] = setEntry{a: a, b: b, rec: r}
	r.refs++
	if evicted != nil {
		evicted.refs--
	}
	return evicted
}

// sampler is the machine-owned tail sampler.
type sampler struct {
	seed uint64
	topo *tiers.Topology

	slow     keepSet // slowest-K overall
	shed     keepSet // slowest-K admission sheds
	migrated keepSet // slowest-K cross-tier / checkpoint moves
	faulted  keepSet // slowest-K server-fault victims
	baseline keepSet // seeded reservoir: K smallest per-entity hashes

	free []*jobRec
}

func newSampler(cfg *Config) *sampler {
	k := cfg.Exemplars
	if k <= 0 {
		return nil
	}
	return &sampler{
		seed: cfg.Seed, topo: cfg.Tiers,
		slow: keepSet{k: k}, shed: keepSet{k: k}, migrated: keepSet{k: k},
		faulted: keepSet{k: k}, baseline: keepSet{k: k},
	}
}

// rec hands out a pooled record for a freshly issued job.
func (sp *sampler) rec(id int64, in intent) *jobRec {
	if sp == nil {
		return nil
	}
	var r *jobRec
	if n := len(sp.free); n > 0 {
		r = sp.free[n-1]
		sp.free = sp.free[:n-1]
		marks := r.marks[:0]
		*r = jobRec{marks: marks}
	} else {
		r = &jobRec{}
	}
	r.id = id
	r.client = in.ci
	r.server = -1
	r.tm = in.tm
	r.mem = in.mem
	r.decide = in.t
	return r
}

// observe feeds one completion into the retention sets and emits the
// job's cheap KJob summary. Runs in the serial machine core, so its
// order — and therefore the live summary stream — is engine-invariant.
func (sp *sampler) observe(r *jobRec, tr *obs.Tracer) {
	if sp == nil || r == nil {
		return
	}
	r.final = true
	tr.Emit(r.rootEvent())
	lat := int64(r.done - r.decide)
	sp.drop(sp.slow.add(lat, -r.id, r))
	if r.out == outShed {
		sp.drop(sp.shed.add(lat, -r.id, r))
	}
	if r.migrated {
		sp.drop(sp.migrated.add(lat, -r.id, r))
	}
	if r.faulted {
		sp.drop(sp.faulted.add(lat, -r.id, r))
	}
	// Baseline reservoir: an unbiased K-sample, picked by the smallest
	// per-entity hashes (a bottom-k sketch over entityStream draws) —
	// order-invariant and mergeable, unlike a classic reservoir walk.
	h := entityStream(sp.seed, uint64(r.id))
	sp.drop(sp.baseline.add(-int64(h.next()>>1), -r.id, r))
	sp.drop(r) // recycle immediately when nothing retained it
}

// drop returns an evicted rec to the pool once no set references it.
func (sp *sampler) drop(r *jobRec) {
	if r == nil || r.refs > 0 || !r.final {
		return
	}
	sp.free = append(sp.free, r)
}

// category membership of a retained rec, for the Result exemplar summary.
func (sp *sampler) categories(r *jobRec) []string {
	var cats []string
	in := func(s *keepSet) bool {
		for _, e := range s.es {
			if e.rec == r {
				return true
			}
		}
		return false
	}
	if in(&sp.slow) {
		cats = append(cats, "slow")
	}
	if in(&sp.shed) {
		cats = append(cats, "shed")
	}
	if in(&sp.migrated) {
		cats = append(cats, "migrated")
	}
	if in(&sp.faulted) {
		cats = append(cats, "faulted")
	}
	if in(&sp.baseline) {
		cats = append(cats, "baseline")
	}
	return cats
}

// retained returns the union of the retention sets, sorted by job id.
func (sp *sampler) retained() []*jobRec {
	seen := make(map[int64]*jobRec)
	for _, s := range []*keepSet{&sp.slow, &sp.shed, &sp.migrated, &sp.faulted, &sp.baseline} {
		for _, e := range s.es {
			seen[e.rec.id] = e.rec
		}
	}
	out := make([]*jobRec, 0, len(seen))
	for _, r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// flush emits the retained exemplars' complete span trees into the
// bounded tracer ring — root KJob plus one KJobSeg per mark interval —
// and returns the Result exemplar summaries. The ring keeps newest, so
// flushing last guarantees the exemplar trees survive whatever the live
// stream dropped, while total trace memory stays at the ring bound.
func (sp *sampler) flush(tr *obs.Tracer) []Exemplar {
	if sp == nil {
		return nil
	}
	recs := sp.retained()
	out := make([]Exemplar, 0, len(recs))
	for _, r := range recs {
		tr.Emit(r.rootEvent())
		ex := Exemplar{
			Job: r.id, Parent: r.parent, Client: r.client, Server: r.server,
			Outcome: outName[r.out], LatencyPS: int64(r.done - r.decide),
			Missed: r.missed, Categories: sp.categories(r),
		}
		if r.tier == tierEdge {
			ex.Tier = "edge"
		} else if r.tier == tierCloud {
			ex.Tier = "cloud"
		}
		prev := r.decide
		for _, mk := range r.marks {
			tr.Emit(obs.Event{
				Time: prev, Dur: mk.t - prev,
				Kind: obs.KJobSeg, Track: segTrack(mk.seg, mk.si, sp.topo),
				Name: segName[mk.seg], Job: r.id,
				A0: int64(r.client), A1: int64(mk.si),
			})
			ex.Segments = append(ex.Segments, ExSegment{
				Name: segName[mk.seg], PS: int64(mk.t - prev), Server: mk.si})
			prev = mk.t
		}
		out = append(out, ex)
	}
	return out
}

// Exemplar is one retained job in the Result: its identity, outcome,
// retention categories and the exact critical-path segments. Segments sum
// to LatencyPS — the machine-readable form of the analyzer's identity.
type Exemplar struct {
	Job        int64      `json:"job"`
	Parent     int64      `json:"parent_job,omitempty"`
	Client     int32      `json:"client"`
	Server     int32      `json:"server"` // final server, -1 local
	Tier       string     `json:"tier,omitempty"`
	Outcome    string     `json:"outcome"`
	Missed     bool       `json:"missed,omitempty"`
	LatencyPS  int64      `json:"latency_ps"`
	Categories []string   `json:"categories"`
	Segments   []ExSegment `json:"segments"`
}

// ExSegment is one critical-path interval of an exemplar.
type ExSegment struct {
	Name   string `json:"name"`
	PS     int64  `json:"ps"`
	Server int32  `json:"server"` // -1 when no server involved
}
