package fleet

import (
	"testing"

	"repro/internal/simtime"
)

// TestEventOrderTieBreak pins the intrinsic total order: equal-time events
// pop by (lane, seq), independent of push order. The old heap broke ties
// by a global insertion counter, which made the schedule an artifact of
// who pushed first — impossible to reproduce from per-shard streams.
func TestEventOrderTieBreak(t *testing.T) {
	q := newSchedQueue(0, 4)
	at := 100 * simtime.Millisecond
	// Push a late lane-0 event first (it takes lane 0's seq 0), then the
	// tie group in descending lane order, then an early lane-2 event.
	// Within the tie group the pops must come back sorted by (lane, seq) —
	// the reverse of insertion order across lanes.
	q.sched(200*simtime.Millisecond, evReady, 0, 0, nil)
	for lane := int32(3); lane >= 0; lane-- {
		q.sched(at, evReady, lane, 0, nil)
		q.sched(at, evArrive, lane, 0, nil)
	}
	q.sched(50*simtime.Millisecond, evReady, 2, 0, nil)

	type key struct {
		t    simtime.PS
		lane int32
		seq  int32
	}
	var got []key
	for !q.empty() {
		ev := q.pop()
		got = append(got, key{ev.t, ev.lane, ev.seq})
	}
	want := []key{
		{50 * simtime.Millisecond, 2, 2},
		{at, 0, 1}, {at, 0, 2},
		{at, 1, 0}, {at, 1, 1},
		{at, 2, 0}, {at, 2, 1},
		{at, 3, 0}, {at, 3, 1},
		{200 * simtime.Millisecond, 0, 0},
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pop %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWindowQueueMatchesHeap: the coordinator's two-tier scheduler must
// replay exactly the plain heap's order regardless of how events straddle
// window boundaries.
func TestWindowQueueMatchesHeap(t *testing.T) {
	plain := newSchedQueue(0, 8)
	wq := newWindowQueue(0, 8)
	r := entityStream(42, 0)
	type src struct {
		t    simtime.PS
		lane int32
	}
	var evs []src
	for i := 0; i < 500; i++ {
		evs = append(evs, src{t: simtime.PS(r.intn(1000)) * simtime.Millisecond, lane: int32(r.intn(8))})
	}
	for _, e := range evs {
		plain.sched(e.t, evReady, e.lane, 0, nil)
		wq.sched(e.t, evReady, e.lane, 0, nil)
	}

	var want []event
	for !plain.empty() {
		want = append(want, plain.pop())
	}
	var got []event
	for wq.pending() {
		horizon := wq.minPending() + 50*simtime.Millisecond
		wq.advance(horizon)
		for !wq.cur.empty() && wq.cur.top().t < horizon {
			got = append(got, wq.cur.pop())
		}
	}
	if len(got) != len(want) {
		t.Fatalf("window queue yielded %d events, heap %d", len(got), len(want))
	}
	for i := range want {
		if got[i].t != want[i].t || got[i].lane != want[i].lane || got[i].seq != want[i].seq {
			t.Fatalf("event %d: window queue (%v,%d,%d) != heap (%v,%d,%d)",
				i, got[i].t, got[i].lane, got[i].seq, want[i].t, want[i].lane, want[i].seq)
		}
	}
}

// TestEntityStreamIndependence guards the satellite RNG fix: the old
// derivation xor-ed the seed with small multiples of the entity id, which
// correlated neighboring clients' draw sequences. Streams must now differ
// pairwise even for adjacent ids and tiny seeds, and the same (seed, id)
// must reproduce exactly.
func TestEntityStreamIndependence(t *testing.T) {
	draw := func(seed, id uint64) [4]uint64 {
		r := entityStream(seed, id)
		var out [4]uint64
		for i := range out {
			out[i] = r.next()
		}
		return out
	}
	if draw(1, 7) != draw(1, 7) {
		t.Fatal("entityStream is not reproducible")
	}
	seen := map[[4]uint64]uint64{}
	for id := uint64(0); id < 1000; id++ {
		d := draw(1, id)
		if prev, dup := seen[d]; dup {
			t.Fatalf("entities %d and %d share a draw sequence", prev, id)
		}
		seen[d] = id
	}
	if draw(1, 3) == draw(2, 3) {
		t.Error("seeds 1 and 2 give entity 3 the same stream")
	}
}
