package fleet

import "repro/internal/mem"

// MemoryPlan projects a server fleet's session-memory footprint: the fixed
// cost of holding one shared program image versus the per-session bytes
// each bound client adds on top. With private-copy binding every session
// pays the full image; with copy-on-write instances (interp.Program) a
// session pays only the pages it writes, which is what makes the ROADMAP's
// 10⁴–10⁶ client fleet memory-feasible.
type MemoryPlan struct {
	// SharedImageBytes is the one-time cost of the deduplicated program
	// image all sessions read through.
	SharedImageBytes int
	// PerSessionBytes is the observed (or budgeted) private resident bytes
	// a bound session adds: its copy-on-write pages.
	PerSessionBytes int
	// PrivateCopyBytes is the per-session cost of the baseline that binds
	// each session to a full private image copy.
	PrivateCopyBytes int
}

// PlanFromImage derives a MemoryPlan from a shared program image and one
// representative session's private resident bytes (e.g. a freshly bound
// instance measured after its warm-up offload).
func PlanFromImage(img *mem.Image, perSessionBytes int) MemoryPlan {
	return MemoryPlan{
		SharedImageBytes: img.UniqueBytes(),
		PerSessionBytes:  perSessionBytes,
		PrivateCopyBytes: img.Bytes(),
	}
}

// SharedBytesAt projects total session memory at n bound clients under
// shared-image binding: one image plus n copy-on-write overlays.
func (p MemoryPlan) SharedBytesAt(n int) int {
	if n <= 0 {
		return 0
	}
	return p.SharedImageBytes + n*p.PerSessionBytes
}

// PrivateBytesAt projects the same fleet under private-copy binding.
func (p MemoryPlan) PrivateBytesAt(n int) int {
	if n <= 0 {
		return 0
	}
	return n * p.PrivateCopyBytes
}

// Savings returns the private/shared footprint ratio at n clients (how many
// times more memory private-copy binding needs); 0 when either side is
// degenerate. The ratio approaches PrivateCopyBytes/PerSessionBytes as n
// grows, so for sessions that touch few pages it keeps improving with scale.
func (p MemoryPlan) Savings(n int) float64 {
	shared := p.SharedBytesAt(n)
	private := p.PrivateBytesAt(n)
	if shared <= 0 || private <= 0 {
		return 0
	}
	return float64(private) / float64(shared)
}

// MaxSessions returns how many sessions fit in budgetBytes of server memory
// under shared-image binding (the admission-control sizing question); -1
// means unbounded (sessions add no private bytes).
func (p MemoryPlan) MaxSessions(budgetBytes int) int {
	rest := budgetBytes - p.SharedImageBytes
	if rest < 0 {
		return 0
	}
	if p.PerSessionBytes <= 0 {
		return -1
	}
	return rest / p.PerSessionBytes
}
