package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/tiers"
)

// tieredBenchTopo is the topology the tier experiments run on: a pool of
// modest edge servers behind the access link and one fast, slot-rich
// cloud server behind the WAN. The asymmetry matters — a small cloud
// saturates under the diurnal burst (demotion pressure), and a wide edge
// drains its queues between bursts (promotion windows).
func tieredBenchTopo(mode tiers.Mode) *tiers.Topology {
	topo := tiers.Default(4, 1)
	topo.Edge.Slots = 2
	topo.Cloud.Slots = 4
	topo.Mode = mode
	return topo
}

// tieredBenchConfig is the workload cell the tier experiments share:
// tasks small enough that the WAN round trip is a real fraction of the
// execution saving, under a diurnal curve that alternates burst and
// drain phases across the tiers.
func tieredBenchConfig(clients int, mode tiers.Mode) Config {
	cfg := TieredConfig(clients, tieredBenchTopo(mode))
	cfg.RequestsPerClient = 20
	cfg.Workload.TmMin = 200 * simtime.Millisecond
	cfg.Workload.TmMax = 1 * simtime.Second
	cfg.Workload.MemMin = 64 << 10
	cfg.Workload.MemMax = 512 << 10
	cfg.Workload.DiurnalAmp = 0.6
	cfg.Workload.DiurnalPeriod = 10 * simtime.Second
	return cfg
}

func TestTieredConfigValidation(t *testing.T) {
	ok := tieredBenchConfig(8, tiers.ThreeWay)
	if err := ok.Validate(); err != nil {
		t.Fatalf("tiered default invalid: %v", err)
	}
	bad := ok
	bad.Policy = Random
	if err := bad.Validate(); err == nil {
		t.Error("tiered config accepted a non-est-aware policy")
	}
	bad = ok
	bad.Servers = bad.Servers[:len(bad.Servers)-1]
	if err := bad.Validate(); err == nil {
		t.Error("tiered config accepted a pool smaller than the topology")
	}
	bad = ok
	bad.Tiers = &tiers.Topology{Mode: "bogus"}
	if err := bad.Validate(); err == nil {
		t.Error("tiered config accepted an invalid topology")
	}
}

func TestTieredRunDeterministic(t *testing.T) {
	cfg := tieredBenchConfig(24, tiers.ThreeWay)
	a := marshalResult(t, cfg)
	b := marshalResult(t, cfg)
	if string(a) != string(b) {
		t.Error("tiered runs with identical config diverged")
	}
}

// TestTieredAccounting: every request completes down exactly one path,
// every completed offload lands on exactly one tier, and the tier fields
// appear only on tiered runs (the committed flat-fleet benchmark JSON
// must stay byte-identical).
func TestTieredAccounting(t *testing.T) {
	res, err := Run(tieredBenchConfig(48, tiers.ThreeWay))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Offloads + res.Declines + res.Sheds + res.Fallbacks; got != res.Requests {
		t.Errorf("paths sum to %d, want %d requests", got, res.Requests)
	}
	if got := res.EdgeOffloads + res.CloudOffloads; got != res.Offloads {
		t.Errorf("tier completions sum to %d, want %d offloads", got, res.Offloads)
	}
	if res.TierMode != string(tiers.ThreeWay) || res.EdgeServers != 4 || res.CloudServers != 1 {
		t.Errorf("tier geometry fields wrong: mode=%q edge=%d cloud=%d",
			res.TierMode, res.EdgeServers, res.CloudServers)
	}
	if res.QueueWaitEdge == nil || res.QueueWaitCloud == nil {
		t.Error("per-tier queue-wait histograms missing on a tiered run")
	}

	flat, err := Run(DefaultConfig(8, 2, EstAware))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tier_mode", "edge_offloads", "queue_wait_edge_hist", "promotions"} {
		if strings.Contains(string(b), key) {
			t.Errorf("untiered result JSON leaks tier field %q", key)
		}
	}
}

// TestTierModeMasks: the static baselines must be genuinely static —
// edge-only never touches the cloud, cloud-only never touches the edge,
// and neither migrates across tiers.
func TestTierModeMasks(t *testing.T) {
	for _, tc := range []struct {
		mode tiers.Mode
	}{{tiers.EdgeOnly}, {tiers.CloudOnly}} {
		res, err := Run(tieredBenchConfig(48, tc.mode))
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		if tc.mode == tiers.EdgeOnly && res.CloudOffloads != 0 {
			t.Errorf("edge-only completed %d offloads on the cloud", res.CloudOffloads)
		}
		if tc.mode == tiers.CloudOnly && res.EdgeOffloads != 0 {
			t.Errorf("cloud-only completed %d offloads on the edge", res.EdgeOffloads)
		}
		if res.Promotions != 0 || res.Demotions != 0 {
			t.Errorf("%s: static mode migrated across tiers (%d promotions, %d demotions)",
				tc.mode, res.Promotions, res.Demotions)
		}
	}
}

// TestTieredMigrationFires: non-vacuity of the cross-tier machinery —
// under burst overshoot the fleet must actually demote saturated-edge
// arrivals and promote backlogged cloud work, not just carry the code.
func TestTieredMigrationFires(t *testing.T) {
	res, err := Run(tieredBenchConfig(96, tiers.ThreeWay))
	if err != nil {
		t.Fatal(err)
	}
	if res.Promotions == 0 {
		t.Error("no promotions fired: the freed-edge pull path is vacuous")
	}
	if res.Demotions == 0 {
		t.Error("no demotions fired: the saturated-edge forward path is vacuous")
	}
}

// TestThreeWayBeatsStaticTiers is the in-test version of the committed
// benchmark gate: across load levels, 3-way placement must hold both
// aggregate tails at or under each static baseline.
func TestThreeWayBeatsStaticTiers(t *testing.T) {
	loads := []int{24, 48, 96}
	agg := func(mode tiers.Mode) (p99, geo float64) {
		for _, n := range loads {
			res, err := Run(tieredBenchConfig(n, mode))
			if err != nil {
				t.Fatalf("%s n=%d: %v", mode, n, err)
			}
			p99 += res.P99Ms
			geo += res.GeomeanMs
		}
		return p99 / float64(len(loads)), geo / float64(len(loads))
	}
	p3, g3 := agg(tiers.ThreeWay)
	pe, ge := agg(tiers.EdgeOnly)
	pc, gc := agg(tiers.CloudOnly)
	if p3 > pe || p3 > pc {
		t.Errorf("3way aggregate p99 %.1fms not <= edge-only %.1fms and cloud-only %.1fms", p3, pe, pc)
	}
	if g3 > ge || g3 > gc {
		t.Errorf("3way aggregate geomean %.1fms not <= edge-only %.1fms and cloud-only %.1fms", g3, ge, gc)
	}
}

// TestTierSmoke is the make tiersmoke gate: one mid-load tiered cell run
// through the sequential and sharded engines must agree byte for byte
// while exercising both migration directions, and the 3-way placement
// must beat both static baselines on that cell's geomean.
func TestTierSmoke(t *testing.T) {
	cfg := tieredBenchConfig(96, tiers.ThreeWay)
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		c := cfg
		c.Shards = shards
		got := marshalResult(t, c)
		if string(got) != string(refJSON) {
			t.Errorf("shards=%d diverged from the sequential tiered reference", shards)
		}
	}
	if ref.Promotions == 0 && ref.Demotions == 0 {
		t.Error("tier smoke cell never migrated: the smoke is vacuous")
	}
	for _, mode := range []tiers.Mode{tiers.EdgeOnly, tiers.CloudOnly} {
		c := tieredBenchConfig(96, mode)
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if ref.GeomeanMs > res.GeomeanMs {
			t.Errorf("3way geomean %.1fms worse than %s %.1fms on the smoke cell",
				ref.GeomeanMs, mode, res.GeomeanMs)
		}
	}
}
