package fleet

import (
	"fmt"

	"repro/internal/simtime"
)

// The sharded parallel engine.
//
// Clients partition into contiguous shards, each owning a private event
// heap over its clients' ready events. Execution alternates between two
// phases under a conservative time-window barrier on the shared simtime
// clock:
//
//   - parallel phase: every shard drains its mailbox of completions
//     (doneMsg), then processes its ready events up to the window
//     horizon, appending the resulting decision intents to its outbox in
//     (t, lane, seq) order;
//   - serial phase: the coordinator merges the sorted outboxes with its
//     own server-lane event queue and feeds the shared machine in exact
//     global key order, mailing completions back to the owning shards.
//
// The horizon is min-pending + lookahead, where the lookahead is the
// cheapest possible chain from any processed event back to a client's
// next ready event (Config.lookahead: scaled think floor plus the cheaper
// of a local re-execution and a reply leg). No message generated inside a
// window can therefore target an instant before the window's end, which
// is the conservative-synchronization argument: every shard sees every
// event it must process before it crosses the horizon, and the serial
// phase replays the sequential engine's total order exactly. Client-side
// work is order-free across clients (clientState is private per client),
// so the engines are bit-identical for every shard count — enforced by
// tests, not just argued.
type shard struct {
	id    int
	lo    int32 // first client id owned (inclusive)
	hi    int32 // one past the last client id owned
	q     *schedQueue
	inbox []doneMsg // completions mailed by the coordinator, drained at phase start
	out   []intent  // decision intents for the coordinator, naturally key-ordered
	st    *Stats
	maxT  simtime.PS
}

// step runs one parallel phase: deliver pending completions, then process
// every ready event before the horizon.
func (sh *shard) step(cfg *Config, clients []clientState, horizon simtime.PS) {
	for _, msg := range sh.inbox {
		next := applyDone(cfg, &clients[msg.ci], msg, sh.st)
		sh.q.sched(next, evReady, msg.ci, 0, nil)
	}
	sh.inbox = sh.inbox[:0]
	for !sh.q.empty() && sh.q.top().t < horizon {
		ev := sh.q.pop()
		if ev.t > sh.maxT {
			sh.maxT = ev.t
		}
		if in, ok := issueReady(cfg, &clients[ev.lane], ev.lane, ev.t, sh.st); ok {
			sh.out = append(sh.out, in)
		}
	}
}

func runSharded(cfg Config) (*Result, error) {
	nShards := cfg.Shards
	if nShards > cfg.Clients {
		nShards = cfg.Clients
	}
	clients, links, err := buildClients(&cfg)
	if err != nil {
		return nil, err
	}

	shards := make([]*shard, nShards)
	owner := make([]int32, cfg.Clients)
	for s := range shards {
		lo := int32(s * cfg.Clients / nShards)
		hi := int32((s + 1) * cfg.Clients / nShards)
		sh := &shard{id: s, lo: lo, hi: hi, q: newSchedQueue(lo, int(hi-lo)), st: NewStats()}
		for ci := lo; ci < hi; ci++ {
			owner[ci] = int32(s)
			// Stagger the first wave by one think time per client — the
			// same draw, from the same per-entity stream, as sequential.
			sh.q.sched(nextThink(&cfg, &clients[ci], 0), evReady, ci, 0, nil)
		}
		shards[s] = sh
	}

	nc := int32(cfg.Clients)
	cst := NewStats()
	m := newMachine(&cfg, links, cst)
	cq := newWindowQueue(nc, len(cfg.Servers))
	m.sched = func(t simtime.PS, kind uint8, si int32, j *job) {
		cq.sched(t, kind, nc+si, si, j)
	}
	m.emit = func(msg doneMsg) {
		sh := shards[owner[msg.ci]]
		sh.inbox = append(sh.inbox, msg)
	}
	m.scheduleFaults()

	la := cfg.lookahead()
	thinkFloor := cfg.thinkFloor()

	// Workers block between phases; channel send/recv orders every access
	// to shard state, so coordinator reads of heaps/outboxes and writes
	// to inboxes never race the workers.
	start := make([]chan simtime.PS, nShards)
	done := make(chan int, nShards)
	for i := range start {
		start[i] = make(chan simtime.PS, 1)
	}
	for i, sh := range shards {
		go func(i int, sh *shard) {
			for horizon := range start[i] {
				sh.step(&cfg, clients, horizon)
				done <- i
			}
		}(i, sh)
	}
	defer func() {
		for i := range start {
			close(start[i])
		}
	}()

	var coordMax simtime.PS
	for {
		// The earliest pending instant anywhere: shard heaps, the
		// coordinator queue, and undelivered completions (whose ready
		// events cannot fire before done + the scaled think floor).
		tmin := cq.minPending()
		idle := !cq.pending()
		for _, sh := range shards {
			if !sh.q.empty() {
				idle = false
				if t := sh.q.top().t; t < tmin {
					tmin = t
				}
			}
			for i := range sh.inbox {
				idle = false
				if b := sh.inbox[i].done + thinkFloor; b < tmin {
					tmin = b
				}
			}
		}
		if idle {
			break
		}
		horizon := tmin + la
		cq.advance(horizon)

		for i := range shards {
			start[i] <- horizon
		}
		for range shards {
			<-done
		}

		// Serial phase: feed the machine the union of shard intents and
		// coordinator events in global (t, lane, seq) order. Outboxes are
		// already sorted (shards pop in key order); an intent's implicit
		// lane is its client id, which sorts before every server lane, so
		// at equal instants intents win — exactly as ready events beat
		// server events in the sequential heap.
		idx := make([]int, nShards)
		for {
			bi := -1
			var bt simtime.PS
			var bc int32
			for s, sh := range shards {
				if idx[s] >= len(sh.out) {
					continue
				}
				in := &sh.out[idx[s]]
				if bi < 0 || in.t < bt || (in.t == bt && in.ci < bc) {
					bi, bt, bc = s, in.t, in.ci
				}
			}
			haveEv := !cq.cur.empty() && cq.cur.top().t < horizon
			if bi < 0 && !haveEv {
				break
			}
			if bi >= 0 && (!haveEv || bt <= cq.cur.top().t) {
				in := shards[bi].out[idx[bi]]
				idx[bi]++
				if in.t > coordMax {
					coordMax = in.t
				}
				m.handleIntent(in)
				continue
			}
			ev := cq.cur.pop()
			if ev.t > coordMax {
				coordMax = ev.t
			}
			m.handleServerEvent(ev)
		}
		for _, sh := range shards {
			sh.out = sh.out[:0]
		}
	}

	// Per-shard end-of-run invariants: a drained simulation must leave no
	// shard holding queued events, undelivered mail, or unissued requests
	// (the per-server reserved==0/busy==0 checks run in finishRun).
	total := NewStats()
	total.Merge(cst)
	now := coordMax
	for s, sh := range shards {
		if !sh.q.empty() || len(sh.inbox) != 0 {
			return nil, fmt.Errorf("fleet: shard %d ended with %d queued events, %d undelivered completions",
				s, sh.q.len(), len(sh.inbox))
		}
		for ci := sh.lo; ci < sh.hi; ci++ {
			if clients[ci].remaining != 0 {
				return nil, fmt.Errorf("fleet: shard %d client %d ended holding %d unissued requests",
					s, ci, clients[ci].remaining)
			}
		}
		total.Merge(sh.st)
		if sh.maxT > now {
			now = sh.maxT
		}
	}
	return m.finishRun(total, now)
}
