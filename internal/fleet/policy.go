package fleet

import (
	"fmt"

	"repro/internal/simtime"
)

// Policy names a dispatcher load-balancing policy.
type Policy string

const (
	// Random routes each request to a uniformly random server.
	Random Policy = "random"
	// RoundRobin cycles through the pool in order.
	RoundRobin Policy = "round-robin"
	// LeastLoaded picks the server with the least outstanding work per
	// slot (queue depth weighted by service time), ignoring the request
	// itself and the client's link.
	LeastLoaded Policy = "least-loaded"
	// EstAware picks the server minimizing the *estimated remote
	// completion time of this request*: transfer over the client's own
	// link, the server's current queueing delay, and execution at that
	// server's speed — Equation 1 extended with live load
	// (estimate.Params.RemoteTime).
	EstAware Policy = "est-aware"
)

// Policies lists every dispatch policy, in comparison order.
func Policies() []Policy { return []Policy{Random, RoundRobin, LeastLoaded, EstAware} }

// ParsePolicy resolves a policy name.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("fleet: unknown policy %q (want random, round-robin, least-loaded or est-aware)", s)
}

// dispatcher routes offload requests to servers under one policy.
type dispatcher struct {
	policy Policy
	rng    rng // the random policy's private stream
	rr     int // round-robin cursor
}

// pick chooses the server for a request a client decides to offload at
// instant now: tm is the task's mobile execution time, up/down the
// transfer times over this client's link. It returns the server index and
// the estimated queueing delay there (the load signal the gate charges).
func (d *dispatcher) pick(servers []*server, now simtime.PS, tm simtime.PS, up, down simtime.PS) (int, simtime.PS) {
	switch d.policy {
	case Random:
		i := d.rng.intn(len(servers))
		return i, servers[i].estWait(now)
	case RoundRobin:
		i := d.rr % len(servers)
		d.rr++
		return i, servers[i].estWait(now)
	case LeastLoaded:
		best, bestWait := 0, servers[0].estWait(now)
		for i := 1; i < len(servers); i++ {
			if w := servers[i].estWait(now); w < bestWait {
				best, bestWait = i, w
			}
		}
		return best, bestWait
	default: // EstAware
		best := 0
		bestWait := servers[0].estWait(now)
		bestTotal := up + bestWait + servers[0].execTime(tm) + down
		for i := 1; i < len(servers); i++ {
			w := servers[i].estWait(now)
			total := up + w + servers[i].execTime(tm) + down
			if total < bestTotal {
				best, bestWait, bestTotal = i, w, total
			}
		}
		return best, bestWait
	}
}
