package fleet

import (
	"fmt"

	"repro/internal/simtime"
)

// Policy names a dispatcher load-balancing policy.
type Policy string

const (
	// Random routes each request to a uniformly random server.
	Random Policy = "random"
	// RoundRobin cycles through the pool in order.
	RoundRobin Policy = "round-robin"
	// LeastLoaded picks the server with the least outstanding work per
	// slot (queue depth weighted by service time), ignoring the request
	// itself and the client's link.
	LeastLoaded Policy = "least-loaded"
	// EstAware picks the server minimizing the *estimated remote
	// completion time of this request*: transfer over the client's own
	// link, the server's current queueing delay, and execution at that
	// server's speed — Equation 1 extended with live load
	// (estimate.Params.RemoteTime).
	EstAware Policy = "est-aware"
)

// Policies lists every dispatch policy, in comparison order.
func Policies() []Policy { return []Policy{Random, RoundRobin, LeastLoaded, EstAware} }

// ParsePolicy resolves a policy name.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("fleet: unknown policy %q (want random, round-robin, least-loaded or est-aware)", s)
}

// dispatcher routes offload requests to servers under one policy.
type dispatcher struct {
	policy Policy
	rng    rng // the random policy's private stream
	rr     int // round-robin cursor
}

// pick chooses the server for a request a client decides to offload at
// instant now: tm is the task's mobile execution time, up/down the
// transfer times over this client's link. It returns the server index and
// the estimated queueing delay there (the load signal the gate charges).
// Crashed and draining servers are out of rotation for every policy; with
// nobody up, pick returns -1 and the client runs the task locally.
func (d *dispatcher) pick(servers []*server, now simtime.PS, tm simtime.PS, up, down simtime.PS) (int, simtime.PS) {
	return d.pickAmong(servers, nil, now, tm, up, down)
}

// pickAmong is pick restricted to a candidate index subset (nil means
// the whole pool). The tiered dispatcher runs one pick per tier and
// lets the 3-way placement gate arbitrate between the winners.
func (d *dispatcher) pickAmong(servers []*server, candidates []int, now simtime.PS, tm simtime.PS, up, down simtime.PS) (int, simtime.PS) {
	var alive []int
	if candidates == nil {
		alive = make([]int, 0, len(servers))
		for i, s := range servers {
			if !s.down {
				alive = append(alive, i)
			}
		}
	} else {
		alive = make([]int, 0, len(candidates))
		for _, i := range candidates {
			if !servers[i].down {
				alive = append(alive, i)
			}
		}
	}
	if len(alive) == 0 {
		return -1, 0
	}
	switch d.policy {
	case Random:
		i := alive[d.rng.intn(len(alive))]
		return i, servers[i].estWait(now)
	case RoundRobin:
		i := alive[d.rr%len(alive)]
		d.rr++
		return i, servers[i].estWait(now)
	case LeastLoaded:
		best, bestWait := alive[0], servers[alive[0]].estWait(now)
		for _, i := range alive[1:] {
			if w := servers[i].estWait(now); w < bestWait {
				best, bestWait = i, w
			}
		}
		return best, bestWait
	default: // EstAware
		best := alive[0]
		bestWait := servers[best].estWait(now)
		bestTotal := up + bestWait + servers[best].execTime(tm) + down
		for _, i := range alive[1:] {
			w := servers[i].estWait(now)
			total := up + w + servers[i].execTime(tm) + down
			if total < bestTotal {
				best, bestWait, bestTotal = i, w, total
			}
		}
		return best, bestWait
	}
}
