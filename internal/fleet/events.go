package fleet

import (
	"repro/internal/simtime"
)

// Event kinds of the discrete-event state machine.
const (
	evReady  uint8 = iota // a client is ready to issue its next request
	evArrive              // an offload request reaches its server
	evFinish              // a server slot completes a job
	evCrash               // a scheduled server crash: in-flight state is lost
	evDrain               // a scheduled drain: the server stops taking work
)

// event is one scheduled occurrence. Its ordering key (t, lane, seq) is
// intrinsic to the simulation rather than an artifact of a global push
// counter: the lane is the entity the event belongs to (client id for
// ready events, clients+serverIndex for server-side events) and seq is
// the per-lane push ordinal. Both engines assign identical keys to
// identical logical events, which is what lets the sharded engine merge
// per-shard streams back into the sequential engine's exact total order —
// and why equal-time events tie-break by (lane, seq), not by whichever
// heap insertion happened first.
type event struct {
	t    simtime.PS
	j    *job
	lane int32
	seq  int32
	si   int32
	kind uint8
}

// before is the total event order (t, lane, seq).
func (a *event) before(b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	return a.seq < b.seq
}

// laneSeq hands out per-lane push ordinals for a contiguous lane range.
type laneSeq struct {
	base int32
	seqs []int32
}

func newLaneSeq(base int32, lanes int) laneSeq {
	return laneSeq{base: base, seqs: make([]int32, lanes)}
}

func (l *laneSeq) next(lane int32) int32 {
	s := l.seqs[lane-l.base]
	l.seqs[lane-l.base] = s + 1
	return s
}

// eventQueue is a plain binary min-heap over the (t, lane, seq) order.
// It replaces the old container/heap implementation: value-typed events
// avoid the interface boxing that allocated on every push, which matters
// when the pending set is hundreds of thousands of events.
type eventQueue struct {
	h []event
}

func (q *eventQueue) len() int    { return len(q.h) }
func (q *eventQueue) top() *event { return &q.h[0] }
func (q *eventQueue) empty() bool { return len(q.h) == 0 }

func (q *eventQueue) push(ev event) {
	q.h = append(q.h, ev)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.h[i].before(&q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	h := q.h
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.h = h[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return ev
}

func (q *eventQueue) siftDown(i int) {
	h := q.h
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && h[r].before(&h[c]) {
			c = r
		}
		if !h[c].before(&h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// schedQueue is an eventQueue that assigns lane ordinals at push time —
// the scheduling front-end used by the sequential engine (all lanes) and
// by each shard (its own client lanes).
type schedQueue struct {
	eventQueue
	seq laneSeq
}

func newSchedQueue(base int32, lanes int) *schedQueue {
	return &schedQueue{seq: newLaneSeq(base, lanes)}
}

func (q *schedQueue) sched(t simtime.PS, kind uint8, lane, si int32, j *job) {
	q.push(event{t: t, lane: lane, seq: q.seq.next(lane), si: si, kind: kind, j: j})
}

// maxPS is the +infinity sentinel of the simulated clock.
const maxPS = simtime.PS(1<<63 - 1)

// windowQueue is the sharded coordinator's two-tier scheduler: a small
// heap holds only the events due inside the current conservative window,
// everything later sits in an unordered overflow buffer that is swept
// once per window. The sequential engine's single heap spans every
// pending event (~one per client), so each operation walks a
// cache-hostile log N path; here the heap stays window-sized and
// L2-resident, and the sweep touches each far-future event once per
// window instead of once per heap level. Ordering is unaffected: events
// enter the heap before their window is processed, and the heap resolves
// the full (t, lane, seq) key.
type windowQueue struct {
	cur     eventQueue
	future  []event
	fmin    simtime.PS
	horizon simtime.PS
	seq     laneSeq
}

func newWindowQueue(base int32, lanes int) *windowQueue {
	return &windowQueue{fmin: maxPS, seq: newLaneSeq(base, lanes)}
}

func (q *windowQueue) sched(t simtime.PS, kind uint8, lane, si int32, j *job) {
	ev := event{t: t, lane: lane, seq: q.seq.next(lane), si: si, kind: kind, j: j}
	if t < q.horizon {
		q.cur.push(ev)
		return
	}
	q.future = append(q.future, ev)
	if t < q.fmin {
		q.fmin = t
	}
}

// advance opens the window ending at horizon: due overflow events move
// into the heap (swap-removal; their relative order is restored by the
// heap's full key).
func (q *windowQueue) advance(horizon simtime.PS) {
	q.horizon = horizon
	if q.fmin >= horizon {
		return
	}
	fmin := maxPS
	f := q.future
	for i := 0; i < len(f); {
		if f[i].t < horizon {
			q.cur.push(f[i])
			f[i] = f[len(f)-1]
			f = f[:len(f)-1]
			continue
		}
		if f[i].t < fmin {
			fmin = f[i].t
		}
		i++
	}
	q.future = f
	q.fmin = fmin
}

// minPending is the earliest event anywhere in the queue (maxPS if empty).
func (q *windowQueue) minPending() simtime.PS {
	min := q.fmin
	if !q.cur.empty() && q.cur.top().t < min {
		min = q.cur.top().t
	}
	return min
}

func (q *windowQueue) pending() bool { return !q.cur.empty() || len(q.future) > 0 }
