package offrt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/simtime"
)

// buildChatty builds a heavy task that prints a running digest every
// round: the per-round r_printf calls are remote-service boundaries, so
// the server heartbeats steadily through the whole task instead of only
// at its edges. Migration tests need exactly that — a fault scheduled
// mid-task is detected at the next beat, with substantial work left.
func buildChatty() *ir.Module {
	mod := ir.NewModule("chatty")
	b := ir.NewBuilder(mod)
	data := b.GlobalVar("data", ir.Ptr(ir.I64))

	crunch := b.NewFunc("crunch", ir.I64, ir.P("n", ir.I32))
	{
		acc := b.Alloca(ir.I64)
		b.Store(acc, ir.Int64(0))
		arr := b.Load(data)
		b.For("rounds", ir.Int(0), ir.Int(40), ir.Int(1), func(r ir.Value) {
			b.For("scan", ir.Int(0), b.Convert(ir.ConvZExt, b.F.Params[0], ir.I32), ir.Int(1), func(i ir.Value) {
				p := b.Index(arr, i)
				v := b.Load(p)
				nv := b.Add(b.Mul(v, ir.Int64(31)), ir.Int64(7))
				b.Store(p, nv)
				b.Store(acc, b.Xor(b.Load(acc), nv))
			})
			b.CallExtern(ir.ExternPrintf, b.Str("round %d\n"), b.Load(acc))
		})
		b.Ret(b.Load(acc))
	}

	b.NewFunc("main", ir.I32)
	n := int64(1024)
	raw := b.CallExtern(ir.ExternMalloc, ir.Int(8*n))
	arr := b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64))
	b.Store(data, arr)
	b.For("fill", ir.Int(0), ir.Int(n), ir.Int(1), func(i ir.Value) {
		b.Store(b.Index(arr, i), b.Convert(ir.ConvSExt, i, ir.I64))
	})
	d := b.Call(crunch, ir.Int(n))
	b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), d)
	b.Ret(ir.Int(0))
	b.Finish()
	return mod
}

type progEnv struct {
	link       *netsim.Link
	mobile     *interp.Machine
	server     *interp.Machine
	serverProg *interp.Program
	sess       *Session
	io         *interp.StdIO
}

// setupProg is the shared-Program variant of setup: both machines are
// copy-on-write instances of compiled Programs, which is what checkpoint
// and restore require (a migration target re-binds the immutable Program
// image for free, so only private pages ship).
func setupProg(t *testing.T, link *netsim.Link, pol Policy, extra ...Option) *progEnv {
	t.Helper()
	mod := buildChatty()

	work := mod.Clone("prof")
	mobSpec := arch.ARM32()
	ir.Lower(work, mobSpec, mobSpec)
	pm, _ := interp.NewMachine(interp.Config{Name: "prof", Spec: mobSpec, Mod: work, CostScale: 3000, InitUVAGlobals: true})
	prof, err := profile.Run(pm)
	if err != nil {
		t.Fatal(err)
	}

	opt := compiler.Default(link.BandwidthBps)
	cres, err := compiler.Compile(mod, prof, opt)
	if err != nil {
		t.Fatal(err)
	}

	mobileProg, err := interp.Compile(cres.Mobile, interp.CompileConfig{
		Name: "mobile", Spec: opt.Mobile, Std: opt.Mobile,
		FuncBase: mem.FuncBaseMobile, InitUVAGlobals: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	serverProg, err := interp.Compile(cres.Server, interp.CompileConfig{
		Name: "server", Spec: opt.Server, Std: opt.Mobile,
		FuncBase: mem.FuncBaseServer, ShuffleFuncs: true, ShuffleGlobals: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	io := interp.NewStdIO(nil)
	mobile := mobileProg.NewInstance(interp.WithIO(io), interp.WithCostScale(3000))
	server := serverProg.NewInstance(interp.WithCostScale(3000))

	var tasks []TaskSpec
	for _, tg := range cres.Targets {
		tasks = append(tasks, TaskSpec{TaskID: tg.TaskID, Name: tg.Name, TimePerInvocation: tg.TimePerInvocation, MemBytes: tg.MemBytes})
	}
	opts := append([]Option{WithTasks(tasks...), WithPolicy(pol)}, extra...)
	sess, err := NewSession(mobile, server, link, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &progEnv{link: link, mobile: mobile, server: server, serverProg: serverProg, sess: sess, io: io}
}

// cleanRun runs the fault-free reference and returns its output, memory
// digest, and the [start, start+dur) window of the (single) offload, so
// fault schedules can target the offload's midpoint deterministically.
func cleanRun(t *testing.T) (out string, digest uint64, start, dur simtime.PS) {
	t.Helper()
	tr := obs.NewTracer(0)
	env := setupProg(t, netsim.Fast80211AC(), Policy{ForceOffload: true}, WithTracer(tr))
	if code, err := env.sess.RunMobile(); err != nil || code != 0 {
		t.Fatalf("clean run: code %d, err %v", code, err)
	}
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KOffload {
			start, dur = ev.Time, ev.Dur
		}
	}
	if dur == 0 {
		t.Fatal("clean run: no offload traced")
	}
	return env.io.Out.String(), env.sess.MemDigest(), start, dur
}

// TestMigrationSmoke is the `make migsmoke` gate: force one mid-offload
// migration (a scheduled drain halfway through the task) and prove the
// migrated run is bit-identical to the fault-free one — output and final
// memory digest — while the checkpoint scales with dirty pages, not with
// the program's footprint.
func TestMigrationSmoke(t *testing.T) {
	wantOut, wantDig, start, dur := cleanRun(t)

	plan := &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Drain, Server: 0, Start: start + dur/2},
	}}
	env := setupProg(t, netsim.Fast80211AC(), Policy{ForceOffload: true},
		WithServerFaults(plan), WithMigration(Migration{Spares: 1, HealthSlack: 4, HealthFloor: 2 * simtime.Millisecond, Strikes: 3}))
	if code, err := env.sess.RunMobile(); err != nil || code != 0 {
		t.Fatalf("migrated run: code %d, err %v", code, err)
	}

	st := env.sess.Stats
	if st.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1 (Aborts %d, Fallbacks %d)", st.Migrations, st.Aborts, st.Fallbacks)
	}
	if st.Fallbacks != 0 || st.CrashRetries != 0 {
		t.Errorf("Fallbacks = %d, CrashRetries = %d, want 0/0", st.Fallbacks, st.CrashRetries)
	}
	if got := env.io.Out.String(); got != wantOut {
		t.Errorf("migrated output differs:\n got %q\nwant %q", got, wantOut)
	}
	if got := env.sess.MemDigest(); got != wantDig {
		t.Errorf("migrated digest = %#x, want %#x", got, wantDig)
	}

	// Migration cost scales with mutated state, not footprint: the shipped
	// checkpoint must stay below the mobile's full resident page set.
	footprint := len(env.mobile.Mem.PresentPages())
	if st.MigratedPages <= 0 || st.MigratedPages >= footprint {
		t.Errorf("MigratedPages = %d, want in (0, %d)", st.MigratedPages, footprint)
	}
	if st.MigratedBytes <= 0 {
		t.Errorf("MigratedBytes = %d, want > 0", st.MigratedBytes)
	}

	// A freshly-bound instance has mutated nothing: its checkpoint ships
	// zero pages regardless of how large the Program image is.
	fresh, err := env.serverProg.NewInstance().CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.NumPages() != 0 {
		t.Errorf("fresh instance checkpoint ships %d pages, want 0", fresh.NumPages())
	}
}

// TestCrashRetryOnSpare: a crash destroys the in-flight state, so there
// is nothing to migrate — but with a spare standing by the mobile re-sends
// the offload from scratch instead of degrading to local execution.
func TestCrashRetryOnSpare(t *testing.T) {
	wantOut, wantDig, start, dur := cleanRun(t)

	plan := &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Crash, Server: 0, Start: start + dur/2},
	}}
	env := setupProg(t, netsim.Fast80211AC(), Policy{ForceOffload: true},
		WithServerFaults(plan), WithMigration(Migration{Spares: 1, HealthSlack: 4, HealthFloor: 2 * simtime.Millisecond, Strikes: 3}))
	if code, err := env.sess.RunMobile(); err != nil || code != 0 {
		t.Fatalf("crash run: code %d, err %v", code, err)
	}
	st := env.sess.Stats
	if st.CrashRetries != 1 || st.Migrations != 0 || st.Fallbacks != 0 {
		t.Fatalf("CrashRetries/Migrations/Fallbacks = %d/%d/%d, want 1/0/0 (Aborts %d)",
			st.CrashRetries, st.Migrations, st.Fallbacks, st.Aborts)
	}
	if got := env.io.Out.String(); got != wantOut {
		t.Errorf("retried output differs:\n got %q\nwant %q", got, wantOut)
	}
	if got := env.sess.MemDigest(); got != wantDig {
		t.Errorf("retried digest = %#x, want %#x", got, wantDig)
	}
}

// TestCrashFallbackWithoutSpare keeps the paper's baseline behavior: no
// migration layer, a crashed server, and the mobile's own deadline route
// the task back to local execution with identical results.
func TestCrashFallbackWithoutSpare(t *testing.T) {
	wantOut, wantDig, start, dur := cleanRun(t)

	plan := &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Crash, Server: 0, Start: start + dur/2},
	}}
	env := setupProg(t, netsim.Fast80211AC(), Policy{ForceOffload: true}, WithServerFaults(plan))
	if code, err := env.sess.RunMobile(); err != nil || code != 0 {
		t.Fatalf("fallback run: code %d, err %v", code, err)
	}
	st := env.sess.Stats
	if st.Fallbacks != 1 || st.Migrations != 0 || st.CrashRetries != 0 {
		t.Fatalf("Fallbacks/Migrations/CrashRetries = %d/%d/%d, want 1/0/0", st.Fallbacks, st.Migrations, st.CrashRetries)
	}
	if got := env.io.Out.String(); got != wantOut {
		t.Errorf("fallback output differs:\n got %q\nwant %q", got, wantOut)
	}
	if got := env.sess.MemDigest(); got != wantDig {
		t.Errorf("fallback digest = %#x, want %#x", got, wantDig)
	}
}

// TestHealthDetectsSlowdown: a scheduled slowdown inflates heartbeat gaps
// past the EWMA deadline; after the configured consecutive strikes the
// session migrates away from the degraded host, and the run stays
// bit-identical.
func TestHealthDetectsSlowdown(t *testing.T) {
	wantOut, wantDig, start, dur := cleanRun(t)

	tr := obs.NewTracer(0)
	plan := &faults.ServerPlan{Events: []faults.ServerEvent{
		{Kind: faults.Slowdown, Server: 0, Start: start + dur/4, End: start + 100*dur, Factor: 20},
	}}
	env := setupProg(t, netsim.Fast80211AC(), Policy{ForceOffload: true},
		WithTracer(tr), WithServerFaults(plan),
		WithMigration(Migration{Spares: 1, HealthSlack: 4, HealthFloor: simtime.Microsecond, Strikes: 2}))
	if code, err := env.sess.RunMobile(); err != nil || code != 0 {
		t.Fatalf("slowdown run: code %d, err %v", code, err)
	}
	var overruns int
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KHealth {
			overruns++
		}
	}
	if overruns == 0 {
		t.Error("no health overruns traced under a 20x slowdown")
	}
	st := env.sess.Stats
	if st.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1 (overruns %d, Fallbacks %d)", st.Migrations, overruns, st.Fallbacks)
	}
	if got := env.io.Out.String(); got != wantOut {
		t.Errorf("slowdown output differs:\n got %q\nwant %q", got, wantOut)
	}
	if got := env.sess.MemDigest(); got != wantDig {
		t.Errorf("slowdown digest = %#x, want %#x", got, wantDig)
	}
}

// TestCheckpointPayloadRoundTrip pins the MsgCheckpoint sub-encoding: a
// full encode -> wire frame -> decode cycle must reproduce the memory
// checkpoint, the I/O journal and the batched-output buffer exactly.
func TestCheckpointPayloadRoundTrip(t *testing.T) {
	src := mem.New()
	src.InstallPage(mem.PageNum(mem.HeapBase), []byte{1, 2, 3})
	src.InstallPage(mem.PageNum(mem.HeapBase)+1, []byte{4, 5, 6})
	base := mem.Snapshot(src)
	m := mem.NewOverlay(base)
	m.TrackDirty = true
	for i := 0; i < 5; i++ {
		if err := m.WriteUint(mem.HeapBase+uint32(i)*mem.PageSize, 8, uint64(i)*0x0101_0101); err != nil {
			t.Fatal(err)
		}
	}
	m.Drop(mem.PageNum(mem.HeapBase) + 2)

	s := &Session{
		ioJournal: []string{"round 1\n", "", "round 2 with \x00 bytes\n"},
		outBuf:    []byte("partial batch"),
	}
	st := &interp.State{SP: 0xdead_bee0, Mem: m.Checkpoint()}
	msg := &Message{Kind: MsgCheckpoint, TaskID: 7, SP: st.SP, Data: s.encodeCheckpoint(st)}
	wire := msg.Encode()
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != MsgCheckpoint || got.TaskID != 7 {
		t.Fatalf("frame kind/task = %v/%d", got.Kind, got.TaskID)
	}
	restored, journal, outBuf, err := s.decodeCheckpoint(got)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SP != st.SP {
		t.Errorf("SP = %#x, want %#x", restored.SP, st.SP)
	}
	if len(journal) != len(s.ioJournal) {
		t.Fatalf("journal entries = %d, want %d", len(journal), len(s.ioJournal))
	}
	for i := range journal {
		if journal[i] != s.ioJournal[i] {
			t.Errorf("journal[%d] = %q, want %q", i, journal[i], s.ioJournal[i])
		}
	}
	if string(outBuf) != string(s.outBuf) {
		t.Errorf("outBuf = %q, want %q", outBuf, s.outBuf)
	}

	// Restoring the decoded checkpoint onto a fresh overlay of the same
	// image must reproduce the source memory exactly.
	fresh := mem.NewOverlay(base)
	fresh.Restore(restored.Mem)
	if a, b := fresh.Digest(), m.Digest(); a != b {
		t.Errorf("restored digest = %#x, want %#x", a, b)
	}
	if a, b := len(fresh.DirtyPages()), len(m.DirtyPages()); a != b {
		t.Errorf("restored dirty pages = %d, want %d", a, b)
	}

	// Truncated payloads must be rejected, not panic.
	for _, cut := range []int{1, 8, 20, len(msg.Data) - 1} {
		if cut >= len(msg.Data) {
			continue
		}
		bad := &Message{Kind: MsgCheckpoint, SP: st.SP, Data: msg.Data[:cut]}
		if _, _, _, err := s.decodeCheckpoint(bad); err == nil {
			t.Errorf("truncated payload (%d bytes) accepted", cut)
		}
	}
}
