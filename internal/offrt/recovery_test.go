package offrt

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// runClean runs the heavy program fault-free and returns its output and
// the mobile machine's final memory digest.
func runClean(t *testing.T, pol Policy) (string, uint64) {
	t.Helper()
	env := setup(t, netsim.Fast80211AC(), pol)
	code, err := env.sess.RunMobile()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean run exit code %d", code)
	}
	return env.io.Out.String(), env.sess.MemDigest()
}

func TestRetriesSurviveLossyLink(t *testing.T) {
	wantOut, wantMem := runClean(t, Policy{ForceOffload: true})

	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true},
		WithFaults(faults.MustInjector(faults.Plan{Seed: 11, DropRate: 0.2, CorruptRate: 0.05})))
	code, err := env.sess.RunMobile()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("faulted run exit code %d", code)
	}
	if got := env.io.Out.String(); got != wantOut {
		t.Errorf("faulted output diverged:\n got %q\nwant %q", got, wantOut)
	}
	if got := env.sess.MemDigest(); got != wantMem {
		t.Errorf("faulted memory digest %x != clean %x", got, wantMem)
	}
	if env.sess.Stats.Retries == 0 {
		t.Error("a 20% drop rate should force retransmissions")
	}
	if env.sess.LinkStats.Injector.Stats().Total() == 0 {
		t.Error("injector reported no faults")
	}
	// The lossy run pays for its retries in simulated time.
	clean := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	if _, err := clean.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if env.mobile.Clock <= clean.mobile.Clock {
		t.Errorf("lossy run (%v) should be slower than clean (%v)", env.mobile.Clock, clean.mobile.Clock)
	}
}

func TestTotalOutageFallsBackLocally(t *testing.T) {
	wantOut, wantMem := runClean(t, Policy{ForceOffload: true})

	tr := obs.NewTracer(0)
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true},
		WithTracer(tr),
		WithFaults(faults.MustInjector(faults.Plan{
			Outages: []faults.Window{{Start: 0, End: 1 << 62}},
		})))
	code, err := env.sess.RunMobile()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("outage run exit code %d", code)
	}
	if got := env.io.Out.String(); got != wantOut {
		t.Errorf("outage output diverged:\n got %q\nwant %q", got, wantOut)
	}
	if got := env.sess.MemDigest(); got != wantMem {
		t.Errorf("outage memory digest %x != clean %x", got, wantMem)
	}
	if env.sess.Stats.Fallbacks == 0 {
		t.Error("a dead link must force local fallback")
	}
	var fallbacks, retries, quarantines int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.KFallback:
			fallbacks++
		case obs.KRetry:
			retries++
		case obs.KQuarantine:
			quarantines++
		}
	}
	if fallbacks == 0 || retries == 0 || quarantines == 0 {
		t.Errorf("trace events: %d fallback.local, %d rpc.retry, %d gate.quarantine — all should be > 0",
			fallbacks, retries, quarantines)
	}
	if env.sess.quarantineUntil == 0 {
		t.Error("gate not quarantined after fallback")
	}
}

func TestMidTaskOutageAbortsAndRecovers(t *testing.T) {
	// NoPrefetch forces copy-on-demand page faults throughout the task, so
	// an outage opening mid-run catches the offload in flight: the server
	// aborts, finishes in ghost mode, and the mobile re-executes locally.
	wantOut, wantMem := runClean(t, Policy{ForceOffload: true, NoPrefetch: true})

	clean := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true, NoPrefetch: true})
	if _, err := clean.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	total := clean.mobile.Clock

	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true, NoPrefetch: true},
		WithFaults(faults.MustInjector(faults.Plan{
			Outages: []faults.Window{{Start: total / 4, End: 1 << 62}},
		})))
	code, err := env.sess.RunMobile()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("mid-task outage exit code %d", code)
	}
	if got := env.io.Out.String(); got != wantOut {
		t.Errorf("mid-task outage output diverged:\n got %q\nwant %q", got, wantOut)
	}
	if got := env.sess.MemDigest(); got != wantMem {
		t.Errorf("memory digest %x != clean %x", got, wantMem)
	}
	if env.sess.Stats.Aborts == 0 {
		t.Error("mid-task outage should abort the offload server-side")
	}
	if env.sess.Stats.Fallbacks == 0 {
		t.Error("aborted offload should fall back locally")
	}
	// Ghost mode must leave the server cold, exactly like a clean finalize.
	if got := len(env.server.Mem.PresentPages()); got != 0 {
		t.Errorf("server retains %d pages after aborted offload", got)
	}
}

func TestQuarantineDeclinesGate(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	defer env.sess.Shutdown()
	env.sess.quarantineUntil = env.mobile.Clock + simtime.Second
	declines := env.sess.Stats.Declines
	if env.sess.Gate(env.mobile, 1) {
		t.Error("quarantined gate offloaded (even ForceOffload must yield)")
	}
	if env.sess.Stats.Declines != declines+1 {
		t.Error("quarantine decline not counted")
	}
	// After the cool-down the gate recovers.
	env.mobile.Clock = env.sess.quarantineUntil
	if !env.sess.Gate(env.mobile, 1) {
		t.Error("gate still declining after the cool-down expired")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true},
		WithMetrics(obs.NewMetrics()))
	if _, err := env.sess.RunMobile(); err != nil { // RunMobile shuts down
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := env.sess.Shutdown(); err != nil {
			t.Fatalf("repeat Shutdown #%d: %v", i+1, err)
		}
	}
}

func TestShutdownSafeAfterServerExit(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{})
	env.sess.Start()
	// The server loop exits on its own (shutdown request outside Shutdown);
	// a Shutdown after that used to deadlock pushing a second request into
	// a channel nobody receives from.
	env.sess.reqCh <- request{taskID: 0}
	done := make(chan error, 1)
	go func() { done <- env.sess.Shutdown() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown after server exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown deadlocked after the server loop exited")
	}
}

func TestRecoveryMetricsPublished(t *testing.T) {
	m := obs.NewMetrics()
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true},
		WithMetrics(m),
		WithFaults(faults.MustInjector(faults.Plan{Seed: 3, DropRate: 0.25})))
	if _, err := env.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if m.Value("session.retries") != int64(env.sess.Stats.Retries) || m.Value("session.retries") == 0 {
		t.Errorf("session.retries metric = %d, stats say %d", m.Value("session.retries"), env.sess.Stats.Retries)
	}
	if m.Value("faults.injected") != env.sess.LinkStats.Injector.Stats().Total() {
		t.Error("faults.injected metric mismatch")
	}
	for _, name := range []string{"session.aborts", "session.fallbacks"} {
		found := false
		for _, n := range m.Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("metric %s not published", name)
		}
	}
}

func TestRecoveryValidate(t *testing.T) {
	bad := []Recovery{
		{MaxRetries: -1, DeadlineSlack: 2},
		{MaxRetries: 1, DeadlineSlack: 0.5},
		{MaxRetries: 1, DeadlineSlack: 2, BackoffBase: -simtime.Millisecond},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad recovery %d accepted: %+v", i, r)
		}
	}
	if err := DefaultRecovery().Validate(); err != nil {
		t.Errorf("DefaultRecovery invalid: %v", err)
	}
}
