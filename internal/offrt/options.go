package offrt

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// LoadSignal is the dispatcher-side load view a server fleet exposes to
// sessions: the estimated queueing delay an offload dispatched at instant
// now would face, given its predicted server-side execution time. The
// dynamic gate charges it on top of Equation 1's communication cost, so a
// busy fleet flips marginal tasks back to local execution.
// fleet.Pool implements it.
type LoadSignal interface {
	EstQueueDelay(now simtime.PS, exec simtime.PS) simtime.PS
}

// config collects NewSession's functional options.
type config struct {
	pol        Policy
	tasks      []TaskSpec
	tracer     *obs.Tracer
	metrics    *obs.Metrics
	ratio      float64
	injector   *faults.Injector
	rec        *Recovery
	load       LoadSignal
	start      simtime.PS
	serverPlan *faults.ServerPlan
	mig        *Migration
	topo       *tiers.Topology
}

// Option configures a Session at construction.
type Option func(*config)

// WithPolicy sets the runtime policy (gate behaviour, compression,
// prefetch, output batching).
func WithPolicy(p Policy) Option { return func(c *config) { c.pol = p } }

// WithTasks registers the offload targets the dynamic estimator knows
// about; repeated uses accumulate.
func WithTasks(tasks ...TaskSpec) Option {
	return func(c *config) { c.tasks = append(c.tasks, tasks...) }
}

// WithTracer attaches a structured event tracer to the whole pipeline:
// session lifecycle, wire messages, page faults, remote I/O, radio states
// and the interpreter's task enter/exit all record into it. A nil tracer
// disables tracing at zero cost.
func WithTracer(tr *obs.Tracer) Option { return func(c *config) { c.tracer = tr } }

// WithMetrics attaches a metrics registry; Shutdown publishes the link and
// session statistics (and per-task numbers) into it.
func WithMetrics(m *obs.Metrics) Option { return func(c *config) { c.metrics = m } }

// WithEstimatorRatio overrides the server/mobile performance ratio R of
// Equation 1; 0 (the default) derives it from the two machines' cycle
// times. Supersedes the deprecated Policy.R.
func WithEstimatorRatio(r float64) Option { return func(c *config) { c.ratio = r } }

// WithFaults installs a deterministic link fault injector: every wire
// transfer consults it and may be dropped, corrupted or delayed, and the
// session's recovery layer (deadlines, retries, local fallback) takes
// over from there. A nil injector leaves the link perfectly reliable.
func WithFaults(in *faults.Injector) Option { return func(c *config) { c.injector = in } }

// WithRecovery replaces the failure-recovery policy (see DefaultRecovery
// for what sessions use otherwise).
func WithRecovery(r Recovery) Option { return func(c *config) { c.rec = &r } }

// WithFleet constructs the session against a shared server fleet instead
// of a dedicated peer: the dynamic gate consults the fleet's live load
// signal and declines offloads whose queueing delay would erase the gain.
// A nil signal leaves the session in its dedicated-server shape. Like every
// session knob this is a NewSession option — NewSession is the single
// session constructor, and a fleet dispatcher passes WithFleet alongside
// WithStartTime when admitting a client.
func WithFleet(load LoadSignal) Option { return func(c *config) { c.load = load } }

// WithServerFaults installs a deterministic *server*-fault schedule:
// slowdowns, stalls, crashes and scheduled drains injected on the simtime
// clock at remote-service boundaries (which double as the health
// monitor's heartbeats). Hosts are indexed by the plan's Server field;
// the session's offload starts on host 0 and each migration or
// crash-retry moves it to the next spare. A nil plan leaves every host
// perfectly healthy.
func WithServerFaults(p *faults.ServerPlan) Option { return func(c *config) { c.serverPlan = p } }

// WithMigration enables mid-flight offload migration: on a scheduled
// drain, a health-detected degradation, or a crash with a spare host
// standing by, the runtime checkpoints the in-flight task (dirty private
// pages only), ships it over the backhaul and resumes on the next host.
// Without this option the session keeps the paper's behavior — any server
// failure degrades to local fallback.
func WithMigration(m Migration) Option { return func(c *config) { c.mig = &m } }

// WithTiers places a hierarchical topology behind the session's gate:
// instead of the binary Equation-1 question, every decision scores
// {local, edge over the access link, cloud over access + WAN backhaul}
// with estimate.Placement and offloads whenever either remote tier beats
// local execution. The session's wire simulation still runs over its one
// link and server — the topology informs the decision layer (placement
// choice, per-tier accounting, tier.place traces); full per-tier
// execution timing is the fleet simulator's job. A nil topology keeps
// the binary gate, whose decisions Placement reproduces exactly when the
// cloud option is absent.
func WithTiers(topo *tiers.Topology) Option { return func(c *config) { c.topo = topo } }

// WithStartTime places the session at instant t on the shared simulated
// timeline instead of 0: both machines' clocks, the energy recorder, and
// the initial link-phase resolution all start there. A fleet dispatcher
// admitting a queued client mid-run passes this to NewSession (typically
// with WithFleet), so every time-varying quantity (link phases above all)
// is evaluated against the regime actually in effect.
func WithStartTime(t simtime.PS) Option { return func(c *config) { c.start = t } }

// NewSession builds a session over the given machines and link. The server
// machine must not be started yet; Session runs it. The link's phase
// schedule is validated here — a misordered schedule would silently
// resolve the wrong bandwidth regime at every gate decision.
func NewSession(mobile, server *interp.Machine, link *netsim.Link, opts ...Option) (*Session, error) {
	if mobile == nil || server == nil {
		return nil, fmt.Errorf("offrt: both a mobile and a server machine are required")
	}
	if link == nil {
		return nil, fmt.Errorf("offrt: a link is required")
	}
	if err := link.ValidatePhases(); err != nil {
		return nil, fmt.Errorf("offrt: invalid link: %w", err)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.ratio < 0 {
		return nil, fmt.Errorf("offrt: estimator ratio must be non-negative, got %g", cfg.ratio)
	}
	if cfg.start < 0 {
		return nil, fmt.Errorf("offrt: start time must be non-negative, got %v", cfg.start)
	}
	rec := DefaultRecovery()
	if cfg.rec != nil {
		rec = *cfg.rec
		if err := rec.Validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.serverPlan.Validate(); err != nil {
		return nil, fmt.Errorf("offrt: invalid server-fault plan: %w", err)
	}
	if err := cfg.topo.Validate(); err != nil {
		return nil, fmt.Errorf("offrt: invalid tier topology: %w", err)
	}
	mig := DefaultMigration()
	migOn := false
	if cfg.mig != nil {
		mig = *cfg.mig
		if err := mig.Validate(); err != nil {
			return nil, err
		}
		migOn = mig.Spares > 0
	} else {
		mig.Spares = 0 // no WithMigration: single host, fallback-only recovery
	}
	if mig.Backhaul == nil {
		mig.Backhaul = netsim.Backhaul()
	}

	s := &Session{
		Mobile:   mobile,
		Server:   server,
		Link:     link,
		Policy:   cfg.pol,
		PerTask:  make(map[int]*TaskStats),
		Tracer:   cfg.tracer,
		Metrics:  cfg.metrics,
		tasks:    make(map[int32]TaskSpec),
		reqCh:    make(chan request),
		repCh:    make(chan reply),
		doneCh:   make(chan error, 1),
		Recorder: energy.NewRecorder(cfg.start, energy.Compute),
		rec:      rec,
		load:     cfg.load,
		topo:     cfg.topo,

		serverPlan: cfg.serverPlan,
		mig:        mig,
		migOn:      migOn,
		hosts:      1 + mig.Spares,
		backhaul:   mig.Backhaul,
	}
	// Latency histograms live in the metrics registry so Summary() renders
	// them next to the counters; Histogram is nil-safe on a nil registry.
	s.hFault = cfg.metrics.Histogram("lat.page_fault_ps")
	s.hRPC = cfg.metrics.Histogram("lat.rpc_ps")
	s.hBackoff = cfg.metrics.Histogram("lat.rpc_backoff_ps")
	s.hWriteBack = cfg.metrics.Histogram("lat.write_back_ps")
	s.hE2E = cfg.metrics.Histogram("lat.offload.e2e_ps")
	s.hMigrate = cfg.metrics.Histogram("lat.migration_ps")
	// Sessions joining a shared timeline mid-run (fleet clients) begin at
	// their admission instant, not 0.
	mobile.Clock = simtime.Max(mobile.Clock, cfg.start)
	server.Clock = simtime.Max(server.Clock, cfg.start)
	for _, t := range cfg.tasks {
		s.tasks[int32(t.TaskID)] = t
		s.PerTask[t.TaskID] = &TaskStats{}
	}
	r := cfg.ratio
	if r == 0 {
		r = cfg.pol.R
	}
	if r == 0 {
		r = float64(mobile.Spec.CyclePS) / float64(server.Spec.CyclePS)
	}
	s.est = estimate.Params{
		R:            r,
		BandwidthBps: link.BandwidthBps,
		RTT:          2 * (link.Latency + link.PerMessage),
	}

	// Thread the tracer through every layer: wire accounting, the radio
	// power timeline, and the interpreter's task enter/exit events.
	s.LinkStats.Tracer = cfg.tracer
	s.LinkStats.Injector = cfg.injector
	s.Recorder.Tracer = cfg.tracer
	mobile.Tracer, mobile.TraceTrack = cfg.tracer, obs.TrackMobile
	server.Tracer, server.TraceTrack = cfg.tracer, obs.TrackServer

	// Resolve the initial link phase at the session's start instant: a
	// session admitted at t > 0 must not trace (or estimate against) the
	// phase-0 regime.
	idx, bw := link.PhaseAt(cfg.start)
	s.lastPhase = idx
	s.Tracer.Emit(obs.Event{Time: cfg.start, Kind: obs.KLinkPhase, Track: obs.TrackLink,
		A0: bw, A1: int64(idx)})

	mobile.Sys = s
	server.Sys = s

	// Copy-on-demand: a server page fault fetches the page from the
	// mobile device over the link (request + page reply), stalling the
	// server and pulsing the mobile radio.
	server.Mem.Fault = s.servePageFault

	// Function pointers: translate any address either linker assigned to
	// the local function of the same name; mapped call sites charge the
	// translation cost in the interpreter.
	server.ResolveFptr = s.resolver(server, mobile)
	mobile.ResolveFptr = s.resolver(mobile, server)
	return s, nil
}
