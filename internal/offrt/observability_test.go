package offrt

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestTracedSessionEmitsLifecycleEvents runs a real offloaded program with a
// tracer and metrics registry attached and checks the acceptance set: the
// trace must contain gate-decision, page-fault, prefetch, write-back and
// radio-state events, and the Chrome export must be valid trace_event JSON.
func TestTracedSessionEmitsLifecycleEvents(t *testing.T) {
	env := setupTraced(t, Policy{ForceOffload: true})
	if _, err := env.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}

	counts := make(map[obs.Kind]int)
	for _, ev := range env.sess.Tracer.Events() {
		counts[ev.Kind]++
	}
	for _, k := range []obs.Kind{obs.KGate, obs.KPageFault, obs.KPrefetch,
		obs.KWriteBack, obs.KRadio, obs.KMessage, obs.KOffload,
		obs.KTaskEnter, obs.KTaskExit} {
		if counts[k] == 0 {
			t.Errorf("trace has no %v events; got %v", k, counts)
		}
	}

	// The Chrome export of a real session must be loadable JSON.
	var buf bytes.Buffer
	if err := env.sess.Tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("Chrome export is invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < env.sess.Tracer.Len() {
		t.Errorf("Chrome export has %d records for %d events", len(parsed.TraceEvents), env.sess.Tracer.Len())
	}

	// Metrics published at Shutdown must agree with the session's counters.
	m := env.sess.Metrics
	if got, want := m.Value("session.offloads"), int64(env.sess.Stats.Offloads); got != want {
		t.Errorf("session.offloads metric = %d, want %d", got, want)
	}
	if got, want := m.Value("link.bytes_to_server"), env.sess.LinkStats.BytesToServer; got != want {
		t.Errorf("link.bytes_to_server metric = %d, want %d", got, want)
	}
	if m.Value("session.prefetch_pages") == 0 {
		t.Error("session.prefetch_pages metric missing")
	}
	if m.Value("task.1.offloads") != 1 {
		t.Errorf("task.1.offloads metric = %d, want 1", m.Value("task.1.offloads"))
	}

	// Per-session end-to-end offload latency: nonzero, published, and (in
	// this fault-free run, where every attempt succeeds) exactly the sum of
	// the KOffload span durations.
	if env.sess.Stats.E2ELatency == 0 {
		t.Error("Stats.E2ELatency is zero after a completed offload")
	}
	if got, want := m.Value("session.e2e_latency_ps"), int64(env.sess.Stats.E2ELatency); got != want {
		t.Errorf("session.e2e_latency_ps metric = %d, want %d", got, want)
	}
	var spanSum int64
	for _, ev := range env.sess.Tracer.Events() {
		if ev.Kind == obs.KOffload {
			spanSum += int64(ev.Dur)
		}
	}
	if spanSum != int64(env.sess.Stats.E2ELatency) {
		t.Errorf("E2ELatency %d != sum of offload span durations %d", env.sess.Stats.E2ELatency, spanSum)
	}
}

// setupTraced is setup() plus an attached tracer and metrics registry.
func setupTraced(t *testing.T, pol Policy) *testEnv {
	t.Helper()
	env := setup(t, netsim.Fast80211AC(), pol)
	// Rebuild the session with observability attached; setup's session has
	// not been started, so it holds no goroutine to drain.
	var tasks []TaskSpec
	for _, tg := range env.cres.Targets {
		tasks = append(tasks, TaskSpec{TaskID: tg.TaskID, Name: tg.Name,
			TimePerInvocation: tg.TimePerInvocation, MemBytes: tg.MemBytes})
	}
	sess, err := NewSession(env.mobile, env.server, env.link,
		WithTasks(tasks...), WithPolicy(pol),
		WithTracer(obs.NewTracer(0)), WithMetrics(obs.NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	env.sess = sess
	return env
}

// TestTracedRunMatchesUntracedTiming: attaching a tracer must not perturb
// the simulation — same exit code, same final clock, same traffic.
func TestTracedRunMatchesUntracedTiming(t *testing.T) {
	plain := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	if _, err := plain.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	traced := setupTraced(t, Policy{ForceOffload: true})
	if _, err := traced.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if plain.mobile.Clock != traced.mobile.Clock {
		t.Errorf("tracing changed the simulated clock: %v vs %v",
			plain.mobile.Clock, traced.mobile.Clock)
	}
	if plain.sess.LinkStats.TotalBytes() != traced.sess.LinkStats.TotalBytes() {
		t.Errorf("tracing changed traffic: %d vs %d",
			plain.sess.LinkStats.TotalBytes(), traced.sess.LinkStats.TotalBytes())
	}
}

// TestNewSessionIsTheOnlyConstructor pins the post-shim construction path:
// a bare NewSession with WithTasks/WithPolicy covers what the removed
// offrt.New signature used to take positionally.
func TestNewSessionIsTheOnlyConstructor(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	var tasks []TaskSpec
	for _, tg := range env.cres.Targets {
		tasks = append(tasks, TaskSpec{TaskID: tg.TaskID, Name: tg.Name,
			TimePerInvocation: tg.TimePerInvocation, MemBytes: tg.MemBytes})
	}
	sess, err := NewSession(env.mobile, env.server, env.link,
		WithTasks(tasks...), WithPolicy(Policy{ForceOffload: true}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if sess.Stats.Offloads == 0 {
		t.Error("session never offloaded under ForceOffload")
	}
}

// TestNewSessionRejectsBadInputs pins the constructor's validation.
func TestNewSessionRejectsBadInputs(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{})
	defer env.sess.Shutdown()

	if _, err := NewSession(nil, env.server, env.link); err == nil {
		t.Error("nil mobile machine accepted")
	}
	if _, err := NewSession(env.mobile, env.server, nil); err == nil {
		t.Error("nil link accepted")
	}
	if _, err := NewSession(env.mobile, env.server, env.link, WithEstimatorRatio(-1)); err == nil {
		t.Error("negative estimator ratio accepted")
	}
	bad := netsim.Fast80211AC()
	bad.Phases = []netsim.Phase{
		{Until: 100, BandwidthBps: 1}, {Until: 50, BandwidthBps: 2},
	}
	if _, err := NewSession(env.mobile, env.server, bad); err == nil {
		t.Error("unsorted phase schedule accepted")
	}
}
