package offrt

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// TestTieredGatePlaces: with a topology behind it, the gate becomes the
// 3-way placement — tiny tasks stay local, moderate ones land on the
// edge (low RTT beats the cloud's compute edge), and long ones go to the
// cloud (the execution saving amortizes the WAN round trip) — with the
// choice counted per tier and traced as tier.place.
func TestTieredGatePlaces(t *testing.T) {
	topo := tiers.Default(2, 1)
	env := setup(t, netsim.Fast80211AC(), Policy{},
		WithTiers(topo), WithTracer(obs.NewTracer(0)))
	defer env.sess.Shutdown()

	cases := []struct {
		name string
		tm   simtime.PS
		mem  int64
		want string // expected placement trace name
		gate bool
	}{
		// Far below any communication cost: local.
		{"tiny", 50 * simtime.Microsecond, 4 << 20, "local", false},
		// Profitable remotely, but the ~80ms WAN round trip dwarfs the
		// extra compute saving of the faster cloud: edge.
		{"moderate", 200 * simtime.Millisecond, 64 << 10, "edge", true},
		// Long enough that the cloud's higher R wins despite the WAN: cloud.
		{"heavy", 30 * simtime.FromSeconds(1), 64 << 10, "cloud", true},
	}
	for i, tc := range cases {
		id := int32(100 + i)
		env.sess.tasks[id] = TaskSpec{TaskID: int(id), Name: tc.name,
			TimePerInvocation: tc.tm, MemBytes: tc.mem}
		env.sess.PerTask[int(id)] = &TaskStats{}
		if got := env.sess.Gate(env.mobile, id); got != tc.gate {
			t.Errorf("%s: Gate = %v, want %v", tc.name, got, tc.gate)
		}
	}
	if env.sess.Stats.EdgePlaced != 1 || env.sess.Stats.CloudPlaced != 1 {
		t.Errorf("placement counters = edge %d, cloud %d; want 1, 1",
			env.sess.Stats.EdgePlaced, env.sess.Stats.CloudPlaced)
	}
	var names []string
	for _, ev := range env.sess.Tracer.Events() {
		if ev.Kind == obs.KTierPlace {
			names = append(names, ev.Name)
		}
	}
	if len(names) != len(cases) {
		t.Fatalf("traced %d tier.place events, want %d", len(names), len(cases))
	}
	for i, tc := range cases {
		if names[i] != tc.want {
			t.Errorf("%s: placed %q, want %q", tc.name, names[i], tc.want)
		}
	}
}

// TestTieredGateCloudOnlyMasksEdge: a cloud-only topology must never
// place on the edge, and the WAN-dominated estimate flips marginal tasks
// back to local — the decision the 3-way mode would have sent to the edge.
func TestTieredGateCloudOnlyMasksEdge(t *testing.T) {
	topo := tiers.Default(2, 1)
	topo.Mode = tiers.CloudOnly
	env := setup(t, netsim.Fast80211AC(), Policy{}, WithTiers(topo))
	defer env.sess.Shutdown()

	// Edge-profitable, but shorter than the ~80ms WAN round trip even at
	// infinite cloud speed — the cloud can never win this one.
	env.sess.tasks[99] = TaskSpec{TaskID: 99, Name: "short",
		TimePerInvocation: 50 * simtime.Millisecond, MemBytes: 64 << 10}
	env.sess.PerTask[99] = &TaskStats{}
	if env.sess.Gate(env.mobile, 99) {
		t.Error("cloud-only gate offloaded a task only the edge could carry")
	}
	if env.sess.Stats.EdgePlaced != 0 {
		t.Errorf("cloud-only session placed %d tasks on the edge", env.sess.Stats.EdgePlaced)
	}
}

// TestWithTiersValidates pins constructor validation.
func TestWithTiersValidates(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{})
	defer env.sess.Shutdown()
	bad := &tiers.Topology{Mode: "bogus"}
	if _, err := NewSession(env.mobile, env.server, env.link, WithTiers(bad)); err == nil {
		t.Error("invalid topology accepted")
	}
}
