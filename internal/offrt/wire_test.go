package offrt

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestMessageRoundTrip(t *testing.T) {
	page := make([]byte, mem.PageSize)
	for i := range page {
		page[i] = byte(i * 7)
	}
	msgs := []*Message{
		{Kind: MsgOffloadRequest, TaskID: 3, SP: 0x7FFF_E000,
			Args:      []uint64{1, 0xDEADBEEF, 1 << 62},
			PageTable: []uint32{1, 2, 99},
			Pages:     []PageRecord{{PN: 5, Data: page}}},
		{Kind: MsgPageRequest, Addr: 0x2000_4000},
		{Kind: MsgPageData, Pages: []PageRecord{{PN: 7, Data: page}}},
		{Kind: MsgRemoteWrite, Data: []byte("score 42\n")},
		{Kind: MsgRemoteOpen, Data: []byte("cells.net")},
		{Kind: MsgRemoteOpenResp, FD: 3},
		{Kind: MsgRemoteRead, FD: 3, N: 512},
		{Kind: MsgRemoteReadResp, Data: bytes.Repeat([]byte{9}, 512)},
		{Kind: MsgRemoteClose, FD: 3},
		{Kind: MsgFinalize, TaskID: 3, Ret: 0xFFFF_FFFF_FFFF_FFFE,
			Pages: []PageRecord{{PN: 8, Data: page}, {PN: 12, Data: page}}},
		{Kind: MsgShutdown},
	}
	for _, m := range msgs {
		enc := m.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if got.Kind != m.Kind || got.TaskID != m.TaskID || got.SP != m.SP ||
			got.Addr != m.Addr || got.FD != m.FD || got.N != m.N || got.Ret != m.Ret {
			t.Errorf("%v: scalar fields drifted: %+v vs %+v", m.Kind, got, m)
		}
		if len(got.Args) != len(m.Args) || len(got.PageTable) != len(m.PageTable) ||
			len(got.Pages) != len(m.Pages) || !bytes.Equal(got.Data, m.Data) {
			t.Errorf("%v: payload drifted", m.Kind)
		}
		for i := range m.Pages {
			if got.Pages[i].PN != m.Pages[i].PN || !bytes.Equal(got.Pages[i].Data, m.Pages[i].Data) {
				t.Errorf("%v: page %d drifted", m.Kind, i)
			}
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	check := func(task int32, sp uint32, args []uint64, pt []uint32, data []byte) bool {
		if len(args) > 256 {
			args = args[:256]
		}
		if len(pt) > 1024 {
			pt = pt[:1024]
		}
		m := &Message{Kind: MsgOffloadRequest, TaskID: task, SP: sp,
			Args: args, PageTable: pt, Data: data}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		if got.TaskID != task || got.SP != sp || len(got.Args) != len(args) ||
			len(got.PageTable) != len(pt) || !bytes.Equal(got.Data, data) {
			return false
		}
		for i := range args {
			if got.Args[i] != args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	m := &Message{Kind: MsgFinalize, Ret: 7}
	enc := m.Encode()

	if _, err := Decode(enc[:2]); err == nil {
		t.Error("short buffer accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF // break the length prefix
	if _, err := Decode(bad); err == nil {
		t.Error("broken length prefix accepted")
	}
	trunc := enc[:len(enc)-3]
	if _, err := Decode(trunc); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCompressDecompressPages(t *testing.T) {
	// A repetitive page compresses well and restores exactly.
	page := bytes.Repeat([]byte{0x11, 0x22}, mem.PageSize/2)
	m := &Message{Kind: MsgFinalize,
		Pages: []PageRecord{{PN: 4, Data: page}, {PN: 9, Data: page}}}
	raw, err := m.CompressPages()
	if err != nil {
		t.Fatal(err)
	}
	if raw != 2*(mem.PageSize+4) {
		t.Errorf("raw size %d, want %d", raw, 2*(mem.PageSize+4))
	}
	if int64(len(m.Data)) >= raw {
		t.Errorf("compression did not shrink repetitive pages: %d >= %d", len(m.Data), raw)
	}
	// Cross the wire and restore.
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	pages, err := got.DecompressPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 || pages[0].PN != 4 || pages[1].PN != 9 {
		t.Fatalf("page set drifted: %+v", pages)
	}
	for _, p := range pages {
		if !bytes.Equal(p.Data, page) {
			t.Error("page content drifted through compression")
		}
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	m := &Message{Kind: MsgFinalize, Compressed: true, Data: []byte("not deflate")}
	if _, err := m.DecompressPages(); err == nil {
		t.Error("garbage payload accepted")
	}
}

func TestWireSizeTracksPayload(t *testing.T) {
	small := (&Message{Kind: MsgRemoteWrite, Data: []byte("x")}).WireSize()
	big := (&Message{Kind: MsgRemoteWrite, Data: bytes.Repeat([]byte{1}, 4096)}).WireSize()
	if big-small != 4095 {
		t.Errorf("payload delta = %d, want 4095", big-small)
	}
	if small > 64 {
		t.Errorf("envelope overhead %d bytes, want compact (<64)", small)
	}
}

func TestMsgKindString(t *testing.T) {
	if MsgFinalize.String() != "finalize" || MsgKind(99).String() == "" {
		t.Error("MsgKind.String broken")
	}
}

func TestDecodeRejectsBitFlip(t *testing.T) {
	m := &Message{Kind: MsgRemoteWrite, Data: []byte("score 42\n")}
	enc := m.Encode()
	// Flip every body byte in turn: the CRC must catch each single-bit error.
	for i := 4; i < len(enc)-4; i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at offset %d accepted", i)
		}
	}
	// Flipping the checksum itself must fail too.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Decode(bad); err == nil {
		t.Fatal("broken checksum accepted")
	}
}

func TestDecodeRejectsMalformedStructure(t *testing.T) {
	reseal := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[4:len(b)-4]))
		binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
		return b
	}
	base := (&Message{Kind: MsgFinalize, Ret: 7}).Encode()

	// Unknown kind with a valid checksum.
	bad := append([]byte(nil), base...)
	bad[4] = byte(MsgCheckpoint) + 1
	if _, err := Decode(reseal(bad)); err == nil {
		t.Error("unknown kind accepted")
	}
	bad = append([]byte(nil), base...)
	bad[4] = 0
	if _, err := Decode(reseal(bad)); err == nil {
		t.Error("zero kind accepted")
	}

	// Element counts exceeding the bytes present (valid checksum, hostile
	// counts): args, page table, pages.
	for _, off := range []int{4 + 1 + 4 + 4} { // nArgs offset after kind+task+sp
		bad = append([]byte(nil), base...)
		binary.LittleEndian.PutUint32(bad[off:], 1<<15)
		if _, err := Decode(reseal(bad)); err == nil {
			t.Errorf("hostile count at offset %d accepted", off)
		}
	}
}
