package offrt

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Recovery tunes the failure-recovery layer: how loss is detected
// (deadlines), how hard the runtime retries (bounded exponential backoff)
// and how long the gate is quarantined after an abandoned offload.
//
// The wire RPCs are all idempotent — page fetches and remote reads return
// the same bytes on retransmission, remote output is journaled and only
// committed once at finalization — so blind retransmission is safe.
type Recovery struct {
	// MaxRetries bounds retransmissions per RPC beyond the first attempt.
	MaxRetries int
	// BackoffBase is the wait before the first retry; retry i waits
	// BackoffBase << i (exponential).
	BackoffBase simtime.PS
	// DeadlineSlack multiplies the predicted transfer time into the
	// per-RPC loss-detection deadline (Section 5.1's estimator already
	// predicts transfer time from live bandwidth; the deadline reuses it).
	DeadlineSlack float64
	// DeadlineFloor is the minimum deadline, covering RTT jitter on links
	// fast enough that the predicted transfer time alone is tiny.
	DeadlineFloor simtime.PS
	// Cooldown quarantines the gate after an abandoned offload: every
	// gate decision inside the window declines, so a flapping link does
	// not trap the program in repeated offload-abort-fallback cycles.
	Cooldown simtime.PS
}

// DefaultRecovery is the recovery policy sessions start from.
func DefaultRecovery() Recovery {
	return Recovery{
		MaxRetries:    3,
		BackoffBase:   2 * simtime.Millisecond,
		DeadlineSlack: 3,
		DeadlineFloor: 5 * simtime.Millisecond,
		Cooldown:      2 * simtime.Second,
	}
}

// Validate rejects configurations the retry loop cannot run with.
func (r Recovery) Validate() error {
	if r.MaxRetries < 0 {
		return fmt.Errorf("offrt: negative MaxRetries %d", r.MaxRetries)
	}
	if r.BackoffBase < 0 || r.DeadlineFloor < 0 || r.Cooldown < 0 {
		return fmt.Errorf("offrt: negative recovery durations (backoff %v, floor %v, cooldown %v)",
			r.BackoffBase, r.DeadlineFloor, r.Cooldown)
	}
	if r.DeadlineSlack < 1 {
		return fmt.Errorf("offrt: DeadlineSlack %g < 1 would time out in-flight transfers", r.DeadlineSlack)
	}
	return nil
}

// errLinkDown is the terminal failure of one wire RPC after its retry
// budget is exhausted.
var errLinkDown = errors.New("link down")

// rpcDeadline is how long the sender waits for evidence of delivery
// before retransmitting: the estimator-predicted transfer time over the
// current link regime, scaled by DeadlineSlack and floored.
func (s *Session) rpcDeadline(link *netsim.Link, size int64) simtime.PS {
	d := simtime.PS(s.rec.DeadlineSlack * float64(link.TransferTime(size)))
	if d < s.rec.DeadlineFloor {
		d = s.rec.DeadlineFloor
	}
	return d
}

// offloadDeadline is the mobile side's patience for a whole offloaded
// task: predicted server execution time plus predicted communication,
// scaled like an RPC deadline. When the server abandons a task the link
// cannot tell the mobile so; this deadline is when the mobile gives up
// and falls back to local execution. Communication is predicted from the
// link phase in effect at now — a session that queued behind a fleet (or
// simply ran long on a time-varying link) must not size its patience from
// the bandwidth regime it was constructed under.
func (s *Session) offloadDeadline(spec TaskSpec, now simtime.PS) simtime.PS {
	est := s.est
	est.BandwidthBps = s.linkAt(now).BandwidthBps
	exec := simtime.PS(float64(spec.TimePerInvocation) / est.R)
	comm := est.CommTime(spec.MemBytes, 1)
	d := simtime.PS(s.rec.DeadlineSlack * float64(exec+comm))
	if d < s.rec.DeadlineFloor {
		d = s.rec.DeadlineFloor
	}
	return d
}

// sendReliable pushes one wire message with deadline-based loss detection
// and bounded retransmission with exponential backoff. It returns the
// total elapsed simulated time — transfer attempts, expired deadlines and
// backoff waits — and a terminal error once the retry budget is spent.
// Without a fault injector it reduces to exactly one delivered transfer,
// bit-identical to the historical Send path.
func (s *Session) sendReliable(toServer bool, size int64, at simtime.PS, op string) (simtime.PS, error) {
	var elapsed simtime.PS
	for attempt := 0; ; attempt++ {
		now := at + elapsed
		link := s.linkAt(now)
		d, verdict := s.LinkStats.TrySend(link, toServer, size, now)
		switch verdict {
		case netsim.Delivered:
			s.hRPC.Record(int64(elapsed + d))
			return elapsed + d, nil
		case netsim.Dropped:
			// Nothing arrives; the sender learns only from the deadline.
			elapsed += s.rpcDeadline(link, size)
		case netsim.Corrupted:
			// The frame crosses the wire, then fails its CRC32 check at
			// the receiver, which requests retransmission.
			elapsed += d
		}
		if attempt >= s.rec.MaxRetries {
			return elapsed, fmt.Errorf("offrt: %s: %w after %d attempts", op, errLinkDown, attempt+1)
		}
		backoff := s.rec.BackoffBase << attempt
		elapsed += backoff
		s.hBackoff.Record(int64(backoff))
		s.Stats.Retries++
		s.emit(obs.Event{Time: at + elapsed, Kind: obs.KRetry, Track: obs.TrackLink,
			Name: op, A0: int64(attempt + 1), A1: int64(backoff)})
	}
}

// abortTask abandons the current offload after a terminal wire failure on
// the server side. The rest of the task runs in "ghost mode": every
// remote service (page faults, remote I/O, finalization) is handled
// locally in-process with no wire traffic, so the partitioned binary's
// listen loop completes deterministically and parks at the next Accept —
// but all its effects are discarded and the mobile re-executes locally.
func (s *Session) abortTask(op string) {
	if s.aborted {
		return
	}
	s.aborted = true
	s.Stats.Aborts++
	s.emit(obs.Event{Time: s.Server.Clock, Kind: obs.KAbort, Track: obs.TrackServer,
		Name: op, A0: int64(s.cur.taskID)})
}

// finishAborted is the ghost-mode finalization: discard the journal and
// every server-side effect of the abandoned task, and release the mobile
// with an abort reply instead of a result.
func (s *Session) finishAborted() error {
	s.ioJournal = nil
	s.outBuf = nil
	for _, pn := range s.Server.Mem.PresentPages() {
		s.Server.Mem.Drop(pn)
	}
	s.Server.Mem.Faults = 0
	s.Server.Mem.TrackDirty = false
	// The ghost execution's compute never helped anyone; do not fold it
	// into the session's Figure-7 attribution.
	for i := range s.Server.Comp {
		s.Server.Comp[i] = 0
	}
	s.aborted = false
	s.pendingReply = &reply{aborted: true, retry: s.crashRetry}
	s.crashRetry = false
	return nil
}

// fallbackLocal re-executes an abandoned offload on the mobile device:
// roll the I/O state back to the pre-offload snapshot, quarantine the
// gate, and run the task's local arm (the partitioner keeps every offload
// target callable in the mobile binary — the gate diamond's else branch).
func (s *Session) fallbackLocal(taskID int32, spec TaskSpec, args []uint64, ioSnap interface{}) (uint64, error) {
	if ioSnap != nil {
		if sn, ok := s.Mobile.IO.(interp.IOSnapshotter); ok {
			sn.RestoreIO(ioSnap)
		}
	}
	s.Stats.Fallbacks++
	if s.rec.Cooldown > 0 {
		s.quarantineUntil = s.Mobile.Clock + s.rec.Cooldown
		s.emit(obs.Event{Time: s.Mobile.Clock, Kind: obs.KQuarantine, Track: obs.TrackMobile,
			A0: int64(taskID), A1: int64(s.rec.Cooldown)})
	}
	s.Recorder.Transition(s.Mobile.Clock, energy.Compute)
	f := s.Mobile.Mod.Func(spec.Name)
	if f == nil {
		return 0, fmt.Errorf("offrt: cannot fall back: no local %s in mobile binary", spec.Name)
	}
	begin := s.Mobile.Clock
	ret, err := s.Mobile.CallFunc(f, args...)
	s.emit(obs.Event{Time: begin, Dur: s.Mobile.Clock - begin, Kind: obs.KFallback,
		Track: obs.TrackMobile, Name: spec.Name, A0: int64(taskID)})
	return ret, err
}

// commitJournal applies the offload's journaled effects at successful
// finalization (commit-at-return): first the validated dirty-page
// write-back, then the remote output in original order. Nothing here can
// fail halfway — validation happened before the first install — so a
// partial write-back never corrupts unified memory.
func (s *Session) commitJournal(pages []PageRecord) {
	for _, p := range pages {
		s.Mobile.Mem.InstallPage(p.PN, p.Data)
	}
	for _, out := range s.ioJournal {
		s.Mobile.IO.Write(out)
	}
	s.ioJournal = nil
}

// MemDigest hashes the mobile device's final semantic memory: globals and
// heap, with both stack regions excluded. Whether a task ran remotely (its
// frames on the server stack, written back as dirty pages) or locally (on
// the mobile stack), the dead residue below the stack tops differs while
// the program's observable memory is identical — so equivalence checks
// between faulted and fault-free runs compare this digest.
func (s *Session) MemDigest() uint64 {
	return s.Mobile.Mem.Digest(mem.StackRanges()...)
}

// snapshotIO checkpoints the mobile I/O state before an offload when a
// fault injector or a server-fault plan is active (without either,
// offloads cannot abort and the snapshot would be dead weight on every
// invocation).
func (s *Session) snapshotIO() interface{} {
	if s.LinkStats.Injector == nil && !s.serverPlan.Active() {
		return nil
	}
	if sn, ok := s.Mobile.IO.(interp.IOSnapshotter); ok {
		return sn.SnapshotIO()
	}
	return nil
}
