package offrt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/mem"
)

// MsgKind tags the runtime's wire messages. The protocol follows the
// paper's Figure 5 life cycle: an offload request carries the task id, the
// current stack pointer, the page table and the prefetched pages; during
// offloading execution the server requests pages and remote I/O; the
// finalization message returns the result with the (compressed) dirty
// pages and updated page table.
type MsgKind uint8

const (
	MsgOffloadRequest MsgKind = iota + 1
	MsgPageRequest
	MsgPageData
	MsgRemoteWrite
	MsgRemoteOpen
	MsgRemoteOpenResp
	MsgRemoteRead
	MsgRemoteReadResp
	MsgRemoteClose
	MsgFinalize
	MsgShutdown
	// MsgCheckpoint ships a mid-flight migration checkpoint between
	// servers over the backhaul: the execution state sub-encoded into the
	// Data field (see encodeCheckpoint), framed and CRC-checked like every
	// other message.
	MsgCheckpoint
)

func (k MsgKind) String() string {
	names := [...]string{"", "offload", "pagereq", "pagedata", "rwrite",
		"ropen", "ropenresp", "rread", "rreadresp", "rclose", "finalize", "shutdown",
		"checkpoint"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// PageRecord is one page on the wire.
type PageRecord struct {
	PN   uint32
	Data []byte // PageSize bytes
}

// Message is the runtime's single wire envelope; fields are used per kind.
type Message struct {
	Kind   MsgKind
	TaskID int32
	SP     uint32
	Args   []uint64
	// PageTable lists the sender's present pages (offload request) or the
	// updated page set (finalization).
	PageTable  []uint32
	Pages      []PageRecord
	Addr       uint32 // page request
	FD         int32
	N          int32
	Ret        uint64
	Data       []byte // remote I/O payload, or compressed page payload
	Compressed bool
}

// MaxWireBytes bounds one encoded message. The largest legitimate frames
// are offload requests carrying a prefetched working set and finalization
// messages carrying compressed dirty pages; even unscaled workloads stay
// far below 1 GiB, so anything bigger is a malformed or hostile frame.
const MaxWireBytes = 1 << 30

// Encode serializes the message as
//
//	[4-byte length][body][4-byte CRC32 (IEEE) of body]
//
// with the length prefix counting everything after itself (body + CRC).
// The checksum lets the receiver detect payload corruption on a faulty
// link and request a retransmission instead of interpreting garbage.
func (m *Message) Encode() []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	w := func(v interface{}) { binary.Write(&buf, binary.LittleEndian, v) }
	w(uint8(m.Kind))
	w(m.TaskID)
	w(m.SP)
	w(uint32(len(m.Args)))
	for _, a := range m.Args {
		w(a)
	}
	w(uint32(len(m.PageTable)))
	for _, pn := range m.PageTable {
		w(pn)
	}
	w(uint32(len(m.Pages)))
	for _, p := range m.Pages {
		w(p.PN)
		data := p.Data
		if len(data) != mem.PageSize {
			padded := make([]byte, mem.PageSize)
			copy(padded, data)
			data = padded
		}
		buf.Write(data)
	}
	w(m.Addr)
	w(m.FD)
	w(m.N)
	w(m.Ret)
	var comp uint8
	if m.Compressed {
		comp = 1
	}
	w(comp)
	w(uint32(len(m.Data)))
	buf.Write(m.Data)

	sum := crc32.ChecksumIEEE(buf.Bytes()[4:])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	buf.Write(crc[:])

	out := buf.Bytes()
	binary.LittleEndian.PutUint32(out[:4], uint32(len(out)-4))
	return out
}

// Decode parses and validates one encoded message. It never panics on
// hostile input: the frame length, CRC32 checksum, message kind and every
// declared element count are checked against the bytes actually present
// before any allocation sized from them.
func Decode(b []byte) (*Message, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("offrt: short message (%d bytes)", len(b))
	}
	if len(b) > MaxWireBytes {
		return nil, fmt.Errorf("offrt: oversized message (%d bytes > %d cap)", len(b), MaxWireBytes)
	}
	want := binary.LittleEndian.Uint32(b[:4])
	if int64(want) != int64(len(b)-4) {
		return nil, fmt.Errorf("offrt: length prefix %d does not match body %d", want, len(b)-4)
	}
	body := b[4 : len(b)-4]
	wantSum := binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != wantSum {
		return nil, fmt.Errorf("offrt: checksum mismatch (got %08x, frame says %08x)", got, wantSum)
	}
	r := bytes.NewReader(body)
	m := &Message{}
	var kind, comp uint8
	var nArgs, nPT, nPages, nData uint32
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := firstErr(
		rd(&kind), rd(&m.TaskID), rd(&m.SP), rd(&nArgs),
	); err != nil {
		return nil, err
	}
	if kind == 0 || MsgKind(kind) > MsgCheckpoint {
		return nil, fmt.Errorf("offrt: unknown message kind %d", kind)
	}
	m.Kind = MsgKind(kind)
	if nArgs > 1<<16 || int64(nArgs)*8 > int64(r.Len()) {
		return nil, fmt.Errorf("offrt: absurd arg count %d", nArgs)
	}
	if nArgs > 0 {
		m.Args = make([]uint64, 0, nArgs)
	}
	for i := uint32(0); i < nArgs; i++ {
		var a uint64
		if err := rd(&a); err != nil {
			return nil, err
		}
		m.Args = append(m.Args, a)
	}
	if err := rd(&nPT); err != nil {
		return nil, err
	}
	if nPT > 1<<24 || int64(nPT)*4 > int64(r.Len()) {
		return nil, fmt.Errorf("offrt: absurd page table size %d", nPT)
	}
	if nPT > 0 {
		m.PageTable = make([]uint32, 0, nPT)
	}
	for i := uint32(0); i < nPT; i++ {
		var pn uint32
		if err := rd(&pn); err != nil {
			return nil, err
		}
		m.PageTable = append(m.PageTable, pn)
	}
	if err := rd(&nPages); err != nil {
		return nil, err
	}
	if nPages > 1<<20 || int64(nPages)*(4+mem.PageSize) > int64(r.Len()) {
		return nil, fmt.Errorf("offrt: absurd page count %d", nPages)
	}
	if nPages > 0 {
		m.Pages = make([]PageRecord, 0, nPages)
	}
	for i := uint32(0); i < nPages; i++ {
		var pn uint32
		if err := rd(&pn); err != nil {
			return nil, err
		}
		data := make([]byte, mem.PageSize)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
		m.Pages = append(m.Pages, PageRecord{PN: pn, Data: data})
	}
	if err := firstErr(rd(&m.Addr), rd(&m.FD), rd(&m.N), rd(&m.Ret), rd(&comp), rd(&nData)); err != nil {
		return nil, err
	}
	if comp > 1 {
		return nil, fmt.Errorf("offrt: bad compression flag %d", comp)
	}
	m.Compressed = comp == 1
	if int64(nData) != int64(r.Len()) {
		return nil, fmt.Errorf("offrt: trailing data mismatch: declared %d, have %d", nData, r.Len())
	}
	if nData > 0 {
		m.Data = make([]byte, nData)
		if _, err := io.ReadFull(r, m.Data); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// WireSize returns the encoded size without materializing page payloads
// twice; it is what the session charges to the link.
func (m *Message) WireSize() int64 {
	return int64(len(m.Encode()))
}

// CompressPages deflates a page set into the message's Data field and
// drops the raw pages, returning the raw (pre-compression) size. The
// mobile side reverses it with DecompressPages.
func (m *Message) CompressPages() (rawBytes int64, err error) {
	var raw bytes.Buffer
	for _, p := range m.Pages {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], p.PN)
		raw.Write(hdr[:])
		data := p.Data
		if len(data) != mem.PageSize {
			padded := make([]byte, mem.PageSize)
			copy(padded, data)
			data = padded
		}
		raw.Write(data)
	}
	rawBytes = int64(raw.Len())
	var comp bytes.Buffer
	w, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return rawBytes, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return rawBytes, err
	}
	if err := w.Close(); err != nil {
		return rawBytes, err
	}
	m.Pages = nil
	m.Data = comp.Bytes()
	m.Compressed = true
	return rawBytes, nil
}

// DecompressPages inflates a finalization payload back into page records.
func (m *Message) DecompressPages() ([]PageRecord, error) {
	if !m.Compressed {
		return m.Pages, nil
	}
	r := flate.NewReader(bytes.NewReader(m.Data))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw)%(4+mem.PageSize) != 0 {
		return nil, fmt.Errorf("offrt: corrupt page payload (%d bytes)", len(raw))
	}
	var out []PageRecord
	for off := 0; off < len(raw); off += 4 + mem.PageSize {
		out = append(out, PageRecord{
			PN:   binary.LittleEndian.Uint32(raw[off:]),
			Data: raw[off+4 : off+4+mem.PageSize],
		})
	}
	return out, nil
}
