package offrt

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// TestGateConsultsFleetLoad: a session constructed against a fleet pool
// (WithFleet) must charge the pool's live queueing delay in its dynamic
// gate — the same task that offloads against an idle pool flips to local
// once every slot is pinned busy.
func TestGateConsultsFleetLoad(t *testing.T) {
	pool := fleet.NewPool(fleet.ServerSpec{R: 6, Slots: 2})
	env := setup(t, netsim.Fast80211AC(), Policy{}, WithFleet(pool))
	defer env.sess.Shutdown()

	// Clearly profitable against a dedicated server: seconds of compute,
	// a modest footprint.
	spec := TaskSpec{TaskID: 99, Name: "spec_heavy",
		TimePerInvocation: simtime.FromSeconds(5), MemBytes: 1 << 20}
	env.sess.tasks[99] = spec
	env.sess.PerTask[99] = &TaskStats{}

	if !env.sess.Gate(env.mobile, 99) {
		t.Fatal("profitable task declined against an idle pool")
	}
	// Pin every slot busy for the next 100 simulated seconds: the queueing
	// delay now dwarfs the task's local execution time.
	pool.Occupy(0, 100*simtime.FromSeconds(1), env.mobile.Clock)
	pool.Occupy(0, 100*simtime.FromSeconds(1), env.mobile.Clock)
	if env.sess.Gate(env.mobile, 99) {
		t.Error("gate offloaded into a saturated pool; load signal ignored")
	}
	if env.sess.PerTask[99].Declines != 1 {
		t.Errorf("decline not recorded: %+v", env.sess.PerTask[99])
	}
}

// TestWithStartTimeResolvesPhase pins the start-epoch fix: a session
// joining the shared timeline mid-run (as fleet clients do) must resolve
// the link phase — for both the initial trace event and the gate's
// bandwidth — at its start instant, not at t=0.
func TestWithStartTimeResolvesPhase(t *testing.T) {
	start := 2 * simtime.Second
	link := netsim.Fast80211AC()
	if err := link.SetPhases(
		netsim.Phase{Until: simtime.Second, BandwidthBps: link.BandwidthBps},
		netsim.Phase{Until: 1 << 62, BandwidthBps: 2_000}, // effectively down
	); err != nil {
		t.Fatal(err)
	}
	var gateBW []int64
	debugGate = func(clock simtime.PS, bw int64, ok bool) { gateBW = append(gateBW, bw) }
	defer func() { debugGate = nil }()

	env := setup(t, link, Policy{}, WithStartTime(start), WithTracer(obs.NewTracer(0)))
	defer env.sess.Shutdown()

	if env.mobile.Clock < start || env.server.Clock < start {
		t.Fatalf("machine clocks (%v, %v) start before the session epoch %v",
			env.mobile.Clock, env.server.Clock, start)
	}
	// The construction-time phase trace must report phase 1 (the 2 kbps
	// regime in effect at 2 s), stamped at the start instant.
	var phases []obs.Event
	for _, ev := range env.sess.Tracer.Events() {
		if ev.Kind == obs.KLinkPhase {
			phases = append(phases, ev)
		}
	}
	if len(phases) == 0 {
		t.Fatal("no link-phase event traced at construction")
	}
	if first := phases[0]; first.Time != start || first.A1 != 1 || first.A0 != 2_000 {
		t.Errorf("initial phase event = {t=%v bw=%d idx=%d}, want {t=%v bw=2000 idx=1}",
			first.Time, first.A0, first.A1, start)
	}

	// And the gate must estimate against that regime: the heavy task that
	// is profitable on 802.11ac is hopeless at 2 kbps.
	spec := TaskSpec{TaskID: 99, Name: "spec_heavy",
		TimePerInvocation: simtime.FromSeconds(5), MemBytes: 1 << 20}
	env.sess.tasks[99] = spec
	env.sess.PerTask[99] = &TaskStats{}
	if env.sess.Gate(env.mobile, 99) {
		t.Error("gate offloaded over the degraded phase; it estimated with stale bandwidth")
	}
	if len(gateBW) == 0 || gateBW[len(gateBW)-1] != 2_000 {
		t.Errorf("gate saw bandwidths %v, want the phase-1 2000 bps", gateBW)
	}
}

// TestWithStartTimeRejectsNegative pins constructor validation.
func TestWithStartTimeRejectsNegative(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{})
	defer env.sess.Shutdown()
	if _, err := NewSession(env.mobile, env.server, env.link, WithStartTime(-1)); err == nil {
		t.Error("negative start time accepted")
	}
}
