// Package offrt is the Native Offloader runtime (Section 4). A Session
// wires a mobile machine and a server machine to one simulated wireless
// link and drives the offloaded-task life cycle of Figure 5:
//
//	local execution -> dynamic estimation -> initialization (request +
//	prefetch, stack reallocation) -> offloading execution (copy-on-demand
//	page faults, remote I/O service, function pointer translation) ->
//	finalization (return value + compressed dirty pages write-back).
//
// The server runs the partitioned binary's real listenClient loop in its
// own goroutine; mobile and server strictly alternate (the mobile blocks
// while the server computes and vice versa), so execution is deterministic
// and both clocks live on one absolute timeline.
package offrt

import (
	"fmt"
	"sync"

	"repro/internal/energy"
	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// TaskSpec is what the dynamic estimator knows about one offload target.
type TaskSpec struct {
	TaskID int
	Name   string
	// Profile-predicted per-invocation execution time and memory usage,
	// the Tm and M of Equation 1.
	TimePerInvocation simtime.PS
	MemBytes          int64
}

// Policy tunes runtime behaviour.
type Policy struct {
	// DisableGate forces local execution (the paper's "local" baseline
	// runs the plain binary instead, but this is useful for tests).
	DisableGate bool
	// ForceOffload skips the dynamic estimation and always offloads.
	ForceOffload bool
	// NoCompress disables the server->mobile compression.
	NoCompress bool
	// NoPrefetch disables initialization-time prefetch; every page moves
	// through copy-on-demand instead (ablation).
	NoPrefetch bool
	// BatchOutput buffers r_printf output on the server and ships it in
	// few large messages instead of one per call — the paper's batching
	// optimization ("keeping the communicated data in a buffer and
	// sending the buffer once", Section 4).
	BatchOutput bool
	// R overrides the performance ratio used by the dynamic estimator;
	// 0 derives it from the two machines' cycle times.
	//
	// Deprecated: pass WithEstimatorRatio to NewSession instead.
	R float64
}

const (

	// radioTail is how long the Wi-Fi radio stays in its high-power state
	// after servicing a request. Programs that issue remote I/O requests
	// more often than this never let the radio drop back to the 1350 mW
	// wait state — the paper's continuous 2000 mW plateau for gobmk
	// (Figure 8(b)), and the reason gobmk and twolf spend *more* battery
	// on the fast network than the slow one despite finishing sooner.
	radioTail = 150 * simtime.Millisecond
)

// Session couples the two machines.
type Session struct {
	Mobile *interp.Machine
	Server *interp.Machine
	Link   *netsim.Link
	Policy Policy

	// LinkStats counts wire-level traffic (bytes/messages per direction);
	// Stats aggregates the session-level offload work (pages, faults,
	// write-backs). PerTask accumulates per-task offload statistics.
	LinkStats netsim.LinkStats
	Stats     SessionStats
	PerTask   map[int]*TaskStats

	// Tracer receives structured lifecycle events; Metrics receives the
	// aggregated statistics at Shutdown. Both may be nil (disabled).
	Tracer  *obs.Tracer
	Metrics *obs.Metrics

	// Latency histograms, resolved once from Metrics at construction and
	// recorded at every latency-shaped site. All nil (and nil-safe) when
	// the session runs without a metrics registry.
	hFault     *obs.Histogram // remote page-fault service time
	hRPC       *obs.Histogram // reliable wire transfer round trip
	hBackoff   *obs.Histogram // retry backoff waits
	hWriteBack *obs.Histogram // finalization write-back transfer
	hE2E       *obs.Histogram // per-offload end-to-end latency

	// Comp buckets the whole-program time like Figure 7: compute, fptr,
	// remote I/O, communication.
	Comp [interp.NumComponents]simtime.PS

	// ServerCompute is the portion of Comp[CompCompute] that ran on the
	// server: the offloaded tasks' compute time at server speed. The
	// Table 4 coverage column derives from it.
	ServerCompute simtime.PS

	Recorder *energy.Recorder

	tasks map[int32]TaskSpec
	est   estimate.Params

	// topo, when set, turns the binary gate into the 3-way placement
	// decision over {local, edge, cloud} (see WithTiers).
	topo *tiers.Topology

	// load, when set, is the fleet dispatcher's live load signal: the
	// gate charges its estimated queueing delay on top of communication,
	// so a busy fleet flips marginal tasks back to local execution.
	load LoadSignal

	// rec is the failure-recovery policy (deadlines, retries, quarantine).
	rec Recovery

	// ---- mid-flight migration (see migrate.go) ----

	// serverPlan is the deterministic server-fault schedule; hostID indexes
	// the host the in-flight offload currently runs on (each migration or
	// crash-retry advances it to the next spare), hosts bounds it.
	serverPlan *faults.ServerPlan
	mig        Migration
	migOn      bool
	hostID     int
	hosts      int
	// backhaul is the server-to-server link migration checkpoints ship
	// over; its traffic never touches the client radio's LinkStats.
	backhaul *netsim.Link
	hMigrate *obs.Histogram // checkpoint ship + resume handoff time

	// Health-monitor state: last heartbeat instant, smoothed inter-beat
	// gap, and the consecutive-overrun strike count (hysteresis).
	lastBeat simtime.PS
	ewmaGap  float64
	strikes  int
	// crashRetry marks the in-progress abort as a host crash with a spare
	// standing by: the mobile should re-send the offload there instead of
	// falling back locally.
	crashRetry bool

	// aborted marks the current offload abandoned after a terminal wire
	// failure: the server finishes the task in ghost mode (all remote
	// services handled locally, no wire traffic) and its effects are
	// discarded at finalization.
	aborted bool

	// quarantineUntil keeps the gate declining after an abandoned offload
	// (cool-down before re-offloading).
	quarantineUntil simtime.PS

	// ioJournal holds remote output (r_printf payloads) journaled during
	// an offload and committed to the mobile environment only at
	// successful finalization (commit-at-return), so an aborted offload
	// leaves no partial output behind.
	ioJournal []string

	// jobSeq / curJob thread the logical JobID through the session's trace:
	// every gate evaluation opens a new id (declines included — their
	// verdict instant is still that job's trace), and every event of the
	// offload's life through retries, migration and fallback carries it, so
	// the span assembler can reconstruct one causal tree per request.
	jobSeq int64
	curJob int64

	// outBuf accumulates batched r_printf output on the server side.
	outBuf []byte

	// mobilePresent snapshots the mobile page table at initialization
	// (the paper sends the page table with the offload request): pages
	// absent there zero-fill on the server without any communication.
	mobilePresent map[uint32]bool

	// server goroutine plumbing
	reqCh chan request
	repCh chan reply
	// pendingReply holds the finalization result until the server parks
	// at the next Accept: the mobile must not resume while the server is
	// still executing its listen-loop tail, or the two simulated clocks
	// race (and so would the Go memory model).
	pendingReply *reply
	doneCh       chan error
	started      bool
	closed       bool
	inFlight     bool
	cur          request
	mu           sync.Mutex // guards started/shutdown state only

	// lastPhase is the last observed phase index of a time-varying link,
	// so linkAt can trace bandwidth regime changes exactly once.
	lastPhase int
}

// SessionStats aggregates session-level offload accounting across all
// tasks: gate outcomes, paging, faults and write-back volumes. Wire-level
// traffic lives in netsim.LinkStats — the runtime no longer keeps its
// bookkeeping inside the link's counter struct.
type SessionStats struct {
	Offloads      int
	Declines      int
	Faults        int
	DirtyPages    int
	PrefetchPages int
	// RawBytesToMobile is the pre-compression size of server->mobile
	// finalization payloads; against LinkStats.BytesToMobile it yields
	// the effective compression ratio.
	RawBytesToMobile int64
	// WriteBackWireBytes is the encoded (post-compression) size of the
	// finalization messages.
	WriteBackWireBytes int64

	// Retries counts wire retransmissions after deadline expiries or
	// checksum failures; Aborts counts offloads abandoned after the retry
	// budget was spent; Fallbacks counts local re-executions of abandoned
	// tasks (Fallbacks can exceed Aborts by failed offload requests, which
	// fall back without the server ever seeing the task).
	Retries   int
	Aborts    int
	Fallbacks int

	// E2ELatency accumulates per-offload end-to-end latency (Offload
	// entry to result in hand, simulated ps) across every offload attempt
	// — including ones that ended in a local fallback, whose latency is
	// what the user actually waited.
	E2ELatency simtime.PS

	// Migrations counts mid-flight checkpoint/ship/resume moves between
	// hosts; MigratedPages and MigratedBytes size them (dirty private
	// pages and encoded wire frames). CrashRetries counts offloads
	// re-sent from scratch to a spare host after a server crash destroyed
	// the in-flight state.
	Migrations    int
	MigratedPages int
	MigratedBytes int64
	CrashRetries  int

	// Placement outcomes of the tiered gate (WithTiers sessions only):
	// how many offload decisions the 3-way placement sent to each tier.
	EdgePlaced  int
	CloudPlaced int
}

// TaskStats is per-task accounting for Table 4 and Figure 6.
type TaskStats struct {
	Offloads int
	Declines int
	// TrafficBytes is total bytes moved (both directions) across offloads.
	TrafficBytes int64
	Faults       int
	DirtyPages   int
	PrefetchPgs  int
}

type request struct {
	taskID int32
	args   []uint64
	// arrival is when the request reaches the server; the server syncs
	// its clock to it on its own goroutine (Accept), keeping the two
	// machines free of cross-goroutine writes.
	arrival simtime.PS
	// pages carries the decoded prefetch set for the server to install.
	pages []PageRecord
}

type reply struct {
	ret uint64
	err error
	// aborted means the server abandoned the task after exhausting its
	// wire retries; the mobile must re-execute locally.
	aborted bool
	// retry qualifies an abort as a server crash with a spare host
	// standing by: the mobile re-sends the offload there instead of
	// falling back to local execution.
	retry bool
}

// debugGate, when set by tests, observes each dynamic-estimation decision.
var debugGate func(clock simtime.PS, bw int64, ok bool)

// linkAt resolves the effective link for an event at instant t (the link
// may be time-varying) and traces bandwidth regime changes exactly once.
func (s *Session) linkAt(t simtime.PS) *netsim.Link {
	if s.Tracer.Enabled() {
		if idx, bw := s.Link.PhaseAt(t); idx != s.lastPhase {
			s.lastPhase = idx
			// Link phases are a property of the session's radio environment,
			// not of whichever job happens to be in flight: unattributed.
			s.Tracer.Emit(obs.Event{Time: t, Kind: obs.KLinkPhase, Track: obs.TrackLink,
				A0: bw, A1: int64(idx)})
		}
	}
	return s.Link.At(t)
}

// resolver returns a function-pointer resolver for machine self that also
// understands addresses assigned by other (the m2s/s2m function maps of
// Section 3.4).
func (s *Session) resolver(self, other *interp.Machine) func(uint32, bool) (*ir.Func, error) {
	return func(addr uint32, mapped bool) (*ir.Func, error) {
		if f, ok := self.FuncAt(addr); ok {
			return f, nil
		}
		if of, ok := other.FuncAt(addr); ok {
			if lf := self.Mod.Func(of.Nam); lf != nil {
				return lf, nil
			}
			return nil, fmt.Errorf("offrt: function %s not present in %s binary", of.Nam, self.Name)
		}
		return nil, fmt.Errorf("offrt: no function at address 0x%x on %s", addr, self.Name)
	}
}

// Start launches the server's listen loop.
func (s *Session) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	go func() {
		_, err := s.Server.RunMain()
		if s.inFlight {
			if s.pendingReply != nil {
				// Finalized but died before parking at Accept.
				s.repCh <- *s.pendingReply
				s.pendingReply = nil
			} else {
				// The task died before SendReturn; unblock the mobile.
				s.repCh <- reply{err: fmt.Errorf("offrt: server failed mid-task: %w", err)}
			}
		}
		s.doneCh <- err
	}()
}

// Shutdown stops the server loop and finishes the energy timeline. It is
// idempotent — only the first call publishes metrics and stops the loop —
// and safe even if the server goroutine already died (e.g. after an
// aborted offload took the listen loop down): the select below never
// deadlocks on a listener that is no longer receiving.
func (s *Session) Shutdown() error {
	s.mu.Lock()
	started, closed := s.started, s.closed
	s.started, s.closed = false, true
	s.mu.Unlock()
	if closed {
		return nil
	}
	var err error
	if started {
		select {
		case s.reqCh <- request{taskID: 0}:
			err = <-s.doneCh
		case err = <-s.doneCh:
			// The server exited on its own; nothing left to stop.
		}
	}
	s.Recorder.Finish(s.Mobile.Clock)
	// Final component bookkeeping: mobile-side compute/fptr buckets.
	s.Comp[interp.CompCompute] += s.Mobile.Comp[interp.CompCompute]
	s.Comp[interp.CompFptr] += s.Mobile.Comp[interp.CompFptr]
	s.publishMetrics()
	return err
}

// publishMetrics copies the session's aggregated statistics into the
// attached metrics registry (no-op without one).
func (s *Session) publishMetrics() {
	m := s.Metrics
	if m == nil {
		return
	}
	m.Counter("link.msgs_to_server").Set(int64(s.LinkStats.MsgsToServer))
	m.Counter("link.msgs_to_mobile").Set(int64(s.LinkStats.MsgsToMobile))
	m.Counter("link.bytes_to_server").Set(s.LinkStats.BytesToServer)
	m.Counter("link.bytes_to_mobile").Set(s.LinkStats.BytesToMobile)
	m.Counter("link.comm_time_ps").Set(int64(s.LinkStats.CommTimeMobile))
	m.Counter("session.offloads").Set(int64(s.Stats.Offloads))
	m.Counter("session.declines").Set(int64(s.Stats.Declines))
	m.Counter("session.faults").Set(int64(s.Stats.Faults))
	m.Counter("session.dirty_pages").Set(int64(s.Stats.DirtyPages))
	m.Counter("session.prefetch_pages").Set(int64(s.Stats.PrefetchPages))
	m.Counter("session.writeback_raw_bytes").Set(s.Stats.RawBytesToMobile)
	m.Counter("session.writeback_wire_bytes").Set(s.Stats.WriteBackWireBytes)
	m.Counter("session.retries").Set(int64(s.Stats.Retries))
	m.Counter("session.aborts").Set(int64(s.Stats.Aborts))
	m.Counter("session.fallbacks").Set(int64(s.Stats.Fallbacks))
	m.Counter("session.e2e_latency_ps").Set(int64(s.Stats.E2ELatency))
	m.Counter("session.migrations").Set(int64(s.Stats.Migrations))
	m.Counter("session.migrated_pages").Set(int64(s.Stats.MigratedPages))
	m.Counter("session.migrated_bytes").Set(s.Stats.MigratedBytes)
	m.Counter("session.crash_retries").Set(int64(s.Stats.CrashRetries))
	if s.topo != nil {
		// Published only on tiered sessions so untiered metric summaries
		// (and their goldens) are untouched.
		m.Counter("session.tier.edge_placed").Set(int64(s.Stats.EdgePlaced))
		m.Counter("session.tier.cloud_placed").Set(int64(s.Stats.CloudPlaced))
	}
	m.Counter("faults.injected").Set(s.LinkStats.Injector.Stats().Total())
	for id, st := range s.PerTask {
		p := fmt.Sprintf("task.%d.", id)
		m.Counter(p + "offloads").Set(int64(st.Offloads))
		m.Counter(p + "declines").Set(int64(st.Declines))
		m.Counter(p + "traffic_bytes").Set(st.TrafficBytes)
		m.Counter(p + "faults").Set(int64(st.Faults))
		m.Counter(p + "dirty_pages").Set(int64(st.DirtyPages))
		m.Counter(p + "prefetch_pages").Set(int64(st.PrefetchPgs))
	}
	if d := s.Tracer.Dropped(); d > 0 {
		m.Counter("trace.dropped_events").Set(d)
	}
}

// RunMobile executes the mobile binary under the session, returning its
// exit code. It starts the server, runs main, and shuts the server down.
func (s *Session) RunMobile() (int32, error) {
	s.Start()
	code, err := s.Mobile.RunMain()
	serr := s.Shutdown()
	if err != nil {
		return code, err
	}
	return code, serr
}

// ---- SysHost: mobile side ----

// beginJob opens the next logical JobID: one per gate evaluation, carried
// by every trace event of that request's life — gate verdict, wire
// messages, retries, migration, fallback — so the span assembler can
// reconstruct one causal tree per request. The link layer stamps its own
// KMessage/KFault events through LinkStats.Job.
func (s *Session) beginJob() {
	s.jobSeq++
	s.curJob = s.jobSeq
	s.LinkStats.Job = s.curJob
}

// emit records ev attributed to the current job.
func (s *Session) emit(ev obs.Event) {
	ev.Job = s.curJob
	s.Tracer.Emit(ev)
}

// Gate implements the dynamic performance estimation of Section 4: it
// re-evaluates Equation 1 with the current network bandwidth, avoiding
// offload in unfavourable conditions (gzip on 802.11n is the paper's star).
func (s *Session) Gate(m *interp.Machine, taskID int32) bool {
	if s.Policy.DisableGate {
		return false
	}
	s.beginJob()
	if m.Clock < s.quarantineUntil {
		// Post-abort cool-down: the link just failed an offload, don't
		// trust it again yet. Overrides ForceOffload — a quarantined gate
		// is the recovery mechanism, not a policy preference.
		s.Stats.Declines++
		if st := s.PerTask[int(taskID)]; st != nil {
			st.Declines++
		}
		if s.Tracer.Enabled() {
			spec := s.tasks[taskID]
			s.emit(obs.Event{Time: m.Clock, Kind: obs.KGate, Track: obs.TrackMobile,
				Name: "quarantine", A0: int64(spec.TimePerInvocation), A1: spec.MemBytes,
				A2: s.est.BandwidthBps, A3: int64(s.est.R * 1000)})
		}
		return false
	}
	if s.Policy.ForceOffload {
		if s.Tracer.Enabled() {
			spec := s.tasks[taskID]
			s.emit(obs.Event{Time: m.Clock, Kind: obs.KGate, Track: obs.TrackMobile,
				Name: "offload", A0: int64(spec.TimePerInvocation), A1: spec.MemBytes,
				A2: s.est.BandwidthBps, A3: int64(s.est.R * 1000)})
		}
		return true
	}
	spec, ok := s.tasks[taskID]
	if !ok {
		return false
	}
	// Dynamic estimation uses the *current* network bandwidth — and, when
	// the session serves against a shared fleet, the dispatcher's current
	// queueing delay — which is the whole point of deciding at run time
	// (Section 4, generalized to shared servers). The decision itself is
	// the 3-way placement over {local, edge, cloud}: without a topology
	// the cloud option is absent and Placement reduces exactly to the
	// paper's binary ProfitableQueued gate.
	est := s.est
	est.BandwidthBps = s.linkAt(m.Clock).BandwidthBps
	var queue simtime.PS
	if s.load != nil {
		exec := spec.TimePerInvocation
		if est.R > 0 {
			exec = simtime.PS(float64(exec) / est.R)
		}
		queue = s.load.EstQueueDelay(m.Clock, exec)
	}
	edge := estimate.TierOption{OK: true, P: est, Queue: queue}
	var cloud estimate.TierOption
	if s.topo != nil {
		mode := s.topo.EffectiveMode()
		if mode != tiers.EdgeOnly {
			// The cloud prices the serial access + WAN path at the cloud
			// pool's compute ratio. No load signal reaches past the edge,
			// so the cloud queues as the elastic (uncontended) tier.
			cloud = estimate.TierOption{OK: true, P: s.topo.CloudParams(est)}
		}
		if mode == tiers.CloudOnly {
			edge.OK = false
		}
	}
	choice, _ := estimate.Placement(spec.TimePerInvocation, spec.MemBytes, edge, cloud)
	ok = choice != estimate.PlaceLocal
	if s.topo != nil {
		switch choice {
		case estimate.PlaceEdge:
			s.Stats.EdgePlaced++
		case estimate.PlaceCloud:
			s.Stats.CloudPlaced++
		}
		s.emit(obs.Event{Time: m.Clock, Kind: obs.KTierPlace, Track: obs.TrackMobile,
			Name: choice.String(), A0: int64(spec.TimePerInvocation), A1: spec.MemBytes,
			A2: int64(queue)})
	}
	if debugGate != nil {
		debugGate(m.Clock, est.BandwidthBps, ok)
	}
	if s.Tracer.Enabled() {
		name := "offload"
		if !ok {
			name = "decline"
		}
		s.emit(obs.Event{Time: m.Clock, Kind: obs.KGate, Track: obs.TrackMobile,
			Name: name, A0: int64(spec.TimePerInvocation), A1: spec.MemBytes,
			A2: est.BandwidthBps, A3: int64(est.R * 1000)})
	}
	if !ok {
		s.Stats.Declines++
		if st := s.PerTask[int(taskID)]; st != nil {
			st.Declines++
		}
	}
	return ok
}

// Offload implements the initialization / offloading execution /
// finalization phases of Figure 5 from the mobile side.
func (s *Session) Offload(m *interp.Machine, taskID int32, args []uint64) (uint64, error) {
	spec, ok := s.tasks[taskID]
	if !ok {
		return 0, fmt.Errorf("offrt: unknown task %d", taskID)
	}
	st := s.PerTask[int(taskID)]
	st.Offloads++
	s.Stats.Offloads++
	if s.curJob == 0 {
		// Offload invoked without a prior Gate (direct callers, tests):
		// the request still gets a JobID of its own.
		s.beginJob()
	}
	start := s.Mobile.Clock

	// Checkpoint the mobile I/O state while it is still untouched: if the
	// offload aborts (or crash-retries on a spare), the re-execution must
	// consume the same input.
	ioSnap := s.snapshotIO()

	for attempt := 0; ; attempt++ {
		// --- Initialization: offloading info + prefetched heap pages, sent
		// as one batched message. ---
		present := s.Mobile.Mem.PresentPages()
		req := &Message{
			Kind:      MsgOffloadRequest,
			TaskID:    taskID,
			SP:        s.Mobile.SP(),
			Args:      args,
			PageTable: present,
		}
		if !s.Policy.NoPrefetch {
			for _, pn := range present {
				addr := mem.PageAddr(pn)
				if (addr >= mem.GlobalsBase && addr < mem.GlobalsBase+0x0100_0000) ||
					(addr >= mem.HeapBase && addr < mem.HeapLimit) {
					req.Pages = append(req.Pages, PageRecord{PN: pn, Data: s.Mobile.Mem.PageData(pn)})
				}
			}
		}
		st.PrefetchPgs += len(req.Pages)
		s.Stats.PrefetchPages += len(req.Pages)
		s.emit(obs.Event{Time: s.Mobile.Clock, Kind: obs.KPrefetch, Track: obs.TrackMobile,
			A0: int64(len(req.Pages)), A1: int64(len(req.Pages)) * mem.PageSize})
		s.mobilePresent = make(map[uint32]bool)
		for _, pn := range present {
			s.mobilePresent[pn] = true
		}

		// The request crosses the wire for real: encode, charge the encoded
		// size, decode on the server side and install the prefetched pages.
		wire := req.Encode()
		d, sendErr := s.sendReliable(true, int64(len(wire)), s.Mobile.Clock, "offload.request")
		s.Recorder.Transition(s.Mobile.Clock, energy.TX)
		s.Mobile.AddTime(d, interp.CompComm)
		s.Comp[interp.CompComm] += d
		s.Recorder.Transition(s.Mobile.Clock, energy.Wait)
		st.TrafficBytes += int64(len(wire))
		if sendErr != nil {
			// The server never saw the request; degrade to local execution
			// without involving the listen loop at all.
			ret, err := s.fallbackLocal(taskID, spec, args, ioSnap)
			s.Stats.E2ELatency += s.Mobile.Clock - start
			s.hE2E.Record(int64(s.Mobile.Clock - start))
			return ret, err
		}

		got, err := Decode(wire)
		if err != nil {
			return 0, fmt.Errorf("offrt: init message corrupt: %w", err)
		}

		// Hand the request to the listen loop and wait for finalization. All
		// server-side state (clock sync, page install, dirty tracking) is
		// applied by Accept on the server's own goroutine.
		s.inFlight = true
		s.reqCh <- request{taskID: taskID, args: args, arrival: s.Mobile.Clock, pages: got.Pages}
		rep := <-s.repCh
		s.inFlight = false
		if rep.err != nil {
			return 0, rep.err
		}
		if rep.aborted {
			// The server abandoned the task mid-flight. A dead link cannot
			// deliver that news, so the mobile's own patience — the offload
			// deadline — is what actually expires before it re-executes. The
			// deadline is estimated at the clock instant the wait begins, so
			// it reflects the link phase actually in effect, not the regime
			// the session was constructed under.
			wait := s.offloadDeadline(spec, s.Mobile.Clock)
			s.Mobile.AddTime(wait, interp.CompComm)
			s.Comp[interp.CompComm] += wait
			if rep.retry && attempt < s.hosts {
				// The host crashed but a spare is standing by (hostID has
				// already moved): roll the I/O state back and re-send the
				// offload from scratch. The working set re-faults, the
				// journal restarts — unlike a migration, a crash leaves
				// nothing to ship.
				if ioSnap != nil {
					if sn, ok := s.Mobile.IO.(interp.IOSnapshotter); ok {
						sn.RestoreIO(ioSnap)
					}
				}
				s.Stats.CrashRetries++
				s.emit(obs.Event{Time: s.Mobile.Clock, Kind: obs.KRetry, Track: obs.TrackMobile,
					Name: "offload.restart", A0: int64(taskID), A1: int64(attempt + 1)})
				continue
			}
			ret, err := s.fallbackLocal(taskID, spec, args, ioSnap)
			s.Stats.E2ELatency += s.Mobile.Clock - start
			s.hE2E.Record(int64(s.Mobile.Clock - start))
			return ret, err
		}
		s.Stats.E2ELatency += s.Mobile.Clock - start
		s.hE2E.Record(int64(s.Mobile.Clock - start))
		s.emit(obs.Event{Time: start, Dur: s.Mobile.Clock - start, Kind: obs.KOffload,
			Track: obs.TrackMobile, Name: spec.Name, A0: int64(taskID)})
		return rep.ret, nil
	}
}

// ---- SysHost: server side ----

// Accept implements the server's blocking accept. It first releases the
// mobile side with any pending finalization reply, so the server is fully
// quiescent (parked here) whenever the mobile executes.
func (s *Session) Accept(m *interp.Machine) int32 {
	if s.pendingReply != nil {
		r := *s.pendingReply
		s.pendingReply = nil
		s.repCh <- r
	}
	req := <-s.reqCh
	s.cur = req
	if req.taskID == 0 {
		return 0
	}
	// Initialization, server side: the machine was idle-waiting, so its
	// clock jumps to the request arrival; the prefetched pages and fresh
	// dirty tracking come with it (Figure 5 "Initialization").
	s.Server.Clock = simtime.Max(s.Server.Clock, req.arrival)
	for _, p := range req.pages {
		s.Server.Mem.InstallPage(p.PN, p.Data)
	}
	s.Server.Mem.TrackDirty = true
	s.Server.Mem.ClearDirty()
	// Arm the health monitor for this task and apply any server fault that
	// already matured — a request landing on a crashed or stalled host
	// finds out here, not at its first remote service.
	s.lastBeat = s.Server.Clock
	s.ewmaGap, s.strikes = 0, 0
	s.heartbeat("accept")
	return req.taskID
}

// Arg returns argument i of the current request.
func (s *Session) Arg(m *interp.Machine, i int32) uint64 {
	if int(i) < len(s.cur.args) {
		return s.cur.args[i]
	}
	return 0
}

// SendReturn implements finalization: the server sends the return value,
// the dirty pages, and the updated page table back in one batched,
// compressed message, then drops its copy of the offloading data. The
// write-back is journaled: the whole frame is validated (checksum,
// structure, decompression) before the first page is installed on the
// mobile device, so a corrupted or partial finalization never taints
// unified memory (commit-at-return).
func (s *Session) SendReturn(m *interp.Machine, v uint64) error {
	s.heartbeat("return")
	if s.aborted {
		return s.finishAborted()
	}
	dirty := s.Server.Mem.DirtyPages()
	st := s.PerTask[int(s.cur.taskID)]
	if st != nil {
		st.DirtyPages += len(dirty)
		st.Faults += s.Server.Mem.Faults
	}
	s.Stats.DirtyPages += len(dirty)
	s.Stats.Faults += s.Server.Mem.Faults

	if err := s.flushOutput(); err != nil {
		return err
	}
	if s.aborted {
		// The batched-output flush exhausted its retries.
		return s.finishAborted()
	}
	fin := &Message{Kind: MsgFinalize, TaskID: s.cur.taskID, Ret: v,
		PageTable: s.Server.Mem.PresentPages()}
	for _, pn := range dirty {
		fin.Pages = append(fin.Pages, PageRecord{PN: pn, Data: s.Server.Mem.PageData(pn)})
	}
	var raw int64
	if !s.Policy.NoCompress && len(fin.Pages) > 0 {
		// Compression runs on the server only (Section 4): it is far
		// cheaper there than decompression is on the mobile device.
		var err error
		raw, err = fin.CompressPages()
		if err != nil {
			return err
		}
		// Server-side compression throughput ~1 GB/s: 1 ns per byte.
		s.Server.AddTime(simtime.PS(raw)*simtime.Nanosecond, interp.CompComm)
	} else {
		raw = int64(len(fin.Pages)) * (mem.PageSize + 4)
	}
	s.Stats.RawBytesToMobile += raw

	wireBytes := fin.Encode()
	wire := int64(len(wireBytes))
	d, sendErr := s.sendReliable(false, wire, s.Server.Clock, "finalize")
	if sendErr != nil {
		s.Server.AddTime(d, interp.CompComm)
		s.abortTask("finalize")
		return s.finishAborted()
	}
	s.Stats.WriteBackWireBytes += wire
	s.hWriteBack.Record(int64(d))
	s.emit(obs.Event{Time: s.Server.Clock, Dur: d, Kind: obs.KWriteBack,
		Track: obs.TrackServer, A0: int64(len(dirty)), A1: raw, A2: wire})
	if st != nil {
		st.TrafficBytes += wire
	}

	// Validate the complete write-back, then commit it atomically on the
	// mobile device together with the journaled remote output, and
	// synchronize clocks: the mobile resumes when the finalization
	// message has arrived.
	decoded, err := Decode(wireBytes)
	if err != nil {
		return fmt.Errorf("offrt: finalize message corrupt: %w", err)
	}
	pages, err := decoded.DecompressPages()
	if err != nil {
		return fmt.Errorf("offrt: finalize payload corrupt: %w", err)
	}
	s.commitJournal(pages)
	arrive := s.Server.Clock + d
	if arrive > s.Mobile.Clock {
		gap := arrive - s.Mobile.Clock
		s.Mobile.AddTime(gap, interp.CompComm)
	}
	s.Recorder.Pulse(arrive-d, d, energy.RX)
	s.Recorder.Transition(s.Mobile.Clock, energy.Compute)
	s.Comp[interp.CompComm] += d

	// Figure 7 attribution: the server's compute/fptr time happened while
	// the mobile device waited; fold it into the session buckets.
	s.ServerCompute += s.Server.Comp[interp.CompCompute]
	s.Comp[interp.CompCompute] += s.Server.Comp[interp.CompCompute]
	s.Comp[interp.CompFptr] += s.Server.Comp[interp.CompFptr]
	s.Comp[interp.CompRemoteIO] += s.Server.Comp[interp.CompRemoteIO]
	for i := range s.Server.Comp {
		s.Server.Comp[i] = 0
	}

	// Terminate the offloading process without keeping the data
	// (Section 4): drop every server page so the next offload starts
	// cold, as in the paper's repeated-invocation traffic numbers.
	for _, pn := range s.Server.Mem.PresentPages() {
		s.Server.Mem.Drop(pn)
	}
	s.Server.Mem.Faults = 0
	s.Server.Mem.TrackDirty = false

	s.pendingReply = &reply{ret: decoded.Ret}
	return nil
}

// servePageFault is the copy-on-demand path: the server stalls for a
// round trip while the mobile device serves the page.
func (s *Session) servePageFault(pn uint32) ([]byte, error) {
	s.heartbeat("page")
	if !s.mobilePresent[pn] {
		// The page table shipped at initialization says this page does
		// not exist on the mobile device: zero-fill locally, no traffic.
		if !s.aborted {
			s.emit(obs.Event{Time: s.Server.Clock, Kind: obs.KPageFault,
				Track: obs.TrackServer, Name: "zero-fill",
				A0: int64(pn), A1: int64(mem.PageAddr(pn))})
		}
		return nil, nil
	}
	if s.aborted {
		// Ghost mode: serve the page in-process so the abandoned task can
		// run to completion; its results are discarded at finalization.
		return s.Mobile.Mem.PageData(pn), nil
	}
	reqMsg := &Message{Kind: MsgPageRequest, Addr: mem.PageAddr(pn)}
	respMsg := &Message{Kind: MsgPageData,
		Pages: []PageRecord{{PN: pn, Data: s.Mobile.Mem.PageData(pn)}}}
	req, rerr := s.sendReliable(false, reqMsg.WireSize(), s.Server.Clock, "page.request")
	if rerr != nil {
		s.Server.AddTime(req, interp.CompComm)
		s.abortTask("page.request")
		return s.Mobile.Mem.PageData(pn), nil
	}
	resp, rerr := s.sendReliable(true, respMsg.WireSize(), s.Server.Clock+req, "page.data")
	if rerr != nil {
		s.Server.AddTime(req+resp, interp.CompComm)
		s.abortTask("page.data")
		return s.Mobile.Mem.PageData(pn), nil
	}
	data := respMsg.Pages[0].Data
	s.hFault.Record(int64(req + resp))
	s.emit(obs.Event{Time: s.Server.Clock, Dur: req + resp, Kind: obs.KPageFault,
		Track: obs.TrackServer, Name: "remote",
		A0: int64(pn), A1: int64(mem.PageAddr(pn)),
		A2: reqMsg.WireSize() + respMsg.WireSize()})
	if st := s.PerTask[int(s.cur.taskID)]; st != nil {
		st.TrafficBytes += reqMsg.WireSize() + respMsg.WireSize()
	}
	// The mobile radio pulses: receive the request, transmit the page.
	s.Recorder.Pulse(s.Server.Clock+req, resp, energy.TX)
	s.Server.AddTime(req+resp, interp.CompComm)
	s.Comp[interp.CompComm] += req + resp
	return data, nil
}

// ---- SysHost: remote I/O (Section 3.4) ----

// RemoteWrite ships r_printf output to the mobile device, where it is
// journaled and committed at successful finalization (commit-at-return).
func (s *Session) RemoteWrite(m *interp.Machine, out string) error {
	s.heartbeat("printf")
	if s.aborted {
		// Ghost mode: the output would be discarded at finalization
		// anyway; the local re-execution reproduces it.
		return nil
	}
	if s.Policy.BatchOutput {
		s.outBuf = append(s.outBuf, out...)
		if len(s.outBuf) >= 8<<10 {
			return s.flushOutput()
		}
		return nil
	}
	msg := &Message{Kind: MsgRemoteWrite, Data: []byte(out)}
	d, sendErr := s.sendReliable(false, msg.WireSize(), s.Server.Clock, "remote.printf")
	if sendErr != nil {
		s.Server.AddTime(d, interp.CompRemoteIO)
		s.abortTask("remote.printf")
		return nil
	}
	s.emit(obs.Event{Time: s.Server.Clock, Dur: d, Kind: obs.KRemoteIO,
		Track: obs.TrackServer, Name: "printf", A0: int64(len(out))})
	s.addTaskTraffic(int64(len(out)))
	s.Recorder.Pulse(s.Server.Clock, d+radioTail, energy.IOServe)
	s.Server.AddTime(d, interp.CompRemoteIO)
	s.ioJournal = append(s.ioJournal, out)
	return nil
}

// flushOutput ships the batched r_printf buffer as one message.
func (s *Session) flushOutput() error {
	if len(s.outBuf) == 0 {
		return nil
	}
	if s.aborted {
		s.outBuf = nil
		return nil
	}
	msg := &Message{Kind: MsgRemoteWrite, Data: s.outBuf}
	d, sendErr := s.sendReliable(false, msg.WireSize(), s.Server.Clock, "remote.printf")
	if sendErr != nil {
		s.Server.AddTime(d, interp.CompRemoteIO)
		s.abortTask("remote.printf")
		s.outBuf = nil
		return nil
	}
	s.emit(obs.Event{Time: s.Server.Clock, Dur: d, Kind: obs.KRemoteIO,
		Track: obs.TrackServer, Name: "printf", A0: int64(len(s.outBuf))})
	s.addTaskTraffic(int64(len(s.outBuf)))
	s.Recorder.Pulse(s.Server.Clock, d+radioTail, energy.IOServe)
	s.Server.AddTime(d, interp.CompRemoteIO)
	s.ioJournal = append(s.ioJournal, string(s.outBuf))
	s.outBuf = nil
	return nil
}

// RemoteOpen opens a file in the mobile environment (round trip).
func (s *Session) RemoteOpen(m *interp.Machine, name string) (int32, error) {
	s.heartbeat("open")
	if s.aborted {
		return s.Mobile.IO.Open(name)
	}
	req := &Message{Kind: MsgRemoteOpen, Data: []byte(name)}
	resp := &Message{Kind: MsgRemoteOpenResp}
	d, sendErr := s.sendReliable(false, req.WireSize(), s.Server.Clock, "remote.open")
	if sendErr == nil {
		var dr simtime.PS
		dr, sendErr = s.sendReliable(true, resp.WireSize(), s.Server.Clock+d, "remote.open")
		d += dr
	}
	if sendErr != nil {
		s.Server.AddTime(d, interp.CompRemoteIO)
		s.abortTask("remote.open")
		return s.Mobile.IO.Open(name)
	}
	s.emit(obs.Event{Time: s.Server.Clock, Dur: d, Kind: obs.KRemoteIO,
		Track: obs.TrackServer, Name: "open", A0: int64(len(name))})
	s.Recorder.Pulse(s.Server.Clock, d+radioTail, energy.IOServe)
	s.Server.AddTime(d, interp.CompRemoteIO)
	return s.Mobile.IO.Open(name)
}

// RemoteRead is a remote input operation: it needs a full round trip plus
// the data transfer, which is why twolf/gobmk/h264ref show large remote I/O
// overheads (Section 5.1).
func (s *Session) RemoteRead(m *interp.Machine, fd int32, n int) ([]byte, error) {
	s.heartbeat("read")
	data, err := s.Mobile.IO.Read(fd, n)
	if err != nil {
		return nil, err
	}
	if s.aborted {
		return data, nil
	}
	req := &Message{Kind: MsgRemoteRead, FD: fd, N: int32(n)}
	resp := &Message{Kind: MsgRemoteReadResp, Data: data}
	d, sendErr := s.sendReliable(false, req.WireSize(), s.Server.Clock, "remote.read")
	if sendErr == nil {
		var dr simtime.PS
		dr, sendErr = s.sendReliable(true, resp.WireSize(), s.Server.Clock+d, "remote.read")
		d += dr
	}
	if sendErr != nil {
		s.Server.AddTime(d, interp.CompRemoteIO)
		s.abortTask("remote.read")
		return data, nil
	}
	s.emit(obs.Event{Time: s.Server.Clock, Dur: d, Kind: obs.KRemoteIO,
		Track: obs.TrackServer, Name: "read", A0: int64(len(data))})
	s.addTaskTraffic(int64(len(data)))
	s.Recorder.Pulse(s.Server.Clock, d+radioTail, energy.IOServe)
	s.Server.AddTime(d, interp.CompRemoteIO)
	return data, nil
}

// RemoteClose closes a mobile-side file.
func (s *Session) RemoteClose(m *interp.Machine, fd int32) error {
	s.heartbeat("close")
	if s.aborted {
		return s.Mobile.IO.Close(fd)
	}
	msg := &Message{Kind: MsgRemoteClose, FD: fd}
	d, sendErr := s.sendReliable(false, msg.WireSize(), s.Server.Clock, "remote.close")
	if sendErr != nil {
		s.Server.AddTime(d, interp.CompRemoteIO)
		s.abortTask("remote.close")
		return s.Mobile.IO.Close(fd)
	}
	s.emit(obs.Event{Time: s.Server.Clock, Dur: d, Kind: obs.KRemoteIO,
		Track: obs.TrackServer, Name: "close"})
	s.Recorder.Pulse(s.Server.Clock, d+radioTail, energy.IOServe)
	s.Server.AddTime(d, interp.CompRemoteIO)
	return s.Mobile.IO.Close(fd)
}

// addTaskTraffic attributes remote-I/O bytes to the current task's traffic
// (Table 4 counts all communication, including remote I/O payloads).
func (s *Session) addTaskTraffic(n int64) {
	if st := s.PerTask[int(s.cur.taskID)]; st != nil {
		st.TrafficBytes += n
	}
}

var _ interp.SysHost = (*Session)(nil)
