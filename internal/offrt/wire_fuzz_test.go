package offrt

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// FuzzDecode throws arbitrary byte soup at the wire decoder. The decoder
// must never panic, and anything it accepts must re-encode to a frame
// that decodes to the same message (the envelope is canonical).
func FuzzDecode(f *testing.F) {
	seedMsgs := []*Message{
		{Kind: MsgOffloadRequest, TaskID: 1, SP: 0xfff0, Args: []uint64{1, 2, 3},
			PageTable: []uint32{10, 11}, Pages: []PageRecord{{PN: 10, Data: bytes.Repeat([]byte{0xab}, mem.PageSize)}}},
		{Kind: MsgPageRequest, Addr: 0x2000_1000},
		{Kind: MsgRemoteWrite, Data: []byte("hello, fuzz\n")},
		{Kind: MsgFinalize, Ret: 42, Compressed: true, Data: []byte{1, 2, 3}},
		{Kind: MsgShutdown},
	}
	for _, m := range seedMsgs {
		f.Add(m.Encode())
	}
	// Truncations, flipped bytes and garbage tails of a valid frame.
	enc := seedMsgs[0].Encode()
	f.Add(enc[:len(enc)/2])
	flip := append([]byte(nil), enc...)
	flip[9] ^= 0xff
	f.Add(flip)
	f.Add(append(append([]byte(nil), enc...), 0xde, 0xad))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		re := m.Encode()
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("accepted frame did not re-encode cleanly: %v", err)
		}
		if m2.Kind != m.Kind || m2.TaskID != m.TaskID || m2.Ret != m.Ret ||
			len(m2.Args) != len(m.Args) || len(m2.PageTable) != len(m.PageTable) ||
			len(m2.Pages) != len(m.Pages) || !bytes.Equal(m2.Data, m.Data) {
			t.Fatalf("re-encode round trip changed message: %+v vs %+v", m, m2)
		}
	})
}
