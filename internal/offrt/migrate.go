// Mid-flight offload migration: server-failure injection, health
// monitoring, and the checkpoint/ship/resume protocol.
//
// The paper's runtime knows exactly one answer to a dying server: abandon
// the offload and re-execute locally, paying the full task again at
// mobile speed. This layer adds the CloneCloud-style alternative — move
// the *running* computation. Server faults (slowdown, stall, crash,
// drain) are injected on the simtime clock at remote-service boundaries,
// which double as the health monitor's heartbeats. On a scheduled drain,
// a detected degradation, or a crash with a spare host available, the
// runtime checkpoints the instance (stack pointer + dirty private pages
// of the copy-on-write overlay — clean pages re-bind from the shared
// Program image on the target for free), ships the checkpoint over the
// server-to-server backhaul in the standard CRC-framed wire format, and
// resumes on the new host. The journaled remote output travels inside the
// checkpoint frame, so commit-at-return semantics survive the move.
// Local fallback remains the last resort when no viable server exists.
package offrt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/estimate"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Migration tunes the mid-flight migration layer.
type Migration struct {
	// Spares is how many standby hosts can take over beyond the initial
	// one. Each migration or crash-retry consumes one; with none left the
	// runtime degrades to the paper's local fallback.
	Spares int
	// Backhaul is the server-to-server link checkpoints ship over
	// (default netsim.Backhaul()).
	Backhaul *netsim.Link
	// HealthSlack and HealthFloor define a deadline overrun: a heartbeat
	// gap counts as overrun when it exceeds HealthSlack x the EWMA of
	// recent gaps plus HealthFloor. The floor keeps fast-beating tasks
	// from flagging microscopic jitter.
	HealthSlack float64
	HealthFloor simtime.PS
	// Strikes is how many *consecutive* overruns arm a migration — the
	// hysteresis that keeps a transient slowdown from causing thrash.
	Strikes int
}

// DefaultMigration is the migration policy WithMigration starts from.
func DefaultMigration() Migration {
	return Migration{
		Spares:      1,
		HealthSlack: 4,
		HealthFloor: 2 * simtime.Millisecond,
		Strikes:     3,
	}
}

// Validate rejects configurations the health monitor cannot run with.
func (m Migration) Validate() error {
	if m.Spares < 0 {
		return fmt.Errorf("offrt: negative migration spares %d", m.Spares)
	}
	if m.HealthSlack < 1 {
		return fmt.Errorf("offrt: HealthSlack %g < 1 would flag healthy heartbeats", m.HealthSlack)
	}
	if m.HealthFloor < 0 {
		return fmt.Errorf("offrt: negative HealthFloor %v", m.HealthFloor)
	}
	if m.Strikes < 1 {
		return fmt.Errorf("offrt: Strikes %d < 1 disables hysteresis entirely", m.Strikes)
	}
	return nil
}

// heartbeat runs at every remote-service boundary on the server side: it
// applies any scheduled server fault that matured since the last beat,
// feeds the health monitor, and triggers migration / abort as decided.
// The server's own service requests are the heartbeats — a stalled or
// crashed server stops making them, which is exactly how the mobile-side
// deadline machinery experiences the failure.
func (s *Session) heartbeat(op string) {
	if !s.serverPlan.Active() || s.aborted {
		return
	}
	// Retroactive slowdown: the compute burst since the last beat ran on a
	// degraded host; stretch it by the scheduled factor's overlap. Output
	// is untouched — only the clock moves.
	if extra := s.serverPlan.SlowExtra(s.hostID, s.lastBeat, s.Server.Clock); extra > 0 {
		s.Server.AddTime(extra, interp.CompCompute)
		s.emit(obs.Event{Time: s.Server.Clock, Kind: obs.KServerFault, Track: obs.TrackServer,
			Name: "slow", A0: int64(s.hostID), A1: int64(extra)})
	}
	// Stall: the host freezes until the window closes; the boundary simply
	// happens later.
	if until, ok := s.serverPlan.StallUntil(s.hostID, s.Server.Clock); ok {
		d := until - s.Server.Clock
		s.Server.AddTime(d, interp.CompCompute)
		s.emit(obs.Event{Time: s.Server.Clock, Kind: obs.KServerFault, Track: obs.TrackServer,
			Name: "stall", A0: int64(s.hostID), A1: int64(d)})
	}
	now := s.Server.Clock
	// Crash: all in-flight state on this host is gone — there is nothing
	// left to checkpoint. With a spare available the mobile re-sends the
	// offload from scratch there; otherwise it falls back locally.
	if s.serverPlan.CrashAt(s.hostID, now) {
		s.emit(obs.Event{Time: now, Kind: obs.KServerFault, Track: obs.TrackServer,
			Name: "crash", A0: int64(s.hostID)})
		if s.migOn && s.hostID+1 < s.hosts {
			s.hostID++
			s.crashRetry = true
		}
		s.abortTask("server.crash")
		s.lastBeat = now
		return
	}
	if s.serverPlan.DrainAt(s.hostID, now) {
		// Scheduled drain: the host announces it is going away, so the
		// checkpoint can be cut cleanly. Finishing in place is not an
		// option.
		s.emit(obs.Event{Time: now, Kind: obs.KServerFault, Track: obs.TrackServer,
			Name: "drain", A0: int64(s.hostID)})
		s.decideMigration("drain", false)
		s.lastBeat = s.Server.Clock
		return
	}
	// Health monitor: compare this heartbeat gap against the smoothed
	// history. K consecutive overruns arm a migration; one healthy beat
	// disarms it (hysteresis against transient slowdowns).
	if s.migOn {
		gap := now - s.lastBeat
		if s.ewmaGap == 0 {
			s.ewmaGap = float64(gap)
		} else {
			allowed := simtime.PS(s.mig.HealthSlack*s.ewmaGap) + s.mig.HealthFloor
			if gap > allowed {
				s.strikes++
				s.emit(obs.Event{Time: now, Kind: obs.KHealth, Track: obs.TrackServer,
					Name: op, A0: int64(gap), A1: int64(allowed), A2: int64(s.strikes)})
				if s.strikes >= s.mig.Strikes {
					s.decideMigration("health", true)
				}
			} else {
				s.strikes = 0
				// Only healthy gaps feed the baseline: a sustained slowdown
				// must keep looking anomalous, not redefine normal.
				s.ewmaGap = 0.3*float64(gap) + 0.7*s.ewmaGap
			}
		}
	}
	s.lastBeat = s.Server.Clock
}

// decideMigration runs the extended Equation 1 three-way choice for the
// in-flight task and acts on it: keep going, migrate to a spare, or abort
// (which sends the mobile down the local-fallback path).
func (s *Session) decideMigration(reason string, canFinish bool) {
	if !s.migOn || s.hostID+1 >= s.hosts {
		if !canFinish {
			// Draining host, nowhere to go: the offload dies here.
			s.abortTask("server." + reason)
		}
		return
	}
	st, err := s.Server.CheckpointState()
	if err != nil {
		s.abortTask("migrate.checkpoint")
		return
	}
	payload := s.encodeCheckpoint(st)
	msg := &Message{Kind: MsgCheckpoint, TaskID: s.cur.taskID, SP: st.SP, Data: payload}
	wire := msg.Encode()

	bh := estimate.Params{
		R:            s.est.R,
		BandwidthBps: s.backhaul.BandwidthBps,
		RTT:          2 * (s.backhaul.Latency + s.backhaul.PerMessage),
	}
	cost := bh.MigrationCost(int64(len(wire)))
	spec := s.tasks[s.cur.taskID]
	// Remaining work in mobile time: the profile's prediction minus what
	// the server has already burned through (scaled back up by R).
	remaining := spec.TimePerInvocation - simtime.PS(float64(s.Server.Comp[interp.CompCompute])*s.est.R)
	if remaining < 0 {
		remaining = 0
	}
	switch s.est.MigrationDecision(remaining, s.serverPlan.SlowFactor(s.hostID, s.Server.Clock), cost, canFinish, true) {
	case estimate.Finish:
		// Ride it out; demand K fresh overruns before re-deciding.
		s.strikes = 0
	case estimate.Fallback:
		s.abortTask("migrate.decline")
	case estimate.Migrate:
		s.shipCheckpoint(reason, st, wire)
	}
}

// shipCheckpoint performs the migration: the encoded checkpoint frame
// crosses the backhaul, the target (which binds the shared Program image
// for free) restores it, and execution resumes there. On any protocol
// failure the offload aborts — the mobile-side deadline machinery takes
// over exactly as for a link death.
func (s *Session) shipCheckpoint(reason string, st *interp.State, wire []byte) {
	from := s.hostID
	start := s.Server.Clock
	s.emit(obs.Event{Time: start, Kind: obs.KMigrateCheckpoint, Track: obs.TrackServer,
		A0: int64(s.cur.taskID), A1: int64(st.NumPages()), A2: int64(st.Bytes())})

	// The frame crosses the backhaul for real: decode what was encoded,
	// validating frame, CRC and payload before anything is restored.
	d := s.backhaul.TransferTime(int64(len(wire)))
	got, err := Decode(wire)
	if err != nil {
		s.abortTask("migrate.ship")
		return
	}
	restored, journal, outBuf, err := s.decodeCheckpoint(got)
	if err != nil {
		s.abortTask("migrate.ship")
		return
	}
	if err := s.Server.RestoreState(restored); err != nil {
		s.abortTask("migrate.resume")
		return
	}
	// The journaled remote output and the batched-output buffer traveled
	// inside the frame; commit-at-return picks them up on the new host.
	s.ioJournal = journal
	s.outBuf = outBuf

	// One resume acknowledgment back to the source completes the handoff.
	d += s.backhaul.Latency + s.backhaul.PerMessage
	s.Server.AddTime(d, interp.CompComm)
	s.Comp[interp.CompComm] += d

	s.hostID++
	s.strikes = 0
	s.ewmaGap = 0
	s.Stats.Migrations++
	s.Stats.MigratedPages += st.NumPages()
	s.Stats.MigratedBytes += int64(len(wire))
	s.hMigrate.Record(int64(d))
	s.emit(obs.Event{Time: start, Dur: d, Kind: obs.KMigrateShip, Track: obs.TrackServer,
		A0: int64(s.cur.taskID), A1: int64(len(wire))})
	s.emit(obs.Event{Time: s.Server.Clock, Kind: obs.KMigrateResume, Track: obs.TrackServer,
		Name: reason, A0: int64(s.cur.taskID), A1: int64(from), A2: int64(s.hostID)})
}

// encodeCheckpoint sub-encodes the migratable session state into a
// MsgCheckpoint Data payload:
//
//	[8 gen][8 faults]
//	[4 nMasked] nMasked x [4 pn]
//	[4 nPages]  nPages  x [4 pn][1 dirty][PageSize data]
//	[4 nJournal] nJournal x [4 len][len bytes]
//	[4 outLen][outLen bytes]
//
// The stack pointer rides in the envelope's SP field.
func (s *Session) encodeCheckpoint(st *interp.State) []byte {
	var buf bytes.Buffer
	w := func(v interface{}) { binary.Write(&buf, binary.LittleEndian, v) }
	c := st.Mem
	w(c.Gen)
	w(int64(c.Faults))
	w(uint32(len(c.Masked)))
	for _, pn := range c.Masked {
		w(pn)
	}
	w(uint32(len(c.Pages)))
	for _, p := range c.Pages {
		w(p.PN)
		var dirty uint8
		if p.Dirty {
			dirty = 1
		}
		w(dirty)
		buf.Write(p.Data)
	}
	w(uint32(len(s.ioJournal)))
	for _, out := range s.ioJournal {
		w(uint32(len(out)))
		buf.WriteString(out)
	}
	w(uint32(len(s.outBuf)))
	buf.Write(s.outBuf)
	return buf.Bytes()
}

// decodeCheckpoint reverses encodeCheckpoint, validating every declared
// count against the bytes actually present.
func (s *Session) decodeCheckpoint(msg *Message) (*interp.State, []string, []byte, error) {
	r := bytes.NewReader(msg.Data)
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	c := &mem.Checkpoint{}
	var faults int64
	var nMasked, nPages, nJournal, outLen uint32
	if err := firstErr(rd(&c.Gen), rd(&faults), rd(&nMasked)); err != nil {
		return nil, nil, nil, err
	}
	c.Faults = int(faults)
	if int64(nMasked)*4 > int64(r.Len()) {
		return nil, nil, nil, fmt.Errorf("offrt: absurd masked count %d", nMasked)
	}
	for i := uint32(0); i < nMasked; i++ {
		var pn uint32
		if err := rd(&pn); err != nil {
			return nil, nil, nil, err
		}
		c.Masked = append(c.Masked, pn)
	}
	if err := rd(&nPages); err != nil {
		return nil, nil, nil, err
	}
	if int64(nPages)*(5+mem.PageSize) > int64(r.Len()) {
		return nil, nil, nil, fmt.Errorf("offrt: absurd checkpoint page count %d", nPages)
	}
	for i := uint32(0); i < nPages; i++ {
		var pn uint32
		var dirty uint8
		if err := firstErr(rd(&pn), rd(&dirty)); err != nil {
			return nil, nil, nil, err
		}
		data := make([]byte, mem.PageSize)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, nil, nil, err
		}
		c.Pages = append(c.Pages, mem.CheckpointPage{PN: pn, Dirty: dirty == 1, Data: data})
	}
	if err := rd(&nJournal); err != nil {
		return nil, nil, nil, err
	}
	if int64(nJournal)*4 > int64(r.Len()) {
		return nil, nil, nil, fmt.Errorf("offrt: absurd journal count %d", nJournal)
	}
	var journal []string
	for i := uint32(0); i < nJournal; i++ {
		var n uint32
		if err := rd(&n); err != nil {
			return nil, nil, nil, err
		}
		if int64(n) > int64(r.Len()) {
			return nil, nil, nil, fmt.Errorf("offrt: journal entry overruns payload")
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, nil, nil, err
		}
		journal = append(journal, string(b))
	}
	if err := rd(&outLen); err != nil {
		return nil, nil, nil, err
	}
	if int64(outLen) != int64(r.Len()) {
		return nil, nil, nil, fmt.Errorf("offrt: checkpoint trailing bytes: declared %d, have %d", outLen, r.Len())
	}
	var outBuf []byte
	if outLen > 0 {
		outBuf = make([]byte, outLen)
		if _, err := io.ReadFull(r, outBuf); err != nil {
			return nil, nil, nil, err
		}
	}
	return &interp.State{SP: msg.SP, Mem: c}, journal, outBuf, nil
}
