package offrt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/profile"
)

// These tests run the system with one unification/partition mechanism
// removed and check that execution actually breaks — demonstrating that
// each of the paper's Section 3.2/3.3 mechanisms is load-bearing, not
// ceremonial.

// buildStackSensitive builds a program whose result depends on a stack
// local that lives across the offloaded call:
//
//	main: x := 42 (alloca); hot(n) scribbles over a large frame; return *x.
func buildStackSensitive() *ir.Module {
	mod := ir.NewModule("stack")
	b := ir.NewBuilder(mod)

	hot := b.NewFunc("hot", ir.I64, ir.P("n", ir.I32))
	{
		// A frame big enough to cover the caller's stack page when both
		// stacks share a base.
		scratch := b.Alloca(ir.Array(ir.I64, 2048))
		base := b.Index(b.Convert(ir.ConvBitcast, scratch, ir.Ptr(ir.I64)), ir.Int(0))
		acc := b.Alloca(ir.I64)
		b.Store(acc, ir.Int64(0))
		b.For("scrub", ir.Int(0), ir.Int(2048), ir.Int(1), func(i ir.Value) {
			p := b.Index(base, i)
			b.Store(p, ir.Int64(0x5A5A5A5A5A5A5A5A))
			b.Store(acc, b.Xor(b.Load(acc), b.Load(p)))
		})
		// Heavy enough to be selected.
		b.For("spin", ir.Int(0), b.Mul(b.F.Params[0], ir.Int(2000)), ir.Int(1), func(i ir.Value) {
			b.Store(acc, b.Add(b.Load(acc), ir.Int64(1)))
		})
		b.Ret(b.Load(acc))
	}

	b.NewFunc("main", ir.I32)
	x := b.Alloca(ir.I32)
	b.Store(x, ir.Int(42))
	b.Call(hot, ir.Int(10))
	b.Ret(b.Load(x))
	b.Finish()
	return mod
}

func compilePair(t *testing.T, mod *ir.Module, costScale int64) *compiler.Result {
	t.Helper()
	work := mod.Clone("prof")
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	pm, _ := interp.NewMachine(interp.Config{Name: "p", Spec: spec, Mod: work, CostScale: costScale, InitUVAGlobals: true})
	prof, err := profile.Run(pm)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := compiler.Compile(mod, prof, compiler.Default(650_000_000))
	if err != nil {
		t.Fatal(err)
	}
	return cres
}

func runPair(t *testing.T, cres *compiler.Result, costScale int64) (int32, error) {
	t.Helper()
	mobile, err := interp.NewMachine(interp.Config{
		Name: "mobile", Spec: arch.ARM32(), Std: arch.ARM32(), Mod: cres.Mobile,
		FuncBase: mem.FuncBaseMobile, InitUVAGlobals: true, CostScale: costScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, err := interp.NewMachine(interp.Config{
		Name: "server", Spec: arch.X8664(), Std: arch.ARM32(), Mod: cres.Server,
		FuncBase: mem.FuncBaseServer, ShuffleFuncs: true, ShuffleGlobals: true, CostScale: costScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []TaskSpec
	for _, tg := range cres.Targets {
		tasks = append(tasks, TaskSpec{TaskID: tg.TaskID, Name: tg.Name,
			TimePerInvocation: tg.TimePerInvocation, MemBytes: tg.MemBytes})
	}
	sess, err := NewSession(mobile, server, netsim.Fast80211AC(),
		WithTasks(tasks...), WithPolicy(Policy{ForceOffload: true}))
	if err != nil {
		t.Fatal(err)
	}
	return sess.RunMobile()
}

func TestStackReallocationIsLoadBearing(t *testing.T) {
	const cost = 2000

	// With the compiler's stack reallocation: the caller's local survives.
	cres := compilePair(t, buildStackSensitive(), cost)
	if cres.Server.StackBase == cres.Mobile.StackBase {
		t.Fatal("precondition: compiler should have relocated the server stack")
	}
	code, err := runPair(t, cres, cost)
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Fatalf("with stack reallocation: got %d, want 42", code)
	}

	// Without it (server stack back at the mobile base): the offloaded
	// task's frames overwrite the caller's live stack page, and the dirty
	// write-back carries the corruption home.
	cres2 := compilePair(t, buildStackSensitive(), cost)
	cres2.Server.StackBase = cres2.Mobile.StackBase
	code2, err := runPair(t, cres2, cost)
	if err == nil && code2 == 42 {
		t.Fatal("without stack reallocation the caller's local survived; the overlap bug did not manifest")
	}
	t.Logf("without stack reallocation: code=%d err=%v (corruption as expected)", code2, err)
}

// buildLayoutSensitive returns a program whose offloaded task reads a
// struct with architecture-sensitive layout ({i8, i64} pairs) written by
// the mobile side.
func buildLayoutSensitive() *ir.Module {
	mod := ir.NewModule("layout")
	b := ir.NewBuilder(mod)
	rec := ir.Struct("Rec",
		ir.StructField{Name: "tag", Type: ir.I8},
		ir.StructField{Name: "val", Type: ir.I64},
	)
	arr := b.GlobalVar("recs", ir.Ptr(rec))

	hot := b.NewFunc("hot", ir.I64, ir.P("n", ir.I32))
	{
		acc := b.Alloca(ir.I64)
		b.Store(acc, ir.Int64(0))
		r := b.Load(arr)
		b.For("sum", ir.Int(0), b.Mul(b.F.Params[0], ir.Int(400)), ir.Int(1), func(i ir.Value) {
			p := b.Index(r, b.Rem(i, ir.Int(64)))
			b.Store(acc, b.Add(b.Load(acc), b.Load(b.Field(p, 1))))
		})
		b.Ret(b.Load(acc))
	}

	b.NewFunc("main", ir.I32)
	raw := b.CallExtern(ir.ExternMalloc, ir.Int(64*16))
	r := b.Convert(ir.ConvBitcast, raw, ir.Ptr(rec))
	b.Store(arr, r)
	b.For("init", ir.Int(0), ir.Int(64), ir.Int(1), func(i ir.Value) {
		p := b.Index(r, i)
		b.Store(b.Field(p, 0), ir.Int8(1))
		b.Store(b.Field(p, 1), ir.Int64(7))
	})
	v := b.Call(hot, ir.Int(20))
	b.Ret(b.Convert(ir.ConvTrunc, v, ir.I32))
	b.Finish()
	return mod
}

func TestLayoutRealignmentIsLoadBearing(t *testing.T) {
	const cost = 3000

	cres := compilePair(t, buildLayoutSensitive(), cost)
	want, err := runPair(t, cres, cost)
	if err != nil {
		t.Fatal(err)
	}
	if want != 64*7*20*400/64 {
		t.Fatalf("with realignment: got %d, want %d", want, 64*7*20*400/64)
	}

	// Break realignment: re-lower the server binary against an IA32-style
	// layout that packs the i64 at offset 4 instead of 8 — the Figure 4
	// situation. The server now reads val from the wrong offset.
	cres2 := compilePair(t, buildLayoutSensitive(), cost)
	ir.Lower(cres2.Server, arch.X8664(), arch.IA32())
	got, err := runPair(t, cres2, cost)
	if err == nil && got == want {
		t.Fatal("without layout realignment the server still read correct data; the Figure 4 bug did not manifest")
	}
	t.Logf("without realignment: code=%d err=%v (garbage as expected)", got, err)
}
