package offrt

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/simtime"
)

// buildHeavy builds a program with one clearly profitable target that
// touches a heap buffer and prints a digest.
func buildHeavy() *ir.Module {
	mod := ir.NewModule("heavy")
	b := ir.NewBuilder(mod)
	data := b.GlobalVar("data", ir.Ptr(ir.I64))

	crunch := b.NewFunc("crunch", ir.I64, ir.P("n", ir.I32))
	{
		acc := b.Alloca(ir.I64)
		b.Store(acc, ir.Int64(0))
		arr := b.Load(data)
		b.For("rounds", ir.Int(0), ir.Int(60), ir.Int(1), func(r ir.Value) {
			b.For("scan", ir.Int(0), b.Convert(ir.ConvZExt, b.F.Params[0], ir.I32), ir.Int(1), func(i ir.Value) {
				p := b.Index(arr, i)
				v := b.Load(p)
				nv := b.Add(b.Mul(v, ir.Int64(31)), ir.Int64(7))
				b.Store(p, nv)
				b.Store(acc, b.Xor(b.Load(acc), nv))
			})
		})
		b.CallExtern(ir.ExternPrintf, b.Str("digest %d\n"), b.Load(acc))
		b.Ret(b.Load(acc))
	}

	b.NewFunc("main", ir.I32)
	n := int64(1024)
	raw := b.CallExtern(ir.ExternMalloc, ir.Int(8*n))
	arr := b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64))
	b.Store(data, arr)
	b.For("fill", ir.Int(0), ir.Int(n), ir.Int(1), func(i ir.Value) {
		b.Store(b.Index(arr, i), b.Convert(ir.ConvSExt, i, ir.I64))
	})
	d := b.Call(crunch, ir.Int(n))
	b.CallExtern(ir.ExternPrintf, b.Str("final %d\n"), d)
	b.Ret(ir.Int(0))
	b.Finish()
	return mod
}

type testEnv struct {
	cres   *compiler.Result
	link   *netsim.Link
	mobile *interp.Machine
	server *interp.Machine
	sess   *Session
	io     *interp.StdIO
}

func setup(t *testing.T, link *netsim.Link, pol Policy, extra ...Option) *testEnv {
	t.Helper()
	mod := buildHeavy()

	// Profile.
	work := mod.Clone("prof")
	mobSpec := arch.ARM32()
	ir.Lower(work, mobSpec, mobSpec)
	pm, _ := interp.NewMachine(interp.Config{Name: "prof", Spec: mobSpec, Mod: work, CostScale: 3000, InitUVAGlobals: true})
	prof, err := profile.Run(pm)
	if err != nil {
		t.Fatal(err)
	}

	opt := compiler.Default(link.BandwidthBps)
	cres, err := compiler.Compile(mod, prof, opt)
	if err != nil {
		t.Fatal(err)
	}

	io := interp.NewStdIO(nil)
	mobile, err := interp.NewMachine(interp.Config{
		Name: "mobile", Spec: opt.Mobile, Std: opt.Mobile, Mod: cres.Mobile,
		FuncBase: mem.FuncBaseMobile, InitUVAGlobals: true, IO: io, CostScale: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, err := interp.NewMachine(interp.Config{
		Name: "server", Spec: opt.Server, Std: opt.Mobile, Mod: cres.Server,
		FuncBase: mem.FuncBaseServer, ShuffleFuncs: true, ShuffleGlobals: true, CostScale: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []TaskSpec
	for _, tg := range cres.Targets {
		tasks = append(tasks, TaskSpec{TaskID: tg.TaskID, Name: tg.Name, TimePerInvocation: tg.TimePerInvocation, MemBytes: tg.MemBytes})
	}
	opts := append([]Option{WithTasks(tasks...), WithPolicy(pol)}, extra...)
	sess, err := NewSession(mobile, server, link, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{cres: cres, link: link, mobile: mobile, server: server, sess: sess, io: io}
}

func TestOffloadRoundTripSemantics(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	code, err := env.sess.RunMobile()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code %d", code)
	}
	out := env.io.Out.String()
	// The digest printed remotely and the final digest printed locally
	// (after dirty write-back) must agree.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("output = %q", out)
	}
	d1 := strings.TrimPrefix(lines[0], "digest ")
	d2 := strings.TrimPrefix(lines[1], "final ")
	if d1 != d2 {
		t.Errorf("remote digest %s != local final %s (dirty write-back broken?)", d1, d2)
	}
	st := env.sess.PerTask[1]
	if st.Offloads != 1 {
		t.Errorf("offloads = %d, want 1", st.Offloads)
	}
	if st.TrafficBytes <= 0 || st.DirtyPages == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
}

func TestDeclineOnHugeMemory(t *testing.T) {
	// Unit-test the dynamic gate: a gzip-like task (short compute, huge
	// memory) must be declined on the slow network and accepted on the
	// fast one (the starred bars of Figure 6).
	env := setup(t, netsim.Slow80211N(), Policy{})
	gzipLike := TaskSpec{TaskID: 99, Name: "spec_compress",
		TimePerInvocation: simtime.FromSeconds(15.3), MemBytes: 150_000_000}
	env.sess.tasks[99] = gzipLike
	env.sess.PerTask[99] = &TaskStats{}
	if env.sess.Gate(env.mobile, 99) {
		t.Error("gzip-like task should be declined on 802.11n")
	}
	if env.sess.PerTask[99].Declines != 1 {
		t.Error("decline not recorded")
	}

	fast := setup(t, netsim.Fast80211AC(), Policy{})
	fast.sess.tasks[99] = gzipLike
	fast.sess.PerTask[99] = &TaskStats{}
	if !fast.sess.Gate(fast.mobile, 99) {
		t.Error("gzip-like task should be accepted on 802.11ac")
	}
	// Drain the pending server goroutines.
	if err := env.sess.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := fast.sess.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestNoPrefetchCausesFaults(t *testing.T) {
	with := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	if _, err := with.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	without := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true, NoPrefetch: true})
	if _, err := without.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if without.sess.PerTask[1].Faults <= with.sess.PerTask[1].Faults {
		t.Errorf("NoPrefetch faults %d should exceed prefetch faults %d",
			without.sess.PerTask[1].Faults, with.sess.PerTask[1].Faults)
	}
	// Per-page round trips cost more wall time than the batched prefetch.
	if without.mobile.Clock <= with.mobile.Clock {
		t.Error("copy-on-demand-only should be slower than batched prefetch")
	}
}

func TestCompressionReducesWireBytes(t *testing.T) {
	comp := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	if _, err := comp.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	raw := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true, NoCompress: true})
	if _, err := raw.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if comp.sess.LinkStats.BytesToMobile >= raw.sess.LinkStats.BytesToMobile {
		t.Errorf("compressed bytes %d should be below raw %d",
			comp.sess.LinkStats.BytesToMobile, raw.sess.LinkStats.BytesToMobile)
	}
	if comp.sess.Stats.RawBytesToMobile != raw.sess.Stats.RawBytesToMobile {
		t.Errorf("pre-compression sizes should match: %d vs %d",
			comp.sess.Stats.RawBytesToMobile, raw.sess.Stats.RawBytesToMobile)
	}
}

func TestServerColdAfterFinalize(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	if _, err := env.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if got := len(env.server.Mem.PresentPages()); got != 0 {
		t.Errorf("server retains %d pages after finalization; the offload process should terminate without keeping data", got)
	}
}

func TestClockMonotoneAcrossOffload(t *testing.T) {
	env := setup(t, netsim.Fast80211AC(), Policy{ForceOffload: true})
	before := env.mobile.Clock
	if _, err := env.sess.RunMobile(); err != nil {
		t.Fatal(err)
	}
	if env.mobile.Clock <= before {
		t.Error("mobile clock did not advance")
	}
	if env.sess.Comp[interp.CompComm] <= 0 {
		t.Error("communication time missing")
	}
	var sum simtime.PS
	for _, c := range env.sess.Comp {
		sum += c
	}
	// The component sum should be within 25% of the wall clock (they
	// partition the run up to small unattributed slices).
	ratio := float64(sum) / float64(env.mobile.Clock)
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("component sum/wall = %.2f, want ~1", ratio)
	}
}

func TestDynamicGateReactsToDegradingNetwork(t *testing.T) {
	// The paper's dynamic estimation exists for "unexpected slow network
	// environments": when the link degrades mid-run, later invocations of
	// the same task must be declined while the early ones offload.
	env := setup(t, netsim.Fast80211AC(), Policy{})
	// The heavy program calls crunch once; build a session over a module
	// with three gated invocations instead.
	env.sess.Shutdown()

	mod := ir.NewModule("thrice")
	b := ir.NewBuilder(mod)
	data := b.GlobalVar("data", ir.Ptr(ir.I64))
	crunch := b.NewFunc("crunch", ir.I64, ir.P("round", ir.I32))
	acc := b.Alloca(ir.I64)
	b.Store(acc, ir.Int64(0))
	arr := b.Load(data)
	b.For("work", ir.Int(0), ir.Int(20000), ir.Int(1), func(i ir.Value) {
		idx := b.Rem(i, ir.Int(4096))
		v := b.Load(b.Index(arr, idx))
		b.Store(b.Index(arr, idx), b.Add(b.Mul(v, ir.Int64(13)), ir.Int64(1)))
		b.Store(acc, b.Xor(b.Load(acc), v))
	})
	b.Ret(b.Load(acc))
	b.NewFunc("main", ir.I32)
	raw := b.CallExtern(ir.ExternMalloc, ir.Int(8*4096))
	b.Store(data, b.Convert(ir.ConvBitcast, raw, ir.Ptr(ir.I64)))
	b.CallExtern(ir.ExternMemset, raw, ir.Int(5), ir.Int(8*4096))
	total := b.Alloca(ir.I64)
	b.Store(total, ir.Int64(0))
	b.For("rounds", ir.Int(0), ir.Int(3), ir.Int(1), func(r ir.Value) {
		ack := b.Alloca(ir.I32)
		b.CallExtern(ir.ExternScanf, b.Str("%d"), ack)
		b.Store(total, b.Add(b.Load(total), b.Call(crunch, r)))
	})
	b.CallExtern(ir.ExternPrintf, b.Str("total %d\n"), b.Load(total))
	b.Ret(ir.Int(0))
	b.Finish()

	const cost = 40000
	mkIO := func() *interp.StdIO { return interp.NewStdIO([]int64{1, 1, 1}) }

	// Profile + compile on the healthy link.
	work := mod.Clone("prof")
	spec := arch.ARM32()
	ir.Lower(work, spec, spec)
	pm, _ := interp.NewMachine(interp.Config{Name: "p", Spec: spec, Mod: work, CostScale: cost, InitUVAGlobals: true, IO: mkIO()})
	prof, err := profile.Run(pm)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := compiler.Compile(mod, prof, compiler.Default(netsim.Fast80211AC().BandwidthBps))
	if err != nil {
		t.Fatal(err)
	}

	// Run locally once to learn when the first invocation finishes, then
	// degrade the link to dial-up speeds right after it.
	lm, _ := interp.NewMachine(interp.Config{Name: "l", Spec: spec, Mod: mod.Clone("l"), CostScale: cost, InitUVAGlobals: true, IO: mkIO()})
	ir.Lower(lm.Mod, spec, spec)
	if _, err := lm.RunMain(); err != nil {
		t.Fatal(err)
	}
	// The offloaded run moves ~5x faster than local, so place the
	// degradation instant just after the first offloaded invocation would
	// complete (local/20 is comfortably past the setup + first gate).
	firstThird := lm.Clock / 50

	link := netsim.Fast80211AC()
	if err := link.SetPhases(
		netsim.Phase{Until: firstThird, BandwidthBps: link.BandwidthBps},
		netsim.Phase{Until: 1 << 62, BandwidthBps: 2_000}, // 2 kbps: effectively down
	); err != nil {
		t.Fatal(err)
	}

	mobile, err := interp.NewMachine(interp.Config{
		Name: "mobile", Spec: spec, Std: spec, Mod: cres.Mobile,
		FuncBase: mem.FuncBaseMobile, InitUVAGlobals: true, IO: mkIO(), CostScale: cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, err := interp.NewMachine(interp.Config{
		Name: "server", Spec: arch.X8664(), Std: spec, Mod: cres.Server,
		FuncBase: mem.FuncBaseServer, ShuffleFuncs: true, ShuffleGlobals: true, CostScale: cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []TaskSpec
	for _, tg := range cres.Targets {
		tasks = append(tasks, TaskSpec{TaskID: tg.TaskID, Name: tg.Name,
			TimePerInvocation: tg.TimePerInvocation, MemBytes: tg.MemBytes})
	}
	debugGate = func(clock simtime.PS, bw int64, ok bool) {
		t.Logf("gate: clock=%v bw=%d ok=%v (degrade at %v)", clock, bw, ok, firstThird)
	}
	defer func() { debugGate = nil }()
	sess, err := NewSession(mobile, server, link, WithTasks(tasks...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunMobile(); err != nil {
		t.Fatal(err)
	}

	offloads, declines := 0, 0
	for _, st := range sess.PerTask {
		offloads += st.Offloads
		declines += st.Declines
	}
	if offloads == 0 {
		t.Error("the first invocation (healthy link) should offload")
	}
	if declines == 0 {
		t.Error("post-degradation invocations should be declined")
	}
	if offloads+declines != 3 {
		t.Errorf("gate decisions = %d offloads + %d declines, want 3 total", offloads, declines)
	}
	t.Logf("degrading network: %d offloaded, %d declined (local fallback)", offloads, declines)
}
