package estimate

import (
	"math/rand"
	"testing"

	"repro/internal/simtime"
)

// randTier draws a plausible tier option from rng: WiFi-to-WAN-class
// bandwidth, µs-to-tens-of-ms RTT, compute ratio 1..16, queue 0..200ms.
func randTier(rng *rand.Rand) TierOption {
	return TierOption{
		OK: true,
		P: Params{
			R:            1 + 15*rng.Float64(),
			BandwidthBps: 50_000_000 + rng.Int63n(10_000_000_000),
			RTT:          simtime.PS(rng.Int63n(int64(50 * simtime.Millisecond))),
		},
		Queue: simtime.PS(rng.Int63n(int64(200 * simtime.Millisecond))),
	}
}

// Property 1: with the cloud tier absent, Placement degenerates exactly
// to ProfitableQueued on the edge tier's parameters — the 3-way gate is
// a strict generalization of the paper's 2-way gate.
func TestPlacementDegeneratesToProfitableQueued(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		edge := randTier(rng)
		tm := simtime.PS(1 + rng.Int63n(int64(2*simtime.Second)))
		mem := rng.Int63n(64 << 20)
		choice, est := Placement(tm, mem, edge, TierOption{})
		want2way := edge.P.ProfitableQueued(tm, mem, edge.Queue)
		if (choice == PlaceEdge) != want2way {
			t.Fatalf("case %d: Placement = %v, ProfitableQueued = %v (tm=%v mem=%d edge=%+v)",
				i, choice, want2way, tm, mem, edge)
		}
		if choice == PlaceCloud {
			t.Fatalf("case %d: picked absent cloud tier", i)
		}
		if choice == PlaceEdge {
			if want := edge.P.RemoteTime(tm, mem, edge.Queue); est != want {
				t.Fatalf("case %d: est = %v, want RemoteTime %v", i, est, want)
			}
		} else if est != tm {
			t.Fatalf("case %d: local est = %v, want tm %v", i, est, tm)
		}
	}
}

// Property 2: Placement is monotone in queue delay per tier — growing a
// tier's queue never makes that tier *more* attractive: the estimated
// completion never improves, and a tier that lost at queue q still
// loses at queue q' > q.
func TestPlacementMonotoneInQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		edge, cloud := randTier(rng), randTier(rng)
		tm := simtime.PS(1 + rng.Int63n(int64(2*simtime.Second)))
		mem := rng.Int63n(64 << 20)
		choice, est := Placement(tm, mem, edge, cloud)

		bump := simtime.PS(1 + rng.Int63n(int64(100*simtime.Millisecond)))
		for _, tier := range []PlacementChoice{PlaceEdge, PlaceCloud} {
			e2, c2 := edge, cloud
			if tier == PlaceEdge {
				e2.Queue += bump
			} else {
				c2.Queue += bump
			}
			choice2, est2 := Placement(tm, mem, e2, c2)
			if est2 < est {
				t.Fatalf("case %d: bumping %v queue improved estimate %v -> %v", i, tier, est, est2)
			}
			if choice != tier && choice2 == tier {
				t.Fatalf("case %d: %v lost at queue %v but won after +%v", i, tier, est, bump)
			}
		}
	}
}

// Property 3: Placement never picks a remote tier whose RemoteTime
// meets or exceeds local tm — the returned estimate is always <= tm,
// with equality only for PlaceLocal (remote must strictly win).
func TestPlacementNeverWorseThanLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		edge, cloud := randTier(rng), randTier(rng)
		// Randomly knock out tiers to cover all availability shapes.
		edge.OK = rng.Intn(4) != 0
		cloud.OK = rng.Intn(4) != 0
		tm := simtime.PS(1 + rng.Int63n(int64(2*simtime.Second)))
		mem := rng.Int63n(64 << 20)
		choice, est := Placement(tm, mem, edge, cloud)
		switch choice {
		case PlaceLocal:
			if est != tm {
				t.Fatalf("case %d: local est %v != tm %v", i, est, tm)
			}
		case PlaceEdge:
			if !edge.OK {
				t.Fatalf("case %d: picked unavailable edge", i)
			}
			if est >= tm || est != edge.P.RemoteTime(tm, mem, edge.Queue) {
				t.Fatalf("case %d: edge est %v vs tm %v", i, est, tm)
			}
		case PlaceCloud:
			if !cloud.OK {
				t.Fatalf("case %d: picked unavailable cloud", i)
			}
			if est >= tm || est != cloud.P.RemoteTime(tm, mem, cloud.Queue) {
				t.Fatalf("case %d: cloud est %v vs tm %v", i, est, tm)
			}
		}
	}
}

// Tie preference: equal estimates resolve local > edge > cloud.
func TestPlacementTieBreaks(t *testing.T) {
	// Zero-cost, infinitely-fast tiers with R<=0 mean exec = tm, so every
	// option estimates exactly tm: local must win the 3-way tie.
	free := TierOption{OK: true, P: Params{R: 0, BandwidthBps: 0, RTT: 0}}
	tm := simtime.FromSeconds(1)
	if choice, _ := Placement(tm, 1<<20, free, free); choice != PlaceLocal {
		t.Fatalf("3-way tie: got %v, want local", choice)
	}
	// Identical strictly-winning tiers: edge beats cloud.
	win := TierOption{OK: true, P: Params{R: 4, BandwidthBps: 1_000_000_000}}
	choice, est := Placement(tm, 1<<20, win, win)
	if choice != PlaceEdge {
		t.Fatalf("edge/cloud tie: got %v, want edge", choice)
	}
	if want := win.P.RemoteTime(tm, 1<<20, 0); est != want {
		t.Fatalf("tie est = %v, want %v", est, want)
	}
}

// PlacementMargin prices the queue signal exactly like
// ProfitableQueuedMargin: margin m on queue q behaves as queue q*m.
func TestPlacementMarginScalesQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 1000; i++ {
		edge, cloud := randTier(rng), randTier(rng)
		tm := simtime.PS(1 + rng.Int63n(int64(2*simtime.Second)))
		mem := rng.Int63n(64 << 20)
		margin := 1 + 2*rng.Float64()

		scaled := func(o TierOption) TierOption {
			o.Queue = simtime.PS(float64(o.Queue) * margin)
			return o
		}
		c1, e1 := PlacementMargin(tm, mem, edge, cloud, margin)
		c2, e2 := Placement(tm, mem, scaled(edge), scaled(cloud))
		if c1 != c2 || e1 != e2 {
			t.Fatalf("case %d: margin form (%v,%v) != scaled form (%v,%v)", i, c1, e1, c2, e2)
		}
	}
}
