// Package estimate implements the paper's performance estimation,
// Equation 1:
//
//	Tg = (Tm - Ts) - Tc = Tm*(1 - 1/R) - 2*(M/BW)*Ninvo
//
// where Tm is the task's mobile execution time, R the server/mobile
// performance ratio, M the task's memory usage, BW the network bandwidth and
// Ninvo the invocation count. The *static* estimator (Section 3.1) applies
// it to profile data to pick compile-time offload targets; the *dynamic*
// estimator (Section 4) re-evaluates it per invocation with run-time values,
// which is how gzip-class tasks avoid offloading over a slow network
// (the starred entries of Figure 6).
package estimate

import (
	"repro/internal/simtime"
)

// Params holds the environment the estimator assumes.
type Params struct {
	// R is the server/mobile performance ratio (Table 1 measures ~5.8; the
	// paper's Table 3 example uses 5).
	R float64
	// BandwidthBps is the network bandwidth in bits per second.
	BandwidthBps int64
	// RTT is the fixed per-invocation communication overhead (round-trip
	// latency plus message framing). Equation 1 as printed is
	// bandwidth-only; without this term a task that touches no memory
	// at all would look free to offload at any invocation count.
	RTT simtime.PS
}

// CommTime returns Tc for moving memBytes twice (mobile->server and back),
// invocations times.
func (p Params) CommTime(memBytes int64, invocations int) simtime.PS {
	rtt := p.RTT * simtime.PS(invocations)
	if p.BandwidthBps <= 0 {
		return rtt
	}
	secs := 2 * float64(memBytes) * 8 / float64(p.BandwidthBps) * float64(invocations)
	return simtime.FromSeconds(secs) + rtt
}

// IdealGain returns Tm*(1-1/R): the gain with free communication.
func (p Params) IdealGain(tm simtime.PS) simtime.PS {
	if p.R <= 0 {
		return 0
	}
	return simtime.PS(float64(tm) * (1 - 1/p.R))
}

// Gain evaluates Equation 1.
func (p Params) Gain(tm simtime.PS, memBytes int64, invocations int) simtime.PS {
	return p.IdealGain(tm) - p.CommTime(memBytes, invocations)
}

// Profitable reports whether Equation 1 predicts a positive gain.
func (p Params) Profitable(tm simtime.PS, memBytes int64, invocations int) bool {
	return p.Gain(tm, memBytes, invocations) > 0
}

// RemoteTime estimates the end-to-end remote completion time of one
// invocation: the two memory transfers of Equation 1, the server-side
// execution Tm/R, and the queueing delay a loaded server currently
// charges. With queue = 0 it is exactly the remote side of Equation 1
// (RemoteTime < Tm iff Profitable), so the single-server gate and the
// fleet's contention-aware gate agree on an idle fleet.
func (p Params) RemoteTime(tm simtime.PS, memBytes int64, queue simtime.PS) simtime.PS {
	exec := tm
	if p.R > 0 {
		exec = simtime.PS(float64(tm) / p.R)
	}
	return p.CommTime(memBytes, 1) + exec + queue
}

// ProfitableQueued generalizes Profitable to shared servers: offloading
// wins only if it still beats local execution after the dispatcher's
// current queueing delay is charged on top of communication.
func (p Params) ProfitableQueued(tm simtime.PS, memBytes int64, queue simtime.PS) bool {
	return p.RemoteTime(tm, memBytes, queue) < tm
}

// ProfitableQueuedMargin is ProfitableQueued with a confidence margin on
// the queueing-delay signal: the charged delay is queue*margin. The load
// signal a dispatcher exposes is stale by one transfer time and shared by
// every concurrently-deciding client, so it systematically underestimates
// the delay the request will actually meet under bursts (the
// join-shortest-queue herding bias). margin > 1 prices that bias in;
// margin == 1 is exactly ProfitableQueued. The fleet's adaptive admission
// controller raises the margin when sheds and deadline overruns show the
// raw estimate was trusted too far, and decays it back when the pool runs
// clean.
func (p Params) ProfitableQueuedMargin(tm simtime.PS, memBytes int64, queue simtime.PS, margin float64) bool {
	if margin != 1 {
		queue = simtime.PS(float64(queue) * margin)
	}
	return p.ProfitableQueued(tm, memBytes, queue)
}

// Estimate is the per-candidate result the target selector records
// (Table 3's right-hand columns).
type Estimate struct {
	Tideal simtime.PS // ideal gain
	Tc     simtime.PS // communication cost
	Tg     simtime.PS // net gain
}

// Evaluate fills an Estimate for one candidate.
func (p Params) Evaluate(tm simtime.PS, memBytes int64, invocations int) Estimate {
	ideal := p.IdealGain(tm)
	tc := p.CommTime(memBytes, invocations)
	return Estimate{Tideal: ideal, Tc: tc, Tg: ideal - tc}
}

// PlacementChoice is the 3-way placement verdict at dispatch time:
// run locally, offload to the nearby edge tier, or offload to the
// distant cloud tier.
type PlacementChoice int

const (
	// PlaceLocal runs the task on the mobile.
	PlaceLocal PlacementChoice = iota
	// PlaceEdge offloads over the access link to the edge pool.
	PlaceEdge
	// PlaceCloud offloads over access link + backhaul to the cloud pool.
	PlaceCloud
)

func (c PlacementChoice) String() string {
	switch c {
	case PlaceLocal:
		return "local"
	case PlaceEdge:
		return "edge"
	case PlaceCloud:
		return "cloud"
	}
	return "unknown"
}

// TierOption describes one remote tier as a placement candidate: the
// tier's effective network+compute parameters (for the cloud tier the
// Params are the serial combination of access link and backhaul) and
// the live queueing delay of the best server in that tier's pool.
// OK = false removes the tier from consideration (no pool configured,
// or every server down).
type TierOption struct {
	OK    bool
	P     Params
	Queue simtime.PS
}

// remoteTime scores the option with the margin-scaled queue signal.
func (o TierOption) remoteTime(tm simtime.PS, memBytes int64, margin float64) simtime.PS {
	q := o.Queue
	if margin != 1 {
		q = simtime.PS(float64(q) * margin)
	}
	return o.P.RemoteTime(tm, memBytes, q)
}

// Placement is the 3-way generalization of ProfitableQueued: it scores
// local execution (tm) against each available tier's RemoteTime — which
// already charges that tier's communication cost, compute ratio and
// live queue delay — and returns the choice minimizing estimated
// completion, together with that estimate:
//
//	T_local = tm
//	T_edge  = CommTime_edge(M,1) + tm/R_edge  + Q_edge
//	T_cloud = CommTime_cloud(M,1) + tm/R_cloud + Q_cloud
//
// A remote tier must strictly beat every cheaper alternative: local
// wins ties (matching ProfitableQueued's strict inequality), and edge
// wins ties against cloud (prefer the nearer tier when estimates are
// equal). With the cloud option absent, Placement degenerates exactly
// to ProfitableQueued on the edge tier's parameters.
func Placement(tm simtime.PS, memBytes int64, edge, cloud TierOption) (PlacementChoice, simtime.PS) {
	return PlacementMargin(tm, memBytes, edge, cloud, 1)
}

// PlacementMargin is Placement with ProfitableQueuedMargin's confidence
// margin applied to each tier's queue signal: the charged delay is
// Queue*margin. margin == 1 is exactly Placement. The fleet's adaptive
// admission controller feeds its per-server margin here so tiered
// dispatch prices the same herding bias as the 2-way gate.
func PlacementMargin(tm simtime.PS, memBytes int64, edge, cloud TierOption, margin float64) (PlacementChoice, simtime.PS) {
	best, choice := tm, PlaceLocal
	if edge.OK {
		if t := edge.remoteTime(tm, memBytes, margin); t < best {
			best, choice = t, PlaceEdge
		}
	}
	if cloud.OK {
		if t := cloud.remoteTime(tm, memBytes, margin); t < best {
			best, choice = t, PlaceCloud
		}
	}
	return choice, best
}

// MigrationCost estimates the time to move an in-flight offload to
// another server: ship the checkpoint payload one way over the
// server-to-server backhaul plus one round trip of handshaking. This is
// the new term migration adds to Equation 1 — unlike CommTime it moves
// only the mutated private pages, once, over a link far faster than the
// client radio.
func (p Params) MigrationCost(checkpointBytes int64) simtime.PS {
	if p.BandwidthBps <= 0 {
		return p.RTT
	}
	secs := float64(checkpointBytes) * 8 / float64(p.BandwidthBps)
	return simtime.FromSeconds(secs) + p.RTT
}

// MigrationChoice is the 3-way verdict for a degraded in-flight offload.
type MigrationChoice int

const (
	// Finish rides out the degradation on the current server.
	Finish MigrationChoice = iota
	// Migrate ships the checkpoint to a healthy server and resumes there.
	Migrate
	// Fallback abandons the offload and re-executes locally on the mobile.
	Fallback
)

func (c MigrationChoice) String() string {
	switch c {
	case Finish:
		return "finish"
	case Migrate:
		return "migrate"
	case Fallback:
		return "fallback"
	}
	return "unknown"
}

// MigrationDecision extends Equation 1's two-way gate to the mid-flight
// 3-way choice. remaining is the task's remaining work in mobile time;
// slowFactor is the current server's compute-time inflation (1 = healthy,
// +Inf or <= 0 = dead); cost is the MigrationCost of shipping the
// checkpoint (pass canMigrate = false when no viable target exists).
// It returns the choice minimizing estimated completion:
//
//	T_finish   = (remaining/R) * slowFactor
//	T_migrate  = cost + remaining/R
//	T_fallback = remaining (mobile re-execution of what's left)
//
// A dead or draining server cannot Finish; with no target, the decision
// degenerates to the recovery layer's migrate-vs-fallback coin with only
// one side.
func (p Params) MigrationDecision(remaining simtime.PS, slowFactor float64, cost simtime.PS, canFinish, canMigrate bool) MigrationChoice {
	exec := remaining
	if p.R > 0 {
		exec = simtime.PS(float64(remaining) / p.R)
	}
	tFallback := remaining
	best, choice := tFallback, Fallback
	if canFinish && slowFactor > 0 {
		if t := simtime.PS(float64(exec) * slowFactor); t < best {
			best, choice = t, Finish
		}
	}
	if canMigrate {
		if t := cost + exec; t < best {
			best, choice = t, Migrate
		}
	}
	return choice
}
