package estimate

import (
	"testing"

	"repro/internal/simtime"
)

func TestMigrationCost(t *testing.T) {
	p := Params{R: 6, BandwidthBps: 10_000_000_000, RTT: 100 * simtime.Microsecond}
	// 1 MiB over 10 Gbps is ~0.84 ms one way.
	got := p.MigrationCost(1 << 20)
	want := simtime.FromSeconds(float64(1<<20)*8/10e9) + p.RTT
	if got != want {
		t.Fatalf("MigrationCost = %v, want %v", got, want)
	}
	// Cost scales with checkpoint size.
	if p.MigrationCost(1<<24) <= p.MigrationCost(1<<20) {
		t.Fatal("cost does not grow with checkpoint size")
	}
	// Zero bandwidth degenerates to the handshake RTT.
	if z := (Params{RTT: simtime.Millisecond}).MigrationCost(1 << 30); z != simtime.Millisecond {
		t.Fatalf("zero-bandwidth cost = %v", z)
	}
}

func TestMigrationDecision(t *testing.T) {
	p := Params{R: 6, BandwidthBps: 10_000_000_000, RTT: 100 * simtime.Microsecond}
	remaining := 600 * simtime.Millisecond // 100ms of server time at R=6
	smallCkpt := p.MigrationCost(64 << 10)

	for _, tc := range []struct {
		name       string
		slowFactor float64
		cost       simtime.PS
		canFinish  bool
		canMigrate bool
		want       MigrationChoice
	}{
		// Healthy server: riding it out beats paying any migration cost.
		{"healthy", 1, smallCkpt, true, true, Finish},
		// 10x slowdown: 1s to finish in place vs ~100ms + small ship.
		{"heavy-slowdown", 10, smallCkpt, true, true, Migrate},
		// Mild slowdown: finish (110ms) still beats migrate (100ms + cost)
		// when the checkpoint is big.
		{"mild-slowdown-big-ckpt", 1.1, 20 * simtime.Millisecond, true, true, Finish},
		// Crash: can't finish, migration wins over mobile re-execution.
		{"crash-with-spare", 0, smallCkpt, false, true, Migrate},
		// Crash with no viable target: local fallback is all that's left.
		{"crash-no-spare", 0, 0, false, false, Fallback},
		// Drain excludes finish even though the server still computes.
		{"drain", 1, smallCkpt, false, true, Migrate},
		// Migration cost so high that re-executing locally is cheaper.
		{"absurd-ship-cost", 0, 2 * remaining, false, true, Fallback},
	} {
		if got := p.MigrationDecision(remaining, tc.slowFactor, tc.cost, tc.canFinish, tc.canMigrate); got != tc.want {
			t.Errorf("%s: MigrationDecision = %v, want %v", tc.name, got, tc.want)
		}
	}
}
