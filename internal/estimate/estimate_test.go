package estimate

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

// Table 3 of the paper: R = 5, BW = 80 Mbps. Candidates (exec time s,
// mem MB, invocations) -> (Tideal, Tc, Tg) in seconds.
func table3Params() Params { return Params{R: 5, BandwidthBps: 80_000_000} }

func TestTable3Rows(t *testing.T) {
	p := table3Params()
	rows := []struct {
		name        string
		execSec     float64
		memMB       int64
		invocations int
		tideal, tc  float64
		tg          float64
	}{
		{"runGame", 27.0, 20, 1, 21.6, 4.0, 17.6},
		{"getAITurn", 26.0, 12, 3, 20.8, 7.2, 13.6},
		{"for_i", 26.0, 12, 3, 20.8, 7.2, 13.6},
		{"for_j", 25.0, 12, 36, 20.0, 86.4, -66.4},
		{"getPlayerTurn", 1.5, 10, 3, 1.2, 6.0, -4.8},
	}
	for _, row := range rows {
		est := p.Evaluate(simtime.FromSeconds(row.execSec), row.memMB*1_000_000, row.invocations)
		if got := est.Tideal.Seconds(); math.Abs(got-row.tideal) > 0.05 {
			t.Errorf("%s: Tideal = %.2f, want %.2f", row.name, got, row.tideal)
		}
		if got := est.Tc.Seconds(); math.Abs(got-row.tc) > 0.05 {
			t.Errorf("%s: Tc = %.2f, want %.2f", row.name, got, row.tc)
		}
		if got := est.Tg.Seconds(); math.Abs(got-row.tg) > 0.1 {
			t.Errorf("%s: Tg = %.2f, want %.2f", row.name, got, row.tg)
		}
	}
}

func TestTable3Selection(t *testing.T) {
	// Of the Table 3 candidates, exactly runGame, getAITurn and for_i are
	// profitable; for_j loses to its 36 invocations and getPlayerTurn to
	// its tiny execution time.
	p := table3Params()
	if !p.Profitable(simtime.FromSeconds(26.0), 12_000_000, 3) {
		t.Error("getAITurn should be profitable")
	}
	if p.Profitable(simtime.FromSeconds(25.0), 12_000_000, 36) {
		t.Error("for_j should NOT be profitable (repeated communication)")
	}
	if p.Profitable(simtime.FromSeconds(1.5), 10_000_000, 3) {
		t.Error("getPlayerTurn should NOT be profitable")
	}
}

func TestGainMonotonicity(t *testing.T) {
	p := table3Params()
	base := p.Gain(simtime.FromSeconds(10), 1_000_000, 1)
	if p.Gain(simtime.FromSeconds(20), 1_000_000, 1) <= base {
		t.Error("gain should grow with task time")
	}
	if p.Gain(simtime.FromSeconds(10), 50_000_000, 1) >= base {
		t.Error("gain should shrink with memory size")
	}
	if p.Gain(simtime.FromSeconds(10), 1_000_000, 10) >= base {
		t.Error("gain should shrink with invocation count")
	}
}

func TestFasterNetworkHelps(t *testing.T) {
	slow := Params{R: 5.8, BandwidthBps: 144_000_000}
	fast := Params{R: 5.8, BandwidthBps: 844_000_000}
	tm := simtime.FromSeconds(15.3)
	mem := int64(150_000_000) // gzip-like
	if slow.Profitable(tm, mem, 1) {
		t.Error("gzip-like task should be rejected on slow network (Fig. 6 star)")
	}
	if !fast.Profitable(tm, mem, 1) {
		t.Error("gzip-like task should be accepted on fast network")
	}
}

func TestDegenerateParams(t *testing.T) {
	p := Params{R: 0, BandwidthBps: 0}
	if p.Gain(simtime.FromSeconds(1), 1000, 1) != 0 {
		t.Error("degenerate params should yield zero gain")
	}
}

func TestRemoteTimeMatchesEquationOne(t *testing.T) {
	p := Params{R: 5, BandwidthBps: 80_000_000, RTT: 4 * simtime.Millisecond}
	tm := simtime.FromSeconds(2)
	mem := int64(4 << 20)
	// With an empty queue the queued gate must agree with Equation 1.
	if p.Profitable(tm, mem, 1) != p.ProfitableQueued(tm, mem, 0) {
		t.Error("ProfitableQueued(queue=0) disagrees with Profitable")
	}
	base := p.RemoteTime(tm, mem, 0)
	if want := p.CommTime(mem, 1) + simtime.PS(float64(tm)/p.R); base != want {
		t.Errorf("RemoteTime = %v, want %v", base, want)
	}
	// Queueing delay is charged linearly and eventually flips the verdict.
	if p.RemoteTime(tm, mem, simtime.Second) != base+simtime.Second {
		t.Error("queue delay not charged")
	}
	if !p.ProfitableQueued(tm, mem, 0) {
		t.Fatal("baseline task should offload when idle")
	}
	if p.ProfitableQueued(tm, mem, 10*simtime.Second) {
		t.Error("a 10s queue should flip a 2s task back to local")
	}
}
