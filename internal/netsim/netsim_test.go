package netsim

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/simtime"
)

func TestTransferTimeScalesWithSize(t *testing.T) {
	l := Slow80211N()
	small := l.TransferTime(1000)
	big := l.TransferTime(1_000_000)
	if big <= small {
		t.Error("larger transfers should take longer")
	}
	// 1 MB at 110 Mbps is ~72.7 ms of wire time plus fixed costs.
	wire := big - l.Latency - l.PerMessage
	wantSec := 8.0 * 1e6 / 110e6
	if got := wire.Seconds(); got < wantSec*0.99 || got > wantSec*1.01 {
		t.Errorf("wire time = %.4fs, want ~%.4fs", got, wantSec)
	}
}

func TestFastLinkBeatsSlowLink(t *testing.T) {
	size := int64(10 << 20)
	if Fast80211AC().TransferTime(size) >= Slow80211N().TransferTime(size) {
		t.Error("802.11ac should transfer faster than 802.11n")
	}
}

func TestIdealLinkIsFree(t *testing.T) {
	if Ideal().TransferTime(1<<30) != 0 {
		t.Error("ideal link must cost nothing")
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	l := Slow80211N()
	s := l.Scaled(64)
	// size/64 over bandwidth/64 == size over bandwidth (up to fixed costs).
	full := l.TransferTime(64<<20) - l.Latency - l.PerMessage
	scaled := s.TransferTime(1<<20) - s.Latency - s.PerMessage
	diff := full - scaled
	if diff < 0 {
		diff = -diff
	}
	if diff > simtime.Microsecond {
		t.Errorf("scaling broke time equivalence: %v vs %v", full, scaled)
	}
	if l.BandwidthBps != 110_000_000 {
		t.Error("Scaled mutated the original link")
	}
}

func TestStatsAccounting(t *testing.T) {
	var st LinkStats
	l := Fast80211AC()
	d1 := st.Send(l, true, 5000, 0)
	d2 := st.Send(l, false, 7000, d1)
	if st.MsgsToServer != 1 || st.MsgsToMobile != 1 {
		t.Errorf("message counts = %d/%d, want 1/1", st.MsgsToServer, st.MsgsToMobile)
	}
	if st.BytesToServer != 5000 || st.BytesToMobile != 7000 {
		t.Errorf("byte counts = %d/%d", st.BytesToServer, st.BytesToMobile)
	}
	if st.TotalBytes() != 12000 {
		t.Errorf("TotalBytes = %d, want 12000", st.TotalBytes())
	}
	if st.CommTimeMobile != d1+d2 {
		t.Error("CommTimeMobile should accumulate both transfers")
	}
}

func TestSimtimeUnits(t *testing.T) {
	if simtime.FromSeconds(1.5) != simtime.PS(1500)*simtime.Millisecond {
		t.Error("FromSeconds inconsistent")
	}
	if simtime.Max(3, 5) != 5 || simtime.Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if (2 * simtime.Second).String() != "2.000s" {
		t.Errorf("String() = %q", (2 * simtime.Second).String())
	}
}

func TestTimeVaryingLink(t *testing.T) {
	l := Fast80211AC()
	if err := l.SetPhases(
		Phase{Until: simtime.Second, BandwidthBps: 650_000_000},
		Phase{Until: 2 * simtime.Second, BandwidthBps: 1_000_000},
		Phase{Until: 1 << 62, BandwidthBps: 650_000_000},
	); err != nil {
		t.Fatal(err)
	}
	if got := l.At(0).BandwidthBps; got != 650_000_000 {
		t.Errorf("phase 1 bandwidth = %d", got)
	}
	if got := l.At(1500 * simtime.Millisecond).BandwidthBps; got != 1_000_000 {
		t.Errorf("phase 2 bandwidth = %d", got)
	}
	if got := l.At(5 * simtime.Second).BandwidthBps; got != 650_000_000 {
		t.Errorf("phase 3 bandwidth = %d", got)
	}
	// Latency and per-message costs carry over; the resolved link is flat.
	eff := l.At(1500 * simtime.Millisecond)
	if eff.Latency != l.Latency || eff.PerMessage != l.PerMessage || len(eff.Phases) != 0 {
		t.Error("resolved link should inherit fixed costs and be phase-free")
	}
	// A phase-free link resolves to itself.
	flat := Slow80211N()
	if flat.At(simtime.Second) != flat {
		t.Error("flat link should resolve to itself")
	}
}

func TestSetPhasesRejectsUnsortedSchedule(t *testing.T) {
	l := Fast80211AC()
	err := l.SetPhases(
		Phase{Until: 2 * simtime.Second, BandwidthBps: 1_000_000},
		Phase{Until: simtime.Second, BandwidthBps: 650_000_000},
	)
	if err == nil {
		t.Fatal("unsorted phases must be rejected at construction")
	}
	if verr := l.ValidatePhases(); verr == nil {
		t.Error("ValidatePhases should agree with SetPhases")
	}

	dup := Fast80211AC()
	if err := dup.SetPhases(
		Phase{Until: simtime.Second, BandwidthBps: 1},
		Phase{Until: simtime.Second, BandwidthBps: 2},
	); err == nil {
		t.Error("duplicate Until instants must be rejected")
	}

	neg := Fast80211AC()
	if err := neg.SetPhases(Phase{Until: simtime.Second, BandwidthBps: -5}); err == nil {
		t.Error("negative bandwidth must be rejected")
	}

	ok := Fast80211AC()
	if err := ok.SetPhases(
		Phase{Until: simtime.Second, BandwidthBps: 1_000_000},
		Phase{Until: 2 * simtime.Second, BandwidthBps: 2_000_000},
	); err != nil {
		t.Errorf("sorted phases rejected: %v", err)
	}
}

func TestPhaseAt(t *testing.T) {
	flat := Slow80211N()
	if idx, bw := flat.PhaseAt(simtime.Second); idx != -1 || bw != flat.BandwidthBps {
		t.Errorf("flat link PhaseAt = (%d, %d)", idx, bw)
	}
	l := Fast80211AC()
	if err := l.SetPhases(
		Phase{Until: simtime.Second, BandwidthBps: 100},
		Phase{Until: 2 * simtime.Second, BandwidthBps: 200},
	); err != nil {
		t.Fatal(err)
	}
	if idx, bw := l.PhaseAt(0); idx != 0 || bw != 100 {
		t.Errorf("PhaseAt(0) = (%d, %d), want (0, 100)", idx, bw)
	}
	if idx, bw := l.PhaseAt(3 * simtime.Second); idx != 1 || bw != 200 {
		t.Errorf("PhaseAt(3s) = (%d, %d), want (1, 200) — last phase applies forever", idx, bw)
	}
}

func TestTrySendFaults(t *testing.T) {
	l := Fast80211AC()
	tr := obs.NewTracer(0)

	// No injector: verdict always Delivered, behavior identical to Send.
	clean := &LinkStats{Tracer: tr}
	d1, v := clean.TrySend(l, true, 4096, 0)
	if v != Delivered || d1 != l.TransferTime(4096) {
		t.Fatalf("injector-free TrySend = (%v, %v)", d1, v)
	}

	// Outage window: deterministic drops, still accounted as traffic.
	st := &LinkStats{Tracer: obs.NewTracer(0), Injector: faults.MustInjector(faults.Plan{
		Outages: []faults.Window{{Start: 0, End: simtime.Second}},
	})}
	_, v = st.TrySend(l, true, 4096, simtime.Millisecond)
	if v != Dropped {
		t.Fatalf("in-outage verdict = %v, want Dropped", v)
	}
	if st.MsgsToServer != 1 || st.BytesToServer != 4096 {
		t.Fatalf("lost message not accounted: %+v", st)
	}
	if _, v = st.TrySend(l, false, 64, 2*simtime.Second); v != Delivered {
		t.Fatalf("post-outage verdict = %v, want Delivered", v)
	}
	var faultEvents int
	for _, ev := range st.Tracer.Events() {
		if ev.Kind == obs.KFault {
			faultEvents++
			if ev.Name != "outage" {
				t.Fatalf("fault event name = %q", ev.Name)
			}
		}
	}
	if faultEvents != 1 {
		t.Fatalf("fault events = %d, want 1", faultEvents)
	}

	// Latency spike: delivered, slower than the clean transfer.
	sp := &LinkStats{Injector: faults.MustInjector(faults.Plan{Seed: 9, DelayRate: 1, MaxDelay: simtime.Millisecond})}
	d2, v := sp.TrySend(l, true, 4096, 0)
	if v != Delivered || d2 <= l.TransferTime(4096) {
		t.Fatalf("spiked TrySend = (%v, %v), want Delivered and > %v", d2, v, l.TransferTime(4096))
	}

	// Corruption: delivered-but-bad, full transfer time consumed.
	co := &LinkStats{Injector: faults.MustInjector(faults.Plan{CorruptRate: 1})}
	d3, v := co.TrySend(l, true, 4096, 0)
	if v != Corrupted || d3 != l.TransferTime(4096) {
		t.Fatalf("corrupted TrySend = (%v, %v)", d3, v)
	}
}

func TestProfilePresets(t *testing.T) {
	cases := []struct {
		name    string
		wantBps int64
		wantLat simtime.PS
		wantMsg simtime.PS
	}{
		{"slow", 110_000_000, 2 * simtime.Millisecond, 120 * simtime.Microsecond},
		{"fast", 650_000_000, 1 * simtime.Millisecond, 60 * simtime.Microsecond},
		{"lte", 35_000_000, 25 * simtime.Millisecond, 300 * simtime.Microsecond},
		{"ideal", 0, 0, 0},
		{"backhaul", 10_000_000_000, 50 * simtime.Microsecond, 5 * simtime.Microsecond},
		{"edge-wifi", 500_000_000, 500 * simtime.Microsecond, 40 * simtime.Microsecond},
		{"cloud-wan", 1_000_000_000, 40 * simtime.Millisecond, 20 * simtime.Microsecond},
	}
	if got, want := len(cases), len(Profiles()); got != want {
		t.Errorf("preset table covers %d profiles, registry has %d (%v)", got, want, Profiles())
	}
	for _, c := range cases {
		l, err := Profile(c.name)
		if err != nil {
			t.Fatalf("Profile(%q): %v", c.name, err)
		}
		if l.BandwidthBps != c.wantBps || l.Latency != c.wantLat || l.PerMessage != c.wantMsg {
			t.Errorf("Profile(%q) = {bw %d, lat %v, msg %v}, want {bw %d, lat %v, msg %v}",
				c.name, l.BandwidthBps, l.Latency, l.PerMessage, c.wantBps, c.wantLat, c.wantMsg)
		}
		// Each call must hand out an independent link.
		l.BandwidthBps = 1
		again, _ := Profile(c.name)
		if c.name != "ideal" && again.BandwidthBps == 1 {
			t.Errorf("Profile(%q) returns a shared link", c.name)
		}
	}
	if _, err := Profile("carrier-pigeon"); err == nil {
		t.Error("unknown profile accepted")
	} else {
		// The resolver's error must enumerate every known profile, so a
		// typo'd CLI flag tells the user what is actually available.
		for _, name := range Profiles() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("Profile error %q does not mention preset %q", err, name)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := Slow80211N()
	if err := l.SetPhases(
		Phase{Until: simtime.Second, BandwidthBps: 110_000_000},
		Phase{Until: 2 * simtime.Second, BandwidthBps: 9_000_000},
	); err != nil {
		t.Fatal(err)
	}
	c := l.Clone("client-0")
	if c.Name != "client-0" {
		t.Errorf("clone name = %q", c.Name)
	}
	if len(c.Phases) != 2 {
		t.Fatalf("clone lost the phase schedule: %v", c.Phases)
	}
	c.Phases[1].BandwidthBps = 1
	if l.Phases[1].BandwidthBps != 9_000_000 {
		t.Error("mutating the clone's phases reached the original")
	}
	keep := l.Clone("")
	if keep.Name != l.Name {
		t.Errorf("empty clone name should keep %q, got %q", l.Name, keep.Name)
	}
}
