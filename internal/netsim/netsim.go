// Package netsim models the wireless link between the mobile device and the
// server. The paper evaluates two environments — 802.11n ("slow", up to
// 144 Mbps) and 802.11ac ("fast", up to 844 Mbps) — and the communication
// component of every result in Figures 6 and 7 is bandwidth/latency arithmetic
// over this link, so a simple deterministic model reproduces the shapes.
package netsim

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Link describes one wireless environment.
type Link struct {
	Name string
	// BandwidthBps is the achievable goodput in bits per second.
	BandwidthBps int64
	// Latency is the one-way message latency.
	Latency simtime.PS
	// PerMessage is the fixed cost of each send operation (driver + MAC
	// overhead). Batching (Section 4) exists to amortize exactly this.
	PerMessage simtime.PS

	// Phases, when non-empty, make the link time-varying: phase i applies
	// until its Until instant, the last phase thereafter. The paper's
	// dynamic estimator exists exactly for such "unexpected slow network
	// environments" (Section 5.1). Install via SetPhases, which validates
	// ordering; At on unsorted phases would resolve the wrong bandwidth
	// regime.
	Phases []Phase
}

// Phase is one bandwidth regime of a time-varying link.
type Phase struct {
	Until        simtime.PS
	BandwidthBps int64
}

// SetPhases installs a time-varying bandwidth schedule, validating that the
// Until instants strictly increase and bandwidths are non-negative. Use it
// instead of assigning Phases directly: At resolves phases by first match,
// so an unsorted schedule silently yields the wrong bandwidth regime.
func (l *Link) SetPhases(phases ...Phase) error {
	l.Phases = phases
	return l.ValidatePhases()
}

// ValidatePhases checks an already-installed phase schedule.
func (l *Link) ValidatePhases() error {
	for i, p := range l.Phases {
		if p.BandwidthBps < 0 {
			return fmt.Errorf("netsim: phase %d of link %q has negative bandwidth %d", i, l.Name, p.BandwidthBps)
		}
		if i > 0 && l.Phases[i-1].Until >= p.Until {
			return fmt.Errorf("netsim: phases of link %q not in increasing order: phase %d ends at %v, phase %d at %v",
				l.Name, i-1, l.Phases[i-1].Until, i, p.Until)
		}
	}
	return nil
}

// At resolves the effective link at instant t: the same latency and
// per-message cost, with the bandwidth of the active phase.
func (l *Link) At(t simtime.PS) *Link {
	if len(l.Phases) == 0 {
		return l
	}
	eff := *l
	eff.Phases = nil
	_, eff.BandwidthBps = l.PhaseAt(t)
	return &eff
}

// PhaseAt returns the index and bandwidth of the phase active at t
// (-1 and the flat bandwidth for a phase-free link). The session tracer
// uses the index to detect regime changes.
func (l *Link) PhaseAt(t simtime.PS) (int, int64) {
	if len(l.Phases) == 0 {
		return -1, l.BandwidthBps
	}
	for i, p := range l.Phases {
		if t < p.Until {
			return i, p.BandwidthBps
		}
	}
	last := len(l.Phases) - 1
	return last, l.Phases[last].BandwidthBps
}

// Slow80211N returns the paper's slow environment (802.11n). The effective
// goodput is set below the 144 Mbps PHY maximum, as real WLANs achieve.
func Slow80211N() *Link {
	return &Link{
		Name:         "slow(802.11n)",
		BandwidthBps: 110_000_000,
		Latency:      2 * simtime.Millisecond,
		PerMessage:   120 * simtime.Microsecond,
	}
}

// Fast80211AC returns the paper's fast environment (802.11ac).
func Fast80211AC() *Link {
	return &Link{
		Name:         "fast(802.11ac)",
		BandwidthBps: 650_000_000,
		Latency:      1 * simtime.Millisecond,
		PerMessage:   60 * simtime.Microsecond,
	}
}

// Ideal returns an infinitely fast link: the paper's "ideal offloading"
// baseline, execution with zero communication or translation overhead.
func Ideal() *Link {
	return &Link{Name: "ideal", BandwidthBps: 0, Latency: 0, PerMessage: 0}
}

// LTE returns a cellular environment: far lower goodput and much higher
// latency than either WLAN. The fleet's heterogeneous client populations
// mix it with the two 802.11 profiles.
func LTE() *Link {
	return &Link{
		Name:         "lte",
		BandwidthBps: 35_000_000,
		Latency:      25 * simtime.Millisecond,
		PerMessage:   300 * simtime.Microsecond,
	}
}

// Backhaul returns a server-to-server datacenter link: two orders of
// magnitude more bandwidth and far lower latency than any client radio.
// Mid-flight migration ships checkpoints over it, which is why moving an
// offload between servers is so much cheaper than re-faulting the working
// set across the client's WLAN.
func Backhaul() *Link {
	return &Link{
		Name:         "backhaul(10GbE)",
		BandwidthBps: 10_000_000_000,
		Latency:      50 * simtime.Microsecond,
		PerMessage:   5 * simtime.Microsecond,
	}
}

// EdgeWiFi returns the access link to a *nearby* edge server: an 802.11ac
// AP colocated with the edge pool, so the latency is dominated by the air
// interface rather than any wide-area hop. This is the "low RTT, small R"
// tier of the mobile -> edge -> cloud topology.
func EdgeWiFi() *Link {
	return &Link{
		Name:         "edge-wifi",
		BandwidthBps: 500_000_000,
		Latency:      500 * simtime.Microsecond,
		PerMessage:   40 * simtime.Microsecond,
	}
}

// CloudWAN returns the edge-to-cloud backhaul: a provisioned wide-area
// path with plenty of bandwidth but tens of milliseconds of propagation
// delay. Reaching the cloud tier crosses the client's access link *and*
// this leg in series, which is exactly why Equation 1 turns into a 3-way
// placement decision: the cloud's large compute ratio must buy back the
// WAN round trip.
func CloudWAN() *Link {
	return &Link{
		Name:         "cloud-wan",
		BandwidthBps: 1_000_000_000,
		Latency:      40 * simtime.Millisecond,
		PerMessage:   20 * simtime.Microsecond,
	}
}

// Clone returns an independent deep copy of l (including any phase
// schedule) renamed to name; an empty name keeps l's. The fleet uses it to
// stamp out per-client links from one named profile without re-declaring
// phase tables.
func (l *Link) Clone(name string) *Link {
	c := *l
	if name != "" {
		c.Name = name
	}
	if len(l.Phases) > 0 {
		c.Phases = append([]Phase(nil), l.Phases...)
	}
	return &c
}

// profiles is the preset registry, in the order Profiles reports (and the
// resolver's error message enumerates).
var profiles = []struct {
	name string
	mk   func() *Link
}{
	{"slow", Slow80211N},
	{"fast", Fast80211AC},
	{"lte", LTE},
	{"ideal", Ideal},
	{"backhaul", Backhaul},
	{"edge-wifi", EdgeWiFi},
	{"cloud-wan", CloudWAN},
}

// Profiles lists every known link preset name, in registry order.
func Profiles() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.name
	}
	return names
}

// Profile resolves a named link preset: "slow" (802.11n), "fast"
// (802.11ac), "lte", "ideal", "backhaul" (10GbE server fabric),
// "edge-wifi" (nearby edge access), or "cloud-wan" (edge-to-cloud
// backhaul). Each call returns a fresh Link, so callers may mutate the
// result freely.
func Profile(name string) (*Link, error) {
	for _, p := range profiles {
		if p.name == name {
			return p.mk(), nil
		}
	}
	return nil, fmt.Errorf("netsim: unknown link profile %q (want %s)", name, strings.Join(Profiles(), ", "))
}

// Scaled returns a copy of l with bandwidth divided by factor. The
// workloads shrink their memory footprints by the same factor, so all
// time ratios are preserved while the simulation stays small.
func (l *Link) Scaled(factor int) *Link {
	if factor <= 1 {
		c := *l
		return &c
	}
	c := *l
	c.Name = fmt.Sprintf("%s/%d", l.Name, factor)
	c.BandwidthBps = l.BandwidthBps / int64(factor)
	return &c
}

// TransferTime returns the simulated duration of sending size bytes as one
// message.
func (l *Link) TransferTime(size int64) simtime.PS {
	if l.BandwidthBps == 0 { // ideal link
		return 0
	}
	// Float math avoids int64 overflow at size*8*1e12 for multi-MB
	// payloads; 52 bits of mantissa are ample for picosecond precision
	// at these magnitudes.
	wire := simtime.PS(float64(size) * 8 / float64(l.BandwidthBps) * float64(simtime.Second))
	return l.Latency + l.PerMessage + wire
}

// LinkStats accumulates wire-level traffic accounting (bytes and messages
// per direction) for one offloading run; Table 4's "Com. Traf." column and
// the communication segments of Figure 7 come from here. Session-level
// counters (pages, faults, write-backs) live in offrt.SessionStats — the
// runtime no longer mixes its bookkeeping into the link's counter struct.
type LinkStats struct {
	MsgsToServer   int
	MsgsToMobile   int
	BytesToServer  int64
	BytesToMobile  int64
	CommTimeMobile simtime.PS

	// Tracer, when set, receives one KMessage event per Send.
	Tracer *obs.Tracer
	// Job, when non-zero, attributes emitted KMessage/KFault events to the
	// logical offload request currently on the wire (see obs.Event.Job);
	// the session restamps it as jobs begin.
	Job int64

	// Injector, when set, is consulted on every transfer and may drop,
	// corrupt or delay it (see TrySend). Send ignores verdicts other than
	// added delay, preserving its infallible contract for callers that
	// predate the recovery layer.
	Injector *faults.Injector
}

// Verdict is the delivery outcome of one TrySend.
type Verdict uint8

const (
	// Delivered means the message arrived intact after the returned time.
	Delivered Verdict = iota
	// Dropped means the message was lost; the sender learns nothing until
	// its deadline expires.
	Dropped
	// Corrupted means the message arrived after the returned time but
	// fails its checksum at the receiver.
	Corrupted
)

func (v Verdict) String() string {
	return [...]string{"delivered", "dropped", "corrupted"}[v]
}

// Stats is the legacy name of LinkStats.
//
// Deprecated: use LinkStats; session-level counters moved to
// offrt.SessionStats.
type Stats = LinkStats

// TotalBytes returns traffic in both directions.
func (s *LinkStats) TotalBytes() int64 { return s.BytesToServer + s.BytesToMobile }

// Send accounts one message of size bytes in the given direction, departing
// at instant at, and returns its transfer time. It keeps the historical
// infallible contract: injected drops and corruptions are ignored (only
// latency spikes show), so callers that cannot recover still simulate a
// reliable link. Recovery-aware callers use TrySend.
func (s *LinkStats) Send(l *Link, toServer bool, size int64, at simtime.PS) simtime.PS {
	d, _ := s.TrySend(l, toServer, size, at)
	return d
}

// TrySend accounts one message like Send and additionally reports its
// delivery verdict under the installed fault injector. Lost and corrupted
// messages still consume radio time and count as traffic — the sender's
// radio transmitted them; only the receiver never (usefully) saw them.
// Without an injector the verdict is always Delivered and the behavior is
// bit-identical to the historical Send.
func (s *LinkStats) TrySend(l *Link, toServer bool, size int64, at simtime.PS) (simtime.PS, Verdict) {
	d := l.TransferTime(size)
	verdict := Delivered
	if f := s.Injector.Decide(at); f.Kind != faults.None {
		switch f.Kind {
		case faults.Delay:
			d += f.Delay
		case faults.Corrupt:
			verdict = Corrupted
		case faults.Drop, faults.Outage:
			verdict = Dropped
		}
		s.Tracer.Emit(obs.Event{Time: at, Kind: obs.KFault, Track: obs.TrackLink, Name: f.Kind.String(), A0: size, A1: int64(f.Delay), Job: s.Job})
	}
	dir := "to_mobile"
	if toServer {
		s.MsgsToServer++
		s.BytesToServer += size
		dir = "to_server"
	} else {
		s.MsgsToMobile++
		s.BytesToMobile += size
	}
	s.CommTimeMobile += d
	s.Tracer.Emit(obs.Event{Time: at, Dur: d, Kind: obs.KMessage, Track: obs.TrackLink, Name: dir, A0: size, Job: s.Job})
	return d, verdict
}
