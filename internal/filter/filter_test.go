package filter

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/ir/analysis"
)

// buildFigure3 reproduces the call structure of the paper's Figure 3:
// getPlayerTurn contains scanf (interactive input, never remotable);
// getAITurn contains printf (remotable output); runGame calls both;
// main calls runGame.
func buildFigure3(t *testing.T) (*ir.Module, *analysis.CallGraph) {
	t.Helper()
	mod := ir.NewModule("chess")
	b := ir.NewBuilder(mod)

	ai := b.NewFunc("getAITurn", ir.I32)
	b.CallExtern(ir.ExternPrintf, b.Str("%f\n"), ir.Float(1.0))
	b.Ret(ir.Int(0))

	player := b.NewFunc("getPlayerTurn", ir.I32)
	dst := b.Alloca(ir.I32)
	b.CallExtern(ir.ExternScanf, b.Str("%d"), dst)
	b.Ret(b.Load(dst))

	run := b.NewFunc("runGame", ir.I32)
	b.Call(player)
	b.Call(ai)
	b.Ret(ir.Int(0))

	b.NewFunc("main", ir.I32)
	b.Call(run)
	b.Ret(ir.Int(0))
	b.Finish()
	return mod, analysis.BuildCallGraph(mod)
}

func TestFigure3Classification(t *testing.T) {
	mod, cg := buildFigure3(t)
	r := Classify(mod, cg, Options{RemoteIO: true})

	if ms, why := r.FuncMachineSpecific(mod.Func("getAITurn")); ms {
		t.Errorf("getAITurn should be offloadable with remote I/O, got machine-specific: %s", why)
	}
	for _, name := range []string{"getPlayerTurn", "runGame", "main"} {
		if ms, _ := r.FuncMachineSpecific(mod.Func(name)); !ms {
			t.Errorf("%s should be machine-specific (scanf taint)", name)
		}
	}
	// Taint reasons propagate the cause upward.
	_, why := r.FuncMachineSpecific(mod.Func("main"))
	if !strings.Contains(why, "runGame") {
		t.Errorf("main's reason should mention runGame, got %q", why)
	}
}

func TestWithoutRemoteIOPrintfDisqualifies(t *testing.T) {
	mod, cg := buildFigure3(t)
	r := Classify(mod, cg, Options{RemoteIO: false})
	if ms, _ := r.FuncMachineSpecific(mod.Func("getAITurn")); !ms {
		t.Error("without the remote I/O manager, printf must disqualify getAITurn")
	}
}

func TestAsmAndSyscallTaint(t *testing.T) {
	mod := ir.NewModule("ms")
	b := ir.NewBuilder(mod)
	b.NewFunc("usesAsm", ir.I32)
	b.CallExtern(ir.ExternAsm)
	b.Ret(ir.Int(0))
	b.NewFunc("usesSyscall", ir.I32)
	b.CallExtern(ir.ExternSyscall)
	b.Ret(ir.Int(0))
	b.NewFunc("usesUnknown", ir.I32)
	b.CallExtern(ir.ExternUnknown)
	b.Ret(ir.Int(0))
	b.NewFunc("clean", ir.I32)
	b.Ret(ir.Int(7))
	b.Finish()
	cg := analysis.BuildCallGraph(mod)
	r := Classify(mod, cg, Options{RemoteIO: true})
	for _, name := range []string{"usesAsm", "usesSyscall", "usesUnknown"} {
		if ms, _ := r.FuncMachineSpecific(mod.Func(name)); !ms {
			t.Errorf("%s should be machine-specific", name)
		}
	}
	if ms, _ := r.FuncMachineSpecific(mod.Func("clean")); ms {
		t.Error("clean function misclassified")
	}
}

func TestLoopClassification(t *testing.T) {
	mod := ir.NewModule("loops")
	b := ir.NewBuilder(mod)
	f := b.NewFunc("work", ir.I32, ir.P("n", ir.I32))
	acc := b.Alloca(ir.I32)
	b.Store(acc, ir.Int(0))
	// Clean loop.
	b.For("clean_loop", ir.Int(0), f.Params[0], ir.Int(1), func(i ir.Value) {
		b.Store(acc, b.Add(b.Load(acc), i))
	})
	// Loop with a syscall.
	b.For("sys_loop", ir.Int(0), f.Params[0], ir.Int(1), func(i ir.Value) {
		b.CallExtern(ir.ExternSyscall)
	})
	b.Ret(b.Load(acc))
	b.Finish()

	cg := analysis.BuildCallGraph(mod)
	r := Classify(mod, cg, Options{RemoteIO: true})
	g, _ := analysis.BuildCFG(f)
	forest := analysis.FindLoops(g, analysis.Dominators(g))
	var clean, sys *analysis.Loop
	for _, l := range forest.Loops {
		switch l.Name() {
		case "clean_loop":
			clean = l
		case "sys_loop":
			sys = l
		}
	}
	if ms, _ := r.LoopMachineSpecific(clean, Options{RemoteIO: true}); ms {
		t.Error("clean loop misclassified")
	}
	if ms, _ := r.LoopMachineSpecific(sys, Options{RemoteIO: true}); !ms {
		t.Error("syscall loop should be machine-specific")
	}
	// The containing function is tainted too.
	if ms, _ := r.FuncMachineSpecific(f); !ms {
		t.Error("function containing syscall loop should be machine-specific")
	}
}

func TestIndirectCallTaintPropagation(t *testing.T) {
	mod := ir.NewModule("ind")
	b := ir.NewBuilder(mod)
	sig := ir.Signature(ir.I32, ir.I32)
	bad := b.NewFunc("badTarget", ir.I32, ir.P("x", ir.I32))
	b.CallExtern(ir.ExternAsm)
	b.Ret(ir.Int(0))
	tbl := b.GlobalVar("tbl", ir.Array(ir.Ptr(sig), 1), bad)
	caller := b.NewFunc("caller", ir.I32)
	fp := b.Load(b.Index(tbl, ir.Int(0)))
	b.Ret(b.CallPtr(fp, sig, ir.Int(1)))
	b.Finish()
	cg := analysis.BuildCallGraph(mod)
	r := Classify(mod, cg, Options{RemoteIO: true})
	if ms, _ := r.FuncMachineSpecific(caller); !ms {
		t.Error("indirect call to tainted target should taint caller")
	}
}
