// Package filter implements the paper's function filter (Section 3.1): it
// classifies functions and loops as machine specific when they contain
//
//   - assembly instructions,
//   - system calls,
//   - unknown external library calls, or
//   - I/O instructions,
//
// and propagates the classification to callers, since a task that invokes a
// machine-specific task is itself unable to move. When the remote I/O
// optimization (Section 3.4) is enabled, well-known I/O functions with
// remote variants (printf, file streams) stop being disqualifying — which
// is precisely how getAITurn in Figure 3 stays offloadable despite its
// printf, while getPlayerTurn's scanf pins it (and its callers runGame and
// main) to the mobile device.
package filter

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/ir/analysis"
)

// Result is the classification of a module.
type Result struct {
	// Reason maps machine-specific functions to a human-readable cause.
	Reason map[*ir.Func]string
	cg     *analysis.CallGraph
}

// Options controls filtering.
type Options struct {
	// RemoteIO enables Section 3.4's remote I/O manager: output and file
	// stream calls no longer disqualify a task.
	RemoteIO bool
}

// Classify runs the filter over m using the given call graph.
func Classify(m *ir.Module, cg *analysis.CallGraph, opt Options) *Result {
	r := &Result{Reason: make(map[*ir.Func]string), cg: cg}

	// Phase 1: direct taint from instruction contents.
	for _, f := range m.Funcs {
		if f.IsExtern() {
			continue
		}
		if why := directTaint(f, opt); why != "" {
			r.Reason[f] = why
		}
	}

	// Phase 2: propagate to callers until fixed point.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if f.IsExtern() || r.Reason[f] != "" {
				continue
			}
			for _, callee := range cg.Callees[f] {
				if callee.IsExtern() {
					continue
				}
				if why := r.Reason[callee]; why != "" {
					r.Reason[f] = fmt.Sprintf("calls machine-specific %s (%s)", callee.Nam, why)
					changed = true
					break
				}
			}
		}
	}
	return r
}

// directTaint inspects f's own instructions.
func directTaint(f *ir.Func, opt Options) string {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			k := call.Callee.Extern
			if k == ir.ExternNone {
				continue
			}
			if k.IsMachineSpecific() {
				return fmt.Sprintf("contains %s", k)
			}
			if k.IsLocalIO() {
				if _, remotable := k.RemoteVariant(); remotable && opt.RemoteIO {
					continue // remote I/O manager will handle it
				}
				return fmt.Sprintf("contains I/O call %s", k)
			}
		}
	}
	return ""
}

// FuncMachineSpecific reports whether f was classified machine specific and
// why.
func (r *Result) FuncMachineSpecific(f *ir.Func) (bool, string) {
	why, ok := r.Reason[f]
	return ok, why
}

// LoopMachineSpecific reports whether the loop contains a machine-specific
// instruction or call.
func (r *Result) LoopMachineSpecific(l *analysis.Loop, opt Options) (bool, string) {
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if ci, ok := in.(*ir.CallInd); ok {
				// Conservative indirect resolution, as in the call graph.
				for _, t := range r.cg.AddressTaken {
					if t.Sig.Equal(ci.Sig) {
						if why := r.Reason[t]; why != "" {
							return true, fmt.Sprintf("may call machine-specific %s (%s)", t.Nam, why)
						}
					}
				}
				continue
			}
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			k := call.Callee.Extern
			if k == ir.ExternNone {
				if why := r.Reason[call.Callee]; why != "" {
					return true, fmt.Sprintf("calls machine-specific %s (%s)", call.Callee.Nam, why)
				}
				continue
			}
			if k.IsMachineSpecific() {
				return true, fmt.Sprintf("contains %s", k)
			}
			if k.IsLocalIO() {
				if _, remotable := k.RemoteVariant(); remotable && opt.RemoteIO {
					continue
				}
				return true, fmt.Sprintf("contains I/O call %s", k)
			}
		}
	}
	return false, ""
}
