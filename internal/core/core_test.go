package core

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/interp"
	"repro/internal/offrt"
	"repro/internal/workloads"
)

// chessSetup profiles and compiles the chess example once per network.
func chessSetup(t *testing.T, n Network) (*Framework, *LocalResult, *OffloadResult) {
	t.Helper()
	fw := NewFramework(n)
	fw.CostScale = workloads.ChessCostScale
	mod := workloads.BuildChess(workloads.DefaultChessConfig())

	prof, err := fw.Profile(mod, workloads.ChessInput(5, 2))
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// getAITurn must be the selected target, like the paper's example.
	found := false
	for _, tg := range cres.Targets {
		if tg.Name == "getAITurn" {
			found = true
		}
	}
	if !found {
		t.Fatalf("getAITurn not among targets: %+v", cres.Targets)
	}

	local, err := fw.RunLocal(mod, workloads.ChessInput(8, 2))
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	off, err := fw.RunOffloaded(cres, workloads.ChessInput(8, 2), offrt.Policy{ForceOffload: true})
	if err != nil {
		t.Fatalf("RunOffloaded: %v", err)
	}
	return fw, local, off
}

func TestChessEndToEndFastNetwork(t *testing.T) {
	_, local, off := chessSetup(t, FastNetwork)

	// Semantics: the offloaded run must print exactly what the local run
	// printed — same scores, produced on the server, shipped back through
	// remote I/O, same final state.
	if local.Output != off.Output {
		t.Errorf("output mismatch:\nlocal:\n%s\noffloaded:\n%s", head(local.Output), head(off.Output))
	}
	if !off.Offloaded() {
		t.Fatal("no task was offloaded despite ForceOffload")
	}
	// Performance: the AI turns dominate, so the speedup should approach
	// the platform ratio of ~5.8 minus overheads.
	sp := off.Speedup(local)
	if sp < 2.0 {
		t.Errorf("speedup = %.2f, want > 2 (chess offload should pay off)", sp)
	}
	if off.Time >= local.Time {
		t.Error("offloaded run slower than local on fast network")
	}
	// Overhead accounting is populated.
	if off.Comp[interp.CompCompute] <= 0 || off.Comp[interp.CompComm] <= 0 {
		t.Error("missing compute/comm components")
	}
	if off.Comp[interp.CompFptr] <= 0 {
		t.Error("chess uses the evals fptr table; fptr overhead should be nonzero")
	}
	if off.Comp[interp.CompRemoteIO] <= 0 {
		t.Error("chess prints from the offloaded task; remote I/O overhead should be nonzero")
	}
	if off.LinkStats.TotalBytes() <= 0 {
		t.Error("no traffic accounted")
	}
	// Battery: offloading should save energy (Figure 6(b)).
	if off.NormalizedEnergy(local) >= 1.0 {
		t.Errorf("normalized energy = %.2f, want < 1", off.NormalizedEnergy(local))
	}
}

func TestChessDynamicGateOffloadsOnFast(t *testing.T) {
	fw := NewFramework(FastNetwork)
	fw.CostScale = workloads.ChessCostScale
	mod := workloads.BuildChess(workloads.DefaultChessConfig())
	prof, err := fw.Profile(mod, workloads.ChessInput(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		t.Fatal(err)
	}
	off, err := fw.RunOffloaded(cres, workloads.ChessInput(8, 2), offrt.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if !off.Offloaded() {
		t.Error("dynamic estimator should offload chess AI on the fast network")
	}
}

func TestChessLocalFallbackGateDisabled(t *testing.T) {
	fw := NewFramework(FastNetwork)
	fw.CostScale = workloads.ChessCostScale
	mod := workloads.BuildChess(workloads.DefaultChessConfig())
	prof, _ := fw.Profile(mod, workloads.ChessInput(5, 2))
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		t.Fatal(err)
	}
	local, err := fw.RunLocal(mod, workloads.ChessInput(7, 2))
	if err != nil {
		t.Fatal(err)
	}
	// With the gate disabled, the offloading-enabled binary runs fully
	// locally and must behave identically to the original binary.
	off, err := fw.RunOffloaded(cres, workloads.ChessInput(7, 2), offrt.Policy{DisableGate: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Offloaded() {
		t.Error("gate disabled but a task offloaded")
	}
	if off.Output != local.Output {
		t.Errorf("local-path output differs:\n%s\nvs\n%s", head(off.Output), head(local.Output))
	}
}

func TestChessIdealTimeBelowOffloadTime(t *testing.T) {
	_, local, off := chessSetup(t, FastNetwork)
	if off.IdealTime() > off.Time {
		t.Error("ideal (pure compute) time exceeds actual offloaded time")
	}
	if off.IdealTime() >= local.Time {
		t.Error("ideal offloading should beat local execution")
	}
}

func TestChessSlowNetworkStillWorks(t *testing.T) {
	_, local, off := chessSetup(t, SlowNetwork)
	if local.Output != off.Output {
		t.Error("slow-network offload changed program output")
	}
	// 458.sjeng-like behaviour: chess offloads profitably even on 802.11n.
	if off.Time >= local.Time {
		t.Error("chess offload should still win on the slow network")
	}
}

func TestEnergyTimelineConsistent(t *testing.T) {
	_, _, off := chessSetup(t, FastNetwork)
	segs := off.Recorder.Segments()
	if len(segs) < 4 {
		t.Fatalf("expected a rich power timeline, got %d segments", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].End {
			t.Fatalf("overlapping segments %d/%d", i-1, i)
		}
	}
	if off.Recorder.TimeIn(energy.Wait) <= 0 {
		t.Error("mobile should spend time waiting while the server computes")
	}
	if off.Recorder.TimeIn(energy.Compute) <= 0 {
		t.Error("mobile should spend time computing locally")
	}
}

func head(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
