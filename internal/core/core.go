// Package core is the public face of the Native Offloader reproduction: a
// Framework that profiles a native program, compiles it into an
// offloading-enabled mobile/server binary pair, and executes it under the
// cooperative runtime, reporting execution time, energy, traffic, and the
// Figure 7 overhead breakdown.
//
// Typical use (see examples/quickstart):
//
//	fw := core.NewFramework(core.FastNetwork)
//	prog := func() *ir.Module { ... } // front-end output
//	prof, _ := fw.Profile(prog(), profilingInput)
//	cres, _ := fw.Compile(prog(), prof)
//	local, _ := fw.RunLocal(prog(), evalInput)
//	off, _ := fw.RunOffloaded(cres, evalInput, offrt.Policy{})
//	fmt.Println(local.Time, off.Time, off.Speedup(local))
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/energy"
	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/offrt"
	"repro/internal/profile"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// Network selects one of the paper's two evaluation environments.
type Network int

const (
	SlowNetwork Network = iota // 802.11n
	FastNetwork                // 802.11ac
)

// Framework bundles the architectures, network and power models of one
// evaluation setup.
type Framework struct {
	Mobile *arch.Spec
	Server *arch.Spec
	Link   *netsim.Link
	Power  energy.PowerModel

	// CostScale amplifies interpreter costs so small kernels model
	// paper-scale execution times; Scale divides network bandwidth to
	// match memory footprints shrunk by the same factor.
	CostScale int64
	Scale     int

	// RemoteIO toggles the Section 3.4 remote I/O optimization.
	RemoteIO bool

	// Tracer, when set, records structured lifecycle events for every
	// offloaded run; Metrics, when set, receives the aggregated session
	// statistics. Both are optional (nil disables them at zero cost).
	Tracer  *obs.Tracer
	Metrics *obs.Metrics

	// Faults, when set, injects deterministic link failures into every
	// offloaded run (chaos testing); the session's recovery layer retries,
	// aborts and falls back locally as needed. Nil leaves the link reliable.
	Faults *faults.Plan
	// Recovery overrides the failure-recovery policy when non-nil.
	Recovery *offrt.Recovery
	// ServerFaults, when set, schedules deterministic *server* faults
	// (slowdown, stall, crash, drain) against every offloaded run's server.
	// Nil leaves the server perfectly healthy.
	ServerFaults *faults.ServerPlan
	// Migration, when non-nil, enables mid-flight offload migration: on a
	// detected server fault the session checkpoints, ships and resumes the
	// task on a spare instance instead of falling back locally.
	Migration *offrt.Migration
	// Tiers, when non-nil, places a hierarchical edge/cloud topology
	// behind every offloaded run's gate: decisions become the 3-way
	// placement over {local, edge, cloud} instead of the binary
	// Equation-1 question. Nil keeps the binary gate.
	Tiers *tiers.Topology

	// Engine selects the interpreter engine for every machine this
	// framework builds (RunLocal, RunOffloaded, Profile's machine). The
	// zero value is the pre-decoded fast engine; interp.EngineRef selects
	// the reference tree-walker. Profiling runs always fall back to the
	// reference engine internally because the profiler attaches a Listener.
	Engine interp.Engine

	// SampleEvery, when positive, attaches a guest sampling profiler with
	// that simulated-clock period to both machines of every offloaded run;
	// the flushed samplers come back in OffloadResult.MobileProf/ServerProf.
	// Zero disables sampling at zero cost (the interpreters' hot loops keep
	// their allocation-free steady state).
	SampleEvery simtime.PS

	// Cache memoizes compiled program artifacts (pre-decoded code + initial
	// memory image) across runs: every machine this framework builds binds
	// as a copy-on-write instance of a cached interp.Program, so repeated
	// runs of the same binary pair compile once and share one image.
	// NewFramework installs DefaultCache; set to nil to compile privately.
	Cache *interp.CompilationCache
}

// DefaultEngine is the engine NewFramework installs. It exists so entry
// points (CLIs, experiments) can flip every framework they construct with a
// single assignment, e.g. from an -engine flag.
var DefaultEngine = interp.EngineFast

// DefaultCache is the process-wide compilation cache NewFramework installs:
// frameworks built anywhere in the process (experiments, fleets, CLIs)
// share compiled programs keyed by (module digest, architecture binding).
var DefaultCache = interp.NewCompilationCache()

// NewFramework returns the default evaluation setup on the given network:
// ARM32 mobile, x86-64 server.
func NewFramework(n Network) *Framework {
	fw := &Framework{
		Mobile:    arch.ARM32(),
		Server:    arch.X8664(),
		CostScale: 1,
		Scale:     1,
		RemoteIO:  true,
		Engine:    DefaultEngine,
		Cache:     DefaultCache,
	}
	switch n {
	case SlowNetwork:
		fw.Link = netsim.Slow80211N()
		fw.Power = energy.SlowModel()
	default:
		fw.Link = netsim.Fast80211AC()
		fw.Power = energy.FastModel()
	}
	return fw
}

// WithScale applies the common memory/bandwidth scale factor (workloads
// shrink footprints by Scale; the link shrinks bandwidth to match, so all
// time ratios are preserved).
func (fw *Framework) WithScale(scale int, costScale int64) *Framework {
	fw.Scale = scale
	fw.CostScale = costScale
	fw.Link = fw.Link.Scaled(scale)
	return fw
}

func (fw *Framework) estParams() estimate.Params {
	return estimate.Params{
		R:            arch.PerformanceRatio(fw.Mobile, fw.Server),
		BandwidthBps: fw.Link.BandwidthBps,
		RTT:          2 * (fw.Link.Latency + fw.Link.PerMessage),
	}
}

// Profile runs mod on the mobile machine with the profiling input and
// returns the hot function/loop report (Section 3.1).
func (fw *Framework) Profile(mod *ir.Module, io *interp.StdIO) (*profile.Report, error) {
	work := mod.Clone("profile:" + mod.Name)
	ir.Lower(work, fw.Mobile, fw.Mobile)
	prog, err := interp.Compile(work, interp.CompileConfig{
		Name: "profiler", Spec: fw.Mobile, InitUVAGlobals: true,
	}, fw.Cache)
	if err != nil {
		return nil, err
	}
	m := prog.NewInstance(interp.WithIO(io), interp.WithCostScale(fw.CostScale),
		interp.WithEngine(fw.Engine))
	return profile.Run(m)
}

// Compile partitions mod into the offloading-enabled binary pair using the
// profiling report.
func (fw *Framework) Compile(mod *ir.Module, prof *profile.Report) (*compiler.Result, error) {
	opt := compiler.Default(fw.Link.BandwidthBps)
	opt.Mobile = fw.Mobile
	opt.Server = fw.Server
	opt.Est = fw.estParams()
	opt.RemoteIO = fw.RemoteIO
	return compiler.Compile(mod, prof, opt)
}

// LocalResult is a plain mobile-only execution.
type LocalResult struct {
	Code     int32
	Time     simtime.PS
	EnergyMJ float64
	Output   string
}

// RunLocal executes the unmodified program on the mobile device — the
// paper's normalization baseline.
func (fw *Framework) RunLocal(mod *ir.Module, io *interp.StdIO) (*LocalResult, error) {
	work := mod.Clone("local:" + mod.Name)
	ir.Lower(work, fw.Mobile, fw.Mobile)
	prog, err := interp.Compile(work, interp.CompileConfig{
		Name: "mobile", Spec: fw.Mobile, InitUVAGlobals: true,
	}, fw.Cache)
	if err != nil {
		return nil, err
	}
	m := prog.NewInstance(interp.WithIO(io), interp.WithCostScale(fw.CostScale),
		interp.WithEngine(fw.Engine))
	code, err := m.RunMain()
	if err != nil {
		return nil, err
	}
	return &LocalResult{
		Code:     code,
		Time:     m.Clock,
		EnergyMJ: energy.LocalEnergyMJ(fw.Power, m.Clock),
		Output:   io.Out.String(),
	}, nil
}

// OffloadResult is one cooperative mobile+server execution.
type OffloadResult struct {
	Code     int32
	Time     simtime.PS
	EnergyMJ float64
	Output   string

	// Comp is the Figure 7 breakdown: compute / fptr / remoteIO / comm.
	Comp [interp.NumComponents]simtime.PS
	// ServerCompute is the offloaded tasks' compute time at server speed.
	ServerCompute simtime.PS
	// LinkStats is the wire-level traffic accounting; Stats the
	// session-level offload accounting; PerTask the per-target numbers.
	LinkStats netsim.LinkStats
	Stats     offrt.SessionStats
	PerTask   map[int]*offrt.TaskStats
	// Recorder holds the power timeline for Figure 8.
	Recorder *energy.Recorder
	// Metrics echoes the framework's registry when one was attached.
	Metrics *obs.Metrics
	// MemDigest hashes the mobile device's final semantic memory (globals
	// and heap, stacks excluded); chaos testing compares it between
	// faulted and fault-free runs.
	MemDigest uint64
	// FaultStats counts the faults actually injected (zero without a plan).
	FaultStats faults.Stats

	// MobileProf/ServerProf are the flushed guest sampling profilers (nil
	// unless Framework.SampleEvery was set). MobileProf.Total() == Time and
	// ServerProf.Total() == ServerTime, to the picosecond.
	MobileProf *interp.Sampler
	ServerProf *interp.Sampler
	// ServerTime is the server machine's final clock (the server idles at
	// its accept loop in between offloads, so this tracks the mobile's
	// timeline, not busy time).
	ServerTime simtime.PS
}

// Speedup returns local.Time / off.Time.
func (r *OffloadResult) Speedup(local *LocalResult) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(local.Time) / float64(r.Time)
}

// NormalizedTime returns off.Time / local.Time (Figure 6(a)'s y-axis).
func (r *OffloadResult) NormalizedTime(local *LocalResult) float64 {
	if local.Time == 0 {
		return 0
	}
	return float64(r.Time) / float64(local.Time)
}

// NormalizedEnergy returns off/local battery use (Figure 6(b)'s y-axis).
func (r *OffloadResult) NormalizedEnergy(local *LocalResult) float64 {
	if local.EnergyMJ == 0 {
		return 0
	}
	return r.EnergyMJ / local.EnergyMJ
}

// IdealTime is the execution time without any overhead (communication,
// translation, remote I/O): the pure-compute component of the run.
func (r *OffloadResult) IdealTime() simtime.PS {
	return r.Comp[interp.CompCompute]
}

// Offloaded reports whether any task was actually offloaded (the dynamic
// estimator may decline everything, the starred bars of Figure 6).
func (r *OffloadResult) Offloaded() bool {
	for _, st := range r.PerTask {
		if st.Offloads > 0 {
			return true
		}
	}
	return false
}

// RunOffloaded executes the compiled pair under the runtime.
func (fw *Framework) RunOffloaded(cres *compiler.Result, io *interp.StdIO, pol offrt.Policy) (*OffloadResult, error) {
	mobileProg, err := interp.Compile(cres.Mobile, interp.CompileConfig{
		Name: "mobile", Spec: fw.Mobile, Std: fw.Mobile,
		FuncBase: mem.FuncBaseMobile, InitUVAGlobals: true,
	}, fw.Cache)
	if err != nil {
		return nil, fmt.Errorf("core: mobile program: %w", err)
	}
	serverProg, err := interp.Compile(cres.Server, interp.CompileConfig{
		Name: "server", Spec: fw.Server, Std: fw.Mobile,
		FuncBase: mem.FuncBaseServer, ShuffleFuncs: true, ShuffleGlobals: true,
	}, fw.Cache)
	if err != nil {
		return nil, fmt.Errorf("core: server program: %w", err)
	}
	mobile := mobileProg.NewInstance(interp.WithIO(io),
		interp.WithCostScale(fw.CostScale), interp.WithEngine(fw.Engine))
	server := serverProg.NewInstance(
		interp.WithCostScale(fw.CostScale), interp.WithEngine(fw.Engine))

	var tasks []offrt.TaskSpec
	for _, t := range cres.Targets {
		tasks = append(tasks, offrt.TaskSpec{
			TaskID:            t.TaskID,
			Name:              t.Name,
			TimePerInvocation: t.TimePerInvocation,
			MemBytes:          t.MemBytes,
		})
	}
	opts := []offrt.Option{
		offrt.WithTasks(tasks...), offrt.WithPolicy(pol),
		offrt.WithTracer(fw.Tracer), offrt.WithMetrics(fw.Metrics),
	}
	var injector *faults.Injector
	if fw.Faults != nil {
		injector, err = faults.NewInjector(*fw.Faults)
		if err != nil {
			return nil, fmt.Errorf("core: fault plan: %w", err)
		}
		opts = append(opts, offrt.WithFaults(injector))
	}
	if fw.Recovery != nil {
		opts = append(opts, offrt.WithRecovery(*fw.Recovery))
	}
	if fw.ServerFaults != nil {
		opts = append(opts, offrt.WithServerFaults(fw.ServerFaults))
	}
	if fw.Migration != nil {
		opts = append(opts, offrt.WithMigration(*fw.Migration))
	}
	if fw.Tiers != nil {
		opts = append(opts, offrt.WithTiers(fw.Tiers))
	}
	sess, err := offrt.NewSession(mobile, server, fw.Link, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: session: %w", err)
	}
	var mProf, sProf *interp.Sampler
	if fw.SampleEvery > 0 {
		mProf = interp.NewSampler(fw.SampleEvery)
		sProf = interp.NewSampler(fw.SampleEvery)
		mobile.SetSampler(mProf)
		server.SetSampler(sProf)
	}
	code, err := sess.RunMobile()
	if err != nil {
		return nil, err
	}
	mProf.Flush(mobile.Clock)
	sProf.Flush(server.Clock)
	var fstats faults.Stats
	if injector != nil {
		fstats = injector.Stats()
	}
	return &OffloadResult{
		Code:          code,
		Time:          mobile.Clock,
		EnergyMJ:      sess.Recorder.EnergyMJ(fw.Power),
		Output:        io.Out.String(),
		Comp:          sess.Comp,
		ServerCompute: sess.ServerCompute,
		LinkStats:     sess.LinkStats,
		Stats:         sess.Stats,
		PerTask:       sess.PerTask,
		Recorder:      sess.Recorder,
		Metrics:       fw.Metrics,
		MemDigest:     sess.MemDigest(),
		FaultStats:    fstats,
		MobileProf:    mProf,
		ServerProf:    sProf,
		ServerTime:    server.Clock,
	}, nil
}
