package core

import (
	"os"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/offrt"
)

// TestHandWrittenIRProgram runs the shipped matmul.ir through the whole
// toolchain: parse -> profile -> compile -> offload, with output checked
// against local execution. This is the downstream-user path (offloadc -ir /
// offloadrun -ir).
func TestHandWrittenIRProgram(t *testing.T) {
	data, err := os.ReadFile("../../examples/irprogram/matmul.ir")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ir.Parse(string(data))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mkIO := func() *interp.StdIO {
		io := interp.NewStdIO([]int64{120})
		io.MaxBuffered = 1 << 20
		return io
	}
	fw := NewFramework(FastNetwork)
	fw.CostScale = 2000

	prof, err := fw.Profile(mod, mkIO())
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var names []string
	for _, tg := range cres.Targets {
		names = append(names, tg.Name)
	}
	if len(names) == 0 || names[0] != "multiply" {
		t.Fatalf("targets = %v, want multiply first", names)
	}

	local, err := fw.RunLocal(mod, mkIO())
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	off, err := fw.RunOffloaded(cres, mkIO(), offrt.Policy{})
	if err != nil {
		t.Fatalf("offload: %v", err)
	}
	if off.Output != local.Output {
		t.Errorf("outputs differ:\nlocal: %q\noffload: %q", local.Output, off.Output)
	}
	if !off.Offloaded() {
		t.Error("matmul should offload")
	}
	if off.Speedup(local) < 3 {
		t.Errorf("speedup = %.2f, want > 3", off.Speedup(local))
	}
}
