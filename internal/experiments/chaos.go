package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/offrt"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

// ChaosCell is one workload executed under one fault plan, compared
// against its fault-free offloaded run.
type ChaosCell struct {
	Workload string
	Plan     faults.Plan

	// OutputOK/CodeOK/MemOK are the three equivalence checks against the
	// fault-free run: stdout bytes, exit code, semantic memory digest.
	OutputOK bool
	CodeOK   bool
	MemOK    bool

	// Injected counts the faults the plan actually landed; Retries, Aborts
	// and Fallbacks are the recovery layer's reaction. FallbackEvents is
	// the fallback.local trace-event count (the acceptance signal that a
	// cell exercised local re-execution).
	Injected       int64
	Retries        int
	Aborts         int
	Fallbacks      int
	FallbackEvents int

	// Slowdown is faulted time over fault-free time: the price of the
	// recovery, in simulated wall-clock.
	Slowdown float64
}

// Equal reports whether the faulted run was observationally identical to
// the fault-free one.
func (c *ChaosCell) Equal() bool { return c.OutputOK && c.CodeOK && c.MemOK }

// ChaosGrid builds the drop-rate x outage-schedule grid for one workload
// whose fault-free offloaded run took total simulated time. Schedule A has
// no outage (pure loss); schedule B opens a long link outage a fifth of
// the way into the fault-free timeline, which kills in-flight offloads and
// forces the local fallback path. Seeds are assigned by the caller.
func ChaosGrid(total simtime.PS) []faults.Plan {
	drops := []float64{0.05, 0.15, 0.30}
	outages := [][]faults.Window{
		nil,
		{{Start: total / 5, End: 4 * total}},
	}
	var plans []faults.Plan
	for _, out := range outages {
		for _, dr := range drops {
			plans = append(plans, faults.Plan{
				DropRate:    dr,
				CorruptRate: dr / 5,
				Outages:     out,
			})
		}
	}
	return plans
}

// RunChaosCell executes one workload under one fault plan and scores it
// against the cached fault-free result.
func RunChaosCell(pr *ProgramResult, plan faults.Plan) (*ChaosCell, error) {
	fw := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, pr.W.CostScale)
	tr := obs.NewTracer(0)
	fw.Tracer = tr
	fw.Faults = &plan
	off, err := fw.RunOffloaded(pr.Compile, pr.W.EvalIO(), offrt.Policy{})
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", pr.W.Name, plan.String(), err)
	}
	cell := &ChaosCell{
		Workload:  pr.W.Name,
		Plan:      plan,
		OutputOK:  off.Output == pr.Fast.Output,
		CodeOK:    off.Code == pr.Fast.Code,
		MemOK:     off.MemDigest == pr.Fast.MemDigest,
		Injected:  off.FaultStats.Total(),
		Retries:   off.Stats.Retries,
		Aborts:    off.Stats.Aborts,
		Fallbacks: off.Stats.Fallbacks,
	}
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KFallback {
			cell.FallbackEvents++
		}
	}
	if pr.Fast.Time > 0 {
		cell.Slowdown = float64(off.Time) / float64(pr.Fast.Time)
	}
	return cell, nil
}

// ChaosSweep runs every workload of the main sweep under the full fault
// grid (3 drop rates x 2 outage schedules), reusing the sweep's cached
// compilations and fault-free baselines. Seeds are derived from the
// (workload, plan) position, so the whole campaign is reproducible.
func ChaosSweep() ([]*ChaosCell, error) {
	base, err := Sweep()
	if err != nil {
		return nil, err
	}
	var cells []*ChaosCell
	for wi, pr := range base {
		for pi, plan := range ChaosGrid(pr.Fast.Time) {
			plan.Seed = uint64(wi)*97 + uint64(pi) + 1
			cell, err := RunChaosCell(pr, plan)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// ChaosTable renders the chaos campaign: one row per (workload, plan)
// cell with its fault counts, recovery actions and equivalence verdict.
func ChaosTable(cells []*ChaosCell) *report.Table {
	t := report.New("Chaos: fault-injection equivalence",
		"program", "plan", "faults", "retries", "aborts", "fallbacks", "time x", "equal")
	bad := 0
	withFallback := 0
	for _, c := range cells {
		verdict := "yes"
		if !c.Equal() {
			verdict = "NO"
			bad++
		}
		if c.FallbackEvents > 0 {
			withFallback++
		}
		t.Add(c.Workload, c.Plan.String(), c.Injected, c.Retries, c.Aborts,
			c.Fallbacks, fmt.Sprintf("%.2f", c.Slowdown), verdict)
	}
	t.Note("%d cells, %d diverged, %d exercised local fallback; every cell must match the fault-free run bit for bit.",
		len(cells), bad, withFallback)
	return t
}
