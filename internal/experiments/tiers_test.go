package experiments

import (
	"strings"
	"testing"

	"repro/internal/tiers"
)

// TestTierSweepFloor runs the committed benchmark configuration end to
// end: the floor must hold (3-way at or under both static baselines on
// both aggregates, shard parity, non-vacuous migration) and the sweep
// must be deterministic in the seed.
func TestTierSweepFloor(t *testing.T) {
	b, err := TierSweep(TierBenchLoads(), 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckFloor(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(b.Cells), len(TierBenchLoads())*len(tiers.Modes()); got != want {
		t.Fatalf("sweep produced %d cells, want %d", got, want)
	}
	a, err := TierJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := TierSweep(TierBenchLoads(), 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := TierJSON(b2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Error("tier sweep is not deterministic in the seed")
	}
}

// TestTierFloorRejects pins the floor's failure modes.
func TestTierFloorRejects(t *testing.T) {
	ok := &TierBench{
		ThreeWayP99Ms: 1, EdgeOnlyP99Ms: 2, CloudOnlyP99Ms: 2,
		ThreeWayGeoMs: 1, EdgeOnlyGeoMs: 2, CloudOnlyGeoMs: 2,
		ShardParity: true,
		Cells:       []*TierBenchCell{{Promotions: 1}},
	}
	if err := ok.CheckFloor(); err != nil {
		t.Fatalf("healthy bench rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*TierBench)
		want   string
	}{
		{"p99", func(b *TierBench) { b.ThreeWayP99Ms = 3 }, "p99 floor"},
		{"geomean", func(b *TierBench) { b.ThreeWayGeoMs = 3 }, "geomean floor"},
		{"parity", func(b *TierBench) { b.ShardParity = false }, "diverged"},
		{"vacuous", func(b *TierBench) { b.Cells = []*TierBenchCell{{}} }, "vacuous"},
	}
	for _, tc := range cases {
		b := *ok
		tc.mutate(&b)
		err := b.CheckFloor()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: CheckFloor = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
