package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/offrt"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

// ServerChaosCell is one workload executed under one *server*-fault plan
// (crash, drain, slowdown, stall on the serving host), compared against
// its fault-free offloaded run. The recovery mode the runtime actually
// took — checkpoint-migration, re-send on a spare, or local fallback —
// shows in the counters; the equivalence columns must hold regardless.
type ServerChaosCell struct {
	Workload string
	Mode     string // the recovery the cell is set up to exercise
	Plan     string

	OutputOK bool
	CodeOK   bool
	MemOK    bool

	Migrations   int
	CrashRetries int
	Fallbacks    int
}

// Equal reports whether the faulted run was observationally identical to
// the fault-free one.
func (c *ServerChaosCell) Equal() bool { return c.OutputOK && c.CodeOK && c.MemOK }

// RunServerChaosCell executes one workload under one server-fault plan
// (mig nil = migration off, the paper's fallback-only runtime) and scores
// it against the cached fault-free result.
func RunServerChaosCell(pr *ProgramResult, plan *faults.ServerPlan, mig *offrt.Migration, mode string) (*ServerChaosCell, error) {
	fw := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, pr.W.CostScale)
	fw.ServerFaults = plan
	fw.Migration = mig
	off, err := fw.RunOffloaded(pr.Compile, pr.W.EvalIO(), offrt.Policy{})
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", pr.W.Name, plan.String(), err)
	}
	return &ServerChaosCell{
		Workload:     pr.W.Name,
		Mode:         mode,
		Plan:         plan.String(),
		OutputOK:     off.Output == pr.Fast.Output,
		CodeOK:       off.Code == pr.Fast.Code,
		MemOK:        off.MemDigest == pr.Fast.MemDigest,
		Migrations:   off.Stats.Migrations,
		CrashRetries: off.Stats.CrashRetries,
		Fallbacks:    off.Stats.Fallbacks,
	}, nil
}

// ServerDeathSweep is the server-death chaos campaign: across `seeds`
// deterministic scenarios, the serving host dies mid-offload — at a
// different fraction of the fault-free timeline each seed — and the run
// is repeated in three recovery modes: crash with a spare (re-send and
// retry), crash without one (local fallback), and scheduled drain with a
// spare (checkpoint migration when Equation 1 favors it). Every cell must
// be bit-identical to the fault-free run; which recovery fired is the
// cell's mode, not its verdict.
func ServerDeathSweep(seeds int) ([]*ServerChaosCell, error) {
	base, err := Sweep()
	if err != nil {
		return nil, err
	}
	spare := offrt.DefaultMigration()
	var cells []*ServerChaosCell
	for i := 0; i < seeds; i++ {
		pr := base[i%len(base)]
		// Kill at a seed-dependent point inside the fault-free timeline so
		// the sweep covers early, mid and late deaths.
		at := pr.Fast.Time * simtime.PS(i+1) / simtime.PS(seeds+2)
		crash := &faults.ServerPlan{Seed: uint64(i), Events: []faults.ServerEvent{
			{Kind: faults.Crash, Server: 0, Start: at}}}
		drain := &faults.ServerPlan{Seed: uint64(i), Events: []faults.ServerEvent{
			{Kind: faults.Drain, Server: 0, Start: at}}}

		for _, m := range []struct {
			mode string
			plan *faults.ServerPlan
			mig  *offrt.Migration
		}{
			{"retry", crash, &spare},
			{"fallback", crash, nil},
			{"migrate", drain, &spare},
		} {
			cell, err := RunServerChaosCell(pr, m.plan, m.mig, m.mode)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// ServerChaosSpecSweep runs every workload of the main sweep under one
// user-supplied server-fault plan (the -server-faults flag), migration
// enabled, and returns the per-workload cells.
func ServerChaosSpecSweep(plan *faults.ServerPlan) ([]*ServerChaosCell, error) {
	base, err := Sweep()
	if err != nil {
		return nil, err
	}
	mig := offrt.DefaultMigration()
	var cells []*ServerChaosCell
	for _, pr := range base {
		cell, err := RunServerChaosCell(pr, plan, &mig, "spec")
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// ServerChaosTable renders a server-fault campaign: one row per cell with
// its recovery counters and equivalence verdict.
func ServerChaosTable(cells []*ServerChaosCell) *report.Table {
	t := report.New("Chaos: server-failure equivalence",
		"program", "mode", "plan", "migrations", "crash retries", "fallbacks", "equal")
	bad := 0
	for _, c := range cells {
		verdict := "yes"
		if !c.Equal() {
			verdict = "NO"
			bad++
		}
		t.Add(c.Workload, c.Mode, c.Plan, c.Migrations, c.CrashRetries, c.Fallbacks, verdict)
	}
	t.Note("%d cells, %d diverged; migrated, retried and fallen-back runs alike must match the fault-free run bit for bit.",
		len(cells), bad)
	return t
}

// MigrateBenchCell is one seed of the fleet-level migration benchmark:
// the same 64-client run fault-free, with a mid-run server crash under
// migration-enabled recovery, and with the same crash under fallback-only
// recovery.
type MigrateBenchCell struct {
	Seed uint64 `json:"seed"`

	CleanP99Ms    float64 `json:"clean_p99_ms"`
	CleanGeoMs    float64 `json:"clean_geomean_ms"`
	MigrateP99Ms  float64 `json:"migrate_p99_ms"`
	MigrateGeoMs  float64 `json:"migrate_geomean_ms"`
	FallbackP99Ms float64 `json:"fallback_p99_ms"`
	FallbackGeoMs float64 `json:"fallback_geomean_ms"`

	Migrations int `json:"migrations"`
	Retried    int `json:"retried"`
	Fallbacks  int `json:"fallbacks"`
}

// MigrateBench is the committed BENCH_migrate.json record: the per-seed
// cells plus the aggregate p99 (mean over seeds) and geomean (geometric
// mean over seeds) each floor check runs against.
type MigrateBench struct {
	Clients     int     `json:"clients"`
	Servers     int     `json:"servers"`
	Seeds       int     `json:"seeds"`
	CrashServer int     `json:"crash_server"`
	CrashAtMs   float64 `json:"crash_at_ms"`

	Cells []*MigrateBenchCell `json:"cells"`

	MigrateP99Ms  float64 `json:"migrate_p99_ms"`
	MigrateGeoMs  float64 `json:"migrate_geomean_ms"`
	FallbackP99Ms float64 `json:"fallback_p99_ms"`
	FallbackGeoMs float64 `json:"fallback_geomean_ms"`
}

// migrateCrashAt is when the benchmark kills its server: far enough into
// a 64-client run that slots and queues are loaded.
const migrateCrashAt = 5 * simtime.Second

// Benchmark clients are interactive (one request every 1-4 s of think
// time) rather than back-to-back. This matters for what the benchmark
// measures: at full saturation every surviving slot is contended, so
// rerouting crash victims onto survivors displaces exactly as much queued
// work as it saves and recovery policy cannot change the aggregate. With
// interactive load the pool has the headroom real recovery targets have,
// and the sweep isolates the detection + rerouting win instead of a
// capacity identity.
const (
	migrateThinkMin = 1 * simtime.Second
	migrateThinkMax = 4 * simtime.Second
)

// MigrateSweep runs the migration benchmark: `seeds` independent
// 64-client/4-server est-aware runs, each repeated clean, crashed with
// migration, and crashed with fallback-only recovery.
func MigrateSweep(seeds, clients, servers int) (*MigrateBench, error) {
	bench := &MigrateBench{
		Clients: clients, Servers: servers, Seeds: seeds,
		CrashServer: 0, CrashAtMs: migrateCrashAt.Millis(),
	}
	run := func(seed uint64, faulted, migrate bool) (*fleet.Result, error) {
		cfg := fleet.DefaultConfig(clients, servers, fleet.EstAware)
		cfg.Seed = seed
		cfg.Workload.ThinkMin = migrateThinkMin
		cfg.Workload.ThinkMax = migrateThinkMax
		if faulted {
			cfg.ServerFaults = &faults.ServerPlan{Seed: seed, Events: []faults.ServerEvent{
				{Kind: faults.Crash, Server: bench.CrashServer, Start: migrateCrashAt}}}
			cfg.Migrate = migrate
		}
		return fleet.Run(cfg)
	}
	var sumMigP99, sumFbP99, logMigGeo, logFbGeo float64
	for i := 0; i < seeds; i++ {
		seed := uint64(i + 1)
		clean, err := run(seed, false, false)
		if err != nil {
			return nil, fmt.Errorf("migrate bench seed %d clean: %w", seed, err)
		}
		mig, err := run(seed, true, true)
		if err != nil {
			return nil, fmt.Errorf("migrate bench seed %d migrate: %w", seed, err)
		}
		fb, err := run(seed, true, false)
		if err != nil {
			return nil, fmt.Errorf("migrate bench seed %d fallback: %w", seed, err)
		}
		bench.Cells = append(bench.Cells, &MigrateBenchCell{
			Seed:       seed,
			CleanP99Ms: clean.P99Ms, CleanGeoMs: clean.GeomeanMs,
			MigrateP99Ms: mig.P99Ms, MigrateGeoMs: mig.GeomeanMs,
			FallbackP99Ms: fb.P99Ms, FallbackGeoMs: fb.GeomeanMs,
			Migrations: mig.Migrations, Retried: mig.Retried, Fallbacks: fb.Fallbacks,
		})
		sumMigP99 += mig.P99Ms
		sumFbP99 += fb.P99Ms
		logMigGeo += math.Log(mig.GeomeanMs)
		logFbGeo += math.Log(fb.GeomeanMs)
	}
	n := float64(seeds)
	bench.MigrateP99Ms = sumMigP99 / n
	bench.FallbackP99Ms = sumFbP99 / n
	bench.MigrateGeoMs = math.Exp(logMigGeo / n)
	bench.FallbackGeoMs = math.Exp(logFbGeo / n)
	return bench, nil
}

// CheckFloor enforces the benchmark's acceptance bar: migration-enabled
// recovery must beat fallback-only on both aggregate p99 and geomean, and
// the crash must actually have caught in-flight work (a vacuous sweep
// proves nothing).
func (b *MigrateBench) CheckFloor() error {
	if b.MigrateP99Ms >= b.FallbackP99Ms {
		return fmt.Errorf("migrate bench: p99 floor broken: migrate %.2f ms >= fallback %.2f ms",
			b.MigrateP99Ms, b.FallbackP99Ms)
	}
	if b.MigrateGeoMs >= b.FallbackGeoMs {
		return fmt.Errorf("migrate bench: geomean floor broken: migrate %.2f ms >= fallback %.2f ms",
			b.MigrateGeoMs, b.FallbackGeoMs)
	}
	recovered := 0
	for _, c := range b.Cells {
		recovered += c.Retried + c.Migrations
	}
	if recovered == 0 {
		return fmt.Errorf("migrate bench: no seed recovered any in-flight work; the crash schedule is vacuous")
	}
	return nil
}

// MigrateTable renders the benchmark for the CLI.
func MigrateTable(b *MigrateBench) *report.Table {
	t := report.New(fmt.Sprintf("Migration bench: %d clients / %d servers, server %d killed at %.0f ms",
		b.Clients, b.Servers, b.CrashServer, b.CrashAtMs),
		"seed", "clean p99", "migrate p99", "fallback p99",
		"clean geo", "migrate geo", "fallback geo", "retried", "fallbacks")
	for _, c := range b.Cells {
		t.Add(c.Seed, c.CleanP99Ms, c.MigrateP99Ms, c.FallbackP99Ms,
			c.CleanGeoMs, c.MigrateGeoMs, c.FallbackGeoMs, c.Retried, c.Fallbacks)
	}
	t.Note("aggregate: migrate p99 %.2f ms vs fallback %.2f ms, migrate geomean %.2f ms vs fallback %.2f ms",
		b.MigrateP99Ms, b.FallbackP99Ms, b.MigrateGeoMs, b.FallbackGeoMs)
	return t
}

// MigrateJSON marshals the bench record. Deterministic: same sweep, same
// bytes.
func MigrateJSON(b *MigrateBench) ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteMigrateBench writes the record to path (BENCH_migrate.json under
// make bench) after enforcing the floor.
func WriteMigrateBench(path string, b *MigrateBench) error {
	if err := b.CheckFloor(); err != nil {
		return err
	}
	out, err := MigrateJSON(b)
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
