package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/report"
)

// FleetSweep runs the server-fleet scaling experiment: every dispatch
// policy over each client count, against the same heterogeneous pool and
// seed, so the policy columns differ only in routing decisions. Results
// come back in (clients, policy) order and are fully deterministic in the
// seed — the bench artifact is diffable across runs, and because the
// engines are bit-identical, across shard counts too (shards 0 runs the
// sequential reference engine).
func FleetSweep(clients []int, servers int, seed uint64, shards int, policies ...fleet.Policy) ([]*fleet.Result, error) {
	if len(policies) == 0 {
		policies = fleet.Policies()
	}
	var results []*fleet.Result
	for _, n := range clients {
		for _, pol := range policies {
			cfg := fleet.DefaultConfig(n, servers, pol)
			cfg.Seed = seed
			cfg.Shards = shards
			res, err := fleet.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("fleet sweep %s n=%d: %w", pol, n, err)
			}
			results = append(results, res)
		}
	}
	return results, nil
}

// FleetTable renders a sweep as the policy-comparison table.
func FleetTable(results []*fleet.Result) *report.Table {
	t := report.New("Fleet scheduling: dispatch policy comparison",
		"clients", "policy", "thr (rps)", "p50 (ms)", "p99 (ms)", "geomean (ms)",
		"local %", "sheds", "max queue", "avg util %")
	for _, r := range results {
		var util float64
		for _, u := range r.ServerUtilPct {
			util += u
		}
		if len(r.ServerUtilPct) > 0 {
			util /= float64(len(r.ServerUtilPct))
		}
		t.Add(r.Clients, r.Policy, r.ThroughputRPS, r.P50Ms, r.P99Ms, r.GeomeanMs,
			100*r.LocalRate, r.Sheds, r.MaxQueueDepth, util)
	}
	t.Note("same seed and workload per row group; policies differ only in routing")
	t.Note("est-aware extends the Equation-1 gate with the live queueing-delay signal")
	return t
}

// FleetJSON marshals a sweep into the machine-readable bench record.
// Deterministic: same sweep, same bytes.
func FleetJSON(results []*fleet.Result) ([]byte, error) {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteFleetBench writes the sweep record to path (BENCH_fleet.json under
// make bench).
func WriteFleetBench(path string, results []*fleet.Result) error {
	out, err := FleetJSON(results)
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
