package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/workloads"
)

// TestBreakdownMatchesSessionStats is the acceptance bar for the
// trace-analysis pipeline: on a fault-free Table-4 workload, replaying the
// trace must reconstruct exactly what the runtime accounted — per-offload
// totals summing to SessionStats.E2ELatency, components partitioning each
// total, the radio attribution matching the energy recorder, and the
// samplers' attributed time matching both machines' clocks.
func TestBreakdownMatchesSessionStats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an offloaded execution")
	}
	tracer := obs.NewTracer(1 << 20)
	metrics := obs.NewMetrics()
	w := workloads.ByName("433.milc")
	r, err := RunProgramProfiled(w, tracer, metrics, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := tracer.Dropped(); d != 0 {
		t.Fatalf("trace truncated: %d events dropped — grow the test tracer", d)
	}
	evs := tracer.Events()

	// Per-offload time breakdown vs the runtime's own accounting.
	sum := analyze.Breakdown(evs)
	if len(sum.Offloads) == 0 {
		t.Fatal("no offloads reconstructed from the trace")
	}
	if sum.Fallbacks != 0 {
		t.Fatalf("fault-free run reconstructed %d fallbacks", sum.Fallbacks)
	}
	if got, want := sum.Total(), r.Fast.Stats.E2ELatency; got != want {
		t.Errorf("breakdown total %v != SessionStats.E2ELatency %v", got, want)
	}
	for i, o := range sum.Offloads {
		if parts := o.Init + o.Compute + o.Fault + o.IO + o.WriteBack; parts != o.Total {
			t.Errorf("offload %d: components sum %v != total %v", i, parts, o.Total)
		}
		if o.Compute < 0 {
			t.Errorf("offload %d: negative compute remainder %v", i, o.Compute)
		}
	}

	// Radio energy attribution vs the recorder, both power models.
	for _, model := range []energy.PowerModel{energy.FastModel(), energy.SlowModel()} {
		re := analyze.Radio(evs, model)
		want := r.Fast.Recorder.EnergyMJ(model)
		if diff := math.Abs(re.TotalMJ() - want); diff > 1e-6*math.Abs(want) {
			t.Errorf("%s: radio replay %.6f mJ, recorder %.6f mJ", model.Name, re.TotalMJ(), want)
		}
	}

	// Guest profiles: every simulated picosecond attributed, both machines.
	if got, want := r.Fast.MobileProf.Total(), int64(r.Fast.Time); got != want {
		t.Errorf("mobile profile total %d != mobile clock %d", got, want)
	}
	if got, want := r.Fast.ServerProf.Total(), int64(r.Fast.ServerTime); got != want {
		t.Errorf("server profile total %d != server clock %d", got, want)
	}
	if r.Fast.MobileProf.Folded() == "" || r.Fast.ServerProf.Folded() == "" {
		t.Error("empty folded profile")
	}
	if !strings.Contains(r.Fast.ServerProf.Folded(), w.Paper.TargetName) {
		t.Errorf("server profile missing offload target %q:\n%s",
			w.Paper.TargetName, r.Fast.ServerProf.Folded())
	}

	// The rendered artifacts exist and carry the headline rows.
	if s := analyze.TimeTable(sum).String(); !strings.Contains(s, "total_ms") {
		t.Errorf("time table malformed:\n%s", s)
	}
	if s := ProfileTable(r.Fast.MobileProf, r.Fast.ServerProf, 15).String(); !strings.Contains(s, "server") {
		t.Errorf("profile table malformed:\n%s", s)
	}

	// The histogram record sites fired: every latency family that must
	// appear on a fault-free offloading run is present and consistent.
	for _, name := range []string{"lat.offload.e2e_ps", "lat.rpc_ps", "lat.write_back_ps"} {
		s := metrics.HistogramSnapshot(name)
		if s.Count == 0 {
			t.Errorf("histogram %s never recorded", name)
		}
	}
	if got, want := metrics.HistogramSnapshot("lat.offload.e2e_ps").Count, int64(len(sum.Offloads)); got != want {
		t.Errorf("e2e histogram count %d != reconstructed offloads %d", got, want)
	}
}
