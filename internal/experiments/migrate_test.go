package experiments

import (
	"strings"
	"testing"
)

// TestChaosServerDeath is the server-death acceptance gate: across 10
// deterministic seeds the serving host dies mid-offload, and whichever
// recovery the runtime takes — checkpoint-migration off a drain, re-send
// on a spare after a crash, or local fallback with no spare — the run's
// output, exit code and semantic memory must be bit-identical to the
// fault-free run.
func TestChaosServerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("server-death sweep is slow")
	}
	const seeds = 10
	cells, err := ServerDeathSweep(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*seeds {
		t.Fatalf("sweep produced %d cells, want %d (3 recovery modes x %d seeds)", len(cells), 3*seeds, seeds)
	}
	recovered := map[string]int{}
	for _, c := range cells {
		if !c.Equal() {
			t.Errorf("%s (%s mode) under %s diverged from fault-free run (output=%v code=%v mem=%v)",
				c.Workload, c.Mode, c.Plan, c.OutputOK, c.CodeOK, c.MemOK)
		}
		recovered[c.Mode] += c.Migrations + c.CrashRetries + c.Fallbacks
	}
	// Each mode must have actually exercised its recovery machinery at
	// least once across the sweep — a fault that never lands proves nothing.
	for _, mode := range []string{"retry", "fallback", "migrate"} {
		if recovered[mode] == 0 {
			t.Errorf("no %s-mode cell took any recovery action; the fault schedule is vacuous", mode)
		}
	}
	tbl := ServerChaosTable(cells).String()
	if strings.Contains(tbl, "NO") {
		t.Errorf("server chaos table records divergence:\n%s", tbl)
	}
	t.Logf("%d cells: recovery actions retry=%d fallback=%d migrate=%d",
		len(cells), recovered["retry"], recovered["fallback"], recovered["migrate"])
}

// TestMigrateBenchFloor runs the fleet-level migration benchmark at its
// committed shape (10 seeds, 64 clients, 4 servers, one server killed
// mid-run) and enforces the floor: migration-enabled recovery beats
// fallback-only on aggregate p99 and geomean.
func TestMigrateBenchFloor(t *testing.T) {
	bench, err := MigrateSweep(10, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.CheckFloor(); err != nil {
		t.Fatal(err)
	}
	t.Logf("p99: migrate %.2f ms vs fallback %.2f ms; geomean: migrate %.2f ms vs fallback %.2f ms",
		bench.MigrateP99Ms, bench.FallbackP99Ms, bench.MigrateGeoMs, bench.FallbackGeoMs)
}

// TestMigrateBenchDeterministic: the bench record that lands in
// BENCH_migrate.json must be byte-stable across runs.
func TestMigrateBenchDeterministic(t *testing.T) {
	a, err := MigrateSweep(3, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MigrateSweep(3, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := MigrateJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := MigrateJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("bench JSON not byte-identical:\n%s\n%s", ja, jb)
	}
}
