package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/tiers"
)

// TierBenchCell is one (load, placement mode) cell of the multi-tier
// benchmark: the same clients, workload and seed, differing only in
// which tiers the placement may use.
type TierBenchCell struct {
	Clients int    `json:"clients"`
	Mode    string `json:"mode"`

	P99Ms     float64 `json:"p99_ms"`
	GeomeanMs float64 `json:"geomean_ms"`

	EdgeOffloads  int `json:"edge_offloads"`
	CloudOffloads int `json:"cloud_offloads"`
	Promotions    int `json:"promotions"`
	Demotions     int `json:"demotions"`
	Declines      int `json:"declines"`
	Sheds         int `json:"sheds"`
}

// TierBench is the committed BENCH_tiers.json record: the topology, the
// per-cell results, the per-mode aggregates the floor check runs
// against (p99 as the mean over loads, geomean as the geometric mean
// over loads), and the shard-parity verdict of re-running every 3-way
// cell through the sharded engine.
type TierBench struct {
	EdgeServers  int     `json:"edge_servers"`
	EdgeSlots    int     `json:"edge_slots"`
	EdgeR        float64 `json:"edge_r"`
	CloudServers int     `json:"cloud_servers"`
	CloudSlots   int     `json:"cloud_slots"`
	CloudR       float64 `json:"cloud_r"`
	Seed         uint64  `json:"seed"`

	Cells []*TierBenchCell `json:"cells"`

	ThreeWayP99Ms  float64 `json:"three_way_p99_ms"`
	ThreeWayGeoMs  float64 `json:"three_way_geomean_ms"`
	EdgeOnlyP99Ms  float64 `json:"edge_only_p99_ms"`
	EdgeOnlyGeoMs  float64 `json:"edge_only_geomean_ms"`
	CloudOnlyP99Ms float64 `json:"cloud_only_p99_ms"`
	CloudOnlyGeoMs float64 `json:"cloud_only_geomean_ms"`

	// ShardParity is true when every 3-way cell re-run through the
	// sharded engine (4 shards) marshalled byte-identically to the
	// sequential reference.
	ShardParity bool `json:"shard_parity"`
}

// tierBenchTopology is the benchmark's hierarchy: a pool of modest edge
// servers on the access link and a small, fast cloud pool behind the
// WAN. The default 4-edge/1-cloud asymmetry is what gives the 3-way
// placement its room: the small cloud saturates under the diurnal burst
// (demotion pressure) while the wide edge drains between bursts
// (promotion windows) — a symmetric topology would leave migration idle.
func tierBenchTopology(mode tiers.Mode, edgeServers, cloudServers int) *tiers.Topology {
	topo := tiers.Default(edgeServers, cloudServers)
	topo.Mode = mode
	return topo
}

// tierBenchConfig is one benchmark cell: tasks short enough that the WAN
// round trip is a real fraction of the cloud's execution saving, under a
// diurnal curve that alternates burst and drain phases across the tiers.
func tierBenchConfig(clients int, topo *tiers.Topology, seed uint64) fleet.Config {
	cfg := fleet.TieredConfig(clients, topo)
	cfg.Seed = seed
	cfg.RequestsPerClient = 20
	cfg.Workload.TmMin = 200 * simtime.Millisecond
	cfg.Workload.TmMax = 1 * simtime.Second
	cfg.Workload.MemMin = 64 << 10
	cfg.Workload.MemMax = 512 << 10
	cfg.Workload.DiurnalAmp = 0.6
	cfg.Workload.DiurnalPeriod = 10 * simtime.Second
	return cfg
}

// TierSweep runs the multi-tier placement benchmark: each load level
// through all three placement modes over the same topology, workload and
// seed, so the mode columns differ only in which tiers the gate may use
// and whether cross-tier migration may correct the placement later. The
// 3-way cells additionally re-run through the sharded engine, feeding
// the record's shard-parity verdict. The committed record uses the
// default 4-edge/1-cloud geometry; other geometries run the same sweep
// but are not guaranteed to hold the floor.
func TierSweep(loads []int, edgeServers, cloudServers int, seed uint64) (*TierBench, error) {
	topo := tierBenchTopology(tiers.ThreeWay, edgeServers, cloudServers)
	bench := &TierBench{
		EdgeServers: topo.Edge.Servers, EdgeSlots: topo.Edge.Slots, EdgeR: topo.Edge.R,
		CloudServers: topo.Cloud.Servers, CloudSlots: topo.Cloud.Slots, CloudR: topo.Cloud.R,
		Seed:        seed,
		ShardParity: true,
	}
	type agg struct {
		sumP99, logGeo float64
	}
	aggs := map[tiers.Mode]*agg{}
	for _, n := range loads {
		for _, mode := range tiers.Modes() {
			cfg := tierBenchConfig(n, tierBenchTopology(mode, edgeServers, cloudServers), seed)
			res, err := fleet.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("tier sweep %s n=%d: %w", mode, n, err)
			}
			bench.Cells = append(bench.Cells, &TierBenchCell{
				Clients: n, Mode: string(mode),
				P99Ms: res.P99Ms, GeomeanMs: res.GeomeanMs,
				EdgeOffloads: res.EdgeOffloads, CloudOffloads: res.CloudOffloads,
				Promotions: res.Promotions, Demotions: res.Demotions,
				Declines: res.Declines, Sheds: res.Sheds,
			})
			a := aggs[mode]
			if a == nil {
				a = &agg{}
				aggs[mode] = a
			}
			a.sumP99 += res.P99Ms
			a.logGeo += math.Log(res.GeomeanMs)

			if mode == tiers.ThreeWay {
				ref, err := json.Marshal(res)
				if err != nil {
					return nil, err
				}
				scfg := cfg
				scfg.Shards = 4
				sres, err := fleet.Run(scfg)
				if err != nil {
					return nil, fmt.Errorf("tier sweep sharded n=%d: %w", n, err)
				}
				got, err := json.Marshal(sres)
				if err != nil {
					return nil, err
				}
				if !bytes.Equal(ref, got) {
					bench.ShardParity = false
				}
			}
		}
	}
	n := float64(len(loads))
	final := func(m tiers.Mode) (float64, float64) {
		a := aggs[m]
		return a.sumP99 / n, math.Exp(a.logGeo / n)
	}
	bench.ThreeWayP99Ms, bench.ThreeWayGeoMs = final(tiers.ThreeWay)
	bench.EdgeOnlyP99Ms, bench.EdgeOnlyGeoMs = final(tiers.EdgeOnly)
	bench.CloudOnlyP99Ms, bench.CloudOnlyGeoMs = final(tiers.CloudOnly)
	return bench, nil
}

// CheckFloor enforces the benchmark's acceptance bar: 3-way est-aware
// placement must hold both aggregate tails at or under each static
// baseline, the sharded engine must have agreed byte for byte on every
// 3-way cell, and the cross-tier migration machinery must actually have
// fired somewhere in the sweep (a placement win with idle promotion and
// demotion paths would not exercise what the benchmark claims to).
func (b *TierBench) CheckFloor() error {
	if b.ThreeWayP99Ms > b.EdgeOnlyP99Ms || b.ThreeWayP99Ms > b.CloudOnlyP99Ms {
		return fmt.Errorf("tier bench: p99 floor broken: 3way %.2f ms vs edge-only %.2f ms, cloud-only %.2f ms",
			b.ThreeWayP99Ms, b.EdgeOnlyP99Ms, b.CloudOnlyP99Ms)
	}
	if b.ThreeWayGeoMs > b.EdgeOnlyGeoMs || b.ThreeWayGeoMs > b.CloudOnlyGeoMs {
		return fmt.Errorf("tier bench: geomean floor broken: 3way %.2f ms vs edge-only %.2f ms, cloud-only %.2f ms",
			b.ThreeWayGeoMs, b.EdgeOnlyGeoMs, b.CloudOnlyGeoMs)
	}
	if !b.ShardParity {
		return fmt.Errorf("tier bench: sharded engine diverged from the sequential reference on a 3-way cell")
	}
	moved := 0
	for _, c := range b.Cells {
		moved += c.Promotions + c.Demotions
	}
	if moved == 0 {
		return fmt.Errorf("tier bench: no cell promoted or demoted; the migration machinery is vacuous")
	}
	return nil
}

// TierTable renders the benchmark for the CLI.
func TierTable(b *TierBench) *report.Table {
	t := report.New(fmt.Sprintf("Multi-tier placement: %dx edge (R=%g, %d slots) + %dx cloud (R=%g, %d slots) over WAN",
		b.EdgeServers, b.EdgeR, b.EdgeSlots, b.CloudServers, b.CloudR, b.CloudSlots),
		"clients", "mode", "p99 (ms)", "geomean (ms)", "edge", "cloud",
		"promoted", "demoted", "declines", "sheds")
	for _, c := range b.Cells {
		t.Add(c.Clients, c.Mode, c.P99Ms, c.GeomeanMs, c.EdgeOffloads, c.CloudOffloads,
			c.Promotions, c.Demotions, c.Declines, c.Sheds)
	}
	t.Note("aggregate p99: 3way %.1f ms vs edge-only %.1f ms, cloud-only %.1f ms",
		b.ThreeWayP99Ms, b.EdgeOnlyP99Ms, b.CloudOnlyP99Ms)
	t.Note("aggregate geomean: 3way %.1f ms vs edge-only %.1f ms, cloud-only %.1f ms",
		b.ThreeWayGeoMs, b.EdgeOnlyGeoMs, b.CloudOnlyGeoMs)
	t.Note("shard parity: %v (every 3-way cell re-run on 4 shards, compared byte for byte)", b.ShardParity)
	return t
}

// TierJSON marshals the bench record. Deterministic: same sweep, same
// bytes.
func TierJSON(b *TierBench) ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteTierBench writes the record to path (BENCH_tiers.json under make
// bench) after enforcing the floor.
func WriteTierBench(path string, b *TierBench) error {
	if err := b.CheckFloor(); err != nil {
		return err
	}
	out, err := TierJSON(b)
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// TierBenchLoads is the default load ladder of the tier benchmark: from
// a lightly loaded fleet (placement alone decides) through the burst
// regime where cross-tier migration corrects the placement mid-flight.
func TierBenchLoads() []int { return []int{24, 48, 96, 128} }
