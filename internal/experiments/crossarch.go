package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/offrt"
	"repro/internal/report"
	"repro/internal/workloads"
)

// CrossArchRow compares one program's offload across server architectures.
type CrossArchRow struct {
	Name      string
	LocalSec  float64
	X8664Sec  float64 // the paper's pair (little-endian, 64-bit)
	BE32Sec   float64 // big-endian 32-bit server
	OutputsOK bool    // all three executions produced identical output
}

// CrossArch extends the paper's evaluation to a server architecture pair it
// never measures: a big-endian 32-bit machine. The compiler inserts
// endianness translation on every server memory access (Section 3.2); the
// program must still compute bit-identical results, at a measurable
// translation cost. The paper's own ARM/x86 pair pays the address-size
// conversion instead (negligible, as Section 5.1 notes).
func CrossArch() (*report.Table, []CrossArchRow, error) {
	names := []string{"429.mcf", "183.equake", "456.hmmer"}
	t := report.New("Cross-architecture servers: x86-64 (paper) vs big-endian 32-bit",
		"Program", "Local(s)", "x86-64(s)", "BE32(s)", "BE/x86 overhead", "Outputs")
	var rows []CrossArchRow
	for _, name := range names {
		w := workloads.ByName(name)
		row := CrossArchRow{Name: name}

		runWith := func(server *arch.Spec) (*core.LocalResult, *core.OffloadResult, error) {
			fw := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, w.CostScale)
			fw.Server = server
			mod := w.Build()
			prof, err := fw.Profile(mod, w.ProfileIO())
			if err != nil {
				return nil, nil, err
			}
			cres, err := fw.Compile(mod, prof)
			if err != nil {
				return nil, nil, err
			}
			local, err := fw.RunLocal(mod, w.EvalIO())
			if err != nil {
				return nil, nil, err
			}
			off, err := fw.RunOffloaded(cres, w.EvalIO(), offrt.Policy{ForceOffload: true})
			if err != nil {
				return nil, nil, err
			}
			return local, off, nil
		}

		local, x86, err := runWith(arch.X8664())
		if err != nil {
			return nil, nil, err
		}
		_, be, err := runWith(arch.POWER32BE())
		if err != nil {
			return nil, nil, err
		}
		row.LocalSec = local.Time.Seconds()
		row.X8664Sec = x86.Time.Seconds()
		row.BE32Sec = be.Time.Seconds()
		row.OutputsOK = local.Output == x86.Output && local.Output == be.Output
		rows = append(rows, row)

		status := "identical"
		if !row.OutputsOK {
			status = "MISMATCH"
		}
		overhead := row.BE32Sec/row.X8664Sec - 1
		t.Add(name, row.LocalSec, row.X8664Sec, row.BE32Sec,
			fmt.Sprintf("+%.1f%%", 100*overhead), status)
	}
	t.Note("the big-endian server pays per-access endianness translation; results stay bit-identical")
	return t, rows, nil
}
