package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/interp"
	"repro/internal/report"
	"repro/internal/simtime"
)

// Fig6aRow is one program's bars in Figure 6(a).
type Fig6aRow struct {
	Name          string
	Ideal         float64
	Slow          float64
	Fast          float64
	SlowOffloaded bool // false = starred (declined by the dynamic gate)
	FastOffloaded bool
}

// Fig6a reproduces the normalized execution times.
func Fig6a() (*report.Table, []Fig6aRow, error) {
	rs, err := Sweep()
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 6(a): execution time normalized to local execution",
		"Program", "Ideal", "Slow(802.11n)", "Fast(802.11ac)", "SpeedupFast", "")
	var rows []Fig6aRow
	var slows, fasts, ideals []float64
	for _, r := range rs {
		row := Fig6aRow{
			Name:          r.W.Name,
			Ideal:         r.IdealNorm(),
			Slow:          r.Slow.NormalizedTime(r.Local),
			Fast:          r.Fast.NormalizedTime(r.Local),
			SlowOffloaded: r.Slow.Offloaded(),
			FastOffloaded: r.Fast.Offloaded(),
		}
		rows = append(rows, row)
		star := ""
		if !row.SlowOffloaded {
			star = " *slow not offloaded"
		}
		t.Add(r.W.Name, row.Ideal, row.Slow, row.Fast,
			r.Fast.Speedup(r.Local), report.Bar(row.Fast, 1, 30)+star)
		ideals = append(ideals, row.Ideal)
		slows = append(slows, row.Slow)
		fasts = append(fasts, row.Fast)
	}
	t.Add("GEOMEAN", report.Geomean(ideals), report.Geomean(slows), report.Geomean(fasts),
		1/report.Geomean(fasts), "")
	t.Note("paper: geomean normalized time 0.180 slow / 0.156 fast (82.0%% / 84.4%% reduction; 6.42x speedup)")
	return t, rows, nil
}

// Fig6bRow is one program's bars in Figure 6(b).
type Fig6bRow struct {
	Name string
	Slow float64
	Fast float64
}

// Fig6b reproduces the normalized battery consumption.
func Fig6b() (*report.Table, []Fig6bRow, error) {
	rs, err := Sweep()
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 6(b): battery consumption normalized to local execution",
		"Program", "Slow(802.11n)", "Fast(802.11ac)", "")
	var rows []Fig6bRow
	var slows, fasts []float64
	for _, r := range rs {
		slow := normEnergy(r.Slow, r.Local, energy.SlowModel())
		fast := normEnergy(r.Fast, r.Local, energy.FastModel())
		rows = append(rows, Fig6bRow{Name: r.W.Name, Slow: slow, Fast: fast})
		t.Add(r.W.Name, slow, fast, report.Bar(fast, 1.2, 30))
		slows = append(slows, slow)
		fasts = append(fasts, fast)
	}
	t.Add("GEOMEAN", report.Geomean(slows), report.Geomean(fasts), "")
	t.Note("paper: geomean battery saving 77.2%% slow / 82.0%% fast; 164.gzip exceeds local on slow")
	return t, rows, nil
}

// normEnergy recomputes the normalized battery use under the right power
// model for the network (local baselines differ per model only in name).
func normEnergy(off *core.OffloadResult, local *core.LocalResult, m energy.PowerModel) float64 {
	offMJ := off.Recorder.EnergyMJ(m)
	localMJ := energy.LocalEnergyMJ(m, local.Time)
	if localMJ == 0 {
		return 0
	}
	return offMJ / localMJ
}

// Fig7Row is one program+network breakdown.
type Fig7Row struct {
	Name     string
	Network  string
	Total    simtime.PS
	Compute  simtime.PS
	Fptr     simtime.PS
	RemoteIO simtime.PS
	Comm     simtime.PS
}

// Fig7 reproduces the overhead breakdown for both networks.
func Fig7() (*report.Table, []Fig7Row, error) {
	rs, err := Sweep()
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 7: breakdown of offloaded execution time (s and % of total)",
		"Program", "Net", "Total(s)", "Compute", "FptrTrans", "RemoteIO", "Comm")
	var rows []Fig7Row
	add := func(r *ProgramResult, name string, off *core.OffloadResult) {
		row := Fig7Row{
			Name:     r.W.Name,
			Network:  name,
			Total:    off.Time,
			Compute:  off.Comp[interp.CompCompute],
			Fptr:     off.Comp[interp.CompFptr],
			RemoteIO: off.Comp[interp.CompRemoteIO],
			Comm:     off.Comp[interp.CompComm],
		}
		rows = append(rows, row)
		pct := func(c simtime.PS) string {
			if off.Time == 0 {
				return "0"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(c)/float64(off.Time))
		}
		t.Add(r.W.Name, name, off.Time.Seconds(), pct(row.Compute), pct(row.Fptr),
			pct(row.RemoteIO), pct(row.Comm))
	}
	for _, r := range rs {
		add(r, "s", r.Slow)
		add(r, "f", r.Fast)
	}
	t.Note("paper: gzip/bzip2/mcf/sjeng/lbm communication-heavy; twolf/gobmk/h264ref remote-I/O-heavy; gobmk/sjeng/h264ref fptr-visible")
	return t, rows, nil
}

// Fig8Trace is one power-over-time trace.
type Fig8Trace struct {
	Title   string
	Trace   []float64 // mW samples
	AvgIOmW float64
}

// Fig8 reproduces the power traces: sjeng (fast), gobmk (fast), gobmk
// (slow).
func Fig8() (string, []Fig8Trace, error) {
	rs, err := Sweep()
	if err != nil {
		return "", nil, err
	}
	byName := map[string]*ProgramResult{}
	for _, r := range rs {
		byName[r.W.Name] = r
	}
	sjeng, gobmk := byName["458.sjeng"], byName["445.gobmk"]
	if sjeng == nil || gobmk == nil {
		return "", nil, fmt.Errorf("fig8: sweep missing sjeng/gobmk")
	}

	var sb strings.Builder
	var traces []Fig8Trace
	emit := func(title string, off *core.OffloadResult, m energy.PowerModel) {
		dt := off.Time / 200
		if dt <= 0 {
			dt = simtime.Millisecond
		}
		tr := off.Recorder.Trace(m, dt)
		traces = append(traces, Fig8Trace{Title: title, Trace: tr, AvgIOmW: m.MW[energy.IOServe]})
		fmt.Fprintf(&sb, "%s  (total %v, energy %.0f mJ)\n", title, off.Time, off.Recorder.EnergyMJ(m))
		fmt.Fprintf(&sb, "  %s\n", energy.RenderTrace(tr, 5000, 100))
		fmt.Fprintf(&sb, "  states: %s\n\n", off.Recorder.Summary(m))
	}
	emit("Figure 8(a): 458.sjeng power over time (fast network)", sjeng.Fast, energy.FastModel())
	emit("Figure 8(b): 445.gobmk power over time (fast network)", gobmk.Fast, energy.FastModel())
	emit("Figure 8(c): 445.gobmk power over time (slow network)", gobmk.Slow, energy.SlowModel())
	sb.WriteString("paper: sjeng pulses at invocation boundaries; gobmk draws continuous remote-I/O power,\n")
	sb.WriteString("higher on the fast network (2000 mW) than the slow one (1700 mW)\n")
	return sb.String(), traces, nil
}
