package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/offrt"
	"repro/internal/report"
	"repro/internal/workloads"
)

// AblationResult quantifies one design choice of the system.
type AblationResult struct {
	Name     string
	Baseline float64 // seconds (or the metric named in Unit)
	Ablated  float64
	Unit     string
	Note     string
}

// Ablation measures the paper's design choices by turning them off one at a
// time:
//
//   - initialization-time prefetch vs. pure copy-on-demand paging,
//   - server->mobile compression of the dirty-page write-back,
//   - the dynamic performance estimation gate (Section 4) on a slow network,
//   - the remote I/O optimization (Section 3.4), without which the function
//     filter rejects every hot region that prints.
func Ablation() (*report.Table, []AblationResult, error) {
	var out []AblationResult

	// Prefetch and compression ablate on the suite's most traffic-heavy
	// program (lbm ships its whole grid both ways).
	w := workloads.ByName("470.lbm")
	fw := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, w.CostScale)
	mod := w.Build()
	prof, err := fw.Profile(mod, w.ProfileIO())
	if err != nil {
		return nil, nil, err
	}
	cres, err := fw.Compile(mod, prof)
	if err != nil {
		return nil, nil, err
	}
	run := func(pol offrt.Policy) (*core.OffloadResult, error) {
		return fw.RunOffloaded(cres, w.EvalIO(), pol)
	}

	base, err := run(offrt.Policy{ForceOffload: true})
	if err != nil {
		return nil, nil, err
	}
	noPrefetch, err := run(offrt.Policy{ForceOffload: true, NoPrefetch: true})
	if err != nil {
		return nil, nil, err
	}
	out = append(out, AblationResult{
		Name:     "prefetch -> pure copy-on-demand",
		Baseline: base.Time.Seconds(),
		Ablated:  noPrefetch.Time.Seconds(),
		Unit:     "s",
		Note:     fmt.Sprintf("%d faults vs %d: per-page round trips replace one batched message", pageFaults(noPrefetch), pageFaults(base)),
	})

	noComp, err := run(offrt.Policy{ForceOffload: true, NoCompress: true})
	if err != nil {
		return nil, nil, err
	}
	out = append(out, AblationResult{
		Name:     "server->mobile compression off",
		Baseline: float64(base.LinkStats.BytesToMobile) / 1e6,
		Ablated:  float64(noComp.LinkStats.BytesToMobile) / 1e6,
		Unit:     "MB to mobile",
		Note:     "finalization write-back travels uncompressed",
	})

	// The dynamic gate ablates on gzip over 802.11n: forcing the offload
	// the estimator declines makes the program slower than local.
	gz := workloads.ByName("164.gzip")
	// Compile under favourable (fast-network) assumptions, as the paper's
	// compiler does; only the runtime's dynamic estimation sees 802.11n.
	gzFast := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, gz.CostScale)
	slow := core.NewFramework(core.SlowNetwork).WithScale(workloads.Scale, gz.CostScale)
	gzMod := gz.Build()
	gzProf, err := gzFast.Profile(gzMod, gz.ProfileIO())
	if err != nil {
		return nil, nil, err
	}
	gzC, err := gzFast.Compile(gzMod, gzProf)
	if err != nil {
		return nil, nil, err
	}
	// The paper motivates the gate with "unexpected slow network
	// environments": degrade the 802.11n link to a third of its goodput.
	slow.Link = slow.Link.Scaled(3)
	gated, err := slow.RunOffloaded(gzC, gz.EvalIO(), offrt.Policy{})
	if err != nil {
		return nil, nil, err
	}
	forced, err := slow.RunOffloaded(gzC, gz.EvalIO(), offrt.Policy{ForceOffload: true})
	if err != nil {
		return nil, nil, err
	}
	out = append(out, AblationResult{
		Name:     "dynamic gate off (gzip, congested 802.11n)",
		Baseline: gated.Time.Seconds(),
		Ablated:  forced.Time.Seconds(),
		Unit:     "s",
		Note:     "the gate's local fallback avoids a network-bound offload",
	})

	// Remote I/O off: gobmk's hot region reads play-record files, so
	// without the remote I/O manager the filter rejects gtp_main_loop and
	// everything that calls it (Section 3.4: "the function filter excludes
	// most of the IR codes from offloading targets"). The best surviving
	// partition is the inner board loop, which must be offloaded once per
	// command — three orders of magnitude more communication.
	gb := workloads.ByName("445.gobmk")
	fwRIO := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, gb.CostScale)
	fwNo := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, gb.CostScale)
	fwNo.RemoteIO = false
	gbMod := gb.Build()
	gbProf, err := fwRIO.Profile(gbMod, gb.ProfileIO())
	if err != nil {
		return nil, nil, err
	}
	withC, err := fwRIO.Compile(gbMod, gbProf)
	if err != nil {
		return nil, nil, err
	}
	withRun, err := fwRIO.RunOffloaded(withC, gb.EvalIO(), offrt.Policy{})
	if err != nil {
		return nil, nil, err
	}
	rio := AblationResult{
		Name:     "remote I/O optimization off (gobmk)",
		Baseline: withRun.Time.Seconds(),
		Unit:     "s",
	}
	noC, err := fwNo.Compile(gbMod, gbProf)
	if err != nil {
		// Depending on calibration the filter may leave nothing at all.
		rio.Ablated = 0
		rio.Note = "no target survives the filter: " + err.Error()
	} else {
		noRun, err := fwNo.RunOffloaded(noC, gb.EvalIO(), offrt.Policy{})
		if err != nil {
			return nil, nil, err
		}
		rio.Ablated = noRun.Time.Seconds()
		rio.Note = fmt.Sprintf("only the inner loop survives the filter: %d offload sessions instead of 1",
			offloads(noRun))
	}
	out = append(out, rio)

	// Output batching (Section 4) ablates on sphinx3, which logs a
	// hypothesis line per frame from the offloaded loop.
	sp := workloads.ByName("482.sphinx3")
	fwSp := core.NewFramework(core.FastNetwork).WithScale(workloads.Scale, sp.CostScale)
	spMod := sp.Build()
	spProf, err := fwSp.Profile(spMod, sp.ProfileIO())
	if err != nil {
		return nil, nil, err
	}
	spC, err := fwSp.Compile(spMod, spProf)
	if err != nil {
		return nil, nil, err
	}
	perCall, err := fwSp.RunOffloaded(spC, sp.EvalIO(), offrt.Policy{ForceOffload: true})
	if err != nil {
		return nil, nil, err
	}
	batched, err := fwSp.RunOffloaded(spC, sp.EvalIO(), offrt.Policy{ForceOffload: true, BatchOutput: true})
	if err != nil {
		return nil, nil, err
	}
	if batched.Output != perCall.Output {
		return nil, nil, fmt.Errorf("output batching changed program output")
	}
	out = append(out, AblationResult{
		Name:     "output batching off (sphinx3)",
		Baseline: float64(batched.LinkStats.MsgsToMobile),
		Ablated:  float64(perCall.LinkStats.MsgsToMobile),
		Unit:     "messages to mobile",
		Note: fmt.Sprintf("batching cuts remote-I/O time %.2fs -> %.2fs",
			perCall.Comp[interp.CompRemoteIO].Seconds(), batched.Comp[interp.CompRemoteIO].Seconds()),
	})

	t := report.New("Ablations: the system's design choices, one at a time",
		"Design choice", "With", "Without", "Unit", "Effect")
	for _, a := range out {
		t.Add(a.Name, a.Baseline, a.Ablated, a.Unit, a.Note)
	}
	return t, out, nil
}

func offloads(r *core.OffloadResult) int {
	n := 0
	for _, st := range r.PerTask {
		n += st.Offloads
	}
	return n
}

func pageFaults(r *core.OffloadResult) int {
	n := 0
	for _, st := range r.PerTask {
		n += st.Faults
	}
	return n
}
