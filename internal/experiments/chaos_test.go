package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/simtime"
)

// TestChaosEquivalence is the acceptance gate for the fault-injection
// campaign: every workload, under every cell of the drop-rate x outage
// grid, must produce output, exit code and semantic memory bit-identical
// to its fault-free run — and at least one cell sweep-wide must have
// exercised the local fallback path (fallback.local trace events > 0).
func TestChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	cells, err := ChaosSweep()
	if err != nil {
		t.Fatal(err)
	}
	workloadsSeen := map[string]bool{}
	fallbackCells, faultedCells := 0, 0
	for _, c := range cells {
		workloadsSeen[c.Workload] = true
		if !c.Equal() {
			t.Errorf("%s under %s diverged from fault-free run (output=%v code=%v mem=%v)",
				c.Workload, c.Plan.String(), c.OutputOK, c.CodeOK, c.MemOK)
		}
		if c.FallbackEvents > 0 {
			fallbackCells++
			if c.Fallbacks == 0 {
				t.Errorf("%s under %s traced fallback.local but Stats.Fallbacks is 0",
					c.Workload, c.Plan.String())
			}
		}
		if c.Injected > 0 {
			faultedCells++
		}
	}
	if got, want := len(cells), len(workloadsSeen)*6; got != want {
		t.Errorf("grid has %d cells, want %d (6 per workload)", got, want)
	}
	if fallbackCells == 0 {
		t.Error("no cell exercised local fallback; the outage schedule should abort offloads")
	}
	if faultedCells == 0 {
		t.Error("no cell injected a single fault; the grid is vacuous")
	}
	tbl := ChaosTable(cells).String()
	if !strings.Contains(tbl, "equal") || strings.Contains(tbl, "NO") {
		t.Errorf("chaos table inconsistent with cell verdicts:\n%s", tbl)
	}
	t.Logf("%d cells, %d injected faults, %d fell back locally", len(cells), faultedCells, fallbackCells)
}

// TestChaosPropertyRandomPlans drives every workload under a randomly
// generated (but seeded, hence reproducible) fault plan and requires the
// same observational equivalence as the fixed grid: graceful degradation
// must hold for arbitrary fault schedules, not just the curated ones.
func TestChaosPropertyRandomPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property sweep is slow")
	}
	base, err := Sweep()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20260806))
	for _, pr := range base {
		plan := faults.Plan{
			Seed:        rng.Uint64(),
			DropRate:    rng.Float64() * 0.3,
			CorruptRate: rng.Float64() * 0.1,
			DelayRate:   rng.Float64() * 0.2,
			MaxDelay:    simtime.PS(1+rng.Int63n(10)) * simtime.Millisecond,
		}
		if rng.Intn(2) == 1 {
			start := simtime.PS(rng.Int63n(int64(pr.Fast.Time)))
			plan.Outages = []faults.Window{{Start: start, End: start + 4*pr.Fast.Time}}
		}
		cell, err := RunChaosCell(pr, plan)
		if err != nil {
			t.Fatalf("%s under %s: %v", pr.W.Name, plan.String(), err)
		}
		if !cell.Equal() {
			t.Errorf("%s under random plan %s diverged (output=%v code=%v mem=%v)",
				pr.W.Name, plan.String(), cell.OutputOK, cell.CodeOK, cell.MemOK)
		}
	}
}
