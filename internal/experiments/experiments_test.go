package experiments

import (
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/workloads"
)

// These tests are the reproduction's scientific assertions: they check that
// the regenerated tables and figures have the *shape* the paper reports —
// who wins, by roughly what factor, and where the crossovers fall.

func sweep(t *testing.T) []*ProgramResult {
	t.Helper()
	if testing.Short() {
		t.Skip("full 17-program sweep")
	}
	rs, err := Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 17 {
		t.Fatalf("sweep covered %d programs, want 17", len(rs))
	}
	return rs
}

func TestTable1GapBand(t *testing.T) {
	tab := Table1(8) // depths 7-8 keep the test fast; the bench runs 7-11
	for _, row := range tab.Rows {
		gap := row[3]
		if gap < "5.3" || gap > "5.9" {
			t.Errorf("difficulty %s gap %s outside Table 1 band [5.36, 5.89]", row[0], gap)
		}
	}
}

func TestTable2Claim(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 20 {
		t.Fatalf("Table 2 has %d rows, want 20", len(tab.Rows))
	}
	// "around one third" of the apps are >50% native LoC and more spend
	// >20% of execution time in native code.
	notes := strings.Join(tab.Notes, " ")
	if !strings.Contains(notes, "6/20") || !strings.Contains(notes, "9/20") {
		t.Errorf("expected 6/20 and 9/20 in notes: %v", tab.Notes)
	}
}

func TestTable3SelectsGetAITurn(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	var selected []string
	var innerRejected, playerFiltered, forINested bool
	for _, row := range tab.Rows {
		name, verdict := row[0], row[7]
		if verdict == "SELECTED" {
			selected = append(selected, name)
		}
		// The paper's for_j analogue: the innermost hot loop loses to its
		// thousands of invocations (repeated communication, Equation 1).
		if strings.Contains(name, "minimax_leaf") && verdict == "rejected" {
			innerRejected = true
		}
		if strings.Contains(name, "for_i") && strings.Contains(verdict, "nested") {
			forINested = true
		}
		if name == "getPlayerTurn" && strings.Contains(verdict, "machine-specific") {
			playerFiltered = true
		}
	}
	if len(selected) != 1 || selected[0] != "getAITurn" {
		t.Errorf("selected = %v, want exactly [getAITurn]", selected)
	}
	if !innerRejected {
		t.Error("the inner leaf loop should be rejected (invocation count makes communication dominate)")
	}
	if !forINested {
		t.Error("for_i should be profitable but yield to getAITurn, as in the paper")
	}
	if !playerFiltered {
		t.Error("getPlayerTurn should be filtered (interactive scanf)")
	}
}

func TestTable4MatchesPaperShape(t *testing.T) {
	rs := sweep(t)
	for _, r := range rs {
		name := r.W.Name
		// Execution times calibrated within 15% of the paper.
		got := r.Local.Time.Seconds()
		want := r.W.Paper.ExecTimeSec
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s: local time %.1fs vs paper %.1fs (off by >15%%)", name, got, want)
		}
		// Offload invocations match Table 4 exactly (ammp has a second
		// two-invocation target on top of tpac's one).
		inv, traffic := invocationsAndTraffic(r.Fast)
		wantInv := r.W.Paper.Invocations
		if name == "188.ammp" {
			wantInv = 3
		}
		if inv != wantInv {
			t.Errorf("%s: %d offload invocations, want %d", name, inv, wantInv)
		}
		// Per-invocation traffic within 2x of Table 4 (hmmer and vpr sit
		// at the protocol floor; the paper's own numbers include effects
		// we cannot observe).
		if r.W.Paper.TrafficMB > 1 {
			if traffic < r.W.Paper.TrafficMB/2 || traffic > r.W.Paper.TrafficMB*2 {
				t.Errorf("%s: traffic %.1f MB vs paper %.1f MB (off by >2x)", name, traffic, r.W.Paper.TrafficMB)
			}
		}
		// Coverage within 15 points of Table 4.
		cov := 100 * r.Coverage()
		if d := cov - r.W.Paper.CoveragePct; d > 15 || d < -15 {
			t.Errorf("%s: coverage %.1f%% vs paper %.1f%%", name, cov, r.W.Paper.CoveragePct)
		}
	}
}

func TestFig6aShape(t *testing.T) {
	rs := sweep(t)
	_, rows, err := Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	var fasts []float64
	for _, row := range rows {
		// Every program speeds up on the fast network.
		if row.Fast >= 1 {
			t.Errorf("%s: fast normalized time %.2f >= 1 (no speedup)", row.Name, row.Fast)
		}
		if !row.FastOffloaded {
			t.Errorf("%s: not offloaded on the fast network", row.Name)
		}
		// The only slow-network decline is gzip (the starred bar).
		if row.SlowOffloaded == rs[0].W.Paper.StarredSlow && row.Name == "164.gzip" {
			t.Error("164.gzip should be declined on the slow network")
		}
		if row.Name != "164.gzip" && !row.SlowOffloaded {
			t.Errorf("%s: wrongly declined on the slow network", row.Name)
		}
		// Offloaded time never beats the ideal.
		if row.SlowOffloaded && row.Slow < row.Ideal*0.99 {
			t.Errorf("%s: slow run %.3f beats ideal %.3f", row.Name, row.Slow, row.Ideal)
		}
		fasts = append(fasts, row.Fast)
	}
	// Geomean reduction in the paper's regime: they report 84.4% on fast;
	// we demand at least 70% (overheads in this simulator are coarser).
	if g := report.Geomean(fasts); g > 0.30 {
		t.Errorf("geomean fast normalized time %.3f, want <= 0.30 (paper 0.156)", g)
	}
}

func TestFig6bShape(t *testing.T) {
	sweep(t)
	_, rows, err := Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	var fasts, slows []float64
	for _, row := range rows {
		if row.Name == "164.gzip" {
			// gzip runs locally on slow Wi-Fi: no battery win there.
			if row.Slow < 0.95 {
				t.Errorf("gzip slow energy %.2f, want ~1 (not offloaded)", row.Slow)
			}
		} else if row.Fast >= 1 {
			t.Errorf("%s: fast energy %.2f >= local", row.Name, row.Fast)
		}
		fasts = append(fasts, row.Fast)
		slows = append(slows, row.Slow)
	}
	gf, gs := report.Geomean(fasts), report.Geomean(slows)
	if gf > 0.35 || gs > 0.45 {
		t.Errorf("geomean energy %.2f slow / %.2f fast, want savings near the paper's 77%%/82%%", gs, gf)
	}
	if gf >= gs {
		t.Errorf("fast network should save more battery overall: %.3f vs %.3f", gf, gs)
	}
}

func TestFig7Shape(t *testing.T) {
	sweep(t)
	_, rows, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig7Row{}
	for _, r := range rows {
		byKey[r.Name+"/"+r.Network] = r
	}
	frac := func(name, net string, pick func(Fig7Row) float64) float64 {
		r := byKey[name+"/"+net]
		if r.Total == 0 {
			return 0
		}
		return pick(r) / float64(r.Total)
	}
	comm := func(r Fig7Row) float64 { return float64(r.Comm) }
	rio := func(r Fig7Row) float64 { return float64(r.RemoteIO) }
	fptr := func(r Fig7Row) float64 { return float64(r.Fptr) }

	// Communication-heavy programs are network sensitive (Section 5.1).
	for _, name := range []string{"401.bzip2", "429.mcf", "458.sjeng", "470.lbm"} {
		if frac(name, "s", comm) < 2*frac(name, "f", comm) {
			t.Errorf("%s: slow-network comm share should far exceed fast", name)
		}
		if frac(name, "s", comm) < 0.05 {
			t.Errorf("%s: comm share %.3f on slow network, want >= 5%%", name, frac(name, "s", comm))
		}
	}
	// Remote-input programs show remote I/O overhead (Section 5.1).
	for _, name := range []string{"300.twolf", "445.gobmk", "464.h264ref"} {
		if frac(name, "f", rio) < 0.02 {
			t.Errorf("%s: remote I/O share %.3f, want visible (>2%%)", name, frac(name, "f", rio))
		}
	}
	// Function pointer translation visible exactly where the paper says.
	for _, name := range []string{"445.gobmk", "458.sjeng", "464.h264ref"} {
		if frac(name, "f", fptr) < 0.03 {
			t.Errorf("%s: fptr share %.3f, want visible (>3%%)", name, frac(name, "f", fptr))
		}
	}
	for _, name := range []string{"179.art", "183.equake", "429.mcf", "470.lbm"} {
		if frac(name, "f", fptr) > 0.02 {
			t.Errorf("%s: fptr share %.3f, should be negligible", name, frac(name, "f", fptr))
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rs := sweep(t)
	text, traces, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 || !strings.Contains(text, "458.sjeng") {
		t.Fatalf("Fig8 incomplete: %d traces", len(traces))
	}
	byName := map[string]*ProgramResult{}
	for _, r := range rs {
		byName[r.W.Name] = r
	}
	gobmk := byName["445.gobmk"]
	// The paper's headline anomaly: gobmk consumes MORE battery on the
	// fast network because remote I/O service draws 2000 mW there vs
	// 1700 mW on 802.11n.
	fastMJ := gobmk.Fast.Recorder.EnergyMJ(energy.FastModel())
	slowMJ := gobmk.Slow.Recorder.EnergyMJ(energy.SlowModel())
	if fastMJ <= slowMJ {
		t.Errorf("gobmk: fast %.0f mJ should exceed slow %.0f mJ (Fig. 8(b)/(c))", fastMJ, slowMJ)
	}
	// gobmk's radio never idles: remote I/O service dominates its timeline.
	ioShare := float64(gobmk.Fast.Recorder.TimeIn(energy.IOServe)) / float64(gobmk.Fast.Recorder.Duration())
	if ioShare < 0.5 {
		t.Errorf("gobmk: IOServe share %.2f, want continuous (>50%%)", ioShare)
	}
	// sjeng pulses: it has distinct wait periods between bursts.
	sjeng := byName["458.sjeng"]
	if sjeng.Fast.Recorder.TimeIn(energy.Wait) < sjeng.Fast.Recorder.Duration()/2 {
		t.Error("sjeng should mostly wait between communication bursts")
	}
}

func TestTable5RendersAllSystems(t *testing.T) {
	tab := Table5()
	if len(tab.Rows) != 14 {
		t.Fatalf("Table 5 rows = %d, want 14", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Native Offloader" || last[3] != "No" || last[4] != "C" {
		t.Errorf("Native Offloader row wrong: %v", last)
	}
}

func TestAblationEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several offloaded executions")
	}
	_, rs, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	if a := byName["prefetch -> pure copy-on-demand"]; a.Ablated <= a.Baseline {
		t.Errorf("copy-on-demand-only should be slower: %.2f vs %.2f", a.Ablated, a.Baseline)
	}
	if a := byName["server->mobile compression off"]; a.Ablated <= a.Baseline {
		t.Errorf("uncompressed write-back should move more bytes: %.2f vs %.2f", a.Ablated, a.Baseline)
	}
	if a := byName["dynamic gate off (gzip, congested 802.11n)"]; a.Ablated <= a.Baseline {
		t.Errorf("forcing gzip onto the slow network should be slower than the gate's local fallback")
	}
	if a := byName["remote I/O optimization off (gobmk)"]; a.Ablated != 0 && a.Ablated < a.Baseline*1.5 {
		t.Errorf("without remote I/O the partition should be far worse: %.1fs vs %.1fs", a.Ablated, a.Baseline)
	}
}

func TestCrossArchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six offloaded executions")
	}
	_, rows, err := CrossArch()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.OutputsOK {
			t.Errorf("%s: outputs diverged across server architectures", r.Name)
		}
		if r.BE32Sec <= r.X8664Sec {
			t.Errorf("%s: big-endian server should pay translation overhead (%.1f vs %.1f)",
				r.Name, r.BE32Sec, r.X8664Sec)
		}
		if r.BE32Sec > r.X8664Sec*1.5 {
			t.Errorf("%s: translation overhead %.0f%% implausibly high",
				r.Name, 100*(r.BE32Sec/r.X8664Sec-1))
		}
		if r.BE32Sec >= r.LocalSec {
			t.Errorf("%s: offloading to the BE server should still win vs local", r.Name)
		}
	}
}

func TestOutputBatchingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several offloaded executions")
	}
	_, rs, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rs {
		if a.Name == "output batching off (sphinx3)" {
			if a.Ablated <= a.Baseline {
				t.Errorf("per-call output should send more messages: %v vs %v", a.Ablated, a.Baseline)
			}
			return
		}
	}
	t.Error("batching ablation row missing")
}

func TestSimulationIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a workload twice")
	}
	// Everything in the simulator is virtual-clock driven; two runs of
	// the same program must agree to the picosecond and to the byte.
	w := workloads.ByName("433.milc")
	a, err := RunProgram(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProgram(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Local.Time != b.Local.Time {
		t.Errorf("local times differ: %v vs %v", a.Local.Time, b.Local.Time)
	}
	if a.Fast.Time != b.Fast.Time || a.Slow.Time != b.Slow.Time {
		t.Errorf("offloaded times differ: %v/%v vs %v/%v", a.Fast.Time, a.Slow.Time, b.Fast.Time, b.Slow.Time)
	}
	if a.Fast.LinkStats.TotalBytes() != b.Fast.LinkStats.TotalBytes() {
		t.Errorf("traffic differs: %d vs %d", a.Fast.LinkStats.TotalBytes(), b.Fast.LinkStats.TotalBytes())
	}
	if a.Fast.EnergyMJ != b.Fast.EnergyMJ {
		t.Errorf("energy differs: %f vs %f", a.Fast.EnergyMJ, b.Fast.EnergyMJ)
	}
	if a.Local.Output != b.Local.Output {
		t.Error("outputs differ between identical runs")
	}
}
